# Development targets for the lossyckpt repo. `make check` is the
# pre-commit gate: formatting, vet, build, and the full test suite under
# the race detector.

GO ?= go

.PHONY: check fmt-check vet build test race bench-parallel

check: fmt-check vet build race

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-parallel runs the parallel-engine benchmarks that feed
# BENCH_parallel.json (workers sweep + allocation counts).
bench-parallel:
	$(GO) test -run xxx -bench 'ChunkedParallel|Alloc' -benchtime 3x .
