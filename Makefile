# Development targets for the lossyckpt repo. `make check` is the
# pre-commit gate: formatting, vet, build, the full test suite under
# the race detector, and a short fuzz pass over every decoder.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check fmt-check vet build test race fuzz-smoke serve-smoke crash-matrix-replicated crash-matrix-dedup bench-parallel bench-obs bench-gzip bench-entropy bench-dedup bench-qa bench-smoke bench-compare bench-compare-smoke

check: fmt-check vet build race fuzz-smoke serve-smoke bench-compare-smoke

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke runs every fuzz target for FUZZTIME each — a cheap guard
# that the decoders stay panic-free on adversarial input. Go allows one
# -fuzz pattern per invocation, so targets run one by one.
fuzz-smoke:
	$(GO) test ./internal/ckpt -run='^Fuzz' -fuzz='^FuzzRestore$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^Fuzz' -fuzz='^FuzzDecodeManifest$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^Fuzz' -fuzz='^FuzzOpenDir$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^Fuzz' -fuzz='^FuzzDecodePointer$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cas -run='^Fuzz' -fuzz='^FuzzDecodeRecipe$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cas -run='^Fuzz' -fuzz='^FuzzChunker$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fpc -run='^Fuzz' -fuzz='^FuzzDecompress$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fpc -run='^Fuzz' -fuzz='^FuzzRoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/container -run='^Fuzz' -fuzz='^FuzzFromBytes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompress$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompressChunked$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompressChunkedParallel$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gzipio -run='^Fuzz' -fuzz='^FuzzDecompressMembers$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/entropy -run='^Fuzz' -fuzz='^FuzzLZ4RoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/entropy -run='^Fuzz' -fuzz='^FuzzLZ4Decompress$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/entropy -run='^Fuzz' -fuzz='^FuzzDecompressAny$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/entropy -run='^Fuzz' -fuzz='^FuzzShuffle$$' -fuzztime=$(FUZZTIME)

# serve-smoke exercises the checkpoint daemon end to end with real
# binaries: concurrent multi-tenant client saves, SIGTERM drain,
# restart, kill -9, and a post-kill fsck that must find every tenant
# store clean.
serve-smoke:
	GO=$(GO) sh scripts/serve_smoke.sh

# crash-matrix-replicated runs the replication acceptance harnesses in
# full and verbose: the single-store and object-backend kill-at-every-
# write-boundary matrices, plus the N=3/W=2 matrix with a dead replica
# at every crash point and a lying replica at rest. Zero torn states and
# zero residual divergence or the target fails.
crash-matrix-replicated:
	$(GO) test ./internal/store -run '^TestCrashMatrix$$|^TestObjectCrashMatrix$$|^TestReplicatedCrashMatrix$$' -v -count=1

# crash-matrix-dedup kills a dedup store at every write boundary of the
# chunks -> recipe -> manifest commit and during GC: after each crash
# the store must reopen to a readable, bit-exact generation with zero
# torn state, and one GC cycle must leave zero leaked chunks.
crash-matrix-dedup:
	$(GO) test ./internal/store -run '^TestCrashMatrixDedup$$|^TestCrashMatrixDedupGC$$' -v -count=1

# bench-parallel runs the parallel-engine benchmarks that feed
# BENCH_parallel.json (workers sweep + allocation counts).
bench-parallel:
	$(GO) test -run xxx -bench 'ChunkedParallel|Alloc' -benchtime 3x .

# bench-obs measures the observability tax (no-op vs live registry) that
# feeds BENCH_obs.json.
bench-obs:
	$(GO) test -run xxx -bench 'ChunkedParallelObs' -benchtime 5x -count 3 .

# bench-gzip runs the block-parallel DEFLATE and streaming-checkpoint
# benchmarks that feed BENCH_gzip.json (serial vs parallel compress,
# block-size sweep, both decoders, buffered vs streaming checkpoint).
bench-gzip:
	$(GO) test -run xxx -bench 'ParallelGzip|StreamingCheckpoint' -benchtime 3x .

# bench-entropy runs the pluggable-entropy-stage benchmarks that feed
# BENCH_entropy.json (lz4 vs gzip compress/decompress, the byte-shuffle
# pre-pass, and the autotuned vs gzip-only end-to-end pipeline).
bench-entropy:
	$(GO) test -run xxx -bench 'Entropy' -benchtime 3x .

# bench-dedup runs the delta-checkpoint + chunk-dedup benchmarks that
# feed BENCH_dedup.json (mutation-fraction sweep with committed physical
# bytes and elided compression CPU, plus the raw chunker throughput).
bench-dedup:
	$(GO) test -run xxx -bench 'Dedup' -benchtime 3x .

# bench-qa smokes the quality-analytics and flight-recorder loop: a heat
# workload quality report (markdown + JSON with rate-distortion table),
# a journaled save/restore round trip, and the journal post-mortem — all
# written under results/qa/ (CI uploads the directory as an artifact).
bench-qa:
	$(GO) build -o results/qa/lossyckpt ./cmd/lossyckpt
	results/qa/lossyckpt report -workload heat -steps 40 -out results/qa
	results/qa/lossyckpt gen -out results/qa/t.grd -shape 64x32x2 -steps 10
	results/qa/lossyckpt save -dir results/qa/ckpts -in results/qa/t.grd \
		-codec lossy -autotune -journal results/qa/run.jsonl
	results/qa/lossyckpt restore -dir results/qa/ckpts -out results/qa/restored \
		-journal results/qa/run.jsonl
	results/qa/lossyckpt report -journal results/qa/run.jsonl -out results/qa
	$(GO) test -run xxx -bench 'ChunkedParallelJournal' -benchtime 1x .

# bench-smoke executes every benchmark once — CI's guard that the bench
# code itself keeps compiling and running.
bench-smoke:
	$(GO) test -run xxx -bench 'ChunkedParallel|Alloc|ParallelGzip|StreamingCheckpoint|Entropy|Dedup' -benchtime 1x .

# bench-compare diffs two BENCH_*.json snapshots and fails on >15%
# ns_per_op regressions:  make bench-compare OLD=old.json NEW=new.json
OLD ?= BENCH_parallel.json
NEW ?= $(OLD)
bench-compare:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# bench-compare-smoke self-diffs the checked-in snapshots — a cheap guard
# that the tool keeps parsing them and a zero delta keeps exiting 0.
bench-compare-smoke:
	$(GO) run ./cmd/benchdiff BENCH_parallel.json BENCH_parallel.json
	$(GO) run ./cmd/benchdiff BENCH_obs.json BENCH_obs.json
	$(GO) run ./cmd/benchdiff BENCH_gzip.json BENCH_gzip.json
	$(GO) run ./cmd/benchdiff BENCH_entropy.json BENCH_entropy.json
	$(GO) run ./cmd/benchdiff BENCH_dedup.json BENCH_dedup.json
