# Development targets for the lossyckpt repo. `make check` is the
# pre-commit gate: formatting, vet, build, the full test suite under
# the race detector, and a short fuzz pass over every decoder.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check fmt-check vet build test race fuzz-smoke bench-parallel

check: fmt-check vet build race fuzz-smoke

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke runs every fuzz target for FUZZTIME each — a cheap guard
# that the decoders stay panic-free on adversarial input. Go allows one
# -fuzz pattern per invocation, so targets run one by one.
fuzz-smoke:
	$(GO) test ./internal/ckpt -run='^Fuzz' -fuzz='^FuzzRestore$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^Fuzz' -fuzz='^FuzzDecodeManifest$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^Fuzz' -fuzz='^FuzzOpenDir$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fpc -run='^Fuzz' -fuzz='^FuzzDecompress$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fpc -run='^Fuzz' -fuzz='^FuzzRoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/container -run='^Fuzz' -fuzz='^FuzzFromBytes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompress$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompressChunked$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^Fuzz' -fuzz='^FuzzDecompressChunkedParallel$$' -fuzztime=$(FUZZTIME)

# bench-parallel runs the parallel-engine benchmarks that feed
# BENCH_parallel.json (workers sweep + allocation counts).
bench-parallel:
	$(GO) test -run xxx -bench 'ChunkedParallel|Alloc' -benchtime 3x .
