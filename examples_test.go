package lossyckpt

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end via `go run`,
// guaranteeing the documented entry points keep working. Skipped under
// -short (each example takes a few seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each; skipped in -short mode")
	}
	examples := []struct {
		path string
		want string // a string the output must contain
	}{
		{"./examples/quickstart", "compression rate"},
		{"./examples/climate_restart", "restored to step"},
		{"./examples/parameter_sweep", "error-bound-driven"},
		{"./examples/scaling", "compression wins from P"},
		{"./examples/nbody_feasibility", "energy before lossy restart"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(strings.TrimPrefix(ex.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", ex.path)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex.path, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("%s output missing %q:\n%s", ex.path, ex.want, out)
			}
		})
	}
}
