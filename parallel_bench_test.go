// Benchmarks for the intra-array parallel compression engine (ISSUE PR 1):
// a workers sweep over the chunked pipeline on the paper's NICAM array and
// a 16×-larger variant, plus allocation counts on the pooled hot paths.
// `make bench-parallel` distills these into BENCH_parallel.json.
package lossyckpt

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// parallelChunkExtent slices the leading axis into ~128-plane slabs — large
// enough that per-chunk overhead is negligible, small enough that even the
// paper-sized array yields 10 chunks to spread over workers.
const parallelChunkExtent = 128

// syntheticClimate builds a smooth climate-like array of the given shape
// without the climate model's warm-up cost (the 16× array would take
// minutes to spin up).
func syntheticClimate(b *testing.B, shape ...int) *grid.Field {
	b.Helper()
	f, err := grid.New(shape...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2015))
	idx := make([]int, len(shape))
	for off := range f.Data() {
		v := 250.0
		for d, i := range idx {
			v += 20 * math.Sin(2*math.Pi*float64(i)/float64(shape[d])*float64(d+1))
		}
		f.Data()[off] = v + 0.05*rng.NormFloat64()
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return f
}

// workerSweep is the pool-size matrix the chunked benchmarks run: serial,
// two, four, and everything the machine has (deduplicated).
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		sweep = append(sweep, p)
	}
	return sweep
}

func benchmarkChunkedParallel(b *testing.B, f *grid.Field) {
	b.Helper()
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = workers
			b.SetBytes(int64(f.Bytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunkedParallel(f, opts, parallelChunkExtent); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkedParallel/nicam compresses the paper's NICAM-shaped
// (1156×82×2) temperature array; /nicam16x is the same workload on a
// 16×-larger array (18496×82×2, ~24 MB), the scale where the worker pool
// must show ≥2× wall-clock speedup on a multicore machine.
func BenchmarkChunkedParallel(b *testing.B) {
	b.Run("nicam", func(b *testing.B) {
		benchmarkChunkedParallel(b, syntheticClimate(b, 1156, 82, 2))
	})
	b.Run("nicam16x", func(b *testing.B) {
		benchmarkChunkedParallel(b, syntheticClimate(b, 16*1156, 82, 2))
	})
}

// BenchmarkChunkedParallelDecompress sweeps the decode-side pool.
func BenchmarkChunkedParallelDecompress(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	res, err := core.CompressChunked(f, core.DefaultOptions(), parallelChunkExtent)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(f.Bytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.DecompressChunkedParallel(res.Data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkedParallelObs measures the observability tax on the
// chunked-parallel hot path: /noop runs with no observer anywhere (the
// default — instrumentation reduces to one nil check per record site),
// /enabled hands the pipeline a live registry recording every stage timing
// and operation series. `make bench-obs` distills the pair into
// BENCH_obs.json; the acceptance bar is noop within 5% of the
// pre-instrumentation baseline.
func BenchmarkChunkedParallelObs(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	run := func(b *testing.B, reg *obs.Registry) {
		opts := core.DefaultOptions()
		opts.Workers = 2
		opts.Observer = reg
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.CompressChunkedParallel(f, opts, parallelChunkExtent); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, obs.NewRegistry()) })
}

// BenchmarkChunkedParallelJournal measures the flight-recorder cost on
// the same pipeline: each iteration is one full wide event — begin
// record, stage waterfall, byte totals, end record appended to a real
// JSONL file. The acceptance bar is ≤5% overhead for on vs off.
func BenchmarkChunkedParallelJournal(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	run := func(b *testing.B, j *journal.Journal) {
		opts := core.DefaultOptions()
		opts.Workers = 2
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := j.Begin("ckpt.checkpoint", "codec", "lossy", "mode", "chunked")
			res, err := core.CompressChunkedParallel(f, opts, parallelChunkExtent)
			if err != nil {
				op.End(err)
				b.Fatal(err)
			}
			if op != nil {
				op.SetStep(i)
				op.SetBytes(int64(f.Bytes()), int64(len(res.Data)))
				op.Stage("transform", res.Timings.Wavelet)
				op.Stage("quantize", res.Timings.Quantize)
				op.Stage("entropy", res.Timings.Gzip)
			}
			op.End(nil)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		j, err := journal.Open(filepath.Join(b.TempDir(), "bench.jsonl"), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		run(b, j)
	})
}

// --- Allocation benchmarks for the pooled hot paths ----------------------

// BenchmarkAllocCompress tracks allocations of the single-array pipeline;
// the sync.Pool work in core/wavelet/quant/gzipio shows up here as a low,
// steady allocs/op count.
func BenchmarkAllocCompress(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	opts := core.DefaultOptions()
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocDecompress is the decode-side counterpart.
func BenchmarkAllocDecompress(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	res, err := core.Compress(f, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompress(res.Data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocGzipOnly measures the gzip baseline after the redundant
// input copy was removed and DEFLATE writers became pooled.
func BenchmarkAllocGzipOnly(b *testing.B) {
	f := syntheticClimate(b, 1156, 82, 2)
	b.SetBytes(int64(f.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, ""); err != nil {
			b.Fatal(err)
		}
	}
}
