// Benchmarks for delta checkpoints through the content-addressed chunk
// store (dedup). A sparse-update workload is re-checkpointed into a
// dedup store by a delta-enabled manager at different per-step mutation
// fractions; each variant reports the physical bytes the store
// committed per generation (committed_bytes/op) and the compression CPU
// the pipeline actually spent (compress_ns/op) beside the usual
// ns_per_op. `make bench-dedup` distills these into BENCH_dedup.json;
// the headline target is the 1%-mutation re-checkpoint committing ≥10×
// fewer bytes and burning ≥10× less compression CPU than the full
// (100%-mutation) re-checkpoint.
package lossyckpt

import (
	"testing"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/faultsim"
	"lossyckpt/internal/store"
)

const dedupBenchElems = 1 << 18 // 2 MiB logical footprint

// dedupBenchChunk sizes content-defined chunks well below the ~40 KiB
// compressed slab frames, so a single dirty slab dirties a few chunks
// instead of most of the payload (the store default of 256 KiB average
// is tuned for multi-MB payloads).
var dedupBenchChunk = cas.Config{Min: 4 << 10, Avg: 16 << 10, Max: 64 << 10}

// dedupBenchVariants is the mutation-fraction sweep: "full" rewrites
// the whole footprint every step (the no-reuse baseline the ≥10×
// targets are measured against).
var dedupBenchVariants = []struct {
	name string
	frac float64
}{
	{"full", 1.0},
	{"mutate-10pct", 0.10},
	{"mutate-1pct", 0.01},
}

// BenchmarkDedupCheckpoint measures one re-checkpoint generation per
// iteration: mutate the workload, encode through the delta slab cache,
// commit to the dedup store.
func BenchmarkDedupCheckpoint(b *testing.B) {
	for _, v := range dedupBenchVariants {
		b.Run(v.name, func(b *testing.B) {
			app, err := faultsim.NewSparseApp(faultsim.SparseConfig{
				Elems: dedupBenchElems, MutateFraction: v.frac, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			codec := ckpt.NewLossy()
			codec.ChunkExtent = dedupBenchElems / 32
			mgr := ckpt.NewManager(codec, 0)
			mgr.SetDelta(true)
			if err := mgr.Register("state", app.Field()); err != nil {
				b.Fatal(err)
			}
			st, err := store.Open(b.TempDir(), store.Options{Keep: 4, Dedup: true, DedupChunk: dedupBenchChunk})
			if err != nil {
				b.Fatal(err)
			}
			// Baseline generation outside the measured loop: the benchmark
			// is the steady-state re-checkpoint, not the cold start.
			if _, _, err := mgr.CheckpointTo(st, app.StepCount()); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * dedupBenchElems))
			b.ReportAllocs()
			var committed, compressNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app.Step()
				before := st.PhysicalBytes()
				rep, _, err := mgr.CheckpointTo(st, app.StepCount())
				if err != nil {
					b.Fatal(err)
				}
				committed += st.PhysicalBytes() - before
				agg := rep.AggregateTimings()
				compressNs += int64(agg.Wavelet + agg.Quantize + agg.Encode + agg.Gzip)
			}
			b.ReportMetric(float64(committed)/float64(b.N), "committed_bytes/op")
			b.ReportMetric(float64(compressNs)/float64(b.N), "compress_ns/op")
		})
	}
}

// BenchmarkDedupChunker measures the content-defined chunker alone —
// the fixed per-commit tax every dedup generation pays regardless of
// how much dedups.
func BenchmarkDedupChunker(b *testing.B) {
	app, err := faultsim.NewSparseApp(faultsim.SparseConfig{
		Elems: dedupBenchElems, MutateFraction: 0, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 8*dedupBenchElems)
	for i, v := range app.Field().Data() {
		u := uint64(i) * 0x9e3779b9
		_ = v
		data[8*i] = byte(u)
	}
	cfg := dedupBenchChunk
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := cas.Split(cfg, data)
		if err != nil {
			b.Fatal(err)
		}
		if len(chunks) == 0 {
			b.Fatal("no chunks")
		}
	}
}

// TestDedupBenchTargets is the acceptance check behind the benchmark:
// at 1% mutation the steady-state re-checkpoint must commit ≥10× fewer
// physical bytes and spend ≥10× less compression CPU than the full
// rewrite, and every retained generation must stay readable.
func TestDedupBenchTargets(t *testing.T) {
	run := func(frac float64) (committed, compressNs int64) {
		app, err := faultsim.NewSparseApp(faultsim.SparseConfig{
			Elems: dedupBenchElems, MutateFraction: frac, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		codec := ckpt.NewLossy()
		codec.ChunkExtent = dedupBenchElems / 32
		mgr := ckpt.NewManager(codec, 0)
		mgr.SetDelta(true)
		if err := mgr.Register("state", app.Field()); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(t.TempDir(), store.Options{Keep: -1, Dedup: true, DedupChunk: dedupBenchChunk})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := mgr.CheckpointTo(st, app.StepCount()); err != nil {
			t.Fatal(err)
		}
		const gens = 3
		for i := 0; i < gens; i++ {
			app.Step()
			before := st.PhysicalBytes()
			rep, _, err := mgr.CheckpointTo(st, app.StepCount())
			if err != nil {
				t.Fatal(err)
			}
			committed += st.PhysicalBytes() - before
			agg := rep.AggregateTimings()
			compressNs += int64(agg.Wavelet + agg.Quantize + agg.Encode + agg.Gzip)
		}
		for _, g := range st.Generations() {
			if _, err := st.ReadGeneration(g.Seq); err != nil {
				t.Fatalf("frac %v: generation %d unreadable: %v", frac, g.Seq, err)
			}
		}
		return committed, compressNs
	}
	fullBytes, fullNs := run(1.0)
	oneBytes, oneNs := run(0.01)
	if oneBytes*10 > fullBytes {
		t.Errorf("1%%-mutation committed %d bytes, full %d — want >=10x reduction", oneBytes, fullBytes)
	}
	if oneNs*10 > fullNs {
		t.Errorf("1%%-mutation compress CPU %dns, full %dns — want >=10x reduction", oneNs, fullNs)
	}
}
