module lossyckpt

go 1.22
