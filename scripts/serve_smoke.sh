#!/bin/sh
# serve_smoke.sh — end-to-end smoke for the checkpoint daemon.
#
# Exercises the full lifecycle against real binaries on a real
# filesystem: concurrent multi-tenant client saves, a graceful SIGTERM
# drain, a restart over the same stores, a kill -9 mid-flight, and a
# second restart whose fsck must report every tenant clean. Any torn
# generation, failed restore, or dirty exit fails the script.
#
# Usage: scripts/serve_smoke.sh  (from the repo root; needs only go + sh)
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/lossyckpt-smoke-XXXXXX")"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

say() { printf 'serve-smoke: %s\n' "$*"; }

say "building binaries into $WORK"
"$GO" build -o "$WORK/lossyckptd" ./cmd/lossyckptd
"$GO" build -o "$WORK/lossyckpt" ./cmd/lossyckpt

cat > "$WORK/daemon.json" <<EOF
{
  "max_in_flight": 4,
  "default_timeout": "30s",
  "tenants": [
    {"name": "alpha", "token": "tok-alpha", "dir": "$WORK/store-alpha", "keep": 4},
    {"name": "beta",  "token": "tok-beta",  "dir": "$WORK/store-beta",  "keep": 4}
  ]
}
EOF

start_daemon() {
    rm -f "$WORK/addr"
    "$WORK/lossyckptd" -config "$WORK/daemon.json" \
        -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
        -journal "$WORK/daemon.jsonl" 2>> "$WORK/daemon.log" &
    DAEMON_PID=$!
    i=0
    while [ ! -s "$WORK/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            say "daemon never published its address"; cat "$WORK/daemon.log"; exit 1
        fi
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            say "daemon exited during startup"; cat "$WORK/daemon.log"; exit 1
        fi
        sleep 0.05
    done
    ADDR="$(cat "$WORK/addr")"
    say "daemon up at $ADDR (pid $DAEMON_PID)"
}

client() {
    tenant="$1"; shift
    sub="$1"; shift
    "$WORK/lossyckpt" client "$sub" -addr "$ADDR" -tenant "$tenant" -token "tok-$tenant" "$@"
}

say "generating workload fields"
"$WORK/lossyckpt" gen -out "$WORK/temp.grd" -shape 48x24x2 -steps 5
"$WORK/lossyckpt" gen -out "$WORK/wind.grd" -shape 32x16x2 -steps 3 -seed 7

start_daemon

say "concurrent saves from both tenants"
for step in 1 2 3; do
    client alpha save -in "$WORK/temp.grd,$WORK/wind.grd" -step "$step" > /dev/null &
    A=$!
    client beta save -in "$WORK/temp.grd" -step "$step" > /dev/null &
    B=$!
    wait "$A"; wait "$B"
done

say "restore + byte-compare for both tenants"
client alpha restore -out "$WORK/restored-alpha" > /dev/null
client beta restore -out "$WORK/restored-beta" > /dev/null
cmp "$WORK/temp.grd" "$WORK/restored-alpha/temp.grd"
cmp "$WORK/wind.grd" "$WORK/restored-alpha/wind.grd"
cmp "$WORK/temp.grd" "$WORK/restored-beta/temp.grd"

say "graceful drain: SIGTERM must exit cleanly"
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    say "daemon exited dirty on SIGTERM"; cat "$WORK/daemon.log"; exit 1
fi
DAEMON_PID=""

say "restart over the same stores; state must survive"
start_daemon
client alpha inspect | grep -q "3 generation(s)" || {
    say "alpha lost generations across restart"; client alpha inspect; exit 1
}
client alpha save -in "$WORK/temp.grd" -step 4 > /dev/null

say "kill -9 the daemon, restart, fsck both tenants"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
start_daemon
client alpha fsck > /dev/null
client beta fsck > /dev/null
client alpha restore -out "$WORK/restored-alpha2" > /dev/null
cmp "$WORK/temp.grd" "$WORK/restored-alpha2/temp.grd"

say "drain and shut down"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

say "OK: saves, drain, restart, kill -9, fsck all clean"
