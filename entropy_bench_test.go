// Benchmarks for the pluggable entropy stage (ISSUE PR 6): the pure-Go
// LZ4-class coder vs the DEFLATE baseline on the 24 MB nicam16x byte
// image, the byte-shuffle pre-pass, both decode paths, and the online
// autotuner's end-to-end pick vs the gzip-only pipeline. `make
// bench-entropy` distills these into BENCH_entropy.json; the headline
// numbers are lz4 compress ≥4× gzip throughput (>150 MB/s) and the
// autotuned pipeline beating gzip-only wall time.
package lossyckpt

import (
	"testing"

	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/tune"
)

// entropyVariants is the codec × shuffle sweep every entropy benchmark
// walks.
var entropyVariants = []struct {
	name    string
	codec   entropy.ID
	shuffle bool
}{
	{"gzip", entropy.Gzip, false},
	{"gzip+shuffle", entropy.Gzip, true},
	{"lz4", entropy.LZ4, false},
	{"lz4+shuffle", entropy.LZ4, true},
}

func entropyBenchParams(codec entropy.ID, shuffle bool) entropy.Params {
	return entropy.Params{Codec: codec, Shuffle: shuffle, Stride: 8, GzipLevel: gzipio.Default}
}

// BenchmarkEntropyCompress measures the raw entropy stage (envelope
// included) on the 24 MB array image. mb_per_s is the number the >150
// MB/s lz4 target reads off.
func BenchmarkEntropyCompress(b *testing.B) {
	data := floatImage(syntheticClimate(b, 16*1156, 82, 2)) // ~24 MB
	for _, v := range entropyVariants {
		b.Run(v.name, func(b *testing.B) {
			p := entropyBenchParams(v.codec, v.shuffle)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := entropy.Compress(data, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEntropyDecompress measures the self-describing decode path on
// the same payloads.
func BenchmarkEntropyDecompress(b *testing.B) {
	data := floatImage(syntheticClimate(b, 16*1156, 82, 2))
	for _, v := range entropyVariants {
		res, err := entropy.Compress(data, entropyBenchParams(v.codec, v.shuffle))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := entropy.Decompress(res.Compressed, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEntropyShuffle measures the byte-shuffle pre-pass alone: a
// stride-8 lane transpose over the 24 MB image, both directions.
func BenchmarkEntropyShuffle(b *testing.B) {
	data := floatImage(syntheticClimate(b, 16*1156, 82, 2))
	shuffled := entropy.ShuffleBytes(data, 8)
	b.Run("shuffle", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entropy.ShuffleBytes(data, 8)
		}
	})
	b.Run("unshuffle", func(b *testing.B) {
		b.SetBytes(int64(len(shuffled)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entropy.UnshuffleBytes(shuffled, 8)
		}
	})
}

// BenchmarkEntropyAutotuned runs the full pipeline on the 24 MB climate
// array: the gzip-only baseline vs the autotuner's balanced pick (probed
// once on a 256 KiB sample, cached thereafter — the steady-state cost).
func BenchmarkEntropyAutotuned(b *testing.B) {
	f := syntheticClimate(b, 16*1156, 82, 2)
	base := core.DefaultOptions()
	base.VarName = "temperature"

	b.Run("gzip-only", func(b *testing.B) {
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compress(f, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("autotuned", func(b *testing.B) {
		tn := tune.New(tune.Config{})
		sample := floatImage(f)[:256<<10]
		opts := tn.Decide("temperature", f.Bytes(), sample).Apply(base)
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compress(f, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
