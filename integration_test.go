package lossyckpt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/heat"
	"lossyckpt/internal/nbody"
	"lossyckpt/internal/parallel"
	"lossyckpt/internal/stats"
)

// These integration tests exercise whole-system flows across module
// boundaries: application → checkpoint manager → codec → stream → restore
// → continued execution, for all three application substrates.

func climateTestConfig() climate.Config {
	c := climate.DefaultConfig()
	c.Nx, c.Nz = 96, 20
	return c
}

func registerClimate(t *testing.T, mgr *ckpt.Manager, m *climate.Model) {
	t.Helper()
	for _, nf := range m.Fields() {
		if err := mgr.Register(nf.Name, nf.Field); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClimateFailureRestartLossless is the ground-truth scenario: with a
// lossless codec, a restarted run must be bit-identical to the reference.
func TestClimateFailureRestartLossless(t *testing.T) {
	ref, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref.StepN(50)

	mgr := ckpt.NewManager(ckpt.NewGzip(), 0)
	registerClimate(t, mgr, ref)
	var stream bytes.Buffer
	if _, err := mgr.Checkpoint(&stream, ref.StepCount()); err != nil {
		t.Fatal(err)
	}
	ref.StepN(50)

	restarted, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := ckpt.NewManager(ckpt.NewGzip(), 0)
	registerClimate(t, mgr2, restarted)
	rep, err := mgr2.Restore(&stream)
	if err != nil {
		t.Fatal(err)
	}
	restarted.SetStepCount(rep.Step)
	restarted.StepN(50)

	for i, nf := range ref.Fields() {
		if !nf.Field.Equal(restarted.Fields()[i].Field) {
			t.Errorf("lossless restart: field %s diverged", nf.Name)
		}
	}
}

// TestClimateFailureRestartLossy is the paper's headline flow (§IV-E): a
// lossy restart stays within a small, slowly growing error of the
// reference.
func TestClimateFailureRestartLossy(t *testing.T) {
	ref, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref.StepN(50)

	mgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	registerClimate(t, mgr, ref)
	var stream bytes.Buffer
	ckRep, err := mgr.Checkpoint(&stream, ref.StepCount())
	if err != nil {
		t.Fatal(err)
	}
	if ckRep.CompressionRatePct() >= 100 {
		t.Errorf("lossy checkpoint did not shrink: %.1f%%", ckRep.CompressionRatePct())
	}

	restarted, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := ckpt.NewManager(ckpt.NewLossy(), 0)
	registerClimate(t, mgr2, restarted)
	rep, err := mgr2.Restore(&stream)
	if err != nil {
		t.Fatal(err)
	}
	restarted.SetStepCount(rep.Step)

	imm, _ := stats.Compare(ref.Field("temperature").Data(), restarted.Field("temperature").Data())
	if imm.AvgPct == 0 {
		t.Error("lossy restore had zero error; codec not lossy?")
	}
	if imm.AvgPct > 1 {
		t.Errorf("immediate lossy error %.4f%% too large", imm.AvgPct)
	}

	ref.StepN(100)
	restarted.StepN(100)
	after, _ := stats.Compare(ref.Field("temperature").Data(), restarted.Field("temperature").Data())
	if after.AvgPct > 100*imm.AvgPct+1 {
		t.Errorf("error exploded after restart: %.5f%% -> %.5f%%", imm.AvgPct, after.AvgPct)
	}
	if !ref.Stable() || !restarted.Stable() {
		t.Error("model went unstable")
	}
}

// TestCheckpointFileOnDisk exercises the whole flow through a real file.
func TestCheckpointFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "climate.ckpt")

	m, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(20)
	mgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	registerClimate(t, mgr, m)

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Checkpoint(f, m.StepCount()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := climate.New(climateTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := ckpt.NewManager(ckpt.NewLossy(), 0)
	registerClimate(t, mgr2, m2)
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rep, err := mgr2.Restore(rf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Step != 20 {
		t.Errorf("restored step %d, want 20", rep.Step)
	}
}

// TestHeatRestartThroughManager runs the 2-D substrate through the full
// checkpoint stack.
func TestHeatRestartThroughManager(t *testing.T) {
	cfg := heat.DefaultConfig()
	cfg.Ny, cfg.Nx = 96, 96
	ref, err := heat.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.StepN(300)

	mgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	if err := mgr.Register("temperature", ref.Temperature()); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := mgr.Checkpoint(&stream, ref.StepCount()); err != nil {
		t.Fatal(err)
	}

	re, err := heat.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := ckpt.NewManager(ckpt.NewLossy(), 0)
	if err := mgr2.Register("temperature", re.Temperature()); err != nil {
		t.Fatal(err)
	}
	rep, err := mgr2.Restore(&stream)
	if err != nil {
		t.Fatal(err)
	}
	re.SetStepCount(rep.Step)
	ref.StepN(200)
	re.StepN(200)
	s, _ := stats.Compare(ref.Temperature().Data(), re.Temperature().Data())
	// Diffusion contracts perturbations: the error must stay around the
	// compression error.
	if s.AvgPct > 0.5 {
		t.Errorf("heat restart error %.4f%%", s.AvgPct)
	}
}

// TestNBodyLossyRestartEnergyPerturbation quantifies the paper's §IV-E
// caveat: lossy restores perturb conserved quantities but the perturbation
// must scale with the quantizer resolution.
func TestNBodyLossyRestartEnergyPerturbation(t *testing.T) {
	cfg := nbody.DefaultConfig()
	cfg.N = 256
	sys, err := nbody.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StepN(100)
	e0 := sys.Energy()

	perturb := func(divisions int) float64 {
		cp := sys.Clone()
		opts := core.DefaultOptions()
		opts.Divisions = divisions
		for _, nf := range cp.Fields() {
			lossy, _, err := core.RoundTrip(nf.Field, opts)
			if err != nil {
				t.Fatal(err)
			}
			copy(nf.Field.Data(), lossy.Data())
		}
		cp.RefreshDerived()
		return math.Abs(cp.Energy() - e0)
	}
	coarse, fine := perturb(2), perturb(128)
	if fine > coarse {
		t.Errorf("finer quantization perturbed energy more: n=2 %g, n=128 %g", coarse, fine)
	}
	if fine > math.Abs(e0)*0.1 {
		t.Errorf("energy perturbation %g is >10%% of |E|=%g even at n=128", fine, math.Abs(e0))
	}
}

// TestClusterCheckpointAndReplay runs the executed multi-rank scenario end
// to end and replays every rank.
func TestClusterCheckpointAndReplay(t *testing.T) {
	cfg := parallel.DefaultConfig(6, ckpt.NewLossy())
	cfg.ElemsPerRank = 16384
	out, err := parallel.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalWith() <= 0 || out.TotalWithout() <= 0 {
		t.Fatal("degenerate cluster timings")
	}
	for r := 0; r < 6; r++ {
		s, err := parallel.ReplayRank(cfg, out, r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if s.AvgPct > 1 {
			t.Errorf("rank %d replay error %.4f%%", r, s.AvgPct)
		}
	}
}

// TestMixedShapesThroughManager checkpoints arrays of different
// dimensionality in one stream.
func TestMixedShapesThroughManager(t *testing.T) {
	mk := func(shape ...int) *grid.Field {
		f := grid.MustNew(shape...)
		for i := range f.Data() {
			f.Data()[i] = math.Sin(float64(i) / 50)
		}
		return f
	}
	fields := map[string]*grid.Field{
		"oneD":   mk(5000),
		"twoD":   mk(100, 50),
		"threeD": mk(20, 25, 10),
	}
	mgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	for _, name := range []string{"oneD", "twoD", "threeD"} {
		if err := mgr.Register(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	var stream bytes.Buffer
	if _, err := mgr.Checkpoint(&stream, 1); err != nil {
		t.Fatal(err)
	}
	originals := map[string]*grid.Field{}
	for n, f := range fields {
		originals[n] = f.Clone()
		f.Fill(0)
	}
	if _, err := mgr.Restore(&stream); err != nil {
		t.Fatal(err)
	}
	for n, f := range fields {
		s, _ := stats.Compare(originals[n].Data(), f.Data())
		if s.AvgPct > 1 {
			t.Errorf("%s: error %.4f%% after mixed-shape restore", n, s.AvgPct)
		}
	}
}
