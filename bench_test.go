// Package lossyckpt's root benchmark suite regenerates every table and
// figure of Sasaki et al. (IPDPS 2015) as a testing.B benchmark (one per
// artifact, per DESIGN.md §4), plus micro-benchmarks of the individual
// pipeline stages. Benchmarks run the scaled-down Quick workload so the
// whole suite finishes in minutes; `go run ./cmd/experiments` regenerates
// the paper-scale numbers.
package lossyckpt

import (
	"io"
	"testing"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/fpc"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/harness"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

// benchConfig is the scaled-down workload shared by the figure benchmarks.
func benchConfig() harness.Config {
	c := harness.Quick()
	c.Nx, c.Nz, c.Nc = 144, 20, 2
	c.WarmupSteps = 40
	c.RestartSteps = 60
	c.SampleEvery = 20
	c.Repeats = 1
	return c
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	run := harness.Runners[id]
	for i := 0; i < b.N; i++ {
		tab, err := run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact (Table I, Figs. 6-10) -------------

func BenchmarkTable1(b *testing.B) { runFigure(b, "tab1") }

func BenchmarkFig6CompressionRates(b *testing.B) { runFigure(b, "fig6") }

func BenchmarkFig7DivisionSweepRates(b *testing.B) { runFigure(b, "fig7") }

func BenchmarkFig8DivisionSweepErrors(b *testing.B) { runFigure(b, "fig8") }

func BenchmarkFig8AllArrays(b *testing.B) { runFigure(b, "fig8-all") }

func BenchmarkFig9ScalingEstimate(b *testing.B) { runFigure(b, "fig9") }

func BenchmarkFig10RestartStudy(b *testing.B) { runFigure(b, "fig10") }

// --- Extension experiments (DESIGN.md X1-X5) -----------------------------

func BenchmarkX1AblateGzipMode(b *testing.B) { runFigure(b, "ablate-gzip") }

func BenchmarkX2ErrorBound(b *testing.B) { runFigure(b, "errbound") }

func BenchmarkX3FPCBaseline(b *testing.B) { runFigure(b, "fpc") }

func BenchmarkX4NBody(b *testing.B) { runFigure(b, "nbody") }

func BenchmarkX5Levels(b *testing.B) { runFigure(b, "levels") }

func BenchmarkX6Cluster(b *testing.B) { runFigure(b, "cluster") }

func BenchmarkX7Interval(b *testing.B) { runFigure(b, "interval") }

func BenchmarkX8PerBand(b *testing.B) { runFigure(b, "perband") }

func BenchmarkX9Threshold(b *testing.B) { runFigure(b, "threshold") }

func BenchmarkX10Faults(b *testing.B) { runFigure(b, "faults") }

func BenchmarkX11Incremental(b *testing.B) { runFigure(b, "incremental") }

func BenchmarkX12Datasets(b *testing.B) { runFigure(b, "datasets") }

// --- Stage micro-benchmarks on the paper-sized array --------------------

// paperArray builds one paper-shaped (1156×82×2, ~1.5 MB) temperature
// array without the expensive warm-up.
func paperArray(b *testing.B) *grid.Field {
	b.Helper()
	cfg := climate.DefaultConfig()
	m, err := climate.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(3)
	return m.Field("temperature")
}

func BenchmarkStageWaveletTransform(b *testing.B) {
	f := paperArray(b)
	plan, err := wavelet.NewPlan(f.Shape(), 1, wavelet.Haar)
	if err != nil {
		b.Fatal(err)
	}
	work := f.Clone()
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Transform(work); err != nil {
			b.Fatal(err)
		}
		if err := plan.Inverse(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageQuantizeSimple(b *testing.B) {
	benchmarkQuantize(b, quant.Simple)
}

func BenchmarkStageQuantizeProposed(b *testing.B) {
	benchmarkQuantize(b, quant.Proposed)
}

func benchmarkQuantize(b *testing.B, method quant.Method) {
	b.Helper()
	f := paperArray(b).Clone()
	plan, _ := wavelet.NewPlan(f.Shape(), 1, wavelet.Haar)
	if err := plan.Transform(f); err != nil {
		b.Fatal(err)
	}
	high, err := plan.GatherHigh(f, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(high)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quant.Quantize(high, quant.Config{Method: method, Divisions: 128}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageFullPipeline(b *testing.B) {
	f := paperArray(b)
	opts := core.DefaultOptions()
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageDecompress(b *testing.B) {
	f := paperArray(b)
	res, err := core.Compress(f, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompress(res.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineGzip(b *testing.B) {
	f := paperArray(b)
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineFPC(b *testing.B) {
	f := paperArray(b)
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fpc.Compress(f.Data(), fpc.DefaultTableBits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointManagerLossy(b *testing.B) {
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz = 289, 41
	m, err := climate.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(5)
	mgr := ckpt.NewManager(ckpt.NewLossy(), 0)
	total := 0
	for _, nf := range m.Fields() {
		if err := mgr.Register(nf.Name, nf.Field); err != nil {
			b.Fatal(err)
		}
		total += nf.Field.Bytes()
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Checkpoint(io.Discard, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClimateStep(b *testing.B) {
	cfg := climate.DefaultConfig()
	m, err := climate.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(cfg.Nx * cfg.Nz * cfg.Nc * 8 * 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
