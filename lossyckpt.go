// Package lossyckpt is the public API of this repository: a lossy
// compressor for floating-point checkpoint data implementing Sasaki, Sato,
// Endo and Matsuoka, "Exploration of Lossy Compression for
// Application-Level Checkpoint/Restart" (IPDPS 2015), together with an
// application-level checkpoint/restart manager built around it.
//
// The pipeline compresses N-dimensional float64 mesh arrays in four
// stages: a Haar wavelet transform concentrates the information of smooth
// data into a small low-frequency band; the high-frequency coefficients
// are quantized (either every value, or — the paper's proposed method —
// only the values inside spiked histogram partitions, letting outliers
// pass through losslessly); quantized values are replaced by 1-byte codes
// into a table of partition means; and the formatted output runs through
// a pluggable entropy stage — DEFLATE by default, or a pure-Go LZ4-class
// coder and an optional byte-shuffle pre-pass, picked per array by an
// online autotuner when asked (Options.EntropyCodec/Shuffle, NewTuner).
//
// # Compressing a single array
//
//	field, _ := lossyckpt.NewField(1156, 82, 2)
//	// ... fill field.Data() ...
//	res, _ := lossyckpt.Compress(field, lossyckpt.DefaultOptions())
//	restored, _ := lossyckpt.Decompress(res.Data)
//
// # Checkpointing an application
//
//	mgr := lossyckpt.NewManager(lossyckpt.NewLossyCodec(), 0)
//	mgr.Register("temperature", tempField)
//	mgr.Checkpoint(w, stepCount)
//	// after a failure:
//	rep, _ := mgr.Restore(r)
//
// The subpackages under internal/ hold the individual pipeline stages, the
// application substrates used by the paper-reproduction experiments, and
// the experiment harness; this package re-exports the surface a downstream
// user needs.
package lossyckpt

import (
	"io"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/tune"
	"lossyckpt/internal/wavelet"
)

// Field is a dense N-dimensional float64 array in row-major order — the
// unit of checkpoint data the compressor operates on.
type Field = grid.Field

// NewField allocates a zero-filled field with the given shape.
func NewField(shape ...int) (*Field, error) { return grid.New(shape...) }

// FieldFromSlice wraps an existing backing slice without copying; the
// slice length must equal the product of the shape extents.
func FieldFromSlice(data []float64, shape ...int) (*Field, error) {
	return grid.FromSlice(data, shape...)
}

// Options parameterizes the compressor; start from DefaultOptions.
type Options = core.Options

// Result carries the compressed stream plus size and per-phase timing
// accounting.
type Result = core.Result

// Timings is the per-phase compression cost breakdown.
type Timings = core.Timings

// DefaultOptions returns the paper's headline configuration: single-level
// Haar transform, proposed quantization with n=128 divisions and d=64
// spike-detection partitions, in-memory gzip.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compress runs the full lossy pipeline over a field. The input is not
// modified.
func Compress(f *Field, opts Options) (*Result, error) { return core.Compress(f, opts) }

// Decompress reconstructs the (lossy) field from a stream produced by
// Compress; all pipeline parameters travel inside the stream.
func Decompress(data []byte) (*Field, error) { return core.Decompress(data) }

// RoundTrip compresses and immediately decompresses, returning the lossy
// reconstruction alongside the compression result — the building block of
// error studies.
func RoundTrip(f *Field, opts Options) (*Field, *Result, error) { return core.RoundTrip(f, opts) }

// Quantization method selectors (the paper's §III-B).
const (
	// SimpleQuantization quantizes every high-frequency value.
	SimpleQuantization = quant.Simple
	// ProposedQuantization quantizes only values inside spiked histogram
	// partitions; outliers pass through losslessly.
	ProposedQuantization = quant.Proposed
)

// Wavelet kernel selectors.
const (
	// HaarWavelet is the paper's kernel.
	HaarWavelet = wavelet.Haar
	// CDF53Wavelet is the smoother (5,3) lifting kernel extension.
	CDF53Wavelet = wavelet.CDF53
)

// ErrorSummary aggregates relative errors the way the paper reports them
// (average / maximum / RMS, in percent).
type ErrorSummary = stats.Summary

// CompareFields returns the relative-error summary (paper Eq. 6) between
// an original and a reconstructed field of the same shape.
func CompareFields(orig, approx *Field) (ErrorSummary, error) {
	return stats.Compare(orig.Data(), approx.Data())
}

// CompressionRatePct returns the paper's cr (Eq. 5): compressed size as a
// percentage of the original. Lower is better.
func CompressionRatePct(compressedBytes, originalBytes int) float64 {
	return stats.CompressionRate(compressedBytes, originalBytes)
}

// --- Checkpoint/restart manager -------------------------------------------

// Manager registers an application's named state arrays and writes/reads
// framed checkpoint streams with a pluggable codec.
type Manager = ckpt.Manager

// Codec turns fields into bytes and back; implementations must be safe for
// concurrent use.
type Codec = ckpt.Codec

// Report aggregates one Checkpoint or Restore operation.
type Report = ckpt.Report

// NewManager returns a manager using the given codec; workers bounds the
// parallel per-array compression (0 = GOMAXPROCS).
func NewManager(codec Codec, workers int) *Manager { return ckpt.NewManager(codec, workers) }

// NewLossyCodec returns the paper's wavelet-based lossy codec with default
// options.
func NewLossyCodec() Codec { return ckpt.NewLossy() }

// NewGzipCodec returns the lossless DEFLATE baseline codec.
func NewGzipCodec() Codec { return ckpt.NewGzip() }

// NewFPCCodec returns the predictive lossless floating-point baseline
// codec (FCM/DFCM, after Burtscher & Ratanaworabhan).
func NewFPCCodec() Codec { return &ckpt.FPC{} }

// NewRawCodec returns the no-compression codec (arrays stored verbatim).
func NewRawCodec() Codec { return ckpt.None{} }

// NewLZ4Codec returns the lossless LZ4+shuffle checkpoint codec: the
// pure-Go LZ4-class coder over byte-shuffled float images, roughly an
// order of magnitude faster than the DEFLATE baseline at a looser
// ratio.
func NewLZ4Codec() Codec { return ckpt.NewLZ4() }

// CodecByName constructs a default-configured codec from its name:
// "none", "gzip", "lz4", "fpc", "lossy" or "guard".
func CodecByName(name string) (Codec, error) { return ckpt.CodecByName(name) }

// --- Entropy stage & autotuner ---------------------------------------------

// EntropyID identifies an entropy-stage codec (Options.EntropyCodec).
type EntropyID = entropy.ID

// Entropy-stage codec selectors.
const (
	// EntropyGzip is the DEFLATE stage the paper uses (the default).
	EntropyGzip = entropy.Gzip
	// EntropyLZ4 is the pure-Go LZ4-class coder: ~10× the DEFLATE
	// throughput at a looser ratio.
	EntropyLZ4 = entropy.LZ4
)

// ParseEntropyID maps a codec name ("gzip", "lz4") to its ID.
func ParseEntropyID(name string) (EntropyID, error) { return entropy.ParseID(name) }

// Tuner picks the entropy-stage configuration (codec, shuffle pre-pass,
// DEFLATE block size) per variable online: it probes candidates on a
// bounded sample, caches the decision, and re-probes on use count or
// observed timing drift. Attach one to a Lossy or Guard codec via its
// Tuner field, or apply decisions to Options directly with
// Tuner.Decide(...).Apply(opts).
type Tuner = tune.Tuner

// TunerConfig parameterizes a Tuner; the zero value uses the balanced
// objective with defaults throughout.
type TunerConfig = tune.Config

// TuneObjective is what the tuner optimizes for.
type TuneObjective = tune.Objective

// Tuner objectives.
const (
	// TuneBalanced charges coding time plus projected bytes against an
	// assumed storage bandwidth (TunerConfig.DiskBytesPerSec).
	TuneBalanced = tune.Balanced
	// TuneThroughput minimizes coding time alone.
	TuneThroughput = tune.Throughput
	// TuneRatio minimizes compressed size alone.
	TuneRatio = tune.Ratio
)

// NewTuner builds an online entropy autotuner.
func NewTuner(cfg TunerConfig) *Tuner { return tune.New(cfg) }

// --- Quality guard ----------------------------------------------------------

// GuardPolicy declares the reconstruction-quality guarantee the guard
// codec enforces per array: max absolute error, max relative error, a
// PSNR floor, the verification mode, and optional per-variable overrides.
type GuardPolicy = guard.Policy

// GuardAnnotation is the guarantee one checkpoint entry actually shipped
// with, carried inside the entry payload and reported back on restore.
type GuardAnnotation = guard.Annotation

// GuardVerifyMode selects how the guard checks a bound: VerifyAnalytic
// (conservative bound from the quantization tables) or VerifyDecode
// (decode and measure; paranoid).
type GuardVerifyMode = guard.VerifyMode

// Guard verification modes.
const (
	VerifyAnalytic = guard.VerifyAnalytic
	VerifyDecode   = guard.VerifyDecode
)

// NewGuardCodec wraps the lossy pipeline in bounded-error enforcement:
// every array is verified against pol and degrades down an escalation
// ladder — more divisions, the simple method, lossless bands, and
// finally bit-exact gzip — rather than violating it.
func NewGuardCodec(pol GuardPolicy) Codec { return ckpt.NewGuard(pol) }

// --- Large-array and error-bound variants ---------------------------------

// ChunkedResult aggregates a chunked (slab-by-slab) compression.
type ChunkedResult = core.ChunkedResult

// CompressChunked compresses the field in slabs of chunkExtent planes
// along axis 0, bounding peak memory for very large arrays; each slab is
// an independent stream inside one framed output.
func CompressChunked(f *Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	return core.CompressChunked(f, opts, chunkExtent)
}

// CompressChunkedTo streams the chunked compression straight to w
// instead of buffering the framed stream: slabs compress on a bounded
// worker pool (opts.Workers) while finished frames are written in
// order, so peak memory is O(workers × chunk). The bytes written are
// identical to CompressChunked's for any worker count.
func CompressChunkedTo(w io.Writer, f *Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	return core.CompressChunkedTo(w, f, opts, chunkExtent)
}

// DecompressAny decodes either a Compress stream or a CompressChunked
// stream, sniffing the framing.
func DecompressAny(data []byte) (*Field, error) { return core.DecompressAny(data) }

// PSNR returns the peak signal-to-noise ratio in decibels between an
// original and a reconstructed field — the metric the later SZ/ZFP
// literature standardizes on.
func PSNR(orig, approx *Field) (float64, error) {
	return stats.PSNR(orig.Data(), approx.Data())
}

// MaxAbsError returns max |orig_i − approx_i| between two fields — the
// quantity an absolute error bound (Options.ErrorBound) promises to cap.
func MaxAbsError(orig, approx *Field) (float64, error) {
	return stats.MaxAbsError(orig.Data(), approx.Data())
}

// --- Observability ----------------------------------------------------------

// Observer collects metrics (counters, gauges, histograms) and trace
// events from every layer that is handed one: set Options.Observer for
// the compression pipeline, Manager.SetObserver for checkpoint/restore.
// A nil *Observer is a valid no-op, so instrumentation costs one branch
// when disabled. Expose the collected state with WritePrometheus (text
// exposition format), WriteJSON (snapshot) or WriteSummary (human table),
// or serve all three plus net/http/pprof with ServeObserver.
type Observer = obs.Registry

// NewObserver returns an empty, ready-to-record observer. Safe for
// concurrent use.
func NewObserver() *Observer { return obs.NewRegistry() }

// SetDefaultObserver installs r as the process-wide fallback observer
// used by every layer whose explicit observer is nil, and returns the
// previous fallback (restore it when done). Passing nil disables the
// fallback again.
func SetDefaultObserver(r *Observer) *Observer { return obs.SetDefault(r) }

// ObserverServer is a live HTTP listener exposing an observer; see
// ServeObserver.
type ObserverServer = obs.Server

// ServeObserver starts an HTTP listener on addr (e.g. ":9090" or
// "127.0.0.1:0") serving /metrics (Prometheus text format),
// /metrics.json, /summary and /debug/pprof/. Close the returned server
// when done.
func ServeObserver(addr string, r *Observer) (*ObserverServer, error) { return obs.Serve(addr, r) }

// WriteObserverSummary renders the observer's state as an aligned
// end-of-run table; it writes nothing for a nil or empty observer.
func WriteObserverSummary(w io.Writer, r *Observer) error { return r.WriteSummary(w) }
