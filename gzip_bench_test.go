// Benchmarks for the block-parallel DEFLATE engine and the streaming
// checkpoint pipeline (ISSUE PR 5): serial CompressFormat vs pigz-style
// CompressParallel over worker and block-size sweeps, both decoders, and
// buffered Checkpoint vs CheckpointStream on the 24 MB nicam16x array.
// `make bench-gzip` distills these into BENCH_gzip.json.
package lossyckpt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"testing"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
)

// floatImage serializes a field to its little-endian byte image — the
// exact input stage 4c sees.
func floatImage(f *grid.Field) []byte {
	out := make([]byte, 8*len(f.Data()))
	for i, v := range f.Data() {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BenchmarkParallelGzip compares the serial DEFLATE stage against the
// block-parallel engine on the NICAM array's byte image: a workers sweep
// at the default 1 MiB block, a block-size sweep at the full worker
// count, and both decode paths. On a single-CPU host the acceptance bar
// is ≤5% overhead vs serial; the speedup claim needs GOMAXPROCS ≥ 2.
func BenchmarkParallelGzip(b *testing.B) {
	data := floatImage(syntheticClimate(b, 1156, 82, 2)) // ~1.5 MB

	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gzipio.CompressFormat(data, gzipio.Default, gzipio.InMemory, "", gzipio.FormatGzip); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("block=1MiB/workers=%d", workers), func(b *testing.B) {
			po := gzipio.ParallelOptions{Workers: workers}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gzipio.CompressParallel(data, gzipio.Default, gzipio.FormatGzip, po); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, block := range []int{256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("block=%dKiB", block>>10), func(b *testing.B) {
			po := gzipio.ParallelOptions{BlockSize: block}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gzipio.CompressParallel(data, gzipio.Default, gzipio.FormatGzip, po); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	multi, err := gzipio.CompressParallel(data, gzipio.Default, gzipio.FormatGzip,
		gzipio.ParallelOptions{BlockSize: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decompress=auto", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gzipio.DecompressAuto(multi.Compressed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompress=parallel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gzipio.DecompressMembersParallel(multi.Compressed, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamingCheckpoint compares the buffered checkpoint (whole
// framed stream assembled in memory) against the v2 streaming pipeline
// on the 24 MB nicam16x array with the chunked lossy codec: identical
// compression work, but the streaming path's bytes_per_op drops by the
// payload size because finished frames flow straight to the writer.
func BenchmarkStreamingCheckpoint(b *testing.B) {
	f := syntheticClimate(b, 16*1156, 82, 2)
	newMgr := func() *ckpt.Manager {
		lossy := ckpt.NewLossy()
		lossy.ChunkExtent = parallelChunkExtent
		m := ckpt.NewManager(lossy, 1)
		if err := m.Register("q", f); err != nil {
			b.Fatal(err)
		}
		return m
	}
	b.Run("buffered", func(b *testing.B) {
		m := newMgr()
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Checkpoint(io.Discard, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		m := newMgr()
		b.SetBytes(int64(f.Bytes()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.CheckpointStream(io.Discard, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
