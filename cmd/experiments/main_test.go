package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "tab1", "datasets"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-run", ""}, &out); err == nil {
		t.Error("empty experiment list accepted")
	}
}

func TestRunSingleExperimentQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	// tab1 needs no model; keep the test instant.
	if err := run([]string{"-run", "tab1", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "System specification") {
		t.Errorf("missing table title in output:\n%s", out.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "tab1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "component,value") {
		t.Errorf("csv header missing: %q", string(csv)[:60])
	}
}

func TestRunRealExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping model-driven experiment in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-run", "fig7", "-quick", "-warmup", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Compression rate vs division number") {
		t.Error("fig7 output missing")
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
