// Command experiments regenerates the tables and figures of Sasaki et al.
// (IPDPS 2015) — see DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	experiments -run all                # every experiment, paper-scale
//	experiments -run fig7,fig8 -quick   # selected experiments, scaled down
//	experiments -run fig9 -csv out/     # also write CSV files
//	experiments -list                   # list experiment ids
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lossyckpt/internal/entropy"
	"lossyckpt/internal/harness"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	runIDs := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := fs.Bool("quick", false, "use the scaled-down workload (fast smoke run)")
	csvDir := fs.String("csv", "", "directory to also write <id>.csv files into")
	list := fs.Bool("list", false, "list experiment ids and exit")
	warmup := fs.Int("warmup", 0, "override warm-up steps (0 = config default)")
	restartSteps := fs.Int("restart-steps", 0, "override fig10 restart steps (0 = config default)")
	codec := fs.String("codec", "", "entropy codec for the entropy experiment's extra row: gzip or lz4 (\"\" = none)")
	shuffle := fs.Bool("shuffle", false, "byte-shuffle pre-pass for the entropy experiment's extra row")
	autotune := fs.Bool("autotune", false, "add the throughput/ratio autotuner objectives to the entropy experiment")
	reportDir := fs.String("report-dir", "", "write full per-workload quality reports (markdown + JSON) into this directory (qa, guard and entropy experiments)")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /metrics.json, /summary and /debug/pprof on this address while experiments run")
	obsOut := fs.String("obs-out", "", "write the final metrics snapshot (JSON) to this file")
	obsSummary := fs.Bool("obs-summary", false, "print the end-of-run metric summary table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range harness.RunnerIDs {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	cfg := harness.Default()
	if *quick {
		cfg = harness.Quick()
	}
	if *warmup > 0 {
		cfg.WarmupSteps = *warmup
	}
	if *restartSteps > 0 {
		cfg.RestartSteps = *restartSteps
	}
	if *codec != "" {
		if _, err := entropy.ParseID(*codec); err != nil {
			return err
		}
		cfg.EntropyCodec = *codec
	}
	cfg.EntropyShuffle = *shuffle
	cfg.Autotune = *autotune
	cfg.ReportDir = *reportDir

	var ids []string
	if *runIDs == "all" {
		ids = harness.RunnerIDs
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := harness.Runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("nothing to run")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// Observability scope: install a default registry so the harness's
	// internal compression/store/checkpoint calls record into it, serve
	// it if asked, and persist/print at the end.
	if *metricsAddr != "" || *obsOut != "" || *obsSummary {
		reg := obs.NewRegistry()
		prev := obs.SetDefault(reg)
		defer obs.SetDefault(prev)
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, reg)
			if err != nil {
				return fmt.Errorf("metrics listener: %w", err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
		}
		defer func() {
			if *obsSummary {
				fmt.Fprintln(out, "-- metrics summary --")
				if err := reg.WriteSummary(out); err != nil {
					fmt.Fprintln(os.Stderr, "metrics summary:", err)
				}
			}
			if *obsOut != "" {
				var buf bytes.Buffer
				err := reg.WriteJSON(&buf)
				if err == nil {
					err = store.WriteFileAtomicOS(*obsOut, buf.Bytes())
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "metrics snapshot:", err)
				}
			}
		}()
	}

	for _, id := range ids {
		start := time.Now()
		tab, err := harness.Runners[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			var buf bytes.Buffer
			if err := tab.CSV(&buf); err != nil {
				return err
			}
			// Atomic write: a crash mid-run never leaves a torn CSV.
			if err := store.WriteFileAtomicOS(path, buf.Bytes()); err != nil {
				return err
			}
		}
	}
	return nil
}
