// Command experiments regenerates the tables and figures of Sasaki et al.
// (IPDPS 2015) — see DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	experiments -run all                # every experiment, paper-scale
//	experiments -run fig7,fig8 -quick   # selected experiments, scaled down
//	experiments -run fig9 -csv out/     # also write CSV files
//	experiments -list                   # list experiment ids
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lossyckpt/internal/harness"
	"lossyckpt/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	runIDs := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := fs.Bool("quick", false, "use the scaled-down workload (fast smoke run)")
	csvDir := fs.String("csv", "", "directory to also write <id>.csv files into")
	list := fs.Bool("list", false, "list experiment ids and exit")
	warmup := fs.Int("warmup", 0, "override warm-up steps (0 = config default)")
	restartSteps := fs.Int("restart-steps", 0, "override fig10 restart steps (0 = config default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range harness.RunnerIDs {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	cfg := harness.Default()
	if *quick {
		cfg = harness.Quick()
	}
	if *warmup > 0 {
		cfg.WarmupSteps = *warmup
	}
	if *restartSteps > 0 {
		cfg.RestartSteps = *restartSteps
	}

	var ids []string
	if *runIDs == "all" {
		ids = harness.RunnerIDs
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := harness.Runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("nothing to run")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, id := range ids {
		start := time.Now()
		tab, err := harness.Runners[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := tab.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			var buf bytes.Buffer
			if err := tab.CSV(&buf); err != nil {
				return err
			}
			// Atomic write: a crash mid-run never leaves a torn CSV.
			if err := store.WriteFileAtomicOS(path, buf.Bytes()); err != nil {
				return err
			}
		}
	}
	return nil
}
