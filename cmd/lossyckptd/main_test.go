package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/server"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL plus a signal function and exit channel.
func startDaemon(t *testing.T, extra ...string) (base string, sig chan os.Signal, done chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	sig = make(chan os.Signal, 2)
	done = make(chan error, 1)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { devnull.Close() })
	go func() { done <- run(args, sig, devnull) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil {
			return "http://" + strings.TrimSpace(string(data)), sig, done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never published its address")
	return "", nil, nil
}

func saveOne(t *testing.T, base, tenant, token string, step int, v float64) *http.Response {
	t.Helper()
	f, err := grid.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Fill(v)
	var buf bytes.Buffer
	if err := server.WriteFields(&buf, []server.NamedField{{Name: "temp", Field: f}}); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/%s/save?step=%d", base, tenant, step)
	req, _ := http.NewRequest("POST", url, &buf)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDaemonSingleTenantLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base, sig, done := startDaemon(t, "-dir", dir, "-token", "hunter2", "-tenant", "demo")

	// Observability and API share the listener.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	resp := saveOne(t, base, "demo", "hunter2", 1, 3.5)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save = %d", resp.StatusCode)
	}
	var sr server.SaveResult
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if sr.Generation != 1 {
		t.Fatalf("save result: %+v", sr)
	}

	// SIGTERM drains: readiness flips, the daemon exits cleanly.
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// Restart over the same dir: state survives.
	base2, sig2, done2 := startDaemon(t, "-dir", dir, "-token", "hunter2", "-tenant", "demo")
	req, _ := http.NewRequest("GET", base2+"/v1/demo/restore", nil)
	req.Header.Set("Authorization", "Bearer hunter2")
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rresp.Header.Get("X-Generation") != "1" {
		t.Fatalf("restore after restart: %d gen %s", rresp.StatusCode, rresp.Header.Get("X-Generation"))
	}
	fields, err := server.ReadFields(rresp.Body)
	if err != nil || len(fields) != 1 || fields[0].Field.Data()[0] != 3.5 {
		t.Fatalf("restored state wrong: %v %v", fields, err)
	}
	sig2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
}

func TestDaemonConfigFile(t *testing.T) {
	root := t.TempDir()
	cfgPath := filepath.Join(root, "daemon.json")
	cfg := fmt.Sprintf(`{
		"max_in_flight": 4,
		"default_timeout": "10s",
		"tenants": [
			{"name": "a", "token": "ta", "dir": %q, "keep": 2, "ttl": "1h"},
			{"name": "b", "token": "tb", "dir": %q}
		]
	}`, filepath.Join(root, "a"), filepath.Join(root, "b"))
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	base, sig, done := startDaemon(t, "-config", cfgPath)

	resp := saveOne(t, base, "a", "ta", 1, 1.0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant a save = %d", resp.StatusCode)
	}
	var sr server.SaveResult
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if sr.ExpireAt == 0 {
		t.Fatal("ttl tenant committed without an expiry stamp")
	}
	resp = saveOne(t, base, "b", "tb", 1, 2.0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant b save = %d", resp.StatusCode)
	}
	// Wrong-token cross-access refused.
	resp = saveOne(t, base, "a", "tb", 2, 9.0)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("cross-tenant save = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run([]string{"-addr", "127.0.0.1:0"}, nil, null); err == nil {
		t.Fatal("run without -dir or -config succeeded")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-dir", t.TempDir()}, nil, null); err == nil {
		t.Fatal("run without -token succeeded")
	}
}
