// Command lossyckptd is the hardened multi-tenant checkpoint daemon: an
// HTTP service exposing save/restore/inspect/fsck/scrub over the
// crash-safe generation store, with per-tenant namespaces behind bearer
// tokens, bounded in-flight admission (backpressure via 429), request
// deadlines, byte quotas, TTL retention, and a graceful SIGTERM drain.
//
// Usage:
//
//	lossyckptd -dir ckpts -token secret [-tenant default] [-addr 127.0.0.1:8777]
//	lossyckptd -config daemon.json [-addr :8777] [-addr-file addr.txt]
//
// The single-tenant flags (-dir/-token/-tenant/-keep/-ttl/-quota-bytes/
// -replicas/-quorum/-backend) spin up one namespace without a config
// file; -config describes any number of tenants as JSON:
//
//	{
//	  "max_in_flight": 16,
//	  "default_timeout": "30s",
//	  "tenants": [
//	    {"name": "climate", "token": "s3cret", "dir": "/data/climate",
//	     "keep": 5, "ttl": "24h", "quota_bytes": 1073741824,
//	     "replicas": 3, "quorum": 2, "backend": "posix"}
//	  ]
//	}
//
// The listener also serves the observability surface: /metrics,
// /metrics.json, /summary, /healthz, /readyz (503 while draining) and
// /debug/pprof. -journal writes one wide event per request to a
// flight-recorder JSONL file (`lossyckpt report -journal` summarizes
// it).
//
// On SIGTERM or SIGINT the daemon stops admitting work (/readyz flips
// to 503, new API requests get 503), lets in-flight requests finish
// within -drain-timeout, then exits; requests overstaying the budget
// have their contexts cancelled and abort cleanly through the store's
// context-aware commit path. A second signal forces immediate drain
// expiry. A daemon killed outright (SIGKILL, power loss) recovers on
// the next start: opening each tenant store replays the crash-safety
// protocol — manifest verification, directory rescan, temp-litter
// sweep, quarantine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/server"
)

func main() {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lossyckptd:", err)
		os.Exit(1)
	}
}

// fileConfig is the JSON shape of -config: durations as strings, so an
// operator writes "30s", not nanosecond integers.
type fileConfig struct {
	MaxInFlight     int          `json:"max_in_flight,omitempty"`
	DefaultTimeout  string       `json:"default_timeout,omitempty"`
	MaxRequestBytes int64        `json:"max_request_bytes,omitempty"`
	ScrubEvery      string       `json:"scrub_every,omitempty"`
	Workers         int          `json:"workers,omitempty"`
	Tenants         []fileTenant `json:"tenants"`
}

type fileTenant struct {
	Name       string `json:"name"`
	Token      string `json:"token"`
	Dir        string `json:"dir"`
	Keep       int    `json:"keep,omitempty"`
	TTL        string `json:"ttl,omitempty"`
	QuotaBytes int64  `json:"quota_bytes,omitempty"`
	Dedup      bool   `json:"dedup,omitempty"`
	Replicas   int    `json:"replicas,omitempty"`
	Quorum     int    `json:"quorum,omitempty"`
	Backend    string `json:"backend,omitempty"`
}

func parseDur(s, what string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("config: bad %s %q: %w", what, s, err)
	}
	return d, nil
}

func loadConfig(path string) (server.Config, error) {
	var cfg server.Config
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	var fc fileConfig
	if err := json.Unmarshal(data, &fc); err != nil {
		return cfg, fmt.Errorf("config %s: %w", path, err)
	}
	cfg.MaxInFlight = fc.MaxInFlight
	cfg.MaxRequestBytes = fc.MaxRequestBytes
	cfg.Workers = fc.Workers
	if cfg.DefaultTimeout, err = parseDur(fc.DefaultTimeout, "default_timeout"); err != nil {
		return cfg, err
	}
	if cfg.ScrubEvery, err = parseDur(fc.ScrubEvery, "scrub_every"); err != nil {
		return cfg, err
	}
	for _, ft := range fc.Tenants {
		ttl, err := parseDur(ft.TTL, "ttl")
		if err != nil {
			return cfg, err
		}
		cfg.Tenants = append(cfg.Tenants, server.TenantConfig{
			Name:       ft.Name,
			Token:      ft.Token,
			Dir:        ft.Dir,
			Keep:       ft.Keep,
			TTL:        ttl,
			QuotaBytes: ft.QuotaBytes,
			Dedup:      ft.Dedup,
			Replicas:   ft.Replicas,
			Quorum:     ft.Quorum,
			Backend:    ft.Backend,
		})
	}
	return cfg, nil
}

func run(args []string, sigs <-chan os.Signal, logw *os.File) error {
	fs := flag.NewFlagSet("lossyckptd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8777", "listen address (use :0 for an ephemeral port with -addr-file)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	configPath := fs.String("config", "", "JSON daemon config (multi-tenant); overrides the single-tenant flags")
	dir := fs.String("dir", "", "single-tenant mode: checkpoint store directory")
	tenant := fs.String("tenant", "default", "single-tenant mode: tenant name")
	token := fs.String("token", "", "single-tenant mode: bearer token (required with -dir)")
	keep := fs.Int("keep", 3, "single-tenant mode: retention ring size (negative keeps everything)")
	ttl := fs.Duration("ttl", 0, "single-tenant mode: generation TTL (0 = no TTL retention)")
	quota := fs.Int64("quota-bytes", 0, "single-tenant mode: stored-bytes quota (0 = unlimited)")
	dedup := fs.Bool("dedup", false, "single-tenant mode: content-addressed chunk dedup for the store")
	replicas := fs.Int("replicas", 1, "single-tenant mode: replica count")
	quorum := fs.Int("quorum", 0, "single-tenant mode: write quorum (0 = majority)")
	backend := fs.String("backend", "posix", "single-tenant mode: store backend (posix or object)")
	maxInFlight := fs.Int("max-in-flight", 0, "bound on concurrently admitted requests (0 = 16); excess gets 429")
	timeout := fs.Duration("timeout", 0, "default per-request deadline when the client sends none (0 = 30s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	scrubEvery := fs.Duration("scrub-every", 0, "background scrub interval per tenant (0 = off)")
	workers := fs.Int("workers", 0, "encode/decode workers per request (0 = GOMAXPROCS)")
	journalPath := fs.String("journal", "", "flight-recorder JSONL path (one wide event per request)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		cfg server.Config
		err error
	)
	if *configPath != "" {
		if cfg, err = loadConfig(*configPath); err != nil {
			return err
		}
	} else {
		if *dir == "" {
			return fmt.Errorf("either -config or -dir is required")
		}
		if *token == "" {
			return fmt.Errorf("-token is required with -dir (the daemon refuses unauthenticated namespaces)")
		}
		n := *replicas
		if n == 1 {
			n = 0
		}
		cfg.Tenants = []server.TenantConfig{{
			Name:       *tenant,
			Token:      *token,
			Dir:        *dir,
			Keep:       *keep,
			TTL:        *ttl,
			QuotaBytes: *quota,
			Dedup:      *dedup,
			Replicas:   n,
			Quorum:     *quorum,
			Backend:    *backend,
		}}
	}
	if *maxInFlight != 0 {
		cfg.MaxInFlight = *maxInFlight
	}
	if *timeout != 0 {
		cfg.DefaultTimeout = *timeout
	}
	if *scrubEvery != 0 {
		cfg.ScrubEvery = *scrubEvery
	}
	if *workers != 0 {
		cfg.Workers = *workers
	}

	reg := obs.NewRegistry()
	cfg.Observer = reg
	if *journalPath != "" {
		j, err := journal.Open(*journalPath, journal.Options{Observer: reg})
		if err != nil {
			return err
		}
		defer j.Close()
		cfg.Journal = j
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	mux := http.NewServeMux()
	mux.Handle("/v1/", s.Handler())
	mux.Handle("/", reg.Handler())
	srv, err := obs.ServeHandler(*addr, mux)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(srv.Addr()+"\n")); err != nil {
			return err
		}
	}
	fmt.Fprintf(logw, "lossyckptd: serving %d tenant(s) on %s\n", len(cfg.Tenants), srv.Addr())

	// Block until the first signal, then drain: readiness flips so load
	// balancers stop routing, in-flight work finishes inside the budget,
	// stragglers are context-cancelled. A second signal forces the
	// deadline immediately.
	sig := <-sigs
	fmt.Fprintf(logw, "lossyckptd: %v: draining (budget %s)\n", sig, *drainTimeout)
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case sig := <-sigs:
			fmt.Fprintf(logw, "lossyckptd: %v: forcing drain\n", sig)
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(logw, "lossyckptd: drain cut off in-flight requests: %v\n", err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(logw, "lossyckptd: drained, bye")
	return nil
}

// writeFileAtomic publishes content via temp-file + rename so a reader
// polling for the address file never sees a partial write.
func writeFileAtomic(path string, content []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, content, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
