// report.go implements the `lossyckpt report` subcommand: Z-checker
// style quality analytics for the built-in workloads (error
// distributions, PSNR, spectra, rate-distortion curves across
// quantization divisions) and flight-recorder journal summaries (top-N
// slowest operations, escalation and repair counts, codec decisions).
// Both modes render markdown; workload reports also persist JSON when
// -out names a directory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/heat"
	"lossyckpt/internal/nbody"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/qa"
)

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	workload := fs.String("workload", "", "quality report for this workload: climate|heat|nbody")
	steps := fs.Int("steps", 40, "simulation steps before assessing")
	divisions := fs.String("divisions", "", "comma-separated quantization divisions for the rate-distortion sweep (default 16..1024)")
	outDir := fs.String("out", "", "write <workload>-report.md/.json into this directory (default: markdown to stdout)")
	jpath := fs.String("journal", "", "summarize this flight-recorder journal (JSONL) instead of / in addition to a workload report")
	top := fs.Int("top", 10, "journal summary: slowest operations to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" && *jpath == "" {
		return errors.New("report: need -workload and/or -journal")
	}
	if *workload != "" {
		if err := workloadReport(*workload, *steps, *divisions, *outDir); err != nil {
			return err
		}
	}
	if *jpath != "" {
		if err := journalReport(*jpath, *top, *outDir); err != nil {
			return err
		}
	}
	return nil
}

// workloadFields steps one of the built-in workloads and returns its
// checkpoint arrays.
func workloadFields(name string, steps int) ([]qa.NamedField, error) {
	switch name {
	case "climate":
		m, err := climate.New(climate.DefaultConfig())
		if err != nil {
			return nil, err
		}
		m.StepN(steps)
		var out []qa.NamedField
		for _, nf := range m.Fields() {
			out = append(out, qa.NamedField{Name: nf.Name, Field: nf.Field})
		}
		return out, nil
	case "heat":
		s, err := heat.New(heat.DefaultConfig())
		if err != nil {
			return nil, err
		}
		s.StepN(steps)
		return []qa.NamedField{{Name: "temperature", Field: s.Temperature()}}, nil
	case "nbody":
		s, err := nbody.New(nbody.DefaultConfig())
		if err != nil {
			return nil, err
		}
		s.StepN(steps)
		var out []qa.NamedField
		for _, nf := range s.Fields() {
			out = append(out, qa.NamedField{Name: nf.Name, Field: nf.Field})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("report: unknown workload %q (want climate|heat|nbody)", name)
	}
}

// workloadReport builds the full quality report for one workload:
// per-variable assessment at the default operating point plus a
// rate-distortion sweep across divisions.
func workloadReport(name string, steps int, divisionsCSV, outDir string) error {
	fields, err := workloadFields(name, steps)
	if err != nil {
		return err
	}
	divs := qa.DefaultDivisions
	if divisionsCSV != "" {
		if divs, err = parseDivisions(divisionsCSV); err != nil {
			return err
		}
	}
	opts := core.DefaultOptions()
	rep := &qa.Report{
		Title:    fmt.Sprintf("Checkpoint quality report: %s", name),
		Workload: name,
		Codec:    "lossy (wavelet+quantize)",
		Created:  time.Now().UTC(),
	}
	rep.AddNote("%d simulation steps before assessment; %d divisions at the default operating point.",
		steps, opts.Divisions)
	for _, nf := range fields {
		a, rd, err := assessField(nf.Name, nf.Field, opts, divs)
		if err != nil {
			return fmt.Errorf("report: %s/%s: %w", name, nf.Name, err)
		}
		rep.Assessments = append(rep.Assessments, a)
		rep.RD = append(rep.RD, qa.VarRD{Var: nf.Name, Points: rd})
	}
	if outDir != "" {
		md, js, err := rep.WriteFiles(outDir, name+"-report")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report: wrote %s and %s\n", md, js)
		return nil
	}
	return rep.WriteMarkdown(os.Stdout)
}

// assessField round-trips one array at the default operating point for
// the error assessment, then sweeps divisions for the RD curve.
func assessField(name string, f *grid.Field, opts core.Options, divs []int) (*qa.Assessment, []qa.RDPoint, error) {
	res, err := core.Compress(f, opts)
	if err != nil {
		return nil, nil, err
	}
	dec, err := core.Decompress(res.Data)
	if err != nil {
		return nil, nil, err
	}
	a, err := qa.Assess(name, f.Data(), dec.Data(), qa.Options{})
	if err != nil {
		return nil, nil, err
	}
	rd, err := qa.RateDistortion(f, opts, divs)
	if err != nil {
		return nil, nil, err
	}
	return a, rd, nil
}

// journalReport renders the markdown summary of one journal (including
// rotated predecessors).
func journalReport(path string, top int, outDir string) error {
	recs, torn, err := journal.ReadAll(path)
	if err != nil {
		return fmt.Errorf("report: reading journal: %w", err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("report: journal %s holds no records", path)
	}
	sum := journal.Summarize(recs, torn, top)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		fpath := outDir + string(os.PathSeparator) + "journal-summary.md"
		out, err := os.Create(fpath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := sum.WriteMarkdown(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report: wrote %s\n", fpath)
		return nil
	}
	return sum.WriteMarkdown(os.Stdout)
}

// parseDivisions parses "16,64,256" into a division list.
func parseDivisions(csv string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(csv, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("report: bad division %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("report: empty division list")
	}
	return out, nil
}
