// Command lossyckpt is the command-line front end of the lossy checkpoint
// compressor: it generates demo fields, compresses and decompresses field
// files, and inspects compressed archives.
//
// Field files use the grid package's serialization (extension .grd by
// convention); compressed archives are the paper's formatted output after
// gzip (extension .lkc).
//
// Usage:
//
//	lossyckpt gen -out temp.grd [-shape 1156x82x2] [-steps 720] [-var temperature]
//	lossyckpt compress -in temp.grd -out temp.lkc [-method proposed] [-n 128] [-d 64] [-levels 1] [-scheme haar] [-chunk 0] [-workers 0]
//	lossyckpt decompress -in temp.lkc -out restored.grd [-workers 0]
//	lossyckpt inspect -in temp.lkc
//	lossyckpt diff -a temp.grd -b restored.grd
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/container"
	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lossyckpt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lossyckpt <gen|compress|decompress|inspect|diff> [flags]")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "compress":
		return cmdCompress(args[1:])
	case "decompress":
		return cmdDecompress(args[1:])
	case "inspect":
		return cmdInspect(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func parseShape(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	shape := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid shape %q", s)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

func readField(path string) (*grid.Field, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return grid.ReadField(f)
}

func writeField(path string, fld *grid.Field) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fld.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "", "output .grd file (required)")
	shapeStr := fs.String("shape", "1156x82x2", "grid shape, e.g. 1156x82x2 (3D only)")
	steps := fs.Int("steps", 720, "climate warm-up steps before the snapshot")
	varName := fs.String("var", "temperature", "which field to export (pressure, temperature, wind_u, wind_v, wind_w)")
	seed := fs.Int64("seed", 2015, "initial-condition seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	shape, err := parseShape(*shapeStr)
	if err != nil {
		return err
	}
	if len(shape) != 3 {
		return fmt.Errorf("gen: the climate generator needs a 3D shape, got %v", shape)
	}
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz, cfg.Nc = shape[0], shape[1], shape[2]
	cfg.Seed = *seed
	m, err := climate.New(cfg)
	if err != nil {
		return err
	}
	if m.Field(*varName) == nil {
		return fmt.Errorf("gen: unknown variable %q", *varName)
	}
	m.StepN(*steps)
	fld := m.Field(*varName)
	if err := writeField(*out, fld); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s after %d steps\n", *out, fld, *steps)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ContinueOnError)
	in := fs.String("in", "", "input .grd file (required)")
	out := fs.String("out", "", "output .lkc file (required)")
	methodStr := fs.String("method", "proposed", "quantization method: simple or proposed")
	n := fs.Int("n", 128, "division number (1..255)")
	d := fs.Int("d", quant.DefaultSpikeDivisions, "spike-detection divisions")
	levels := fs.Int("levels", 1, "wavelet decomposition levels")
	schemeStr := fs.String("scheme", "haar", "wavelet scheme: haar or cdf53")
	tempFile := fs.Bool("tempfile", false, "emulate the paper prototype's temp-file gzip path")
	chunk := fs.Int("chunk", 0, "compress in slabs of this many leading-axis planes (0 = whole array)")
	workers := fs.Int("workers", 0, "parallel compression workers (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -in and -out are required")
	}
	method, err := quant.ParseMethod(*methodStr)
	if err != nil {
		return err
	}
	scheme, err := wavelet.ParseScheme(*schemeStr)
	if err != nil {
		return err
	}
	fld, err := readField(*in)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Method = method
	opts.Divisions = *n
	opts.SpikeDivisions = *d
	opts.Levels = *levels
	opts.Scheme = scheme
	opts.Workers = *workers
	if *tempFile {
		opts.GzipMode = gzipio.TempFile
	}
	if *chunk > 0 {
		res, err := core.CompressChunkedParallel(fld, opts, *chunk)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, res.Data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s -> %s: %d -> %d bytes (cr %.2f%%), %d chunks on %d workers\n",
			*in, *out, res.RawBytes, len(res.Data), res.CompressionRatePct(), res.Chunks, res.Workers)
		fmt.Printf("wall %v, cpu %v (speedup %.2fx)\n",
			res.Timings.Total, res.Timings.CPUTotal,
			float64(res.Timings.CPUTotal)/float64(res.Timings.Total))
		return nil
	}
	res, err := core.Compress(fld, opts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, res.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s -> %s: %d -> %d bytes (cr %.2f%%)\n",
		*in, *out, res.RawBytes, res.CompressedBytes, res.CompressionRatePct())
	fmt.Printf("phases: wavelet %v, quantize %v, encode %v, format %v, temp-write %v, gzip %v\n",
		res.Timings.Wavelet, res.Timings.Quantize, res.Timings.Encode,
		res.Timings.Format, res.Timings.TempWrite, res.Timings.Gzip)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ContinueOnError)
	in := fs.String("in", "", "input .lkc file (required)")
	out := fs.String("out", "", "output .grd file (required)")
	workers := fs.Int("workers", 0, "parallel decompression workers (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -in and -out are required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	fld, err := core.DecompressAnyParallel(data, *workers)
	if err != nil {
		return err
	}
	if err := writeField(*out, fld); err != nil {
		return err
	}
	fmt.Printf("%s -> %s: %s\n", *in, *out, fld)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "input .lkc file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	formatted, err := gzipio.Decompress(data)
	if err != nil {
		return err
	}
	arch, err := container.FromBytes(formatted)
	if err != nil {
		return err
	}
	fmt.Printf("file: %s\n", *in)
	fmt.Printf("  compressed size:  %d bytes\n", len(data))
	fmt.Printf("  formatted size:   %d bytes\n", len(formatted))
	fmt.Printf("  shape:            %v\n", arch.Shape)
	fmt.Printf("  wavelet scheme:   %s (levels=%d)\n", arch.Params.Scheme, arch.Params.Levels)
	mode := "pooled"
	if arch.Params.PerBand {
		mode = "per-band"
	}
	fmt.Printf("  quantization:     %s (n=%d, d=%d, %s)\n", arch.Params.Method, arch.Params.Divisions, arch.Params.SpikeDivisions, mode)
	fmt.Printf("  low band:         %d values\n", len(arch.Low))
	highN := 0
	for bi, b := range arch.Bands {
		fmt.Printf("  high band %d:      %d values (%d quantized, %d passthrough)\n",
			bi, b.N, len(b.Codes), len(b.Passthrough))
		highN += b.N
	}
	raw := 8 * (len(arch.Low) + highN)
	fmt.Printf("  compression rate: %.2f%%\n", stats.CompressionRate(len(data), raw))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	a := fs.String("a", "", "first .grd file (required)")
	b := fs.String("b", "", "second .grd file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	fa, err := readField(*a)
	if err != nil {
		return err
	}
	fb, err := readField(*b)
	if err != nil {
		return err
	}
	if !fa.SameShape(fb) {
		return fmt.Errorf("shape mismatch: %v vs %v", fa.Shape(), fb.Shape())
	}
	s, err := stats.Compare(fa.Data(), fb.Data())
	if err != nil {
		return err
	}
	fmt.Printf("relative error (Eq. 6 of the paper): %s\n", s)
	return nil
}
