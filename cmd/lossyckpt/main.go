// Command lossyckpt is the command-line front end of the lossy checkpoint
// compressor: it generates demo fields, compresses and decompresses field
// files, and inspects compressed archives.
//
// Field files use the grid package's serialization (extension .grd by
// convention); compressed archives are the paper's formatted output after
// gzip (extension .lkc).
//
// Usage:
//
//	lossyckpt gen -out temp.grd [-shape 1156x82x2] [-steps 720] [-var temperature]
//	lossyckpt compress -in temp.grd -out temp.lkc [-method proposed] [-n 128] [-d 64] [-levels 1] [-scheme haar] [-chunk 0] [-workers 0] [-codec gzip] [-shuffle] [-autotune]
//	lossyckpt decompress -in temp.lkc -out restored.grd [-workers 0]
//	lossyckpt inspect -in temp.lkc
//	lossyckpt diff -a temp.grd -b restored.grd
//	lossyckpt save -dir ckpts -in a.grd[,b.grd...] [-keep 3] [-codec lossy] [-shuffle] [-autotune] [-step 0] [-workers 0] [-bound 0] [-rel-bound 0] [-psnr 0] [-guard-mode analytic] [-replicas 1] [-quorum 0] [-backend posix]
//	lossyckpt restore -dir ckpts -out outdir [-workers 0] [-replicas 1] [-quorum 0] [-backend posix]
//	lossyckpt fsck -dir ckpts [-decode] [-workers 0] [-replicas 1] [-quorum 0] [-backend posix]
//
// save and restore use the crash-safe generation store of package store:
// save commits one checkpoint atomically (temp file → fsync → rename →
// manifest update) into a retention ring of -keep generations; restore
// recovers from the newest verifiable generation, falling back
// generation-by-generation — and to frame-level partial recovery — on
// corruption. All file outputs of every subcommand are written
// atomically, so an interrupted run never leaves truncated files.
//
// The compress, decompress, save and restore subcommands additionally
// accept observability flags: -metrics addr serves /metrics (Prometheus
// text format), /metrics.json, /summary and /debug/pprof for the
// duration of the run; -obs-out file persists the final metrics
// snapshot as JSON; -obs-summary prints an end-of-run metric table;
// -metrics-hold keeps the listener up after the work finishes so short
// runs can be scraped. save -quality adds per-variable reconstruction
// quality gauges (PSNR, max relative/absolute error) for lossy codecs.
//
// save -bound/-rel-bound/-psnr switch the codec to the quality guard: the
// declared bound is enforced on every array (violations degrade down an
// escalation ladder, ultimately to bit-exact gzip) and each entry is
// annotated with the guarantee it ships with, which restore and fsck
// report back. -guard-mode picks analytic (bound from quantization
// tables; cheap, conservative) or decode (re-expand and measure;
// paranoid) verification.
//
// The entropy stage is pluggable: compress -codec picks the entropy
// codec (gzip, or the pure-Go lz4 coder), -shuffle inserts the
// byte-shuffle pre-pass, and -autotune lets the online tuner of package
// tune probe a sample and pick codec/shuffle/block size itself. save
// accepts the same -shuffle/-autotune switches (the tuner attaches to
// the lossy and guard codecs; -codec lz4 selects the lossless lz4
// checkpoint codec). inspect and fsck report each payload's entropy
// framing, sniffed from the self-describing envelope.
//
// fsck audits a store in place: every retained generation is re-read and
// re-verified (size, CRC, stream framing, guard envelopes; -decode adds
// a full decode of every entry) and corrupt generations are moved to
// quarantine/ — never deleted — with the manifest rebuilt if the newest
// generation was the casualty. Exits non-zero when anything was
// quarantined, missing or divergent.
//
// save, restore and fsck share the store-topology flags: -backend picks
// the commit protocol (posix rename, or object-store-style pointer swap
// with no rename), and -replicas N spreads the store over N
// subdirectories r0..r{N-1} with quorum semantics — save commits to at
// least W replicas (-quorum, default majority), restore reads the newest
// quorum-agreed generation with per-replica fallback and inline
// read-repair of corrupt or missing copies, and fsck additionally heals
// lagging replicas and reports residual divergence. -replicas 1 (the
// default) keeps the original single-directory layout byte-identical.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/container"
	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/store"
	"lossyckpt/internal/tune"
	"lossyckpt/internal/wavelet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lossyckpt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lossyckpt <gen|compress|decompress|inspect|diff|save|restore|fsck|report|client> [flags]")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "compress":
		return cmdCompress(args[1:])
	case "decompress":
		return cmdDecompress(args[1:])
	case "inspect":
		return cmdInspect(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "save":
		return cmdSave(args[1:])
	case "restore":
		return cmdRestore(args[1:])
	case "fsck":
		return cmdFsck(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "client":
		return cmdClient(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func parseShape(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	shape := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid shape %q", s)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

func readField(path string) (*grid.Field, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return grid.ReadField(f)
}

// writeField serializes a field and writes it atomically (temp + fsync
// + rename), so an interrupted run never leaves a truncated .grd file.
func writeField(path string, fld *grid.Field) error {
	var buf bytes.Buffer
	if _, err := fld.WriteTo(&buf); err != nil {
		return err
	}
	return store.WriteFileAtomicOS(path, buf.Bytes())
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "", "output .grd file (required)")
	shapeStr := fs.String("shape", "1156x82x2", "grid shape, e.g. 1156x82x2 (3D only)")
	steps := fs.Int("steps", 720, "climate warm-up steps before the snapshot")
	varName := fs.String("var", "temperature", "which field to export (pressure, temperature, wind_u, wind_v, wind_w)")
	seed := fs.Int64("seed", 2015, "initial-condition seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	shape, err := parseShape(*shapeStr)
	if err != nil {
		return err
	}
	if len(shape) != 3 {
		return fmt.Errorf("gen: the climate generator needs a 3D shape, got %v", shape)
	}
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz, cfg.Nc = shape[0], shape[1], shape[2]
	cfg.Seed = *seed
	m, err := climate.New(cfg)
	if err != nil {
		return err
	}
	if m.Field(*varName) == nil {
		return fmt.Errorf("gen: unknown variable %q", *varName)
	}
	m.StepN(*steps)
	fld := m.Field(*varName)
	if err := writeField(*out, fld); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s after %d steps\n", *out, fld, *steps)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ContinueOnError)
	in := fs.String("in", "", "input .grd file (required)")
	out := fs.String("out", "", "output .lkc file (required)")
	methodStr := fs.String("method", "proposed", "quantization method: simple or proposed")
	n := fs.Int("n", 128, "division number (1..255)")
	d := fs.Int("d", quant.DefaultSpikeDivisions, "spike-detection divisions")
	levels := fs.Int("levels", 1, "wavelet decomposition levels")
	schemeStr := fs.String("scheme", "haar", "wavelet scheme: haar or cdf53")
	tempFile := fs.Bool("tempfile", false, "emulate the paper prototype's temp-file gzip path")
	chunk := fs.Int("chunk", 0, "compress in slabs of this many leading-axis planes (0 = whole array)")
	workers := fs.Int("workers", 0, "parallel compression workers (0 = GOMAXPROCS, 1 = serial)")
	gzipBlock := fs.Int("gzip-block", 0, "block-parallel DEFLATE block size in bytes (0 = serial gzip stage; incompatible with -tempfile)")
	codecStr := fs.String("codec", "gzip", "entropy codec: gzip or lz4")
	shuffle := fs.Bool("shuffle", false, "byte-shuffle pre-pass before the entropy codec")
	autotune := fs.Bool("autotune", false, "let the online autotuner pick codec/shuffle/block size (overrides -codec, -shuffle and -gzip-block)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -in and -out are required")
	}
	sess, err := startObs(of)
	if err != nil {
		return err
	}
	defer sess.finish()
	method, err := quant.ParseMethod(*methodStr)
	if err != nil {
		return err
	}
	scheme, err := wavelet.ParseScheme(*schemeStr)
	if err != nil {
		return err
	}
	fld, err := readField(*in)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Method = method
	opts.Divisions = *n
	opts.SpikeDivisions = *d
	opts.Levels = *levels
	opts.Scheme = scheme
	opts.Workers = *workers
	opts.GzipBlock = *gzipBlock
	if *tempFile {
		opts.GzipMode = gzipio.TempFile
	}
	eid, err := entropy.ParseID(*codecStr)
	if err != nil {
		return err
	}
	opts.EntropyCodec = eid
	opts.Shuffle = *shuffle
	opts.VarName = varNameFromPath(*in)
	if *autotune {
		setting := tune.New(tune.Config{}).Decide(opts.VarName, fld.Bytes(), floatSample(fld.Data(), 256<<10))
		opts = setting.Apply(opts)
		fmt.Printf("autotune: selected %s\n", setting.Label())
	}
	if *chunk > 0 {
		res, err := core.CompressChunkedParallel(fld, opts, *chunk)
		if err != nil {
			return err
		}
		if err := store.WriteFileAtomicOS(*out, res.Data); err != nil {
			return err
		}
		fmt.Printf("%s -> %s: %d -> %d bytes (cr %.2f%%), %d chunks on %d workers\n",
			*in, *out, res.RawBytes, len(res.Data), res.CompressionRatePct(), res.Chunks, res.Workers)
		fmt.Printf("wall %v, cpu %v (speedup %.2fx)\n",
			res.Timings.Total, res.Timings.CPUTotal,
			float64(res.Timings.CPUTotal)/float64(res.Timings.Total))
		return nil
	}
	res, err := core.Compress(fld, opts)
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomicOS(*out, res.Data); err != nil {
		return err
	}
	fmt.Printf("%s -> %s: %d -> %d bytes (cr %.2f%%)\n",
		*in, *out, res.RawBytes, res.CompressedBytes, res.CompressionRatePct())
	fmt.Printf("phases: wavelet %v, quantize %v, encode %v, format %v, temp-write %v, gzip %v\n",
		res.Timings.Wavelet, res.Timings.Quantize, res.Timings.Encode,
		res.Timings.Format, res.Timings.TempWrite, res.Timings.Gzip)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ContinueOnError)
	in := fs.String("in", "", "input .lkc file (required)")
	out := fs.String("out", "", "output .grd file (required)")
	workers := fs.Int("workers", 0, "parallel decompression workers (0 = GOMAXPROCS, 1 = serial)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -in and -out are required")
	}
	sess, err := startObs(of)
	if err != nil {
		return err
	}
	defer sess.finish()
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	fld, err := core.DecompressAnyParallel(data, *workers)
	if err != nil {
		return err
	}
	if err := writeField(*out, fld); err != nil {
		return err
	}
	fmt.Printf("%s -> %s: %s\n", *in, *out, fld)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "input .lkc file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	formatted, err := entropy.Decompress(data, 0)
	if err != nil {
		return err
	}
	arch, err := container.FromBytes(formatted)
	if err != nil {
		return err
	}
	fmt.Printf("file: %s\n", *in)
	fmt.Printf("  compressed size:  %d bytes\n", len(data))
	fmt.Printf("  entropy codec:    %s\n", core.IdentifyEntropy(data))
	fmt.Printf("  formatted size:   %d bytes\n", len(formatted))
	fmt.Printf("  shape:            %v\n", arch.Shape)
	fmt.Printf("  wavelet scheme:   %s (levels=%d)\n", arch.Params.Scheme, arch.Params.Levels)
	mode := "pooled"
	if arch.Params.PerBand {
		mode = "per-band"
	}
	fmt.Printf("  quantization:     %s (n=%d, d=%d, %s)\n", arch.Params.Method, arch.Params.Divisions, arch.Params.SpikeDivisions, mode)
	fmt.Printf("  low band:         %d values\n", len(arch.Low))
	highN := 0
	for bi, b := range arch.Bands {
		fmt.Printf("  high band %d:      %d values (%d quantized, %d passthrough)\n",
			bi, b.N, len(b.Codes), len(b.Passthrough))
		highN += b.N
	}
	raw := 8 * (len(arch.Low) + highN)
	fmt.Printf("  compression rate: %.2f%%\n", stats.CompressionRate(len(data), raw))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	a := fs.String("a", "", "first .grd file (required)")
	b := fs.String("b", "", "second .grd file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	fa, err := readField(*a)
	if err != nil {
		return err
	}
	fb, err := readField(*b)
	if err != nil {
		return err
	}
	if !fa.SameShape(fb) {
		return fmt.Errorf("shape mismatch: %v vs %v", fa.Shape(), fb.Shape())
	}
	s, err := stats.Compare(fa.Data(), fb.Data())
	if err != nil {
		return err
	}
	maxAbs, err := stats.MaxAbsError(fa.Data(), fb.Data())
	if err != nil {
		return err
	}
	psnr, err := stats.PSNR(fa.Data(), fb.Data())
	if err != nil {
		return err
	}
	maxRel, err := stats.MaxRelError(fa.Data(), fb.Data())
	if err != nil {
		return err
	}
	fmt.Printf("relative error (Eq. 6 of the paper): %s\n", s)
	fmt.Printf("max relative error: %.6g%%\n", 100*maxRel)
	fmt.Printf("max absolute error: %.6g\n", maxAbs)
	fmt.Printf("psnr: %.2f dB\n", psnr)
	return nil
}

// varNameFromPath derives the checkpoint variable name from a field
// file path: base name without the extension.
func varNameFromPath(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// floatSample serializes at most maxBytes of a field's leading values as
// the autotuner's probe sample (little-endian, matching the entropy
// stage's byte image).
func floatSample(data []float64, maxBytes int) []byte {
	n := len(data)
	if n*8 > maxBytes {
		n = maxBytes / 8
	}
	buf := make([]byte, 8*n)
	for i, v := range data[:n] {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// storeFlags carries the store-topology flags shared by save, restore
// and fsck: backend selection and N-way replication.
type storeFlags struct {
	replicas *int
	quorum   *int
	backend  *string
}

func addStoreFlags(fs *flag.FlagSet) storeFlags {
	return storeFlags{
		replicas: fs.Int("replicas", 1, "replicate the store across N subdirectories r0..r{N-1} with quorum commit/read"),
		quorum:   fs.Int("quorum", 0, "write quorum W for -replicas N (0 = majority)"),
		backend:  fs.String("backend", "posix", "store backend: posix (rename commit) or object (pointer-swap commit)"),
	}
}

// open opens the store topology the flags describe under dir: a plain
// single-root store for -replicas 1 (byte-identical to the pre-replication
// layout), an N-way replicated store otherwise.
func (sf storeFlags) open(dir string, opts store.Options) (store.Target, error) {
	bk, err := store.ParseBackend(*sf.backend)
	if err != nil {
		return nil, err
	}
	opts.Backend = bk
	n, w := *sf.replicas, *sf.quorum
	if n < 1 {
		return nil, fmt.Errorf("-replicas must be >= 1, got %d", n)
	}
	if w < 0 || w > n {
		return nil, fmt.Errorf("-quorum %d out of range for %d replicas", w, n)
	}
	if n == 1 {
		return store.Open(dir, opts)
	}
	return store.OpenReplicated(dir, store.ReplicaDirs(dir, n), w, opts)
}

// finish drains replication stragglers (replicas past quorum still
// committing) before the process exits, and reports the topology.
func storeFinish(st store.Target) {
	if rs, ok := st.(*store.ReplicatedStore); ok {
		rs.Wait()
	}
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint store directory (required)")
	in := fs.String("in", "", "comma-separated .grd files to checkpoint (required)")
	keep := fs.Int("keep", 3, "generations to retain")
	dedup := fs.Bool("dedup", false, "content-addressed chunk dedup: unchanged slabs across generations are stored once")
	codecName := fs.String("codec", "lossy", "checkpoint codec: none, gzip, lz4, fpc or lossy")
	step := fs.Int("step", 0, "application step recorded in the checkpoint")
	workers := fs.Int("workers", 0, "parallel compression workers (0 = GOMAXPROCS, 1 = serial)")
	shuffle := fs.Bool("shuffle", false, "byte-shuffle pre-pass for the entropy stage (gzip, lossy and guard codecs)")
	autotune := fs.Bool("autotune", false, "attach the online entropy autotuner (lossy and guard codecs)")
	quality := fs.Bool("quality", false, "record per-variable reconstruction-quality gauges (lossy codecs; costs a decode per array)")
	bound := fs.Float64("bound", 0, "enforce this max absolute reconstruction error (switches to the guard codec)")
	relBound := fs.Float64("rel-bound", 0, "enforce this max relative (range-normalized) reconstruction error")
	psnrFloor := fs.Float64("psnr", 0, "enforce this minimum PSNR in dB")
	guardMode := fs.String("guard-mode", "analytic", "guard verification: analytic or decode (paranoid)")
	sf := addStoreFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *in == "" {
		return fmt.Errorf("save: -dir and -in are required")
	}
	sess, err := startObs(of)
	if err != nil {
		return err
	}
	defer sess.finish()
	var codec ckpt.Codec
	if *bound > 0 || *relBound > 0 || *psnrFloor > 0 || *codecName == "guard" {
		vm, err := guard.ParseVerifyMode(*guardMode)
		if err != nil {
			return err
		}
		codec = ckpt.NewGuard(guard.Policy{
			MaxAbs: *bound, MaxRel: *relBound, PSNRFloor: *psnrFloor, Verify: vm})
	} else {
		codec, err = ckpt.CodecByName(*codecName)
		if err != nil {
			return err
		}
	}
	if *shuffle {
		switch c := codec.(type) {
		case *ckpt.Gzip:
			c.Shuffle = true
		case *ckpt.Lossy:
			c.Options.Shuffle = true
		case *ckpt.Guard:
			c.Options.Shuffle = true
		default:
			return fmt.Errorf("save: -shuffle is not supported by codec %q", codec.Name())
		}
	}
	if *autotune {
		tn := tune.New(tune.Config{})
		switch c := codec.(type) {
		case *ckpt.Lossy:
			c.Tuner = tn
		case *ckpt.Guard:
			c.Tuner = tn
		default:
			return fmt.Errorf("save: -autotune needs the lossy or guard codec, not %q", codec.Name())
		}
	}
	mgr := ckpt.NewManager(codec, *workers)
	mgr.EnableQualityTelemetry(*quality)
	for _, path := range strings.Split(*in, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		fld, err := readField(path)
		if err != nil {
			return err
		}
		if err := mgr.Register(varNameFromPath(path), fld); err != nil {
			return err
		}
	}
	st, err := sf.open(*dir, store.Options{Keep: *keep, Dedup: *dedup})
	if err != nil {
		return err
	}
	rep, gen, err := mgr.CheckpointTo(st, *step)
	if err != nil {
		return err
	}
	storeFinish(st)
	fmt.Printf("committed generation %d (step %d): %d arrays, %d -> %d bytes (cr %.2f%%)\n",
		gen.Seq, *step, len(rep.Entries), rep.RawBytes, rep.CompressedBytes,
		stats.CompressionRate(int(gen.Size), rep.RawBytes))
	for _, e := range rep.Entries {
		if e.Guarantee != nil {
			fmt.Printf("  %s: %s\n", e.Name, e.Guarantee)
		}
	}
	fmt.Printf("store %s retains %d generation(s), keep %d\n", st.Dir(), len(st.Generations()), *keep)
	if *dedup {
		printDedupStats(st)
	}
	if rs, ok := st.(*store.ReplicatedStore); ok {
		fmt.Printf("replicated %d-way (write quorum %d), backend %s\n",
			rs.Replicas(), rs.Quorum(), *sf.backend)
	}
	return nil
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint store directory (required)")
	out := fs.String("out", "", "output directory for restored .grd files (required)")
	workers := fs.Int("workers", 0, "parallel decompression workers (0 = GOMAXPROCS, 1 = serial)")
	sf := addStoreFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *out == "" {
		return fmt.Errorf("restore: -dir and -out are required")
	}
	sess, err := startObs(of)
	if err != nil {
		return err
	}
	defer sess.finish()
	st, err := sf.open(*dir, store.Options{})
	if err != nil {
		return err
	}
	defer storeFinish(st)
	if st.Rebuilt() {
		fmt.Fprintln(os.Stderr, "restore: manifest was missing or corrupt; index rebuilt from directory scan")
	}
	lc, err := ckpt.LoadLatest(st, *workers)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, lf := range lc.Fields {
		path := filepath.Join(*out, lf.Name+".grd")
		if err := writeField(path, lf.Field); err != nil {
			return err
		}
		fmt.Printf("restored %s: %s\n", path, lf.Field)
		if lf.Guarantee != nil {
			fmt.Printf("  guarantee: %s\n", lf.Guarantee)
		}
	}
	latest, _ := st.Latest()
	fmt.Printf("generation %d (step %d, codec %s): %d array(s) recovered\n",
		lc.Generation, lc.Step, lc.Codec, len(lc.Fields))
	if lc.Generation != latest.Seq {
		fmt.Printf("fell back from generation %d to %d\n", latest.Seq, lc.Generation)
	}
	if lc.Partial {
		fmt.Printf("partial recovery: %d frame(s) skipped\n", lc.SkippedFrames)
	}
	return nil
}

func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint store directory (required)")
	decode := fs.Bool("decode", false, "fully decode every entry (paranoid; slow for large stores)")
	workers := fs.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
	sf := addStoreFlags(fs)
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("fsck: -dir is required")
	}
	sess, err := startObs(of)
	if err != nil {
		return err
	}
	defer sess.finish()
	st, err := sf.open(*dir, store.Options{Keep: -1})
	if err != nil {
		return err
	}
	defer storeFinish(st)
	if st.Rebuilt() {
		fmt.Println("manifest was missing or corrupt; index rebuilt from directory scan")
	}
	rep, err := st.Scrub(store.ScrubOptions{Verify: ckpt.StoreVerifier(*decode, *workers)})
	if err != nil {
		return err
	}
	fmt.Printf("checked %d generation(s)\n", rep.Checked)
	for _, q := range rep.Quarantined {
		fmt.Printf("  generation %d corrupt (%s): moved to %s\n", q.Seq, q.Reason, q.Path)
	}
	for _, seq := range rep.Missing {
		fmt.Printf("  generation %d missing: dropped from index\n", seq)
	}
	if rep.ManifestRebuilt {
		fmt.Println("newest generation was quarantined; manifest rebuilt from surviving files")
	}
	for _, rs := range rep.Replicas {
		if rs.Err != nil {
			fmt.Printf("  replica %d: unavailable: %v\n", rs.Replica, rs.Err)
			continue
		}
		if rs.Report != nil {
			for _, q := range rs.Report.Quarantined {
				fmt.Printf("  replica %d: generation %d corrupt (%s): moved to %s\n",
					rs.Replica, q.Seq, q.Reason, q.Path)
			}
			for _, seq := range rs.Report.Missing {
				fmt.Printf("  replica %d: generation %d missing\n", rs.Replica, seq)
			}
		}
		if len(rs.Repaired) > 0 {
			fmt.Printf("  replica %d: read-repair re-materialized generation(s) %v\n", rs.Replica, rs.Repaired)
		}
		if len(rs.Dropped) > 0 {
			fmt.Printf("  replica %d: dropped obsolete generation(s) %v\n", rs.Replica, rs.Dropped)
		}
	}
	if len(rep.Replicas) > 0 {
		fmt.Printf("replica divergence after repair: %d generation(s)\n", rep.Divergent)
	}
	if bad, derr := fsckDedup(st); derr != nil {
		return derr
	} else if bad {
		return fmt.Errorf("fsck: chunk store is not clean")
	}
	// Report the surviving entries' entropy framing and guarantees so an
	// operator knows what a restore would promise.
	for _, g := range st.Generations() {
		data, verified, err := st.ReadGenerationRaw(g.Seq)
		if err != nil || !verified {
			continue
		}
		if info, err := ckpt.InspectStream(data); err == nil {
			for _, e := range info.Entries {
				if e.Guarantee != nil {
					fmt.Printf("  generation %d %s: entropy %s, %s\n", g.Seq, e.Name, e.Entropy, e.Guarantee)
				} else {
					fmt.Printf("  generation %d %s: entropy %s\n", g.Seq, e.Name, e.Entropy)
				}
			}
		}
	}
	if !rep.Clean() {
		return fmt.Errorf("fsck: %d generation(s) quarantined, %d missing, %d divergent",
			len(rep.Quarantined), len(rep.Missing), rep.Divergent)
	}
	fmt.Println("store is clean")
	return nil
}
