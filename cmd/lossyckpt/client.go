// client.go is the lossyckpt front end of the lossyckptd daemon: the
// client-side of the daemon's wire protocol. Where `save`/`restore`
// operate on a local store directory, `client save`/`client restore`
// talk to a running daemon over HTTP — the daemon owns compression,
// the store and its durability protocol; the client just ships named
// fields.
//
//	lossyckpt client save    -addr host:port -tenant t -token s -in a.grd[,b.grd...] -step N [-codec none] [-deadline-ms 0]
//	lossyckpt client restore -addr host:port -tenant t -token s -out dir [-deadline-ms 0]
//	lossyckpt client inspect -addr host:port -tenant t -token s
//	lossyckpt client fsck    -addr host:port -tenant t -token s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lossyckpt/internal/server"
)

func cmdClient(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lossyckpt client <save|restore|inspect|fsck> [flags]")
	}
	switch args[0] {
	case "save":
		return cmdClientSave(args[1:])
	case "restore":
		return cmdClientRestore(args[1:])
	case "inspect":
		return cmdClientInspect(args[1:])
	case "fsck":
		return cmdClientFsck(args[1:])
	default:
		return fmt.Errorf("unknown client subcommand %q", args[0])
	}
}

// clientFlags are the connection flags every client subcommand shares.
type clientFlags struct {
	addr, tenant, token *string
	deadlineMs          *int
}

func addClientFlags(fs *flag.FlagSet) clientFlags {
	return clientFlags{
		addr:       fs.String("addr", "127.0.0.1:8777", "daemon address host:port"),
		tenant:     fs.String("tenant", "default", "tenant namespace"),
		token:      fs.String("token", "", "bearer token (required; also read from LOSSYCKPT_TOKEN)"),
		deadlineMs: fs.Int("deadline-ms", 0, "request deadline the daemon enforces (0 = daemon default)"),
	}
}

func (cf clientFlags) request(method, endpoint, query string, body io.Reader) (*http.Response, error) {
	token := *cf.token
	if token == "" {
		token = os.Getenv("LOSSYCKPT_TOKEN")
	}
	if token == "" {
		return nil, fmt.Errorf("client: -token (or LOSSYCKPT_TOKEN) is required")
	}
	url := fmt.Sprintf("http://%s/v1/%s/%s%s", *cf.addr, *cf.tenant, endpoint, query)
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if *cf.deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", fmt.Sprint(*cf.deadlineMs))
		// Give the transport a little slack past the server deadline so
		// the typed 504 arrives instead of a client-side timeout.
		client := &http.Client{Timeout: time.Duration(*cf.deadlineMs)*time.Millisecond + 5*time.Second}
		return client.Do(req)
	}
	return http.DefaultClient.Do(req)
}

// fail turns a non-200 response into an error carrying the daemon's
// message (429/503/504/507 are the daemon's typed refusals).
func fail(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("client %s: %s (HTTP %d)", op, msg, resp.StatusCode)
}

func cmdClientSave(args []string) error {
	fs := flag.NewFlagSet("client save", flag.ContinueOnError)
	cf := addClientFlags(fs)
	in := fs.String("in", "", "comma-separated .grd files (required); each file's base name becomes the variable name")
	step := fs.Int("step", 0, "application step this checkpoint belongs to")
	codec := fs.String("codec", "none", "checkpoint codec the daemon applies (none, gzip, lz4, lossy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("client save: -in is required")
	}
	var fields []server.NamedField
	for _, path := range strings.Split(*in, ",") {
		fld, err := readField(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		fields = append(fields, server.NamedField{Name: name, Field: fld})
	}
	var buf bytes.Buffer
	if err := server.WriteFields(&buf, fields); err != nil {
		return err
	}
	resp, err := cf.request("POST", "save", fmt.Sprintf("?step=%d&codec=%s", *step, *codec), &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("save", resp)
	}
	var sr server.SaveResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	fmt.Printf("saved generation %d (step %d, codec %s): %d field(s), %d bytes\n",
		sr.Generation, sr.Step, sr.Codec, sr.Fields, sr.Size)
	if sr.ExpireAt != 0 {
		fmt.Printf("expires at %s\n", time.Unix(sr.ExpireAt, 0).Format(time.RFC3339))
	}
	return nil
}

func cmdClientRestore(args []string) error {
	fs := flag.NewFlagSet("client restore", flag.ContinueOnError)
	cf := addClientFlags(fs)
	out := fs.String("out", "", "output directory for restored .grd files (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("client restore: -out is required")
	}
	resp, err := cf.request("GET", "restore", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("restore", resp)
	}
	fields, err := server.ReadFields(resp.Body)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, nf := range fields {
		path := filepath.Join(*out, nf.Name+".grd")
		if err := writeField(path, nf.Field); err != nil {
			return err
		}
		fmt.Printf("restored %s: %s\n", path, nf.Field)
	}
	fmt.Printf("generation %s (step %s, codec %s): %d field(s) recovered\n",
		resp.Header.Get("X-Generation"), resp.Header.Get("X-Step"), resp.Header.Get("X-Codec"), len(fields))
	if p := resp.Header.Get("X-Partial"); p != "" {
		fmt.Printf("partial recovery: %s frame(s) skipped\n", p)
	}
	return nil
}

func cmdClientInspect(args []string) error {
	fs := flag.NewFlagSet("client inspect", flag.ContinueOnError)
	cf := addClientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := cf.request("GET", "inspect", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("inspect", resp)
	}
	var ir server.InspectResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return err
	}
	fmt.Printf("tenant %s: %d generation(s), %d bytes stored", ir.Tenant, len(ir.Generations), ir.UsedBytes)
	if ir.QuotaBytes > 0 {
		fmt.Printf(" of %d quota", ir.QuotaBytes)
	}
	fmt.Println()
	if d := ir.Dedup; d != nil {
		fmt.Printf("  dedup: %d recipe generation(s), %d logical bytes as %d recipe + %d chunk bytes (%d chunks, ratio %.2fx)\n",
			d.Generations, d.LogicalBytes, d.RecipeBytes, d.ChunkBytes, d.Chunks, d.Ratio)
	}
	for _, g := range ir.Generations {
		fmt.Printf("  generation %d: step %d, %d bytes, crc %08x", g.Seq, g.Step, g.Size, g.CRC)
		if g.ExpireAt != 0 {
			fmt.Printf(", expires %s", time.Unix(g.ExpireAt, 0).Format(time.RFC3339))
		}
		fmt.Println()
	}
	return nil
}

func cmdClientFsck(args []string) error {
	fs := flag.NewFlagSet("client fsck", flag.ContinueOnError)
	cf := addClientFlags(fs)
	decode := fs.Bool("decode", false, "fully decode every entry server-side (paranoid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	query := ""
	if *decode {
		query = "?decode=true"
	}
	resp, err := cf.request("POST", "fsck", query, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("fsck", resp)
	}
	var sr server.ScrubResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	fmt.Printf("checked %d generation(s)\n", sr.Checked)
	for _, seq := range sr.Quarantined {
		fmt.Printf("  generation %d corrupt: quarantined\n", seq)
	}
	for _, seq := range sr.Missing {
		fmt.Printf("  generation %d missing: dropped from index\n", seq)
	}
	for _, seq := range sr.Expired {
		fmt.Printf("  generation %d expired: pruned\n", seq)
	}
	if sr.Divergent > 0 {
		fmt.Printf("replica divergence after repair: %d generation(s)\n", sr.Divergent)
	}
	if !sr.Clean {
		return fmt.Errorf("client fsck: store was not clean")
	}
	fmt.Println("store is clean")
	return nil
}
