// dedup.go: CLI surfaces for the content-addressed chunk store —
// per-save dedup accounting and the fsck-time chunk audit.
package main

import (
	"fmt"

	"lossyckpt/internal/store"
)

// dedupStatser is the optional stats surface both store flavours offer.
type dedupStatser interface{ DedupStats() store.DedupStats }

// printDedupStats reports the store's dedup accounting after a save.
func printDedupStats(st store.Target) {
	ds, ok := st.(dedupStatser)
	if !ok {
		return
	}
	d := ds.DedupStats()
	fmt.Printf("dedup: %d recipe generation(s), %d logical bytes as %d recipe + %d chunk bytes (%d chunks, ratio %.2fx)\n",
		d.DedupGens, d.LogicalBytes, d.RecipeBytes, d.ChunkBytes, d.Chunks, d.Ratio())
	fmt.Printf("physical occupancy: %d bytes\n", st.PhysicalBytes())
}

// fsckDedup audits the chunk layer of every underlying single-root
// store (each replica holds its own chunk population) and prints any
// inconsistencies. It returns whether issues were found.
func fsckDedup(st store.Target) (bad bool, err error) {
	audit := func(label string, s *store.Store) error {
		rep, err := s.FsckDedup()
		if err != nil {
			return err
		}
		if rep.DedupGens == 0 && len(rep.Issues) == 0 {
			return nil
		}
		fmt.Printf("%schunk audit: %d recipe generation(s), %d chunk(s) checked\n",
			label, rep.DedupGens, rep.ChunksChecked)
		for _, is := range rep.Issues {
			switch is.Kind {
			case "recipe":
				bad = true
				fmt.Printf("%s  generation %d: recipe unreadable: %s\n", label, is.Seq, is.Detail)
			case "orphan":
				// Transient between a crash and the next GC — report, not fail.
				fmt.Printf("%s  chunk %s: orphaned (pending GC)\n", label, is.Hash)
			default:
				bad = true
				fmt.Printf("%s  chunk %s (%s): %s\n", label, is.Hash, is.Kind, is.Detail)
			}
		}
		return nil
	}
	switch s := st.(type) {
	case *store.Store:
		if err := audit("", s); err != nil {
			return bad, err
		}
	case *store.ReplicatedStore:
		for i := 0; i < s.Replicas(); i++ {
			r, err := s.Replica(i)
			if err != nil || r == nil {
				continue
			}
			if err := audit(fmt.Sprintf("replica %d: ", i), r); err != nil {
				return bad, err
			}
		}
	}
	return bad, nil
}
