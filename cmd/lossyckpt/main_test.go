package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lossyckpt/internal/grid"
)

// The CLI's run() takes its argument vector directly, so the whole tool is
// testable in-process.

func TestUsageAndUnknownSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestParseShape(t *testing.T) {
	good := map[string][]int{
		"4":         {4},
		"8x9":       {8, 9},
		"1156x82x2": {1156, 82, 2},
	}
	for s, want := range good {
		got, err := parseShape(s)
		if err != nil {
			t.Errorf("parseShape(%q): %v", s, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseShape(%q) = %v", s, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseShape(%q) = %v, want %v", s, got, want)
			}
		}
	}
	for _, s := range []string{"", "0", "-4", "4xx2", "axb", "4x"} {
		if _, err := parseShape(s); err == nil {
			t.Errorf("parseShape(%q): expected error", s)
		}
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "field.grd")
	lkc := filepath.Join(dir, "field.lkc")
	out := filepath.Join(dir, "restored.grd")

	if err := run([]string{"gen", "-out", grd, "-shape", "96x20x2", "-steps", "10"}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run([]string{"compress", "-in", grd, "-out", lkc, "-method", "proposed", "-n", "64"}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	st1, _ := os.Stat(grd)
	st2, _ := os.Stat(lkc)
	if st2.Size() >= st1.Size() {
		t.Errorf("compressed file (%d) not smaller than field (%d)", st2.Size(), st1.Size())
	}
	if err := run([]string{"inspect", "-in", lkc}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := run([]string{"decompress", "-in", lkc, "-out", out}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if err := run([]string{"diff", "-a", grd, "-b", out}); err != nil {
		t.Fatalf("diff: %v", err)
	}

	// The restored field must parse and have the requested shape.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fld, err := grid.ReadField(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{96, 20, 2}
	for d, e := range want {
		if fld.Extent(d) != e {
			t.Fatalf("restored shape %v, want %v", fld.Shape(), want)
		}
	}
}

func TestCompressFlagsValidation(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "f.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "32x8x2", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"compress", "-in", grd},                                         // missing -out
		{"compress", "-out", "x.lkc"},                                    // missing -in
		{"compress", "-in", grd, "-out", "x.lkc", "-method", "vector"},   // bad method
		{"compress", "-in", grd, "-out", "x.lkc", "-scheme", "dct"},      // bad scheme
		{"compress", "-in", grd, "-out", "x.lkc", "-n", "0"},             // bad n
		{"compress", "-in", filepath.Join(dir, "nope.grd"), "-out", "x"}, // missing input
		{"gen", "-out", filepath.Join(dir, "g.grd"), "-shape", "8x8"},    // gen needs 3D
		{"gen", "-out", filepath.Join(dir, "g.grd"), "-var", "humidity"}, // unknown var
		{"gen"}, // missing -out
		{"decompress", "-in", grd, "-out", filepath.Join(dir, "o.grd")}, // not an .lkc
		{"inspect", "-in", grd}, // not an .lkc
		{"inspect"},             // missing -in
		{"diff", "-a", grd},     // missing -b
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDiffShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.grd")
	b := filepath.Join(dir, "b.grd")
	if err := run([]string{"gen", "-out", a, "-shape", "32x8x2", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gen", "-out", b, "-shape", "32x8x1", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"diff", "-a", a, "-b", b})
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Errorf("diff with mismatched shapes: %v", err)
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "temperature.grd")
	b := filepath.Join(dir, "pressure.grd")
	if err := run([]string{"gen", "-out", a, "-shape", "64x16x2", "-steps", "3", "-var", "temperature"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gen", "-out", b, "-shape", "64x16x2", "-steps", "3", "-var", "pressure"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	outDir := filepath.Join(dir, "restored")

	// Two generations with a lossless codec, -keep 2.
	if err := run([]string{"save", "-dir", ckptDir, "-in", a + "," + b, "-keep", "2", "-codec", "none", "-step", "3"}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := run([]string{"save", "-dir", ckptDir, "-in", a + "," + b, "-keep", "2", "-codec", "none", "-step", "4"}); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	if err := run([]string{"restore", "-dir", ckptDir, "-out", outDir}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// A lossless round trip through the store must be bit-exact.
	for _, name := range []string{"temperature", "pressure"} {
		orig, err := os.ReadFile(filepath.Join(dir, name+".grd"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(outDir, name+".grd"))
		if err != nil {
			t.Fatalf("restored %s missing: %v", name, err)
		}
		if string(orig) != string(got) {
			t.Errorf("%s: restored bytes differ from original", name)
		}
	}
}

func TestRestoreFallsBackWhenLatestCorrupt(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "wind_u.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "48x12x2", "-steps", "2", "-var", "wind_u"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	if err := run([]string{"save", "-dir", ckptDir, "-in", grd, "-codec", "none", "-step", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"save", "-dir", ckptDir, "-in", grd, "-codec", "none", "-step", "2"}); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the newest generation file on disk.
	raw, err := os.ReadFile(filepath.Join(ckptDir, "gen-00000002.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(filepath.Join(ckptDir, "gen-00000002.ckpt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "restored")
	if err := run([]string{"restore", "-dir", ckptDir, "-out", outDir}); err != nil {
		t.Fatalf("restore with corrupt newest generation: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(outDir, "wind_u.grd"))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(grd)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Error("fallback restore differs from original field")
	}
}

func TestSaveRestoreFlagsValidation(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"save"},              // missing -dir and -in
		{"save", "-dir", dir}, // missing -in
		{"save", "-dir", dir, "-in", filepath.Join(dir, "nope.grd")}, // missing input
		{"save", "-dir", dir, "-in", "x.grd", "-codec", "zfp"},       // unknown codec
		{"restore"},              // missing -dir and -out
		{"restore", "-dir", dir}, // missing -out
		{"restore", "-dir", filepath.Join(dir, "empty"), "-out", dir}, // no generations
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCompressTempFileMode(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "f.grd")
	lkc := filepath.Join(dir, "f.lkc")
	if err := run([]string{"gen", "-out", grd, "-shape", "64x16x2", "-steps", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compress", "-in", grd, "-out", lkc, "-tempfile"}); err != nil {
		t.Fatalf("temp-file compress: %v", err)
	}
	if err := run([]string{"decompress", "-in", lkc, "-out", filepath.Join(dir, "o.grd")}); err != nil {
		t.Fatalf("decompress after temp-file mode: %v", err)
	}
}

func TestSaveGuardedAndFsck(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "temperature.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "64x16x2", "-steps", "3"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	outDir := filepath.Join(dir, "restored")

	// -bound switches to the guard codec and enforces the bound.
	if err := run([]string{"save", "-dir", ckptDir, "-in", grd, "-bound", "0.01",
		"-guard-mode", "decode", "-step", "1"}); err != nil {
		t.Fatalf("guarded save: %v", err)
	}
	if err := run([]string{"restore", "-dir", ckptDir, "-out", outDir}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The restored field is within the declared bound.
	if err := run([]string{"diff", "-a", grd, "-b", filepath.Join(outDir, "temperature.grd")}); err != nil {
		t.Fatalf("diff: %v", err)
	}

	// A clean store fscks clean (exit nil).
	if err := run([]string{"fsck", "-dir", ckptDir, "-decode"}); err != nil {
		t.Fatalf("fsck on clean store: %v", err)
	}

	// Corrupt the generation at rest: fsck must quarantine it and exit
	// non-zero, and the file must survive under quarantine/.
	raw, err := os.ReadFile(filepath.Join(ckptDir, "gen-00000001.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(filepath.Join(ckptDir, "gen-00000001.ckpt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fsck", "-dir", ckptDir}); err == nil {
		t.Fatal("fsck on corrupt store exited clean")
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "quarantine", "gen-00000001.ckpt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// A second fsck over the now-empty index is clean again.
	if err := run([]string{"fsck", "-dir", ckptDir}); err != nil {
		t.Fatalf("fsck after quarantine: %v", err)
	}
}

func TestSaveGuardModeValidation(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "temperature.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "32x8x2", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"save", "-dir", filepath.Join(dir, "ckpts"), "-in", grd,
		"-bound", "0.1", "-guard-mode", "bogus"})
	if err == nil {
		t.Fatal("bogus -guard-mode accepted")
	}
	if err := run([]string{"fsck"}); err == nil {
		t.Fatal("fsck without -dir accepted")
	}
}

// TestReplicatedSaveRestoreFsck round-trips a checkpoint through a
// 3-way replicated store via the CLI flags, kills one replica's copy,
// and verifies restore still succeeds and fsck heals the fleet back to
// zero divergence.
func TestReplicatedSaveRestoreFsck(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "temperature.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "48x12x2", "-steps", "2", "-var", "temperature"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	repl := []string{"-replicas", "3", "-quorum", "2"}
	save := append([]string{"save", "-dir", ckptDir, "-in", grd, "-codec", "none", "-step", "1"}, repl...)
	if err := run(save); err != nil {
		t.Fatalf("replicated save: %v", err)
	}
	// Every replica holds the generation.
	for i := 0; i < 3; i++ {
		p := filepath.Join(ckptDir, fmt.Sprintf("r%d", i), "gen-00000001.ckpt")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("replica %d missing its copy: %v", i, err)
		}
	}
	// A node loses its copy; quorum restore must still succeed.
	if err := os.Remove(filepath.Join(ckptDir, "r1", "gen-00000001.ckpt")); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "restored")
	restore := append([]string{"restore", "-dir", ckptDir, "-out", outDir}, repl...)
	if err := run(restore); err != nil {
		t.Fatalf("replicated restore with one lost copy: %v", err)
	}
	orig, err := os.ReadFile(grd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(outDir, "temperature.grd"))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Error("replicated restore differs from original field")
	}
	// fsck heals whatever read-repair has not already fixed; a second
	// fsck must then find the fleet clean.
	fsck := append([]string{"fsck", "-dir", ckptDir}, repl...)
	_ = run(fsck) // may exit non-zero while reporting the healing
	if err := run(fsck); err != nil {
		t.Fatalf("fsck after healing: %v", err)
	}
	// The healed copy is byte-identical to its peers.
	want, err := os.ReadFile(filepath.Join(ckptDir, "r0", "gen-00000001.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	healed, err := os.ReadFile(filepath.Join(ckptDir, "r1", "gen-00000001.ckpt"))
	if err != nil {
		t.Fatalf("replica 1 not healed: %v", err)
	}
	if string(want) != string(healed) {
		t.Error("healed replica differs from its peers")
	}
}

// TestObjectBackendCLI saves and restores through the object-store
// backend (pointer-swap commit, no renames).
func TestObjectBackendCLI(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "pressure.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "48x12x2", "-steps", "2", "-var", "pressure"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	if err := run([]string{"save", "-dir", ckptDir, "-in", grd, "-codec", "none", "-backend", "object"}); err != nil {
		t.Fatalf("object save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "CURRENT")); err != nil {
		t.Fatalf("object backend wrote no pointer record: %v", err)
	}
	outDir := filepath.Join(dir, "restored")
	if err := run([]string{"restore", "-dir", ckptDir, "-out", outDir, "-backend", "object"}); err != nil {
		t.Fatalf("object restore: %v", err)
	}
	orig, _ := os.ReadFile(grd)
	got, err := os.ReadFile(filepath.Join(outDir, "pressure.grd"))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Error("object-backend restore differs from original field")
	}
	if err := run([]string{"fsck", "-dir", ckptDir, "-backend", "object"}); err != nil {
		t.Fatalf("object fsck: %v", err)
	}
}

// TestStoreFlagsValidation rejects nonsense topology flags.
func TestStoreFlagsValidation(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"fsck", "-dir", dir, "-replicas", "0"},
		{"fsck", "-dir", dir, "-replicas", "3", "-quorum", "4"},
		{"fsck", "-dir", dir, "-backend", "s3"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestSaveDedupRoundTripAndFsck: -dedup stores generations as chunk
// recipes, restores stay bit-exact, and fsck's chunk audit passes.
func TestSaveDedupRoundTripAndFsck(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "pressure.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "64x16x2", "-steps", "3", "-var", "pressure"}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	for step := 1; step <= 3; step++ {
		if err := run([]string{"save", "-dir", ckptDir, "-in", grd, "-keep", "-1",
			"-codec", "none", "-dedup", "-step", fmt.Sprint(step)}); err != nil {
			t.Fatalf("dedup save %d: %v", step, err)
		}
	}
	// Generations live as recipes next to a chunk directory.
	if fi, err := os.Stat(filepath.Join(ckptDir, "cas")); err != nil || !fi.IsDir() {
		t.Fatalf("dedup store has no cas/ chunk directory: %v", err)
	}
	outDir := filepath.Join(dir, "restored")
	if err := run([]string{"restore", "-dir", ckptDir, "-out", outDir}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	orig, err := os.ReadFile(grd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(outDir, "pressure.grd"))
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Error("dedup round trip differs from original field")
	}
	if err := run([]string{"fsck", "-dir", ckptDir}); err != nil {
		t.Fatalf("fsck on dedup store: %v", err)
	}
}
