package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/server"
)

// startTestDaemon brings up an in-process daemon handler and returns
// its host:port for the client flags.
func startTestDaemon(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{
		Tenants: []server.TenantConfig{
			{Name: "demo", Token: "sesame", Dir: filepath.Join(t.TempDir(), "store"), Keep: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestClientSaveRestoreInspectFsck(t *testing.T) {
	addr := startTestDaemon(t)
	work := t.TempDir()

	// Generate two field files.
	for i, name := range []string{"temp", "wind"} {
		f, err := grid.New(6, 4)
		if err != nil {
			t.Fatal(err)
		}
		for j := range f.Data() {
			f.Data()[j] = float64(i*1000 + j)
		}
		if err := writeField(filepath.Join(work, name+".grd"), f); err != nil {
			t.Fatal(err)
		}
	}

	common := []string{"-addr", addr, "-tenant", "demo", "-token", "sesame"}
	saveArgs := append([]string{"save"}, append(common,
		"-in", filepath.Join(work, "temp.grd")+","+filepath.Join(work, "wind.grd"),
		"-step", "3")...)
	if err := cmdClient(saveArgs); err != nil {
		t.Fatalf("client save: %v", err)
	}

	outDir := filepath.Join(work, "restored")
	if err := cmdClient(append([]string{"restore"}, append(common, "-out", outDir)...)); err != nil {
		t.Fatalf("client restore: %v", err)
	}
	for i, name := range []string{"temp", "wind"} {
		got, err := readField(filepath.Join(outDir, name+".grd"))
		if err != nil {
			t.Fatalf("restored %s: %v", name, err)
		}
		if got.Data()[1] != float64(i*1000+1) {
			t.Fatalf("restored %s carries wrong data: %v", name, got.Data()[1])
		}
	}

	if err := cmdClient(append([]string{"inspect"}, common...)); err != nil {
		t.Fatalf("client inspect: %v", err)
	}
	if err := cmdClient(append([]string{"fsck"}, common...)); err != nil {
		t.Fatalf("client fsck: %v", err)
	}
}

func TestClientAuthFailure(t *testing.T) {
	addr := startTestDaemon(t)
	err := cmdClient([]string{"inspect", "-addr", addr, "-tenant", "demo", "-token", "wrong"})
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("client with bad token: %v, want HTTP 401 error", err)
	}
}

func TestClientTokenFromEnv(t *testing.T) {
	addr := startTestDaemon(t)
	t.Setenv("LOSSYCKPT_TOKEN", "sesame")
	// Empty store: inspect succeeds (zero generations), proving auth
	// rode the environment variable.
	if err := cmdClient([]string{"inspect", "-addr", addr, "-tenant", "demo", "-token", ""}); err != nil {
		t.Fatalf("client with env token: %v", err)
	}
	os.Unsetenv("LOSSYCKPT_TOKEN")
}

func TestClientRequiresToken(t *testing.T) {
	if err := cmdClient([]string{"inspect", "-addr", "127.0.0.1:1", "-tenant", "x", "-token", ""}); err == nil {
		t.Fatal("client without token succeeded")
	}
}
