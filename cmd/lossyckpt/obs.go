// obs.go wires the observability layer into the CLI: every data-path
// subcommand accepts -metrics (serve /metrics, /metrics.json, /summary
// and /debug/pprof on an HTTP listener for the duration of the run),
// -obs-out (persist the final JSON snapshot atomically) and -obs-summary
// (print the end-of-run metric table). The flags install a process-wide
// default registry, so every layer below — core pipeline, store, ckpt
// manager — records without explicit plumbing.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/store"
)

// obsFlags carries the shared observability flag values of one subcommand.
type obsFlags struct {
	metricsAddr *string
	obsOut      *string
	summary     *bool
	hold        *time.Duration
	journalPath *string
}

// addObsFlags registers the shared observability flags on fs.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		metricsAddr: fs.String("metrics", "", "serve /metrics, /metrics.json, /summary and /debug/pprof on this address (e.g. :9090) for the duration of the run"),
		obsOut:      fs.String("obs-out", "", "write the final metrics snapshot (JSON) to this file"),
		summary:     fs.Bool("obs-summary", false, "print the end-of-run metric summary table"),
		hold:        fs.Duration("metrics-hold", 0, "keep the -metrics listener up this long after the command finishes (for scraping short runs)"),
		journalPath: fs.String("journal", "", "append flight-recorder wide events (JSONL) to this file for the duration of the run"),
	}
}

// metricsAddrHook, when non-nil, receives the bound address of the
// -metrics listener. Tests use it to find an ephemeral ":0" port.
var metricsAddrHook func(addr string)

// obsSession is one subcommand's observability scope.
type obsSession struct {
	reg   *obs.Registry
	prev  *obs.Registry
	srv   *obs.Server
	jrnl  *journal.Journal
	jprev *journal.Journal
	of    *obsFlags
	done  bool
}

// startObs begins an observability session. With none of the flags set
// it returns an inert session (no registry, no overhead beyond the nil
// checks already on the hot paths).
func startObs(of *obsFlags) (*obsSession, error) {
	s := &obsSession{of: of}
	if *of.journalPath != "" {
		j, err := journal.Open(*of.journalPath, journal.Options{})
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		s.jrnl = j
		s.jprev = journal.SetDefault(j)
	}
	if *of.metricsAddr == "" && *of.obsOut == "" && !*of.summary {
		return s, nil
	}
	s.reg = obs.NewRegistry()
	s.prev = obs.SetDefault(s.reg)
	if *of.metricsAddr != "" {
		srv, err := obs.Serve(*of.metricsAddr, s.reg)
		if err != nil {
			obs.SetDefault(s.prev)
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		s.srv = srv
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
		if metricsAddrHook != nil {
			metricsAddrHook(srv.Addr())
		}
	}
	return s, nil
}

// finish ends the session: optionally holds the listener open, prints
// the summary table, persists the JSON snapshot, and restores the
// previous default registry. Safe to call more than once; designed to be
// deferred so metrics also surface when the command fails.
func (s *obsSession) finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	if s.jrnl != nil {
		journal.SetDefault(s.jprev)
		if err := s.jrnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
		} else {
			fmt.Fprintf(os.Stderr, "journal: wide events appended to %s\n", s.jrnl.Path())
		}
	}
	if s.reg == nil {
		return
	}
	if s.srv != nil && *s.of.hold > 0 {
		time.Sleep(*s.of.hold)
	}
	if *s.of.summary {
		fmt.Println("-- metrics summary --")
		if err := s.reg.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics summary:", err)
		}
	}
	if *s.of.obsOut != "" {
		var buf bytes.Buffer
		err := s.reg.WriteJSON(&buf)
		if err == nil {
			err = store.WriteFileAtomicOS(*s.of.obsOut, buf.Bytes())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics snapshot:", err)
		} else {
			fmt.Fprintf(os.Stderr, "metrics: snapshot written to %s\n", *s.of.obsOut)
		}
	}
	if s.srv != nil {
		s.srv.Close()
	}
	obs.SetDefault(s.prev)
}
