package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promSample matches one Prometheus text-format sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+]?[0-9.eE+-]+)$`)

// TestSaveServesMetrics is the ISSUE's acceptance check: a save run with
// -metrics :0 must serve a Prometheus-parseable /metrics containing
// stage-timing, store-commit and quality series, persist a JSON snapshot,
// and keep pprof reachable.
func TestSaveServesMetrics(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "temperature.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "64x16x2", "-steps", "2"}); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "obs.json")

	addrCh := make(chan string, 1)
	metricsAddrHook = func(a string) { addrCh <- a }
	defer func() { metricsAddrHook = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"save", "-dir", filepath.Join(dir, "ckpts"), "-in", grd,
			"-codec", "lossy", "-quality",
			"-metrics", "127.0.0.1:0", "-metrics-hold", "3s",
			"-obs-out", snap, "-obs-summary"})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("metrics listener never came up")
	}

	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// The save runs concurrently with our scrape; poll until the series
	// recorded at commit time are all visible (the -metrics-hold window
	// keeps the listener up after the work completes).
	want := []string{
		"lossyckpt_compress_stage_seconds_total", // pipeline stage timings
		"lossyckpt_store_commit_seconds",         // store commit span
		"lossyckpt_store_commit_bytes_total",
		"lossyckpt_ckpt_checkpoint_seconds",
		"lossyckpt_quality_psnr_db", // quality telemetry
		"lossyckpt_quality_compression_rate_pct",
	}
	var out string
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		out, err = get("/metrics")
		if err == nil {
			missing := false
			for _, w := range want {
				if !strings.Contains(out, w) {
					missing = true
					break
				}
			}
			if !missing {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics incomplete after deadline (err=%v):\n%s", err, out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Every non-comment line must be a well-formed sample.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
	}

	if body, err := get("/debug/pprof/cmdline"); err != nil || len(body) == 0 {
		t.Errorf("pprof endpoint unavailable: err=%v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("save: %v", err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if _, ok := parsed["metrics"].([]any); !ok {
		t.Error("snapshot has no metrics array")
	}
}

// TestObsFlagsOffByDefault ensures a plain run installs no default
// registry and records nothing (the no-op path).
func TestObsFlagsOffByDefault(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "f.grd")
	if err := run([]string{"gen", "-out", grd, "-shape", "32x8x2", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compress", "-in", grd, "-out", filepath.Join(dir, "f.lkc")}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressObsSummary exercises the -obs-summary and -obs-out paths on
// the compress subcommand.
func TestCompressObsSummary(t *testing.T) {
	dir := t.TempDir()
	grd := filepath.Join(dir, "f.grd")
	snap := filepath.Join(dir, "obs.json")
	if err := run([]string{"gen", "-out", grd, "-shape", "64x16x2", "-steps", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compress", "-in", grd, "-out", filepath.Join(dir, "f.lkc"),
		"-chunk", "16", "-workers", "2", "-obs-summary", "-obs-out", snap}); err != nil {
		t.Fatalf("compress with obs flags: %v", err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"lossyckpt_compress_stage_seconds_total",
		"lossyckpt_compress_chunks_total",
		`"kind": "chunked"`,
	} {
		if !strings.Contains(string(raw), w) {
			t.Errorf("snapshot missing %q", w)
		}
	}
}
