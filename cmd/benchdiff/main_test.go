package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "description": "x",
  "benchmarks": {
    "BenchmarkA": { "ns_per_op": 1000, "mb_per_s": 5 },
    "BenchmarkB": {
      "workers=1": { "ns_per_op": 2000 },
      "workers=2": { "ns_per_op": 1500 }
    }
  }
}`

func TestSelfDiffPasses(t *testing.T) {
	p := writeJSON(t, "a.json", baseDoc)
	var out bytes.Buffer
	code, err := run([]string{p, p}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("self-diff exit code %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "3 series compared") {
		t.Errorf("expected 3 series (nested variants included):\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	old := writeJSON(t, "old.json", baseDoc)
	cur := writeJSON(t, "new.json", `{
  "benchmarks": {
    "BenchmarkA": { "ns_per_op": 1000 },
    "BenchmarkB": {
      "workers=1": { "ns_per_op": 2500 },
      "workers=2": { "ns_per_op": 1500 }
    }
  }
}`)
	var out bytes.Buffer
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("25%% regression exit code %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regressed series not marked:\n%s", out.String())
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	old := writeJSON(t, "old.json", `{"benchmarks": {"A": {"ns_per_op": 1000}}}`)
	cur := writeJSON(t, "new.json", `{"benchmarks": {"A": {"ns_per_op": 1100}}}`)
	var out bytes.Buffer
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("10%% slowdown under the 15%% default failed: code %d\n%s", code, out.String())
	}
	// But a tightened threshold catches it.
	code, err = run([]string{"-threshold", "5", old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("10%% slowdown above -threshold 5 passed: code %d", code)
	}
}

func TestSpeedupNeverFails(t *testing.T) {
	old := writeJSON(t, "old.json", `{"benchmarks": {"A": {"ns_per_op": 1000}}}`)
	cur := writeJSON(t, "new.json", `{"benchmarks": {"A": {"ns_per_op": 10}}}`)
	var out bytes.Buffer
	code, err := run([]string{old, cur}, &out)
	if err != nil || code != 0 {
		t.Errorf("99%% speedup flagged: code %d err %v", code, err)
	}
}

func TestOrphansReportedButHarmless(t *testing.T) {
	old := writeJSON(t, "old.json", `{"benchmarks": {"A": {"ns_per_op": 1000}, "Gone": {"ns_per_op": 5}}}`)
	cur := writeJSON(t, "new.json", `{"benchmarks": {"A": {"ns_per_op": 1000}, "New": {"ns_per_op": 7}}}`)
	var out bytes.Buffer
	code, err := run([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("orphaned series failed the run: code %d", code)
	}
	for _, want := range []string{"benchmarks/Gone only in", "benchmarks/New only in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing orphan note %q:\n%s", want, out.String())
		}
	}
}

func TestBadInputRejected(t *testing.T) {
	good := writeJSON(t, "good.json", `{"benchmarks": {"A": {"ns_per_op": 1}}}`)
	cases := [][]string{
		{good},                          // one file
		{good, good, good},              // three files
		{good, "/does/not/exist"},       // unreadable
		{"-definitely-bad", good, good}, // bad flag
	}
	for i, args := range cases {
		var out bytes.Buffer
		if _, err := run(args, &out); err == nil {
			t.Errorf("case %d: bad input accepted: %v", i, args)
		}
	}
	noMetric := writeJSON(t, "no.json", `{"benchmarks": {"A": {"mb_per_s": 1}}}`)
	var out bytes.Buffer
	if _, err := run([]string{noMetric, good}, &out); err == nil {
		t.Error("file without ns_per_op accepted")
	}
	invalid := writeJSON(t, "bad.json", `{not json`)
	if _, err := run([]string{invalid, good}, &out); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestRealBenchFileSelfDiff(t *testing.T) {
	// The repo's checked-in BENCH files must stay parseable by this tool
	// (make check runs the same self-diff as a smoke test).
	for _, name := range []string{"BENCH_parallel.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		var out bytes.Buffer
		code, err := run([]string{path, path}, &out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code != 0 {
			t.Errorf("%s self-diff code %d\n%s", name, code, out.String())
		}
	}
}

// TestMultiPairCompares: consecutive (old, new) pairs gate in one run;
// a regression in any pair fails the whole invocation.
func TestMultiPairCompares(t *testing.T) {
	slow := strings.ReplaceAll(baseDoc, "1000", "2000")
	a1 := writeJSON(t, "a-old.json", baseDoc)
	a2 := writeJSON(t, "a-new.json", baseDoc)
	b1 := writeJSON(t, "b-old.json", baseDoc)
	b2 := writeJSON(t, "b-new.json", slow)

	var out bytes.Buffer
	code, err := run([]string{a1, a2, b1, b2}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (second pair regressed)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{a1, a2, b1, b1}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean pairs: code %d err %v\n%s", code, err, out.String())
	}
}

// TestOddArgsRejected: a dangling file without its pair is a usage error.
func TestOddArgsRejected(t *testing.T) {
	p := writeJSON(t, "x.json", baseDoc)
	if _, err := run([]string{p, p, p}, &bytes.Buffer{}); err == nil {
		t.Fatal("three files accepted; want pair-count error")
	}
}

// TestMarkdownSummary: -md writes a table covering every compared
// series of every pair, with regressions flagged.
func TestMarkdownSummary(t *testing.T) {
	slow := strings.ReplaceAll(baseDoc, "1000", "9000")
	a := writeJSON(t, "old.json", baseDoc)
	b := writeJSON(t, "new.json", slow)
	md := filepath.Join(t.TempDir(), "summary.md")

	var out bytes.Buffer
	code, err := run([]string{"-md", md, a, b}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{"| pair |", "**REGRESSION**", "benchmarks/BenchmarkA", "ok"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
}
