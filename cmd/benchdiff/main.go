// Command benchdiff compares two BENCH_*.json files and fails on
// wall-clock regressions. It walks both documents recursively, collects
// every numeric "ns_per_op" leaf under its slash-joined path (so the
// nested benchmarks{name:{variant:{ns_per_op}}} shape of this repo's
// BENCH files needs no schema), and reports the percentage change of
// each series present in both files.
//
// Usage:
//
//	benchdiff old.json new.json              # fail on >15% slowdown
//	benchdiff -threshold 10 old.json new.json
//
// The exit status is non-zero when any common series slowed down by more
// than the threshold, making the tool usable as a CI gate; series present
// in only one file are listed but never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the comparison and returns the process exit code: 0 when
// no common series regressed past the threshold, 1 otherwise. Errors are
// reserved for unusable input (bad flags, unreadable or invalid JSON).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	threshold := fs.Float64("threshold", 15, "fail when ns_per_op grows by more than this percentage")
	metric := fs.String("metric", "ns_per_op", "leaf key holding the compared value")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("want exactly two files, got %d (usage: benchdiff old.json new.json)", fs.NArg())
	}
	old, err := loadMetrics(fs.Arg(0), *metric)
	if err != nil {
		return 0, err
	}
	cur, err := loadMetrics(fs.Arg(1), *metric)
	if err != nil {
		return 0, err
	}

	var paths []string
	for p := range old {
		if _, ok := cur[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	failed := 0
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told %s\tnew %s\tdelta\t\n", *metric, *metric)
	for _, p := range paths {
		o, n := old[p], cur[p]
		var pct float64
		if o != 0 {
			pct = (n - o) / o * 100
		}
		mark := ""
		if pct > *threshold {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%%s\t\n", p, o, n, pct, mark)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	reportOrphans(out, old, cur, fs.Arg(0))
	reportOrphans(out, cur, old, fs.Arg(1))
	if failed > 0 {
		fmt.Fprintf(out, "FAIL: %d series regressed by more than %.1f%%\n", failed, *threshold)
		return 1, nil
	}
	fmt.Fprintf(out, "ok: %d series compared, none regressed by more than %.1f%%\n", len(paths), *threshold)
	return 0, nil
}

// loadMetrics parses one BENCH file into path → value for every numeric
// leaf named metric.
func loadMetrics(path, metric string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	collect(doc, "", metric, m)
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no %q values found", path, metric)
	}
	return m, nil
}

// collect walks the decoded JSON tree accumulating metric leaves.
func collect(node any, prefix, metric string, out map[string]float64) {
	obj, ok := node.(map[string]any)
	if !ok {
		return
	}
	for k, v := range obj {
		p := k
		if prefix != "" {
			p = prefix + "/" + k
		}
		if num, ok := v.(float64); ok && k == metric {
			out[prefix] = num
			continue
		}
		collect(v, p, metric, out)
	}
}

// reportOrphans lists series present in a but missing from b.
func reportOrphans(out io.Writer, a, b map[string]float64, name string) {
	var only []string
	for p := range a {
		if _, ok := b[p]; !ok {
			only = append(only, p)
		}
	}
	sort.Strings(only)
	for _, p := range only {
		fmt.Fprintf(out, "note: %s only in %s\n", p, name)
	}
}
