// Command benchdiff compares BENCH_*.json files and fails on
// wall-clock regressions. It walks each document recursively, collects
// every numeric "ns_per_op" leaf under its slash-joined path (so the
// nested benchmarks{name:{variant:{ns_per_op}}} shape of this repo's
// BENCH files needs no schema), and reports the percentage change of
// each series present in both files of a pair.
//
// Usage:
//
//	benchdiff old.json new.json                    # fail on >15% slowdown
//	benchdiff -threshold 10 old.json new.json
//	benchdiff a-old.json a-new.json b-old.json b-new.json   # several pairs
//	benchdiff -md summary.md old.json new.json     # also write a markdown table
//
// Arguments are consumed as consecutive (old, new) pairs, so one
// invocation can gate several benchmark suites. The exit status is
// non-zero when any common series of any pair slowed down by more than
// the threshold, making the tool usable as a CI gate; series present in
// only one file are listed but never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// row is one compared series of one pair, kept for the markdown table.
type row struct {
	pair, series string
	oldV, newV   float64
	pct          float64
	regressed    bool
}

// run executes the comparisons and returns the process exit code: 0 when
// no common series regressed past the threshold, 1 otherwise. Errors are
// reserved for unusable input (bad flags, odd argument counts,
// unreadable or invalid JSON).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	threshold := fs.Float64("threshold", 15, "fail when ns_per_op grows by more than this percentage")
	metric := fs.String("metric", "ns_per_op", "leaf key holding the compared value")
	mdPath := fs.String("md", "", "also write a markdown summary table to this file")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() < 2 || fs.NArg()%2 != 0 {
		return 0, fmt.Errorf("want one or more old/new file pairs, got %d args (usage: benchdiff old.json new.json [old2.json new2.json ...])", fs.NArg())
	}

	var rows []row
	failed, compared := 0, 0
	for i := 0; i < fs.NArg(); i += 2 {
		oldPath, newPath := fs.Arg(i), fs.Arg(i+1)
		old, err := loadMetrics(oldPath, *metric)
		if err != nil {
			return 0, err
		}
		cur, err := loadMetrics(newPath, *metric)
		if err != nil {
			return 0, err
		}
		pair := pairLabel(oldPath, newPath)

		var paths []string
		for p := range old {
			if _, ok := cur[p]; ok {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		compared += len(paths)

		if fs.NArg() > 2 {
			fmt.Fprintf(out, "== %s vs %s ==\n", oldPath, newPath)
		}
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "benchmark\told %s\tnew %s\tdelta\t\n", *metric, *metric)
		for _, p := range paths {
			o, n := old[p], cur[p]
			var pct float64
			if o != 0 {
				pct = (n - o) / o * 100
			}
			mark := ""
			reg := pct > *threshold
			if reg {
				mark = "  REGRESSION"
				failed++
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%%s\t\n", p, o, n, pct, mark)
			rows = append(rows, row{pair: pair, series: p, oldV: o, newV: n, pct: pct, regressed: reg})
		}
		if err := tw.Flush(); err != nil {
			return 0, err
		}
		reportOrphans(out, old, cur, oldPath)
		reportOrphans(out, cur, old, newPath)
	}

	if *mdPath != "" {
		if err := writeMarkdown(*mdPath, *metric, *threshold, rows); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "markdown summary written to %s\n", *mdPath)
	}
	if failed > 0 {
		fmt.Fprintf(out, "FAIL: %d series regressed by more than %.1f%%\n", failed, *threshold)
		return 1, nil
	}
	fmt.Fprintf(out, "ok: %d series compared, none regressed by more than %.1f%%\n", compared, *threshold)
	return 0, nil
}

// pairLabel compresses an old/new path pair into one short label for
// the markdown table.
func pairLabel(oldPath, newPath string) string {
	o, n := baseName(oldPath), baseName(newPath)
	if o == n {
		return o
	}
	return o + "→" + n
}

func baseName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	return strings.TrimSuffix(p, ".json")
}

// writeMarkdown renders every compared series of every pair as one
// markdown table, regressions flagged in their own column.
func writeMarkdown(path, metric string, threshold float64, rows []row) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Benchmark comparison\n\n")
	fmt.Fprintf(&b, "Threshold: +%.1f%% on `%s`.\n\n", threshold, metric)
	fmt.Fprintf(&b, "| pair | benchmark | old | new | delta | status |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := "ok"
		if r.regressed {
			status = "**REGRESSION**"
		}
		fmt.Fprintf(&b, "| %s | %s | %.0f | %.0f | %+.1f%% | %s |\n",
			r.pair, r.series, r.oldV, r.newV, r.pct, status)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// loadMetrics parses one BENCH file into path → value for every numeric
// leaf named metric.
func loadMetrics(path, metric string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	collect(doc, "", metric, m)
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no %q values found", path, metric)
	}
	return m, nil
}

// collect walks the decoded JSON tree accumulating metric leaves.
func collect(node any, prefix, metric string, out map[string]float64) {
	obj, ok := node.(map[string]any)
	if !ok {
		return
	}
	for k, v := range obj {
		p := k
		if prefix != "" {
			p = prefix + "/" + k
		}
		if num, ok := v.(float64); ok && k == metric {
			out[prefix] = num
			continue
		}
		collect(v, p, metric, out)
	}
}

// reportOrphans lists series present in a but missing from b.
func reportOrphans(out io.Writer, a, b map[string]float64, name string) {
	var only []string
	for p := range a {
		if _, ok := b[p]; !ok {
			only = append(only, p)
		}
	}
	sort.Strings(only)
	for _, p := range only {
		fmt.Fprintf(out, "note: %s only in %s\n", p, name)
	}
}
