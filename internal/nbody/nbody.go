// Package nbody is the second application substrate: a direct-summation
// gravitational N-body simulation. The related work of the reproduced
// paper (Ni et al., "Lossy compression for checkpointing: Fallible or
// feasible?", SC 2014 — reference [31]) studies lossy checkpoint
// compression on an N-body cosmology code; the paper lists applying its
// own compressor to such applications as future work. This package lets
// experiment X4 (DESIGN.md) do exactly that.
//
// Particle data is the interesting contrast to climate fields: positions
// and velocities of gravitating particles are *not* spatially smooth when
// laid out as 1-D arrays in particle order, so the wavelet compressor's
// core assumption fails and the measured compression rates and errors
// should degrade — which is the point of the experiment.
//
// The integrator is leapfrog (kick-drift-kick) with Plummer softening,
// which conserves energy well enough for checkpoint/restart studies.
package nbody

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lossyckpt/internal/grid"
)

// ErrConfig indicates an invalid simulation configuration.
var ErrConfig = errors.New("nbody: invalid configuration")

// Config parameterizes the simulation.
type Config struct {
	// N is the particle count.
	N int
	// Seed drives the deterministic initial conditions.
	Seed int64
	// Dt is the leapfrog time step.
	Dt float64
	// Softening is the Plummer softening length.
	Softening float64
	// G is the gravitational constant (model units).
	G float64
}

// DefaultConfig returns a small cold-collapse setup.
func DefaultConfig() Config {
	return Config{N: 512, Seed: 42, Dt: 1e-3, Softening: 0.05, G: 1}
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: N=%d", ErrConfig, c.N)
	}
	if !(c.Dt > 0) || !(c.Softening > 0) || !(c.G > 0) {
		return fmt.Errorf("%w: dt=%g softening=%g G=%g", ErrConfig, c.Dt, c.Softening, c.G)
	}
	return nil
}

// System is one N-body simulation instance. Not safe for concurrent use.
type System struct {
	cfg  Config
	step int

	// Checkpointable state: seven 1-D arrays of length N.
	posX, posY, posZ *grid.Field
	velX, velY, velZ *grid.Field
	mass             *grid.Field

	// Scratch accelerations.
	accX, accY, accZ []float64
}

// New builds a system with seeded isotropic initial conditions: particles
// uniform in a unit sphere with small virial velocities and equal masses.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	var err error
	for _, fp := range []**grid.Field{&s.posX, &s.posY, &s.posZ, &s.velX, &s.velY, &s.velZ, &s.mass} {
		if *fp, err = grid.New(cfg.N); err != nil {
			return nil, err
		}
	}
	s.accX = make([]float64, cfg.N)
	s.accY = make([]float64, cfg.N)
	s.accZ = make([]float64, cfg.N)

	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.N; i++ {
		// Uniform in the unit sphere by rejection.
		var x, y, z float64
		for {
			x, y, z = 2*rng.Float64()-1, 2*rng.Float64()-1, 2*rng.Float64()-1
			if x*x+y*y+z*z <= 1 {
				break
			}
		}
		s.posX.Data()[i] = x
		s.posY.Data()[i] = y
		s.posZ.Data()[i] = z
		s.velX.Data()[i] = 0.1 * rng.NormFloat64()
		s.velY.Data()[i] = 0.1 * rng.NormFloat64()
		s.velZ.Data()[i] = 0.1 * rng.NormFloat64()
		s.mass.Data()[i] = 1 / float64(cfg.N)
	}
	s.computeAccelerations()
	return s, nil
}

// computeAccelerations evaluates pairwise softened gravity, O(N²).
func (s *System) computeAccelerations() {
	n := s.cfg.N
	px, py, pz := s.posX.Data(), s.posY.Data(), s.posZ.Data()
	m := s.mass.Data()
	eps2 := s.cfg.Softening * s.cfg.Softening
	for i := 0; i < n; i++ {
		s.accX[i], s.accY[i], s.accZ[i] = 0, 0, 0
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := px[j] - px[i]
			dy := py[j] - py[i]
			dz := pz[j] - pz[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			inv := 1 / (r2 * math.Sqrt(r2))
			fij := s.cfg.G * inv
			s.accX[i] += fij * m[j] * dx
			s.accY[i] += fij * m[j] * dy
			s.accZ[i] += fij * m[j] * dz
			s.accX[j] -= fij * m[i] * dx
			s.accY[j] -= fij * m[i] * dy
			s.accZ[j] -= fij * m[i] * dz
		}
	}
}

// Step advances one kick-drift-kick leapfrog step.
func (s *System) Step() {
	n, dt := s.cfg.N, s.cfg.Dt
	vx, vy, vz := s.velX.Data(), s.velY.Data(), s.velZ.Data()
	px, py, pz := s.posX.Data(), s.posY.Data(), s.posZ.Data()
	half := dt / 2
	for i := 0; i < n; i++ {
		vx[i] += half * s.accX[i]
		vy[i] += half * s.accY[i]
		vz[i] += half * s.accZ[i]
		px[i] += dt * vx[i]
		py[i] += dt * vy[i]
		pz[i] += dt * vz[i]
	}
	s.computeAccelerations()
	for i := 0; i < n; i++ {
		vx[i] += half * s.accX[i]
		vy[i] += half * s.accY[i]
		vz[i] += half * s.accZ[i]
	}
	s.step++
}

// StepN advances n steps.
func (s *System) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// NamedField couples a checkpoint array with its variable name.
type NamedField struct {
	Name  string
	Field *grid.Field
}

// Fields returns the seven checkpointable particle arrays (live state).
func (s *System) Fields() []NamedField {
	return []NamedField{
		{"pos_x", s.posX}, {"pos_y", s.posY}, {"pos_z", s.posZ},
		{"vel_x", s.velX}, {"vel_y", s.velY}, {"vel_z", s.velZ},
		{"mass", s.mass},
	}
}

// StepCount returns the number of completed steps.
func (s *System) StepCount() int { return s.step }

// SetStepCount overrides the step counter after a restore.
func (s *System) SetStepCount(n int) { s.step = n }

// RefreshDerived recomputes accelerations from the (possibly restored)
// positions; call it after overwriting particle state.
func (s *System) RefreshDerived() { s.computeAccelerations() }

// Energy returns the total energy (kinetic + softened potential), the
// conservation diagnostic.
func (s *System) Energy() float64 {
	n := s.cfg.N
	px, py, pz := s.posX.Data(), s.posY.Data(), s.posZ.Data()
	vx, vy, vz := s.velX.Data(), s.velY.Data(), s.velZ.Data()
	m := s.mass.Data()
	eps2 := s.cfg.Softening * s.cfg.Softening
	var kin, pot float64
	for i := 0; i < n; i++ {
		kin += 0.5 * m[i] * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
		for j := i + 1; j < n; j++ {
			dx := px[j] - px[i]
			dy := py[j] - py[i]
			dz := pz[j] - pz[i]
			pot -= s.cfg.G * m[i] * m[j] / math.Sqrt(dx*dx+dy*dy+dz*dz+eps2)
		}
	}
	return kin + pot
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	cp := &System{
		cfg:  s.cfg,
		step: s.step,
		posX: s.posX.Clone(), posY: s.posY.Clone(), posZ: s.posZ.Clone(),
		velX: s.velX.Clone(), velY: s.velY.Clone(), velZ: s.velZ.Clone(),
		mass: s.mass.Clone(),
		accX: append([]float64(nil), s.accX...),
		accY: append([]float64(nil), s.accY...),
		accZ: append([]float64(nil), s.accZ...),
	}
	return cp
}
