package nbody

import (
	"math"
	"testing"
)

func testConfig() Config {
	c := DefaultConfig()
	c.N = 128
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: 1, Dt: 1e-3, Softening: 0.05, G: 1},
		{N: 10, Dt: 0, Softening: 0.05, G: 1},
		{N: 10, Dt: 1e-3, Softening: 0, G: 1},
		{N: 10, Dt: 1e-3, Softening: 0.05, G: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	a.StepN(20)
	b.StepN(20)
	for i, fa := range a.Fields() {
		if !fa.Field.Equal(b.Fields()[i].Field) {
			t.Errorf("field %s diverged between identical runs", fa.Name)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	s, _ := New(testConfig())
	e0 := s.Energy()
	s.StepN(500)
	e1 := s.Energy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Errorf("energy drifted %.3f%% over 500 steps", 100*drift)
	}
}

func TestMomentumConservation(t *testing.T) {
	s, _ := New(testConfig())
	mom := func() (float64, float64, float64) {
		var mx, my, mz float64
		m := s.Fields()[6].Field.Data()
		vx := s.Fields()[3].Field.Data()
		vy := s.Fields()[4].Field.Data()
		vz := s.Fields()[5].Field.Data()
		for i := range m {
			mx += m[i] * vx[i]
			my += m[i] * vy[i]
			mz += m[i] * vz[i]
		}
		return mx, my, mz
	}
	x0, y0, z0 := mom()
	s.StepN(200)
	x1, y1, z1 := mom()
	if math.Abs(x1-x0) > 1e-10 || math.Abs(y1-y0) > 1e-10 || math.Abs(z1-z0) > 1e-10 {
		t.Errorf("momentum drifted: (%g,%g,%g) -> (%g,%g,%g)", x0, y0, z0, x1, y1, z1)
	}
}

func TestFieldsAndCounters(t *testing.T) {
	s, _ := New(testConfig())
	if len(s.Fields()) != 7 {
		t.Errorf("Fields() = %d arrays, want 7", len(s.Fields()))
	}
	s.StepN(5)
	if s.StepCount() != 5 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
	s.SetStepCount(100)
	if s.StepCount() != 100 {
		t.Error("SetStepCount failed")
	}
}

func TestCloneIndependentEvolution(t *testing.T) {
	a, _ := New(testConfig())
	a.StepN(10)
	b := a.Clone()
	a.StepN(10)
	b.StepN(10)
	for i, fa := range a.Fields() {
		if !fa.Field.Equal(b.Fields()[i].Field) {
			t.Errorf("field %s: clone evolution diverged", fa.Name)
		}
	}
}

func TestRestoreWithRefreshDerivedMatchesReference(t *testing.T) {
	ref, _ := New(testConfig())
	ref.StepN(50)
	snap := ref.Clone()
	ref.StepN(50)

	re, _ := New(testConfig())
	for i, nf := range re.Fields() {
		copy(nf.Field.Data(), snap.Fields()[i].Field.Data())
	}
	re.SetStepCount(snap.StepCount())
	re.RefreshDerived()
	re.StepN(50)
	for i, fr := range ref.Fields() {
		if !fr.Field.Equal(re.Fields()[i].Field) {
			t.Errorf("field %s: exact restart diverged", fr.Name)
		}
	}
}

func TestPositionsNotSmoothInParticleOrder(t *testing.T) {
	// The premise of experiment X4: particle arrays lack spatial
	// smoothness, i.e. neighbouring array entries are uncorrelated. Check
	// that the mean |x[i+1]-x[i]| is comparable to the data's spread.
	s, _ := New(testConfig())
	x := s.Fields()[0].Field.Data()
	var diff float64
	for i := 1; i < len(x); i++ {
		diff += math.Abs(x[i] - x[i-1])
	}
	diff /= float64(len(x) - 1)
	min, max := s.Fields()[0].Field.MinMax()
	if diff < (max-min)/20 {
		t.Errorf("particle positions unexpectedly smooth: mean step %g vs range %g", diff, max-min)
	}
}
