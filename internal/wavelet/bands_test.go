package wavelet

import (
	"math/rand"
	"testing"

	"lossyckpt/internal/grid"
)

func TestBandOfSingleLevel2D(t *testing.T) {
	p, _ := NewPlan([]int{4, 4}, 1, Haar)
	// Low box is [0:2, 0:2]. Axis 0 high => bit 0, axis 1 high => bit 1.
	cases := []struct {
		idx   []int
		level int
		id    BandID
	}{
		{[]int{0, 0}, 1, 0},      // LL
		{[]int{1, 1}, 1, 0},      // LL
		{[]int{0, 3}, 1, 1 << 1}, // high along axis 1
		{[]int{3, 0}, 1, 1 << 0}, // high along axis 0
		{[]int{2, 2}, 1, 0b11},   // HH
	}
	for _, c := range cases {
		lv, id := p.BandOf(c.idx)
		if lv != c.level || id != c.id {
			t.Errorf("BandOf(%v) = (%d,%b), want (%d,%b)", c.idx, lv, id, c.level, c.id)
		}
	}
}

func TestBandOfTwoLevels1D(t *testing.T) {
	p, _ := NewPlan([]int{8}, 2, Haar)
	// Level 1 high: indexes 4..7; level 2 high: 2..3; low: 0..1.
	for i := 0; i < 8; i++ {
		lv, id := p.BandOf([]int{i})
		switch {
		case i >= 4:
			if lv != 1 || id != 1 {
				t.Errorf("idx %d: (%d,%d), want level 1 high", i, lv, id)
			}
		case i >= 2:
			if lv != 2 || id != 1 {
				t.Errorf("idx %d: (%d,%d), want level 2 high", i, lv, id)
			}
		default:
			if lv != 2 || id != 0 {
				t.Errorf("idx %d: (%d,%d), want final low", i, lv, id)
			}
		}
	}
}

func TestGatherScatterBandsRoundTrip(t *testing.T) {
	shapes := [][]int{{16}, {8, 6}, {7, 5, 3}, {10, 10}}
	rng := rand.New(rand.NewSource(5))
	for _, shape := range shapes {
		for levels := 1; levels <= 2 && levels <= MaxLevels(shape); levels++ {
			f := grid.MustNew(shape...)
			for i := range f.Data() {
				f.Data()[i] = rng.NormFloat64()
			}
			p, err := NewPlan(shape, levels, Haar)
			if err != nil {
				t.Fatal(err)
			}
			snapshot := f.Clone()
			bands, err := p.GatherBands(f)
			if err != nil {
				t.Fatal(err)
			}
			// Band sizes must match Bands() metadata and sum to the total.
			total := 0
			for i, b := range p.Bands() {
				if len(bands[i]) != b.Count {
					t.Fatalf("shape %v L%d: band %s has %d values, meta says %d",
						shape, levels, b.Name, len(bands[i]), b.Count)
				}
				total += len(bands[i])
			}
			if total != f.Len() {
				t.Fatalf("shape %v: bands cover %d of %d values", shape, total, f.Len())
			}
			if err := p.ScatterBands(f, bands); err != nil {
				t.Fatal(err)
			}
			if !f.Equal(snapshot) {
				t.Errorf("shape %v L%d: gather/scatter bands not identity", shape, levels)
			}
		}
	}
}

func TestScatterBandsValidation(t *testing.T) {
	p, _ := NewPlan([]int{8, 8}, 1, Haar)
	f := grid.MustNew(8, 8)
	if err := p.ScatterBands(f, make([][]float64, 2)); err == nil {
		t.Error("wrong band count accepted")
	}
	bands, _ := p.GatherBands(f)
	bands[0] = bands[0][:1]
	if err := p.ScatterBands(f, bands); err == nil {
		t.Error("wrong band size accepted")
	}
}

func TestBandEnergiesConcentrateForSmoothData(t *testing.T) {
	f := smoothField(t, 64, 64)
	p, _ := NewPlan([]int{64, 64}, 1, Haar)
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	energies, err := p.BandEnergies(f)
	if err != nil {
		t.Fatal(err)
	}
	bands := p.Bands()
	var low, high float64
	for i, b := range bands {
		if b.ID == 0 {
			low += energies[i]
		} else {
			high += energies[i]
		}
	}
	if low < 100*high {
		t.Errorf("smooth data: low-band energy %g not ≫ high %g", low, high)
	}
}

func TestGatherBandsMatchesGatherHighUnion(t *testing.T) {
	// The concatenation of all high bands must contain exactly the same
	// multiset of values as GatherHigh.
	f := randomField(t, 7, 12, 10)
	p, _ := NewPlan([]int{12, 10}, 2, Haar)
	_ = p.Transform(f)
	high, _ := p.GatherHigh(f, nil)
	bands, _ := p.GatherBands(f)
	meta := p.Bands()
	var fromBands []float64
	for i, b := range meta {
		if b.ID != 0 {
			fromBands = append(fromBands, bands[i]...)
		}
	}
	if len(fromBands) != len(high) {
		t.Fatalf("band union has %d values, GatherHigh %d", len(fromBands), len(high))
	}
	count := map[float64]int{}
	for _, v := range high {
		count[v]++
	}
	for _, v := range fromBands {
		count[v]--
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("value %g multiset mismatch (%+d)", v, c)
		}
	}
}
