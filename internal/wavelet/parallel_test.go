package wavelet

import (
	"runtime"
	"testing"
)

// TestTransformWorkersBitIdentical shards multi-row passes across
// goroutines; the lanes are computed identically regardless of sharding, so
// the transformed (and inverted) fields must be bit-exact for every worker
// count. The shapes cross the parallel cutoff (2^15 elements) so the
// sharded path actually runs.
func TestTransformWorkersBitIdentical(t *testing.T) {
	shapes := [][]int{
		{256, 160},   // 40960 elements, above cutoff
		{64, 32, 20}, // 3D, above cutoff
		{1 << 16},    // 1D: single lane per axis, exercises serial fallback
		{130, 18},    // below cutoff: serial fallback, still must match
	}
	for _, scheme := range []Scheme{Haar, CDF53} {
		for _, shape := range shapes {
			f := randomField(t, 17, shape...)
			plan, err := NewPlan(shape, 2, scheme)
			if err != nil {
				t.Fatal(err)
			}
			want := f.Clone()
			if err := plan.TransformWorkers(want, 1); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 0} {
				got := f.Clone()
				if err := plan.TransformWorkers(got, workers); err != nil {
					t.Fatalf("%v %v workers=%d: %v", scheme, shape, workers, err)
				}
				if !want.Equal(got) {
					t.Fatalf("%v %v workers=%d: transform not bit-identical to serial", scheme, shape, workers)
				}
				if err := plan.InverseWorkers(got, workers); err != nil {
					t.Fatalf("%v %v workers=%d inverse: %v", scheme, shape, workers, err)
				}
				ref := want.Clone()
				if err := plan.InverseWorkers(ref, 1); err != nil {
					t.Fatal(err)
				}
				if !ref.Equal(got) {
					t.Fatalf("%v %v workers=%d: inverse not bit-identical to serial", scheme, shape, workers)
				}
			}
		}
	}
}
