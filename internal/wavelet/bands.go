package wavelet

import (
	"fmt"

	"lossyckpt/internal/grid"
)

// BandOf returns which sub-band the multi-index idx belongs to: the
// 1-based level and the BandID within that level (0 only for the deepest
// level's low band). The classification follows the Mallat layout used by
// Transform: an index is at level k's band if it lies inside the active
// box of level k−1 but outside the low box of level k along at least one
// axis (the high bits), or inside every level's low box (the final low
// band).
func (p *Plan) BandOf(idx []int) (level int, id BandID) {
	for k := 1; k <= p.levels; k++ {
		cur := p.ext[k]
		var bits BandID
		for d, i := range idx {
			if i >= cur[d] {
				bits |= 1 << uint(d)
			}
		}
		if bits != 0 {
			return k, bits
		}
	}
	return p.levels, 0
}

// GatherBands splits the transformed field's coefficients into per-band
// slices, ordered exactly like Bands() (all high bands level by level,
// then the final low band). Within each band, values appear in flat
// row-major order — the same order GatherHigh uses overall.
func (p *Plan) GatherBands(f *grid.Field) ([][]float64, error) {
	if err := p.matches(f); err != nil {
		return nil, err
	}
	bands := p.Bands()
	index := make(map[bandKey]int, len(bands))
	out := make([][]float64, len(bands))
	for i, b := range bands {
		index[bandKey{b.Level, b.ID}] = i
		out[i] = make([]float64, 0, b.Count)
	}
	idx := make([]int, len(p.shape))
	for off := 0; off < f.Len(); off++ {
		lv, id := p.BandOf(idx)
		i := index[bandKey{lv, id}]
		out[i] = append(out[i], f.Data()[off])
		advance(idx, p.shape)
	}
	return out, nil
}

// ScatterBands writes per-band slices (as returned by GatherBands) back
// into the transformed field.
func (p *Plan) ScatterBands(f *grid.Field, bands [][]float64) error {
	if err := p.matches(f); err != nil {
		return err
	}
	expect := p.Bands()
	if len(bands) != len(expect) {
		return fmt.Errorf("wavelet: ScatterBands got %d bands, want %d", len(bands), len(expect))
	}
	index := make(map[bandKey]int, len(expect))
	pos := make([]int, len(expect))
	for i, b := range expect {
		index[bandKey{b.Level, b.ID}] = i
		if len(bands[i]) != b.Count {
			return fmt.Errorf("wavelet: band %s has %d values, want %d", b.Name, len(bands[i]), b.Count)
		}
	}
	idx := make([]int, len(p.shape))
	for off := 0; off < f.Len(); off++ {
		lv, id := p.BandOf(idx)
		i := index[bandKey{lv, id}]
		f.Data()[off] = bands[i][pos[i]]
		pos[i]++
		advance(idx, p.shape)
	}
	return nil
}

type bandKey struct {
	level int
	id    BandID
}

// advance increments a row-major multi-index within shape.
func advance(idx, shape []int) {
	for d := len(shape) - 1; d >= 0; d-- {
		idx[d]++
		if idx[d] < shape[d] {
			return
		}
		idx[d] = 0
	}
}

// BandEnergies returns the sum of squared coefficients per band, ordered
// like Bands() — the standard diagnostic for how well a transform
// concentrates information (smooth inputs put almost all energy in the
// low band).
func (p *Plan) BandEnergies(f *grid.Field) ([]float64, error) {
	bands, err := p.GatherBands(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bands))
	for i, b := range bands {
		var e float64
		for _, v := range b {
			e += v * v
		}
		out[i] = e
	}
	return out, nil
}
