package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lossyckpt/internal/grid"
)

func randomField(t *testing.T, seed int64, shape ...int) *grid.Field {
	t.Helper()
	f, err := grid.New(shape...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data() {
		f.Data()[i] = rng.NormFloat64() * 100
	}
	return f
}

// smoothField mimics scientific mesh data: a sum of low-frequency sinusoids
// plus small noise.
func smoothField(t *testing.T, shape ...int) *grid.Field {
	t.Helper()
	f, err := grid.New(shape...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	idx := make([]int, len(shape))
	for off := range f.Data() {
		v := 0.0
		for d, i := range idx {
			v += math.Sin(2 * math.Pi * float64(i) / float64(shape[d]) * float64(d+1))
		}
		f.Data()[off] = 100*v + rng.NormFloat64()*0.01
		for d := len(shape) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return f
}

func maxAbs(f *grid.Field) float64 {
	m := 0.0
	for _, v := range f.Data() {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func assertClose(t *testing.T, got, want *grid.Field, tol float64, msg string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape mismatch %v vs %v", msg, got.Shape(), want.Shape())
	}
	scale := maxAbs(want)
	if scale == 0 {
		scale = 1
	}
	for i := range got.Data() {
		if d := math.Abs(got.Data()[i] - want.Data()[i]); d > tol*scale {
			t.Fatalf("%s: element %d differs: got %g want %g (|Δ|=%g > %g)",
				msg, i, got.Data()[i], want.Data()[i], d, tol*scale)
		}
	}
}

func TestHaar1DKnownValues(t *testing.T) {
	// Paper Fig. 2: L[i]=(A[2i]+A[2i+1])/2, H[i]=(A[2i]-A[2i+1])/2.
	f, _ := grid.FromSlice([]float64{9, 7, 3, 5}, 4)
	p, err := NewPlan([]int{4}, 1, Haar)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 4, 1, -1} // L=[8,4], H=[1,-1]
	for i, w := range want {
		if f.Data()[i] != w {
			t.Errorf("coeff %d = %g, want %g", i, f.Data()[i], w)
		}
	}
	if err := p.Inverse(f); err != nil {
		t.Fatal(err)
	}
	orig := []float64{9, 7, 3, 5}
	for i, w := range orig {
		if f.Data()[i] != w {
			t.Errorf("reconstructed %d = %g, want %g", i, f.Data()[i], w)
		}
	}
}

func TestHaar2DKnownLayout(t *testing.T) {
	// 2x2 array: after x then y transforms the four corners are LL, LH
	// (high along x), HL (high along y), HH.
	f, _ := grid.FromSlice([]float64{
		4, 2,
		2, 0,
	}, 2, 2)
	p, _ := NewPlan([]int{2, 2}, 1, Haar)
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	// Along x: rows -> [3,1] and [1,1]. Along y: cols of that -> LL=(3+1)/2=2,
	// HL=(3-1)/2=1 (y-high), LH col1: (1+1)/2=1, HH=(1-1)/2=0.
	want := []float64{2, 1, 1, 0}
	for i, w := range want {
		if f.Data()[i] != w {
			t.Errorf("coeff %d = %g, want %g (layout [LL LH; HL HH])", i, f.Data()[i], w)
		}
	}
}

func TestRoundTripShapesAndSchemes(t *testing.T) {
	shapes := [][]int{
		{2}, {8}, {9}, {1024},
		{2, 2}, {6, 10}, {7, 5}, {33, 17},
		{4, 6, 8}, {5, 7, 3}, {1156 / 4, 82, 2}, // scaled-down paper shape
		{3, 3, 3, 3},
	}
	for _, scheme := range []Scheme{Haar, CDF53} {
		for _, shape := range shapes {
			for levels := 1; levels <= 3; levels++ {
				if levels > MaxLevels(shape) {
					continue
				}
				f := randomField(t, 99, shape...)
				orig := f.Clone()
				p, err := NewPlan(shape, levels, scheme)
				if err != nil {
					t.Fatalf("NewPlan(%v,%d,%v): %v", shape, levels, scheme, err)
				}
				if err := p.Transform(f); err != nil {
					t.Fatal(err)
				}
				if err := p.Inverse(f); err != nil {
					t.Fatal(err)
				}
				assertClose(t, f, orig, 1e-12, // a few ulps per level
					scheme.String()+" round trip")
			}
		}
	}
}

func TestHighBandSmallOnSmoothData(t *testing.T) {
	f := smoothField(t, 64, 32)
	p, _ := NewPlan([]int{64, 32}, 1, Haar)
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	high, err := p.GatherHigh(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	low, err := p.GatherLow(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	var maxHigh, maxLow float64
	for _, v := range high {
		if a := math.Abs(v); a > maxHigh {
			maxHigh = a
		}
	}
	for _, v := range low {
		if a := math.Abs(v); a > maxLow {
			maxLow = a
		}
	}
	// The core premise of the paper (§III-A): high-frequency values of
	// smooth data concentrate near zero.
	if maxHigh > maxLow/10 {
		t.Errorf("high band not concentrated: max|H|=%g vs max|L|=%g", maxHigh, maxLow)
	}
}

func TestGatherScatterHighRoundTrip(t *testing.T) {
	f := randomField(t, 3, 10, 6)
	p, _ := NewPlan([]int{10, 6}, 2, Haar)
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	snapshot := f.Clone()
	high, err := p.GatherHigh(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != p.HighCount() {
		t.Fatalf("GatherHigh len = %d, want %d", len(high), p.HighCount())
	}
	// Perturb then restore.
	for i := range high {
		high[i] += 1
	}
	if err := p.ScatterHigh(f, high); err != nil {
		t.Fatal(err)
	}
	if f.Equal(snapshot) {
		t.Fatal("ScatterHigh had no effect")
	}
	for i := range high {
		high[i] -= 1
	}
	if err := p.ScatterHigh(f, high); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(snapshot) {
		t.Error("gather/scatter high round trip not identity")
	}
}

func TestGatherScatterLowRoundTrip(t *testing.T) {
	f := randomField(t, 4, 8, 8)
	p, _ := NewPlan([]int{8, 8}, 1, Haar)
	_ = p.Transform(f)
	snapshot := f.Clone()
	low, err := p.GatherLow(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(low) != p.LowCount() {
		t.Fatalf("GatherLow len = %d, want %d", len(low), p.LowCount())
	}
	if err := p.ScatterLow(f, low); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(snapshot) {
		t.Error("gather/scatter low round trip not identity")
	}
}

func TestLowHighPartition(t *testing.T) {
	// Low + high counts must equal the total, for a variety of shapes and
	// levels, including odd extents.
	for _, shape := range [][]int{{9}, {7, 3}, {5, 4, 3}, {1156, 82, 2}} {
		total := 1
		for _, e := range shape {
			total *= e
		}
		for levels := 1; levels <= MaxLevels(shape) && levels <= 4; levels++ {
			p, err := NewPlan(shape, levels, Haar)
			if err != nil {
				t.Fatal(err)
			}
			if p.LowCount()+p.HighCount() != total {
				t.Errorf("shape %v levels %d: low %d + high %d != %d",
					shape, levels, p.LowCount(), p.HighCount(), total)
			}
		}
	}
}

func TestBandsSumToTotal(t *testing.T) {
	for _, shape := range [][]int{{16}, {8, 8}, {1156, 82, 2}, {9, 7}} {
		total := 1
		for _, e := range shape {
			total *= e
		}
		for levels := 1; levels <= 3 && levels <= MaxLevels(shape); levels++ {
			p, _ := NewPlan(shape, levels, Haar)
			sum := 0
			for _, b := range p.Bands() {
				if b.Count < 0 {
					t.Fatalf("negative band count: %+v", b)
				}
				sum += b.Count
			}
			if sum != total {
				t.Errorf("shape %v levels %d: band counts sum %d, want %d", shape, levels, sum, total)
			}
		}
	}
}

func TestBandNames(t *testing.T) {
	p, _ := NewPlan([]int{8, 8}, 1, Haar)
	names := map[string]bool{}
	for _, b := range p.Bands() {
		names[b.Name] = true
	}
	for _, want := range []string{"HL@1", "LH@1", "HH@1", "LL@1"} {
		if !names[want] {
			t.Errorf("missing band %s in %v", want, names)
		}
	}
}

func TestPaperShapeSingleLevel(t *testing.T) {
	// The paper's arrays are 1156x82x2 doubles (~1.5 MB). One level in 3D
	// yields one low band and seven high bands.
	shape := []int{1156, 82, 2}
	p, err := NewPlan(shape, 1, Haar)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LowCount(); got != 578*41*1 {
		t.Errorf("LowCount = %d, want %d", got, 578*41)
	}
	bands := p.Bands()
	if len(bands) != 8 { // 7 high + 1 low
		t.Errorf("bands = %d, want 8", len(bands))
	}
}

func TestMaxLevels(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{1}, 0},
		{[]int{2}, 1},
		{[]int{4}, 2},
		{[]int{1024}, 10},
		{[]int{2, 2}, 1},
		{[]int{1156, 82, 2}, 11}, // until 1156 collapses to 1
	}
	for _, c := range cases {
		if got := MaxLevels(c.shape); got != c.want {
			t.Errorf("MaxLevels(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan([]int{4}, 0, Haar); err == nil {
		t.Error("levels=0: expected error")
	}
	if _, err := NewPlan([]int{4}, 3, Haar); err == nil {
		t.Error("too many levels: expected error")
	}
	if _, err := NewPlan([]int{0}, 1, Haar); err == nil {
		t.Error("bad shape: expected error")
	}
	if _, err := NewPlan([]int{4}, 1, Scheme(99)); err == nil {
		t.Error("bad scheme: expected error")
	}
}

func TestShapeMismatch(t *testing.T) {
	p, _ := NewPlan([]int{4, 4}, 1, Haar)
	f := grid.MustNew(4, 5)
	if err := p.Transform(f); err == nil {
		t.Error("Transform with mismatched shape: expected error")
	}
	if err := p.Inverse(f); err == nil {
		t.Error("Inverse with mismatched shape: expected error")
	}
	if _, err := p.GatherHigh(f, nil); err == nil {
		t.Error("GatherHigh with mismatched shape: expected error")
	}
	g := grid.MustNew(4, 4)
	if err := p.ScatterHigh(g, make([]float64, 3)); err == nil {
		t.Error("ScatterHigh with wrong length: expected error")
	}
}

func TestEnergyPreservation(t *testing.T) {
	// The orthonormal Haar preserves energy up to the scaling convention.
	// With the paper's L=(a+b)/2, H=(a-b)/2 convention, a single 1D level
	// satisfies sum(a^2) = 2*sum(L^2+H^2) for even lengths.
	f := randomField(t, 11, 256)
	var e0 float64
	for _, v := range f.Data() {
		e0 += v * v
	}
	p, _ := NewPlan([]int{256}, 1, Haar)
	_ = p.Transform(f)
	var e1 float64
	for _, v := range f.Data() {
		e1 += v * v
	}
	if math.Abs(2*e1-e0) > 1e-9*e0 {
		t.Errorf("energy relation violated: orig %g, 2*transformed %g", e0, 2*e1)
	}
}

func TestSchemeStringParse(t *testing.T) {
	for _, s := range []Scheme{Haar, CDF53} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("dct"); err == nil {
		t.Error("ParseScheme(dct): expected error")
	}
}

// Property: round trip is near-identity for arbitrary 1D data and levels.
func TestQuickRoundTrip1D(t *testing.T) {
	fn := func(raw []float64, lv uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 512 {
			raw = raw[:512]
		}
		// Clamp inputs to a sane range; quick generates extreme values whose
		// sums overflow, which is out of scope for checkpoint data.
		data := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = math.Mod(v, 1e6)
		}
		shape := []int{len(data)}
		levels := int(lv)%MaxLevels(shape) + 1
		f, _ := grid.FromSlice(append([]float64(nil), data...), len(data))
		p, err := NewPlan(shape, levels, Haar)
		if err != nil {
			return false
		}
		if p.Transform(f) != nil || p.Inverse(f) != nil {
			return false
		}
		scale := 0.0
		for _, v := range data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for i := range data {
			if math.Abs(f.Data()[i]-data[i]) > 1e-10*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: GatherHigh ∘ ScatterHigh is the identity on the high slice.
func TestQuickGatherScatterIdentity(t *testing.T) {
	fn := func(a, b uint8, seed int64) bool {
		h, w := int(a%20)+2, int(b%20)+2
		f := grid.MustNew(h, w)
		rng := rand.New(rand.NewSource(seed))
		for i := range f.Data() {
			f.Data()[i] = rng.Float64()
		}
		p, err := NewPlan([]int{h, w}, 1, Haar)
		if err != nil {
			return false
		}
		high, err := p.GatherHigh(f, nil)
		if err != nil {
			return false
		}
		in := append([]float64(nil), high...)
		if p.ScatterHigh(f, high) != nil {
			return false
		}
		out, err := p.GatherHigh(f, nil)
		if err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDF53AnnihilatesLinearSignals(t *testing.T) {
	// The (5,3) predict step subtracts the average of the two even
	// neighbours from each odd sample, so a linear ramp produces exactly
	// zero detail coefficients (the kernel's defining vanishing moment) —
	// while Haar's differences stay nonzero.
	n := 64
	f := grid.MustNew(n)
	for i := range f.Data() {
		f.Data()[i] = 3 + 0.5*float64(i)
	}
	p, _ := NewPlan([]int{n}, 1, CDF53)
	if err := p.Transform(f); err != nil {
		t.Fatal(err)
	}
	high, _ := p.GatherHigh(f, nil)
	for i, h := range high[:len(high)-1] { // boundary detail uses extension
		if math.Abs(h) > 1e-12 {
			t.Errorf("CDF53 detail %d = %g on linear data, want 0", i, h)
		}
	}

	g := grid.MustNew(n)
	copy(g.Data(), make([]float64, n))
	for i := range g.Data() {
		g.Data()[i] = 3 + 0.5*float64(i)
	}
	ph, _ := NewPlan([]int{n}, 1, Haar)
	if err := ph.Transform(g); err != nil {
		t.Fatal(err)
	}
	haarHigh, _ := ph.GatherHigh(g, nil)
	nonzero := 0
	for _, h := range haarHigh {
		if math.Abs(h) > 1e-12 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("Haar details all zero on a ramp; expected -slope/2 everywhere")
	}
}
