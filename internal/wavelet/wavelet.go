// Package wavelet implements stage 1 of the lossy checkpoint compressor of
// Sasaki et al. (IPDPS 2015): a separable discrete wavelet transform over
// N-dimensional float64 fields.
//
// The paper uses a single-level Haar transform: along each axis, each pair
// of neighbouring values (a, b) is replaced by the low-frequency average
// L = (a+b)/2 and the high-frequency difference H = (a−b)/2 (paper Eqs. 2–3).
// After transforming every axis of a D-dimensional array once, the array is
// partitioned into one low-frequency band (the corner box holding averages
// along every axis) and 2^D − 1 high-frequency bands. Because scientific
// mesh data is spatially smooth, the high-frequency values concentrate near
// zero, which is what makes the downstream quantizer effective.
//
// This package generalizes the paper's transform to any number of
// dimensions (≤ grid.MaxDims), any number of decomposition levels (Mallat
// layout: each level recursively transforms the low band of the previous
// one), odd extents (the trailing unpaired element is carried into the low
// band verbatim), and pluggable per-lane kernels (the paper's Haar plus a
// CDF(5/3)-style lifting kernel as an "improved algorithm" extension,
// cf. the paper's future work in §VI).
//
// Floating-point caveat: with IEEE doubles the Haar round trip
// a = L+H, b = L−H is exact only when a+b and a−b round without error; in
// general each level contributes up to ~1 ulp of reconstruction error. The
// paper describes the transform as lossless; we preserve the algorithm and
// document the caveat (see DESIGN.md §5).
package wavelet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lossyckpt/internal/grid"
)

// Scheme selects the per-lane wavelet kernel.
type Scheme int

const (
	// Haar is the paper's kernel: L=(a+b)/2, H=(a−b)/2.
	Haar Scheme = iota
	// CDF53 is a Cohen–Daubechies–Feauveau (5,3) lifting kernel, an
	// extension beyond the paper. Its low band is smoother, which typically
	// concentrates high-band energy further.
	CDF53
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Haar:
		return "haar"
	case CDF53:
		return "cdf53"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a string produced by String back into a Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "haar":
		return Haar, nil
	case "cdf53":
		return CDF53, nil
	default:
		return 0, fmt.Errorf("wavelet: unknown scheme %q", s)
	}
}

// Errors returned by this package.
var (
	// ErrLevels indicates a level count that is zero, negative, or deeper
	// than the field's extents allow.
	ErrLevels = errors.New("wavelet: invalid decomposition level count")
)

// MaxLevels returns the deepest decomposition supported for the shape: a
// level is useful while at least one active extent is ≥ 2 (axes that have
// shrunk to 1 are skipped at that depth, as in standard Mallat handling of
// anisotropic shapes).
func MaxLevels(shape []int) int {
	ext := append([]int(nil), shape...)
	levels := 0
	for {
		any := false
		for _, e := range ext {
			if e >= 2 {
				any = true
			}
		}
		if !any {
			return levels
		}
		for d := range ext {
			ext[d] = (ext[d] + 1) / 2
		}
		levels++
	}
}

// Plan describes a concrete decomposition: shape, level count and the
// per-level active extents. A Plan is required to transform, invert and to
// locate the high-frequency values for quantization. Plans are immutable
// and safe for concurrent use.
type Plan struct {
	shape  []int
	levels int
	scheme Scheme
	// ext[k] holds the active extents entering level k (ext[0] == shape);
	// ext[levels] is the final low-band box.
	ext [][]int
}

// NewPlan validates the shape/levels pair and precomputes per-level extents.
func NewPlan(shape []int, levels int, scheme Scheme) (*Plan, error) {
	if err := checkShape(shape); err != nil {
		return nil, err
	}
	if levels < 1 || levels > MaxLevels(shape) {
		return nil, fmt.Errorf("%w: %d for shape %v (max %d)", ErrLevels, levels, shape, MaxLevels(shape))
	}
	if scheme != Haar && scheme != CDF53 {
		return nil, fmt.Errorf("wavelet: unknown scheme %d", int(scheme))
	}
	p := &Plan{
		shape:  append([]int(nil), shape...),
		levels: levels,
		scheme: scheme,
	}
	p.ext = make([][]int, levels+1)
	cur := append([]int(nil), shape...)
	p.ext[0] = append([]int(nil), cur...)
	for k := 1; k <= levels; k++ {
		for d := range cur {
			cur[d] = (cur[d] + 1) / 2
		}
		p.ext[k] = append([]int(nil), cur...)
	}
	return p, nil
}

func checkShape(shape []int) error {
	if len(shape) == 0 || len(shape) > grid.MaxDims {
		return fmt.Errorf("wavelet: invalid shape %v", shape)
	}
	for _, e := range shape {
		if e <= 0 {
			return fmt.Errorf("wavelet: invalid shape %v", shape)
		}
	}
	return nil
}

// Shape returns a copy of the planned shape.
func (p *Plan) Shape() []int { return append([]int(nil), p.shape...) }

// Levels returns the decomposition depth.
func (p *Plan) Levels() int { return p.levels }

// Scheme returns the kernel in use.
func (p *Plan) Scheme() Scheme { return p.scheme }

// LowShape returns the extents of the final low-frequency band box.
func (p *Plan) LowShape() []int { return append([]int(nil), p.ext[p.levels]...) }

// LowCount returns the number of values in the final low band.
func (p *Plan) LowCount() int {
	n := 1
	for _, e := range p.ext[p.levels] {
		n *= e
	}
	return n
}

// HighCount returns the number of high-frequency values (total minus low).
func (p *Plan) HighCount() int {
	n := 1
	for _, e := range p.shape {
		n *= e
	}
	return n - p.LowCount()
}

// matches reports whether the field is compatible with the plan.
func (p *Plan) matches(f *grid.Field) error {
	if f.Dims() != len(p.shape) {
		return fmt.Errorf("wavelet: field is %d-D, plan is %d-D", f.Dims(), len(p.shape))
	}
	for d, e := range p.shape {
		if f.Extent(d) != e {
			return fmt.Errorf("wavelet: field shape %v does not match plan shape %v", f.Shape(), p.shape)
		}
	}
	return nil
}

// parallelCutoff is the number of elements an axis pass must touch before
// it is sharded across goroutines; below it the goroutine fan-out costs
// more than the arithmetic it saves.
const parallelCutoff = 1 << 15

// laneScratch pools the per-goroutine gather/scatter buffers of the axis
// passes so repeated transforms allocate nothing on the hot path.
var laneScratch = sync.Pool{New: func() any { return new(scratch) }}

type scratch struct{ src, dst []float64 }

func getScratch(n int) *scratch {
	s := laneScratch.Get().(*scratch)
	if cap(s.src) < n {
		s.src = make([]float64, n)
		s.dst = make([]float64, n)
	}
	s.src = s.src[:n]
	s.dst = s.dst[:n]
	return s
}

// Transform applies the planned forward transform to f in place. Large
// axis passes are sharded across GOMAXPROCS goroutines (lanes along one
// axis are independent); use TransformWorkers to bound or disable that.
func (p *Plan) Transform(f *grid.Field) error {
	return p.TransformWorkers(f, 0)
}

// TransformWorkers is Transform with an explicit parallelism bound:
// workers 0 means GOMAXPROCS, 1 forces the serial path. The result is
// bit-identical for every worker count — lanes are disjoint and each lane
// is computed exactly as in the serial path.
func (p *Plan) TransformWorkers(f *grid.Field, workers int) error {
	if err := p.matches(f); err != nil {
		return err
	}
	for k := 0; k < p.levels; k++ {
		act := p.ext[k]
		for axis := range p.shape {
			if act[axis] < 2 {
				continue // nothing to pair along this axis at this depth
			}
			p.axisPass(f, act, axis, workers, true)
		}
	}
	return nil
}

// Inverse applies the planned inverse transform to f in place, undoing
// Transform (up to floating-point rounding; see the package comment). Like
// Transform it parallelizes large axis passes; see InverseWorkers.
func (p *Plan) Inverse(f *grid.Field) error {
	return p.InverseWorkers(f, 0)
}

// InverseWorkers is Inverse with an explicit parallelism bound (0 =
// GOMAXPROCS, 1 = serial). Bit-identical for every worker count.
func (p *Plan) InverseWorkers(f *grid.Field, workers int) error {
	if err := p.matches(f); err != nil {
		return err
	}
	for k := p.levels - 1; k >= 0; k-- {
		act := p.ext[k]
		for axis := len(p.shape) - 1; axis >= 0; axis-- {
			if act[axis] < 2 {
				continue
			}
			p.axisPass(f, act, axis, workers, false)
		}
	}
	return nil
}

// axisPass runs one forward or inverse wavelet pass along axis over the
// active box act, sharding the independent lanes across workers when the
// pass is large enough to amortize the fan-out.
func (p *Plan) axisPass(f *grid.Field, act []int, axis, workers int, forward bool) {
	lanes := 1
	for d, e := range act {
		if d != axis {
			lanes *= e
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > lanes {
		workers = lanes
	}
	if workers < 2 || lanes*act[axis] < parallelCutoff {
		p.axisPassRange(f, act, axis, 0, lanes, forward)
		return
	}
	var wg sync.WaitGroup
	per := (lanes + workers - 1) / workers
	for lo := 0; lo < lanes; lo += per {
		hi := lo + per
		if hi > lanes {
			hi = lanes
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.axisPassRange(f, act, axis, lo, hi, forward)
		}(lo, hi)
	}
	wg.Wait()
}

// axisPassRange processes the lanes with ordinals [lo, hi) of one axis
// pass. Lane ordinals enumerate the index tuples over act with the pass
// axis fixed at 0, last dimension fastest — the same order the old serial
// walk used. Distinct ordinals touch disjoint elements, so concurrent
// ranges never race.
func (p *Plan) axisPassRange(f *grid.Field, act []int, axis, lo, hi int, forward bool) {
	n := act[axis]
	sc := getScratch(n)
	defer laneScratch.Put(sc)
	data := f.Data()
	stride := f.Stride(axis)

	// Decode the starting ordinal into a multi-index once, then advance it
	// incrementally like the serial walk did.
	idx := make([]int, len(act))
	ord := lo
	for d := len(act) - 1; d >= 0; d-- {
		if d == axis {
			continue
		}
		idx[d] = ord % act[d]
		ord /= act[d]
	}
	for o := lo; o < hi; o++ {
		off := 0
		for d, i := range idx {
			off += i * f.Stride(d)
		}
		l := grid.Lane{Start: off, Stride: stride, Len: n}
		l.Gather(data, sc.src)
		if forward {
			forwardLane(p.scheme, sc.src, sc.dst)
		} else {
			inverseLane(p.scheme, sc.src, sc.dst)
		}
		l.Scatter(data, sc.dst)
		for d := len(act) - 1; d >= 0; d-- {
			if d == axis {
				continue
			}
			idx[d]++
			if idx[d] < act[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// forwardLane transforms one gathered lane src into dst laid out as
// [L(0..nl) | H(0..nh)] where nl = ceil(m/2), nh = floor(m/2); an odd
// trailing element is carried into the last low slot verbatim.
func forwardLane(s Scheme, src, dst []float64) {
	m := len(src)
	nh := m / 2
	nl := m - nh
	switch s {
	case Haar:
		for i := 0; i < nh; i++ {
			a, b := src[2*i], src[2*i+1]
			dst[i] = (a + b) / 2
			dst[nl+i] = (a - b) / 2
		}
	case CDF53:
		// Lifting on the gathered lane: predict odds from even neighbours,
		// then update evens from the predicted details. Symmetric extension
		// at the boundaries.
		// detail: d[i] = a[2i+1] − (a[2i] + a[2i+2]) / 2
		// smooth: s[i] = a[2i] + (d[i−1] + d[i]) / 4
		for i := 0; i < nh; i++ {
			left := src[2*i]
			right := left
			if 2*i+2 < m {
				right = src[2*i+2]
			}
			dst[nl+i] = src[2*i+1] - (left+right)/2
		}
		for i := 0; i < nl; i++ {
			var dl, dr float64
			if i > 0 {
				dl = dst[nl+i-1]
			} else if nh > 0 {
				dl = dst[nl]
			}
			if i < nh {
				dr = dst[nl+i]
			} else if nh > 0 {
				dr = dst[nl+nh-1]
			}
			dst[i] = src[2*i] + (dl+dr)/4
		}
		return
	}
	if nl > nh { // odd length: carry the unpaired trailing element
		dst[nl-1] = src[m-1]
	}
}

// inverseLane undoes forwardLane: src is [L | H], dst is the interleaved
// original lane.
func inverseLane(s Scheme, src, dst []float64) {
	m := len(src)
	nh := m / 2
	nl := m - nh
	switch s {
	case Haar:
		for i := 0; i < nh; i++ {
			l, h := src[i], src[nl+i]
			dst[2*i] = l + h
			dst[2*i+1] = l - h
		}
	case CDF53:
		// Undo update, then undo predict, mirroring forwardLane exactly.
		for i := 0; i < nl; i++ {
			var dl, dr float64
			if i > 0 {
				dl = src[nl+i-1]
			} else if nh > 0 {
				dl = src[nl]
			}
			if i < nh {
				dr = src[nl+i]
			} else if nh > 0 {
				dr = src[nl+nh-1]
			}
			dst[2*i] = src[i] - (dl+dr)/4
		}
		for i := 0; i < nh; i++ {
			left := dst[2*i]
			right := left
			if 2*i+2 < m {
				right = dst[2*i+2]
			}
			dst[2*i+1] = src[nl+i] + (left+right)/2
		}
		return
	}
	if nl > nh {
		dst[m-1] = src[nl-1]
	}
}

// inLowBox reports whether the multi-index idx lies inside the final
// low-band box of the plan.
func (p *Plan) inLowBox(idx []int) bool {
	low := p.ext[p.levels]
	for d, i := range idx {
		if i >= low[d] {
			return false
		}
	}
	return true
}

// GatherHigh copies every high-frequency value of the transformed field f
// into dst in deterministic (flat row-major) order and returns the slice.
// If dst is nil or too small a new slice is allocated. The returned slice
// has length p.HighCount().
func (p *Plan) GatherHigh(f *grid.Field, dst []float64) ([]float64, error) {
	if err := p.matches(f); err != nil {
		return nil, err
	}
	n := p.HighCount()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	p.visitHigh(func(off int) {
		dst[k] = f.Data()[off]
		k++
	})
	return dst, nil
}

// ScatterHigh writes src (length p.HighCount(), same order as GatherHigh)
// back into the high-frequency positions of f.
func (p *Plan) ScatterHigh(f *grid.Field, src []float64) error {
	if err := p.matches(f); err != nil {
		return err
	}
	if len(src) != p.HighCount() {
		return fmt.Errorf("wavelet: ScatterHigh got %d values, want %d", len(src), p.HighCount())
	}
	k := 0
	p.visitHigh(func(off int) {
		f.Data()[off] = src[k]
		k++
	})
	return nil
}

// GatherLow copies the final low band (row-major order within the low box)
// into dst and returns it; it allocates when dst is too small.
func (p *Plan) GatherLow(f *grid.Field, dst []float64) ([]float64, error) {
	if err := p.matches(f); err != nil {
		return nil, err
	}
	n := p.LowCount()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	p.visitLow(func(off int) {
		dst[k] = f.Data()[off]
		k++
	})
	return dst, nil
}

// ScatterLow writes src (length p.LowCount(), same order as GatherLow) back
// into the low-band positions of f.
func (p *Plan) ScatterLow(f *grid.Field, src []float64) error {
	if err := p.matches(f); err != nil {
		return err
	}
	if len(src) != p.LowCount() {
		return fmt.Errorf("wavelet: ScatterLow got %d values, want %d", len(src), p.LowCount())
	}
	k := 0
	p.visitLow(func(off int) {
		f.Data()[off] = src[k]
		k++
	})
	return nil
}

// visitHigh calls fn with the flat offset of every high-frequency element,
// in increasing flat order.
func (p *Plan) visitHigh(fn func(off int)) {
	p.visit(func(off int, low bool) {
		if !low {
			fn(off)
		}
	})
}

// visitLow calls fn with the flat offset of every low-band element, in
// increasing flat order.
func (p *Plan) visitLow(fn func(off int)) {
	p.visit(func(off int, low bool) {
		if low {
			fn(off)
		}
	})
}

func (p *Plan) visit(fn func(off int, low bool)) {
	idx := make([]int, len(p.shape))
	total := 1
	for _, e := range p.shape {
		total *= e
	}
	for off := 0; off < total; off++ {
		fn(off, p.inLowBox(idx))
		for d := len(p.shape) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < p.shape[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// BandID identifies one sub-band of a single decomposition level: a bitmask
// with bit d set when the band is high-frequency along axis d. BandID 0 is
// the low band (only meaningful at the deepest level).
type BandID uint32

// String renders the band in the paper's LL/LH/HL/HH notation (general-D:
// 'L'/'H' per axis, axis 0 first).
func (b BandID) string(dims int) string {
	s := make([]byte, dims)
	for d := 0; d < dims; d++ {
		if b&(1<<uint(d)) != 0 {
			s[d] = 'H'
		} else {
			s[d] = 'L'
		}
	}
	return string(s)
}

// Band describes one sub-band at one level of the decomposition.
type Band struct {
	Level int    // 1-based decomposition level
	ID    BandID // which axes are high-frequency
	Name  string // e.g. "LH@1"
	Count int    // number of coefficients in the band
}

// Bands enumerates every sub-band of the plan: for each level 1..levels,
// the 2^D−1 high bands; plus the single low band of the deepest level.
// The counts always sum to the total element count.
func (p *Plan) Bands() []Band {
	dims := len(p.shape)
	var out []Band
	for k := 1; k <= p.levels; k++ {
		prev, cur := p.ext[k-1], p.ext[k]
		for id := BandID(1); id < 1<<uint(dims); id++ {
			count := 1
			for d := 0; d < dims; d++ {
				if id&(1<<uint(d)) != 0 {
					count *= prev[d] - cur[d] // high extent along d
				} else {
					count *= cur[d]
				}
			}
			out = append(out, Band{
				Level: k,
				ID:    id,
				Name:  fmt.Sprintf("%s@%d", id.string(dims), k),
				Count: count,
			})
		}
	}
	out = append(out, Band{
		Level: p.levels,
		ID:    0,
		Name:  fmt.Sprintf("%s@%d", BandID(0).string(dims), p.levels),
		Count: p.LowCount(),
	})
	return out
}
