// spectrum.go computes the per-band energy split of signal vs. error.
// Z-checker runs a DFT over the data to show where a compressor's loss
// lives in frequency space; the paper's premise is that wavelet
// quantization confines loss to the high bands. A self-contained
// iterative radix-2 FFT over the leading 2^k samples keeps this
// dependency-free and O(n log n).
package qa

import (
	"math"
	"math/cmplx"
)

// fft performs an in-place iterative radix-2 Cooley-Tukey transform.
// len(x) must be a power of two.
func fft(x []complex128) {
	n := len(x)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := x[i+k]
				v := x[i+k+length/2] * w
				x[i+k] = u + v
				x[i+k+length/2] = u - v
				w *= wl
			}
		}
	}
}

// powerSpectrum returns |FFT(x)|^2 over the positive frequencies
// [1, n/2] of the leading 2^k samples of x (k chosen so 2^k ≤
// min(len(x), maxN)). Returns nil when fewer than 8 samples exist.
func powerSpectrum(x []float64, maxN int) []float64 {
	n := len(x)
	if n > maxN {
		n = maxN
	}
	// Truncate to a power of two.
	p := 1
	for p*2 <= n {
		p *= 2
	}
	if p < 8 {
		return nil
	}
	buf := make([]complex128, p)
	for i := 0; i < p; i++ {
		v := x[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		buf[i] = complex(v, 0)
	}
	fft(buf)
	out := make([]float64, p/2)
	for i := 1; i <= p/2; i++ {
		re, im := real(buf[i]), imag(buf[i])
		out[i-1] = re*re + im*im
	}
	return out
}

// bandEnergies folds the signal and error power spectra into `bands`
// octave-style bands (each band spans twice the frequency range of the
// previous), reporting each band's fraction of its spectrum's total
// energy. Returns nil when the sample is too short.
func bandEnergies(signal, errField []float64, bands, maxN int) []Band {
	ps := powerSpectrum(signal, maxN)
	pe := powerSpectrum(errField, maxN)
	if ps == nil || pe == nil || len(ps) != len(pe) {
		return nil
	}
	n := len(ps)
	var totS, totE float64
	for i := range ps {
		totS += ps[i]
		totE += pe[i]
	}
	// Octave edges: the last band covers the top half of the spectrum,
	// the one before it the next quarter, and so on; the first band
	// absorbs the remainder down to DC+1.
	edges := make([]int, bands+1)
	edges[bands] = n
	hi := n
	for b := bands - 1; b >= 1; b-- {
		hi /= 2
		if hi < b {
			hi = b
		}
		edges[b] = hi
	}
	edges[0] = 0
	out := make([]Band, 0, bands)
	for b := 0; b < bands; b++ {
		lo, hi := edges[b], edges[b+1]
		if hi <= lo {
			continue
		}
		var es, ee float64
		for i := lo; i < hi; i++ {
			es += ps[i]
			ee += pe[i]
		}
		band := Band{
			LoFrac: float64(lo) / float64(n),
			HiFrac: float64(hi) / float64(n),
		}
		if totS > 0 {
			band.SignalFrac = es / totS
		}
		if totE > 0 {
			band.ErrorFrac = ee / totE
		}
		out = append(out, band)
	}
	return out
}
