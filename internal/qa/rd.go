// rd.go sweeps the quantization-divisions knob to produce the
// rate-distortion curve — the paper's central trade-off (compression
// rate vs. introduced error) as a first-class artifact.
package qa

import (
	"fmt"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/stats"
)

// RDPoint is one operating point of the rate-distortion curve.
type RDPoint struct {
	Divisions       int     `json:"divisions"`
	CompressedBytes int     `json:"compressed_bytes"`
	BitsPerValue    float64 `json:"bits_per_value"`
	CompressionRate float64 `json:"compression_rate_pct"` // compressed/original × 100
	PSNR            float64 `json:"psnr_db"`
	MaxAbs          float64 `json:"max_abs"`
	MaxRel          float64 `json:"max_rel"`
	EncodeSeconds   float64 `json:"encode_seconds"`
	DecodeSeconds   float64 `json:"decode_seconds"`
}

// DefaultDivisions is the canonical sweep for rate-distortion curves:
// the codes-fit-in-a-byte range the pipeline supports (quant.MaxDivisions
// caps at 255), covering the paper's evaluated operating points.
var DefaultDivisions = []int{8, 16, 32, 64, 128, 192, 255}

// RateDistortion compresses f once per divisions setting (base
// supplies every other knob) and measures rate and distortion of each
// round trip.
func RateDistortion(f *grid.Field, base core.Options, divisions []int) ([]RDPoint, error) {
	if len(divisions) == 0 {
		divisions = DefaultDivisions
	}
	orig := f.Data()
	out := make([]RDPoint, 0, len(divisions))
	for _, div := range divisions {
		opts := base
		opts.Divisions = div
		t0 := time.Now()
		res, err := core.Compress(f, opts)
		if err != nil {
			return nil, fmt.Errorf("qa: rd compress (divisions=%d): %w", div, err)
		}
		enc := time.Since(t0)
		t0 = time.Now()
		dec, err := core.Decompress(res.Data)
		if err != nil {
			return nil, fmt.Errorf("qa: rd decompress (divisions=%d): %w", div, err)
		}
		decDur := time.Since(t0)

		p := RDPoint{
			Divisions:       div,
			CompressedBytes: res.CompressedBytes,
			BitsPerValue:    8 * float64(res.CompressedBytes) / float64(f.Len()),
			CompressionRate: stats.CompressionRate(res.CompressedBytes, res.RawBytes),
			EncodeSeconds:   enc.Seconds(),
			DecodeSeconds:   decDur.Seconds(),
		}
		approx := dec.Data()
		if p.PSNR, err = stats.PSNR(orig, approx); err != nil {
			return nil, err
		}
		if p.MaxAbs, err = stats.MaxAbsError(orig, approx); err != nil {
			return nil, err
		}
		if p.MaxRel, err = stats.MaxRelError(orig, approx); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
