// report.go renders assessments and rate-distortion curves as a
// self-contained markdown + JSON report — the artifact the harness
// attaches per workload and the CLI's `report` subcommand emits.
package qa

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// VarRD is the rate-distortion curve for one variable.
type VarRD struct {
	Var    string    `json:"var"`
	Points []RDPoint `json:"points"`
}

// Report bundles everything qa knows about one workload or checkpoint.
type Report struct {
	Title       string        `json:"title"`
	Workload    string        `json:"workload,omitempty"`
	Codec       string        `json:"codec,omitempty"`
	Created     time.Time     `json:"created"`
	Assessments []*Assessment `json:"assessments,omitempty"`
	RD          []VarRD       `json:"rate_distortion,omitempty"`
	Notes       []string      `json:"notes,omitempty"`
}

// AddNote appends a free-form provenance note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report as a self-contained markdown
// document: summary tables plus ASCII sparkline-style histograms so it
// reads without any plotting toolchain.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", r.Title)
	if r.Workload != "" {
		fmt.Fprintf(&b, "- workload: %s\n", r.Workload)
	}
	if r.Codec != "" {
		fmt.Fprintf(&b, "- codec: %s\n", r.Codec)
	}
	if !r.Created.IsZero() {
		fmt.Fprintf(&b, "- created: %s\n", r.Created.UTC().Format(time.RFC3339))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	b.WriteString("\n")

	if len(r.Assessments) > 0 {
		b.WriteString("## Error assessment\n\n")
		b.WriteString("| var | n | range | max-abs | max-rel | avg-rel | RMSE | PSNR dB | spike |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, a := range r.Assessments {
			fmt.Fprintf(&b, "| %s | %d | [%.4g, %.4g] | %.4g | %.4g | %.4g | %.4g | %s | %.2f |\n",
				a.Var, a.N, a.MinVal, a.MaxVal, a.MaxAbs, a.MaxRel, a.AvgRel, a.RMSE, fmtDB(a.PSNR), a.SpikeFraction)
		}
		b.WriteString("\n")
		for _, a := range r.Assessments {
			writeAssessmentDetail(&b, a)
		}
	}

	for _, rd := range r.RD {
		fmt.Fprintf(&b, "## Rate-distortion — %s\n\n", rd.Var)
		b.WriteString("| divisions | bytes | bits/val | cr % | PSNR dB | max-abs | max-rel | enc s | dec s |\n")
		b.WriteString("|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, p := range rd.Points {
			fmt.Fprintf(&b, "| %d | %d | %.3f | %.2f | %s | %.4g | %.4g | %.4f | %.4f |\n",
				p.Divisions, p.CompressedBytes, p.BitsPerValue, p.CompressionRate, fmtDB(p.PSNR), p.MaxAbs, p.MaxRel, p.EncodeSeconds, p.DecodeSeconds)
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAssessmentDetail renders one variable's histogram, spectrum and
// autocorrelation sections.
func writeAssessmentDetail(b *strings.Builder, a *Assessment) {
	fmt.Fprintf(b, "### %s\n\n", a.Var)
	if h := a.ErrHist; h != nil && h.Total > 0 {
		b.WriteString("Error distribution:\n\n```\n")
		maxC := 0
		for _, c := range h.Counts {
			if c > maxC {
				maxC = c
			}
		}
		width := (h.Max - h.Min) / float64(len(h.Counts))
		for i, c := range h.Counts {
			bar := ""
			if maxC > 0 {
				bar = strings.Repeat("#", c*40/maxC)
			}
			lo := h.Min + float64(i)*width
			fmt.Fprintf(b, "%12.4g | %-40s %d\n", lo, bar, c)
		}
		b.WriteString("```\n\n")
	}
	if len(a.Spectrum) > 0 {
		b.WriteString("Energy spectrum (fraction of total energy per band):\n\n")
		b.WriteString("| band (×Nyquist) | signal | error |\n|---|---:|---:|\n")
		for _, band := range a.Spectrum {
			fmt.Fprintf(b, "| [%.3f, %.3f) | %.4f | %.4f |\n", band.LoFrac, band.HiFrac, band.SignalFrac, band.ErrorFrac)
		}
		b.WriteString("\n")
	}
	if len(a.Autocorr) > 0 {
		b.WriteString("Error autocorrelation (lag: r):\n\n```\n")
		for k, r := range a.Autocorr {
			if k > 8 && k%4 != 0 {
				continue // thin the tail: lags 0..8 then every 4th
			}
			fmt.Fprintf(b, "lag %2d: %+.4f\n", k, r)
		}
		b.WriteString("```\n\n")
	}
}

// fmtDB formats a decibel value, keeping +Inf (bit-exact) readable.
func fmtDB(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%.2f", v)
}

// WriteFiles writes <base>.md and <base>.json into dir (created if
// missing) and returns their paths.
func (r *Report) WriteFiles(dir, base string) (mdPath, jsonPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("qa: mkdir: %w", err)
	}
	mdPath = filepath.Join(dir, base+".md")
	jsonPath = filepath.Join(dir, base+".json")
	var md, js strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		return "", "", err
	}
	if err := r.WriteJSON(&js); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(mdPath, []byte(md.String()), 0o644); err != nil {
		return "", "", fmt.Errorf("qa: write: %w", err)
	}
	if err := os.WriteFile(jsonPath, []byte(js.String()), 0o644); err != nil {
		return "", "", fmt.Errorf("qa: write: %w", err)
	}
	return mdPath, jsonPath, nil
}

// jsonFloat marshals non-finite values as null — encoding/json rejects
// ±Inf and NaN outright, and a lossless round trip legitimately
// produces PSNR = +Inf.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// MarshalJSON renders the assessment with non-finite metrics as null.
func (a *Assessment) MarshalJSON() ([]byte, error) {
	type alias Assessment
	return json.Marshal(&struct {
		*alias
		MaxRel jsonFloat `json:"max_rel"`
		AvgRel jsonFloat `json:"avg_rel"`
		PSNR   jsonFloat `json:"psnr_db"`
	}{(*alias)(a), jsonFloat(a.MaxRel), jsonFloat(a.AvgRel), jsonFloat(a.PSNR)})
}

// MarshalJSON renders the RD point with non-finite metrics as null.
func (p RDPoint) MarshalJSON() ([]byte, error) {
	type alias RDPoint
	return json.Marshal(&struct {
		alias
		PSNR   jsonFloat `json:"psnr_db"`
		MaxRel jsonFloat `json:"max_rel"`
	}{alias(p), jsonFloat(p.PSNR), jsonFloat(p.MaxRel)})
}
