package qa

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
)

func sineField(t *testing.T, n int) *grid.Field {
	t.Helper()
	f, err := grid.New(n)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Data()
	for i := range d {
		d[i] = math.Sin(2*math.Pi*8*float64(i)/float64(n)) + 0.1*math.Sin(2*math.Pi*37*float64(i)/float64(n))
	}
	return f
}

// TestAssessBasics: a known perturbation yields the expected error
// metrics, a populated histogram, spectrum bands that sum to ~1, and
// autocorrelation starting at 1.
func TestAssessBasics(t *testing.T) {
	f := sineField(t, 1024)
	orig := f.Data()
	approx := make([]float64, len(orig))
	const eps = 1e-3
	for i, v := range orig {
		approx[i] = v
		if i%2 == 0 {
			approx[i] += eps
		}
	}
	a, err := Assess("wave", orig, approx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 1024 || a.Var != "wave" {
		t.Fatalf("identity fields: %+v", a)
	}
	if math.Abs(a.MaxAbs-eps) > 1e-12 {
		t.Fatalf("MaxAbs = %g, want %g", a.MaxAbs, eps)
	}
	if a.PSNR <= 0 || math.IsInf(a.PSNR, 0) {
		t.Fatalf("PSNR = %g", a.PSNR)
	}
	if a.ErrHist == nil {
		t.Fatal("no error histogram")
	}
	var sig, errE float64
	for _, b := range a.Spectrum {
		sig += b.SignalFrac
		errE += b.ErrorFrac
	}
	if math.Abs(sig-1) > 1e-6 {
		t.Fatalf("signal band fractions sum to %g", sig)
	}
	if math.Abs(errE-1) > 1e-6 {
		t.Fatalf("error band fractions sum to %g", errE)
	}
	if len(a.Autocorr) == 0 || math.Abs(a.Autocorr[0]-1) > 1e-9 {
		t.Fatalf("autocorr: %v", a.Autocorr)
	}
}

// TestAssessExactRoundTrip: identical inputs give zero error and
// infinite PSNR, and the assessment still marshals to valid JSON.
func TestAssessExactRoundTrip(t *testing.T) {
	f := sineField(t, 256)
	a, err := Assess("exact", f.Data(), f.Data(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxAbs != 0 || a.RMSE != 0 {
		t.Fatalf("nonzero error on identical data: %+v", a)
	}
	if !math.IsInf(a.PSNR, 1) {
		t.Fatalf("PSNR = %g, want +Inf", a.PSNR)
	}
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal with +Inf PSNR: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"psnr_db":null`)) {
		t.Fatalf("+Inf PSNR not nulled: %s", raw)
	}
}

// TestAssessRejectsMismatch: length mismatch and empty input are errors.
func TestAssessRejectsMismatch(t *testing.T) {
	if _, err := Assess("x", []float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Assess("x", nil, nil, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestRateDistortionMonotone: more divisions can't shrink PSNR much or
// grow max-abs error; compressed size grows with precision.
func TestRateDistortionMonotone(t *testing.T) {
	f := sineField(t, 4096)
	pts, err := RateDistortion(f, core.DefaultOptions(), []int{8, 64, 255})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	if !(pts[2].MaxAbs <= pts[0].MaxAbs) {
		t.Fatalf("error did not shrink with divisions: %+v", pts)
	}
	if !(pts[2].PSNR >= pts[0].PSNR) {
		t.Fatalf("PSNR did not grow with divisions: 8div=%g 255div=%g", pts[0].PSNR, pts[2].PSNR)
	}
	for _, p := range pts {
		if p.BitsPerValue <= 0 || p.EncodeSeconds < 0 || p.DecodeSeconds < 0 {
			t.Fatalf("bad point: %+v", p)
		}
	}
}

// TestReportRendering: the report writes markdown with the summary
// table, histogram, RD section, and valid JSON alongside.
func TestReportRendering(t *testing.T) {
	f := sineField(t, 1024)
	res, err := core.Compress(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess("wave", f.Data(), dec.Data(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RateDistortion(f, core.DefaultOptions(), []int{16, 128})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		Title: "test", Workload: "synthetic", Codec: "lossy",
		Created:     time.Unix(0, 0).UTC(),
		Assessments: []*Assessment{a},
		RD:          []VarRD{{Var: "wave", Points: rd}},
	}
	rep.AddNote("note %d", 1)

	var md strings.Builder
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Error assessment", "wave", "Rate-distortion", "note 1", "#"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q", want)
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}

	dir := t.TempDir()
	mdPath, jsPath, err := rep.WriteFiles(dir, "synthetic-report")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mdPath, jsPath} {
		if !strings.HasPrefix(p, dir) {
			t.Errorf("report file %s outside %s", p, dir)
		}
	}
}

// TestSpectrumFoldsEnergy: a pure low-frequency signal concentrates its
// energy in the lowest bands.
func TestSpectrumFoldsEnergy(t *testing.T) {
	n := 1 << 12
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 2 * float64(i) / float64(n))
	}
	errField := make([]float64, n) // zero error
	bands := bandEnergies(sig, errField, 8, n)
	if len(bands) != 8 {
		t.Fatalf("bands: %d", len(bands))
	}
	if bands[0].SignalFrac < 0.9 {
		t.Fatalf("low band holds %g of the energy, want >0.9", bands[0].SignalFrac)
	}
}

// TestAutocorrelationShape: white-ish alternating error decorrelates
// fast; constant error stays correlated.
func TestAutocorrelationShape(t *testing.T) {
	n := 512
	alt := make([]float64, n)
	for i := range alt {
		alt[i] = float64(1 - 2*(i%2))
	}
	r := autocorrelation(alt, 4)
	if math.Abs(r[0]-1) > 1e-9 {
		t.Fatalf("r0 = %g", r[0])
	}
	if r[1] > -0.9 {
		t.Fatalf("alternating series r1 = %g, want ~-1", r[1])
	}
	zero := make([]float64, n)
	rz := autocorrelation(zero, 4)
	for _, v := range rz[1:] {
		if v != 0 {
			t.Fatalf("zero-variance autocorr: %v", rz)
		}
	}
}
