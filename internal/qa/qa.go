// Package qa computes Z-checker-style quality assessments of a lossy
// compression: given an original array and its decoded reconstruction
// it reports the error distribution (histogram, max-abs, max-rel,
// average-rel, RMSE, PSNR), the per-band energy split of signal vs.
// error (does the loss live in the high frequencies, where the paper
// puts it?), and the lag-k autocorrelation of the error field (white
// error is benign for restart; correlated error biases the resumed
// simulation). rd.go adds rate-distortion curves across quantization
// divisions, and report.go renders everything as a self-contained
// markdown + JSON report. The package is pure computation — no
// journal, no obs — so it can run identically inside the harness, the
// CLI, and tests.
package qa

import (
	"fmt"
	"math"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/stats"
)

// Options bounds the per-assessment work. The zero value picks
// defaults sized for interactive use.
type Options struct {
	// HistBins is the number of error-histogram bins (default 32).
	HistBins int
	// AutocorrLags is the highest error-field autocorrelation lag
	// reported (default 24).
	AutocorrLags int
	// SpectrumBands is the number of octave-style frequency bands the
	// energy spectrum is folded into (default 8).
	SpectrumBands int
	// MaxSpectrumN caps how many leading samples feed the FFT
	// (default 1<<16; the transform truncates to the largest power of
	// two below the cap).
	MaxSpectrumN int
}

func (o Options) withDefaults() Options {
	if o.HistBins <= 0 {
		o.HistBins = 32
	}
	if o.AutocorrLags <= 0 {
		o.AutocorrLags = 24
	}
	if o.SpectrumBands <= 0 {
		o.SpectrumBands = 8
	}
	if o.MaxSpectrumN <= 0 {
		o.MaxSpectrumN = 1 << 16
	}
	return o
}

// Band is one frequency band of the energy spectrum: the fraction of
// total energy the original signal and the error field each carry in
// [LoFrac, HiFrac) of the Nyquist range.
type Band struct {
	LoFrac     float64 `json:"lo_frac"`
	HiFrac     float64 `json:"hi_frac"`
	SignalFrac float64 `json:"signal_frac"`
	ErrorFrac  float64 `json:"error_frac"`
}

// Assessment is the Z-checker-style quality report for one variable.
type Assessment struct {
	Var string `json:"var"`
	N   int    `json:"n"`

	// Value range of the original data.
	MinVal float64 `json:"min_val"`
	MaxVal float64 `json:"max_val"`

	// Pointwise error statistics.
	MaxAbs float64 `json:"max_abs"`
	MaxRel float64 `json:"max_rel"` // range-relative, as in the paper
	AvgRel float64 `json:"avg_rel"`
	RMSE   float64 `json:"rmse"`
	PSNR   float64 `json:"psnr_db"`

	// ErrHist is the distribution of the signed pointwise error.
	ErrHist *stats.Histogram `json:"err_hist"`
	// SpikeFraction is the share of errors in the fullest bin.
	SpikeFraction float64 `json:"spike_fraction"`

	// Spectrum is the per-band energy split (nil when the sample is
	// too short for an FFT).
	Spectrum []Band `json:"spectrum,omitempty"`

	// Autocorr[k] is the lag-k autocorrelation of the error field
	// (Autocorr[0] is 1 whenever the error has variance).
	Autocorr []float64 `json:"autocorr,omitempty"`
}

// Assess compares an original array against its lossy reconstruction.
func Assess(name string, orig, approx []float64, opts Options) (*Assessment, error) {
	if len(orig) == 0 || len(orig) != len(approx) {
		return nil, fmt.Errorf("qa: need equal non-empty arrays, got %d vs %d", len(orig), len(approx))
	}
	opts = opts.withDefaults()
	a := &Assessment{Var: name, N: len(orig)}

	a.MinVal, a.MaxVal = math.Inf(1), math.Inf(-1)
	errField := make([]float64, len(orig))
	var sq float64
	for i, v := range orig {
		if !math.IsNaN(v) {
			if v < a.MinVal {
				a.MinVal = v
			}
			if v > a.MaxVal {
				a.MaxVal = v
			}
		}
		e := approx[i] - v
		if math.IsNaN(e) && math.IsNaN(v) && math.IsNaN(approx[i]) {
			e = 0
		}
		errField[i] = e
		sq += e * e
	}
	a.RMSE = math.Sqrt(sq / float64(len(orig)))

	var err error
	if a.MaxAbs, err = stats.MaxAbsError(orig, approx); err != nil {
		return nil, err
	}
	if a.MaxRel, err = stats.MaxRelError(orig, approx); err != nil {
		return nil, err
	}
	sum, err := stats.Compare(orig, approx)
	if err != nil {
		return nil, err
	}
	a.AvgRel = sum.AvgPct / 100
	if a.PSNR, err = stats.PSNR(orig, approx); err != nil {
		return nil, err
	}

	if a.ErrHist, err = stats.NewHistogram(errField, opts.HistBins); err != nil {
		return nil, err
	}
	a.SpikeFraction = a.ErrHist.SpikeFraction()

	a.Spectrum = bandEnergies(orig, errField, opts.SpectrumBands, opts.MaxSpectrumN)
	a.Autocorr = autocorrelation(errField, opts.AutocorrLags)
	return a, nil
}

// autocorrelation returns the normalized lag-k autocorrelation of x
// for k = 0..maxLag (truncated when the series is short). A zero-
// variance series yields all zeros.
func autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if n < 2 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var denom float64
	for _, v := range x {
		d := v - mean
		denom += d * d
	}
	// Index k holds lag-k; lag 0 is included so out[0] is 1 for any
	// series with variance (and 0 for a constant one).
	out := make([]float64, maxLag+1)
	if denom == 0 || math.IsNaN(denom) {
		return out
	}
	out[0] = 1
	for k := 1; k <= maxLag; k++ {
		var num float64
		for i := 0; i+k < n; i++ {
			num += (x[i] - mean) * (x[i+k] - mean)
		}
		out[k] = num / denom
	}
	return out
}

// NamedField couples one checkpoint array with its variable name — the
// minimal unit a quality report works over, mirroring the NamedField
// each workload package exposes.
type NamedField struct {
	Name  string
	Field *grid.Field
}
