package interval

import (
	"math"
	"testing"
	"time"
)

func TestYoungKnownValue(t *testing.T) {
	// δ = 50s, M = 3600s: τ = √(2·50·3600) = 600s.
	tau, err := Young(50*time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if d := tau - 600*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("Young = %v, want 600s", tau)
	}
}

func TestDalyCloseToYoungForSmallDelta(t *testing.T) {
	// For δ ≪ M, Daly's refinement stays within a few percent of Young.
	delta, mtbf := 10*time.Second, 24*time.Hour
	y, _ := Young(delta, mtbf)
	d, err := Daly(delta, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(d) / float64(y)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("Daly/Young = %.3f for tiny δ; want ≈1", ratio)
	}
}

func TestDalyDegenerateCase(t *testing.T) {
	// δ ≥ 2M: Daly prescribes τ = M.
	tau, err := Daly(3*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tau != time.Hour {
		t.Errorf("degenerate Daly = %v, want MTBF", tau)
	}
}

func TestWasteMinimizedNearOptimum(t *testing.T) {
	delta, mtbf := 30*time.Second, 2*time.Hour
	tau, _ := Young(delta, mtbf)
	wOpt, err := WasteFraction(tau, delta, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.25, 0.5, 2, 4} {
		w, _ := WasteFraction(time.Duration(float64(tau)*f), delta, mtbf)
		if w < wOpt {
			t.Errorf("waste at %.2fτ (%.5f) below optimum (%.5f)", f, w, wOpt)
		}
	}
}

func TestExpectedRuntimeExceedsSolveTime(t *testing.T) {
	rt, err := ExpectedRuntime(10*time.Hour, 10*time.Minute, 30*time.Second, time.Minute, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 10*time.Hour {
		t.Errorf("expected runtime %v not above solve time", rt)
	}
	if rt > 20*time.Hour {
		t.Errorf("expected runtime %v implausibly large", rt)
	}
}

func TestExpectedRuntimeMonotoneInMTBF(t *testing.T) {
	ts, tau, delta, r := 10*time.Hour, 10*time.Minute, 30*time.Second, time.Minute
	rShort, _ := ExpectedRuntime(ts, tau, delta, r, time.Hour)
	rLong, _ := ExpectedRuntime(ts, tau, delta, r, 12*time.Hour)
	if rLong >= rShort {
		t.Errorf("more failures should cost more: MTBF 1h -> %v, 12h -> %v", rShort, rLong)
	}
}

func TestCompareCompressionWins(t *testing.T) {
	// The paper's scenario: compressed checkpoints cost ~19% of the raw
	// ones; at each method's own optimal interval, the compressed plan
	// must be faster end to end.
	scenarios := []Scenario{
		{Name: "lossy", CheckpointCost: 19 * time.Second, RestartCost: 25 * time.Second},
		{Name: "none", CheckpointCost: 100 * time.Second, RestartCost: 110 * time.Second},
	}
	plans, err := Compare(100*time.Hour, 2*time.Hour, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatal("wrong plan count")
	}
	lossy, none := plans[0], plans[1]
	if lossy.OptimalInterval >= none.OptimalInterval {
		t.Error("cheaper checkpoints should checkpoint more often")
	}
	if lossy.ExpectedRuntime >= none.ExpectedRuntime {
		t.Error("compressed plan not faster end to end")
	}
	if s := SpeedupPct(lossy, none); s <= 0 || s >= 100 {
		t.Errorf("speedup %.1f%% implausible", s)
	}
	if lossy.Waste >= none.Waste {
		t.Error("compressed plan should waste less")
	}
}

func TestParameterValidation(t *testing.T) {
	if _, err := Young(0, time.Hour); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := Young(time.Second, 0); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := Daly(-time.Second, time.Hour); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := WasteFraction(0, time.Second, time.Hour); err == nil {
		t.Error("zero tau accepted")
	}
	if _, err := ExpectedRuntime(time.Hour, time.Minute, time.Second, -time.Second, time.Hour); err == nil {
		t.Error("negative restart accepted")
	}
	if _, err := Compare(0, time.Hour, nil); err == nil {
		t.Error("zero solve time accepted")
	}
	if math.IsNaN(SpeedupPct(Plan{}, Plan{})) == false {
		t.Error("SpeedupPct of empty plans should be NaN")
	}
}

func TestExpectedRuntimeDivergenceGuard(t *testing.T) {
	// τ+δ vastly above MTBF overflows the exponential; the model must
	// refuse rather than return garbage.
	if _, err := ExpectedRuntime(time.Hour, 100000*time.Hour, time.Hour, 0, time.Second); err == nil {
		t.Error("diverged model accepted")
	}
}
