// Package interval implements checkpoint-interval optimization — the
// classical Young/Daly models — specialized to the question the reproduced
// paper leaves as future work (§VI: "optimizing checkpoint frequency by
// checkpointing model for lossy compression"): how much total runtime does
// lossy compression save once the checkpoint interval is re-optimized for
// the cheaper checkpoints?
//
// Given a mean time between failures M, a per-checkpoint cost δ and a
// restart cost R, Young's first-order optimum is τ = √(2δM) and Daly's
// higher-order refinement (J. T. Daly, "A higher order estimate of the
// optimum checkpoint interval for restart dumps", FGCS 2006) is
//
//	τ = √(2δM)·[1 + ⅓·√(δ/2M) + (1/9)·(δ/2M)] − δ   for δ < 2M.
//
// ExpectedRuntime evaluates Daly's complete expected-runtime model
//
//	T = M·e^{R/M}·(e^{(τ+δ)/M} − 1)·Ts/τ,
//
// so Compare can report the end-to-end speedup of compressed checkpoints
// over uncompressed ones at each method's own optimal interval — turning
// the paper's per-checkpoint 81% saving into a whole-run number.
package interval

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrParams indicates invalid model parameters.
var ErrParams = errors.New("interval: invalid parameters")

func sec(d time.Duration) float64 { return float64(d) / float64(time.Second) }
func dur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
func pos(d time.Duration, name string) error {
	if d <= 0 {
		return fmt.Errorf("%w: %s = %v", ErrParams, name, d)
	}
	return nil
}

// Young returns Young's first-order optimal checkpoint interval √(2δM).
func Young(delta, mtbf time.Duration) (time.Duration, error) {
	if err := pos(delta, "checkpoint cost"); err != nil {
		return 0, err
	}
	if err := pos(mtbf, "MTBF"); err != nil {
		return 0, err
	}
	return dur(math.Sqrt(2 * sec(delta) * sec(mtbf))), nil
}

// Daly returns Daly's higher-order optimal interval. For δ ≥ 2M the model
// degenerates and Daly prescribes τ = M.
func Daly(delta, mtbf time.Duration) (time.Duration, error) {
	if err := pos(delta, "checkpoint cost"); err != nil {
		return 0, err
	}
	if err := pos(mtbf, "MTBF"); err != nil {
		return 0, err
	}
	d, m := sec(delta), sec(mtbf)
	if d >= 2*m {
		return mtbf, nil
	}
	x := d / (2 * m)
	tau := math.Sqrt(2*d*m)*(1+math.Sqrt(x)/3+x/9) - d
	if tau <= 0 {
		tau = m
	}
	return dur(tau), nil
}

// WasteFraction returns the first-order fraction of machine time lost to
// checkpointing and failure rework at interval τ: δ/τ + τ/(2M).
func WasteFraction(tau, delta, mtbf time.Duration) (float64, error) {
	if err := pos(tau, "interval"); err != nil {
		return 0, err
	}
	if err := pos(delta, "checkpoint cost"); err != nil {
		return 0, err
	}
	if err := pos(mtbf, "MTBF"); err != nil {
		return 0, err
	}
	return sec(delta)/sec(tau) + sec(tau)/(2*sec(mtbf)), nil
}

// ExpectedRuntime evaluates Daly's complete model: the expected wall-clock
// time to finish solve-time work of length ts, checkpointing every tau at
// cost delta, restarting at cost restart, under exponential failures with
// the given MTBF.
func ExpectedRuntime(ts, tau, delta, restart, mtbf time.Duration) (time.Duration, error) {
	if err := pos(ts, "solve time"); err != nil {
		return 0, err
	}
	if err := pos(tau, "interval"); err != nil {
		return 0, err
	}
	if err := pos(delta, "checkpoint cost"); err != nil {
		return 0, err
	}
	if restart < 0 {
		return 0, fmt.Errorf("%w: restart = %v", ErrParams, restart)
	}
	if err := pos(mtbf, "MTBF"); err != nil {
		return 0, err
	}
	m := sec(mtbf)
	t := m * math.Exp(sec(restart)/m) * (math.Exp((sec(tau)+sec(delta))/m) - 1) * sec(ts) / sec(tau)
	if math.IsInf(t, 0) || math.IsNaN(t) {
		return 0, fmt.Errorf("%w: model diverged (tau+delta ≫ MTBF)", ErrParams)
	}
	return dur(t), nil
}

// Scenario describes one checkpointing configuration to optimize.
type Scenario struct {
	// Name labels the configuration in reports.
	Name string
	// CheckpointCost is δ: the full per-checkpoint cost (compression +
	// I/O) of this configuration.
	CheckpointCost time.Duration
	// RestartCost is R: reading and decoding the checkpoint.
	RestartCost time.Duration
}

// Plan is an optimized scenario.
type Plan struct {
	Scenario
	// OptimalInterval is Daly's τ for this scenario.
	OptimalInterval time.Duration
	// Waste is the first-order waste fraction at the optimum.
	Waste float64
	// ExpectedRuntime is Daly's complete-model runtime for the solve time
	// passed to Compare.
	ExpectedRuntime time.Duration
}

// Compare optimizes every scenario for the given MTBF and solve time and
// returns the plans, in input order. Use it to put the paper's compressed
// and uncompressed checkpoint costs side by side.
func Compare(solveTime, mtbf time.Duration, scenarios []Scenario) ([]Plan, error) {
	if err := pos(solveTime, "solve time"); err != nil {
		return nil, err
	}
	if err := pos(mtbf, "MTBF"); err != nil {
		return nil, err
	}
	plans := make([]Plan, 0, len(scenarios))
	for _, sc := range scenarios {
		tau, err := Daly(sc.CheckpointCost, mtbf)
		if err != nil {
			return nil, fmt.Errorf("interval: scenario %q: %w", sc.Name, err)
		}
		waste, err := WasteFraction(tau, sc.CheckpointCost, mtbf)
		if err != nil {
			return nil, err
		}
		rt, err := ExpectedRuntime(solveTime, tau, sc.CheckpointCost, sc.RestartCost, mtbf)
		if err != nil {
			return nil, fmt.Errorf("interval: scenario %q: %w", sc.Name, err)
		}
		plans = append(plans, Plan{
			Scenario:        sc,
			OptimalInterval: tau,
			Waste:           waste,
			ExpectedRuntime: rt,
		})
	}
	return plans, nil
}

// SpeedupPct returns the expected-runtime saving of plan a over plan b in
// percent (positive when a is faster).
func SpeedupPct(a, b Plan) float64 {
	if b.ExpectedRuntime <= 0 {
		return math.NaN()
	}
	return 100 * (1 - float64(a.ExpectedRuntime)/float64(b.ExpectedRuntime))
}
