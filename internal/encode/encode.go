// Package encode implements stage 3 of the lossy checkpoint compressor of
// Sasaki et al. (IPDPS 2015): replacing quantized high-frequency values
// with 1-byte indexes into the average table (paper §III-C), and assembling
// the pieces the output format needs (§III-D) — the code stream, the
// bitmap of which values were encoded, the average table, and the verbatim
// passthrough values.
//
// Encoding is lossless with respect to the quantized stream: decoding an
// EncodedBand reproduces exactly the dequantized values (table averages at
// quantized positions, original values elsewhere).
package encode

import (
	"errors"
	"fmt"

	"lossyckpt/internal/bitpack"
	"lossyckpt/internal/quant"
)

// ErrCorrupt indicates an internally inconsistent encoded band.
var ErrCorrupt = errors.New("encode: corrupt encoded band")

// EncodedBand is the encoded form of one array's pooled high-frequency
// coefficients.
type EncodedBand struct {
	// N is the total number of high-frequency values (quantized plus
	// passthrough).
	N int
	// Bitmap has N bits; bit i is set when value i is represented by a
	// code, clear when it is stored verbatim in Passthrough.
	Bitmap *bitpack.Bitmap
	// Codes holds one byte per quantized value, in value order.
	Codes []uint8
	// Averages is the representative-value table the codes index.
	Averages []float64
	// Passthrough holds the verbatim values, in value order.
	Passthrough []float64
}

// Encode assembles an EncodedBand from the raw high-frequency values and
// their quantization.
func Encode(values []float64, q *quant.Quantization) (*EncodedBand, error) {
	if len(values) != len(q.Mask) {
		return nil, fmt.Errorf("encode: %d values but mask of %d", len(values), len(q.Mask))
	}
	// The mask bookkeeping tells us the passthrough count up front; size
	// the slice once instead of letting append grow it repeatedly.
	pass, err := q.Passthrough(values, make([]float64, 0, len(values)-q.NumQuantized))
	if err != nil {
		return nil, err
	}
	return &EncodedBand{
		N:           len(values),
		Bitmap:      bitpack.FromBools(q.Mask),
		Codes:       q.Codes,
		Averages:    q.Averages,
		Passthrough: pass,
	}, nil
}

// Validate checks the band's internal consistency without decoding it.
func (e *EncodedBand) Validate() error {
	if e.Bitmap == nil {
		return fmt.Errorf("%w: nil bitmap", ErrCorrupt)
	}
	if e.Bitmap.Len() != e.N {
		return fmt.Errorf("%w: bitmap has %d bits for %d values", ErrCorrupt, e.Bitmap.Len(), e.N)
	}
	nq := e.Bitmap.Count()
	if nq != len(e.Codes) {
		return fmt.Errorf("%w: bitmap marks %d encoded values, have %d codes", ErrCorrupt, nq, len(e.Codes))
	}
	if e.N-nq != len(e.Passthrough) {
		return fmt.Errorf("%w: bitmap leaves %d passthrough values, have %d", ErrCorrupt, e.N-nq, len(e.Passthrough))
	}
	for i, c := range e.Codes {
		if int(c) >= len(e.Averages) {
			return fmt.Errorf("%w: code[%d]=%d out of range (%d averages)", ErrCorrupt, i, c, len(e.Averages))
		}
	}
	return nil
}

// Decode reconstructs the (lossy) high-frequency value stream, appending to
// dst and returning it.
func (e *EncodedBand) Decode(dst []float64) ([]float64, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if cap(dst)-len(dst) < e.N {
		grown := make([]float64, len(dst), len(dst)+e.N)
		copy(grown, dst)
		dst = grown
	}
	ci, pi := 0, 0
	for i := 0; i < e.N; i++ {
		if e.Bitmap.Get(i) {
			dst = append(dst, e.Averages[e.Codes[ci]])
			ci++
		} else {
			dst = append(dst, e.Passthrough[pi])
			pi++
		}
	}
	return dst, nil
}

// PayloadBytes returns the serialized payload size in bytes, before any
// entropy coding: bitmap + 1 byte per code + 8 bytes per average + 8 bytes
// per passthrough value. This is the quantity the paper's compression-rate
// accounting needs prior to the gzip stage.
func (e *EncodedBand) PayloadBytes() int {
	return e.Bitmap.SerializedSize() + len(e.Codes) + 8*len(e.Averages) + 8*len(e.Passthrough)
}

// RawBytes returns the size of the unencoded high-frequency values.
func (e *EncodedBand) RawBytes() int { return 8 * e.N }
