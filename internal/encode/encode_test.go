package encode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lossyckpt/internal/bitpack"
	"lossyckpt/internal/quant"
)

func spiky(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.9 {
			out[i] = rng.NormFloat64() * 0.01
		} else {
			out[i] = rng.NormFloat64() * 5
		}
	}
	return out
}

func TestEncodeDecodeMatchesDequantize(t *testing.T) {
	vals := spiky(8000, 1)
	for _, m := range []quant.Method{quant.Simple, quant.Proposed} {
		cfg := quant.Config{Method: m, Divisions: 32}
		want, q, err := quant.Apply(vals, cfg)
		if err != nil {
			t.Fatal(err)
		}
		band, err := Encode(vals, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := band.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: decoded %d values, want %d", m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("%v: value %d: got %g want %g", m, i, got[i], want[i])
			}
		}
	}
}

func TestEncodeLengthMismatch(t *testing.T) {
	vals := spiky(100, 2)
	q, _ := quant.Quantize(vals, quant.Config{Method: quant.Simple, Divisions: 4})
	if _, err := Encode(vals[:50], q); err == nil {
		t.Error("mismatched input length: expected error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	vals := spiky(500, 3)
	q, _ := quant.Quantize(vals, quant.Config{Method: quant.Proposed, Divisions: 8})
	band, err := Encode(vals, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := band.Validate(); err != nil {
		t.Fatalf("fresh band invalid: %v", err)
	}

	// Nil bitmap.
	b1 := *band
	b1.Bitmap = nil
	if b1.Validate() == nil {
		t.Error("nil bitmap accepted")
	}
	// Wrong bitmap length.
	b2 := *band
	b2.Bitmap = bitpack.New(band.N + 1)
	if b2.Validate() == nil {
		t.Error("wrong bitmap length accepted")
	}
	// Missing codes.
	b3 := *band
	if len(band.Codes) > 0 {
		b3.Codes = band.Codes[:len(band.Codes)-1]
		if b3.Validate() == nil {
			t.Error("short code stream accepted")
		}
	}
	// Out-of-range code.
	b4 := *band
	b4.Codes = append([]uint8(nil), band.Codes...)
	if len(b4.Codes) > 0 {
		b4.Codes[0] = uint8(len(band.Averages))
		if b4.Validate() == nil {
			t.Error("out-of-range code accepted")
		}
	}
	// Extra passthrough.
	b5 := *band
	b5.Passthrough = append(append([]float64(nil), band.Passthrough...), 1)
	if b5.Validate() == nil {
		t.Error("extra passthrough accepted")
	}
}

func TestPayloadSmallerThanRawForSpikyData(t *testing.T) {
	// The whole point of stages 2-3: for spiky high bands, codes (1 byte)
	// replace doubles (8 bytes), so payload << raw.
	vals := spiky(20000, 4)
	q, _ := quant.Quantize(vals, quant.Config{Method: quant.Proposed, Divisions: 128})
	band, _ := Encode(vals, q)
	if band.PayloadBytes() >= band.RawBytes() {
		t.Errorf("payload %d >= raw %d", band.PayloadBytes(), band.RawBytes())
	}
	// Simple quantization encodes everything: payload ~ N bytes + table.
	qs, _ := quant.Quantize(vals, quant.Config{Method: quant.Simple, Divisions: 128})
	bs, _ := Encode(vals, qs)
	if got, bound := bs.PayloadBytes(), len(vals)+8*128+9+64; got > bound {
		t.Errorf("simple payload %d exceeds expected bound %d", got, bound)
	}
}

func TestDecodeAppendsToDst(t *testing.T) {
	vals := spiky(100, 5)
	q, _ := quant.Quantize(vals, quant.Config{Method: quant.Simple, Divisions: 4})
	band, _ := Encode(vals, q)
	prefix := []float64{42}
	out, err := band.Decode(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 101 || out[0] != 42 {
		t.Errorf("Decode did not append: len=%d out[0]=%g", len(out), out[0])
	}
}

func TestEmptyBand(t *testing.T) {
	q, _ := quant.Quantize(nil, quant.Config{Method: quant.Simple, Divisions: 4})
	band, err := Encode(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := band.Decode(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty band decode: %v %v", out, err)
	}
}

// Property: encode/decode round trip equals quant.Apply for random data.
func TestQuickEncodeDecode(t *testing.T) {
	fn := func(seed int64, nRaw, div uint8) bool {
		n := int(nRaw)%500 + 1
		d := int(div)%quant.MaxDivisions + 1
		vals := spiky(n, seed)
		want, q, err := quant.Apply(vals, quant.Config{Method: quant.Proposed, Divisions: d})
		if err != nil {
			return false
		}
		band, err := Encode(vals, q)
		if err != nil {
			return false
		}
		got, err := band.Decode(nil)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
