package core

import (
	"math"
	"math/rand"
	"testing"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

// smooth3D builds a NICAM-like smooth 3D field.
func smooth3D(nx, ny, nz int, seed int64) *grid.Field {
	f := grid.MustNew(nx, ny, nz)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v := 1000 +
					50*math.Sin(2*math.Pi*float64(i)/float64(nx)) +
					20*math.Cos(4*math.Pi*float64(j)/float64(ny)) +
					5*float64(k) +
					0.05*rng.NormFloat64()
				f.Set(v, i, j, k)
			}
		}
	}
	return f
}

func TestRoundTripSmallError(t *testing.T) {
	f := smooth3D(128, 40, 2, 1)
	for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
		opts := DefaultOptions()
		opts.Method = method
		g, res, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !f.SameShape(g) {
			t.Fatalf("%v: shape changed", method)
		}
		s, err := stats.Compare(f.Data(), g.Data())
		if err != nil {
			t.Fatal(err)
		}
		// With n=128 the paper reports avg errors well under 1%.
		if s.AvgPct > 1 {
			t.Errorf("%v: avg relative error %.4f%% too large", method, s.AvgPct)
		}
		if res.CompressionRatePct() >= 100 {
			t.Errorf("%v: no size reduction: %.1f%%", method, res.CompressionRatePct())
		}
	}
}

func TestLossyBeatsGzipOnSmoothData(t *testing.T) {
	// The paper's Fig. 6: gzip ≈ 87%, lossy ≈ 12-17%.
	f := smooth3D(256, 41, 2, 2)
	gz, err := CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lossy.CompressionRatePct() >= gz.CompressionRatePct() {
		t.Errorf("lossy cr %.1f%% not below gzip cr %.1f%%",
			lossy.CompressionRatePct(), gz.CompressionRatePct())
	}
	if lossy.CompressionRatePct() > 50 {
		t.Errorf("lossy cr %.1f%% unexpectedly poor on smooth data", lossy.CompressionRatePct())
	}
}

func TestGzipOnlyRoundTripExact(t *testing.T) {
	f := smooth3D(32, 16, 2, 3)
	res, err := CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressGzipOnly(res.Data, 32, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Error("gzip-only round trip is not bit-exact")
	}
	if _, err := DecompressGzipOnly(res.Data, 32, 16, 3); err == nil {
		t.Error("wrong shape accepted")
	}
}

func TestDecompressMatchesParams(t *testing.T) {
	// Parameters travel inside the stream; Decompress needs no options.
	f := smooth3D(64, 10, 2, 4)
	for _, scheme := range []wavelet.Scheme{wavelet.Haar, wavelet.CDF53} {
		for _, levels := range []int{1, 2} {
			opts := DefaultOptions()
			opts.Scheme = scheme
			opts.Levels = levels
			opts.Divisions = 64
			g, _, err := RoundTrip(f, opts)
			if err != nil {
				t.Fatalf("%v L%d: %v", scheme, levels, err)
			}
			s, _ := stats.Compare(f.Data(), g.Data())
			if s.AvgPct > 2 {
				t.Errorf("%v L%d: avg error %.4f%%", scheme, levels, s.AvgPct)
			}
		}
	}
}

func TestCompressDoesNotModifyInput(t *testing.T) {
	f := smooth3D(32, 8, 2, 5)
	orig := f.Clone()
	if _, err := Compress(f, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(orig) {
		t.Error("Compress modified its input")
	}
}

func TestTimingsAccounted(t *testing.T) {
	f := smooth3D(128, 41, 2, 6)
	opts := DefaultOptions()
	opts.GzipMode = gzipio.TempFile
	opts.TmpDir = t.TempDir()
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.Total <= 0 {
		t.Error("zero total time")
	}
	if tm.TempWrite <= 0 {
		t.Error("temp-file mode reported no temp-write time")
	}
	sum := tm.Wavelet + tm.Quantize + tm.Encode + tm.Format + tm.TempWrite + tm.Gzip
	if sum > tm.Total {
		t.Errorf("phase sum %v exceeds total %v", sum, tm.Total)
	}
	if tm.Other() < 0 {
		t.Error("negative Other()")
	}
}

func TestOptionValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 7)
	bad := []Options{
		{}, // zero value: levels 0
		func() Options { o := DefaultOptions(); o.Divisions = 0; return o }(),
		func() Options { o := DefaultOptions(); o.Divisions = 300; return o }(),
		func() Options { o := DefaultOptions(); o.Levels = 99; return o }(),
		func() Options { o := DefaultOptions(); o.SpikeDivisions = -1; return o }(),
	}
	for i, o := range bad {
		if _, err := Compress(f, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip of garbage container.
	gz, _ := gzipio.Compress([]byte("still junk"), gzipio.Default, gzipio.InMemory, "")
	if _, err := Decompress(gz.Compressed); err == nil {
		t.Error("gzip-wrapped garbage accepted")
	}
}

func TestDecompressRejectsTamperedStream(t *testing.T) {
	f := smooth3D(32, 8, 2, 8)
	res, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the gzip payload: either gzip's CRC or the
	// container CRC must catch it.
	mut := append([]byte(nil), res.Data...)
	mut[len(mut)/2] ^= 0x01
	if _, err := Decompress(mut); err == nil {
		t.Error("tampered stream accepted")
	}
}

func TestProposedPassthroughPreservesOutliers(t *testing.T) {
	// Inject a sharp outlier; under the proposed method it should survive
	// compression almost exactly (it passes through the quantizer), while
	// simple quantization smears it.
	f := smooth3D(64, 16, 2, 9)
	f.Set(1e6, 32, 8, 0)

	check := func(method quant.Method) float64 {
		opts := DefaultOptions()
		opts.Method = method
		opts.Divisions = 16
		g, _, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(g.At(32, 8, 0) - 1e6)
	}
	errProposed := check(quant.Proposed)
	errSimple := check(quant.Simple)
	if errProposed >= errSimple {
		t.Errorf("outlier error: proposed %g not below simple %g", errProposed, errSimple)
	}
}

func TestHighCountsReported(t *testing.T) {
	f := smooth3D(64, 16, 2, 10)
	res, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumHigh <= 0 || res.NumQuantized <= 0 || res.NumQuantized > res.NumHigh {
		t.Errorf("counts: quantized %d of %d high values", res.NumQuantized, res.NumHigh)
	}
	if res.SpikePartitions <= 0 {
		t.Error("proposed method reported no spike partitions")
	}
	simple := DefaultOptions()
	simple.Method = quant.Simple
	res2, _ := Compress(f, simple)
	if res2.NumQuantized != res2.NumHigh {
		t.Errorf("simple method quantized %d of %d", res2.NumQuantized, res2.NumHigh)
	}
}

func TestErrorShrinksWithDivisions(t *testing.T) {
	// Fig. 8's trend: larger n, smaller error.
	f := smooth3D(128, 41, 2, 11)
	avg := func(n int) float64 {
		opts := DefaultOptions()
		opts.Divisions = n
		g, _, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		return s.AvgPct
	}
	e1, e128 := avg(1), avg(128)
	if e128 > e1 {
		t.Errorf("error grew with divisions: n=1 %.5f%%, n=128 %.5f%%", e1, e128)
	}
}

func Test1DAnd2DArrays(t *testing.T) {
	// The compressor must handle 1D and 2D checkpoint arrays too.
	f1 := grid.MustNew(4096)
	for i := range f1.Data() {
		f1.Data()[i] = math.Sin(float64(i) / 100)
	}
	f2 := grid.MustNew(128, 128)
	for i := range f2.Data() {
		f2.Data()[i] = math.Cos(float64(i) / 777)
	}
	for _, f := range []*grid.Field{f1, f2} {
		g, res, err := RoundTrip(f, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		if s.AvgPct > 1 {
			t.Errorf("%dD: avg error %.4f%%", f.Dims(), s.AvgPct)
		}
		if res.CompressionRatePct() >= 100 {
			t.Errorf("%dD: cr %.1f%%", f.Dims(), res.CompressionRatePct())
		}
	}
}
