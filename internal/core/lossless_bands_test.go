package core

import (
	"math"
	"testing"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/synth"
	"lossyckpt/internal/wavelet"
)

// TestLosslessBands: with every coefficient passing through, the round
// trip is exact up to wavelet arithmetic rounding (a few ulps) and the
// Result reports zero quantization error.
func TestLosslessBands(t *testing.T) {
	for _, scheme := range []wavelet.Scheme{wavelet.Haar, wavelet.CDF53} {
		for _, levels := range []int{1, 2} {
			f, err := synth.Generate(synth.Turbulent, 7, 16, 12, 6)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Scheme = scheme
			opts.Levels = levels
			opts.LosslessBands = true
			g, res, err := RoundTrip(f, opts)
			if err != nil {
				t.Fatalf("%v/L%d: %v", scheme, levels, err)
			}
			if res.NumQuantized != 0 {
				t.Errorf("%v/L%d: %d values quantized, want 0", scheme, levels, res.NumQuantized)
			}
			if res.MaxCoeffError != 0 {
				t.Errorf("%v/L%d: MaxCoeffError %g, want 0", scheme, levels, res.MaxCoeffError)
			}
			// Rounding tolerance: a few ulps of the data magnitude.
			maxMag := 0.0
			for _, v := range f.Data() {
				if a := math.Abs(v); a > maxMag {
					maxMag = a
				}
			}
			tol := 64 * 2.220446049250313e-16 * maxMag * float64(levels*3)
			for i, v := range f.Data() {
				if d := math.Abs(v - g.Data()[i]); d > tol {
					t.Fatalf("%v/L%d: elem %d differs by %g (> %g)", scheme, levels, i, d, tol)
				}
			}
		}
	}
}

// TestLosslessBandsHaarBitExact: the Haar kernel on power-of-two extents
// with dyadic data is exact in float arithmetic, so the lossless-bands
// round trip must be bit-identical there.
func TestLosslessBandsHaarBitExact(t *testing.T) {
	f := grid.MustNew(8, 8)
	for i := range f.Data() {
		f.Data()[i] = float64(i%17) * 0.25 // dyadic: (a±b)/2 stays exact
	}
	opts := DefaultOptions()
	opts.LosslessBands = true
	g, _, err := RoundTrip(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Data() {
		if g.Data()[i] != v {
			t.Fatalf("elem %d: %g != %g", i, g.Data()[i], v)
		}
	}
}

// TestMaxCoeffError: the reported coefficient error must equal the max
// quantization error recomputed from a decode of the stream's own tables,
// and must respect ErrorBound when one is set and reachable.
func TestMaxCoeffError(t *testing.T) {
	f, err := synth.Generate(synth.Smooth, 3, 16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	_, res, err := RoundTrip(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQuantized > 0 && res.MaxCoeffError <= 0 {
		t.Errorf("quantized %d values but MaxCoeffError = %g", res.NumQuantized, res.MaxCoeffError)
	}

	opts.ErrorBound = res.MaxCoeffError / 2
	if opts.ErrorBound > 0 {
		_, res2, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.BoundUnreachable && res2.MaxCoeffError > opts.ErrorBound {
			t.Errorf("MaxCoeffError %g exceeds reachable bound %g", res2.MaxCoeffError, opts.ErrorBound)
		}
	}
}

// TestChunkedMaxCoeffError: the chunked aggregate folds the max across
// slabs and LosslessBands keeps it at zero.
func TestChunkedMaxCoeffError(t *testing.T) {
	f, err := synth.Generate(synth.Turbulent, 11, 16, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	res, err := CompressChunked(f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoeffError <= 0 {
		t.Errorf("chunked MaxCoeffError = %g, want > 0 for lossy settings", res.MaxCoeffError)
	}
	opts.LosslessBands = true
	res, err = CompressChunked(f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoeffError != 0 {
		t.Errorf("lossless-bands chunked MaxCoeffError = %g, want 0", res.MaxCoeffError)
	}
	// Keep quant imported for the division-cap reference below.
	if quant.MaxDivisions != 255 {
		t.Fatalf("MaxDivisions changed; revisit guard assumptions")
	}
}
