package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"lossyckpt/internal/grid"
)

// deltaTestField builds a smooth 3-D field the lossy pipeline likes.
func deltaTestField(t *testing.T, nz, ny, nx int) *grid.Field {
	t.Helper()
	f, err := grid.New(nz, ny, nx)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Data()
	for i := range d {
		d[i] = math.Sin(float64(i)/97.0) + 0.25*math.Cos(float64(i)/13.0)
	}
	return f
}

// TestCompressChunkedDeltaByteIdentical: the delta stream must be
// byte-identical to CompressChunkedParallel — cold cache, warm cache
// with clean data, and warm cache with a partial mutation.
func TestCompressChunkedDeltaByteIdentical(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	const extent = 4
	f := deltaTestField(t, 16, 12, 10)

	want, err := CompressChunkedParallel(f, opts, extent)
	if err != nil {
		t.Fatal(err)
	}

	var cache SlabCache
	cold, err := CompressChunkedDelta(f, opts, extent, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Data, want.Data) {
		t.Fatal("cold delta stream differs from CompressChunkedParallel")
	}
	if cold.SlabsReused != 0 {
		t.Fatalf("cold cache reused %d slabs", cold.SlabsReused)
	}

	// Clean re-checkpoint: everything reuses, stream still identical.
	warm, err := CompressChunkedDelta(f, opts, extent, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.Data, want.Data) {
		t.Fatal("warm delta stream differs")
	}
	if warm.SlabsReused != warm.Chunks {
		t.Fatalf("clean data reused %d of %d slabs", warm.SlabsReused, warm.Chunks)
	}
	if warm.Timings.Wavelet != 0 || warm.Timings.Gzip != 0 {
		t.Fatalf("fully reused checkpoint reports pipeline CPU: %+v", warm.Timings)
	}
	if warm.MaxCoeffError != want.MaxCoeffError {
		t.Fatalf("reused MaxCoeffError %v, want %v", warm.MaxCoeffError, want.MaxCoeffError)
	}

	// Mutate one slab (planes 4..7 = chunk 1): exactly one slab
	// recompresses, and the stream matches a from-scratch compression of
	// the mutated field.
	planeElems := f.Len() / 16
	for i := 4 * planeElems; i < 5*planeElems; i++ {
		f.Data()[i] += 0.5
	}
	mutWant, err := CompressChunkedParallel(f, opts, extent)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := CompressChunkedDelta(f, opts, extent, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mut.Data, mutWant.Data) {
		t.Fatal("mutated delta stream differs from from-scratch compression")
	}
	if mut.SlabsReused != mut.Chunks-1 {
		t.Fatalf("one dirty slab but reused %d of %d", mut.SlabsReused, mut.Chunks)
	}

	// The stream stays decodable and restores the mutated field.
	got, err := DecompressChunkedParallel(mut.Data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(f) {
		t.Fatal("decoded shape mismatch")
	}
}

// TestSlabCacheInvalidation: changed geometry or options must discard
// the cache rather than serve stale frames.
func TestSlabCacheInvalidation(t *testing.T) {
	opts := DefaultOptions()
	f := deltaTestField(t, 8, 6, 6)
	var cache SlabCache
	if _, err := CompressChunkedDelta(f, opts, 4, &cache); err != nil {
		t.Fatal(err)
	}

	// Different divisions: nothing may be reused.
	opts2 := opts
	opts2.Divisions = 64
	res, err := CompressChunkedDelta(f, opts2, 4, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlabsReused != 0 {
		t.Fatalf("options change reused %d slabs", res.SlabsReused)
	}
	want, err := CompressChunkedParallel(f, opts2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, want.Data) {
		t.Fatal("stream after options change differs")
	}

	// Different extent: ditto.
	res2, err := CompressChunkedDelta(f, opts2, 2, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SlabsReused != 0 {
		t.Fatalf("extent change reused %d slabs", res2.SlabsReused)
	}

	// Reset forces recompression even with identical inputs.
	cache.Reset()
	res3, err := CompressChunkedDelta(f, opts2, 2, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if res3.SlabsReused != 0 {
		t.Fatalf("reset cache reused %d slabs", res3.SlabsReused)
	}

	// Worker count is normalized out of the cache key: a different pool
	// size still reuses (output is worker-independent by contract).
	opts3 := opts2
	opts3.Workers = 3
	res4, err := CompressChunkedDelta(f, opts3, 2, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if res4.SlabsReused != res4.Chunks {
		t.Fatalf("worker-count change broke reuse: %d of %d", res4.SlabsReused, res4.Chunks)
	}
}

// TestCompressChunkedDeltaNilCache falls back to the parallel engine.
func TestCompressChunkedDeltaNilCache(t *testing.T) {
	opts := DefaultOptions()
	f := deltaTestField(t, 8, 6, 6)
	res, err := CompressChunkedDelta(f, opts, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CompressChunkedParallel(f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, want.Data) {
		t.Fatal("nil-cache delta differs from parallel engine")
	}
	if res.Timings.Total <= 0 {
		t.Fatalf("timings not recorded: %v", time.Duration(res.Timings.Total))
	}
}
