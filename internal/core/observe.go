package core

import (
	"time"

	"lossyckpt/internal/obs"
)

// observe.go folds the pipeline's Timings accounting into the obs layer.
// Per-stage CPU is recorded by every Compress call — including the
// chunk-internal calls a chunked-parallel compression fans out — so the
// stage counters aggregate per-worker CPU correctly (each worker's adds
// are atomic). Operation-level series (counts, bytes, wall clock) are
// recorded only by the top-level call, suppressed on chunk-internal ones
// via Options.chunkInternal, so one chunked compression counts once.

// Metric names recorded by this package. Stage-seconds carry a
// stage=<wavelet|quantize|encode|format|temp_write|gzip|other> label;
// operation counters carry kind=<single|chunked|gzip_only>.
const (
	MetricStageSeconds     = "lossyckpt_compress_stage_seconds_total"
	MetricCompressOps      = "lossyckpt_compress_operations_total"
	MetricCompressRawBytes = "lossyckpt_compress_raw_bytes_total"
	MetricCompressOutBytes = "lossyckpt_compress_compressed_bytes_total"
	MetricCompressWall     = "lossyckpt_compress_wall_seconds"
	MetricCompressCPU      = "lossyckpt_compress_cpu_seconds_total"
	MetricCompressChunks   = "lossyckpt_compress_chunks_total"
	MetricDecompressOps    = "lossyckpt_decompress_operations_total"
	MetricDecompressWall   = "lossyckpt_decompress_wall_seconds"
	MetricDecompressBytes  = "lossyckpt_decompress_raw_bytes_total"
	// Streaming-pipeline series (CompressChunkedTo): time the ordered
	// writer spends stalled waiting for the next in-order chunk, time
	// spent writing to the destination, and a gauge of compressed chunks
	// in flight between the workers and the writer.
	MetricStreamStallSeconds = "lossyckpt_stream_stall_seconds_total"
	MetricStreamWriteSeconds = "lossyckpt_stream_write_seconds_total"
	MetricStreamInflight     = "lossyckpt_stream_inflight_chunks"
)

// observer resolves the effective observer for this options value: the
// explicit one, else the process default (usually nil — a no-op).
func (o Options) observer() *obs.Registry {
	if o.Observer != nil {
		return o.Observer
	}
	return obs.Default()
}

// recordStageSeconds folds one Timings breakdown into the per-stage CPU
// counters, including the unattributed "other" remainder.
func recordStageSeconds(r *obs.Registry, t Timings) {
	if r == nil {
		return
	}
	add := func(stage string, d time.Duration) {
		if d > 0 {
			r.Counter(MetricStageSeconds, "stage", stage).Add(d.Seconds())
		}
	}
	add("wavelet", t.Wavelet)
	add("quantize", t.Quantize)
	add("encode", t.Encode)
	add("format", t.Format)
	add("temp_write", t.TempWrite)
	add("gzip", t.Gzip)
	add("other", t.Other())
}

// recordCompressOp records one completed top-level compression.
func recordCompressOp(r *obs.Registry, kind string, rawBytes, outBytes int, t Timings) {
	if r == nil {
		return
	}
	r.Counter(MetricCompressOps, "kind", kind).Inc()
	r.Counter(MetricCompressRawBytes).Add(float64(rawBytes))
	r.Counter(MetricCompressOutBytes).Add(float64(outBytes))
	r.Histogram(MetricCompressWall, obs.DurationBuckets).ObserveDuration(t.Total)
	r.Counter(MetricCompressCPU).Add(t.CPUTotal.Seconds())
}

// recordDecompressOp records one completed top-level decompression.
// rawBytes is the reconstructed (uncompressed) size.
func recordDecompressOp(r *obs.Registry, kind string, rawBytes int, wall time.Duration) {
	if r == nil {
		return
	}
	r.Counter(MetricDecompressOps, "kind", kind).Inc()
	r.Counter(MetricDecompressBytes).Add(float64(rawBytes))
	r.Histogram(MetricDecompressWall, obs.DurationBuckets).ObserveDuration(wall)
}
