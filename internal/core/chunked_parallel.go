package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
)

// This file is the intra-checkpoint parallel engine. The paper observes
// that compression must be "not only fast but also scalable to checkpoint
// size" (§II-A) and that per-array compression parallelizes trivially
// (§IV-D); chunked compression extends that inside one array. Slabs are
// independent, so a bounded worker pool compresses them concurrently and
// the framer reassembles the per-chunk streams in chunk order — the output
// is byte-identical to the serial CompressChunked stream for every worker
// count.
//
// Memory bound: each worker holds one slab's scratch (working copy,
// gathered bands — all pool-recycled) plus its compressed output, so peak
// additional memory is O(workers × slab) instead of O(array).

// CompressChunkedParallel is CompressChunked with the slabs fanned out
// over a bounded worker pool. opts.Workers sets the pool size (0 =
// GOMAXPROCS, 1 = serial). The framed stream is byte-identical to
// CompressChunked's for the same field, options and chunk extent.
func CompressChunkedParallel(f *grid.Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if chunkExtent < 1 {
		return nil, fmt.Errorf("%w: chunk extent %d", ErrOptions, chunkExtent)
	}
	shape := f.Shape()
	nChunks := (shape[0] + chunkExtent - 1) / chunkExtent
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	if workers == 1 {
		return CompressChunked(f, opts, chunkExtent)
	}
	wall := time.Now()
	planeElems := f.Len() / shape[0]

	// Chunk-level parallelism already saturates the pool; per-chunk
	// pipelines run serially so the cores aren't oversubscribed.
	// chunkInternal keeps the workers' Compress calls from recording
	// operation-level metrics — their atomic stage-seconds adds are the
	// per-worker CPU aggregation; the whole compression records once below.
	chunkOpts := opts
	chunkOpts.Workers = 1
	chunkOpts.chunkInternal = true

	results := make([]*Result, nChunks)
	errs := make([]error, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				start := c * chunkExtent
				ext := chunkExtent
				if rem := shape[0] - start; rem < ext {
					ext = rem
				}
				slab, err := slabAt(f, shape, planeElems, start, ext)
				if err != nil {
					errs[c] = err
					continue
				}
				cres, err := Compress(slab, chunkOpts)
				if err != nil {
					errs[c] = fmt.Errorf("core: chunk at plane %d: %w", start, err)
					continue
				}
				results[c] = cres
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic reassembly: frames are emitted in chunk order, and the
	// aggregate timings fold in chunk order too, so the result does not
	// depend on pool scheduling.
	res := &ChunkedResult{RawBytes: f.Bytes(), Workers: workers}
	total := len(chunkedHeader(shape, nChunks))
	for _, cres := range results {
		total += 12 + len(cres.Data)
	}
	out := make([]byte, 0, total)
	out = append(out, chunkedHeader(shape, nChunks)...)
	for c, cres := range results {
		var frame [12]byte
		ext := chunkExtent
		if rem := shape[0] - c*chunkExtent; rem < ext {
			ext = rem
		}
		binary.LittleEndian.PutUint32(frame[0:], uint32(ext))
		binary.LittleEndian.PutUint64(frame[4:], uint64(len(cres.Data)))
		out = append(out, frame[:]...)
		out = append(out, cres.Data...)
		res.addChunk(cres)
	}
	res.Data = out
	res.StreamBytes = len(out)
	res.Timings.Total = time.Since(wall)
	recordChunkedCompress(opts, res)
	return res, nil
}

// DecompressChunkedParallel reconstructs the field from a chunked stream,
// decoding chunk payloads on a bounded worker pool (workers 0 =
// GOMAXPROCS, 1 = serial). Chunks scatter into disjoint plane ranges of
// the output field, so the reconstruction is identical to
// DecompressChunked for every worker count.
func DecompressChunkedParallel(data []byte, workers int) (*grid.Field, error) {
	start := time.Now()
	shape, frames, err := parseChunked(data)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	if workers == 1 {
		return DecompressChunked(data)
	}
	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	planeElems := f.Len() / shape[0]
	errs := make([]error, len(frames))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(frames) {
					return
				}
				// Chunk-level parallelism already uses the pool; the
				// per-chunk wavelet inverse stays serial.
				errs[c] = decodeChunkInto(f, shape, planeElems, c, frames[c], 1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	recordDecompressOp(obs.Default(), "chunked", f.Bytes(), time.Since(start))
	return f, nil
}

// DecompressAnyParallel decodes either a plain Compress stream or a
// chunked stream with bounded parallelism: chunked streams decode chunks
// on the worker pool, plain streams bound the wavelet inverse instead.
func DecompressAnyParallel(data []byte, workers int) (*grid.Field, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == chunkedMagic {
		return DecompressChunkedParallel(data, workers)
	}
	start := time.Now()
	f, err := decompressWorkers(data, workers)
	if err == nil {
		recordDecompressOp(obs.Default(), "single", f.Bytes(), time.Since(start))
	}
	return f, err
}
