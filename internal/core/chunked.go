package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lossyckpt/internal/grid"
)

// The paper stresses that compression must be "not only fast but also
// scalable to checkpoint size" (§II-A) and that its O(n) pipeline keeps
// its advantage "with larger checkpoint sizes" (§IV-D). Chunked
// compression operationalizes that: the array is split along axis 0 into
// slabs, each slab runs through the full pipeline independently, and the
// output frames the per-chunk streams. Peak additional memory is one slab
// instead of one array, and chunks decompress independently.
//
// Chunked layout (little-endian):
//
//	uint32 magic "LKCC"
//	uint16 version
//	uint16 ndims, int64 extents…   (full array shape)
//	uint32 chunk count
//	per chunk: uint32 slab extent, uint64 payload length, payload
//
// Each payload is a complete Compress stream (self-describing, CRC'd).

// ErrChunked indicates malformed chunked-stream data.
var ErrChunked = errors.New("core: malformed chunked stream")

const (
	chunkedMagic   = 0x43434B4C // "LKCC"
	chunkedVersion = 1
)

// ChunkedResult aggregates a chunked compression.
type ChunkedResult struct {
	// Data is the framed multi-chunk stream.
	Data []byte
	// Chunks is the number of slabs.
	Chunks int
	// RawBytes and CompressedBytes sum over chunks (CompressedBytes
	// excludes the small framing overhead; len(Data) includes it).
	RawBytes        int
	CompressedBytes int
	// Timings sums the per-chunk phase breakdowns.
	Timings Timings
}

// CompressionRatePct returns cr (Eq. 5) in percent, framing included.
func (r *ChunkedResult) CompressionRatePct() float64 {
	return 100 * float64(len(r.Data)) / float64(r.RawBytes)
}

// CompressChunked splits the field into slabs of chunkExtent planes along
// axis 0 and compresses each independently with the same options. The
// trailing slab may be smaller; every slab must satisfy the wavelet level
// constraint, so chunkExtent must be ≥ 2^levels.
func CompressChunked(f *grid.Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if chunkExtent < 1 {
		return nil, fmt.Errorf("%w: chunk extent %d", ErrOptions, chunkExtent)
	}
	shape := f.Shape()
	planeElems := f.Len() / shape[0]

	res := &ChunkedResult{RawBytes: f.Bytes()}
	var out []byte
	hdr := make([]byte, 0, 64)
	hdr = append32(hdr, chunkedMagic)
	hdr = append16(hdr, chunkedVersion)
	hdr = append16(hdr, uint16(len(shape)))
	for _, e := range shape {
		hdr = append64(hdr, uint64(e))
	}
	nChunks := (shape[0] + chunkExtent - 1) / chunkExtent
	hdr = append32(hdr, uint32(nChunks))
	out = append(out, hdr...)

	for start := 0; start < shape[0]; start += chunkExtent {
		ext := chunkExtent
		if rem := shape[0] - start; rem < ext {
			ext = rem
		}
		slabShape := append([]int{ext}, shape[1:]...)
		slab, err := grid.FromSlice(f.Data()[start*planeElems:(start+ext)*planeElems], slabShape...)
		if err != nil {
			return nil, err
		}
		cres, err := Compress(slab, opts)
		if err != nil {
			return nil, fmt.Errorf("core: chunk at plane %d: %w", start, err)
		}
		var frame [12]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(ext))
		binary.LittleEndian.PutUint64(frame[4:], uint64(len(cres.Data)))
		out = append(out, frame[:]...)
		out = append(out, cres.Data...)

		res.Chunks++
		res.CompressedBytes += cres.CompressedBytes
		res.Timings.Wavelet += cres.Timings.Wavelet
		res.Timings.Quantize += cres.Timings.Quantize
		res.Timings.Encode += cres.Timings.Encode
		res.Timings.Format += cres.Timings.Format
		res.Timings.TempWrite += cres.Timings.TempWrite
		res.Timings.Gzip += cres.Timings.Gzip
		res.Timings.Total += cres.Timings.Total
	}
	res.Data = out
	return res, nil
}

// DecompressChunked reconstructs the field from a CompressChunked stream.
func DecompressChunked(data []byte) (*grid.Field, error) {
	pos := 0
	need := func(n int) ([]byte, error) {
		if pos+n > len(data) {
			return nil, fmt.Errorf("%w: truncated at byte %d", ErrChunked, pos)
		}
		b := data[pos : pos+n]
		pos += n
		return b, nil
	}
	b, err := need(4)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(b) != chunkedMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrChunked)
	}
	if b, err = need(2); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(b); v != chunkedVersion {
		return nil, fmt.Errorf("%w: version %d", ErrChunked, v)
	}
	if b, err = need(2); err != nil {
		return nil, err
	}
	nd := int(binary.LittleEndian.Uint16(b))
	if nd == 0 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: ndims %d", ErrChunked, nd)
	}
	shape := make([]int, nd)
	for d := range shape {
		if b, err = need(8); err != nil {
			return nil, err
		}
		e := binary.LittleEndian.Uint64(b)
		if e == 0 || e > 1<<31 {
			return nil, fmt.Errorf("%w: extent %d", ErrChunked, e)
		}
		shape[d] = int(e)
	}
	if b, err = need(4); err != nil {
		return nil, err
	}
	nChunks := int(binary.LittleEndian.Uint32(b))
	if nChunks < 1 || nChunks > shape[0] {
		return nil, fmt.Errorf("%w: chunk count %d for extent %d", ErrChunked, nChunks, shape[0])
	}

	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	planeElems := f.Len() / shape[0]
	plane := 0
	for c := 0; c < nChunks; c++ {
		if b, err = need(4); err != nil {
			return nil, err
		}
		ext := int(binary.LittleEndian.Uint32(b))
		if b, err = need(8); err != nil {
			return nil, err
		}
		plen := binary.LittleEndian.Uint64(b)
		if plen > uint64(len(data)-pos) {
			return nil, fmt.Errorf("%w: chunk %d payload %d bytes", ErrChunked, c, plen)
		}
		payload, err := need(int(plen))
		if err != nil {
			return nil, err
		}
		slab, err := Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", c, err)
		}
		if slab.Dims() != nd || slab.Extent(0) != ext || plane+ext > shape[0] {
			return nil, fmt.Errorf("%w: chunk %d shape %v at plane %d", ErrChunked, c, slab.Shape(), plane)
		}
		for d := 1; d < nd; d++ {
			if slab.Extent(d) != shape[d] {
				return nil, fmt.Errorf("%w: chunk %d shape %v", ErrChunked, c, slab.Shape())
			}
		}
		copy(f.Data()[plane*planeElems:], slab.Data())
		plane += ext
	}
	if plane != shape[0] {
		return nil, fmt.Errorf("%w: chunks cover %d of %d planes", ErrChunked, plane, shape[0])
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrChunked, len(data)-pos)
	}
	return f, nil
}

// DecompressAny decodes either a plain Compress stream or a chunked
// CompressChunked stream, sniffing the leading magic bytes.
func DecompressAny(data []byte) (*grid.Field, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == chunkedMagic {
		return DecompressChunked(data)
	}
	return Decompress(data)
}

func append16(b []byte, v uint16) []byte {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	return append(b, t[:]...)
}

func append32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func append64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}
