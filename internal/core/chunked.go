package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lossyckpt/internal/entropy"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
)

// recordChunkedCompress records the operation-level series for one
// completed chunked compression (serial or parallel). The per-chunk stage
// seconds were already folded in by the chunk-internal Compress calls.
func recordChunkedCompress(opts Options, res *ChunkedResult) {
	o := opts.observer()
	if o == nil {
		return
	}
	recordCompressOp(o, "chunked", res.RawBytes, res.StreamBytes, res.Timings)
	o.Counter(MetricCompressChunks).Add(float64(res.Chunks))
	entropy.RecordSelection(o, opts.entropyParams().Label(), opts.VarName)
}

// The paper stresses that compression must be "not only fast but also
// scalable to checkpoint size" (§II-A) and that its O(n) pipeline keeps
// its advantage "with larger checkpoint sizes" (§IV-D). Chunked
// compression operationalizes that: the array is split along axis 0 into
// slabs, each slab runs through the full pipeline independently, and the
// output frames the per-chunk streams. Peak additional memory is one slab
// instead of one array, and chunks decompress independently.
//
// Chunked layout (little-endian):
//
//	uint32 magic "LKCC"
//	uint16 version
//	uint16 ndims, int64 extents…   (full array shape)
//	uint32 chunk count
//	per chunk: uint32 slab extent, uint64 payload length, payload
//
// Each payload is a complete Compress stream (self-describing, CRC'd).

// ErrChunked indicates malformed chunked-stream data.
var ErrChunked = errors.New("core: malformed chunked stream")

const (
	chunkedMagic   = 0x43434B4C // "LKCC"
	chunkedVersion = 1
)

// ChunkedResult aggregates a chunked compression.
type ChunkedResult struct {
	// Data is the framed multi-chunk stream. CompressChunkedTo streams the
	// frames to its writer instead of buffering them, so Data is nil there;
	// StreamBytes carries the size either way.
	Data []byte
	// StreamBytes is the total framed stream length, header and per-chunk
	// frames included — len(Data) for the buffered paths, the byte count
	// written to w for CompressChunkedTo.
	StreamBytes int
	// Chunks is the number of slabs.
	Chunks int
	// RawBytes and CompressedBytes sum over chunks (CompressedBytes
	// excludes the small framing overhead; StreamBytes includes it).
	RawBytes        int
	CompressedBytes int
	// Timings aggregates the per-chunk phase breakdowns. The named phases
	// and CPUTotal sum over chunks; Total is the wall-clock duration of
	// the whole chunked compression. Under CompressChunkedParallel the
	// summed CPUTotal exceeds the wall-clock Total — their ratio is the
	// achieved parallel speedup. (Before the parallel engine existed,
	// Total was the per-chunk sum; that quantity is now CPUTotal.)
	Timings Timings
	// Workers is the worker-pool size the compression actually used
	// (1 for the serial CompressChunked path).
	Workers int
	// MaxCoeffError is the largest per-chunk Result.MaxCoeffError — the
	// worst quantization error across every slab, usable the same way as
	// the single-array field.
	MaxCoeffError float64
	// PerChunk holds each chunk's own phase breakdown in chunk order —
	// the per-chunk waterfall the flight-recorder journal attaches to
	// checkpoint wide events. Identical across the serial, parallel and
	// streaming paths (chunks are folded in deterministic order).
	PerChunk []Timings
	// SlabsReused counts slabs whose compressed frame came from a
	// SlabCache instead of the pipeline (CompressChunkedDelta only; zero
	// elsewhere). Reused slabs contribute bytes and quality stats to the
	// aggregate but no phase CPU.
	SlabsReused int
}

// CompressionRatePct returns cr (Eq. 5) in percent, framing included.
func (r *ChunkedResult) CompressionRatePct() float64 {
	return 100 * float64(r.StreamBytes) / float64(r.RawBytes)
}

// chunkedHeader frames the stream prefix shared by the serial and parallel
// compressors.
func chunkedHeader(shape []int, nChunks int) []byte {
	hdr := make([]byte, 0, 64)
	hdr = append32(hdr, chunkedMagic)
	hdr = append16(hdr, chunkedVersion)
	hdr = append16(hdr, uint16(len(shape)))
	for _, e := range shape {
		hdr = append64(hdr, uint64(e))
	}
	hdr = append32(hdr, uint32(nChunks))
	return hdr
}

// slabAt wraps (without copying) the chunkExtent-bounded slab starting at
// the given leading-axis plane.
func slabAt(f *grid.Field, shape []int, planeElems, start, ext int) (*grid.Field, error) {
	slabShape := append([]int{ext}, shape[1:]...)
	return grid.FromSlice(f.Data()[start*planeElems:(start+ext)*planeElems], slabShape...)
}

// addChunk folds one chunk's accounting into the aggregate: phases and
// CPUTotal sum; the caller sets the wall-clock Total at the end.
func (r *ChunkedResult) addChunk(cres *Result) {
	r.Chunks++
	r.CompressedBytes += cres.CompressedBytes
	r.Timings.Wavelet += cres.Timings.Wavelet
	r.Timings.Quantize += cres.Timings.Quantize
	r.Timings.Encode += cres.Timings.Encode
	r.Timings.Format += cres.Timings.Format
	r.Timings.TempWrite += cres.Timings.TempWrite
	r.Timings.Gzip += cres.Timings.Gzip
	r.Timings.CPUTotal += cres.Timings.Total
	r.PerChunk = append(r.PerChunk, cres.Timings)
	if cres.MaxCoeffError > r.MaxCoeffError {
		r.MaxCoeffError = cres.MaxCoeffError
	}
}

// CompressChunked splits the field into slabs of chunkExtent planes along
// axis 0 and compresses each independently with the same options. The
// trailing slab may be smaller; every slab must satisfy the wavelet level
// constraint, so chunkExtent must be ≥ 2^levels. Chunks are processed one
// at a time on the calling goroutine; CompressChunkedParallel produces a
// byte-identical stream using all cores.
func CompressChunked(f *grid.Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if chunkExtent < 1 {
		return nil, fmt.Errorf("%w: chunk extent %d", ErrOptions, chunkExtent)
	}
	wall := time.Now()
	shape := f.Shape()
	planeElems := f.Len() / shape[0]

	res := &ChunkedResult{RawBytes: f.Bytes(), Workers: 1}
	nChunks := (shape[0] + chunkExtent - 1) / chunkExtent
	out := append([]byte(nil), chunkedHeader(shape, nChunks)...)

	// Per-chunk Compress calls keep recording stage seconds (that is how
	// the per-stage CPU counters aggregate), but the operation-level
	// series are recorded once below for the whole chunked compression.
	opts.chunkInternal = true

	for start := 0; start < shape[0]; start += chunkExtent {
		ext := chunkExtent
		if rem := shape[0] - start; rem < ext {
			ext = rem
		}
		slab, err := slabAt(f, shape, planeElems, start, ext)
		if err != nil {
			return nil, err
		}
		cres, err := Compress(slab, opts)
		if err != nil {
			return nil, fmt.Errorf("core: chunk at plane %d: %w", start, err)
		}
		var frame [12]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(ext))
		binary.LittleEndian.PutUint64(frame[4:], uint64(len(cres.Data)))
		out = append(out, frame[:]...)
		out = append(out, cres.Data...)
		res.addChunk(cres)
	}
	res.Data = out
	res.StreamBytes = len(out)
	res.Timings.Total = time.Since(wall)
	recordChunkedCompress(opts, res)
	return res, nil
}

// chunkFrame is one parsed chunk of a chunked stream: its leading-axis
// extent, starting plane, and compressed payload (aliasing the input).
type chunkFrame struct {
	ext     int
	plane   int
	payload []byte
}

// parseChunked validates the framing of a CompressChunked stream and
// returns the array shape plus every chunk's frame. Payload slices alias
// data. Parsing is cheap (header and length fields only) — payload
// decompression is left to the caller so it can run serially or on a
// worker pool.
func parseChunked(data []byte) (shape []int, frames []chunkFrame, err error) {
	pos := 0
	need := func(n int) ([]byte, error) {
		if pos+n > len(data) {
			return nil, fmt.Errorf("%w: truncated at byte %d", ErrChunked, pos)
		}
		b := data[pos : pos+n]
		pos += n
		return b, nil
	}
	b, err := need(4)
	if err != nil {
		return nil, nil, err
	}
	if binary.LittleEndian.Uint32(b) != chunkedMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrChunked)
	}
	if b, err = need(2); err != nil {
		return nil, nil, err
	}
	if v := binary.LittleEndian.Uint16(b); v != chunkedVersion {
		return nil, nil, fmt.Errorf("%w: version %d", ErrChunked, v)
	}
	if b, err = need(2); err != nil {
		return nil, nil, err
	}
	nd := int(binary.LittleEndian.Uint16(b))
	if nd == 0 || nd > grid.MaxDims {
		return nil, nil, fmt.Errorf("%w: ndims %d", ErrChunked, nd)
	}
	shape = make([]int, nd)
	elems := uint64(1)
	for d := range shape {
		if b, err = need(8); err != nil {
			return nil, nil, err
		}
		e := binary.LittleEndian.Uint64(b)
		if e == 0 || e > 1<<31 {
			return nil, nil, fmt.Errorf("%w: extent %d", ErrChunked, e)
		}
		shape[d] = int(e)
		elems *= e
	}
	// Plausibility cap mirroring container.FromBytes: chunk payloads are
	// gzip-compressed containers, each storing at least a bitmap bit per
	// value, so a genuine stream cannot declare vastly more elements
	// than its size supports (gzip adds up to ~1000× on constant data;
	// allow 2^16 slack before rejecting).
	if elems>>16 > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: shape %v declares %d elements for %d input bytes", ErrChunked, shape, elems, len(data))
	}
	if b, err = need(4); err != nil {
		return nil, nil, err
	}
	nChunks := int(binary.LittleEndian.Uint32(b))
	if nChunks < 1 || nChunks > shape[0] {
		return nil, nil, fmt.Errorf("%w: chunk count %d for extent %d", ErrChunked, nChunks, shape[0])
	}

	frames = make([]chunkFrame, 0, nChunks)
	plane := 0
	for c := 0; c < nChunks; c++ {
		if b, err = need(4); err != nil {
			return nil, nil, err
		}
		ext := int(binary.LittleEndian.Uint32(b))
		if b, err = need(8); err != nil {
			return nil, nil, err
		}
		plen := binary.LittleEndian.Uint64(b)
		if plen > uint64(len(data)-pos) {
			return nil, nil, fmt.Errorf("%w: chunk %d payload %d bytes", ErrChunked, c, plen)
		}
		payload, err := need(int(plen))
		if err != nil {
			return nil, nil, err
		}
		if ext < 1 || plane+ext > shape[0] {
			return nil, nil, fmt.Errorf("%w: chunk %d extent %d at plane %d", ErrChunked, c, ext, plane)
		}
		frames = append(frames, chunkFrame{ext: ext, plane: plane, payload: payload})
		plane += ext
	}
	if plane != shape[0] {
		return nil, nil, fmt.Errorf("%w: chunks cover %d of %d planes", ErrChunked, plane, shape[0])
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrChunked, len(data)-pos)
	}
	return shape, frames, nil
}

// IdentifyEntropy names the entropy coding of a compressed stream
// without decoding it: for chunked streams the first chunk's framing is
// reported (all chunks of one compression share it), for single streams
// the payload itself. Unrecognized bytes report "unknown".
func IdentifyEntropy(data []byte) string {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == chunkedMagic {
		if _, frames, err := parseChunked(data); err == nil && len(frames) > 0 {
			return entropy.Identify(frames[0].payload)
		}
		return "unknown"
	}
	return entropy.Identify(data)
}

// decodeChunkInto decompresses one chunk payload, validates its shape and
// copies it into the chunk's (disjoint) plane range of f.
func decodeChunkInto(f *grid.Field, shape []int, planeElems, c int, fr chunkFrame, workers int) error {
	slab, err := decompressWorkers(fr.payload, workers)
	if err != nil {
		return fmt.Errorf("core: chunk %d: %w", c, err)
	}
	if slab.Dims() != len(shape) || slab.Extent(0) != fr.ext {
		return fmt.Errorf("%w: chunk %d shape %v at plane %d", ErrChunked, c, slab.Shape(), fr.plane)
	}
	for d := 1; d < len(shape); d++ {
		if slab.Extent(d) != shape[d] {
			return fmt.Errorf("%w: chunk %d shape %v", ErrChunked, c, slab.Shape())
		}
	}
	copy(f.Data()[fr.plane*planeElems:], slab.Data())
	return nil
}

// DecompressChunked reconstructs the field from a CompressChunked stream,
// decoding chunks one at a time on the calling goroutine.
func DecompressChunked(data []byte) (*grid.Field, error) {
	start := time.Now()
	shape, frames, err := parseChunked(data)
	if err != nil {
		return nil, err
	}
	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	planeElems := f.Len() / shape[0]
	for c, fr := range frames {
		if err := decodeChunkInto(f, shape, planeElems, c, fr, 0); err != nil {
			return nil, err
		}
	}
	recordDecompressOp(obs.Default(), "chunked", f.Bytes(), time.Since(start))
	return f, nil
}

// DecompressAny decodes either a plain Compress stream or a chunked
// CompressChunked stream, sniffing the leading magic bytes.
func DecompressAny(data []byte) (*grid.Field, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == chunkedMagic {
		return DecompressChunked(data)
	}
	return Decompress(data)
}

func append16(b []byte, v uint16) []byte {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	return append(b, t[:]...)
}

func append32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func append64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}
