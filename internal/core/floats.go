package core

import (
	"encoding/binary"
	"math"
)

// floatBytes serializes a float64 slice to little-endian bytes.
func floatBytes(fs []float64) []byte {
	out := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// bytesToFloats fills dst from little-endian bytes; len(b) must be
// 8*len(dst).
func bytesToFloats(b []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}
