package core

import (
	"math"
	"testing"

	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

func TestPerBandQuantRoundTrip(t *testing.T) {
	f := smooth3D(96, 20, 2, 21)
	for levels := 1; levels <= 2; levels++ {
		opts := DefaultOptions()
		opts.PerBandQuant = true
		opts.Levels = levels
		g, res, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatalf("levels %d: %v", levels, err)
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		if s.AvgPct > 1 {
			t.Errorf("levels %d: per-band avg error %.4f%%", levels, s.AvgPct)
		}
		if res.CompressionRatePct() >= 100 {
			t.Errorf("levels %d: per-band cr %.1f%%", levels, res.CompressionRatePct())
		}
	}
}

func TestPerBandStreamSelfDescribing(t *testing.T) {
	// The PerBand flag must travel in the stream: decompressing a per-band
	// archive needs no out-of-band information.
	f := smooth3D(64, 16, 2, 22)
	opts := DefaultOptions()
	opts.PerBandQuant = true
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatal("shape lost")
	}
}

func TestPerBandAdaptsToBandRanges(t *testing.T) {
	// Construct data where one direction is far rougher than the other:
	// pooled quantization must size its partitions for the widest band,
	// while per-band quantization adapts — so per-band error ≤ pooled
	// error with the simple quantizer.
	f := smooth3D(128, 32, 2, 23)
	d := f.Data()
	for i := range d {
		if i%2 == 0 {
			d[i] += 30 * math.Sin(float64(i)) // rough along the last axis
		}
	}
	err := func(perBand bool) float64 {
		opts := DefaultOptions()
		opts.Method = quant.Simple
		opts.Divisions = 16
		opts.PerBandQuant = perBand
		g, _, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		return s.AvgPct
	}
	pooled, perBand := err(false), err(true)
	if perBand > pooled*1.05 {
		t.Errorf("per-band error %.5f%% worse than pooled %.5f%%", perBand, pooled)
	}
}

func TestZeroThresholdImprovesCompression(t *testing.T) {
	f := smooth3D(128, 41, 2, 24)
	run := func(th float64) (float64, float64) {
		opts := DefaultOptions()
		opts.ZeroThreshold = th
		g, res, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		return res.CompressionRatePct(), s.MaxPct
	}
	// The threshold must sit above the data's noise floor (smooth3D adds
	// 0.05σ noise, so high-band noise coefficients are ≈0.03) to collapse
	// the noise codes into one run for gzip.
	const th = 0.2
	crOff, _ := run(0)
	crOn, errOn := run(th)
	if crOn >= crOff {
		t.Errorf("thresholding did not improve cr: %.2f%% vs %.2f%%", crOn, crOff)
	}
	// The extra error must stay bounded by ~threshold/range.
	min, max := f.MinMax()
	bound := 100 * 4 * th / (max - min) // 4x slack for wavelet fan-out
	if errOn > 1+bound {
		t.Errorf("thresholded max error %.4f%% above bound", errOn)
	}
}

func TestZeroThresholdValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 25)
	opts := DefaultOptions()
	opts.ZeroThreshold = -1
	if _, err := Compress(f, opts); err == nil {
		t.Error("negative threshold accepted")
	}
	opts.ZeroThreshold = math.NaN()
	if _, err := Compress(f, opts); err == nil {
		t.Error("NaN threshold accepted")
	}
}

func TestPerBandWithProposedAndThreshold(t *testing.T) {
	// The three options compose.
	f := smooth3D(96, 20, 2, 26)
	opts := DefaultOptions()
	opts.PerBandQuant = true
	opts.ZeroThreshold = 0.005
	opts.Levels = 2
	g, res, err := RoundTrip(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := stats.Compare(f.Data(), g.Data())
	if s.AvgPct > 1 {
		t.Errorf("composed options avg error %.4f%%", s.AvgPct)
	}
	if res.CompressionRatePct() >= 100 {
		t.Errorf("composed options cr %.1f%%", res.CompressionRatePct())
	}
}

func TestErrorBoundOption(t *testing.T) {
	f := smooth3D(128, 20, 2, 41)
	for _, bound := range []float64{1.0, 0.05} {
		opts := DefaultOptions()
		opts.ErrorBound = bound
		g, res, err := RoundTrip(f, opts)
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		if res.BoundUnreachable {
			t.Fatalf("bound %g unreachable on smooth data", bound)
		}
		if res.EffectiveDivisions < 1 || res.EffectiveDivisions > quant.MaxDivisions {
			t.Errorf("bound %g: effective divisions %d", bound, res.EffectiveDivisions)
		}
		// The wavelet adds ≤ a few ulps; the per-value error after the
		// inverse transform is bounded by ~2x the coefficient bound
		// (each output value mixes one low and one high coefficient per
		// level).
		maxAbs := 0.0
		for i := range f.Data() {
			d := f.Data()[i] - g.Data()[i]
			if d < 0 {
				d = -d
			}
			if d > maxAbs {
				maxAbs = d
			}
		}
		if maxAbs > 4*bound {
			t.Errorf("bound %g: reconstruction max abs error %g", bound, maxAbs)
		}
	}
}

func TestErrorBoundTighterNeedsMoreDivisions(t *testing.T) {
	f := smooth3D(128, 20, 2, 42)
	nAt := func(bound float64) int {
		opts := DefaultOptions()
		opts.ErrorBound = bound
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.EffectiveDivisions
	}
	loose, tight := nAt(1.0), nAt(0.01)
	if tight < loose {
		t.Errorf("tighter bound chose fewer divisions: %d vs %d", tight, loose)
	}
}

func TestErrorBoundUnreachableReported(t *testing.T) {
	// A bound of ~0 is unreachable for any lossy quantization of
	// non-constant data.
	f := smooth3D(64, 16, 2, 43)
	opts := DefaultOptions()
	opts.ErrorBound = 1e-300
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BoundUnreachable {
		t.Error("unreachable bound not reported")
	}
	// The stream is still valid.
	if _, err := Decompress(res.Data); err != nil {
		t.Errorf("best-effort stream does not decode: %v", err)
	}
}

func TestErrorBoundValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 44)
	opts := DefaultOptions()
	opts.ErrorBound = math.NaN()
	if _, err := Compress(f, opts); err == nil {
		t.Error("NaN error bound accepted")
	}
	opts.ErrorBound = -0.5
	if _, err := Compress(f, opts); err == nil {
		t.Error("negative error bound accepted")
	}
}

func TestZlibFormatEndToEnd(t *testing.T) {
	f := smooth3D(64, 16, 2, 45)
	opts := DefaultOptions()
	opts.GzipFormat = gzipio.FormatZlib
	g, res, err := RoundTrip(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatePct() >= 100 {
		t.Errorf("zlib cr %.1f%%", res.CompressionRatePct())
	}
	s, _ := stats.Compare(f.Data(), g.Data())
	if s.AvgPct > 1 {
		t.Errorf("zlib avg error %.4f%%", s.AvgPct)
	}
}
