package core

import "sync"

// floatPool recycles the large scratch slices of the compression hot path:
// the working copy of the input array, the gathered high-band pool and the
// low band. All of them are dead once the formatted stream exists, so
// pooling them makes steady-state Compress allocation-free in its largest
// buffers (checkpointing calls Compress once per array per interval — the
// reuse rate is high and the slices are uniformly checkpoint-sized).
var floatPool = sync.Pool{New: func() any { return new(floatBuf) }}

// floatBuf is the pooled holder; keeping the slice behind a pointer avoids
// an allocation on every Put.
type floatBuf struct{ s []float64 }

// getFloats returns a pooled length-n slice (contents unspecified).
func getFloats(n int) *floatBuf {
	b := floatPool.Get().(*floatBuf)
	if cap(b.s) < n {
		b.s = make([]float64, n)
	}
	b.s = b.s[:n]
	return b
}

func (b *floatBuf) put() { floatPool.Put(b) }
