// chunked_delta.go is the delta-aware variant of the chunked parallel
// engine. Scientific time-stepping often leaves most of an array
// untouched between checkpoints (halo updates, local physics); the full
// pipeline still pays wavelet+quantize+DEFLATE for every slab. The
// delta path fingerprints each slab's raw bytes (SHA-256) against the
// previous checkpoint and re-emits the cached compressed frame for
// clean slabs, so compression CPU scales with the mutated fraction —
// while the framed output stays byte-identical to
// CompressChunkedParallel for the same field, options and chunk extent
// (per-slab compression is deterministic, so a cached frame IS the
// frame a recompression would produce).
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/grid"
)

// slabEntry is one slab's cached fingerprint and compressed frame.
type slabEntry struct {
	sum [sha256.Size]byte
	// res is the cached per-slab Result with zeroed timings: reusing it
	// contributes bytes and quality stats to the aggregate but no CPU.
	res *Result
}

// SlabCache carries per-slab fingerprints and compressed payloads
// between successive CompressChunkedDelta calls over the same variable.
// A cache is valid for one (shape, chunkExtent, options) combination;
// any change invalidates it wholesale and the next call recompresses
// everything. The zero value is ready to use. A SlabCache is not safe
// for concurrent use (the delta compressor itself updates it from a
// single goroutine after the parallel fan-out).
type SlabCache struct {
	shape       []int
	chunkExtent int
	opts        Options
	slabs       []slabEntry
	valid       bool
}

// Reset discards all cached state: the next delta compression
// recompresses every slab. Call it when the underlying data jumps to an
// unrelated state (e.g. after a restore).
func (c *SlabCache) Reset() {
	c.slabs = nil
	c.valid = false
}

// cacheKey normalizes the options for cache-validity comparison:
// telemetry sinks and worker counts do not affect the output bytes.
func cacheKey(opts Options) Options {
	opts.Observer = nil
	opts.Workers = 0
	opts.chunkInternal = false
	return opts
}

// matches reports whether the cache was built for this exact
// compression geometry and parameter set.
func (c *SlabCache) matches(shape []int, chunkExtent int, opts Options, nChunks int) bool {
	if !c.valid || c.chunkExtent != chunkExtent || len(c.slabs) != nChunks ||
		len(c.shape) != len(shape) || c.opts != cacheKey(opts) {
		return false
	}
	for i, e := range shape {
		if c.shape[i] != e {
			return false
		}
	}
	return true
}

// sumSlab fingerprints a slab's raw float64 bytes without materializing
// the whole byte image: the hash streams over bounded blocks.
func sumSlab(data []float64) [sha256.Size]byte {
	h := sha256.New()
	var buf [4096]byte
	for len(data) > 0 {
		n := len(buf) / 8
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(data[i]))
		}
		h.Write(buf[:8*n])
		data = data[n:]
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// CompressChunkedDelta is CompressChunkedParallel with slab-level reuse:
// slabs whose raw bytes are unchanged since the cache was filled re-emit
// their cached compressed frame and skip the wavelet/quantize/entropy
// pipeline entirely. The framed stream is byte-identical to
// CompressChunkedParallel for the same inputs; the result's SlabsReused
// reports how many slabs were served from cache. The cache is updated in
// place to describe this checkpoint.
func CompressChunkedDelta(f *grid.Field, opts Options, chunkExtent int, cache *SlabCache) (*ChunkedResult, error) {
	if cache == nil {
		return CompressChunkedParallel(f, opts, chunkExtent)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if chunkExtent < 1 {
		return nil, fmt.Errorf("%w: chunk extent %d", ErrOptions, chunkExtent)
	}
	wall := time.Now()
	shape := f.Shape()
	nChunks := (shape[0] + chunkExtent - 1) / chunkExtent
	planeElems := f.Len() / shape[0]
	if !cache.matches(shape, chunkExtent, opts, nChunks) {
		cache.shape = append([]int(nil), shape...)
		cache.chunkExtent = chunkExtent
		cache.opts = cacheKey(opts)
		cache.slabs = make([]slabEntry, nChunks)
		cache.valid = true
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	chunkOpts := opts
	chunkOpts.Workers = 1
	chunkOpts.chunkInternal = true

	results := make([]*Result, nChunks)
	reusedFlags := make([]bool, nChunks)
	sums := make([][sha256.Size]byte, nChunks)
	errs := make([]error, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				start := c * chunkExtent
				ext := chunkExtent
				if rem := shape[0] - start; rem < ext {
					ext = rem
				}
				slab, err := slabAt(f, shape, planeElems, start, ext)
				if err != nil {
					errs[c] = err
					continue
				}
				sums[c] = sumSlab(slab.Data())
				// Reading cache.slabs concurrently is safe: the cache is
				// only written after the fan-out completes.
				if ent := cache.slabs[c]; ent.res != nil && ent.sum == sums[c] {
					results[c] = ent.res
					reusedFlags[c] = true
					continue
				}
				cres, err := Compress(slab, chunkOpts)
				if err != nil {
					errs[c] = fmt.Errorf("core: chunk at plane %d: %w", start, err)
					continue
				}
				results[c] = cres
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &ChunkedResult{RawBytes: f.Bytes(), Workers: workers}
	total := len(chunkedHeader(shape, nChunks))
	for _, cres := range results {
		total += 12 + len(cres.Data)
	}
	out := make([]byte, 0, total)
	out = append(out, chunkedHeader(shape, nChunks)...)
	for c, cres := range results {
		var frame [12]byte
		ext := chunkExtent
		if rem := shape[0] - c*chunkExtent; rem < ext {
			ext = rem
		}
		binary.LittleEndian.PutUint32(frame[0:], uint32(ext))
		binary.LittleEndian.PutUint64(frame[4:], uint64(len(cres.Data)))
		out = append(out, frame[:]...)
		out = append(out, cres.Data...)
		res.addChunk(cres)
		if reusedFlags[c] {
			res.SlabsReused++
		} else {
			// Cache a timings-free copy: a future reuse contributes the
			// bytes and quality stats but no phony CPU.
			cached := *cres
			cached.Timings = Timings{}
			cache.slabs[c] = slabEntry{sum: sums[c], res: &cached}
		}
	}
	res.Data = out
	res.StreamBytes = len(out)
	res.Timings.Total = time.Since(wall)
	recordChunkedCompress(opts, res)
	return res, nil
}
