package core

import "testing"

// FuzzDecompress hardens the end-to-end decoder: gzip layer, container
// parser and wavelet reconstruction must survive arbitrary input.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	fld := smooth3D(16, 8, 2, 99)
	if res, err := Compress(fld, DefaultOptions()); err == nil {
		f.Add(res.Data)
		f.Add(res.Data[:len(res.Data)/2])
		mut := append([]byte(nil), res.Data...)
		mut[len(mut)/3] ^= 0x55
		f.Add(mut)
	}
	perBand := DefaultOptions()
	perBand.PerBandQuant = true
	if res, err := Compress(fld, perBand); err == nil {
		f.Add(res.Data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data)
		if err == nil && out == nil {
			t.Fatal("nil field without error")
		}
	})
}

// FuzzDecompressChunked covers the chunked framing path.
func FuzzDecompressChunked(f *testing.F) {
	f.Add([]byte{})
	fld := smooth3D(24, 8, 2, 98)
	if res, err := CompressChunked(fld, DefaultOptions(), 8); err == nil {
		f.Add(res.Data)
		f.Add(res.Data[:len(res.Data)-3])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressChunked(data)
		if err == nil && out == nil {
			t.Fatal("nil field without error")
		}
	})
}

// FuzzDecompressChunkedParallel differentially checks the parallel decoder
// against the serial one: for arbitrary input both must agree on whether
// the stream is valid, and on the reconstructed field when it is.
func FuzzDecompressChunkedParallel(f *testing.F) {
	f.Add([]byte{})
	fld := smooth3D(24, 8, 2, 97)
	if res, err := CompressChunked(fld, DefaultOptions(), 8); err == nil {
		f.Add(res.Data)
		f.Add(res.Data[:len(res.Data)-3])
		mut := append([]byte(nil), res.Data...)
		mut[len(mut)/2] ^= 0x55
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		serial, serialErr := DecompressChunked(data)
		par, parErr := DecompressChunkedParallel(data, 3)
		if (serialErr == nil) != (parErr == nil) {
			t.Fatalf("error disagreement: serial %v, parallel %v", serialErr, parErr)
		}
		if serialErr == nil && !serial.Equal(par) {
			t.Fatal("parallel reconstruction differs from serial")
		}
	})
}
