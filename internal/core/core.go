// Package core implements the paper's primary contribution: the
// end-to-end floating-point lossy compressor of Sasaki, Sato, Endo and
// Matsuoka, "Exploration of Lossy Compression for Application-Level
// Checkpoint/Restart" (IPDPS 2015).
//
// Compress runs the four stages of the paper's Fig. 1 over one
// N-dimensional double-precision array:
//
//  1. Wavelet transformation (package wavelet) — Haar, O(n).
//  2. Quantization (package quant) — simple or spike-detecting proposed
//     method over the pooled high-frequency coefficients.
//  3. Encoding (package encode) — 1-byte codes into the average table,
//     with a bitmap separating codes from lossless passthrough values.
//  4. Formatting + gzip (packages container, gzipio) — the serialized
//     archive is DEFLATE-compressed, either in memory or via a temporary
//     file as in the paper's prototype.
//
// Decompress inverts all four stages. Only stage 2 is lossy; the overall
// reconstruction error is the quantization error plus ≤ a few ulps of
// wavelet rounding (see DESIGN.md §5).
//
// Every Compress reports the per-phase timing breakdown that the paper's
// Fig. 9 plots (wavelet / quantization+encoding / temporary-file write /
// gzip / other).
package core

import (
	"errors"
	"fmt"
	"time"

	"lossyckpt/internal/container"
	"lossyckpt/internal/encode"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/wavelet"
)

// ErrOptions indicates invalid compressor options.
var ErrOptions = errors.New("core: invalid options")

// Options parameterizes the compressor. The zero value is NOT valid; start
// from DefaultOptions.
type Options struct {
	// Scheme is the wavelet kernel (default Haar, as in the paper).
	Scheme wavelet.Scheme
	// Levels is the decomposition depth (default 1, as in the paper).
	Levels int
	// Method is the quantization method (paper default: Proposed).
	Method quant.Method
	// Divisions is the paper's n (default 128, the paper's largest sweep
	// point and its Fig. 6 setting).
	Divisions int
	// SpikeDivisions is the paper's d (default 64, §IV-A).
	SpikeDivisions int
	// GzipLevel is the DEFLATE level (default gzip's own default, -6).
	GzipLevel int
	// GzipMode selects in-memory DEFLATE or the paper prototype's
	// temporary-file path (default InMemory).
	GzipMode gzipio.Mode
	// GzipFormat selects the DEFLATE framing: gzip (the paper prototype's
	// command-line tool) or zlib (the paper's proposed improvement).
	// Decompress auto-detects either.
	GzipFormat gzipio.Format
	// GzipBlock, when positive, routes stage 4c through the block-parallel
	// DEFLATE engine (gzipio.CompressParallel): the formatted stream is
	// sharded into GzipBlock-byte blocks compressed concurrently on up to
	// Workers goroutines. The output is byte-stable for a fixed
	// (GzipBlock, GzipLevel, GzipFormat) regardless of worker count, and
	// Decompress consumes it transparently. Zero keeps the serial
	// single-member DEFLATE. Requires GzipMode == InMemory — the paper
	// prototype's temp-file path exists to measure its serial cost and
	// would make a parallel stage meaningless.
	GzipBlock int
	// TmpDir is where TempFile mode puts its temporary ("" = system temp).
	TmpDir string
	// EntropyCodec selects the stage-4c coder (see internal/entropy). The
	// zero value, entropy.Gzip, keeps the paper's DEFLATE stage and — with
	// Shuffle off — produces the exact legacy byte stream, no envelope.
	// Any other selection wraps the payload in the self-describing entropy
	// envelope, which Decompress/DecompressAny consume transparently.
	// entropy.LZ4 trades compression ratio for >4× stage-4 throughput.
	EntropyCodec entropy.ID
	// Shuffle runs the byte-lane transpose pre-pass over the formatted
	// container before the entropy coder, using the container's packed
	// float width (container.PackedWidth) as the lane stride. It helps the
	// cheap LZ4 coder most; requires GzipMode == InMemory.
	Shuffle bool
	// VarName labels entropy-stage telemetry (the
	// entropy_codec_selected{codec,var} counter); it does not affect the
	// output stream. Empty records "-".
	VarName string
	// PerBandQuant quantizes each wavelet sub-band separately instead of
	// pooling all high-frequency values as the paper does (ablation; see
	// DESIGN.md experiment X8). Each band gets its own average table,
	// which adapts the partition width to that band's value range.
	PerBandQuant bool
	// ZeroThreshold, when positive, zeroes every high-frequency
	// coefficient with |v| ≤ ZeroThreshold before quantization — classic
	// wavelet thresholding (ablation X9). It adds at most ZeroThreshold
	// of absolute error per coefficient but makes the code stream more
	// redundant for the gzip stage.
	ZeroThreshold float64
	// LogQuant switches the quantizer to symmetric-log partitioning
	// (extension; see quant.Config.LogScale): finer partitions near zero,
	// where the high-band values concentrate.
	LogQuant bool
	// Workers bounds the intra-array parallelism of the pipeline: the
	// wavelet transform shards large axis passes over this many goroutines,
	// and CompressChunkedParallel / DecompressChunkedParallel use it as the
	// chunk worker-pool size. 0 means GOMAXPROCS; 1 forces the serial path.
	// The compressed output is byte-identical for every worker count.
	Workers int
	// ErrorBound, when positive, overrides Divisions: the pipeline picks
	// the smallest division number whose maximum quantization error stays
	// ≤ ErrorBound (absolute, in coefficient units). This is the paper's
	// §IV-C future work — "control the errors by specifying a value" — as
	// a first-class option. When even the largest division number misses
	// the bound, compression proceeds at the cap and the Result reports
	// BoundUnreachable.
	ErrorBound float64
	// LosslessBands stores every high-frequency coefficient verbatim
	// instead of quantizing it: stage 2 emits an all-passthrough bitmap
	// with an empty code stream (quant.PassthroughAll), so the only
	// reconstruction error left is the wavelet round-trip rounding (a few
	// ulps). The container format is unchanged — only the bitmap differs —
	// which makes this the guard ladder's next-to-last rung: nearly exact
	// without giving up the wavelet+gzip framing. Overrides Method,
	// Divisions, ErrorBound and ZeroThreshold.
	LosslessBands bool
	// Observer receives pipeline metrics: per-stage CPU seconds, bytes
	// in/out, operation counts and wall-clock histograms (see observe.go
	// for the metric names). nil falls back to the process default
	// registry (obs.Default()), which itself defaults to a no-op — the
	// disabled path costs one branch per compression.
	Observer *obs.Registry

	// chunkInternal marks a per-chunk Compress issued by a chunked
	// compression: stage seconds still record (that is how per-worker CPU
	// aggregates), but operation-level series are left to the top-level
	// chunked call so one user-visible compression counts once.
	chunkInternal bool
}

// DefaultOptions returns the paper's headline configuration: single-level
// Haar, proposed quantization with n=128, d=64, in-memory gzip.
func DefaultOptions() Options {
	return Options{
		Scheme:         wavelet.Haar,
		Levels:         1,
		Method:         quant.Proposed,
		Divisions:      128,
		SpikeDivisions: quant.DefaultSpikeDivisions,
		GzipLevel:      gzipio.Default,
		GzipMode:       gzipio.InMemory,
	}
}

// Timings is the per-phase cost breakdown of one compression, matching the
// components stacked in the paper's Fig. 9.
type Timings struct {
	Wavelet   time.Duration // stage 1
	Quantize  time.Duration // stage 2
	Encode    time.Duration // stage 3 (codes + bitmap assembly)
	Format    time.Duration // stage 4a: container serialization
	TempWrite time.Duration // stage 4b: temporary-file write (TempFile mode)
	Gzip      time.Duration // stage 4c: DEFLATE
	// Total is the wall-clock duration of the operation. For a chunked
	// compression this is the time from the first chunk starting to the
	// framed stream being complete — with concurrent chunks it can be far
	// below the summed per-chunk work.
	Total time.Duration
	// CPUTotal is the summed compute time: equal to Total for a
	// single-array Compress, and the sum of the per-chunk Totals for
	// chunked compression. CPUTotal/Total is the effective parallel
	// speedup of a chunked run.
	CPUTotal time.Duration
}

// Other returns the unattributed remainder (Total minus the named phases),
// the paper's "other overheads" component. For a chunked-parallel run the
// named phases sum per-chunk CPU time and can exceed the wall-clock Total;
// Other clamps to zero in that case.
func (t Timings) Other() time.Duration {
	o := t.Total - t.Wavelet - t.Quantize - t.Encode - t.Format - t.TempWrite - t.Gzip
	if o < 0 {
		return 0
	}
	return o
}

// Result is the output of one Compress call.
type Result struct {
	// Data is the final compressed stream (gzip over the formatted
	// container).
	Data []byte
	// RawBytes is the uncompressed array size (8 bytes per element).
	RawBytes int
	// FormattedBytes is the container size before gzip.
	FormattedBytes int
	// CompressedBytes is len(Data).
	CompressedBytes int
	// NumQuantized is how many high-frequency values were quantized.
	NumQuantized int
	// NumHigh is the total number of high-frequency values.
	NumHigh int
	// SpikePartitions is the number of spiked histogram partitions the
	// proposed quantizer selected (0 for the simple method).
	SpikePartitions int
	// EffectiveDivisions is the division number actually used: Divisions
	// normally, or the bound-chosen value when Options.ErrorBound is set
	// (the maximum across bands in per-band mode).
	EffectiveDivisions int
	// BoundUnreachable reports that Options.ErrorBound could not be met
	// even at the division cap; the stream still holds the best effort.
	BoundUnreachable bool
	// MaxCoeffError is the largest absolute quantization error over the
	// high-frequency coefficients, max |v − mean(partition(v))| across all
	// bands — the coefficient-domain quantity internal/guard amplifies
	// into a reconstruction-error bound. Zero under LosslessBands. It is
	// measured after ZeroThreshold clipping, so a caller deriving a bound
	// on the original coefficients must add Options.ZeroThreshold.
	MaxCoeffError float64
	// Timings is the per-phase breakdown.
	Timings Timings
}

// CompressionRatePct returns the paper's cr (Eq. 5) in percent.
func (r *Result) CompressionRatePct() float64 {
	return 100 * float64(r.CompressedBytes) / float64(r.RawBytes)
}

func (o Options) validate() error {
	if o.Levels < 1 {
		return fmt.Errorf("%w: levels %d", ErrOptions, o.Levels)
	}
	if o.Divisions < 1 || o.Divisions > quant.MaxDivisions {
		return fmt.Errorf("%w: divisions %d", ErrOptions, o.Divisions)
	}
	if o.SpikeDivisions < 1 {
		return fmt.Errorf("%w: spike divisions %d", ErrOptions, o.SpikeDivisions)
	}
	if o.ZeroThreshold < 0 || o.ZeroThreshold != o.ZeroThreshold {
		return fmt.Errorf("%w: zero threshold %g", ErrOptions, o.ZeroThreshold)
	}
	if o.ErrorBound < 0 || o.ErrorBound != o.ErrorBound {
		return fmt.Errorf("%w: error bound %g", ErrOptions, o.ErrorBound)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: workers %d", ErrOptions, o.Workers)
	}
	if o.GzipBlock < 0 {
		return fmt.Errorf("%w: gzip block %d", ErrOptions, o.GzipBlock)
	}
	if o.GzipBlock > 0 && o.GzipMode != gzipio.InMemory {
		return fmt.Errorf("%w: gzip block %d requires in-memory gzip mode", ErrOptions, o.GzipBlock)
	}
	if _, err := entropy.ByID(o.EntropyCodec); err != nil {
		return fmt.Errorf("%w: %v", ErrOptions, err)
	}
	if o.EntropyCodec != entropy.Gzip && o.GzipBlock > 0 {
		return fmt.Errorf("%w: gzip block size applies only to the gzip codec", ErrOptions)
	}
	if (o.EntropyCodec != entropy.Gzip || o.Shuffle) && o.GzipMode != gzipio.InMemory {
		return fmt.Errorf("%w: codec %s/shuffle requires in-memory gzip mode", ErrOptions, o.EntropyCodec)
	}
	return nil
}

// entropyParams maps the options to one entropy-stage configuration.
func (o Options) entropyParams() entropy.Params {
	return entropy.Params{
		Codec:      o.EntropyCodec,
		Shuffle:    o.Shuffle,
		Stride:     container.PackedWidth(),
		GzipLevel:  o.GzipLevel,
		GzipFormat: o.GzipFormat,
		GzipMode:   o.GzipMode,
		GzipBlock:  o.GzipBlock,
		TmpDir:     o.TmpDir,
		Workers:    o.Workers,
		Observer:   o.observer(),
	}
}

// legacyEntropy reports whether stage 4c writes the pre-PR-6 raw DEFLATE
// stream (no envelope): the default codec with no pre-pass.
func (o Options) legacyEntropy() bool {
	return o.EntropyCodec == entropy.Gzip && !o.Shuffle
}

// Compress runs the full pipeline over the field. The input field is not
// modified.
func Compress(f *grid.Field, opts Options) (*Result, error) {
	start := time.Now()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{RawBytes: f.Bytes()}

	// Stage 1: wavelet transform (on a copy; callers keep their data).
	t0 := time.Now()
	levels := opts.Levels
	if max := wavelet.MaxLevels(f.Shape()); levels > max {
		return nil, fmt.Errorf("%w: %d levels exceeds max %d for shape %v", ErrOptions, levels, max, f.Shape())
	}
	plan, err := wavelet.NewPlan(f.Shape(), levels, opts.Scheme)
	if err != nil {
		return nil, err
	}
	// The working copy, the gathered high pool and the low band are scratch
	// that dies with this call; all three come from the shared pool.
	workBuf := getFloats(f.Len())
	defer workBuf.put()
	copy(workBuf.s, f.Data())
	work, err := grid.FromSlice(workBuf.s, f.Shape()...)
	if err != nil {
		return nil, err
	}
	if err := plan.TransformWorkers(work, opts.Workers); err != nil {
		return nil, err
	}
	res.Timings.Wavelet = time.Since(t0)

	// Stage 2: quantize the high-frequency coefficients — pooled across
	// all bands (the paper's method) or separately per sub-band.
	t0 = time.Now()
	qcfg := quant.Config{
		Method:         opts.Method,
		Divisions:      opts.Divisions,
		SpikeDivisions: opts.SpikeDivisions,
		LogScale:       opts.LogQuant,
	}
	var highGroups [][]float64
	if opts.PerBandQuant {
		all, err := plan.GatherBands(work)
		if err != nil {
			return nil, err
		}
		// Bands() lists high bands first, the low band last; drop the low.
		highGroups = all[:len(all)-1]
	} else {
		highBuf := getFloats(plan.HighCount())
		defer highBuf.put()
		high, err := plan.GatherHigh(work, highBuf.s)
		if err != nil {
			return nil, err
		}
		highGroups = [][]float64{high}
	}
	if opts.ZeroThreshold > 0 && !opts.LosslessBands {
		for _, g := range highGroups {
			for i, v := range g {
				if v <= opts.ZeroThreshold && v >= -opts.ZeroThreshold {
					g[i] = 0
				}
			}
		}
	}
	quants := make([]*quant.Quantization, len(highGroups))
	for i, g := range highGroups {
		res.NumHigh += len(g)
		var q *quant.Quantization
		if opts.LosslessBands {
			q = quant.PassthroughAll(len(g))
		} else if opts.ErrorBound > 0 {
			n, chosen, err := quant.ChooseDivisions(g, opts.ErrorBound, opts.Method, opts.SpikeDivisions)
			if err == quant.ErrBoundUnreachable {
				res.BoundUnreachable = true
			} else if err != nil {
				return nil, err
			}
			q = chosen
			if n > res.EffectiveDivisions {
				res.EffectiveDivisions = n
			}
		} else {
			var err error
			q, err = quant.Quantize(g, qcfg)
			if err != nil {
				return nil, err
			}
			res.EffectiveDivisions = opts.Divisions
		}
		res.NumQuantized += q.NumQuantized
		res.SpikePartitions += q.SpikePartitions
		if q.NumQuantized > 0 {
			e, err := quant.MaxQuantizationError(g, q)
			if err != nil {
				return nil, err
			}
			if e > res.MaxCoeffError {
				res.MaxCoeffError = e
			}
		}
		quants[i] = q
	}
	res.Timings.Quantize = time.Since(t0)

	// Stage 3: encode.
	t0 = time.Now()
	bands := make([]*encode.EncodedBand, len(highGroups))
	for i, g := range highGroups {
		band, err := encode.Encode(g, quants[i])
		if err != nil {
			return nil, err
		}
		bands[i] = band
	}
	res.Timings.Encode = time.Since(t0)

	// Stage 4a: format.
	t0 = time.Now()
	lowBuf := getFloats(plan.LowCount())
	defer lowBuf.put()
	low, err := plan.GatherLow(work, lowBuf.s)
	if err != nil {
		return nil, err
	}
	arch := &container.Archive{
		Params: container.Params{
			Scheme:         opts.Scheme,
			Method:         opts.Method,
			Levels:         levels,
			Divisions:      opts.Divisions,
			SpikeDivisions: opts.SpikeDivisions,
			PerBand:        opts.PerBandQuant,
		},
		Shape: f.Shape(),
		Low:   low,
		Bands: bands,
	}
	formatted, err := arch.Bytes()
	if err != nil {
		return nil, err
	}
	res.FormattedBytes = len(formatted)
	res.Timings.Format = time.Since(t0)

	// Stage 4b/4c: the entropy coder. The default configuration (gzip, no
	// shuffle) goes straight through gzipio and stays byte-identical to
	// pre-PR-6 streams; any other selection is wrapped in the entropy
	// envelope so decode paths stay self-describing.
	if opts.legacyEntropy() {
		var gz gzipio.Result
		if opts.GzipBlock > 0 {
			gz, err = gzipio.CompressParallel(formatted, opts.GzipLevel, opts.GzipFormat, gzipio.ParallelOptions{
				BlockSize: opts.GzipBlock,
				Workers:   opts.Workers,
				Observer:  opts.observer(),
			})
		} else {
			gz, err = gzipio.CompressFormat(formatted, opts.GzipLevel, opts.GzipMode, opts.TmpDir, opts.GzipFormat)
		}
		if err != nil {
			return nil, err
		}
		res.Timings.TempWrite = gz.TempWrite
		res.Timings.Gzip = gz.Gzip
		res.Data = gz.Compressed
	} else {
		ent, err := entropy.Compress(formatted, opts.entropyParams())
		if err != nil {
			return nil, err
		}
		res.Timings.Gzip = ent.CodeTime
		res.Data = ent.Compressed
	}
	res.CompressedBytes = len(res.Data)
	res.Timings.Total = time.Since(start)
	res.Timings.CPUTotal = res.Timings.Total
	if o := opts.observer(); o != nil {
		recordStageSeconds(o, res.Timings)
		if !opts.chunkInternal {
			recordCompressOp(o, "single", res.RawBytes, res.CompressedBytes, res.Timings)
			entropy.RecordSelection(o, opts.entropyParams().Label(), opts.VarName)
		}
	}
	return res, nil
}

// Decompress inverts the pipeline, reconstructing the (lossy) field from a
// stream produced by Compress. Large wavelet inverse passes run on
// GOMAXPROCS goroutines; use decompressWorkers via DecompressAnyParallel
// to bound that.
func Decompress(data []byte) (*grid.Field, error) {
	start := time.Now()
	f, err := decompressWorkers(data, 0)
	if err == nil {
		recordDecompressOp(obs.Default(), "single", f.Bytes(), time.Since(start))
	}
	return f, err
}

// decompressWorkers is Decompress with an explicit wavelet parallelism
// bound (0 = GOMAXPROCS, 1 = serial). The reconstruction is identical for
// every worker count.
func decompressWorkers(data []byte, workers int) (*grid.Field, error) {
	// The entropy layer sniffs the envelope and dispatches to the right
	// codec; legacy payloads (raw gzip/zlib, including multi-member
	// GzipBlock streams) fall through to the DEFLATE decoders bit-exactly
	// as before, inflating members on the same worker bound.
	formatted, err := entropy.Decompress(data, workers)
	if err != nil {
		return nil, err
	}
	arch, err := container.FromBytes(formatted)
	if err != nil {
		return nil, err
	}
	plan, err := wavelet.NewPlan(arch.Shape, arch.Params.Levels, arch.Params.Scheme)
	if err != nil {
		return nil, err
	}
	if len(arch.Low) != plan.LowCount() {
		return nil, fmt.Errorf("%w: low band has %d values, plan needs %d", container.ErrFormat, len(arch.Low), plan.LowCount())
	}
	f, err := grid.New(arch.Shape...)
	if err != nil {
		return nil, err
	}
	if arch.Params.PerBand {
		meta := plan.Bands()
		if len(arch.Bands) != len(meta)-1 {
			return nil, fmt.Errorf("%w: %d band sections, plan has %d high bands",
				container.ErrFormat, len(arch.Bands), len(meta)-1)
		}
		groups := make([][]float64, len(meta))
		for i, b := range arch.Bands {
			if b.N != meta[i].Count {
				return nil, fmt.Errorf("%w: band %s has %d values, plan needs %d",
					container.ErrFormat, meta[i].Name, b.N, meta[i].Count)
			}
			decoded, err := b.Decode(nil)
			if err != nil {
				return nil, err
			}
			groups[i] = decoded
		}
		groups[len(meta)-1] = arch.Low
		if err := plan.ScatterBands(f, groups); err != nil {
			return nil, err
		}
	} else {
		if len(arch.Bands) != 1 {
			return nil, fmt.Errorf("%w: pooled archive with %d band sections", container.ErrFormat, len(arch.Bands))
		}
		band := arch.Band()
		if band.N != plan.HighCount() {
			return nil, fmt.Errorf("%w: high band has %d values, plan needs %d", container.ErrFormat, band.N, plan.HighCount())
		}
		// The decoded high pool is scratch: it is scattered into f and
		// dropped, so it comes from the shared buffer pool.
		highBuf := getFloats(band.N)
		defer highBuf.put()
		high, err := band.Decode(highBuf.s[:0])
		if err != nil {
			return nil, err
		}
		if err := plan.ScatterLow(f, arch.Low); err != nil {
			return nil, err
		}
		if err := plan.ScatterHigh(f, high); err != nil {
			return nil, err
		}
	}
	if err := plan.InverseWorkers(f, workers); err != nil {
		return nil, err
	}
	return f, nil
}

// RoundTrip compresses and immediately decompresses the field, returning
// the lossy reconstruction together with the compression result. It is the
// building block of the paper's error evaluations (Figs. 8 and 10).
func RoundTrip(f *grid.Field, opts Options) (*grid.Field, *Result, error) {
	res, err := Compress(f, opts)
	if err != nil {
		return nil, nil, err
	}
	g, err := Decompress(res.Data)
	if err != nil {
		return nil, nil, err
	}
	return g, res, nil
}

// CompressGzipOnly is the paper's lossless baseline (Fig. 6's "gzip" bar):
// the raw array bytes straight through DEFLATE, no lossy stages. It reuses
// the same Result bookkeeping so harness code can treat baselines
// uniformly.
func CompressGzipOnly(f *grid.Field, level int, mode gzipio.Mode, tmpDir string) (*Result, error) {
	start := time.Now()
	res := &Result{RawBytes: f.Bytes()}

	t0 := time.Now()
	raw := floatBytes(f.Data())
	res.FormattedBytes = len(raw)
	res.Timings.Format = time.Since(t0)

	gz, err := gzipio.Compress(raw, level, mode, tmpDir)
	if err != nil {
		return nil, err
	}
	res.Timings.TempWrite = gz.TempWrite
	res.Timings.Gzip = gz.Gzip
	res.Data = gz.Compressed
	res.CompressedBytes = len(gz.Compressed)
	res.Timings.Total = time.Since(start)
	res.Timings.CPUTotal = res.Timings.Total
	if o := obs.Default(); o != nil {
		recordStageSeconds(o, res.Timings)
		recordCompressOp(o, "gzip_only", res.RawBytes, res.CompressedBytes, res.Timings)
	}
	return res, nil
}

// DecompressGzipOnly inverts CompressGzipOnly given the original shape.
// It also accepts entropy-enveloped payloads so callers that stored a
// lossless rung through a non-default codec still restore.
func DecompressGzipOnly(data []byte, shape ...int) (*grid.Field, error) {
	raw, err := entropy.Decompress(data, 0)
	if err != nil {
		return nil, err
	}
	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	if len(raw) != 8*f.Len() {
		return nil, fmt.Errorf("core: gzip payload is %d bytes, shape %v needs %d", len(raw), shape, 8*f.Len())
	}
	bytesToFloats(raw, f.Data())
	return f, nil
}
