package core

import (
	"testing"

	"lossyckpt/internal/stats"
)

func TestChunkedRoundTrip(t *testing.T) {
	f := smooth3D(130, 20, 2, 31) // 130 planes: uneven split expected
	for _, chunk := range []int{2, 16, 64, 130, 500} {
		res, err := CompressChunked(f, DefaultOptions(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		wantChunks := (130 + chunk - 1) / chunk
		if chunk > 130 {
			wantChunks = 1
		}
		if res.Chunks != wantChunks {
			t.Errorf("chunk %d: %d chunks, want %d", chunk, res.Chunks, wantChunks)
		}
		g, err := DecompressChunked(res.Data)
		if err != nil {
			t.Fatalf("chunk %d: decompress: %v", chunk, err)
		}
		if !f.SameShape(g) {
			t.Fatalf("chunk %d: shape %v", chunk, g.Shape())
		}
		s, _ := stats.Compare(f.Data(), g.Data())
		if s.AvgPct > 1 {
			t.Errorf("chunk %d: avg error %.4f%%", chunk, s.AvgPct)
		}
		if res.CompressionRatePct() >= 100 {
			t.Errorf("chunk %d: cr %.1f%%", chunk, res.CompressionRatePct())
		}
	}
}

func TestChunkedMatchesUnchunkedQuality(t *testing.T) {
	// Chunking must not cost much: per-chunk quantization adapts locally,
	// so the error should be in the same ballpark as whole-array
	// compression.
	f := smooth3D(128, 20, 2, 32)
	whole, _, err := RoundTrip(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompressChunked(f, DefaultOptions(), 32)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := DecompressChunked(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := stats.Compare(f.Data(), whole.Data())
	sc, _ := stats.Compare(f.Data(), chunked.Data())
	if sc.AvgPct > 10*sw.AvgPct+0.01 {
		t.Errorf("chunked error %.5f%% far above whole-array %.5f%%", sc.AvgPct, sw.AvgPct)
	}
}

func TestChunkedValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 33)
	if _, err := CompressChunked(f, DefaultOptions(), 0); err == nil {
		t.Error("chunk extent 0 accepted")
	}
	bad := DefaultOptions()
	bad.Divisions = 0
	if _, err := CompressChunked(f, bad, 8); err == nil {
		t.Error("bad options accepted")
	}
	// A chunk extent of 1 makes 1-plane slabs whose leading extent cannot
	// be transformed at level 1 unless another axis still can; for this
	// shape the other axes are fine, so it must succeed.
	if _, err := CompressChunked(f, DefaultOptions(), 1); err != nil {
		t.Errorf("1-plane chunks rejected: %v", err)
	}
}

func TestChunkedDecompressErrors(t *testing.T) {
	f := smooth3D(32, 8, 2, 34)
	res, err := CompressChunked(f, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressChunked(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := DecompressChunked([]byte("garbage stream")); err == nil {
		t.Error("garbage accepted")
	}
	for _, cut := range []int{3, 10, len(res.Data) / 2, len(res.Data) - 1} {
		if _, err := DecompressChunked(res.Data[:cut]); err == nil {
			t.Errorf("truncation to %d accepted", cut)
		}
	}
	mut := append([]byte(nil), res.Data...)
	mut[len(mut)/2] ^= 0xFF
	if _, err := DecompressChunked(mut); err == nil {
		t.Error("corruption accepted")
	}
	trailing := append(append([]byte(nil), res.Data...), 0xAB)
	if _, err := DecompressChunked(trailing); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestChunked1D(t *testing.T) {
	f := smooth3D(64, 1, 1, 35) // effectively thin; also test a pure 1D field
	res, err := CompressChunked(f, DefaultOptions(), 16)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressChunked(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Error("1-thin chunked shape mismatch")
	}
}
