package core

import (
	"bytes"
	"errors"
	"testing"

	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/stats"
)

// TestCompressChunkedToByteIdentical pins the streaming pipeline's core
// contract: the bytes reaching the writer are exactly the buffered
// CompressChunked stream, for every worker count and for ragged trailing
// chunks.
func TestCompressChunkedToByteIdentical(t *testing.T) {
	f := smooth3D(130, 20, 2, 7) // 130 planes: uneven trailing chunk
	for _, chunk := range []int{2, 32, 130} {
		want, err := CompressChunked(f, DefaultOptions(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: buffered: %v", chunk, err)
		}
		for _, workers := range []int{0, 1, 2, 3, 8} {
			opts := DefaultOptions()
			opts.Workers = workers
			var buf bytes.Buffer
			res, err := CompressChunkedTo(&buf, f, opts, chunk)
			if err != nil {
				t.Fatalf("chunk %d workers %d: %v", chunk, workers, err)
			}
			if !bytes.Equal(buf.Bytes(), want.Data) {
				t.Fatalf("chunk %d workers %d: stream differs from buffered (%d vs %d bytes)",
					chunk, workers, buf.Len(), len(want.Data))
			}
			if res.Data != nil {
				t.Errorf("chunk %d workers %d: streaming result buffered Data", chunk, workers)
			}
			if res.StreamBytes != buf.Len() {
				t.Errorf("chunk %d workers %d: StreamBytes %d, wrote %d", chunk, workers, res.StreamBytes, buf.Len())
			}
			if res.Chunks != want.Chunks {
				t.Errorf("chunk %d workers %d: %d chunks, want %d", chunk, workers, res.Chunks, want.Chunks)
			}
			if res.CompressionRatePct() != want.CompressionRatePct() {
				t.Errorf("chunk %d workers %d: cr %.3f%%, want %.3f%%",
					chunk, workers, res.CompressionRatePct(), want.CompressionRatePct())
			}
		}
	}
}

// errAfterWriter fails on the write after n successful ones, exercising
// the pipeline's early-exit path (workers must drain, not leak).
type errAfterWriter struct {
	n int
}

var errSink = errors.New("sink failed")

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n--
	return len(p), nil
}

func TestCompressChunkedToWriterError(t *testing.T) {
	f := smooth3D(64, 16, 2, 9)
	opts := DefaultOptions()
	opts.Workers = 3
	for _, ok := range []int{0, 1, 3} {
		_, err := CompressChunkedTo(&errAfterWriter{n: ok}, f, opts, 8)
		if !errors.Is(err, errSink) {
			t.Fatalf("after %d writes: error %v, want sink failure", ok, err)
		}
	}
}

func TestCompressChunkedToInvalidOptions(t *testing.T) {
	f := smooth3D(8, 4, 2, 1)
	var buf bytes.Buffer
	if _, err := CompressChunkedTo(&buf, f, DefaultOptions(), 0); !errors.Is(err, ErrOptions) {
		t.Fatalf("chunk extent 0: %v", err)
	}
	bad := DefaultOptions()
	bad.Workers = -1
	if _, err := CompressChunkedTo(&buf, f, bad, 4); !errors.Is(err, ErrOptions) {
		t.Fatalf("negative workers: %v", err)
	}
}

// TestGzipBlockRoundTrip runs the full pipeline with the block-parallel
// DEFLATE stage and checks the stream decompresses identically to the
// serial stage's reconstruction, for both framings.
func TestGzipBlockRoundTrip(t *testing.T) {
	f := smooth3D(64, 32, 2, 11)
	serialOpts := DefaultOptions()
	serial, err := Compress(f, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	wantField, err := Decompress(serial.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []gzipio.Format{gzipio.FormatGzip, gzipio.FormatZlib} {
		for _, workers := range []int{0, 1, 3} {
			opts := DefaultOptions()
			opts.GzipFormat = format
			opts.GzipBlock = 4 << 10 // small blocks so multiple members exist
			opts.Workers = workers
			res, err := Compress(f, opts)
			if err != nil {
				t.Fatalf("%v workers %d: %v", format, workers, err)
			}
			g, err := Decompress(res.Data)
			if err != nil {
				t.Fatalf("%v workers %d: decompress: %v", format, workers, err)
			}
			if !bytes.Equal(floatBytes(g.Data()), floatBytes(wantField.Data())) {
				t.Errorf("%v workers %d: reconstruction differs from serial-stage pipeline", format, workers)
			}
			s, _ := stats.Compare(f.Data(), g.Data())
			if s.AvgPct > 1 {
				t.Errorf("%v workers %d: avg error %.4f%%", format, workers, s.AvgPct)
			}
		}
	}
}

// TestGzipBlockByteStableAcrossWorkers pins stage-4 determinism end to
// end: the full compressed stream must not depend on the worker count.
func TestGzipBlockByteStableAcrossWorkers(t *testing.T) {
	f := smooth3D(64, 32, 2, 13)
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		opts := DefaultOptions()
		opts.GzipBlock = 8 << 10
		opts.Workers = workers
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if want == nil {
			want = res.Data
		} else if !bytes.Equal(res.Data, want) {
			t.Fatalf("workers %d: stream differs from workers 1", workers)
		}
	}
}

func TestGzipBlockValidation(t *testing.T) {
	f := smooth3D(8, 4, 2, 3)
	opts := DefaultOptions()
	opts.GzipBlock = -1
	if _, err := Compress(f, opts); !errors.Is(err, ErrOptions) {
		t.Fatalf("negative block: %v", err)
	}
	opts = DefaultOptions()
	opts.GzipBlock = 1 << 20
	opts.GzipMode = gzipio.TempFile
	if _, err := Compress(f, opts); !errors.Is(err, ErrOptions) {
		t.Fatalf("temp-file mode with block: %v", err)
	}
}
