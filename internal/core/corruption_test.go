package core

import (
	"testing"

	"lossyckpt/internal/grid"
)

// compressedSample builds one valid compressed stream (gzip-wrapped
// container) for corruption sweeps.
func compressedSample(t *testing.T, chunk int) []byte {
	t.Helper()
	f := grid.MustNew(48, 30, 2)
	for i := range f.Data() {
		f.Data()[i] = 300 + float64(i%113)
	}
	opts := DefaultOptions()
	opts.Workers = 1
	if chunk > 0 {
		res, err := CompressChunkedParallel(f, opts, chunk)
		if err != nil {
			t.Fatal(err)
		}
		return res.Data
	}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Data
}

// TestDecompressCorruptionSweep truncates and bit-flips whole-array and
// chunked streams. Every truncation must error. A bit flip must either
// error (gzip CRC, container CRC, or framing) or — when it lands in
// dead stream metadata like a gzip MTIME byte — decode to bit-identical
// output. Silent different output or a panic is the failure.
func TestDecompressCorruptionSweep(t *testing.T) {
	for _, tc := range []struct {
		name  string
		chunk int
	}{
		{"whole", 0},
		{"chunked", 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := compressedSample(t, tc.chunk)
			ref, err := DecompressAnyParallel(data, 1)
			if err != nil {
				t.Fatalf("intact stream failed: %v", err)
			}
			step := len(data)/512 + 1

			for cut := 0; cut < len(data); cut += step {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("truncate %d: panic: %v", cut, r)
						}
					}()
					if _, err := DecompressAnyParallel(data[:cut], 1); err == nil {
						t.Fatalf("truncate %d: accepted", cut)
					}
				}()
			}
			for pos := 0; pos < len(data); pos += step {
				for bit := uint(0); bit < 8; bit += 3 {
					mut := append([]byte(nil), data...)
					mut[pos] ^= 1 << bit
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("flip byte %d bit %d: panic: %v", pos, bit, r)
							}
						}()
						got, err := DecompressAnyParallel(mut, 1)
						if err != nil {
							return // detected, good
						}
						for i, v := range got.Data() {
							if v != ref.Data()[i] {
								t.Fatalf("flip byte %d bit %d: silent corruption at element %d", pos, bit, i)
							}
						}
					}()
				}
			}
		})
	}
}

// TestChunkedShapePlausibilityCap forges a chunked header declaring an
// enormous array over a tiny input.
func TestChunkedShapePlausibilityCap(t *testing.T) {
	var hdr []byte
	hdr = append32(hdr, chunkedMagic)
	hdr = append16(hdr, chunkedVersion)
	hdr = append16(hdr, 3)
	for _, e := range []uint64{1 << 31, 1 << 20, 1 << 10} {
		var b [8]byte
		for i := range b {
			b[i] = byte(e >> (8 * i))
		}
		hdr = append(hdr, b[:]...)
	}
	hdr = append32(hdr, 1)
	if _, _, err := parseChunked(hdr); err == nil {
		t.Fatal("implausible chunked shape accepted")
	}
}
