package core

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"lossyckpt/internal/grid"
)

// smooth1D and smooth2D are lower-rank companions of smooth3D.
func smooth1D(n int, seed int64) *grid.Field {
	f := grid.MustNew(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		f.Set(100+10*math.Sin(2*math.Pi*float64(i)/float64(n))+0.01*rng.NormFloat64(), i)
	}
	return f
}

func smooth2D(nx, ny int, seed int64) *grid.Field {
	f := grid.MustNew(nx, ny)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := 500 +
				30*math.Sin(2*math.Pi*float64(i)/float64(nx)) +
				10*math.Cos(2*math.Pi*float64(j)/float64(ny)) +
				0.02*rng.NormFloat64()
			f.Set(v, i, j)
		}
	}
	return f
}

// parallelWorkerSweep is the worker-count matrix the determinism tests
// exercise: serial, two workers, and everything the machine has.
func parallelWorkerSweep() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// TestChunkedParallelByteIdentical is the engine's core guarantee: for any
// shape (1D/2D/3D, odd trailing slabs included) and any worker count, the
// parallel stream is byte-for-byte the serial CompressChunked stream.
func TestChunkedParallelByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		field *grid.Field
		chunk int
	}{
		{"1d-even", smooth1D(256, 41), 64},
		{"1d-odd-tail", smooth1D(250, 42), 64},
		{"2d-odd-tail", smooth2D(67, 9, 43), 16},
		{"3d-even", smooth3D(128, 20, 2, 44), 32},
		{"3d-odd-tail", smooth3D(130, 20, 2, 45), 16},
		{"3d-single-chunk", smooth3D(33, 8, 2, 46), 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.field
			serial, err := CompressChunked(f, DefaultOptions(), tc.chunk)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range parallelWorkerSweep() {
				opts := DefaultOptions()
				opts.Workers = workers
				par, err := CompressChunkedParallel(f, opts, tc.chunk)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(serial.Data, par.Data) {
					t.Fatalf("workers=%d: parallel stream differs from serial (%d vs %d bytes)",
						workers, len(par.Data), len(serial.Data))
				}
				if par.Chunks != serial.Chunks {
					t.Errorf("workers=%d: %d chunks, serial had %d", workers, par.Chunks, serial.Chunks)
				}
				if par.CompressedBytes != serial.CompressedBytes {
					t.Errorf("workers=%d: compressed bytes %d vs %d", workers, par.CompressedBytes, serial.CompressedBytes)
				}
			}
		})
	}
}

// TestDecompressChunkedParallelMatchesSerial checks the decode side: the
// parallel decoder reconstructs bit-identical fields for every worker
// count, including via the sniffing DecompressAnyParallel entry point.
func TestDecompressChunkedParallelMatchesSerial(t *testing.T) {
	f := smooth3D(130, 20, 2, 47)
	res, err := CompressChunked(f, DefaultOptions(), 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecompressChunked(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range parallelWorkerSweep() {
		got, err := DecompressChunkedParallel(res.Data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !want.Equal(got) {
			t.Fatalf("workers=%d: parallel reconstruction differs", workers)
		}
		got, err = DecompressAnyParallel(res.Data, workers)
		if err != nil {
			t.Fatalf("any workers=%d: %v", workers, err)
		}
		if !want.Equal(got) {
			t.Fatalf("any workers=%d: reconstruction differs", workers)
		}
	}
	// DecompressAnyParallel must also handle plain (unchunked) streams.
	plain, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantPlain, err := Decompress(plain.Data)
	if err != nil {
		t.Fatal(err)
	}
	gotPlain, err := DecompressAnyParallel(plain.Data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !wantPlain.Equal(gotPlain) {
		t.Fatal("plain-stream parallel reconstruction differs")
	}
}

// TestChunkedParallelTimings checks the new Total/CPUTotal split: CPUTotal
// sums per-chunk work, Total is wall clock, and both are positive.
func TestChunkedParallelTimings(t *testing.T) {
	f := smooth3D(128, 20, 2, 48)
	opts := DefaultOptions()
	opts.Workers = 2
	res, err := CompressChunkedParallel(f, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Total <= 0 {
		t.Errorf("wall Total %v not positive", res.Timings.Total)
	}
	if res.Timings.CPUTotal <= 0 {
		t.Errorf("CPUTotal %v not positive", res.Timings.CPUTotal)
	}
	if res.Workers != 2 {
		t.Errorf("Workers %d, want 2", res.Workers)
	}
	phases := res.Timings.Wavelet + res.Timings.Quantize + res.Timings.Encode +
		res.Timings.Format + res.Timings.TempWrite + res.Timings.Gzip
	if phases > res.Timings.CPUTotal {
		t.Errorf("summed phases %v exceed CPUTotal %v", phases, res.Timings.CPUTotal)
	}
	// Serial path: CPUTotal is the per-chunk sum and the wall clock covers
	// it, so Total >= CPUTotal cannot be asserted strictly (framing rides
	// on top) — but both must still be positive and Workers must be 1.
	sres, err := CompressChunked(f, DefaultOptions(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Workers != 1 {
		t.Errorf("serial Workers %d, want 1", sres.Workers)
	}
	if sres.Timings.Total < sres.Timings.CPUTotal {
		t.Errorf("serial wall Total %v below CPUTotal %v", sres.Timings.Total, sres.Timings.CPUTotal)
	}
}

// TestTimingsOtherClampedUnderParallel pins down the Other() contract for
// chunked-parallel runs: the named phases aggregate per-worker CPU time and
// can exceed the wall-clock Total, in which case the unattributed remainder
// clamps to zero instead of going negative.
func TestTimingsOtherClampedUnderParallel(t *testing.T) {
	// Deterministic clamp check: phase CPU sum far above wall Total.
	over := Timings{
		Total:   10 * time.Millisecond,
		Wavelet: 30 * time.Millisecond,
		Gzip:    15 * time.Millisecond,
	}
	if got := over.Other(); got != 0 {
		t.Errorf("CPU-heavy Timings.Other() = %v, want clamp to 0", got)
	}
	// And the normal case still attributes the remainder.
	under := Timings{Total: 10 * time.Millisecond, Wavelet: 4 * time.Millisecond}
	if got := under.Other(); got != 6*time.Millisecond {
		t.Errorf("Timings.Other() = %v, want 6ms", got)
	}

	// Live chunked-parallel runs must never surface a negative remainder,
	// whatever the scheduler does.
	f := smooth3D(128, 20, 2, 51)
	for _, workers := range parallelWorkerSweep() {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := CompressChunkedParallel(f, opts, 16)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := res.Timings.Other(); got < 0 {
			t.Errorf("workers=%d: Other() = %v, want >= 0", workers, got)
		}
	}
}

// TestCompressWorkersOptionValidation rejects negative worker counts.
func TestCompressWorkersOptionValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 49)
	opts := DefaultOptions()
	opts.Workers = -1
	if _, err := Compress(f, opts); err == nil {
		t.Error("negative Workers accepted by Compress")
	}
	if _, err := CompressChunkedParallel(f, opts, 8); err == nil {
		t.Error("negative Workers accepted by CompressChunkedParallel")
	}
}

// TestCompressWorkersByteIdentical: the Workers option must never change
// the single-array stream either (the wavelet sharding is bit-exact).
func TestCompressWorkersByteIdentical(t *testing.T) {
	f := smooth3D(256, 40, 2, 50) // big enough to cross the wavelet parallel cutoff
	var base []byte
	for _, workers := range parallelWorkerSweep() {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res.Data
			continue
		}
		if !bytes.Equal(base, res.Data) {
			t.Fatalf("workers=%d: stream differs from workers=1", workers)
		}
	}
}
