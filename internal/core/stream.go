package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/grid"
)

// stream.go is the streaming half of the chunked engine. CompressChunked
// and CompressChunkedParallel buffer the whole framed stream before the
// caller sees a byte, so a checkpoint holds O(payload) extra memory and
// store I/O cannot start until the last chunk finishes. CompressChunkedTo
// instead runs a bounded pipeline: slabs flow from the compression workers
// through per-chunk hand-off slots into a single ordered writer that
// streams frames straight into w. A token bucket caps the compressed
// chunks in flight at workers+1, so peak extra memory is
// O(workers × chunk) and the writer's I/O overlaps the workers' compute.
// The bytes written are identical to CompressChunked's buffered stream for
// every worker count.

// chunkSlot is one compressed chunk handed from a worker to the ordered
// writer.
type chunkSlot struct {
	res *Result
	err error
}

// CompressChunkedTo is CompressChunked writing the framed stream to w as
// chunks complete instead of buffering it. opts.Workers sets the
// compression pool size (0 = GOMAXPROCS); chunks are written strictly in
// order, so the stream is byte-identical to CompressChunked's for the same
// field, options and chunk extent. The returned result carries the full
// accounting with Data nil and StreamBytes set to the bytes written.
//
// On error the stream written so far is abandoned mid-frame; callers that
// need atomicity must write through a staged destination (the store's
// temp-file commit path does exactly that).
func CompressChunkedTo(w io.Writer, f *grid.Field, opts Options, chunkExtent int) (*ChunkedResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if chunkExtent < 1 {
		return nil, fmt.Errorf("%w: chunk extent %d", ErrOptions, chunkExtent)
	}
	wall := time.Now()
	shape := f.Shape()
	planeElems := f.Len() / shape[0]
	nChunks := (shape[0] + chunkExtent - 1) / chunkExtent
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	// As in CompressChunkedParallel: chunk-level parallelism saturates the
	// pool, so per-chunk pipelines run serially and operation-level metrics
	// are recorded once for the whole compression.
	chunkOpts := opts
	chunkOpts.chunkInternal = true
	if workers > 1 {
		chunkOpts.Workers = 1
	}

	obsr := opts.observer()
	res := &ChunkedResult{RawBytes: f.Bytes(), Workers: workers}

	// Workers acquire a token before compressing a chunk; the writer
	// releases it once that chunk's bytes are on the wire. That caps
	// compressed-but-unwritten chunks at workers+1, the pipeline's memory
	// bound. done unblocks token-waiting workers when the writer bails out
	// early.
	slots := make([]chan chunkSlot, nChunks)
	for c := range slots {
		slots[c] = make(chan chunkSlot, 1)
	}
	tokens := make(chan struct{}, workers+1)
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				select {
				case tokens <- struct{}{}:
				case <-done:
					return
				}
				start := c * chunkExtent
				ext := chunkExtent
				if rem := shape[0] - start; rem < ext {
					ext = rem
				}
				slab, err := slabAt(f, shape, planeElems, start, ext)
				var cres *Result
				if err == nil {
					cres, err = Compress(slab, chunkOpts)
					if err != nil {
						err = fmt.Errorf("core: chunk at plane %d: %w", start, err)
					}
				}
				// The slot is buffered, so the send never blocks and a
				// departed writer cannot strand the worker.
				slots[c] <- chunkSlot{res: cres, err: err}
			}
		}()
	}
	defer func() {
		close(done)
		wg.Wait()
	}()

	var stall, writeTime time.Duration
	write := func(p []byte) error {
		t0 := time.Now()
		_, err := w.Write(p)
		writeTime += time.Since(t0)
		res.StreamBytes += len(p)
		return err
	}
	if err := write(chunkedHeader(shape, nChunks)); err != nil {
		return nil, fmt.Errorf("core: stream header: %w", err)
	}
	for c := 0; c < nChunks; c++ {
		t0 := time.Now()
		s := <-slots[c]
		stall += time.Since(t0)
		if obsr != nil {
			obsr.Gauge(MetricStreamInflight).Set(float64(len(tokens)))
		}
		if s.err != nil {
			return nil, s.err
		}
		ext := chunkExtent
		if rem := shape[0] - c*chunkExtent; rem < ext {
			ext = rem
		}
		var frame [12]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(ext))
		binary.LittleEndian.PutUint64(frame[4:], uint64(len(s.res.Data)))
		if err := write(frame[:]); err != nil {
			return nil, fmt.Errorf("core: stream chunk %d frame: %w", c, err)
		}
		if err := write(s.res.Data); err != nil {
			return nil, fmt.Errorf("core: stream chunk %d payload: %w", c, err)
		}
		res.addChunk(s.res)
		<-tokens
	}
	res.Timings.Total = time.Since(wall)
	if obsr != nil {
		obsr.Counter(MetricStreamStallSeconds).Add(stall.Seconds())
		obsr.Counter(MetricStreamWriteSeconds).Add(writeTime.Seconds())
		obsr.Gauge(MetricStreamInflight).Set(0)
	}
	recordChunkedCompress(opts, res)
	return res, nil
}
