package core

import (
	"bytes"
	"testing"

	"lossyckpt/internal/entropy"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
)

// entropyVariants are the non-default stage-4 selections under test.
func entropyVariants() []Options {
	lz4 := DefaultOptions()
	lz4.EntropyCodec = entropy.LZ4
	lz4s := lz4
	lz4s.Shuffle = true
	gzs := DefaultOptions()
	gzs.Shuffle = true
	gzsBlock := gzs
	gzsBlock.GzipBlock = 64 * 1024
	return []Options{lz4, lz4s, gzs, gzsBlock}
}

// TestEntropyCodecRoundTrip: every codec selection reconstructs the
// exact same field as the default gzip path — the lossy stages are
// deterministic, so only the entropy framing may differ.
func TestEntropyCodecRoundTrip(t *testing.T) {
	f := smooth3D(64, 32, 4, 5)
	ref, err := Compress(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refField, err := Decompress(ref.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range entropyVariants() {
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatalf("%s shuffle=%v: %v", opts.EntropyCodec, opts.Shuffle, err)
		}
		if bytes.HasPrefix(res.Data, []byte{0x1f, 0x8b}) {
			t.Fatalf("%s shuffle=%v: non-default selection produced a bare gzip stream", opts.EntropyCodec, opts.Shuffle)
		}
		for name, dec := range map[string]func([]byte) (interface{ Data() []float64 }, error){
			"Decompress":    func(d []byte) (interface{ Data() []float64 }, error) { return Decompress(d) },
			"DecompressAny": func(d []byte) (interface{ Data() []float64 }, error) { return DecompressAny(d) },
			"AnyParallel":   func(d []byte) (interface{ Data() []float64 }, error) { return DecompressAnyParallel(d, 2) },
		} {
			g, err := dec(res.Data)
			if err != nil {
				t.Fatalf("%s shuffle=%v via %s: %v", opts.EntropyCodec, opts.Shuffle, name, err)
			}
			got, want := g.Data(), refField.Data()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s shuffle=%v via %s: value %d differs from gzip-path reconstruction", opts.EntropyCodec, opts.Shuffle, name, i)
				}
			}
		}
	}
}

// TestLegacyGzipPayloadBackCompat is the PR's backward-compat guarantee
// (satellite 1): streams produced by the default configuration are the
// pre-PR-6 format — a bare DEFLATE stream with no entropy envelope —
// and every decode entry point consumes them bit-exactly.
func TestLegacyGzipPayloadBackCompat(t *testing.T) {
	f := smooth3D(48, 24, 2, 9)
	legacy := []Options{DefaultOptions()}
	zl := DefaultOptions()
	zl.GzipFormat = gzipio.FormatZlib
	mm := DefaultOptions()
	mm.GzipBlock = 32 * 1024 // multi-member parallel stream, still legacy framing
	legacy = append(legacy, zl, mm)

	for _, opts := range legacy {
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The legacy framing: raw gzip or zlib magic, never the envelope.
		if bytes.HasPrefix(res.Data, []byte("LKE1")) {
			t.Fatalf("%v: default-path stream grew an envelope", opts.GzipFormat)
		}
		wantMagic := res.Data[0] == 0x1f || res.Data[0] == 0x78
		if !wantMagic {
			t.Fatalf("%v: stream does not start with a DEFLATE magic byte (%#x)", opts.GzipFormat, res.Data[0])
		}
		// The formatted container must be recoverable by the pre-PR-6
		// decoder chain (gzipio alone), proving the bytes are the old format.
		if _, err := gzipio.DecompressMembersParallel(res.Data, 2); err != nil {
			t.Fatalf("%v: pre-PR-6 DEFLATE decoder rejects the default-path stream: %v", opts.GzipFormat, err)
		}
		g1, err := Decompress(res.Data)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := DecompressAnyParallel(res.Data, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range g1.Data() {
			if g2.Data()[i] != v {
				t.Fatalf("decode entry points disagree at %d", i)
			}
		}
	}
}

// TestEntropyChunkedRoundTrip runs the chunked (framed) paths with a
// non-default codec: each chunk payload carries its own envelope inside
// the unchanged LKCC framing.
func TestEntropyChunkedRoundTrip(t *testing.T) {
	f := smooth3D(64, 16, 4, 11)
	opts := DefaultOptions()
	opts.EntropyCodec = entropy.LZ4
	opts.Shuffle = true

	cres, err := CompressChunked(f, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressAny(cres.Data)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := CompressChunkedTo(&buf, f, opts, 16); err != nil {
		t.Fatal(err)
	}
	gs, err := DecompressAnyParallel(buf.Bytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data() {
		if gs.Data()[i] != v {
			t.Fatalf("buffered and streaming chunked reconstructions disagree at %d", i)
		}
	}
}

// TestEntropyOptionValidation pins the unsupported combinations.
func TestEntropyOptionValidation(t *testing.T) {
	f := smooth3D(16, 8, 2, 1)

	bad := DefaultOptions()
	bad.EntropyCodec = entropy.LZ4
	bad.GzipBlock = 1024
	if _, err := Compress(f, bad); err == nil {
		t.Error("lz4 + gzip block accepted")
	}

	bad = DefaultOptions()
	bad.Shuffle = true
	bad.GzipMode = gzipio.TempFile
	if _, err := Compress(f, bad); err == nil {
		t.Error("shuffle + temp-file mode accepted")
	}

	bad = DefaultOptions()
	bad.EntropyCodec = entropy.ID(77)
	if _, err := Compress(f, bad); err == nil {
		t.Error("unknown codec ID accepted")
	}
}

// TestEntropySelectionMetric checks the codec-selection counter fires
// once per top-level compression, labeled with codec and variable.
func TestEntropySelectionMetric(t *testing.T) {
	f := smooth3D(32, 16, 2, 3)
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.EntropyCodec = entropy.LZ4
	opts.Shuffle = true
	opts.VarName = "temperature"
	opts.Observer = reg
	if _, err := Compress(f, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressChunked(f, opts, 8); err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == entropy.MetricCodecSelected &&
			m.Labels["codec"] == "lz4+shuffle" && m.Labels["var"] == "temperature" {
			got = m.Value
		}
	}
	if got != 2 {
		t.Fatalf("selection counter = %v, want 2 (one single + one chunked)", got)
	}
}

// TestGzipOnlyEntropyAware: the lossless baseline round-trips through
// the entropy-aware DecompressGzipOnly.
func TestGzipOnlyEntropyAware(t *testing.T) {
	f := smooth3D(16, 8, 4, 7)
	res, err := CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecompressGzipOnly(res.Data, f.Shape()...)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Data() {
		if g.Data()[i] != v {
			t.Fatalf("gzip-only round trip not bit-exact at %d", i)
		}
	}
}
