package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// Errors returned by the manager.
var (
	// ErrRegistered indicates a duplicate or invalid registration.
	ErrRegistered = errors.New("ckpt: registration error")
	// ErrFormat indicates a malformed checkpoint stream.
	ErrFormat = errors.New("ckpt: malformed checkpoint stream")
	// ErrMismatch indicates a checkpoint incompatible with the registered
	// state (different codec, variables or shapes).
	ErrMismatch = errors.New("ckpt: checkpoint does not match registered state")
)

const (
	fileMagic = 0x54504B43 // "CKPT"
	// fileVersion is the buffered stream layout Checkpoint writes: every
	// entry is one length-prefixed frame with its CRC up front.
	fileVersion = 1
	// fileVersionStream is the streaming layout CheckpointStream writes:
	// entries carry their payload in bounded segments with length and CRC
	// trailing, so the writer never buffers a whole payload. Readers
	// accept both versions.
	fileVersionStream = 2
	maxNameLen        = 4096
	// maxVars bounds the header-declared variable count so a corrupt
	// header cannot drive an unbounded parse loop.
	maxVars = 1 << 20
	// maxPayloadLen bounds any single entry payload (1 TiB) — a second
	// line of defense behind the remaining-input checks.
	maxPayloadLen = 1 << 40
)

// Manager registers an application's state arrays and writes/reads framed
// checkpoint streams. A Manager is not safe for concurrent use; the
// internal per-array compression is parallel but externally synchronous.
type Manager struct {
	codec   Codec
	workers int
	names   []string
	fields  map[string]*grid.Field
	// obsr receives checkpoint/restore telemetry (see observe.go); nil
	// falls back to the process default registry at record time.
	obsr *obs.Registry
	// quality enables per-variable reconstruction-quality gauges for
	// lossy codecs (opt-in: it costs a decode round-trip per entry).
	quality bool
	// jrnl receives flight-recorder wide events (see journal.go); only
	// consulted when jrnlSet, otherwise the process default applies.
	jrnl    *journal.Journal
	jrnlSet bool
	// curOp is the wide event a wrapping operation (CheckpointTo,
	// RestoreLatest) already opened: the inner Checkpoint/Restore call
	// enriches it instead of opening its own. A Manager is documented
	// as not safe for concurrent use, so a plain field suffices.
	curOp *journal.Op
	// delta, when non-nil, carries per-variable fingerprints and cached
	// encodings between checkpoints (see delta.go). nil = delta off.
	delta map[string]*varDelta
}

// NewManager returns a manager using the given codec. workers bounds the
// parallel per-array compression; 0 means GOMAXPROCS.
func NewManager(codec Codec, workers int) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Manager{
		codec:   codec,
		workers: workers,
		fields:  make(map[string]*grid.Field),
	}
}

// Register adds a named array to the checkpointed state. The manager keeps
// a reference: Checkpoint reads the live data, Restore overwrites it.
func (m *Manager) Register(name string, f *grid.Field) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("%w: invalid name %q", ErrRegistered, name)
	}
	if f == nil {
		return fmt.Errorf("%w: nil field for %q", ErrRegistered, name)
	}
	if _, dup := m.fields[name]; dup {
		return fmt.Errorf("%w: duplicate name %q", ErrRegistered, name)
	}
	m.names = append(m.names, name)
	m.fields[name] = f
	return nil
}

// RegisterAll registers a list of named fields, failing on the first error.
func (m *Manager) RegisterAll(fields []struct {
	Name  string
	Field *grid.Field
}) error {
	for _, nf := range fields {
		if err := m.Register(nf.Name, nf.Field); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the registered variable names in registration order.
func (m *Manager) Names() []string { return append([]string(nil), m.names...) }

// EntryReport is the per-array accounting of one checkpoint.
type EntryReport struct {
	Name            string
	RawBytes        int
	CompressedBytes int
	Timings         core.Timings
	// Guarantee is the quality annotation the entry carries (guard codec
	// only; nil otherwise). On checkpoint it is the guarantee just
	// established; on restore it is parsed back off the payload envelope
	// so callers can report what the generation actually promised.
	Guarantee *guard.Annotation
	// Reused marks an entry served whole from the delta cache; SlabsReused
	// counts slab-level reuse under the chunked lossy delta path.
	Reused      bool
	SlabsReused int
}

// Report aggregates one Checkpoint or Restore.
type Report struct {
	Codec   string
	Entries []EntryReport
	// RawBytes and CompressedBytes sum over all entries (payload only,
	// excluding framing).
	RawBytes        int
	CompressedBytes int
	// FileBytes is the full framed stream size (Checkpoint only).
	FileBytes int
	// Wall is the total wall-clock duration of the operation.
	Wall time.Duration
	// Step is the application step counter stored in the stream.
	Step int
	// Delta-mode reuse accounting (zero when delta is off): entries served
	// whole from cache, and slabs reused vs freshly compressed under the
	// chunked lossy path.
	ReusedEntries        int
	DeltaSlabsReused     int
	DeltaSlabsCompressed int
}

// CompressionRatePct returns the aggregate cr (Eq. 5) in percent.
func (r *Report) CompressionRatePct() float64 {
	if r.RawBytes == 0 {
		return math.NaN()
	}
	return 100 * float64(r.CompressedBytes) / float64(r.RawBytes)
}

// AggregateTimings sums the per-entry phase breakdowns.
func (r *Report) AggregateTimings() core.Timings {
	var t core.Timings
	for _, e := range r.Entries {
		t.Wavelet += e.Timings.Wavelet
		t.Quantize += e.Timings.Quantize
		t.Encode += e.Timings.Encode
		t.Format += e.Timings.Format
		t.TempWrite += e.Timings.TempWrite
		t.Gzip += e.Timings.Gzip
		t.Total += e.Timings.Total
	}
	return t
}

// Checkpoint compresses every registered array (in parallel, bounded by the
// worker count) and writes one framed checkpoint stream to w. step is an
// application-defined counter stored in the header (the paper restarts
// NICAM at step 720; the counter lets restore resume time-dependent
// forcing).
func (m *Manager) Checkpoint(w io.Writer, step int) (rep *Report, err error) {
	start := time.Now()
	if len(m.names) == 0 {
		return nil, fmt.Errorf("%w: no fields registered", ErrRegistered)
	}
	if step < 0 {
		return nil, fmt.Errorf("%w: negative step %d", ErrRegistered, step)
	}

	// Parallel encode, order-preserving.
	encoded := make([]*Encoded, len(m.names))
	if o := m.observer(); o != nil {
		sp := o.StartSpan(MetricCheckpointSpan, "codec", m.codec.Name(), "step", fmt.Sprint(step))
		defer func() {
			sp.EndErr(err)
			if err == nil {
				m.recordCheckpoint(o, rep, encoded)
			}
		}()
	}
	if op, owned := m.opFor("ckpt.checkpoint", "codec", m.codec.Name(), "mode", "buffered"); op != nil {
		op.SetStep(step)
		defer func() {
			m.fillCheckpoint(op, rep, encoded)
			if owned {
				op.End(err)
			}
		}()
	}
	errs := make([]error, len(m.names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, m.workers)
	named, _ := m.codec.(NamedEncoder)
	deltas := m.deltaFor()
	de, _ := m.codec.(DeltaEncoder)
	for i, name := range m.names {
		wg.Add(1)
		go func(i int, name string, f *grid.Field) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			switch {
			case deltas != nil:
				encoded[i], errs[i] = m.encodeDelta(name, f, deltas[name], de)
			case named != nil:
				encoded[i], errs[i] = named.EncodeNamed(name, f)
			default:
				encoded[i], errs[i] = m.codec.Encode(f)
			}
		}(i, name, m.fields[name])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ckpt: encoding %q: %w", m.names[i], err)
		}
	}

	// Frame and write.
	var buf bytes.Buffer
	writeU32(&buf, fileMagic)
	writeU16(&buf, fileVersion)
	writeString(&buf, m.codec.Name())
	writeU64(&buf, uint64(step))
	writeU32(&buf, uint32(len(m.names)))

	rep = &Report{Codec: m.codec.Name(), Step: step}
	for i, name := range m.names {
		f := m.fields[name]
		var entry bytes.Buffer
		writeString(&entry, name)
		writeU16(&entry, uint16(f.Dims()))
		for _, e := range f.Shape() {
			writeU64(&entry, uint64(e))
		}
		writeU64(&entry, uint64(len(encoded[i].Payload)))
		entry.Write(encoded[i].Payload)
		writeU32(&buf, crc32.ChecksumIEEE(entry.Bytes()))
		writeU64(&buf, uint64(entry.Len()))
		buf.Write(entry.Bytes())

		rep.Entries = append(rep.Entries, EntryReport{
			Name:            name,
			RawBytes:        encoded[i].RawBytes,
			CompressedBytes: len(encoded[i].Payload),
			Timings:         encoded[i].Timings,
			Guarantee:       encoded[i].Guarantee,
			Reused:          encoded[i].Reused,
			SlabsReused:     encoded[i].SlabsReused,
		})
		rep.RawBytes += encoded[i].RawBytes
		rep.CompressedBytes += len(encoded[i].Payload)
		rep.addReuse(encoded[i])
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return nil, fmt.Errorf("ckpt: write: %w", err)
	}
	rep.FileBytes = buf.Len()
	rep.Wall = time.Since(start)
	return rep, nil
}

// streamHeader is the parsed fixed prefix of a checkpoint stream.
type streamHeader struct {
	Version int
	Codec   string
	Step    int
	Count   int
}

// readStreamHeader parses and validates the stream header. Every
// header-declared size is bounded before it can drive an allocation or
// a parse loop.
func readStreamHeader(br *byteReader) (*streamHeader, error) {
	if br.u32() != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	version := int(br.u16())
	if version != fileVersion && version != fileVersionStream {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, version)
	}
	codecName := br.str()
	step := br.u64()
	count := br.u32()
	if br.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, br.err)
	}
	if len(codecName) > maxNameLen {
		return nil, fmt.Errorf("%w: codec name %d bytes exceeds cap", ErrFormat, len(codecName))
	}
	if step > math.MaxInt64 {
		return nil, fmt.Errorf("%w: step %d out of range", ErrFormat, step)
	}
	if count > maxVars {
		return nil, fmt.Errorf("%w: %d variables exceeds cap", ErrFormat, count)
	}
	return &streamHeader{Version: version, Codec: codecName, Step: int(step), Count: int(count)}, nil
}

// errEntryDamaged marks an entry whose framing stayed intact but whose
// content failed verification (CRC mismatch, unparseable body): the scan
// can skip it and resume at the next entry. Entry errors NOT matching
// this sentinel mean the stream is torn at that point — nothing beyond is
// framed. It wraps ErrFormat, so errors.Is(err, ErrFormat) still holds.
var errEntryDamaged = fmt.Errorf("%w (damaged entry)", ErrFormat)

// readEntry reads entry i in the given stream-format version, unifying
// the v1 frame-per-entry and v2 segmented layouts behind one scanner.
// Damage comes back classified via errEntryDamaged (see above).
func readEntry(br *byteReader, version, i int) (*rawEntry, error) {
	if version >= fileVersionStream {
		return readEntryV2(br, i)
	}
	body, crcOK, err := readEntryFrame(br, i)
	if err != nil {
		return nil, err
	}
	if !crcOK {
		return nil, fmt.Errorf("%w: entry %d checksum mismatch", errEntryDamaged, i)
	}
	ent, err := parseEntryBody(body, i)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEntryDamaged, err)
	}
	return ent, nil
}

// rawEntry is one parsed checkpoint frame before decoding.
type rawEntry struct {
	Name    string
	Shape   []int
	Payload []byte
}

// readEntryFrame reads entry i's outer frame (CRC, length, body) and
// reports whether the CRC verifies. Framing damage — truncation or an
// implausible length — returns ErrFormat; a CRC mismatch on a intact
// frame comes back as crcOK=false with a nil error so partial recovery
// can skip the frame and keep resynchronizing on the outer framing.
func readEntryFrame(br *byteReader, i int) (body []byte, crcOK bool, err error) {
	wantCRC := br.u32()
	entryLen := br.u64()
	if br.err != nil {
		return nil, false, fmt.Errorf("%w: entry %d header: %v", ErrFormat, i, br.err)
	}
	if entryLen > maxPayloadLen {
		return nil, false, fmt.Errorf("%w: entry %d implausibly large (%d bytes)", ErrFormat, i, entryLen)
	}
	body, rerr := readExactly(br, entryLen)
	if rerr != nil {
		return nil, false, fmt.Errorf("%w: entry %d body: %v", ErrFormat, i, rerr)
	}
	return body, crc32.ChecksumIEEE(body) == wantCRC, nil
}

// parseEntryBody decodes one frame body into name, shape and payload.
// The declared name length, dimensionality, extents and payload length
// are all validated against their caps and against the bytes actually
// remaining, so corrupt metadata returns ErrFormat instead of
// attempting a huge allocation.
func parseEntryBody(body []byte, i int) (*rawEntry, error) {
	rd := bytes.NewReader(body)
	er := newByteReader(rd)
	name := er.str()
	if er.err == nil && len(name) > maxNameLen {
		return nil, fmt.Errorf("%w: entry %d name %d bytes exceeds cap", ErrFormat, i, len(name))
	}
	nd := int(er.u16())
	if er.err != nil || nd == 0 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: entry %d metadata", ErrFormat, i)
	}
	shape := make([]int, nd)
	for d := range shape {
		e := er.u64()
		if e == 0 || e > math.MaxInt32 {
			return nil, fmt.Errorf("%w: entry %d extent %d", ErrFormat, i, e)
		}
		shape[d] = int(e)
	}
	payloadLen := er.u64()
	if er.err != nil {
		return nil, fmt.Errorf("%w: entry %d payload length", ErrFormat, i)
	}
	if payloadLen > uint64(rd.Len()) {
		return nil, fmt.Errorf("%w: entry %d declares %d payload bytes, %d remain", ErrFormat, i, payloadLen, rd.Len())
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(er, payload); err != nil {
		return nil, fmt.Errorf("%w: entry %d payload: %v", ErrFormat, i, err)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("%w: entry %d has %d trailing bytes", ErrFormat, i, rd.Len())
	}
	return &rawEntry{Name: name, Shape: shape, Payload: payload}, nil
}

// applyEntry validates one parsed entry against the registration,
// decodes it, and copies the result into the registered field.
func (m *Manager) applyEntry(ent *rawEntry, seen map[string]bool, rep *Report) error {
	target, ok := m.fields[ent.Name]
	if !ok {
		return fmt.Errorf("%w: stream variable %q not registered", ErrMismatch, ent.Name)
	}
	if seen[ent.Name] {
		return fmt.Errorf("%w: duplicate variable %q", ErrFormat, ent.Name)
	}
	if target.Dims() != len(ent.Shape) {
		return fmt.Errorf("%w: %q is %d-D in stream, %d-D registered", ErrMismatch, ent.Name, len(ent.Shape), target.Dims())
	}
	for d, e := range ent.Shape {
		if target.Extent(d) != e {
			return fmt.Errorf("%w: %q shape %v in stream, %v registered", ErrMismatch, ent.Name, ent.Shape, target.Shape())
		}
	}
	decoded, err := m.codec.Decode(ent.Payload, ent.Shape)
	if err != nil {
		return fmt.Errorf("ckpt: decoding %q: %w", ent.Name, err)
	}
	seen[ent.Name] = true
	copy(target.Data(), decoded.Data())

	rep.Entries = append(rep.Entries, EntryReport{
		Name:            ent.Name,
		RawBytes:        target.Bytes(),
		CompressedBytes: len(ent.Payload),
		Guarantee:       entryGuarantee(ent.Payload),
	})
	rep.RawBytes += target.Bytes()
	rep.CompressedBytes += len(ent.Payload)
	return nil
}

// Restore reads a checkpoint stream and copies the decoded arrays into the
// registered fields in place. The stream's codec name must match the
// manager's codec, and every registered variable must be present with a
// matching shape. It returns the report and the stored step counter.
func (m *Manager) Restore(r io.Reader) (rep *Report, err error) {
	start := time.Now()
	// Even a failed restore may have overwritten some arrays; the delta
	// baseline no longer describes the live state either way.
	m.resetDelta()
	if o := m.observer(); o != nil {
		sp := o.StartSpan(MetricRestoreSpan, "codec", m.codec.Name(), "mode", "full")
		defer func() { sp.EndErr(err) }()
	}
	if op, owned := m.opFor("ckpt.restore", "codec", m.codec.Name(), "mode", "full"); op != nil {
		defer func() {
			fillRestore(op, rep, nil)
			if owned {
				op.End(err)
			}
		}()
	}
	br := newByteReader(r)
	hdr, err := readStreamHeader(br)
	if err != nil {
		return nil, err
	}
	if hdr.Codec != m.codec.Name() {
		return nil, fmt.Errorf("%w: stream codec %q, manager codec %q", ErrMismatch, hdr.Codec, m.codec.Name())
	}
	if hdr.Count != len(m.names) {
		return nil, fmt.Errorf("%w: stream has %d variables, %d registered", ErrMismatch, hdr.Count, len(m.names))
	}

	rep = &Report{Codec: hdr.Codec, Step: hdr.Step}
	seen := make(map[string]bool, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if err != nil {
			return nil, err
		}
		if err := m.applyEntry(ent, seen, rep); err != nil {
			return nil, err
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// RestorePartial reads a possibly torn or corrupted checkpoint stream
// and restores every registered array whose frame verifies: frames with
// failing CRCs or unparseable bodies are skipped (the outer framing
// keeps the parse resynchronized), and a torn tail ends the scan. It
// returns the report of what was restored plus the names of registered
// variables that were not. The header itself must be intact; with it
// gone there is nothing to verify against. Arrays restore in stream
// order, so on error the registered state may hold a mix of restored
// and untouched arrays — callers decide whether a partial state is
// usable.
func (m *Manager) RestorePartial(r io.Reader) (rep *Report, skipped []string, err error) {
	start := time.Now()
	m.resetDelta()
	if o := m.observer(); o != nil {
		sp := o.StartSpan(MetricRestoreSpan, "codec", m.codec.Name(), "mode", "partial")
		defer func() {
			sp.EndErr(err)
			if err == nil {
				m.recordRestore(o, rep, skipped, true)
			}
		}()
	}
	if op, owned := m.opFor("ckpt.restore", "codec", m.codec.Name(), "mode", "partial"); op != nil {
		defer func() {
			fillRestore(op, rep, skipped)
			if owned {
				op.End(err)
			}
		}()
	}
	br := newByteReader(r)
	hdr, err := readStreamHeader(br)
	if err != nil {
		return nil, nil, err
	}
	if hdr.Codec != m.codec.Name() {
		return nil, nil, fmt.Errorf("%w: stream codec %q, manager codec %q", ErrMismatch, hdr.Codec, m.codec.Name())
	}

	rep = &Report{Codec: hdr.Codec, Step: hdr.Step}
	seen := make(map[string]bool, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if errors.Is(err, errEntryDamaged) {
			continue // damaged entry: skip, the framing keeps the scan aligned
		}
		if err != nil {
			break // torn tail: nothing beyond this point is framed
		}
		// Mismatched or duplicate entries are skipped rather than fatal:
		// partial recovery salvages what it can.
		_ = m.applyEntry(ent, seen, rep)
	}
	for _, name := range m.names {
		if !seen[name] {
			skipped = append(skipped, name)
		}
	}
	if len(rep.Entries) == 0 {
		return nil, skipped, fmt.Errorf("%w: no frame verified", ErrFormat)
	}
	rep.Wall = time.Since(start)
	return rep, skipped, nil
}

// --- binary helpers ---------------------------------------------------------

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeString(buf *bytes.Buffer, s string) {
	writeU16(buf, uint16(len(s)))
	buf.WriteString(s)
}

// readExactly reads exactly n bytes, growing the buffer in bounded chunks
// so a forged length field cannot force a huge allocation before the
// stream runs dry.
func readExactly(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, minU64(n, chunk))
	for uint64(len(out)) < n {
		take := minU64(n-uint64(len(out)), chunk)
		buf := make([]byte, take)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

type byteReader struct {
	r   io.Reader
	err error
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return nil
	}
	return buf
}

func (b *byteReader) u16() uint16 {
	d := b.take(2)
	if d == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(d)
}

func (b *byteReader) u32() uint32 {
	d := b.take(4)
	if d == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d)
}

func (b *byteReader) u64() uint64 {
	d := b.take(8)
	if d == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d)
}

func (b *byteReader) str() string {
	n := b.u16()
	if b.err != nil {
		return ""
	}
	d := b.take(int(n))
	return string(d)
}

// floatsToBytes serializes a float64 slice to little-endian bytes.
func floatsToBytes(fs []float64) []byte {
	out := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// bytesToFloatsInto fills dst from little-endian bytes.
func bytesToFloatsInto(b []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}
