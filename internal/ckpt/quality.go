// quality.go is the manager's opt-in bridge to the qa package: a
// round-trip quality assessment of every registered variable under the
// manager's own codec, without touching the registered data. This is
// how "assess what this checkpoint configuration would do to my state"
// plugs into the save path — callers run it beside (not inside) a
// checkpoint, so the hot path pays nothing.
package ckpt

import (
	"fmt"

	"lossyckpt/internal/qa"
)

// AssessQuality encodes and decodes every registered array with the
// manager's codec and returns one qa.Assessment per variable. The
// registered fields are not modified. opts zero-value gives the qa
// defaults. Lossless codecs yield all-zero error assessments — still
// useful as a sanity check that the round trip is exact.
func (m *Manager) AssessQuality(opts qa.Options) ([]*qa.Assessment, error) {
	out := make([]*qa.Assessment, 0, len(m.names))
	for _, name := range m.names {
		f := m.fields[name]
		enc, err := m.codec.Encode(f)
		if err != nil {
			return nil, fmt.Errorf("ckpt: quality encode %q: %w", name, err)
		}
		dec, err := m.codec.Decode(enc.Payload, f.Shape())
		if err != nil {
			return nil, fmt.Errorf("ckpt: quality decode %q: %w", name, err)
		}
		a, err := qa.Assess(name, f.Data(), dec.Data(), opts)
		if err != nil {
			return nil, fmt.Errorf("ckpt: quality assess %q: %w", name, err)
		}
		out = append(out, a)
	}
	return out, nil
}
