package ckpt

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

// TestCheckpointStreamToCtxCancelled: an already-dead request must not
// commit anything.
func TestCheckpointStreamToCtxCancelled(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := mgr.CheckpointStreamToCtx(ctx, st, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckpointStreamToCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if gens := st.Generations(); len(gens) != 0 {
		t.Fatalf("cancelled checkpoint committed %d generations", len(gens))
	}
}

// cancelAfterWriter cancels its context after n writes pass through.
type cancelAfterWriter struct {
	w      io.Writer
	cancel context.CancelFunc
	left   int
}

func (c *cancelAfterWriter) Write(p []byte) (int, error) {
	if c.left--; c.left == 0 {
		c.cancel()
	}
	return c.w.Write(p)
}

// TestCheckpointStreamCtxCancelledMidStream: cancellation during the
// stream stops production promptly with the context error, and the
// partial output is clearly an error (no report).
func TestCheckpointStreamCtxCancelledMidStream(t *testing.T) {
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfterWriter{w: io.Discard, cancel: cancel, left: 2}
	rep, err := mgr.CheckpointStreamCtx(ctx, sink, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("cancelled checkpoint returned a report: %+v", rep)
	}
}

// TestCheckpointStreamToCtxMidStreamNoLitter: a cancellation mid-commit
// aborts the store payload — no temp litter, previous latest intact.
func TestCheckpointStreamToCtxMidStreamNoLitter(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)
	if _, _, err := mgr.CheckpointStreamTo(st, 1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { // cancel as soon as the first bytes hit the store
		defer close(done)
		cancel()
	}()
	<-done
	_, _, err := mgr.CheckpointStreamToCtx(ctx, st, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled commit = %v, want context.Canceled", err)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("aborted commit left temp litter: %s", e.Name())
		}
	}
	gens := st.Generations()
	if len(gens) != 1 || gens[0].Seq != 1 {
		t.Fatalf("previous generation lost: %+v", gens)
	}
}

// TestLoadLatestCtxCancelled: a cancelled restore stops walking the
// retention ring.
func TestLoadLatestCtxCancelled(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)
	if _, _, err := mgr.CheckpointTo(st, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LoadLatestCtx(ctx, st, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("LoadLatestCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}
