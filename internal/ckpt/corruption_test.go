package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// checkpointStream builds one valid multi-array stream for corruption
// sweeps.
func checkpointStream(t *testing.T, codec Codec) ([]byte, *Manager) {
	t.Helper()
	mgr := NewManager(codec, 1)
	registerSample(t, mgr)
	var buf bytes.Buffer
	if _, err := mgr.Checkpoint(&buf, 11); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), mgr
}

// restoreMustFailCleanly asserts Restore rejects data with one of the
// package's typed errors — and, above all, does not panic.
func restoreMustFailCleanly(t *testing.T, mgr *Manager, data []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Restore panicked: %v", what, r)
		}
	}()
	_, err := mgr.Restore(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("%s: Restore accepted corrupt input", what)
	}
	if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrMismatch) && !errors.Is(err, ErrCodec) {
		t.Fatalf("%s: Restore returned untyped error %v", what, err)
	}
}

// TestRestoreTruncationSweep feeds every prefix of a valid stream (in
// byte steps near boundaries, coarser inside payloads) into Restore.
func TestRestoreTruncationSweep(t *testing.T) {
	for _, codecName := range []string{"none", "gzip"} {
		codec, err := CodecByName(codecName)
		if err != nil {
			t.Fatal(err)
		}
		data, mgr := checkpointStream(t, codec)
		step := 1
		if len(data) > 4096 {
			step = len(data) / 4096
		}
		for cut := 0; cut < len(data); cut += step {
			restoreMustFailCleanly(t, mgr, data[:cut], codecName)
		}
		// And the exact stream still restores (sweep sanity).
		if _, err := mgr.Restore(bytes.NewReader(data)); err != nil {
			t.Fatalf("%s: intact stream failed: %v", codecName, err)
		}
	}
}

// TestRestoreBitFlipSweep flips single bits across the stream — dense
// over the header and frame metadata, sampled inside payloads — and
// requires a typed error (or, for payload bits, either an error or a
// detected CRC mismatch; silence is the only failure).
func TestRestoreBitFlipSweep(t *testing.T) {
	data, mgr := checkpointStream(t, None{})
	// The header's step counter is plain data with no stream-level CRC
	// (the store's whole-file CRC covers it); a flip there is accepted
	// by Restore, so the sweep skips those eight bytes.
	stepOff := 4 + 2 + 2 + len("none")
	inStep := func(i int) bool { return i >= stepOff && i < stepOff+8 }
	positions := make([]int, 0, 512)
	for i := 0; i < len(data) && i < 64; i++ {
		positions = append(positions, i) // dense: header + first frame header
	}
	for i := 64; i < len(data); i += len(data)/256 + 1 {
		positions = append(positions, i)
	}
	positions = append(positions, len(data)-1)
	for _, pos := range positions {
		if inStep(pos) {
			continue
		}
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("bit %d of byte %d: panic: %v", bit, pos, r)
					}
				}()
				if _, err := mgr.Restore(bytes.NewReader(mut)); err == nil {
					t.Fatalf("bit %d of byte %d: flip accepted silently", bit, pos)
				} else if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrMismatch) && !errors.Is(err, ErrCodec) {
					t.Fatalf("bit %d of byte %d: untyped error %v", bit, pos, err)
				}
			}()
		}
	}
}

// TestRestorePartialNeverPanics runs the same sweeps through the
// lenient path: RestorePartial may succeed or fail, but must not panic
// and must never report arrays it did not verify.
func TestRestorePartialNeverPanics(t *testing.T) {
	data, mgr := checkpointStream(t, None{})
	step := len(data)/512 + 1
	for cut := 0; cut < len(data); cut += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			rep, _, err := mgr.RestorePartial(bytes.NewReader(data[:cut]))
			if err == nil && len(rep.Entries) == 0 {
				t.Fatalf("cut %d: success with zero entries", cut)
			}
		}()
	}
	for pos := 0; pos < len(data); pos += step {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip %d: panic: %v", pos, r)
				}
			}()
			_, _, _ = mgr.RestorePartial(bytes.NewReader(mut))
		}()
	}
}

// TestHeaderDeclaredSizeCaps forges headers that declare absurd sizes
// and checks they are rejected before any large allocation could
// happen (the test would OOM otherwise).
func TestHeaderDeclaredSizeCaps(t *testing.T) {
	data, mgr := checkpointStream(t, None{})

	// Variable count beyond cap.
	mut := append([]byte(nil), data...)
	// Header: magic(4) version(2) str(2+len) step(8) count(4).
	codecLen := int(uint16(mut[6]) | uint16(mut[7])<<8)
	countOff := 4 + 2 + 2 + codecLen + 8
	for i := 0; i < 4; i++ {
		mut[countOff+i] = 0xFF
	}
	if _, err := mgr.Restore(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) && !errors.Is(err, ErrMismatch) {
		t.Fatalf("absurd variable count: %v", err)
	}

	// Entry length beyond cap.
	mut = append([]byte(nil), data...)
	entryLenOff := countOff + 4 + 4 // skip count and entry CRC
	for i := 0; i < 8; i++ {
		mut[entryLenOff+i] = 0xFF
	}
	if _, err := mgr.Restore(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) {
		t.Fatalf("absurd entry length: %v", err)
	}

	// Payload length larger than the entry that contains it.
	mut = append([]byte(nil), data...)
	nameLen := int(uint16(mut[entryLenOff+8]) | uint16(mut[entryLenOff+9])<<8)
	// Entry body: name(2+len) nd(2) extents(3*8) payloadLen(8).
	payloadLenOff := entryLenOff + 8 + 2 + nameLen + 2 + 3*8
	for i := 0; i < 8; i++ {
		mut[payloadLenOff+i] = 0xFE
	}
	if _, err := mgr.Restore(bytes.NewReader(mut)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

// TestParseEntryBodyCaps drives the frame-body parser directly with
// forged declared sizes: each must fail with ErrFormat before any
// allocation proportional to the declared size.
func TestParseEntryBodyCaps(t *testing.T) {
	var good bytes.Buffer
	writeString(&good, "temp")
	writeU16(&good, 1)
	writeU64(&good, 8)
	writeU64(&good, 3)
	good.Write([]byte{1, 2, 3})
	if _, err := parseEntryBody(good.Bytes(), 0); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}

	cases := map[string]func(*bytes.Buffer){
		"payload-exceeds-remaining": func(b *bytes.Buffer) {
			writeString(b, "temp")
			writeU16(b, 1)
			writeU64(b, 8)
			writeU64(b, 1<<50) // declares a petabyte, 0 bytes follow
		},
		"huge-name": func(b *bytes.Buffer) {
			writeU16(b, uint16(maxNameLen+1))
			b.Write(bytes.Repeat([]byte{'x'}, maxNameLen+1))
			writeU16(b, 1)
			writeU64(b, 8)
			writeU64(b, 0)
		},
		"zero-dims": func(b *bytes.Buffer) {
			writeString(b, "t")
			writeU16(b, 0)
		},
		"extent-overflow": func(b *bytes.Buffer) {
			writeString(b, "t")
			writeU16(b, 1)
			writeU64(b, 1<<40)
			writeU64(b, 0)
		},
		"trailing-garbage": func(b *bytes.Buffer) {
			writeString(b, "t")
			writeU16(b, 1)
			writeU64(b, 8)
			writeU64(b, 0)
			b.Write([]byte{0xAA})
		},
	}
	for name, build := range cases {
		var b bytes.Buffer
		build(&b)
		if _, err := parseEntryBody(b.Bytes(), 0); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}
