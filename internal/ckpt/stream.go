// stream.go adds the v2 streaming checkpoint format. The buffered
// Checkpoint assembles the whole framed stream in memory before the
// writer sees its first byte — peak memory is O(total payload). v2
// frames each entry's payload in bounded segments with the length and
// CRC trailing instead of leading, so CheckpointStream can pipe codec
// output straight through to the writer and peak memory drops to the
// codec's own working set (O(workers × chunk) for the chunked lossy
// pipeline). Readers accept both versions through readEntry.
//
// v2 entry layout (all integers little-endian):
//
//	u16 nameLen + name            — prologue, same serialization as v1
//	u16 dims
//	u64 extent × dims
//	{ u32 segLen (>0), payload[segLen] }*   — payload in bounded segments
//	u32 0                         — segment terminator
//	u64 payloadLen                — trailer: total payload bytes
//	u32 crc32(prologue ++ payload)
//
// A trailer mismatch marks the entry damaged but leaves the scan
// aligned on the next entry (segments framed the payload), so partial
// recovery skips it exactly like a v1 CRC failure. A structural
// failure (truncated segment, implausible length) tears the stream.
package ckpt

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"time"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/store"
)

// readEntryV2 reads one v2 segmented entry. The prologue is re-serialized
// to feed the CRC exactly as the writer hashed it.
func readEntryV2(br *byteReader, i int) (*rawEntry, error) {
	name := br.str()
	if br.err == nil && len(name) > maxNameLen {
		return nil, fmt.Errorf("%w: entry %d name %d bytes exceeds cap", ErrFormat, i, len(name))
	}
	nd := int(br.u16())
	if br.err != nil || nd == 0 || nd > grid.MaxDims {
		return nil, fmt.Errorf("%w: entry %d metadata", ErrFormat, i)
	}
	shape := make([]int, nd)
	for d := range shape {
		e := br.u64()
		if e == 0 || e > math.MaxInt32 {
			return nil, fmt.Errorf("%w: entry %d extent %d", ErrFormat, i, e)
		}
		shape[d] = int(e)
	}
	if br.err != nil {
		return nil, fmt.Errorf("%w: entry %d prologue: %v", ErrFormat, i, br.err)
	}
	crc := crc32.NewIEEE()
	var pro bytes.Buffer
	writeString(&pro, name)
	writeU16(&pro, uint16(nd))
	for _, e := range shape {
		writeU64(&pro, uint64(e))
	}
	crc.Write(pro.Bytes())

	var payload []byte
	for {
		segLen := br.u32()
		if br.err != nil {
			return nil, fmt.Errorf("%w: entry %d segment header: %v", ErrFormat, i, br.err)
		}
		if segLen == 0 {
			break
		}
		if uint64(len(payload))+uint64(segLen) > maxPayloadLen {
			return nil, fmt.Errorf("%w: entry %d payload exceeds cap", ErrFormat, i)
		}
		seg, err := readExactly(br, uint64(segLen))
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d segment: %v", ErrFormat, i, err)
		}
		crc.Write(seg)
		payload = append(payload, seg...)
	}
	wantLen := br.u64()
	wantCRC := br.u32()
	if br.err != nil {
		return nil, fmt.Errorf("%w: entry %d trailer: %v", ErrFormat, i, br.err)
	}
	if wantLen != uint64(len(payload)) || wantCRC != crc.Sum32() {
		return nil, fmt.Errorf("%w: entry %d trailer mismatch", errEntryDamaged, i)
	}
	return &rawEntry{Name: name, Shape: shape, Payload: payload}, nil
}

// streamSegment bounds the segment size CheckpointStream frames payload
// bytes into — also the only per-entry buffer the writer side keeps.
const streamSegment = 256 << 10

// CheckpointStream compresses every registered array and writes one v2
// checkpoint stream to w without ever buffering a whole payload: codecs
// implementing StreamEncoder pipe their output straight into the
// segment framing (the chunked lossy pipeline overlaps compression with
// the write), others fall back to buffered Encode per entry. Entries are
// written serially in registration order — the parallelism lives inside
// the streaming codecs, where it bounds memory instead of multiplying it.
func (m *Manager) CheckpointStream(w io.Writer, step int) (rep *Report, err error) {
	return m.CheckpointStreamCtx(context.Background(), w, step)
}

// CheckpointStreamCtx is CheckpointStream bound to a request context:
// cancellation is observed before each entry and between writes inside
// an entry, so a deadline expiring mid-checkpoint stops producing bytes
// promptly — the store side then aborts its payload cleanly.
func (m *Manager) CheckpointStreamCtx(ctx context.Context, w io.Writer, step int) (rep *Report, err error) {
	start := time.Now()
	if w = ctxWriter(ctx, w); ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ckpt: checkpoint: %w", err)
		}
	}
	if len(m.names) == 0 {
		return nil, fmt.Errorf("%w: no fields registered", ErrRegistered)
	}
	if step < 0 {
		return nil, fmt.Errorf("%w: negative step %d", ErrRegistered, step)
	}
	encoded := make([]*Encoded, len(m.names))
	if o := m.observer(); o != nil {
		sp := o.StartSpan(MetricCheckpointSpan, "codec", m.codec.Name(), "step", fmt.Sprint(step), "mode", "stream")
		defer func() {
			sp.EndErr(err)
			if err == nil {
				m.recordCheckpoint(o, rep, encoded)
			}
		}()
	}
	jop, jowned := m.opFor("ckpt.checkpoint", "codec", m.codec.Name(), "mode", "stream")
	if jop != nil {
		jop.SetStep(step)
		defer func() {
			m.fillCheckpoint(jop, rep, encoded)
			if jowned {
				jop.End(err)
			}
		}()
	}

	cw := &countingWriter{w: w}
	var hdrBuf bytes.Buffer
	writeU32(&hdrBuf, fileMagic)
	writeU16(&hdrBuf, fileVersionStream)
	writeString(&hdrBuf, m.codec.Name())
	writeU64(&hdrBuf, uint64(step))
	writeU32(&hdrBuf, uint32(len(m.names)))
	if _, err := cw.Write(hdrBuf.Bytes()); err != nil {
		return nil, fmt.Errorf("ckpt: write: %w", err)
	}

	rep = &Report{Codec: m.codec.Name(), Step: step}
	namedStreamer, _ := m.codec.(NamedStreamEncoder)
	streamer, _ := m.codec.(StreamEncoder)
	named, _ := m.codec.(NamedEncoder)
	deltas := m.deltaFor()
	de, _ := m.codec.(DeltaEncoder)
	for i, name := range m.names {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("ckpt: checkpoint: %w", cerr)
		}
		f := m.fields[name]
		var pro bytes.Buffer
		writeString(&pro, name)
		writeU16(&pro, uint16(f.Dims()))
		for _, e := range f.Shape() {
			writeU64(&pro, uint64(e))
		}
		crc := crc32.NewIEEE()
		crc.Write(pro.Bytes())
		if _, err := cw.Write(pro.Bytes()); err != nil {
			return nil, fmt.Errorf("ckpt: write: %w", err)
		}
		sw := newSegmentWriter(cw, crc)

		var enc *Encoded
		var eerr error
		switch {
		case deltas != nil:
			// Delta mode trades the zero-buffer streaming encode for
			// per-entry payload reuse: the entry is encoded (or served)
			// buffered, then streamed out through the segment framing.
			enc, eerr = m.encodeDelta(name, f, deltas[name], de)
		case namedStreamer != nil:
			enc, eerr = namedStreamer.EncodeNamedTo(sw, name, f)
		case streamer != nil:
			enc, eerr = streamer.EncodeTo(sw, f)
		case named != nil:
			enc, eerr = named.EncodeNamed(name, f)
		default:
			enc, eerr = m.codec.Encode(f)
		}
		if eerr != nil {
			return nil, fmt.Errorf("ckpt: encoding %q: %w", name, eerr)
		}
		if enc.Payload != nil {
			// Buffered fallback: the payload exists in memory; stream it out
			// through the same segment framing.
			if _, err := sw.Write(enc.Payload); err != nil {
				return nil, fmt.Errorf("ckpt: write: %w", err)
			}
		}
		if err := sw.finish(); err != nil {
			return nil, fmt.Errorf("ckpt: write: %w", err)
		}
		encoded[i] = enc

		rep.Entries = append(rep.Entries, EntryReport{
			Name:            name,
			RawBytes:        enc.RawBytes,
			CompressedBytes: int(sw.n),
			Timings:         enc.Timings,
			Guarantee:       enc.Guarantee,
			Reused:          enc.Reused,
			SlabsReused:     enc.SlabsReused,
		})
		rep.RawBytes += enc.RawBytes
		rep.CompressedBytes += int(sw.n)
		rep.addReuse(enc)
		// Breadcrumb for kill-mid-checkpoint replay: the furthest entry
		// written and the stream bytes produced so far.
		jop.Progress("entry:"+name, int64(cw.n))
	}
	rep.FileBytes = cw.n
	rep.Wall = time.Since(start)
	return rep, nil
}

// CheckpointStreamTo streams a v2 checkpoint straight into the store's
// next generation via CommitStream: compression, entropy coding and
// store I/O overlap, and neither the manager nor the store buffers the
// stream. The durability protocol is identical to CheckpointTo.
func (m *Manager) CheckpointStreamTo(st store.Target, step int) (rep *Report, gen store.Generation, err error) {
	return m.CheckpointStreamToCtx(context.Background(), st, step)
}

// CheckpointStreamToCtx is CheckpointStreamTo bound to a request
// context: the context reaches both the producer (entry boundaries and
// writes) and the store's commit/retry path, so one cancellation tears
// the whole pipeline down cleanly — partial payload removed, previous
// latest generation still indexed.
func (m *Manager) CheckpointStreamToCtx(ctx context.Context, st store.Target, step int) (rep *Report, gen store.Generation, err error) {
	// Like CheckpointTo: own the wide event so store commit/vote records
	// join the same operation; CheckpointStream enriches it.
	op := m.journal().Begin("ckpt.checkpoint", "codec", m.codec.Name(), "mode", "stream")
	if op != nil {
		op.SetStep(step)
		m.curOp = op
		defer func() {
			m.curOp = nil
			op.SetSeq(gen.Seq)
			op.End(err)
		}()
	}
	gen, err = st.CommitStreamCtx(ctx, step, func(w io.Writer) error {
		var cerr error
		rep, cerr = m.CheckpointStreamCtx(ctx, w, step)
		return cerr
	})
	if err != nil {
		return nil, store.Generation{}, err
	}
	return rep, gen, nil
}

// ctxWriter wraps w so every write observes ctx first — the bound that
// stops a streaming codec mid-entry once its request is cancelled. A
// background context (Done() == nil) passes w through untouched.
func ctxWriter(ctx context.Context, w io.Writer) io.Writer {
	if ctx.Done() == nil {
		return w
	}
	return &ctxCheckedWriter{ctx: ctx, w: w}
}

type ctxCheckedWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxCheckedWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// segmentWriter frames payload bytes into streamSegment-sized v2
// segments on its way to the underlying writer, accumulating the total
// length and the running CRC (seeded with the entry prologue by the
// caller). finish writes the terminator and trailer; after it the
// writer is poisoned so a codec retaining the handle cannot corrupt the
// stream.
type segmentWriter struct {
	w   io.Writer
	crc hash.Hash32
	buf []byte
	n   uint64
	err error
}

func newSegmentWriter(w io.Writer, crc hash.Hash32) *segmentWriter {
	return &segmentWriter{w: w, crc: crc, buf: make([]byte, 0, streamSegment)}
}

// Write implements io.Writer.
func (s *segmentWriter) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	s.crc.Write(p)
	s.n += uint64(len(p))
	for rest := p; len(rest) > 0; {
		take := streamSegment - len(s.buf)
		if take > len(rest) {
			take = len(rest)
		}
		s.buf = append(s.buf, rest[:take]...)
		rest = rest[take:]
		if len(s.buf) == streamSegment {
			if err := s.flush(); err != nil {
				return 0, err
			}
		}
	}
	return len(p), nil
}

// flush emits the buffered bytes as one length-prefixed segment.
func (s *segmentWriter) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(s.buf)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
		return err
	}
	s.buf = s.buf[:0]
	return nil
}

// finish flushes the tail segment and writes the terminator and trailer,
// then poisons the writer.
func (s *segmentWriter) finish() error {
	if s.err != nil {
		return s.err
	}
	if err := s.flush(); err != nil {
		return err
	}
	var tail [16]byte // u32 0 terminator + u64 payloadLen + u32 crc
	binary.LittleEndian.PutUint64(tail[4:], s.n)
	binary.LittleEndian.PutUint32(tail[12:], s.crc.Sum32())
	if _, err := s.w.Write(tail[:]); err != nil {
		s.err = err
		return err
	}
	s.err = fmt.Errorf("ckpt: segment writer already finished")
	return nil
}

// countingWriter counts bytes through to the underlying writer
// (Report.FileBytes for the streaming path).
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// writeFloatBlocks streams a float64 slice as little-endian bytes in
// bounded blocks (256 KiB), so raw-payload codecs never materialize the
// full byte image of an array.
func writeFloatBlocks(w io.Writer, data []float64) error {
	const blockFloats = 32 << 10 // 256 KiB per block
	buf := make([]byte, 8*blockFloats)
	for off := 0; off < len(data); off += blockFloats {
		end := off + blockFloats
		if end > len(data) {
			end = len(data)
		}
		blk := data[off:end]
		b := buf[:8*len(blk)]
		for i, v := range blk {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
