// storeio.go connects the checkpoint manager to the crash-safe on-disk
// store: CheckpointTo commits one framed stream as a new generation,
// RestoreLatest walks the retention ring newest-to-oldest and falls
// back across generations — and, as a last resort, to frame-level
// partial recovery — until it finds restorable state. LoadLatest is the
// registration-free variant for tooling that discovers the variables
// and shapes from the stream itself.
package ckpt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/store"
)

// ErrStoreEmpty indicates no generation in the store could be restored,
// even partially.
var ErrStoreEmpty = errors.New("ckpt: no restorable generation in store")

// CheckpointTo compresses the registered arrays and commits the framed
// stream atomically as the store's next generation. st may be a plain
// *store.Store or a *store.ReplicatedStore — the pipeline is
// replication-agnostic. The returned Generation records the committed
// sequence number, size and CRC.
func (m *Manager) CheckpointTo(st store.Target, step int) (rep *Report, gen store.Generation, err error) {
	return m.CheckpointToCtx(context.Background(), st, step)
}

// CheckpointToCtx is CheckpointTo bound to a request context: the
// context reaches the store's commit and retry path, so a cancelled
// request aborts the commit instead of sleeping out backoff ladders.
func (m *Manager) CheckpointToCtx(ctx context.Context, st store.Target, step int) (rep *Report, gen store.Generation, err error) {
	// Open the checkpoint wide event here so the store's commit and vote
	// records become children of the same operation; the inner
	// Checkpoint call enriches it (see journal.go).
	op := m.journal().Begin("ckpt.checkpoint", "codec", m.codec.Name(), "mode", "buffered")
	if op != nil {
		op.SetStep(step)
		m.curOp = op
		defer func() {
			m.curOp = nil
			op.SetSeq(gen.Seq)
			op.End(err)
		}()
	}
	gen, err = st.CommitFuncCtx(ctx, step, func(w io.Writer) error {
		var cerr error
		rep, cerr = m.Checkpoint(w, step)
		return cerr
	})
	if err != nil {
		return nil, store.Generation{}, err
	}
	return rep, gen, nil
}

// StoreRestore reports which generation a store-level restore used and
// how complete it was.
type StoreRestore struct {
	// Generation is the sequence number restored from.
	Generation uint64
	// Step is the application step recorded in the restored stream.
	Step int
	// Partial is true when only a subset of registered arrays could be
	// restored (frame-level recovery from a damaged generation).
	Partial bool
	// Restored and Skipped name the registered arrays that were / were
	// not recovered. Skipped is empty for full restores.
	Restored []string
	Skipped  []string
	// Report is the underlying restore accounting.
	Report *Report
}

// RestoreLatest restores the registered arrays from the newest
// restorable generation. The fallback order is: full verified restore
// from the newest generation backwards, then — only if no generation
// restores completely — frame-level partial recovery, again newest
// first, taking the first generation that yields at least one verified
// array. Every failure is carried in the returned error if nothing at
// all is restorable.
func (m *Manager) RestoreLatest(st store.Target) (sr *StoreRestore, err error) {
	gens := st.Generations()
	var failures []error

	o := m.observer()
	op := m.journal().Begin("ckpt.restore_latest", "codec", m.codec.Name())
	if op != nil {
		m.curOp = op
		defer func() {
			m.curOp = nil
			if sr != nil {
				op.SetSeq(sr.Generation)
				op.SetStep(sr.Step)
				if sr.Partial {
					op.Set("partial", "true")
				}
			}
			op.End(err)
		}()
	}

	// Pass 1: full restore, newest generation first.
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		data, verified, err := st.ReadGenerationRaw(g.Seq)
		if err != nil {
			failures = append(failures, fmt.Errorf("gen %d: %w", g.Seq, err))
			m.recordFallback(o, g.Seq, "read_error")
			continue
		}
		if !verified {
			failures = append(failures, fmt.Errorf("gen %d: %w", g.Seq, store.ErrCorrupt))
			m.recordFallback(o, g.Seq, "unverified")
			continue
		}
		rep, err := m.Restore(bytes.NewReader(data))
		if err != nil {
			failures = append(failures, fmt.Errorf("gen %d: %w", g.Seq, err))
			m.recordFallback(o, g.Seq, "restore_error")
			continue
		}
		return &StoreRestore{
			Generation: g.Seq,
			Step:       rep.Step,
			Restored:   namesOf(rep),
			Report:     rep,
		}, nil
	}

	// Pass 2: partial recovery from damaged generations, newest first.
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		data, _, err := st.ReadGenerationRaw(g.Seq)
		if err != nil {
			continue
		}
		rep, skipped, err := m.RestorePartial(bytes.NewReader(data))
		if err != nil {
			failures = append(failures, fmt.Errorf("gen %d partial: %w", g.Seq, err))
			continue
		}
		return &StoreRestore{
			Generation: g.Seq,
			Step:       rep.Step,
			Partial:    len(skipped) > 0,
			Restored:   namesOf(rep),
			Skipped:    skipped,
			Report:     rep,
		}, nil
	}
	return nil, fmt.Errorf("%w: %d generations tried: %v", ErrStoreEmpty, len(gens), errors.Join(failures...))
}

// recordFallback counts one generation the restore walk had to skip,
// labeled with why, and leaves a trace event naming the generation.
func (m *Manager) recordFallback(o *obs.Registry, seq uint64, reason string) {
	m.journal().Note("ckpt.store_fallback", "gen", fmt.Sprint(seq), "reason", reason)
	if o == nil {
		return
	}
	o.Counter(MetricStoreFallbacks, "reason", reason).Inc()
	o.Event("ckpt.store_fallback", "gen", seq, "reason", reason)
}

func namesOf(rep *Report) []string {
	names := make([]string, len(rep.Entries))
	for i, e := range rep.Entries {
		names[i] = e.Name
	}
	return names
}

// LoadedField is one array recovered by LoadLatest.
type LoadedField struct {
	Name  string
	Field *grid.Field
	// Guarantee is the guard annotation the entry carried (nil for
	// non-guard codecs): the quality promise the generation restores with.
	Guarantee *guard.Annotation
}

// LoadedCheckpoint is the registration-free result of LoadLatest.
type LoadedCheckpoint struct {
	Generation uint64
	Step       int
	Codec      string
	// Partial is true when some declared frames could not be recovered.
	Partial bool
	Fields  []LoadedField
	// SkippedFrames counts declared frames that failed verification or
	// decoding.
	SkippedFrames int
}

// LoadLatest reads the newest restorable generation without any
// registration: variables, shapes and the codec are discovered from the
// stream. Like RestoreLatest it walks generations newest-to-oldest,
// preferring a fully verified load, then falls back to frame-level
// partial recovery. workers bounds lossy decode parallelism (0 =
// GOMAXPROCS).
func LoadLatest(st store.Target, workers int) (lc *LoadedCheckpoint, err error) {
	return LoadLatestCtx(context.Background(), st, workers)
}

// LoadLatestCtx is LoadLatest bound to a request context: cancellation
// is observed between generation attempts, so a restore walking a deep
// retention ring of damaged generations stops when its request dies.
func LoadLatestCtx(ctx context.Context, st store.Target, workers int) (lc *LoadedCheckpoint, err error) {
	op := journal.Default().Begin("ckpt.restore", "mode", "load_latest")
	defer func() {
		if op == nil {
			return
		}
		if lc != nil {
			op.SetStep(lc.Step)
			op.SetSeq(lc.Generation)
			op.Set("codec", lc.Codec)
			for _, lf := range lc.Fields {
				op.Entry(journal.Entry{Var: lf.Name})
			}
			if lc.SkippedFrames > 0 {
				op.Set("skipped_frames", fmt.Sprint(lc.SkippedFrames))
			}
		}
		op.End(err)
	}()
	gens := st.Generations()
	var failures []error

	load := func(g store.Generation, lenient bool) (*LoadedCheckpoint, error) {
		data, verified, err := st.ReadGenerationRaw(g.Seq)
		if err != nil {
			return nil, err
		}
		if !verified && !lenient {
			return nil, store.ErrCorrupt
		}
		lc, err := loadStream(bytes.NewReader(data), workers, lenient)
		if err != nil {
			return nil, err
		}
		lc.Generation = g.Seq
		return lc, nil
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("ckpt: restore: %w", cerr)
		}
		lc, err := load(gens[i], false)
		if err != nil {
			failures = append(failures, fmt.Errorf("gen %d: %w", gens[i].Seq, err))
			continue
		}
		return lc, nil
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("ckpt: restore: %w", cerr)
		}
		lc, err := load(gens[i], true)
		if err != nil {
			failures = append(failures, fmt.Errorf("gen %d partial: %w", gens[i].Seq, err))
			continue
		}
		return lc, nil
	}
	return nil, fmt.Errorf("%w: %d generations tried: %v", ErrStoreEmpty, len(gens), errors.Join(failures...))
}

// loadStream decodes a checkpoint stream with no registration. In
// lenient mode damaged frames are skipped and a torn tail ends the
// scan; in strict mode any damage is fatal.
func loadStream(r io.Reader, workers int, lenient bool) (*LoadedCheckpoint, error) {
	br := newByteReader(r)
	hdr, err := readStreamHeader(br)
	if err != nil {
		return nil, err
	}
	codec, err := CodecByName(hdr.Codec)
	if err != nil {
		return nil, err
	}
	if lossy, ok := codec.(*Lossy); ok {
		lossy.Options.Workers = workers
	}

	lc := &LoadedCheckpoint{Step: hdr.Step, Codec: hdr.Codec}
	seen := make(map[string]bool, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if err != nil {
			if !lenient {
				return nil, err
			}
			if errors.Is(err, errEntryDamaged) {
				lc.SkippedFrames++
				continue
			}
			lc.SkippedFrames += hdr.Count - i
			break // torn tail: nothing beyond this point is framed
		}
		if seen[ent.Name] {
			if !lenient {
				return nil, fmt.Errorf("%w: duplicate variable %q", ErrFormat, ent.Name)
			}
			lc.SkippedFrames++
			continue
		}
		f, err := codec.Decode(ent.Payload, ent.Shape)
		if err != nil {
			if !lenient {
				return nil, fmt.Errorf("ckpt: decoding %q: %w", ent.Name, err)
			}
			lc.SkippedFrames++
			continue
		}
		seen[ent.Name] = true
		lc.Fields = append(lc.Fields, LoadedField{
			Name: ent.Name, Field: f, Guarantee: entryGuarantee(ent.Payload)})
	}
	lc.Partial = lc.SkippedFrames > 0
	if len(lc.Fields) == 0 {
		return nil, fmt.Errorf("%w: no frame verified", ErrFormat)
	}
	return lc, nil
}
