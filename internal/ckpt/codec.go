// Package ckpt provides the application-level checkpoint/restart manager
// the reproduced paper's workflow needs: applications register their named
// state arrays once; Checkpoint compresses every array with a pluggable
// codec (none / gzip / fpc / the paper's lossy compressor) and writes one
// framed checkpoint stream; Restore reads such a stream back and copies
// the decoded data into the registered arrays in place.
//
// Per the paper's §IV-D, per-array compression is embarrassingly parallel;
// Checkpoint compresses registered arrays with a bounded worker pool and
// reports the per-phase timing breakdown that the paper's Fig. 9 plots.
package ckpt

import (
	"errors"
	"fmt"
	"io"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/fpc"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/tune"
)

// Errors returned by codecs and the manager.
var (
	ErrCodec = errors.New("ckpt: codec failure")
)

// Encoded is one array's compressed representation plus accounting.
type Encoded struct {
	// Payload is the codec-specific compressed byte stream.
	Payload []byte
	// RawBytes is the uncompressed array size.
	RawBytes int
	// Timings is the per-phase compression breakdown (zero-valued phases
	// for codecs without that phase).
	Timings core.Timings
	// Guarantee is the quality annotation established for the entry (guard
	// codec only; nil otherwise).
	Guarantee *guard.Annotation
	// EntropyLabel is the entropy-stage configuration actually used
	// ("gzip", "lz4+shuffle", …) — for the lossy codec this reflects the
	// tuner's per-variable pick. Empty for codecs without the stage.
	EntropyLabel string
	// Divisions is the quantization division count used (lossy pipeline
	// only; 0 otherwise).
	Divisions int
	// ChunkTimings is the per-chunk phase breakdown under the chunked
	// lossy paths, in chunk order — the waterfall the flight-recorder
	// journal attaches to checkpoint wide events. Nil otherwise.
	ChunkTimings []core.Timings
	// Reused marks a whole-entry delta reuse: the payload was served from
	// the manager's cache because the array was byte-identical to the
	// previous checkpoint (delta mode only).
	Reused bool
	// SlabsReused / SlabsTotal account slab-level delta reuse under the
	// chunked lossy path (delta mode only; zero otherwise).
	SlabsReused int
	SlabsTotal  int
}

// Codec turns fields into bytes and back. Implementations must be safe for
// concurrent use by multiple goroutines (Checkpoint encodes arrays in
// parallel).
type Codec interface {
	// Name identifies the codec in checkpoint headers and reports.
	Name() string
	// Encode compresses one field.
	Encode(f *grid.Field) (*Encoded, error)
	// Decode reconstructs a field of the given shape from payload bytes.
	Decode(payload []byte, shape []int) (*grid.Field, error)
	// Lossless reports whether Decode(Encode(f)) is bit-exact.
	Lossless() bool
}

// StreamEncoder is an optional Codec extension for codecs that can emit
// their payload incrementally. EncodeTo writes the exact bytes Encode
// would have returned as Payload directly to w and returns the Encoded
// accounting with Payload nil — CheckpointStream pipes the writes into
// its segment framing, so the payload is never buffered whole.
// Implementations may still buffer internally when their format demands
// it (and must then leave Payload nil after writing it out).
type StreamEncoder interface {
	EncodeTo(w io.Writer, f *grid.Field) (*Encoded, error)
}

// NamedStreamEncoder combines both extensions: a streaming encode that
// also knows which variable it is encoding. CheckpointStream prefers it
// over StreamEncoder so per-variable concerns (the autotuner, telemetry
// labels) reach the streaming path.
type NamedStreamEncoder interface {
	EncodeNamedTo(w io.Writer, name string, f *grid.Field) (*Encoded, error)
}

// --- None ------------------------------------------------------------------

// None stores arrays verbatim — the paper's "checkpoint time without
// compression" baseline.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Lossless implements Codec.
func (None) Lossless() bool { return true }

// Encode implements Codec.
func (None) Encode(f *grid.Field) (*Encoded, error) {
	return &Encoded{
		Payload:  floatsToBytes(f.Data()),
		RawBytes: f.Bytes(),
	}, nil
}

// EncodeTo implements StreamEncoder: the float image goes out in bounded
// blocks, never materialized whole.
func (None) EncodeTo(w io.Writer, f *grid.Field) (*Encoded, error) {
	if err := writeFloatBlocks(w, f.Data()); err != nil {
		return nil, err
	}
	return &Encoded{RawBytes: f.Bytes()}, nil
}

// Decode implements Codec.
func (None) Decode(payload []byte, shape []int) (*grid.Field, error) {
	f, err := grid.New(shape...)
	if err != nil {
		return nil, err
	}
	if len(payload) != 8*f.Len() {
		return nil, fmt.Errorf("%w: none codec payload %d bytes, shape %v needs %d", ErrCodec, len(payload), shape, 8*f.Len())
	}
	bytesToFloatsInto(payload, f.Data())
	return f, nil
}

// --- Gzip ------------------------------------------------------------------

// Gzip entropy-codes the raw array bytes losslessly — the paper's
// comparison point (Fig. 6's "gzip" bar) by default, or the LZ4-class
// fast coder with optional byte-shuffle when Entropy/Shuffle are set
// (the stream then carries the self-describing entropy envelope and the
// codec names itself "lz4").
type Gzip struct {
	// Level is a compress/gzip level; use gzipio.Default normally.
	Level int
	// Mode selects in-memory or temp-file operation.
	Mode gzipio.Mode
	// TmpDir is the temp-file directory ("" = system default).
	TmpDir string
	// Entropy selects the coder (entropy.Gzip — the zero value — keeps
	// the legacy byte stream; entropy.LZ4 trades ratio for throughput).
	Entropy entropy.ID
	// Shuffle applies the byte-lane transpose pre-pass, using the packed
	// float64 width as the stride (raw array bytes are exactly that).
	Shuffle bool
}

// NewGzip returns a Gzip codec with default settings.
func NewGzip() *Gzip { return &Gzip{Level: gzipio.Default, Mode: gzipio.InMemory} }

// NewLZ4 returns the codec CodecByName("lz4") constructs: the LZ4-class
// entropy coder with the byte-shuffle pre-pass, the throughput-first
// lossless configuration.
func NewLZ4() *Gzip {
	return &Gzip{Level: gzipio.Default, Mode: gzipio.InMemory, Entropy: entropy.LZ4, Shuffle: true}
}

// Name implements Codec. The name keys restore-side codec construction
// (CodecByName), so the LZ4 configuration must not call itself "gzip";
// shuffle alone does not change the name — the envelope self-describes
// it.
func (g *Gzip) Name() string {
	if g.Entropy == entropy.LZ4 {
		return "lz4"
	}
	return "gzip"
}

// Lossless implements Codec.
func (*Gzip) Lossless() bool { return true }

// legacy reports whether the codec writes the pre-PR-6 bare DEFLATE
// stream.
func (g *Gzip) legacy() bool { return g.Entropy == entropy.Gzip && !g.Shuffle }

// Encode implements Codec.
func (g *Gzip) Encode(f *grid.Field) (*Encoded, error) {
	if !g.legacy() {
		start := time.Now()
		res, err := entropy.Compress(floatsToBytes(f.Data()), entropy.Params{
			Codec:     g.Entropy,
			Shuffle:   g.Shuffle,
			GzipLevel: g.Level,
		})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		return &Encoded{
			Payload:  res.Compressed,
			RawBytes: f.Bytes(),
			Timings:  core.Timings{Gzip: res.CodeTime, Total: el, CPUTotal: el},
		}, nil
	}
	res, err := core.CompressGzipOnly(f, g.Level, g.Mode, g.TmpDir)
	if err != nil {
		return nil, err
	}
	return &Encoded{Payload: res.Data, RawBytes: res.RawBytes, Timings: res.Timings}, nil
}

// EncodeTo implements StreamEncoder. In-memory legacy mode compresses
// straight onto w through a pooled DEFLATE writer, feeding the float
// image in bounded blocks; temp-file mode and the enveloped entropy
// configurations buffer per entry and stream the result out.
func (g *Gzip) EncodeTo(w io.Writer, f *grid.Field) (*Encoded, error) {
	if g.Mode != gzipio.InMemory || !g.legacy() {
		enc, err := g.Encode(f)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(enc.Payload); err != nil {
			return nil, err
		}
		enc.Payload = nil
		return enc, nil
	}
	start := time.Now()
	zw, err := gzipio.AcquireWriter(gzipio.FormatGzip, g.Level, w)
	if err != nil {
		return nil, err
	}
	if err := writeFloatBlocks(zw, f.Data()); err != nil {
		zw.Close()
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	gzipio.ReleaseWriter(gzipio.FormatGzip, g.Level, zw)
	el := time.Since(start)
	return &Encoded{
		RawBytes: f.Bytes(),
		Timings:  core.Timings{Gzip: el, Total: el, CPUTotal: el},
	}, nil
}

// Decode implements Codec.
func (g *Gzip) Decode(payload []byte, shape []int) (*grid.Field, error) {
	return core.DecompressGzipOnly(payload, shape...)
}

// --- FPC -------------------------------------------------------------------

// FPC applies the predictive lossless floating-point compressor of package
// fpc (experiment X3's baseline).
type FPC struct {
	// TableBits sizes the predictor tables; 0 means fpc.DefaultTableBits.
	TableBits int
}

// Name implements Codec.
func (*FPC) Name() string { return "fpc" }

// Lossless implements Codec.
func (*FPC) Lossless() bool { return true }

// Encode implements Codec.
func (c *FPC) Encode(f *grid.Field) (*Encoded, error) {
	tb := c.TableBits
	if tb == 0 {
		tb = fpc.DefaultTableBits
	}
	data, err := fpc.Compress(f.Data(), tb)
	if err != nil {
		return nil, err
	}
	return &Encoded{Payload: data, RawBytes: f.Bytes()}, nil
}

// Decode implements Codec.
func (c *FPC) Decode(payload []byte, shape []int) (*grid.Field, error) {
	vals, err := fpc.Decompress(payload)
	if err != nil {
		return nil, err
	}
	return grid.FromSlice(vals, shape...)
}

// --- Lossy -----------------------------------------------------------------

// Lossy is the paper's wavelet-based lossy compressor (package core).
type Lossy struct {
	// Options configures the pipeline; use core.DefaultOptions as a start.
	// Options.Workers bounds the intra-array parallelism: chunked arrays
	// compress their slabs on a worker pool of that size and whole arrays
	// shard large wavelet passes (0 = GOMAXPROCS, 1 = serial). When the
	// manager already runs many arrays concurrently, set Workers to 1 to
	// keep the total goroutine count at one per array.
	Options core.Options
	// ChunkExtent, when positive, compresses each array in slabs of that
	// many leading-axis planes (core.CompressChunkedParallel), bounding
	// peak memory for very large arrays. Zero compresses whole arrays.
	ChunkExtent int
	// Tuner, when set, picks the entropy-stage configuration (codec,
	// shuffle, gzip block size) per variable from probe measurements and
	// observed stage timings, overriding the corresponding Options
	// fields. The lossy stages are untouched — tuning only ever changes
	// lossless entropy framing.
	Tuner *tune.Tuner
}

// tuneSampleBytes bounds the probe sample handed to the tuner (the
// leading slice of the raw float image).
const tuneSampleBytes = 256 << 10

// optionsFor resolves the effective pipeline options for one variable:
// the tuned entropy setting overlaid on the base options, labeled for
// telemetry.
func (c *Lossy) optionsFor(name string, f *grid.Field) core.Options {
	opts := c.Options
	opts.VarName = name
	if c.Tuner == nil {
		return opts
	}
	n := f.Len()
	if n*8 > tuneSampleBytes {
		n = tuneSampleBytes / 8
	}
	setting := c.Tuner.Decide(name, f.Bytes(), floatsToBytes(f.Data()[:n]))
	opts = setting.Apply(opts)
	opts.VarName = name
	return opts
}

// feedback reports one real encode's entropy-stage timing back to the
// tuner, closing the online loop.
func (c *Lossy) feedback(name string, enc *Encoded) {
	if c.Tuner != nil && enc != nil {
		c.Tuner.Observe(name, enc.RawBytes, enc.Timings.Gzip.Seconds())
	}
}

// NewLossy returns a Lossy codec with the paper's default configuration.
func NewLossy() *Lossy { return &Lossy{Options: core.DefaultOptions()} }

// Name implements Codec.
func (*Lossy) Name() string { return "lossy" }

// Lossless implements Codec.
func (*Lossy) Lossless() bool { return false }

// Encode implements Codec.
func (c *Lossy) Encode(f *grid.Field) (*Encoded, error) {
	return c.EncodeNamed("", f)
}

// EncodeNamed implements NamedEncoder: the variable name keys the
// tuner's per-variable decisions and the entropy-selection telemetry.
func (c *Lossy) EncodeNamed(name string, f *grid.Field) (*Encoded, error) {
	opts := c.optionsFor(name, f)
	var enc *Encoded
	if c.ChunkExtent > 0 {
		res, err := core.CompressChunkedParallel(f, opts, c.ChunkExtent)
		if err != nil {
			return nil, err
		}
		enc = &Encoded{Payload: res.Data, RawBytes: res.RawBytes, Timings: res.Timings, ChunkTimings: res.PerChunk}
	} else {
		res, err := core.Compress(f, opts)
		if err != nil {
			return nil, err
		}
		enc = &Encoded{Payload: res.Data, RawBytes: res.RawBytes, Timings: res.Timings}
	}
	c.annotate(enc, opts)
	c.feedback(name, enc)
	return enc, nil
}

// annotate records the resolved pipeline decisions on the accounting —
// what the journal's wide events report per entry.
func (c *Lossy) annotate(enc *Encoded, opts core.Options) {
	enc.EntropyLabel = entropy.Params{Codec: opts.EntropyCodec, Shuffle: opts.Shuffle}.Label()
	enc.Divisions = opts.Divisions
}

// EncodeTo implements StreamEncoder. With ChunkExtent set this is the
// full pipeline overlap the streaming checkpoint exists for: slabs
// compress on a bounded worker pool while finished frames stream into
// w (core.CompressChunkedTo), so peak memory is O(workers × chunk)
// instead of O(array). Whole-array mode compresses buffered and streams
// the result out.
func (c *Lossy) EncodeTo(w io.Writer, f *grid.Field) (*Encoded, error) {
	return c.EncodeNamedTo(w, "", f)
}

// EncodeNamedTo implements NamedStreamEncoder: the streaming encode with
// the variable name available, so the tuner steers the streaming path
// too.
func (c *Lossy) EncodeNamedTo(w io.Writer, name string, f *grid.Field) (*Encoded, error) {
	opts := c.optionsFor(name, f)
	var enc *Encoded
	if c.ChunkExtent > 0 {
		res, err := core.CompressChunkedTo(w, f, opts, c.ChunkExtent)
		if err != nil {
			return nil, err
		}
		enc = &Encoded{RawBytes: res.RawBytes, Timings: res.Timings, ChunkTimings: res.PerChunk}
	} else {
		res, err := core.Compress(f, opts)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(res.Data); err != nil {
			return nil, err
		}
		enc = &Encoded{RawBytes: res.RawBytes, Timings: res.Timings}
	}
	c.annotate(enc, opts)
	c.feedback(name, enc)
	return enc, nil
}

// Decode implements Codec. The shape argument is validated against the
// shape embedded in the lossy stream; both whole-array and chunked
// payloads are accepted.
func (c *Lossy) Decode(payload []byte, shape []int) (*grid.Field, error) {
	f, err := core.DecompressAnyParallel(payload, c.Options.Workers)
	if err != nil {
		return nil, err
	}
	if f.Dims() != len(shape) {
		return nil, fmt.Errorf("%w: lossy stream is %d-D, expected %d-D", ErrCodec, f.Dims(), len(shape))
	}
	for d, e := range shape {
		if f.Extent(d) != e {
			return nil, fmt.Errorf("%w: lossy stream shape %v, expected %v", ErrCodec, f.Shape(), shape)
		}
	}
	return f, nil
}

// CodecByName constructs a default-configured codec from its Name string.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "none":
		return None{}, nil
	case "gzip":
		return NewGzip(), nil
	case "lz4":
		return NewLZ4(), nil
	case "fpc":
		return &FPC{}, nil
	case "lossy":
		return NewLossy(), nil
	case "guard":
		return NewGuard(guard.Policy{}), nil
	default:
		return nil, fmt.Errorf("%w: unknown codec %q", ErrCodec, name)
	}
}
