package ckpt

import (
	"fmt"
	"math"

	"lossyckpt/internal/obs"
	"lossyckpt/internal/stats"
)

// Metric names recorded by the checkpoint manager. The checkpoint and
// restore spans yield _seconds/_total/_errors_total series; quality
// gauges are labeled with the variable name and refreshed on every
// checkpoint.
const (
	MetricCheckpointSpan  = "lossyckpt_ckpt_checkpoint"
	MetricRestoreSpan     = "lossyckpt_ckpt_restore"
	MetricCkptRawBytes    = "lossyckpt_ckpt_raw_bytes_total"
	MetricCkptFileBytes   = "lossyckpt_ckpt_file_bytes_total"
	MetricCkptEntries     = "lossyckpt_ckpt_entries_total"
	MetricStoreFallbacks  = "lossyckpt_ckpt_store_fallbacks_total"
	MetricPartialRestores = "lossyckpt_ckpt_partial_restores_total"
	MetricSkippedVars     = "lossyckpt_ckpt_skipped_variables_total"

	MetricQualityRatePct = "lossyckpt_quality_compression_rate_pct"
	MetricQualityPSNR    = "lossyckpt_quality_psnr_db"
	MetricQualityMaxRel  = "lossyckpt_quality_max_rel_error_pct"
	MetricQualityMaxAbs  = "lossyckpt_quality_max_abs_error"
)

// SetObserver routes manager telemetry to r. nil (the default) falls back
// to the process default registry at record time, itself a no-op unless
// one was installed.
func (m *Manager) SetObserver(r *obs.Registry) { m.obsr = r }

// EnableQualityTelemetry turns on per-variable reconstruction-quality
// gauges (PSNR, max relative and absolute error) for lossy codecs. Each
// checkpoint then decodes every entry it just encoded to measure the
// round-trip error — roughly doubling checkpoint CPU — so it is opt-in;
// compression-rate gauges are always recorded when an observer is set.
func (m *Manager) EnableQualityTelemetry(on bool) { m.quality = on }

// observer resolves the manager's effective registry.
func (m *Manager) observer() *obs.Registry {
	if m.obsr != nil {
		return m.obsr
	}
	return obs.Default()
}

// recordCheckpoint folds one completed checkpoint into the registry:
// aggregate byte/entry counters plus per-variable quality gauges.
func (m *Manager) recordCheckpoint(o *obs.Registry, rep *Report, encoded []*Encoded) {
	o.Counter(MetricCkptRawBytes).Add(float64(rep.RawBytes))
	o.Counter(MetricCkptFileBytes).Add(float64(rep.FileBytes))
	o.Counter(MetricCkptEntries).Add(float64(len(rep.Entries)))

	measure := m.quality && !m.codec.Lossless()
	for i, e := range rep.Entries {
		if e.RawBytes > 0 {
			o.Gauge(MetricQualityRatePct, "var", e.Name).Set(stats.CompressionRate(e.CompressedBytes, e.RawBytes))
		}
		if !measure {
			continue
		}
		// Streaming checkpoints never buffer payloads, so there is nothing
		// to decode for quality measurement.
		if encoded[i] == nil || encoded[i].Payload == nil {
			continue
		}
		f := m.fields[e.Name]
		decoded, err := m.codec.Decode(encoded[i].Payload, f.Shape())
		if err != nil {
			o.Event("ckpt.quality_decode_failed", "var", e.Name, "error", err.Error())
			continue
		}
		orig, approx := f.Data(), decoded.Data()
		// Gauge.Set drops non-finite values, so a perfect reconstruction
		// (+Inf PSNR) keeps the previous reading; record the event so the
		// snapshot still shows it happened.
		if psnr, err := stats.PSNR(orig, approx); err == nil {
			if math.IsInf(psnr, 1) {
				o.Event("ckpt.quality_exact", "var", e.Name)
			}
			o.Gauge(MetricQualityPSNR, "var", e.Name).Set(psnr)
		}
		if sum, err := stats.Compare(orig, approx); err == nil {
			o.Gauge(MetricQualityMaxRel, "var", e.Name).Set(sum.MaxPct)
		}
		if maxAbs, err := stats.MaxAbsError(orig, approx); err == nil {
			o.Gauge(MetricQualityMaxAbs, "var", e.Name).Set(maxAbs)
		}
	}
}

// recordRestore folds one completed full or partial restore.
func (m *Manager) recordRestore(o *obs.Registry, rep *Report, skipped []string, partial bool) {
	if partial {
		o.Counter(MetricPartialRestores).Inc()
		o.Counter(MetricSkippedVars).Add(float64(len(skipped)))
		o.Event("ckpt.partial_restore",
			"restored", len(rep.Entries), "skipped", len(skipped), "step", fmt.Sprint(rep.Step))
	}
}
