package ckpt

import (
	"bytes"
	"fmt"

	"lossyckpt/internal/core"
	"lossyckpt/internal/guard"
)

// StreamEntry is one entry's metadata as seen by InspectStream.
type StreamEntry struct {
	Name         string
	Shape        []int
	PayloadBytes int
	// Guarantee is the guard annotation the payload envelope carries
	// (nil for non-guard codecs).
	Guarantee *guard.Annotation
	// Entropy names the entry's entropy framing ("gzip", "lz4+shuffle",
	// …), sniffed through guard envelopes and chunked framing without
	// decoding; "unknown" for payloads with no recognizable entropy
	// stage (the none/fpc codecs).
	Entropy string
}

// StreamInfo is the registration-free summary of one checkpoint stream.
type StreamInfo struct {
	Codec   string
	Step    int
	Entries []StreamEntry
}

// InspectStream parses a checkpoint stream's framing without decoding
// payloads: header, per-frame CRCs, entry bodies, and any guard
// annotations. Any damage is an error (use loadStream's lenient mode for
// salvage semantics).
func InspectStream(data []byte) (*StreamInfo, error) {
	br := newByteReader(bytes.NewReader(data))
	hdr, err := readStreamHeader(br)
	if err != nil {
		return nil, err
	}
	info := &StreamInfo{Codec: hdr.Codec, Step: hdr.Step}
	seen := make(map[string]bool, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if err != nil {
			return nil, err
		}
		if seen[ent.Name] {
			return nil, fmt.Errorf("%w: duplicate variable %q", ErrFormat, ent.Name)
		}
		seen[ent.Name] = true
		se := StreamEntry{Name: ent.Name, Shape: ent.Shape, PayloadBytes: len(ent.Payload)}
		inner := ent.Payload
		if guard.IsEnveloped(ent.Payload) {
			ann, err := guard.ParseAnnotation(ent.Payload)
			if err != nil {
				return nil, fmt.Errorf("ckpt: entry %q guard envelope: %w", ent.Name, err)
			}
			se.Guarantee = &ann
			if p, err := guard.InnerPayload(ent.Payload); err == nil {
				inner = p
			}
		}
		se.Entropy = core.IdentifyEntropy(inner)
		info.Entries = append(info.Entries, se)
	}
	return info, nil
}

// VerifyStream audits one checkpoint stream end to end: framing and
// per-frame CRCs always, guard envelope CRCs and annotations when
// present, and — with decode set — a full decode of every entry. It is
// the verification callback store.Scrub uses to re-audit retained
// generations beyond the store's own size+CRC check.
func VerifyStream(data []byte, decode bool, workers int) error {
	info, err := InspectStream(data)
	if err != nil {
		return err
	}
	if !decode {
		return nil
	}
	codec, err := CodecByName(info.Codec)
	if err != nil {
		return err
	}
	if lossy, ok := codec.(*Lossy); ok {
		lossy.Options.Workers = workers
	}
	br := newByteReader(bytes.NewReader(data))
	hdr, err := readStreamHeader(br)
	if err != nil {
		return err
	}
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if err != nil {
			return err
		}
		if _, err := codec.Decode(ent.Payload, ent.Shape); err != nil {
			return fmt.Errorf("ckpt: decoding %q: %w", ent.Name, err)
		}
	}
	return nil
}

// StoreVerifier adapts VerifyStream to store.ScrubOptions.Verify.
func StoreVerifier(decode bool, workers int) func([]byte) error {
	return func(data []byte) error { return VerifyStream(data, decode, workers) }
}
