package ckpt

import (
	"bytes"
	"testing"

	"lossyckpt/internal/entropy"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/tune"
)

// TestLZ4CodecCheckpointRestore: the lz4 lossless codec round-trips
// bit-exactly through checkpoint/restore, and its name survives the
// stream header so restore-side codec construction works.
func TestLZ4CodecCheckpointRestore(t *testing.T) {
	codec, err := CodecByName("lz4")
	if err != nil {
		t.Fatal(err)
	}
	if codec.Name() != "lz4" {
		t.Fatalf("codec name %q, want lz4", codec.Name())
	}
	if !codec.Lossless() {
		t.Fatal("lz4 codec must be lossless")
	}
	m := NewManager(codec, 2)
	fields := registerSample(t, m)
	originals := map[string][]float64{}
	for n, f := range fields {
		originals[n] = append([]float64(nil), f.Data()...)
	}

	for _, streaming := range []bool{false, true} {
		var buf bytes.Buffer
		var cerr error
		if streaming {
			_, cerr = m.CheckpointStream(&buf, 7)
		} else {
			_, cerr = m.Checkpoint(&buf, 7)
		}
		if cerr != nil {
			t.Fatalf("streaming=%v: %v", streaming, cerr)
		}
		for _, f := range fields {
			f.Fill(-99)
		}
		if _, err := m.Restore(&buf); err != nil {
			t.Fatalf("streaming=%v: restore: %v", streaming, err)
		}
		for n, f := range fields {
			for i, v := range originals[n] {
				if f.Data()[i] != v {
					t.Fatalf("streaming=%v: %q not bit-exact at %d", streaming, n, i)
				}
			}
		}
	}
}

// TestGzipShuffleCodecRoundTrip: shuffle-only keeps the "gzip" name (the
// envelope self-describes the pre-pass) and stays bit-exact.
func TestGzipShuffleCodecRoundTrip(t *testing.T) {
	codec := NewGzip()
	codec.Shuffle = true
	if codec.Name() != "gzip" {
		t.Fatalf("shuffled gzip codec name %q, want gzip", codec.Name())
	}
	m := NewManager(codec, 1)
	fields := registerSample(t, m)
	want := map[string][]float64{}
	for n, f := range fields {
		want[n] = append([]float64(nil), f.Data()...)
	}
	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	for _, f := range fields {
		f.Fill(0)
	}
	if _, err := m.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for n, f := range fields {
		for i, v := range want[n] {
			if f.Data()[i] != v {
				t.Fatalf("%q not bit-exact at %d", n, i)
			}
		}
	}
}

// TestTunedLossyCheckpoint: a tuner-equipped lossy codec checkpoints and
// restores through both the buffered (NamedEncoder) and streaming
// (NamedStreamEncoder) paths, and the tuner records decisions per
// variable.
func TestTunedLossyCheckpoint(t *testing.T) {
	reg := obs.NewRegistry()
	codec := NewLossy()
	codec.Tuner = tune.New(tune.Config{Observer: reg})
	m := NewManager(codec, 2)
	fields := registerSample(t, m)

	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := codec.Tuner.Cached("temperature"); !ok {
		// Observe's online drift check evicts a cached decision when the
		// real encode's throughput lands 2x off the probe's estimate —
		// wall-clock noise can trigger that legitimately. A decision was
		// still made; only a missing decision with no drift re-probe to
		// explain the eviction is a bug.
		var reprobes float64
		for _, ms := range reg.Snapshot().Metrics {
			if ms.Name == tune.MetricReProbes {
				reprobes += ms.Value
			}
		}
		if reprobes == 0 {
			t.Fatal("tuner has no cached decision for temperature after checkpoint")
		}
	}
	if _, err := m.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	var sbuf bytes.Buffer
	if _, err := m.CheckpointStream(&sbuf, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(&sbuf); err != nil {
		t.Fatal(err)
	}
	for _, f := range fields {
		_ = f
	}

	var decisions float64
	for _, ms := range reg.Snapshot().Metrics {
		if ms.Name == tune.MetricDecisions {
			decisions += ms.Value
		}
	}
	if decisions < 3 {
		t.Fatalf("tuner decisions = %v, want ≥ 3 (one per variable)", decisions)
	}
}

// TestInspectStreamReportsEntropy: every entry carries its sniffed
// entropy framing, including through guard envelopes and chunked
// streams.
func TestInspectStreamReportsEntropy(t *testing.T) {
	cases := []struct {
		codec Codec
		want  string
	}{
		{NewGzip(), "gzip"},
		{NewLZ4(), "lz4+shuffle"},
		{func() Codec {
			c := NewLossy()
			c.Options.EntropyCodec = entropy.LZ4
			c.ChunkExtent = 16
			return c
		}(), "lz4"},
		{NewGuard(guard.Policy{}), "gzip"},
		{None{}, "unknown"},
	}
	for _, tc := range cases {
		m := NewManager(tc.codec, 1)
		registerSample(t, m)
		var buf bytes.Buffer
		if _, err := m.Checkpoint(&buf, 1); err != nil {
			t.Fatalf("%s: %v", tc.codec.Name(), err)
		}
		info, err := InspectStream(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: inspect: %v", tc.codec.Name(), err)
		}
		for _, e := range info.Entries {
			if e.Entropy != tc.want {
				t.Errorf("%s: entry %q entropy = %q, want %q", tc.codec.Name(), e.Name, e.Entropy, tc.want)
			}
		}
	}
}
