package ckpt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/store"
)

func openStore(t *testing.T, dir string, keep int) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// snapshot copies every registered field's data for later comparison.
func snapshot(fields map[string]*grid.Field) map[string][]float64 {
	out := make(map[string][]float64, len(fields))
	for name, f := range fields {
		out[name] = append([]float64(nil), f.Data()...)
	}
	return out
}

func scramble(fields map[string]*grid.Field) {
	for _, f := range fields {
		for i := range f.Data() {
			f.Data()[i] = -1
		}
	}
}

func TestCheckpointToRestoreLatest(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := NewManager(None{}, 1)
	fields := registerSample(t, mgr)
	want := snapshot(fields)

	rep, gen, err := mgr.CheckpointTo(st, 42)
	if err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	if gen.Seq != 1 || gen.Step != 42 || rep.FileBytes == 0 {
		t.Fatalf("gen %+v, report %+v", gen, rep)
	}

	scramble(fields)
	res, err := mgr.RestoreLatest(st)
	if err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	if res.Partial || res.Generation != 1 || res.Step != 42 || len(res.Restored) != 3 {
		t.Fatalf("restore result %+v", res)
	}
	for name, f := range fields {
		for i, v := range f.Data() {
			if v != want[name][i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, v, want[name][i])
			}
		}
	}
}

func TestRestoreLatestFallsBackAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := NewManager(None{}, 1)
	fields := registerSample(t, mgr)

	// Three generations with distinguishable data.
	var snaps []map[string][]float64
	for s := 1; s <= 3; s++ {
		for _, f := range fields {
			for i := range f.Data() {
				f.Data()[i] = float64(1000*s + i%97)
			}
		}
		snaps = append(snaps, snapshot(fields))
		if _, _, err := mgr.CheckpointTo(st, s); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt the newest generation's payload on disk (bit flip: the
	// manifest CRC check must reject it).
	latest, _ := st.Latest()
	path := filepath.Join(dir, "gen-00000003.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if latest.Seq != 3 {
		t.Fatalf("latest %d, want 3", latest.Seq)
	}

	// Reopen the store (fresh CRC state) and restore: must fall back to
	// generation 2, bit-exact.
	st2 := openStore(t, dir, 3)
	scramble(fields)
	res, err := mgr.RestoreLatest(st2)
	if err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	if res.Generation != 2 || res.Partial || res.Step != 2 {
		t.Fatalf("fell back to %+v, want full restore of gen 2", res)
	}
	for name, f := range fields {
		for i, v := range f.Data() {
			if v != snaps[1][name][i] {
				t.Fatalf("%s[%d] = %v, want gen-2 value %v", name, i, v, snaps[1][name][i])
			}
		}
	}
}

// tearAfterEntry truncates a checkpoint stream right after entry n's
// frame, then recomputes nothing — the store-level CRC won't match, so
// only frame-level recovery can mine the prefix.
func tearAfterEntry(t *testing.T, data []byte, n int) []byte {
	t.Helper()
	r := bytes.NewReader(data)
	br := newByteReader(r)
	if _, err := readStreamHeader(br); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= n; i++ {
		if _, _, err := readEntryFrame(br, i); err != nil {
			t.Fatal(err)
		}
	}
	cut := len(data) - r.Len()
	return data[:cut]
}

func TestRestoreLatestPartialFromTornTail(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 2)
	mgr := NewManager(None{}, 1)
	fields := registerSample(t, mgr)
	want := snapshot(fields)

	var buf bytes.Buffer
	if _, err := mgr.Checkpoint(&buf, 9); err != nil {
		t.Fatal(err)
	}
	// Commit a single generation whose tail is torn after the first
	// entry: only "temperature" survives.
	torn := tearAfterEntry(t, buf.Bytes(), 0)
	if _, err := st.Commit(9, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gen-00000001.ckpt")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	scramble(fields)
	res, err := mgr.RestoreLatest(st)
	if err != nil {
		t.Fatalf("RestoreLatest on torn tail: %v", err)
	}
	if !res.Partial {
		t.Fatalf("expected a partial restore, got %+v", res)
	}
	if len(res.Restored) != 1 || res.Restored[0] != "temperature" {
		t.Fatalf("restored %v, want [temperature]", res.Restored)
	}
	if len(res.Skipped) != 2 {
		t.Fatalf("skipped %v, want the two lost arrays", res.Skipped)
	}
	for i, v := range fields["temperature"].Data() {
		if v != want["temperature"][i] {
			t.Fatalf("temperature[%d] = %v, want %v", i, v, want["temperature"][i])
		}
	}
	// The torn arrays stay scrambled — flagged, not silently zeroed.
	if fields["pressure"].Data()[0] != -1 {
		t.Fatal("skipped array was unexpectedly written")
	}
}

func TestRestorePartialSkipsFlippedFrame(t *testing.T) {
	mgr := NewManager(None{}, 1)
	fields := registerSample(t, mgr)
	want := snapshot(fields)
	var buf bytes.Buffer
	if _, err := mgr.Checkpoint(&buf, 5); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	// Locate entry 1's body and flip a bit inside it: its CRC fails but
	// entries 0 and 2 stay recoverable because the outer framing is
	// intact.
	r := bytes.NewReader(data)
	br := newByteReader(r)
	if _, err := readStreamHeader(br); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readEntryFrame(br, 0); err != nil {
		t.Fatal(err)
	}
	entry1Start := len(data) - r.Len()
	data[entry1Start+4+8+10] ^= 0x80 // 10 bytes into entry 1's body

	scramble(fields)
	rep, skipped, err := mgr.RestorePartial(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("RestorePartial: %v", err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("restored %d entries, want 2", len(rep.Entries))
	}
	if len(skipped) != 1 || skipped[0] != "pressure" {
		t.Fatalf("skipped %v, want [pressure]", skipped)
	}
	for _, name := range []string{"temperature", "wind_u"} {
		for i, v := range fields[name].Data() {
			if v != want[name][i] {
				t.Fatalf("%s[%d] not restored", name, i)
			}
		}
	}
}

func TestLoadLatestDiscoversFields(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 2)
	mgr := NewManager(NewGzip(), 1)
	fields := registerSample(t, mgr)
	want := snapshot(fields)
	if _, _, err := mgr.CheckpointTo(st, 77); err != nil {
		t.Fatal(err)
	}

	lc, err := LoadLatest(st, 1)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if lc.Partial || lc.Step != 77 || lc.Codec != "gzip" || len(lc.Fields) != 3 {
		t.Fatalf("loaded %+v", lc)
	}
	for _, lf := range lc.Fields {
		ref := want[lf.Name]
		if ref == nil {
			t.Fatalf("unexpected field %q", lf.Name)
		}
		for i, v := range lf.Field.Data() {
			if v != ref[i] {
				t.Fatalf("%s[%d] = %v, want %v", lf.Name, i, v, ref[i])
			}
		}
	}
}

func TestRestoreLatestEmptyStore(t *testing.T) {
	st := openStore(t, t.TempDir(), 2)
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)
	if _, err := mgr.RestoreLatest(st); !errors.Is(err, ErrStoreEmpty) {
		t.Fatalf("RestoreLatest on empty store = %v, want ErrStoreEmpty", err)
	}
	if _, err := LoadLatest(st, 1); !errors.Is(err, ErrStoreEmpty) {
		t.Fatalf("LoadLatest on empty store = %v, want ErrStoreEmpty", err)
	}
}

// TestStreamCRCMatchesStore sanity-checks that the store-level CRC and
// the stream's own frame CRCs protect the same bytes (no double
// transformation).
func TestStreamCRCMatchesStore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 2)
	mgr := NewManager(None{}, 1)
	registerSample(t, mgr)
	var buf bytes.Buffer
	if _, err := mgr.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	gen, err := st.Commit(1, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gen.CRC != crc32.ChecksumIEEE(buf.Bytes()) {
		t.Fatal("store CRC does not cover the raw stream bytes")
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "gen-00000001.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Fatal("on-disk generation is not the raw stream")
	}
}
