package ckpt

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/stats"
)

// smoothField builds a smooth test array.
func smoothField(shape ...int) *grid.Field {
	f := grid.MustNew(shape...)
	for i := range f.Data() {
		f.Data()[i] = 500 + 100*math.Sin(float64(i)/200) + 10*math.Cos(float64(i)/37)
	}
	return f
}

func registerSample(t *testing.T, m *Manager) map[string]*grid.Field {
	t.Helper()
	fields := map[string]*grid.Field{
		"temperature": smoothField(64, 20, 2),
		"pressure":    smoothField(64, 20, 2),
		"wind_u":      smoothField(32, 32),
	}
	for _, name := range []string{"temperature", "pressure", "wind_u"} {
		if err := m.Register(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	return fields
}

func TestCheckpointRestoreAllCodecs(t *testing.T) {
	for _, codecName := range []string{"none", "gzip", "fpc", "lossy"} {
		codec, err := CodecByName(codecName)
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(codec, 2)
		fields := registerSample(t, m)
		originals := map[string]*grid.Field{}
		for n, f := range fields {
			originals[n] = f.Clone()
		}

		var buf bytes.Buffer
		rep, err := m.Checkpoint(&buf, 720)
		if err != nil {
			t.Fatalf("%s: checkpoint: %v", codecName, err)
		}
		if rep.Step != 720 || rep.Codec != codecName || len(rep.Entries) != 3 {
			t.Errorf("%s: report %+v", codecName, rep)
		}
		if rep.FileBytes != buf.Len() {
			t.Errorf("%s: FileBytes %d, stream %d", codecName, rep.FileBytes, buf.Len())
		}

		// Scramble the live state, then restore.
		for _, f := range fields {
			f.Fill(-1)
		}
		rrep, err := m.Restore(&buf)
		if err != nil {
			t.Fatalf("%s: restore: %v", codecName, err)
		}
		if rrep.Step != 720 {
			t.Errorf("%s: restored step %d", codecName, rrep.Step)
		}
		for n, f := range fields {
			if codec.Lossless() {
				if !f.Equal(originals[n]) {
					t.Errorf("%s: %q not restored bit-exactly", codecName, n)
				}
			} else {
				s, _ := stats.Compare(originals[n].Data(), f.Data())
				if s.AvgPct > 1 {
					t.Errorf("%s: %q avg error %.4f%% after lossy restore", codecName, n, s.AvgPct)
				}
			}
		}
	}
}

func TestRegistrationErrors(t *testing.T) {
	m := NewManager(None{}, 1)
	f := smoothField(4, 4)
	if err := m.Register("", f); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.Register("a", nil); err == nil {
		t.Error("nil field accepted")
	}
	if err := m.Register("a", f); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", f); err == nil {
		t.Error("duplicate name accepted")
	}
	if got := m.Names(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Names = %v", got)
	}
}

func TestCheckpointWithoutRegistration(t *testing.T) {
	m := NewManager(None{}, 1)
	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 0); err == nil {
		t.Error("empty manager checkpoint accepted")
	}
	if _, err := m.Checkpoint(&buf, -1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestRestoreCodecMismatch(t *testing.T) {
	m1 := NewManager(None{}, 1)
	registerSample(t, m1)
	var buf bytes.Buffer
	if _, err := m1.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(NewGzip(), 1)
	registerSample(t, m2)
	if _, err := m2.Restore(&buf); !errors.Is(err, ErrMismatch) {
		t.Errorf("codec mismatch: got %v", err)
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	m1 := NewManager(None{}, 1)
	if err := m1.Register("x", smoothField(8, 8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m1.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(None{}, 1)
	if err := m2.Register("x", smoothField(8, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Restore(&buf); !errors.Is(err, ErrMismatch) {
		t.Errorf("shape mismatch: got %v", err)
	}
}

func TestRestoreUnknownVariable(t *testing.T) {
	m1 := NewManager(None{}, 1)
	if err := m1.Register("x", smoothField(8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m1.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(None{}, 1)
	if err := m2.Register("y", smoothField(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Restore(&buf); !errors.Is(err, ErrMismatch) {
		t.Errorf("unknown variable: got %v", err)
	}
}

func TestRestoreCorruptionDetected(t *testing.T) {
	m := NewManager(NewGzip(), 1)
	registerSample(t, m)
	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= 0xFF
		m2 := NewManager(NewGzip(), 1)
		registerSample(t, m2)
		if _, err := m2.Restore(bytes.NewReader(mut)); err == nil {
			t.Error("corrupted checkpoint accepted")
		}
	}
	// Truncation.
	m3 := NewManager(NewGzip(), 1)
	registerSample(t, m3)
	if _, err := m3.Restore(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestRestoreGarbage(t *testing.T) {
	m := NewManager(None{}, 1)
	registerSample(t, m)
	if _, err := m.Restore(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, ErrFormat) {
		t.Errorf("garbage: got %v", err)
	}
}

func TestLossyCheckpointSmallerThanGzip(t *testing.T) {
	mkMgr := func(c Codec) (*Manager, *bytes.Buffer) {
		m := NewManager(c, 2)
		registerSample(t, m)
		return m, &bytes.Buffer{}
	}
	mg, bg := mkMgr(NewGzip())
	repG, err := mg.Checkpoint(bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ml, bl := mkMgr(NewLossy())
	repL, err := ml.Checkpoint(bl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if repL.CompressionRatePct() >= repG.CompressionRatePct() {
		t.Errorf("lossy cr %.1f%% not below gzip cr %.1f%%",
			repL.CompressionRatePct(), repG.CompressionRatePct())
	}
}

func TestParallelWorkersProduceSameStream(t *testing.T) {
	run := func(workers int) []byte {
		m := NewManager(NewLossy(), workers)
		registerSample(t, m)
		var buf bytes.Buffer
		if _, err := m.Checkpoint(&buf, 7); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(1), run(4)
	if !bytes.Equal(a, b) {
		t.Error("checkpoint stream depends on worker count")
	}
}

func TestAggregateTimings(t *testing.T) {
	m := NewManager(NewLossy(), 2)
	registerSample(t, m)
	var buf bytes.Buffer
	rep, err := m.Checkpoint(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg := rep.AggregateTimings()
	if agg.Total <= 0 || agg.Wavelet <= 0 || agg.Gzip <= 0 {
		t.Errorf("aggregate timings missing phases: %+v", agg)
	}
	if rep.Wall <= 0 {
		t.Error("zero wall time")
	}
}

func TestCodecByName(t *testing.T) {
	for _, n := range []string{"none", "gzip", "fpc", "lossy"} {
		c, err := CodecByName(n)
		if err != nil || c.Name() != n {
			t.Errorf("CodecByName(%q) = %v, %v", n, c, err)
		}
	}
	if _, err := CodecByName("zfp"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestLossyDecodeShapeValidation(t *testing.T) {
	c := NewLossy()
	f := smoothField(16, 8, 2)
	enc, err := c.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(enc.Payload, []int{16, 8}); err == nil {
		t.Error("wrong dims accepted")
	}
	if _, err := c.Decode(enc.Payload, []int{16, 8, 3}); err == nil {
		t.Error("wrong extent accepted")
	}
}

func TestNoneCodecPayloadValidation(t *testing.T) {
	var c None
	if _, err := c.Decode([]byte{1, 2, 3}, []int{4}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestRestoreForgedHugeEntryLength(t *testing.T) {
	// Regression for a fuzzer-found bug: a header claiming a multi-GB
	// entry length must fail on the short stream instead of allocating
	// the claimed size up front.
	m := NewManager(None{}, 1)
	if err := m.Register("x", smoothField(8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The entry length field sits right after magic(4) + version(2) +
	// codec string(2+4) + step(8) + count(4) + crc(4) = offset 28.
	forged := append([]byte(nil), raw...)
	for i := 0; i < 8; i++ {
		forged[28+i] = 0xFF // claim ~2^64 bytes
	}
	forged[28+5] = 0 // keep it under the 1<<40 sanity cap: 0x000000FFFFFFFFFF
	m2 := NewManager(None{}, 1)
	if err := m2.Register("x", smoothField(8)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m2.Restore(bytes.NewReader(forged))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("forged entry length accepted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Restore hung on forged entry length")
	}
}

func TestLossyChunkedCodecThroughManager(t *testing.T) {
	// The chunked lossy codec must interoperate with Restore transparently
	// (payload framing is sniffed).
	temp := smoothField(120, 20, 2)
	orig := temp.Clone()
	codec := NewLossy()
	codec.ChunkExtent = 32
	m := NewManager(codec, 2)
	if err := m.Register("temperature", temp); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep, err := m.Checkpoint(&buf, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompressionRatePct() >= 100 {
		t.Errorf("chunked cr %.1f%%", rep.CompressionRatePct())
	}
	temp.Fill(0)
	if _, err := m.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	s, _ := stats.Compare(orig.Data(), temp.Data())
	if s.AvgPct > 1 {
		t.Errorf("chunked restore error %.4f%%", s.AvgPct)
	}
}

func TestLossyLogScaleCodec(t *testing.T) {
	temp := smoothField(64, 20, 2)
	orig := temp.Clone()
	codec := NewLossy()
	codec.Options.LogQuant = true
	m := NewManager(codec, 1)
	if err := m.Register("x", temp); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Checkpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	temp.Fill(0)
	if _, err := m.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	s, _ := stats.Compare(orig.Data(), temp.Data())
	if s.AvgPct > 1 {
		t.Errorf("log-quant restore error %.4f%%", s.AvgPct)
	}
}
