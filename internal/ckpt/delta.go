// delta.go is the manager half of delta checkpointing. With
// Manager.SetDelta(true), each checkpoint fingerprints every registered
// array against the previous checkpoint and skips the compression work
// that cannot have changed:
//
//   - codecs implementing DeltaEncoder (the chunked lossy pipeline)
//     reuse per-slab compressed frames through a core.SlabCache, so
//     compression CPU scales with the mutated fraction of each array;
//   - every other codec gets whole-variable reuse — an unchanged array
//     re-emits its cached compressed payload without encoding at all.
//
// Either way the emitted stream is byte-identical to a non-delta
// checkpoint of the same state (per-slab and per-array compression are
// deterministic), so restore, verification and the store layer are
// untouched. Restore invalidates all caches: the live state jumped to a
// checkpoint, and the next delta must re-baseline against it.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
)

// DeltaEncoder is an optional Codec extension for codecs that can reuse
// slab-level compression work between checkpoints of the same variable.
type DeltaEncoder interface {
	// DeltaCapable reports whether this configuration actually supports
	// slab reuse (e.g. the lossy codec only in chunked mode). When false
	// the manager falls back to whole-variable reuse.
	DeltaCapable() bool
	// EncodeNamedDelta is EncodeNamed with a slab cache carried between
	// calls: clean slabs re-emit their cached frame, dirty slabs run the
	// pipeline. The payload must be byte-identical to EncodeNamed's.
	EncodeNamedDelta(name string, f *grid.Field, cache *core.SlabCache) (*Encoded, error)
}

// DeltaCapable implements DeltaEncoder: slab reuse requires the chunked
// engine — whole-array streams have no per-slab frames to reuse.
func (c *Lossy) DeltaCapable() bool { return c.ChunkExtent > 0 }

// EncodeNamedDelta implements DeltaEncoder.
func (c *Lossy) EncodeNamedDelta(name string, f *grid.Field, cache *core.SlabCache) (*Encoded, error) {
	if c.ChunkExtent <= 0 {
		return c.EncodeNamed(name, f)
	}
	opts := c.optionsFor(name, f)
	res, err := core.CompressChunkedDelta(f, opts, c.ChunkExtent, cache)
	if err != nil {
		return nil, err
	}
	enc := &Encoded{
		Payload:      res.Data,
		RawBytes:     res.RawBytes,
		Timings:      res.Timings,
		ChunkTimings: res.PerChunk,
		SlabsReused:  res.SlabsReused,
		SlabsTotal:   res.Chunks,
	}
	c.annotate(enc, opts)
	c.feedback(name, enc)
	return enc, nil
}

// varDelta is one variable's carried-over state: the slab cache for
// DeltaEncoder codecs, or the whole-array fingerprint plus cached
// encoding for everything else.
type varDelta struct {
	slabs core.SlabCache
	sum   [sha256.Size]byte
	enc   *Encoded
	have  bool
}

// SetDelta enables or disables delta checkpointing. Enabling starts
// with cold caches (the first checkpoint afterwards compresses
// everything); disabling drops all cached state.
func (m *Manager) SetDelta(on bool) {
	if !on {
		m.delta = nil
		return
	}
	if m.delta == nil {
		m.delta = make(map[string]*varDelta)
	}
}

// DeltaEnabled reports whether delta checkpointing is on.
func (m *Manager) DeltaEnabled() bool { return m.delta != nil }

// resetDelta invalidates every per-variable cache: the registered state
// no longer descends from the last checkpoint (a restore overwrote it).
func (m *Manager) resetDelta() {
	if m.delta != nil {
		m.delta = make(map[string]*varDelta)
	}
}

// deltaFor returns this checkpoint's per-variable delta slots, creating
// missing ones up front so the parallel encode loop never writes the
// map concurrently. nil when delta is off.
func (m *Manager) deltaFor() map[string]*varDelta {
	if m.delta == nil {
		return nil
	}
	for _, name := range m.names {
		if m.delta[name] == nil {
			m.delta[name] = &varDelta{}
		}
	}
	return m.delta
}

// sumField fingerprints an array's raw float64 image in bounded blocks.
func sumField(f *grid.Field) [sha256.Size]byte {
	h := sha256.New()
	var buf [4096]byte
	data := f.Data()
	for len(data) > 0 {
		n := len(buf) / 8
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(data[i]))
		}
		h.Write(buf[:8*n])
		data = data[n:]
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// encodeDelta encodes one variable under delta rules. vd must be this
// variable's slot (non-nil); de is the codec's DeltaEncoder extension
// or nil. Exactly one goroutine touches one vd, so no locking.
func (m *Manager) encodeDelta(name string, f *grid.Field, vd *varDelta, de DeltaEncoder) (*Encoded, error) {
	if de != nil && de.DeltaCapable() {
		// Slab-level reuse: the cache fingerprints per slab, a
		// whole-variable fingerprint would just hash everything twice.
		return de.EncodeNamedDelta(name, f, &vd.slabs)
	}
	sum := sumField(f)
	if vd.have && vd.sum == sum {
		// Unchanged variable: re-emit the cached encoding. The copy keeps
		// callers from sharing Timings mutations with the cache.
		enc := *vd.enc
		enc.Reused = true
		return &enc, nil
	}
	enc, err := m.encodePlain(name, f)
	if err != nil {
		return nil, err
	}
	if enc.Payload == nil {
		// Whole-entry reuse needs the payload bytes; a codec that only
		// streams cannot be cached. Serve the encode, skip the cache.
		return enc, nil
	}
	cached := *enc
	cached.Timings = core.Timings{}
	cached.ChunkTimings = nil
	vd.sum = sum
	vd.enc = &cached
	vd.have = true
	return enc, nil
}

// addReuse folds one entry's delta accounting into the report.
func (r *Report) addReuse(enc *Encoded) {
	if enc.Reused {
		r.ReusedEntries++
	}
	r.DeltaSlabsReused += enc.SlabsReused
	if enc.SlabsTotal > 0 {
		r.DeltaSlabsCompressed += enc.SlabsTotal - enc.SlabsReused
	}
}

// encodePlain is the non-delta single-variable encode (buffered).
func (m *Manager) encodePlain(name string, f *grid.Field) (*Encoded, error) {
	if named, ok := m.codec.(NamedEncoder); ok {
		return named.EncodeNamed(name, f)
	}
	return m.codec.Encode(f)
}
