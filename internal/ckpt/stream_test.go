package ckpt

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/stats"
)

// streamCodecs are the codec configurations the v2 format tests sweep:
// both StreamEncoder implementations (none, gzip, lossy chunked and
// whole-array) and the buffered fallbacks (fpc, guard).
func streamCodecs() map[string]Codec {
	chunked := NewLossy()
	chunked.ChunkExtent = 16
	chunked.Options.Workers = 2
	return map[string]Codec{
		"none":          None{},
		"gzip":          NewGzip(),
		"fpc":           &FPC{},
		"lossy":         NewLossy(),
		"lossy-chunked": chunked,
		"guard":         mustCodec("guard"),
	}
}

func mustCodec(name string) Codec {
	c, err := CodecByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// TestCheckpointStreamRoundTrip writes a v2 stream with every codec and
// restores it through the version-aware reader.
func TestCheckpointStreamRoundTrip(t *testing.T) {
	for label, codec := range streamCodecs() {
		m := NewManager(codec, 2)
		fields := registerSample(t, m)
		originals := map[string]*grid.Field{}
		for n, f := range fields {
			originals[n] = f.Clone()
		}

		var buf bytes.Buffer
		rep, err := m.CheckpointStream(&buf, 720)
		if err != nil {
			t.Fatalf("%s: stream checkpoint: %v", label, err)
		}
		if rep.FileBytes != buf.Len() {
			t.Errorf("%s: FileBytes %d, stream %d", label, rep.FileBytes, buf.Len())
		}
		if rep.Step != 720 || len(rep.Entries) != 3 {
			t.Errorf("%s: report %+v", label, rep)
		}
		for _, e := range rep.Entries {
			if e.CompressedBytes <= 0 || e.RawBytes <= 0 {
				t.Errorf("%s: entry %q accounting %+v", label, e.Name, e)
			}
		}

		for _, f := range fields {
			f.Fill(-1)
		}
		rrep, err := m.Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: restore: %v", label, err)
		}
		if rrep.Step != 720 {
			t.Errorf("%s: restored step %d", label, rrep.Step)
		}
		for n, f := range fields {
			if codec.Lossless() {
				if !f.Equal(originals[n]) {
					t.Errorf("%s: %q not restored bit-exactly", label, n)
				}
			} else {
				s, _ := stats.Compare(originals[n].Data(), f.Data())
				if s.AvgPct > 1 {
					t.Errorf("%s: %q avg error %.4f%% after lossy restore", label, n, s.AvgPct)
				}
			}
		}
	}
}

// TestCheckpointStreamPayloadMatchesBuffered pins that streaming changes
// the framing, not the codec bytes: a v2 entry payload decoded back must
// equal the v1 payload for a deterministic codec.
func TestCheckpointStreamPayloadMatchesBuffered(t *testing.T) {
	m := NewManager(None{}, 1)
	registerSample(t, m)

	var v1, v2 bytes.Buffer
	if _, err := m.Checkpoint(&v1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CheckpointStream(&v2, 7); err != nil {
		t.Fatal(err)
	}
	ents1 := scanEntries(t, v1.Bytes())
	ents2 := scanEntries(t, v2.Bytes())
	if len(ents1) != len(ents2) {
		t.Fatalf("entry counts %d vs %d", len(ents1), len(ents2))
	}
	for i := range ents1 {
		if ents1[i].Name != ents2[i].Name || !bytes.Equal(ents1[i].Payload, ents2[i].Payload) {
			t.Errorf("entry %d (%q) payload differs between v1 and v2", i, ents1[i].Name)
		}
	}
}

// scanEntries walks a stream with the version-aware reader, returning
// every parsed entry and failing on any damage.
func scanEntries(t *testing.T, data []byte) []*rawEntry {
	t.Helper()
	br := newByteReader(bytes.NewReader(data))
	hdr, err := readStreamHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]*rawEntry, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		ent, err := readEntry(br, hdr.Version, i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		ents = append(ents, ent)
	}
	return ents
}

// entryOffsets returns the byte offset of every entry in a stream.
func entryOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	rd := bytes.NewReader(data)
	br := newByteReader(rd)
	hdr, err := readStreamHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		offs = append(offs, len(data)-rd.Len())
		if _, err := readEntry(br, hdr.Version, i); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	return offs
}

// TestStreamPartialRestore corrupts one v2 entry's payload: strict
// Restore must fail, RestorePartial must skip exactly that variable, and
// lenient loadStream must count one skipped frame.
func TestStreamPartialRestore(t *testing.T) {
	m := NewManager(None{}, 1)
	fields := registerSample(t, m)
	originals := map[string]*grid.Field{}
	for n, f := range fields {
		originals[n] = f.Clone()
	}
	var buf bytes.Buffer
	if _, err := m.CheckpointStream(&buf, 9); err != nil {
		t.Fatal(err)
	}
	offs := entryOffsets(t, buf.Bytes())
	victim := scanEntries(t, buf.Bytes())[1].Name

	// Flip a byte inside entry 1's first payload segment (prologue =
	// name + u16 dims + u64 extents, then the u32 segment length).
	mut := append([]byte(nil), buf.Bytes()...)
	proLen := 2 + len(victim) + 2 + 8*len(originals[victim].Shape())
	mut[offs[1]+proLen+4+64] ^= 0xA5

	if _, err := m.Restore(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) {
		t.Fatalf("strict restore of damaged stream: %v", err)
	}

	for _, f := range fields {
		f.Fill(-1)
	}
	rep, skipped, err := m.RestorePartial(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != victim {
		t.Fatalf("skipped %v, want [%s]", skipped, victim)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("restored %d entries, want 2", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if !fields[e.Name].Equal(originals[e.Name]) {
			t.Errorf("%q not restored bit-exactly around the damage", e.Name)
		}
	}

	lc, err := loadStream(bytes.NewReader(mut), 1, true)
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if lc.SkippedFrames != 1 || !lc.Partial || len(lc.Fields) != 2 {
		t.Fatalf("lenient load: skipped %d partial %v fields %d", lc.SkippedFrames, lc.Partial, len(lc.Fields))
	}
}

// TestStreamTornTail truncates a v2 stream inside the middle entry:
// partial restore keeps everything before the tear and reports the rest
// skipped.
func TestStreamTornTail(t *testing.T) {
	m := NewManager(None{}, 1)
	fields := registerSample(t, m)
	var buf bytes.Buffer
	if _, err := m.CheckpointStream(&buf, 4); err != nil {
		t.Fatal(err)
	}
	offs := entryOffsets(t, buf.Bytes())
	names := m.Names()
	torn := buf.Bytes()[:offs[1]+10]

	rep, skipped, err := m.RestorePartial(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("partial restore of torn stream: %v", err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Name != names[0] {
		t.Fatalf("restored %+v, want just %q", rep.Entries, names[0])
	}
	if len(skipped) != len(fields)-1 {
		t.Fatalf("skipped %v", skipped)
	}
}

// TestStreamInspectAndVerify runs the registration-free audits over a v2
// stream, then checks corruption is caught.
func TestStreamInspectAndVerify(t *testing.T) {
	lossy := NewLossy()
	lossy.ChunkExtent = 16
	m := NewManager(lossy, 1)
	fields := registerSample(t, m)
	var buf bytes.Buffer
	if _, err := m.CheckpointStream(&buf, 12); err != nil {
		t.Fatal(err)
	}

	info, err := InspectStream(buf.Bytes())
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Codec != "lossy" || info.Step != 12 || len(info.Entries) != 3 {
		t.Fatalf("info %+v", info)
	}
	for _, e := range info.Entries {
		want := fields[e.Name].Shape()
		if len(e.Shape) != len(want) {
			t.Errorf("entry %q shape %v, want %v", e.Name, e.Shape, want)
		}
		if e.PayloadBytes <= 0 {
			t.Errorf("entry %q payload %d", e.Name, e.PayloadBytes)
		}
	}
	if err := VerifyStream(buf.Bytes(), true, 1); err != nil {
		t.Fatalf("verify: %v", err)
	}

	mut := append([]byte(nil), buf.Bytes()...)
	mut[len(mut)/2] ^= 0x10
	if err := VerifyStream(mut, false, 1); err == nil {
		t.Error("verify accepted corrupted v2 stream")
	}
}

// TestCheckpointStreamToStore streams a checkpoint straight into the
// store and restores it back, checking the generation record matches the
// streamed bytes.
func TestCheckpointStreamToStore(t *testing.T) {
	lossy := NewLossy()
	lossy.ChunkExtent = 16
	lossy.Options.Workers = 2
	m := NewManager(lossy, 1)
	fields := registerSample(t, m)
	originals := map[string]*grid.Field{}
	for n, f := range fields {
		originals[n] = f.Clone()
	}

	st := openStore(t, t.TempDir(), 3)
	rep, gen, err := m.CheckpointStreamTo(st, 720)
	if err != nil {
		t.Fatalf("stream checkpoint to store: %v", err)
	}
	if int(gen.Size) != rep.FileBytes {
		t.Errorf("generation size %d, report FileBytes %d", gen.Size, rep.FileBytes)
	}

	for _, f := range fields {
		f.Fill(-1)
	}
	sr, err := m.RestoreLatest(st)
	if err != nil {
		t.Fatalf("restore latest: %v", err)
	}
	if sr.Partial || sr.Step != 720 || sr.Generation != gen.Seq {
		t.Fatalf("store restore %+v", sr)
	}
	for n, f := range fields {
		s, _ := stats.Compare(originals[n].Data(), f.Data())
		if s.AvgPct > 1 {
			t.Errorf("%q avg error %.4f%% after store round trip", n, s.AvgPct)
		}
	}

	lc, err := LoadLatest(st, 1)
	if err != nil {
		t.Fatalf("load latest: %v", err)
	}
	if len(lc.Fields) != 3 || lc.Partial {
		t.Fatalf("loaded %+v", lc)
	}
}

// heapPeakWriter samples HeapAlloc at every Write: for the buffered path
// the single Write happens while the whole frame and every payload are
// live, for the streaming path writes happen continuously, so the
// samples bracket each path's true peak without a racy sampler.
type heapPeakWriter struct {
	peak uint64
}

func (h *heapPeakWriter) Write(p []byte) (int, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return len(p), nil
}

// TestCheckpointStreamPeakHeap is the acceptance check for the streaming
// pipeline's memory bound: on the paper's 24 MB nicam16x array
// (18496×82×2 float64), buffered Checkpoint holds the payload plus the
// assembled frame (≥ 2× raw) while CheckpointStream stays within a few
// bounded segment buffers above the registered field itself.
func TestCheckpointStreamPeakHeap(t *testing.T) {
	f := smoothField(18496, 82, 2)
	raw := uint64(f.Bytes())
	newMgr := func() *Manager {
		m := NewManager(None{}, 1)
		if err := m.Register("q", f); err != nil {
			t.Fatal(err)
		}
		return m
	}

	runtime.GC()
	bw := &heapPeakWriter{}
	if _, err := newMgr().Checkpoint(bw, 1); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	sw := &heapPeakWriter{}
	if _, err := newMgr().CheckpointStream(sw, 1); err != nil {
		t.Fatal(err)
	}

	t.Logf("raw %d MiB, buffered peak %d MiB, streamed peak %d MiB",
		raw>>20, bw.peak>>20, sw.peak>>20)
	// Sanity: the buffered path really does hold payload + frame on top
	// of the live field. Without this the comparison below proves nothing.
	if bw.peak < 2*raw {
		t.Fatalf("buffered peak %d below 2x raw %d; test lost sensitivity", bw.peak, raw)
	}
	// The streaming bound: the live field plus O(segment) buffers. 8 MiB
	// of slack covers the runtime's floating garbage between GCs.
	if sw.peak > raw+(8<<20) {
		t.Errorf("streamed peak %d MiB exceeds field + 8 MiB (field %d MiB)", sw.peak>>20, raw>>20)
	}
	if sw.peak > bw.peak/2 {
		t.Errorf("streamed peak %d not under half the buffered peak %d", sw.peak, bw.peak)
	}
}

// TestCheckpointStreamValidation covers the argument checks shared with
// the buffered path.
func TestCheckpointStreamValidation(t *testing.T) {
	m := NewManager(None{}, 1)
	var buf bytes.Buffer
	if _, err := m.CheckpointStream(&buf, 0); !errors.Is(err, ErrRegistered) {
		t.Errorf("empty manager: %v", err)
	}
	registerSample(t, m)
	if _, err := m.CheckpointStream(&buf, -1); !errors.Is(err, ErrRegistered) {
		t.Errorf("negative step: %v", err)
	}
}

// TestStreamChunkedLossyUsesStreamingPath pins that the chunked lossy
// codec's v2 payload is the exact chunked stream the buffered codec
// produces — i.e. EncodeTo streamed the same frames CompressChunked
// would have buffered.
func TestStreamChunkedLossyUsesStreamingPath(t *testing.T) {
	lossy := NewLossy()
	lossy.ChunkExtent = 8
	f := smoothField(48, 16, 2)

	want, err := core.CompressChunked(f, lossy.Options, lossy.ChunkExtent)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	enc, err := lossy.EncodeTo(&got, f)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Payload != nil {
		t.Error("streaming EncodeTo returned a buffered payload")
	}
	if !bytes.Equal(got.Bytes(), want.Data) {
		t.Errorf("streamed payload differs from buffered chunked stream (%d vs %d bytes)",
			got.Len(), len(want.Data))
	}
}

// Interface conformance for the streaming codecs.
var (
	_ StreamEncoder = None{}
	_ StreamEncoder = (*Gzip)(nil)
	_ StreamEncoder = (*Lossy)(nil)
)
