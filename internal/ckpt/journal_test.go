// journal_test.go proves the flight-recorder acceptance bar: a
// checkpoint killed mid-operation must be fully reconstructable from
// the journal alone — the stage it reached, the bytes committed per
// replica, and every replica's vote outcome.
package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/store"
)

// TestJournalReconstructsKilledCheckpoint streams a checkpoint into a
// 3-replica store (one replica dead, quorum W=2), then emulates a
// process kill by tearing the journal mid-way through the root end
// record — exactly what a kill during the final append leaves behind.
// Replay must recover the last stage the checkpoint reached, the byte
// watermark, the per-replica commits, and all three quorum votes.
func TestJournalReconstructsKilledCheckpoint(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "flight.jsonl")
	j, err := journal.Open(jpath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	lossy := NewLossy()
	m := NewManager(lossy, 1)
	registerSample(t, m)
	m.SetJournal(j)

	// Two healthy-but-slow replicas and one that is already dead: the
	// instant crash failure always reaches the quorum collector before
	// the two successes do, so the journal deterministically carries
	// all three vote outcomes (a straggler voting after quorum End is
	// dropped by design).
	slowA := store.NewFaultFS(store.OsFS{})
	slowB := store.NewFaultFS(store.OsFS{})
	dead := store.NewFaultFS(store.OsFS{})
	root := filepath.Join(dir, "store")
	rst, err := store.OpenReplicated(root, store.ReplicaDirs(root, 3), 2,
		store.Options{Journal: j, Sleep: func(time.Duration) {}},
		slowA, slowB, dead)
	if err != nil {
		t.Fatalf("OpenReplicated: %v", err)
	}
	slowA.SetOpDelay(2 * time.Millisecond)
	slowB.SetOpDelay(2 * time.Millisecond)
	dead.CrashNow()

	if _, _, err := m.CheckpointStreamTo(rst, 42); err != nil {
		t.Fatalf("checkpoint with one dead replica: %v", err)
	}
	rst.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Emulate the kill: cut the file mid-way through the root end
	// record, dropping anything after it.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	endIdx := -1
	for i, ln := range lines {
		if strings.Contains(ln, `"op":"ckpt.checkpoint"`) && strings.Contains(ln, `"phase":"end"`) {
			endIdx = i
		}
	}
	if endIdx < 0 {
		t.Fatalf("no ckpt.checkpoint end record in journal:\n%s", raw)
	}
	tornTail := lines[endIdx][:len(lines[endIdx])/2]
	tornFile := strings.Join(lines[:endIdx], "\n") + "\n" + tornTail
	if err := os.WriteFile(jpath, []byte(tornFile), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := journal.ReadAll(jpath)
	if err != nil {
		t.Fatalf("replaying torn journal: %v", err)
	}
	if !torn {
		t.Fatal("torn tail not detected")
	}

	roots := journal.Replay(recs)
	var ck *journal.OpState
	for _, r := range roots {
		if r.Op == "ckpt.checkpoint" {
			ck = r
		}
	}
	if ck == nil {
		t.Fatalf("no ckpt.checkpoint root among %d roots", len(roots))
	}
	if ck.Complete {
		t.Fatal("killed checkpoint replayed as complete")
	}
	inc := journal.Incomplete(roots)
	found := false
	for _, op := range inc {
		if op.ID == ck.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("killed checkpoint %s missing from Incomplete()", ck.ID)
	}

	// Stage reached: the per-entry progress breadcrumbs survive the
	// kill, so the furthest entry and its byte watermark are known.
	if !strings.HasPrefix(ck.LastStage, "entry:") {
		t.Fatalf("stage reached = %q, want entry:<var>", ck.LastStage)
	}
	if ck.LastBytes <= 0 {
		t.Fatalf("byte watermark = %d, want > 0", ck.LastBytes)
	}

	// Bytes committed: each replica's store.commit child carries the
	// durable byte count; the two live replicas completed theirs.
	var quorum *journal.OpState
	committed := 0
	for _, c := range ck.Children {
		switch c.Op {
		case "store.quorum_commit":
			quorum = c
		case "store.commit":
			if c.Complete && c.Err == "" {
				if c.BytesOut <= 0 {
					t.Errorf("completed replica commit %s has %d bytes", c.ID, c.BytesOut)
				}
				committed++
			}
		}
	}
	if committed != 2 {
		t.Errorf("completed replica commits = %d, want 2", committed)
	}

	// Replica votes: the quorum op ended before the kill, carrying one
	// failed vote (the dead replica) and two successes.
	if quorum == nil {
		t.Fatal("no store.quorum_commit child under the checkpoint op")
	}
	if !quorum.Complete || quorum.Err != "" {
		t.Fatalf("quorum op complete=%v err=%q", quorum.Complete, quorum.Err)
	}
	if len(quorum.Votes) != 3 {
		t.Fatalf("votes = %d, want 3: %+v", len(quorum.Votes), quorum.Votes)
	}
	ok, failed := 0, 0
	for _, v := range quorum.Votes {
		if v.OK {
			ok++
		} else {
			failed++
			if v.Err == "" {
				t.Errorf("failed vote from replica %s has no error", v.Replica)
			}
		}
	}
	if ok != 2 || failed != 1 {
		t.Fatalf("vote split ok=%d failed=%d, want 2/1", ok, failed)
	}
}

// TestJournalRecordsRestore: a restore through the store shows up as
// its own complete wide event with per-variable entries.
func TestJournalRecordsRestore(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "flight.jsonl")
	j, err := journal.Open(jpath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(NewLossy(), 1)
	fields := registerSample(t, m)
	m.SetJournal(j)
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CheckpointStreamTo(st, 7); err != nil {
		t.Fatal(err)
	}
	for _, f := range fields {
		f.Fill(-1)
	}
	if _, err := m.RestoreLatest(st); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := journal.ReadAll(jpath)
	if err != nil || torn {
		t.Fatalf("read: torn=%v err=%v", torn, err)
	}
	var restore *journal.OpState
	for _, r := range journal.Replay(recs) {
		if strings.HasPrefix(r.Op, "ckpt.restore") {
			restore = r
		}
	}
	if restore == nil {
		t.Fatal("no restore op in journal")
	}
	if !restore.Complete || restore.Err != "" {
		t.Fatalf("restore op complete=%v err=%q", restore.Complete, restore.Err)
	}
	if len(restore.Entries) != len(fields) {
		t.Fatalf("restore entries = %d, want %d", len(restore.Entries), len(fields))
	}
}
