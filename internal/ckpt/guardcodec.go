package ckpt

import (
	"lossyckpt/internal/core"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/tune"
)

// NamedEncoder is an optional Codec extension: codecs that care which
// variable they are encoding (the guard applies per-variable policy
// overrides and labels its telemetry) implement it, and the manager
// prefers it over Encode when present. Implementations must be safe for
// concurrent use, like Codec.
type NamedEncoder interface {
	EncodeNamed(name string, f *grid.Field) (*Encoded, error)
}

// Guard wraps the lossy pipeline in internal/guard's bounded-error
// enforcement: every entry's payload is a guard envelope carrying the
// guarantee it ships with, and violations degrade down the ladder to
// bit-exact gzip rather than out of spec.
type Guard struct {
	// Options configures the underlying pipeline (guard ladder rungs
	// override ErrorBound/Method/LosslessBands per attempt).
	Options core.Options
	// Policy is the quality guarantee to enforce; the zero value enforces
	// nothing but still annotates entries (mode "unbounded").
	Policy guard.Policy
	// Tuner, when set, picks the entropy-stage configuration per variable
	// before the ladder runs. The ladder stays the enforcement backstop:
	// tuning only changes lossless entropy framing, and the final gzip
	// rung is untouched.
	Tuner *tune.Tuner
}

// NewGuard returns a Guard codec over the paper's default pipeline
// configuration with the given policy.
func NewGuard(pol guard.Policy) *Guard {
	return &Guard{Options: core.DefaultOptions(), Policy: pol}
}

// Name implements Codec.
func (*Guard) Name() string { return "guard" }

// Lossless implements Codec. The guard is not lossless in general — only
// individual entries that fell back are, and their annotations say so.
func (*Guard) Lossless() bool { return false }

// Encode implements Codec (no variable name: base policy only).
func (c *Guard) Encode(f *grid.Field) (*Encoded, error) {
	return c.EncodeNamed("", f)
}

// EncodeNamed implements NamedEncoder.
func (c *Guard) EncodeNamed(name string, f *grid.Field) (*Encoded, error) {
	opts := c.Options
	opts.VarName = name
	if c.Tuner != nil {
		n := f.Len()
		if n*8 > tuneSampleBytes {
			n = tuneSampleBytes / 8
		}
		opts = c.Tuner.Decide(name, f.Bytes(), floatsToBytes(f.Data()[:n])).Apply(opts)
		opts.VarName = name
	}
	out, err := guard.Encode(name, f, opts, c.Policy)
	if err != nil {
		return nil, err
	}
	ann := out.Annotation
	return &Encoded{Payload: out.Payload, RawBytes: out.RawBytes, Guarantee: &ann}, nil
}

// Decode implements Codec.
func (c *Guard) Decode(payload []byte, shape []int) (*grid.Field, error) {
	f, _, err := guard.Decode(payload, shape, c.Options.Workers)
	return f, err
}

// entryGuarantee sniffs a guard annotation off an entry payload; nil for
// non-enveloped codec payloads or a corrupt envelope (the decode proper
// reports that error).
func entryGuarantee(payload []byte) *guard.Annotation {
	if !guard.IsEnveloped(payload) {
		return nil
	}
	ann, err := guard.ParseAnnotation(payload)
	if err != nil {
		return nil
	}
	return &ann
}
