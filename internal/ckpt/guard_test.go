package ckpt

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"lossyckpt/internal/guard"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/store"
)

// guardManager builds a Manager over the guard codec with the given
// base policy.
func guardManager(pol guard.Policy, workers int) *Manager {
	return NewManager(NewGuard(pol), workers)
}

// TestGuardRestoreReportsBound is the restore-side guarantee contract:
// a generation checkpointed under an enforced bound restores with every
// entry annotated, and the decoded data actually honors the bound the
// annotation advertises.
func TestGuardRestoreReportsBound(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	const bound = 1e-3
	mgr := guardManager(guard.Policy{MaxAbs: bound, Verify: guard.VerifyDecode}, 2)
	fields := registerSample(t, mgr)
	want := snapshot(fields)

	crep, _, err := mgr.CheckpointTo(st, 11)
	if err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	for _, e := range crep.Entries {
		if e.Guarantee == nil {
			t.Fatalf("checkpoint entry %q has no guarantee", e.Name)
		}
		if !e.Guarantee.Guaranteed() {
			t.Fatalf("entry %q not guaranteed under enforced policy: %+v", e.Name, e.Guarantee)
		}
	}

	scramble(fields)
	res, err := mgr.RestoreLatest(st)
	if err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	for _, e := range res.Report.Entries {
		g := e.Guarantee
		if g == nil {
			t.Fatalf("restore entry %q lost its guarantee annotation", e.Name)
		}
		if g.MaxAbs != bound {
			t.Fatalf("restore entry %q reports bound %v, want %v", e.Name, g.MaxAbs, bound)
		}
		if g.String() == "" {
			t.Fatalf("entry %q guarantee renders empty", e.Name)
		}
	}
	// The restored data really is within the advertised bound.
	for name, f := range fields {
		maxAbs, err := stats.MaxAbsError(want[name], f.Data())
		if err != nil {
			t.Fatal(err)
		}
		if maxAbs > bound {
			t.Fatalf("%s restored with error %v > declared bound %v", name, maxAbs, bound)
		}
	}
}

// TestGuardLosslessFallbackRestoresBitExact: non-finite data forces the
// guard down to the gzip-only rung; the generation must restore
// bit-identically and say so in its annotation.
func TestGuardLosslessFallbackRestoresBitExact(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := guardManager(guard.Policy{MaxAbs: 1e-6, Verify: guard.VerifyAnalytic}, 1)

	f := smoothField(24, 18)
	f.Data()[7] = math.NaN()
	f.Data()[100] = math.Inf(1)
	if err := mgr.Register("poisoned", f); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), f.Data()...)

	crep, _, err := mgr.CheckpointTo(st, 1)
	if err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	g := crep.Entries[0].Guarantee
	if g == nil || g.Mode != guard.Lossless {
		t.Fatalf("non-finite data guarantee = %+v, want lossless fallback", g)
	}

	for i := range f.Data() {
		f.Data()[i] = -1
	}
	res, err := mgr.RestoreLatest(st)
	if err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	rg := res.Report.Entries[0].Guarantee
	if rg == nil || rg.Mode != guard.Lossless {
		t.Fatalf("restore reports %+v, want lossless", rg)
	}
	for i, v := range f.Data() {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("lossless-fallback restore not bit-exact at %d: %x != %x",
				i, math.Float64bits(v), math.Float64bits(want[i]))
		}
	}
}

// TestGuardPerVarOverrideThroughManager: the manager threads variable
// names to the codec, so per-variable policy overrides land on the right
// entries.
func TestGuardPerVarOverrideThroughManager(t *testing.T) {
	pol := guard.Policy{
		PerVar: map[string]guard.Policy{
			"temperature": {MaxAbs: 1e-4, Verify: guard.VerifyDecode},
		},
	}
	mgr := guardManager(pol, 2)
	registerSample(t, mgr)

	var buf bytes.Buffer
	rep, err := mgr.Checkpoint(&buf, 5)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for _, e := range rep.Entries {
		g := e.Guarantee
		if g == nil {
			t.Fatalf("entry %q missing guarantee", e.Name)
		}
		if e.Name == "temperature" {
			if !g.Guaranteed() || g.MaxAbs != 1e-4 {
				t.Fatalf("temperature guarantee %+v, want enforced 1e-4", g)
			}
		} else if g.Mode != guard.Unbounded {
			t.Fatalf("%q guarantee %+v, want unbounded (no override)", e.Name, g)
		}
	}
}

// TestLoadLatestCarriesGuarantee: the registration-free loader surfaces
// annotations too.
func TestLoadLatestCarriesGuarantee(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := guardManager(guard.Policy{PSNRFloor: 60, Verify: guard.VerifyDecode}, 1)
	registerSample(t, mgr)
	if _, _, err := mgr.CheckpointTo(st, 3); err != nil {
		t.Fatal(err)
	}
	lc, err := LoadLatest(st, 1)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	for _, lf := range lc.Fields {
		if lf.Guarantee == nil {
			t.Fatalf("loaded field %q has no guarantee", lf.Name)
		}
		if lf.Guarantee.PSNRFloor != 60 {
			t.Fatalf("loaded field %q PSNR floor %v, want 60", lf.Name, lf.Guarantee.PSNRFloor)
		}
	}
}

// TestInspectAndVerifyStream covers the registration-free auditors the
// store scrubber plugs in.
func TestInspectAndVerifyStream(t *testing.T) {
	mgr := guardManager(guard.Policy{MaxAbs: 1e-2}, 1)
	registerSample(t, mgr)
	var buf bytes.Buffer
	if _, err := mgr.Checkpoint(&buf, 9); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	info, err := InspectStream(data)
	if err != nil {
		t.Fatalf("InspectStream: %v", err)
	}
	if info.Codec != "guard" || info.Step != 9 || len(info.Entries) != 3 {
		t.Fatalf("info %+v", info)
	}
	for _, e := range info.Entries {
		if e.Guarantee == nil || !e.Guarantee.Guaranteed() {
			t.Fatalf("inspected entry %q guarantee %+v", e.Name, e.Guarantee)
		}
	}
	if err := VerifyStream(data, false, 1); err != nil {
		t.Fatalf("VerifyStream(frame-level): %v", err)
	}
	if err := VerifyStream(data, true, 1); err != nil {
		t.Fatalf("VerifyStream(decode): %v", err)
	}

	// Any flipped byte in the stream must be caught by frame CRCs.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := VerifyStream(corrupt, false, 1); err == nil {
		t.Fatal("VerifyStream accepted a flipped byte")
	}
	if err := VerifyStream(nil, false, 1); err == nil {
		t.Fatal("VerifyStream accepted an empty stream")
	}
}

// TestScrubWithStoreVerifier wires ckpt.StoreVerifier into store.Scrub:
// a generation whose manifest CRC is intact (committed that way) but
// whose content is not a valid checkpoint stream is quarantined with
// reason "verify" — corruption the store's own size/CRC check cannot
// see.
func TestScrubWithStoreVerifier(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 3)
	mgr := guardManager(guard.Policy{MaxAbs: 1e-3}, 1)
	registerSample(t, mgr)
	if _, _, err := mgr.CheckpointTo(st, 1); err != nil {
		t.Fatal(err)
	}
	// Commit junk as a "generation": the store happily CRCs it, only the
	// stream-level verifier knows it is not a checkpoint.
	if _, err := st.Commit(2, []byte("not a checkpoint stream at all")); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Scrub(store.ScrubOptions{Verify: StoreVerifier(true, 1)})
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Seq != 2 || rep.Quarantined[0].Reason != "verify" {
		t.Fatalf("scrub report %+v, want gen 2 quarantined with reason verify", rep)
	}
	if !rep.ManifestRebuilt {
		t.Fatal("newest generation quarantined but manifest not rebuilt")
	}
	// The good guard generation survived and still restores.
	if _, err := mgr.RestoreLatest(st); err != nil {
		t.Fatalf("RestoreLatest after scrub: %v", err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, store.QuarantineDir, "*")); err != nil {
		t.Fatal(err)
	}
}

// TestGuardCodecByName: the registry knows the guard codec so
// registration-free loaders can decode guard streams.
func TestGuardCodecByName(t *testing.T) {
	c, err := CodecByName("guard")
	if err != nil {
		t.Fatalf("CodecByName(guard): %v", err)
	}
	if c.Name() != "guard" || c.Lossless() {
		t.Fatalf("guard codec identity: name=%q lossless=%v", c.Name(), c.Lossless())
	}
	if _, err := CodecByName("nonesuch"); !errors.Is(err, ErrCodec) {
		t.Fatalf("unknown codec error = %v", err)
	}
}

// TestEntryGuaranteeSniff: non-guard payloads and corrupt envelopes
// yield nil, never an error.
func TestEntryGuaranteeSniff(t *testing.T) {
	if g := entryGuarantee([]byte("plain gzip payload")); g != nil {
		t.Fatalf("non-envelope payload sniffed as %+v", g)
	}
	c := NewGuard(guard.Policy{MaxAbs: 1e-2})
	f := smoothField(16, 16)
	enc, err := c.EncodeNamed("x", f)
	if err != nil {
		t.Fatal(err)
	}
	if g := entryGuarantee(enc.Payload); g == nil || g.MaxAbs != 1e-2 {
		t.Fatalf("sniffed %+v, want MaxAbs 1e-2", g)
	}
	bad := append([]byte(nil), enc.Payload...)
	bad[len(bad)-1] ^= 0xFF // break the envelope CRC
	if g := entryGuarantee(bad); g != nil {
		t.Fatalf("corrupt envelope sniffed as %+v", g)
	}
}

var _ NamedEncoder = (*Guard)(nil)
