package ckpt

import (
	"bytes"
	"testing"
)

// FuzzRestore hardens the checkpoint-stream parser: arbitrary input into
// Restore must error out cleanly, never panic or corrupt registered state
// silently.
func FuzzRestore(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CKPT"))

	// Seed with a real stream and systematic corruptions.
	seedMgr := NewManager(NewGzip(), 1)
	fld := smoothField(64, 8)
	if err := seedMgr.Register("x", fld); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := seedMgr.Checkpoint(&buf, 3); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	for _, pos := range []int{0, 6, len(raw) / 3, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xA5
		f.Add(mut)
	}

	// Same corruptions over the v2 segmented layout.
	var sbuf bytes.Buffer
	if _, err := seedMgr.CheckpointStream(&sbuf, 3); err != nil {
		f.Fatal(err)
	}
	sraw := sbuf.Bytes()
	f.Add(sraw)
	f.Add(sraw[:len(sraw)/2])
	for _, pos := range []int{6, 20, len(sraw) / 3, len(sraw) - 5} {
		mut := append([]byte(nil), sraw...)
		mut[pos] ^= 0xA5
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		mgr := NewManager(NewGzip(), 1)
		target := smoothField(64, 8)
		if err := mgr.Register("x", target); err != nil {
			t.Fatal(err)
		}
		_, _ = mgr.Restore(bytes.NewReader(data))
	})
}
