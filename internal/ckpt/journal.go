// journal.go wires the manager into the flight recorder: every
// checkpoint and restore becomes one wide event carrying the per-entry
// stage waterfall (transform → quantize → entropy; per-chunk under the
// chunked paths), the codec/shuffle/divisions each entry actually
// used, and the guard ladder rung it shipped at. The store layer adds
// its own commit/vote child events under the same operation ID.
package ckpt

import (
	"fmt"

	"lossyckpt/internal/core"
	"lossyckpt/internal/obs/journal"
)

// SetJournal routes the manager's flight-recorder events to j. Nil
// disables recording for this manager; without a call the process
// default journal applies (itself a no-op unless installed).
func (m *Manager) SetJournal(j *journal.Journal) {
	m.jrnl = j
	m.jrnlSet = true
}

// journal resolves the manager's effective flight recorder.
func (m *Manager) journal() *journal.Journal {
	if m.jrnlSet {
		return m.jrnl
	}
	return journal.Default()
}

// opFor returns the wide event an operation should fill: the one a
// wrapping store-level call already opened (owned=false), or a fresh
// root op (owned=true — the caller must End it).
func (m *Manager) opFor(name string, attrs ...string) (op *journal.Op, owned bool) {
	if m.curOp != nil {
		return m.curOp, false
	}
	return m.journal().Begin(name, attrs...), true
}

// stagesOf flattens a timing breakdown into the journal's waterfall
// map, skipping zero-valued phases.
func stagesOf(t core.Timings) map[string]float64 {
	out := map[string]float64{}
	put := func(k string, d float64) {
		if d > 0 {
			out[k] = d
		}
	}
	put("transform", t.Wavelet.Seconds())
	put("quantize", t.Quantize.Seconds())
	put("encode", t.Encode.Seconds())
	put("format", t.Format.Seconds())
	put("temp_write", t.TempWrite.Seconds())
	put("entropy", t.Gzip.Seconds())
	put("total", t.Total.Seconds())
	if len(out) == 0 {
		return nil
	}
	return out
}

// fillCheckpoint folds a finished checkpoint into the wide event:
// aggregate waterfall, byte totals, and one entry per variable with
// its own stage breakdown, per-chunk timings, and codec decisions.
func (m *Manager) fillCheckpoint(op *journal.Op, rep *Report, encoded []*Encoded) {
	if op == nil || rep == nil {
		return
	}
	op.Set("codec", rep.Codec)
	op.SetStep(rep.Step)
	op.SetBytes(int64(rep.RawBytes), int64(rep.CompressedBytes))
	agg := rep.AggregateTimings()
	op.Stage("transform", agg.Wavelet)
	op.Stage("quantize", agg.Quantize)
	op.Stage("encode", agg.Encode)
	op.Stage("format", agg.Format)
	op.Stage("entropy", agg.Gzip)
	if m.DeltaEnabled() {
		op.Set("delta", "true",
			"entries_reused", fmt.Sprint(rep.ReusedEntries),
			"slabs_reused", fmt.Sprint(rep.DeltaSlabsReused),
			"slabs_compressed", fmt.Sprint(rep.DeltaSlabsCompressed))
	}
	for i, e := range rep.Entries {
		je := journal.Entry{
			Var:      e.Name,
			BytesIn:  e.RawBytes,
			BytesOut: e.CompressedBytes,
			Stages:   stagesOf(e.Timings),
		}
		if i < len(encoded) && encoded[i] != nil {
			enc := encoded[i]
			je.Codec = enc.EntropyLabel
			je.Divisions = enc.Divisions
			for _, ct := range enc.ChunkTimings {
				je.Chunks = append(je.Chunks, stagesOf(ct))
			}
		}
		if g := e.Guarantee; g != nil {
			je.Guard = g.Mode.String()
			je.Escalations = g.Escalations
		}
		op.Entry(je)
	}
}

// fillRestore folds a finished restore into the wide event.
func fillRestore(op *journal.Op, rep *Report, skipped []string) {
	if op == nil || rep == nil {
		return
	}
	op.Set("codec", rep.Codec)
	op.SetStep(rep.Step)
	op.SetBytes(int64(rep.CompressedBytes), int64(rep.RawBytes))
	for _, e := range rep.Entries {
		je := journal.Entry{Var: e.Name, BytesIn: e.CompressedBytes, BytesOut: e.RawBytes}
		if g := e.Guarantee; g != nil {
			je.Guard = g.Mode.String()
		}
		op.Entry(je)
	}
	for _, name := range skipped {
		op.Entry(journal.Entry{Var: name, Guard: "skipped"})
	}
}
