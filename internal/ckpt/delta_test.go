package ckpt

import (
	"bytes"
	"math"
	"testing"

	"lossyckpt/internal/grid"
)

// deltaManager builds a manager over two smooth 3-D fields.
func deltaManager(t *testing.T, codec Codec) (*Manager, *grid.Field, *grid.Field) {
	t.Helper()
	m := NewManager(codec, 2)
	mk := func(phase float64) *grid.Field {
		f, err := grid.New(16, 10, 8)
		if err != nil {
			t.Fatal(err)
		}
		d := f.Data()
		for i := range d {
			d[i] = math.Sin(float64(i)/53.0 + phase)
		}
		return f
	}
	a, b := mk(0), mk(1.5)
	if err := m.Register("temp", a); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("vel", b); err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

// TestDeltaCheckpointByteIdentical: with delta on, both the buffered and
// streaming checkpoints must produce byte-identical output to a delta-off
// manager over the same state — cold, clean re-checkpoint, and after a
// sparse mutation.
func TestDeltaCheckpointByteIdentical(t *testing.T) {
	lossy := func() *Lossy {
		c := NewLossy()
		c.ChunkExtent = 4
		return c
	}
	mDelta, a, _ := deltaManager(t, lossy())
	mPlain, pa, _ := deltaManager(t, lossy())
	mDelta.SetDelta(true)

	snapshot := func(m *Manager) []byte {
		var buf bytes.Buffer
		if _, err := m.Checkpoint(&buf, 1); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Cold: everything compresses, identical output.
	d0, p0 := snapshot(mDelta), snapshot(mPlain)
	if !bytes.Equal(d0, p0) {
		t.Fatal("cold delta checkpoint differs from plain")
	}

	// Clean re-checkpoint (same step: it is in the header): full reuse,
	// still identical.
	var buf bytes.Buffer
	rep, err := mDelta.Checkpoint(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaSlabsReused == 0 || rep.DeltaSlabsCompressed != 0 {
		t.Fatalf("clean re-checkpoint: reused %d, compressed %d", rep.DeltaSlabsReused, rep.DeltaSlabsCompressed)
	}
	if !bytes.Equal(buf.Bytes(), snapshot(mPlain)) {
		t.Fatal("reused checkpoint differs from plain")
	}

	// Sparse mutation: one slab of one variable dirtied.
	planeElems := a.Len() / 16
	for i := 0; i < planeElems; i++ {
		a.Data()[i] += 0.25
		pa.Data()[i] += 0.25
	}
	var mbuf bytes.Buffer
	mrep, err := mDelta.Checkpoint(&mbuf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mbuf.Bytes(), snapshot(mPlain)) {
		t.Fatal("mutated delta checkpoint differs from plain")
	}
	if mrep.DeltaSlabsCompressed != 1 {
		t.Fatalf("one dirty slab but %d compressed (%d reused)", mrep.DeltaSlabsCompressed, mrep.DeltaSlabsReused)
	}

	// Streaming path: identical stream content too.
	var sbuf bytes.Buffer
	srep, err := mDelta.CheckpointStream(&sbuf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if srep.DeltaSlabsReused == 0 {
		t.Fatal("streaming delta checkpoint reused nothing")
	}
	// Restore the stream into a fresh manager: byte-correct state.
	mR, ra, rb := deltaManager(t, lossy())
	_ = rb
	if _, err := mR.Restore(bytes.NewReader(sbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !ra.SameShape(a) {
		t.Fatal("restored shape mismatch")
	}
}

// TestDeltaWholeEntryReuse: codecs without slab support (gzip) reuse
// whole unchanged variables, skipping their encode entirely.
func TestDeltaWholeEntryReuse(t *testing.T) {
	m, a, _ := deltaManager(t, NewGzip())
	m.SetDelta(true)

	var b1 bytes.Buffer
	if _, err := m.Checkpoint(&b1, 1); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	rep, err := m.Checkpoint(&b2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReusedEntries != 2 {
		t.Fatalf("clean re-checkpoint reused %d entries, want 2", rep.ReusedEntries)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("reused checkpoint differs")
	}
	for _, e := range rep.Entries {
		if !e.Reused {
			t.Fatalf("entry %s not marked reused", e.Name)
		}
		if e.Timings.Gzip != 0 {
			t.Fatalf("reused entry %s reports encode CPU", e.Name)
		}
	}

	// Mutate one variable: exactly one entry re-encodes.
	a.Data()[0] += 1
	var b3 bytes.Buffer
	rep3, err := m.Checkpoint(&b3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.ReusedEntries != 1 {
		t.Fatalf("one mutated variable but %d entries reused", rep3.ReusedEntries)
	}

	// The stream restores byte-correct (lossless codec).
	before := append([]float64(nil), a.Data()...)
	a.Apply(func(float64) float64 { return -7 })
	if _, err := m.Restore(bytes.NewReader(b3.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data() {
		if v != before[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, v, before[i])
		}
	}
}

// TestDeltaResetOnRestore: a restore invalidates the baseline, so the
// next checkpoint recompresses (correctness over reuse) and delta
// re-engages on the one after.
func TestDeltaResetOnRestore(t *testing.T) {
	lossy := NewLossy()
	lossy.ChunkExtent = 4
	m, _, _ := deltaManager(t, lossy)
	m.SetDelta(true)

	var b1 bytes.Buffer
	if _, err := m.Checkpoint(&b1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore(bytes.NewReader(b1.Bytes())); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	rep, err := m.Checkpoint(&b2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaSlabsReused != 0 {
		t.Fatalf("post-restore checkpoint reused %d slabs from a stale cache", rep.DeltaSlabsReused)
	}
	var b3 bytes.Buffer
	rep3, err := m.Checkpoint(&b3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.DeltaSlabsReused == 0 {
		t.Fatal("delta did not re-engage after re-baselining")
	}
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		t.Fatal("clean re-checkpoint after restore differs")
	}
}

// TestDeltaDisabled: SetDelta(false) drops state and restores the plain
// path (no reuse accounting).
func TestDeltaDisabled(t *testing.T) {
	m, _, _ := deltaManager(t, NewGzip())
	m.SetDelta(true)
	var b bytes.Buffer
	if _, err := m.Checkpoint(&b, 1); err != nil {
		t.Fatal(err)
	}
	m.SetDelta(false)
	if m.DeltaEnabled() {
		t.Fatal("delta still enabled")
	}
	var b2 bytes.Buffer
	rep, err := m.Checkpoint(&b2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReusedEntries != 0 || rep.DeltaSlabsReused != 0 {
		t.Fatalf("delta-off checkpoint reports reuse: %+v", rep)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("delta on/off outputs differ")
	}
}

// TestDeltaLosslessRoundTripAllCodecs: every generation of a mutating
// series restores byte-correct through a delta manager (core acceptance:
// delta must never change restored bytes).
func TestDeltaLosslessRoundTripAllCodecs(t *testing.T) {
	for _, name := range []string{"none", "gzip", "fpc"} {
		t.Run(name, func(t *testing.T) {
			codec, err := CodecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, a, b := deltaManager(t, codec)
			m.SetDelta(true)
			var gens [][]byte
			var states [][]float64
			for step := 0; step < 4; step++ {
				if step > 0 {
					// Sparse mutation: one plane of one variable.
					plane := a.Len() / 16
					for i := step * plane; i < (step+1)*plane; i++ {
						a.Data()[i] *= 1.01
					}
				}
				var buf bytes.Buffer
				if _, err := m.Checkpoint(&buf, step); err != nil {
					t.Fatal(err)
				}
				gens = append(gens, buf.Bytes())
				snap := append([]float64(nil), a.Data()...)
				snap = append(snap, b.Data()...)
				states = append(states, snap)
			}
			for gi, g := range gens {
				if _, err := m.Restore(bytes.NewReader(g)); err != nil {
					t.Fatalf("restore gen %d: %v", gi, err)
				}
				got := append([]float64(nil), a.Data()...)
				got = append(got, b.Data()...)
				for i, v := range got {
					if v != states[gi][i] {
						t.Fatalf("gen %d element %d: %v != %v", gi, i, v, states[gi][i])
					}
				}
			}
		})
	}
}
