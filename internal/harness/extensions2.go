package harness

import (
	"fmt"
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/interval"
	"lossyckpt/internal/iomodel"
	"lossyckpt/internal/parallel"
)

// Cluster is experiment X6: the executed counterpart of Fig. 9 — real
// concurrent per-rank compression on this machine's cores plus the modeled
// 20 GB/s filesystem, for a sweep of rank counts. Unlike the analytic
// estimator it measures CPU contention once ranks outnumber cores.
func Cluster(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "cluster",
		Title: "Executed cluster checkpoint: measured parallel compression + modeled PFS",
		Header: []string{"ranks", "cr [%]", "compress makespan [ms]", "I/O w/ comp [ms]",
			"total w/ comp [ms]", "total w/o comp [ms]"},
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	elems := cfg.Nx * cfg.Nz * cfg.Nc
	for _, ranks := range []int{1, 2, 4, 8, 16, 32} {
		pc := parallel.DefaultConfig(ranks, ckpt.NewLossy())
		pc.ElemsPerRank = elems
		pc.Seed = cfg.Seed
		out, err := parallel.Run(pc)
		if err != nil {
			return nil, err
		}
		t.AddRow(ranks, out.CompressionRatePct(), ms(out.CompressMakespan),
			ms(out.IOTime), ms(out.TotalWith()), ms(out.TotalWithout()))
	}
	t.Notes = append(t.Notes,
		"compression makespan plateaus at the core count (embarrassingly parallel, paper §IV-D);",
		"verify restartability: parallel.ReplayRank decodes any rank's payload")
	return t, nil
}

// Interval is experiment X7: the paper's §VI future work — re-optimize the
// checkpoint interval (Daly's model) for compressed vs uncompressed
// checkpoints using this machine's measured compression cost and the
// paper's filesystem model, and report the end-to-end runtime saving.
func Interval(cfg Config) (*Table, error) {
	timings, rate, rawBytes, err := MeasureBreakdown(cfg)
	if err != nil {
		return nil, err
	}
	// Checkpoint costs at the paper's P=2048 weak-scaling point.
	const procs = 2048
	fs := iomodel.PaperFS
	ioWith := fs.WriteTime(int64(float64(rawBytes) * rate * procs))
	ioWithout := fs.WriteTime(int64(rawBytes) * procs)
	compCost := timings.Total
	scenarios := []interval.Scenario{
		{Name: "lossy compression", CheckpointCost: compCost + ioWith, RestartCost: compCost + ioWith},
		{Name: "no compression", CheckpointCost: ioWithout, RestartCost: ioWithout},
	}
	const mtbf = 4 * time.Hour // exascale-projection ballpark (paper §I: "a few hours")
	const solve = 240 * time.Hour
	plans, err := interval.Compare(solve, mtbf, scenarios)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "interval",
		Title:  fmt.Sprintf("Daly-optimal checkpoint intervals at P=%d, MTBF=%v, %v of work", procs, mtbf, solve),
		Header: []string{"scenario", "ckpt cost", "optimal interval", "waste [%]", "expected runtime"},
	}
	for _, p := range plans {
		t.AddRow(p.Name, p.CheckpointCost.Round(time.Millisecond).String(),
			p.OptimalInterval.Round(time.Second).String(),
			100*p.Waste, p.ExpectedRuntime.Round(time.Minute).String())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("end-to-end speedup from lossy compression: %.2f%%", interval.SpeedupPct(plans[0], plans[1])),
		"paper §VI lists combining lossy compression with checkpoint-interval models as future work")
	return t, nil
}
