package harness

import (
	"fmt"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/heat"
	"lossyckpt/internal/nbody"
	"lossyckpt/internal/qa"
	"lossyckpt/internal/quant"
)

// QualityAnalytics is experiment X15: Z-checker-style compression
// quality assessment across all three workloads. For each checkpoint
// array it reports the error distribution's key figures (max-abs,
// max-rel, PSNR) at the default operating point, plus the
// rate-distortion extremes of the division sweep — the data behind the
// paper's "acceptable error" argument, measured instead of asserted.
// With cfg.ReportDir set, the full per-workload reports (histograms,
// spectra, autocorrelation, complete RD curves) are written there as
// markdown + JSON.
func QualityAnalytics(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "qa",
		Title: "Quality analytics: error distributions and rate-distortion across workloads",
		Header: []string{"workload", "var", "max-abs", "max-rel", "PSNR [dB]",
			"bits/val @min-div", "bits/val @max-div"},
	}
	for _, w := range []string{"climate", "heat", "nbody"} {
		rep, err := cfg.qualityReport(w)
		if err != nil {
			return nil, err
		}
		for i, a := range rep.Assessments {
			lo, hi := "", ""
			if i < len(rep.RD) && len(rep.RD[i].Points) > 0 {
				pts := rep.RD[i].Points
				lo = fmt.Sprintf("%.2f", pts[0].BitsPerValue)
				hi = fmt.Sprintf("%.2f", pts[len(pts)-1].BitsPerValue)
			}
			t.AddRow(w, a.Var,
				fmt.Sprintf("%.3g", a.MaxAbs), fmt.Sprintf("%.3g", a.MaxRel),
				fmt.Sprintf("%.2f", a.PSNR), lo, hi)
		}
		if cfg.ReportDir != "" {
			md, _, err := rep.WriteFiles(cfg.ReportDir, w+"-report")
			if err != nil {
				return nil, err
			}
			t.Notes = append(t.Notes, "full report: "+md)
		}
	}
	return t, nil
}

// workloadFields assembles the named checkpoint arrays of one built-in
// workload at harness scale.
func (c Config) workloadFields(workload string) ([]qa.NamedField, error) {
	switch workload {
	case "climate":
		m, err := c.model()
		if err != nil {
			return nil, err
		}
		var out []qa.NamedField
		for _, nf := range m.Fields() {
			out = append(out, qa.NamedField{Name: nf.Name, Field: nf.Field})
		}
		return out, nil
	case "heat":
		s, err := heat.New(heat.DefaultConfig())
		if err != nil {
			return nil, err
		}
		s.StepN(100)
		return []qa.NamedField{{Name: "temperature", Field: s.Temperature()}}, nil
	case "nbody":
		nc := nbody.DefaultConfig()
		nc.Seed = c.Seed
		sys, err := nbody.New(nc)
		if err != nil {
			return nil, err
		}
		sys.StepN(100)
		var out []qa.NamedField
		for _, nf := range sys.Fields() {
			out = append(out, qa.NamedField{Name: nf.Name, Field: nf.Field})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("harness: unknown workload %q", workload)
	}
}

// qualityReport builds the full qa.Report for one workload: assessment
// at the default operating point plus the division RD sweep, per array.
func (c Config) qualityReport(workload string) (*qa.Report, error) {
	fields, err := c.workloadFields(workload)
	if err != nil {
		return nil, err
	}
	base := optionsFor(quant.Proposed, 128, c.TmpDir)
	rep := &qa.Report{
		Title:    "Checkpoint quality report: " + workload,
		Workload: workload,
		Codec:    "lossy (wavelet+quantize)",
		Created:  time.Now().UTC(),
	}
	for _, nf := range fields {
		opts := base
		opts.VarName = nf.Name
		res, err := core.Compress(nf.Field, opts)
		if err != nil {
			return nil, err
		}
		dec, err := core.Decompress(res.Data)
		if err != nil {
			return nil, err
		}
		a, err := qa.Assess(nf.Name, nf.Field.Data(), dec.Data(), qa.Options{})
		if err != nil {
			return nil, err
		}
		rd, err := qa.RateDistortion(nf.Field, opts, nil)
		if err != nil {
			return nil, err
		}
		rep.Assessments = append(rep.Assessments, a)
		rep.RD = append(rep.RD, qa.VarRD{Var: nf.Name, Points: rd})
	}
	return rep, nil
}

// attachQualityReport writes one workload's full quality report into
// cfg.ReportDir (when set) and records its path on the table — how the
// guard-overhead and entropy-stage experiments carry their quality
// evidence alongside the timing numbers.
func attachQualityReport(cfg Config, t *Table, workload, base string) {
	if cfg.ReportDir == "" {
		return
	}
	rep, err := cfg.qualityReport(workload)
	if err != nil {
		t.Notes = append(t.Notes, "quality report failed: "+err.Error())
		return
	}
	md, _, err := rep.WriteFiles(cfg.ReportDir, base)
	if err != nil {
		t.Notes = append(t.Notes, "quality report failed: "+err.Error())
		return
	}
	t.Notes = append(t.Notes, "quality report: "+md)
}
