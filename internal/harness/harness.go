// Package harness regenerates every table and figure of the evaluation
// section of Sasaki et al. (IPDPS 2015), plus the extension experiments
// listed in DESIGN.md §4. Each runner produces a Table — the same rows or
// series the paper plots — that cmd/experiments renders as text or CSV and
// EXPERIMENTS.md records.
//
// Runners take a Config so tests can execute them on scaled-down grids;
// the zero-effort Default() matches the paper's setup (1156×82×2 arrays,
// 720 warm-up steps, d=64).
package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"lossyckpt/internal/climate"
)

// Config scales the experiment workloads.
type Config struct {
	// Nx, Nz, Nc are the climate grid extents (paper: 1156×82×2).
	Nx, Nz, Nc int
	// WarmupSteps is how long the model runs before checkpointing
	// (paper: 720).
	WarmupSteps int
	// RestartSteps is how far the Fig. 10 study runs past the checkpoint
	// (paper: 1500, to step 2220).
	RestartSteps int
	// SampleEvery is the Fig. 10 sampling stride in steps (paper plots
	// every 50).
	SampleEvery int
	// Seed drives all workload initializations.
	Seed int64
	// TmpDir hosts temp-file-mode gzip scratch files ("" = system temp).
	TmpDir string
	// Repeats is how many times timing measurements are repeated (the
	// median is reported).
	Repeats int
	// EntropyCodec and EntropyShuffle carry the experiment CLI's
	// -codec/-shuffle flags: when set, the entropy experiment measures
	// that configuration as an extra row beside its fixed sweep
	// ("" = no extra row).
	EntropyCodec   string
	EntropyShuffle bool
	// Autotune carries the -autotune flag: the entropy experiment always
	// reports the balanced-objective autotuner; this adds the throughput
	// and ratio objectives.
	Autotune bool
	// ReportDir, when set, makes quality-aware experiments (qa, guard,
	// entropy) write their full per-workload quality reports
	// (markdown + JSON: error histograms, spectra, rate-distortion
	// curves) into this directory.
	ReportDir string
}

// Default returns the paper-faithful configuration. Running all figures at
// this scale takes on the order of minutes (dominated by the 2220-step
// Fig. 10 integration).
func Default() Config {
	return Config{
		Nx: climate.DefaultNx, Nz: climate.DefaultNz, Nc: climate.DefaultNc,
		WarmupSteps:  720,
		RestartSteps: 1500,
		SampleEvery:  50,
		Seed:         2015,
		Repeats:      5,
	}
}

// Quick returns a scaled-down configuration (≈1/16 of the paper's points,
// 1/8 of the steps) for smoke runs and tests.
func Quick() Config {
	c := Default()
	c.Nx, c.Nz = 289, 41
	c.WarmupSteps = 90
	c.RestartSteps = 180
	c.SampleEvery = 20
	c.Repeats = 3
	return c
}

// modelCache memoizes warmed-up models: the 720-step paper warm-up costs
// over a minute at full scale and every runner needs the same state. Cached
// models are cloned before being handed out, so runners can mutate freely.
var modelCache sync.Map // modelKey -> *climate.Model

type modelKey struct {
	nx, nz, nc, warmup int
	seed               int64
}

// model builds and warms up the climate workload, cloning from the cache
// when the same configuration was already prepared.
func (c Config) model() (*climate.Model, error) {
	key := modelKey{c.Nx, c.Nz, c.Nc, c.WarmupSteps, c.Seed}
	if cached, ok := modelCache.Load(key); ok {
		return cached.(*climate.Model).Clone(), nil
	}
	mc := climate.DefaultConfig()
	mc.Nx, mc.Nz, mc.Nc = c.Nx, c.Nz, c.Nc
	mc.Seed = c.Seed
	m, err := climate.New(mc)
	if err != nil {
		return nil, err
	}
	m.StepN(c.WarmupSteps)
	modelCache.Store(key, m)
	return m.Clone(), nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "fig7").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carries free-form findings (crossover points, fits, paper
	// reference values).
	Notes []string
}

// AddRow appends a formatted row built from arbitrary values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// CSV writes the table as comma-separated values (header + rows; notes are
// emitted as trailing comment lines).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
