package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

// GuardOverhead is experiment X13: what bounded-error enforcement costs.
// The paper reports reconstruction error after the fact (Table I); the
// guard turns those observations into enforced guarantees, paying for
// them with verification work and occasional escalation re-encodes. This
// experiment sweeps guard policies over the warmed-up temperature array
// and reports, per policy: encode time overhead versus the unguarded
// pipeline, compression rate, the mode the ladder settled on, escalation
// count, and the achieved error figures — the overhead-vs-guarantee
// trade-off in one table.
func GuardOverhead(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	f := m.Field("temperature")
	base := optionsFor(quant.Proposed, 128, cfg.TmpDir)

	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	medianEncode := func(enc func() (int, error)) (time.Duration, int, error) {
		times := make([]time.Duration, 0, repeats)
		bytes := 0
		for i := 0; i < repeats; i++ {
			start := time.Now()
			n, err := enc()
			if err != nil {
				return 0, 0, err
			}
			times = append(times, time.Since(start))
			bytes = n
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2], bytes, nil
	}

	// Unguarded baseline: the plain pipeline at the same configuration.
	baseWall, baseBytes, err := medianEncode(func() (int, error) {
		res, err := core.Compress(f, base)
		if err != nil {
			return 0, err
		}
		return res.CompressedBytes, nil
	})
	if err != nil {
		return nil, err
	}

	rng := dataRange(f.Data())
	policies := []struct {
		name string
		pol  guard.Policy
	}{
		{"abs loose (1% rng)", guard.Policy{MaxAbs: 0.01 * rng}},
		{"abs tight (0.01% rng)", guard.Policy{MaxAbs: 1e-4 * rng}},
		{"rel 1e-3", guard.Policy{MaxRel: 1e-3}},
		{"psnr 60 dB", guard.Policy{PSNRFloor: 60}},
		{"psnr 110 dB", guard.Policy{PSNRFloor: 110}},
	}

	t := &Table{
		ID:    "guard",
		Title: "Bounded-error enforcement: overhead vs guarantee (temperature array)",
		Header: []string{"policy", "verify", "wall [ms]", "overhead [%]",
			"cr [%]", "mode", "escalations", "max-abs", "psnr [dB]"},
	}
	t.AddRow("unguarded", "-", float64(baseWall.Milliseconds()), 0.0,
		stats.CompressionRate(baseBytes, f.Bytes()), "unbounded", 0, math.NaN(), math.NaN())

	for _, pc := range policies {
		for _, vm := range []guard.VerifyMode{guard.VerifyAnalytic, guard.VerifyDecode} {
			pol := pc.pol
			pol.Verify = vm
			var out *guard.Outcome
			wall, nbytes, err := medianEncode(func() (int, error) {
				o, err := guard.Encode("temperature", f, base, pol)
				if err != nil {
					return 0, err
				}
				out = o
				return len(o.Payload), nil
			})
			if err != nil {
				return nil, fmt.Errorf("guard policy %q: %w", pc.name, err)
			}
			overhead := math.NaN()
			if baseWall > 0 {
				overhead = 100 * (float64(wall)/float64(baseWall) - 1)
			}
			ann := out.Annotation
			t.AddRow(pc.name, vm.String(), float64(wall.Milliseconds()), overhead,
				stats.CompressionRate(nbytes, f.Bytes()), ann.Mode.String(),
				int(ann.Escalations), ann.AchievedMaxAbs, ann.AchievedPSNR)
		}
	}
	t.Notes = append(t.Notes,
		"analytic verification bounds error from quantization tables (cheap, conservative); decode re-expands and measures (costly, exact)",
		"tight policies escalate the ladder (more divisions -> simple method -> lossless bands -> gzip), trading compression for the guarantee",
		"every row's achieved figures are enforced: a violated bound degrades to bit-exact gzip rather than shipping out of spec")
	attachQualityReport(cfg, t, "climate", "x13-guard-quality")
	return t, nil
}

// dataRange is max-min over finite values (guard policy scaling).
func dataRange(vals []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 1
	}
	return hi - lo
}
