package harness

import (
	"lossyckpt/internal/core"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

// PerBand is experiment X8: the paper pools all high-frequency bands into
// one quantization (§III-B); this ablation quantizes each wavelet sub-band
// separately, which adapts partition widths to each band's value range at
// the cost of one average table per band.
func PerBand(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "perband",
		Title:  "Pooled (paper) vs per-band quantization, temperature array, n=128",
		Header: []string{"method", "mode", "cr [%]", "avg err [%]", "max err [%]"},
	}
	for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
		for _, perBand := range []bool{false, true} {
			opts := optionsFor(method, 128, cfg.TmpDir)
			opts.PerBandQuant = perBand
			opts.Levels = 2 // deeper decomposition makes band ranges differ more
			g, res, err := core.RoundTrip(temp, opts)
			if err != nil {
				return nil, err
			}
			s, err := stats.Compare(temp.Data(), g.Data())
			if err != nil {
				return nil, err
			}
			mode := "pooled"
			if perBand {
				mode = "per-band"
			}
			t.AddRow(method.String(), mode, res.CompressionRatePct(), s.AvgPct, s.MaxPct)
		}
	}
	t.Notes = append(t.Notes, "the paper pools all high bands (its Fig. 4 histogram is over the whole high region)")
	return t, nil
}

// Threshold is experiment X9: classic wavelet coefficient thresholding as
// a pre-quantization stage — a candidate for the paper's §VI "improvement
// of the compression algorithm" future work.
func Threshold(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "threshold",
		Title:  "Coefficient thresholding before quantization (proposed, n=128), temperature array",
		Header: []string{"threshold", "cr [%]", "avg err [%]", "max err [%]"},
	}
	for _, th := range []float64{0, 1e-4, 1e-3, 1e-2, 1e-1} {
		opts := optionsFor(quant.Proposed, 128, cfg.TmpDir)
		opts.ZeroThreshold = th
		g, res, err := core.RoundTrip(temp, opts)
		if err != nil {
			return nil, err
		}
		s, err := stats.Compare(temp.Data(), g.Data())
		if err != nil {
			return nil, err
		}
		t.AddRow(th, res.CompressionRatePct(), s.AvgPct, s.MaxPct)
	}
	t.Notes = append(t.Notes, "thresholding trades bounded extra error for more redundant codes (better gzip)")
	return t, nil
}
