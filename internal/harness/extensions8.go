package harness

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/entropy"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/tune"
)

// floatBytes serializes at most maxBytes of a float64 slice as the
// little-endian byte image the entropy stage sees — the autotuner's
// probe sample.
func floatBytes(data []float64, maxBytes int) []byte {
	n := len(data)
	if n*8 > maxBytes {
		n = maxBytes / 8
	}
	buf := make([]byte, 8*n)
	for i, v := range data[:n] {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// EntropyStage is experiment X14: the paper's §IV-D attributes most of
// the compression time to the entropy stage; this runner sweeps the
// pluggable stage (gzip vs the pure-Go lz4 coder, with and without the
// byte-shuffle pre-pass and block-parallel DEFLATE) over the
// temperature array and compares the online autotuner's pick against
// the fixed configurations. The stage is lossless, so every row
// reconstructs identically — only time and size move.
func EntropyStage(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	base := optionsFor(quant.Proposed, 128, cfg.TmpDir)
	base.VarName = "temperature"

	type measured struct {
		total, stage, decode time.Duration
		formatted            int
		crPct                float64
	}
	measure := func(opts core.Options) (measured, error) {
		runs := make([]measured, 0, repeats)
		for i := 0; i < repeats; i++ {
			res, err := core.Compress(temp, opts)
			if err != nil {
				return measured{}, err
			}
			dstart := time.Now()
			if _, err := core.DecompressAnyParallel(res.Data, opts.Workers); err != nil {
				return measured{}, err
			}
			runs = append(runs, measured{
				total:     res.Timings.Total,
				stage:     res.Timings.Gzip,
				decode:    time.Since(dstart),
				formatted: res.FormattedBytes,
				crPct:     res.CompressionRatePct(),
			})
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].total < runs[j].total })
		return runs[len(runs)/2], nil
	}

	t := &Table{
		ID:     "entropy",
		Title:  "Entropy stage: codec x shuffle x block size, temperature array (proposed, n=128)",
		Header: []string{"configuration", "total [ms]", "entropy [ms]", "entropy [MB/s]", "decode [ms]", "cr [%]"},
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	addRow := func(name string, mm measured) {
		mbps := 0.0
		if mm.stage > 0 {
			mbps = float64(mm.formatted) / mm.stage.Seconds() / 1e6
		}
		t.AddRow(name, ms(mm.total), ms(mm.stage), mbps, ms(mm.decode), mm.crPct)
	}

	sweeps := []struct {
		name    string
		codec   entropy.ID
		shuffle bool
		block   int
	}{
		{"gzip (baseline)", entropy.Gzip, false, 0},
		{"gzip + shuffle", entropy.Gzip, true, 0},
		{"gzip, 1 MiB blocks", entropy.Gzip, false, 1 << 20},
		{"lz4", entropy.LZ4, false, 0},
		{"lz4 + shuffle", entropy.LZ4, true, 0},
	}
	for _, sc := range sweeps {
		opts := base
		opts.EntropyCodec = sc.codec
		opts.Shuffle = sc.shuffle
		opts.GzipBlock = sc.block
		mm, err := measure(opts)
		if err != nil {
			return nil, fmt.Errorf("entropy %q: %w", sc.name, err)
		}
		addRow(sc.name, mm)
	}

	// Extra row for the configuration the experiment CLI's
	// -codec/-shuffle flags name.
	if cfg.EntropyCodec != "" || cfg.EntropyShuffle {
		opts := base
		label := "gzip"
		if cfg.EntropyCodec != "" {
			id, err := entropy.ParseID(cfg.EntropyCodec)
			if err != nil {
				return nil, fmt.Errorf("entropy: %w", err)
			}
			opts.EntropyCodec = id
			label = id.String()
		}
		opts.Shuffle = cfg.EntropyShuffle
		if cfg.EntropyShuffle {
			label += "+shuffle"
		}
		mm, err := measure(opts)
		if err != nil {
			return nil, fmt.Errorf("entropy flags: %w", err)
		}
		addRow(fmt.Sprintf("flags: %s", label), mm)
	}

	// The autotuner probes candidates on a bounded sample and the chosen
	// setting runs end to end — its row should beat the gzip baseline's
	// wall time under the balanced and throughput objectives.
	objectives := []tune.Objective{tune.Balanced}
	if cfg.Autotune {
		objectives = append(objectives, tune.Throughput, tune.Ratio)
	}
	sample := floatBytes(temp.Data(), 256<<10)
	for _, obj := range objectives {
		tn := tune.New(tune.Config{Objective: obj})
		setting := tn.Decide("temperature", temp.Bytes(), sample)
		mm, err := measure(setting.Apply(base))
		if err != nil {
			return nil, fmt.Errorf("entropy autotune %s: %w", obj, err)
		}
		addRow(fmt.Sprintf("autotune %s -> %s", obj, setting.Label()), mm)
	}

	t.Notes = append(t.Notes,
		"the entropy stage consumes the formatted container (stage 4); MB/s is formatted bytes over stage time",
		"the stage is lossless, so reconstruction error is identical across rows — only time and size move",
		"autotune probes the candidates on a 256 KiB sample and applies the winner; -autotune adds the throughput/ratio objectives, -codec/-shuffle add a fixed extra row")
	attachQualityReport(cfg, t, "climate", "x14-entropy-quality")
	return t, nil
}
