package harness

import (
	"lossyckpt/internal/core"
	"lossyckpt/internal/faultsim"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/incr"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

// Incremental is experiment X11: the paper's §I dismisses incremental
// checkpointing for mesh applications because "the majority of the memory
// footprint is frequently updated". This runner quantifies the claim:
// incremental diffs between consecutive climate checkpoints (every value
// changes every step) against the same data compressed with gzip and with
// the lossy pipeline — plus a sparse-update control workload where
// incremental is expected to win.
func Incremental(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")

	t := &Table{
		ID:     "incremental",
		Title:  "Incremental vs gzip vs lossy checkpointing (paper §I argument)",
		Header: []string{"workload", "incremental cr [%]", "gzip cr [%]", "lossy cr [%]"},
	}

	measure := func(name string, prev, cur *grid.Field) error {
		tr := incr.NewTracker(gzipio.Default)
		tr.Register(name, prev)
		diff, err := tr.EncodeDiff(name, cur)
		if err != nil {
			return err
		}
		gz, err := core.CompressGzipOnly(cur, gzipio.Default, gzipio.InMemory, cfg.TmpDir)
		if err != nil {
			return err
		}
		lossy, err := core.Compress(cur, optionsFor(quant.Proposed, 128, cfg.TmpDir))
		if err != nil {
			return err
		}
		t.AddRow(name,
			stats.CompressionRate(len(diff), cur.Bytes()),
			gz.CompressionRatePct(),
			lossy.CompressionRatePct())
		return nil
	}

	// Dense updates: two climate checkpoints one interval apart — the
	// paper's CFD-like regime.
	prev := temp.Clone()
	interval := cfg.WarmupSteps / 8
	if interval < 1 {
		interval = 1
	}
	m.StepN(interval)
	if err := measure("climate (dense updates)", prev, m.Field("temperature")); err != nil {
		return nil, err
	}

	// Sparse updates: the same array with only 1% of values touched — the
	// regime incremental checkpointing was designed for. The mutation
	// comes from the shared faultsim sparse workload so this control and
	// the dedup experiment (X17) sweep the same update pattern.
	sparsePrev := temp.Clone()
	sparseCur := temp.Clone()
	faultsim.MutateSparse(sparseCur, 0.01, cfg.Seed, 1)
	if err := measure("sparse control (1% updates)", sparsePrev, sparseCur); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"paper §I: incremental checkpointing is limited for real applications because the whole footprint updates each step;",
		"the dense row shows the diff compressing no better than gzip, while lossy stays an order of magnitude smaller")
	return t, nil
}
