package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/faultsim"
	"lossyckpt/internal/server"
	"lossyckpt/internal/store"
)

// Dedup is experiment X17: delta checkpointing through the
// content-addressed chunk store. The sparse-update workload (shared
// with X11's incremental control) is checkpointed for several
// generations at mutation fractions of 0, 1, 10 and 100% of the
// footprint per step; each generation reports the bytes the dedup
// store physically committed (recipe + new chunks), the dedup ratio so
// far, the compression CPU the delta slab cache actually spent, and
// how many slabs it reused. The 1% series is then replayed through a
// dedup tenant of the checkpoint daemon to show the same accounting
// end-to-end over HTTP.
func Dedup(cfg Config) (*Table, error) {
	const (
		gens  = 3
		elems = 1 << 16 // 512 KiB logical footprint
	)
	fractions := []float64{0, 0.01, 0.10, 1.0}
	// Chunks sized below the compressed slab frames, so one dirty slab
	// dirties a few chunks, not most of the payload.
	chunkCfg := cas.Config{Min: 4 << 10, Avg: 16 << 10, Max: 64 << 10}

	root, err := os.MkdirTemp(cfg.TmpDir, "lossyckpt-dedup-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	t := &Table{
		ID:    "dedup",
		Title: "Delta checkpoints through the content-addressed chunk store (sparse-update sweep)",
		Header: []string{"mutation [%]", "gen", "logical [KiB]", "committed [KiB]",
			"dedup ratio", "compress [ms]", "slabs reused"},
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	for fi, frac := range fractions {
		app, err := faultsim.NewSparseApp(faultsim.SparseConfig{
			Elems: elems, MutateFraction: frac, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		codec := ckpt.NewLossy()
		codec.ChunkExtent = elems / 32 // 32 slabs for the delta cache
		mgr := ckpt.NewManager(codec, 0)
		mgr.SetDelta(true)
		if err := mgr.Register("state", app.Field()); err != nil {
			return nil, err
		}
		st, err := store.Open(filepath.Join(root, fmt.Sprintf("f%d", fi)),
			store.Options{Keep: -1, Dedup: true, DedupChunk: chunkCfg})
		if err != nil {
			return nil, err
		}
		for g := 1; g <= gens; g++ {
			if g > 1 {
				app.Step()
			}
			before := st.PhysicalBytes()
			rep, gen, err := mgr.CheckpointTo(st, app.StepCount())
			if err != nil {
				return nil, err
			}
			committed := st.PhysicalBytes() - before
			agg := rep.AggregateTimings()
			compress := agg.Wavelet + agg.Quantize + agg.Encode + agg.Gzip
			t.AddRow(frac*100, g, float64(gen.Size)/1024, float64(committed)/1024,
				st.DedupStats().Ratio(), ms(compress), rep.DeltaSlabsReused)
		}
		// Every generation must read back byte-exact from the chunk layer
		// — dedup changes storage, never payloads.
		for _, g := range st.Generations() {
			if _, err := st.ReadGeneration(g.Seq); err != nil {
				return nil, fmt.Errorf("dedup: generation %d unreadable at %.0f%% mutation: %w",
					g.Seq, frac*100, err)
			}
		}
	}

	// Daemon leg: the 1% series through a dedup tenant over HTTP.
	if err := dedupDaemonLeg(t, root, cfg.Seed, elems, gens, chunkCfg); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"committed bytes are physical (recipe + new chunks); unchanged content-defined chunks are stored once",
		"compress CPU drops with mutation fraction because the delta slab cache skips the pipeline for clean slabs",
		"the daemon row shows the same accounting through a dedup tenant's save/inspect HTTP surface")
	return t, nil
}

// dedupDaemonLeg replays the 1%-mutation series through a daemon
// tenant with dedup enabled and appends one summary row from the
// inspect endpoint.
func dedupDaemonLeg(t *Table, root string, seed int64, elems, gens int, chunkCfg cas.Config) error {
	srv, err := server.New(server.Config{
		StoreOptions: store.Options{DedupChunk: chunkCfg},
		Tenants: []server.TenantConfig{{
			Name: "dedup", Token: "tok", Dir: filepath.Join(root, "daemon"),
			Keep: -1, Dedup: true,
		}}})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	app, err := faultsim.NewSparseApp(faultsim.SparseConfig{
		Elems: elems, MutateFraction: 0.01, Seed: seed})
	if err != nil {
		return err
	}
	for g := 1; g <= gens; g++ {
		if g > 1 {
			app.Step()
		}
		var buf bytes.Buffer
		if err := server.WriteFields(&buf, []server.NamedField{{Name: "state", Field: app.Field()}}); err != nil {
			return err
		}
		req, err := http.NewRequest("POST",
			fmt.Sprintf("%s/v1/dedup/save?step=%d", ts.URL, app.StepCount()), &buf)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("dedup: daemon save %d: status %d", g, resp.StatusCode)
		}
	}
	req, err := http.NewRequest("GET", ts.URL+"/v1/dedup/inspect", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var ir server.InspectResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return err
	}
	if ir.Dedup == nil {
		return fmt.Errorf("dedup: daemon inspect returned no dedup accounting")
	}
	t.AddRow("1 (daemon)", len(ir.Generations), float64(ir.Dedup.LogicalBytes)/1024,
		float64(ir.UsedBytes)/1024, ir.Dedup.Ratio, "-", "-")
	return nil
}
