package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"

	"lossyckpt/internal/grid"
	"lossyckpt/internal/server"
	"lossyckpt/internal/store"
)

// ServeChaos is experiment X16: the checkpoint daemon under
// multi-tenant load with a kill. Three tenants — one per workload —
// save concurrently through the HTTP gateway for several rounds while
// the admission cap is held below the offered load, so backpressure
// (429 + Retry-After) is exercised, not just configured. Then the
// climate tenant's filesystem crashes mid-save; the daemon is torn
// down and reopened over the same directories, and the experiment
// verifies what the chaos matrix verifies: every tenant restores its
// last committed generation bit-for-bit, fsck reports every store
// clean, and no temp litter survives the restart.
func ServeChaos(cfg Config) (*Table, error) {
	const rounds = 3

	root, err := os.MkdirTemp(cfg.TmpDir, "lossyckpt-serve-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	workloads := []string{"climate", "heat", "nbody"}
	fields := map[string][]server.NamedField{}
	for _, w := range workloads {
		nfs, err := cfg.workloadFields(w)
		if err != nil {
			return nil, err
		}
		var out []server.NamedField
		for _, nf := range nfs {
			out = append(out, server.NamedField{Name: nf.Name, Field: nf.Field})
		}
		fields[w] = out
	}

	// The climate tenant runs over a fault-injecting filesystem so the
	// kill lands under a live daemon; the others run on the real one.
	ffs := store.NewFaultFS(store.OsFS{})
	tenantCfgs := func(fs store.FS) []server.TenantConfig {
		out := make([]server.TenantConfig, len(workloads))
		for i, w := range workloads {
			out[i] = server.TenantConfig{
				Name: w, Token: "tok-" + w, Dir: root + "/" + w, Keep: rounds + 2,
			}
			if w == "climate" {
				out[i].FS = fs
			}
		}
		return out
	}

	// Admission cap of 2 under 3 concurrent heavy requests: at least
	// one round should shed.
	srv, err := server.New(server.Config{Tenants: tenantCfgs(ffs), MaxInFlight: 2})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())

	type tally struct {
		accepted, shed int
		lastStep       int
	}
	tallies := map[string]*tally{}
	for _, w := range workloads {
		tallies[w] = &tally{}
	}

	save := func(w string, step int) (int, error) {
		var buf bytes.Buffer
		if err := server.WriteFields(&buf, fields[w]); err != nil {
			return 0, err
		}
		req, err := http.NewRequest("POST",
			fmt.Sprintf("%s/v1/%s/save?step=%d", ts.URL, w, step), &buf)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Authorization", "Bearer tok-"+w)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Load phase: every tenant saves each round concurrently; a shed
	// request is retried (sequentially) so each round still commits.
	for round := 1; round <= rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, len(workloads))
		for _, w := range workloads {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				code, err := save(w, round)
				if err != nil {
					errs <- fmt.Errorf("serve: %s round %d: %w", w, round, err)
					return
				}
				for code == http.StatusTooManyRequests {
					tallies[w].shed++
					code, err = save(w, round)
					if err != nil {
						errs <- fmt.Errorf("serve: %s round %d retry: %w", w, round, err)
						return
					}
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("serve: %s round %d: HTTP %d", w, round, code)
					return
				}
				tallies[w].accepted++
				tallies[w].lastStep = round
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, err
		}
	}

	// Kill phase: the climate filesystem dies partway through the next
	// save — every FS op from the kill point on fails, modelling a
	// power cut mid-request.
	ffs.FailAt(ffs.Ops()+3, store.Fault{Kind: store.Crash})
	killCode, err := save("climate", rounds+1)
	if err != nil {
		return nil, err
	}
	if killCode == http.StatusOK {
		return nil, fmt.Errorf("serve: save over crashed filesystem reported success")
	}
	ts.Close()
	srv.Close()

	// Restart over the same directories with a healthy filesystem; the
	// startup recovery path owns whatever the kill left behind.
	srv2, err := server.New(server.Config{Tenants: tenantCfgs(store.OsFS{}), MaxInFlight: 2})
	if err != nil {
		return nil, fmt.Errorf("serve: reopen after kill: %w", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()

	t := &Table{
		ID:    "serve",
		Title: "Checkpoint daemon under multi-tenant load with a mid-save kill",
		Header: []string{"tenant", "saves ok", "shed (429)", "kill", "restored gen",
			"fields intact", "fsck clean"},
	}
	for _, w := range workloads {
		req, _ := http.NewRequest("GET", ts2.URL+"/v1/"+w+"/restore", nil)
		req.Header.Set("Authorization", "Bearer tok-"+w)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("serve: %s restore after kill: HTTP %d", w, resp.StatusCode)
		}
		gen := resp.Header.Get("X-Generation")
		got, err := server.ReadFields(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("serve: %s restore decode: %w", w, err)
		}
		intact, err := fieldsMatch(got, fields[w])
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", w, err)
		}

		freq, _ := http.NewRequest("POST", ts2.URL+"/v1/"+w+"/fsck", nil)
		freq.Header.Set("Authorization", "Bearer tok-"+w)
		fresp, err := http.DefaultClient.Do(freq)
		if err != nil {
			return nil, err
		}
		fbody, _ := io.ReadAll(fresp.Body)
		fresp.Body.Close()
		clean := fresp.StatusCode == http.StatusOK && strings.Contains(string(fbody), `"clean":true`)

		killed := "-"
		if w == "climate" {
			killed = fmt.Sprintf("mid-save (HTTP %d)", killCode)
		}
		tl := tallies[w]
		t.AddRow(w, tl.accepted, tl.shed, killed, gen, yesNo(intact), yesNo(clean))
		if !intact || !clean {
			return nil, fmt.Errorf("serve: %s survived the kill dirty (intact=%v clean=%v)", w, intact, clean)
		}
	}
	totalShed := 0
	for _, tl := range tallies {
		totalShed += tl.shed
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("admission cap 2 under 3 concurrent tenants shed %d request(s) with 429 + Retry-After; all were retried to completion", totalShed),
		"the climate tenant's filesystem crashed mid-save; after restart every tenant restored its last committed generation and fsck found every store clean")
	return t, nil
}

// fieldsMatch reports whether the restored fields are bit-identical to
// the originals (the daemon default codec is lossless).
func fieldsMatch(got, want []server.NamedField) (bool, error) {
	if len(got) != len(want) {
		return false, nil
	}
	byName := map[string]*grid.Field{}
	for _, nf := range want {
		byName[nf.Name] = nf.Field
	}
	for _, nf := range got {
		ref := byName[nf.Name]
		if ref == nil {
			return false, nil
		}
		gd, rd := nf.Field.Data(), ref.Data()
		if len(gd) != len(rd) {
			return false, nil
		}
		for i := range gd {
			if gd[i] != rd[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
