package harness

import (
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/faultsim"
)

// Faults is experiment X10: failure injection in the style of the paper's
// reference [31] (Ni et al., SC 2014) — run the climate workload under an
// exponential failure process with lossy checkpoints, rolling back to the
// last checkpoint on every failure, and report rework, overhead and the
// damage the accumulated lossy restores do to the final state.
func Faults(cfg Config) (*Table, error) {
	mc := climate.DefaultConfig()
	// Failure injection replays work after every rollback, so it runs on a
	// reduced grid even at paper scale (and respects smaller test configs).
	mc.Nx, mc.Nz, mc.Nc = 289, 41, cfg.Nc
	if cfg.Nx < mc.Nx {
		mc.Nx = cfg.Nx
	}
	if cfg.Nz < mc.Nz {
		mc.Nz = cfg.Nz
	}
	mc.Seed = cfg.Seed
	mkApp := func() (faultsim.App, error) {
		m, err := climate.New(mc)
		if err != nil {
			return nil, err
		}
		return faultsim.AppFuncs{
			StepFn:         m.Step,
			StepCountFn:    m.StepCount,
			SetStepCountFn: m.SetStepCount,
			FieldsFn: func() []faultsim.NamedField {
				var out []faultsim.NamedField
				for _, nf := range m.Fields() {
					out = append(out, faultsim.NamedField{Name: nf.Name, Field: nf.Field})
				}
				return out
			},
		}, nil
	}

	t := &Table{
		ID:    "faults",
		Title: "Failure injection: lossy vs lossless checkpoints under exponential failures",
		Header: []string{"codec", "MTBF", "failures", "rework steps", "overhead [%]",
			"final avg err [%]", "final max err [%]"},
	}
	for _, codecName := range []string{"gzip", "lossy"} {
		for _, mtbf := range []time.Duration{300 * time.Millisecond, 1 * time.Second, 5 * time.Second} {
			codec, err := ckpt.CodecByName(codecName)
			if err != nil {
				return nil, err
			}
			app, err := mkApp()
			if err != nil {
				return nil, err
			}
			ref, err := mkApp()
			if err != nil {
				return nil, err
			}
			res, err := faultsim.Run(app, ref, faultsim.Config{
				TotalSteps:      150,
				CheckpointEvery: 25,
				Codec:           codec,
				MTBF:            mtbf,
				StepCost:        10 * time.Millisecond,
				CheckpointCost:  5 * time.Millisecond,
				RestartCost:     8 * time.Millisecond,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(codecName, mtbf.String(), res.Failures, res.ReworkSteps,
				res.OverheadPct(), res.FinalError.AvgPct, res.FinalError.MaxPct)
		}
	}
	t.Notes = append(t.Notes,
		"reference [31] of the paper injects varying failure counts into an N-body code with lossy checkpoints;",
		"lossless rows bound the time cost, lossy rows add the compression error re-injected per rollback")
	return t, nil
}
