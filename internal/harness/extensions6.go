package harness

import (
	"lossyckpt/internal/core"
	"lossyckpt/internal/fpc"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/synth"
)

// Datasets is experiment X12: the compressor across the whole smoothness
// spectrum — ideal smooth fields, Kolmogorov-like turbulence, shocks,
// pure noise and spike-plus-outlier mixtures (package synth) — reporting
// compression rate, relative error and PSNR per dataset and per method,
// with gzip and FPC as lossless anchors. The paper evaluates only NICAM
// fields; this maps out where its §II-C smoothness premise starts and
// stops paying off.
func Datasets(cfg Config) (*Table, error) {
	shape := []int{cfg.Nx, cfg.Nz, cfg.Nc}
	t := &Table{
		ID:    "datasets",
		Title: "Compressor behaviour across data classes (n=128)",
		Header: []string{"dataset", "gzip cr [%]", "fpc cr [%]",
			"simple cr [%]", "simple err [%]",
			"proposed cr [%]", "proposed err [%]", "proposed PSNR [dB]"},
	}
	for _, kind := range synth.Kinds {
		f, err := synth.Generate(kind, cfg.Seed, shape...)
		if err != nil {
			return nil, err
		}
		gz, err := core.CompressGzipOnly(f, gzipio.Default, gzipio.InMemory, cfg.TmpDir)
		if err != nil {
			return nil, err
		}
		fp, err := fpc.Compress(f.Data(), fpc.DefaultTableBits)
		if err != nil {
			return nil, err
		}
		row := []any{kind.String(), gz.CompressionRatePct(), stats.CompressionRate(len(fp), f.Bytes())}
		var psnr float64
		for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
			g, res, err := core.RoundTrip(f, optionsFor(method, 128, cfg.TmpDir))
			if err != nil {
				return nil, err
			}
			s, err := stats.Compare(f.Data(), g.Data())
			if err != nil {
				return nil, err
			}
			row = append(row, res.CompressionRatePct(), s.AvgPct)
			if method == quant.Proposed {
				psnr, err = stats.PSNR(f.Data(), g.Data())
				if err != nil {
					return nil, err
				}
			}
		}
		row = append(row, psnr)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper §II-C: wavelet compression is effective when the data is smooth;",
		"expect cr to degrade monotonically from smooth toward noise, with lossless methods pinned near 90-100%")
	return t, nil
}
