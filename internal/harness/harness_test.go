package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := Quick()
	c.Nx, c.Nz, c.Nc = 72, 18, 2
	c.WarmupSteps = 30
	c.RestartSteps = 40
	c.SampleEvery = 10
	c.Repeats = 1
	return c
}

func TestAllRunnersProduceTables(t *testing.T) {
	cfg := tiny()
	for _, id := range RunnerIDs {
		run, ok := Runners[id]
		if !ok {
			t.Fatalf("runner %q missing from map", id)
		}
		tab, err := run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id {
			t.Errorf("%s: table id %q", id, tab.ID)
		}
		if len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row %d has %d cells for %d columns", id, ri, len(row), len(tab.Header))
			}
		}
	}
}

func TestRunnerIDsCoverRunnersMap(t *testing.T) {
	if len(RunnerIDs) != len(Runners) {
		t.Errorf("RunnerIDs has %d entries, Runners has %d", len(RunnerIDs), len(Runners))
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fig6 rows = %d, want 3", len(tab.Rows))
	}
	gzip := parseFloat(t, tab.Rows[0][1])
	simple := parseFloat(t, tab.Rows[1][1])
	proposed := parseFloat(t, tab.Rows[2][1])
	// The paper's headline: both lossy rates far below gzip.
	if simple >= gzip || proposed >= gzip {
		t.Errorf("lossy (%.1f / %.1f) not below gzip (%.1f)", simple, proposed, gzip)
	}
}

func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(DivisionSweep) {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
	// Proposed cr ≥ simple cr at equal n (proposed stores passthroughs).
	for _, row := range tab.Rows {
		s, p := parseFloat(t, row[1]), parseFloat(t, row[2])
		if p < s-1 { // tolerate ~1pp noise
			t.Errorf("n=%s: proposed cr %.2f far below simple %.2f", row[0], p, s)
		}
	}
}

func TestFig8ErrorTrend(t *testing.T) {
	tab, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	for col := 1; col <= 2; col++ { // simple avg, proposed avg
		if parseFloat(t, last[col]) > parseFloat(t, first[col]) {
			t.Errorf("column %d: error grew from n=1 to n=128", col)
		}
	}
	// Proposed ≤ simple at n=128.
	if parseFloat(t, last[2]) > parseFloat(t, last[1]) {
		t.Errorf("proposed err %s above simple %s at n=128", last[2], last[1])
	}
}

func TestFig9ShapeAndCrossover(t *testing.T) {
	tab, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ParallelismSweep) {
		t.Fatalf("fig9 rows = %d", len(tab.Rows))
	}
	// With-compression totals must grow more slowly than without.
	firstWith := parseFloat(t, tab.Rows[0][7])
	lastWith := parseFloat(t, tab.Rows[len(tab.Rows)-1][7])
	firstWithout := parseFloat(t, tab.Rows[0][8])
	lastWithout := parseFloat(t, tab.Rows[len(tab.Rows)-1][8])
	if lastWith-firstWith >= lastWithout-firstWithout {
		t.Error("with-compression slope not flatter than without")
	}
}

func TestFig10ErrorsBoundedAndSampled(t *testing.T) {
	cfg := tiny()
	tab, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := cfg.RestartSteps/cfg.SampleEvery + 1
	if len(tab.Rows) != wantRows {
		t.Fatalf("fig10 rows = %d, want %d", len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		s, p := parseFloat(t, row[1]), parseFloat(t, row[2])
		if s < 0 || p < 0 || s > 50 || p > 50 {
			t.Errorf("step %s: errors out of plausible range: %g %g", row[0], s, p)
		}
	}
	// Immediate error at the restart step must be nonzero (it is the lossy
	// compression error) and small.
	if parseFloat(t, tab.Rows[0][2]) <= 0 {
		t.Error("zero immediate error after lossy restart")
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "demo",
		Title:  "demo table",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow("y,z", 2)

	var txt bytes.Buffer
	if err := tab.Render(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"demo table", "y,z  2", "x    1.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[2] != `"y,z",2` {
		t.Errorf("csv quoting = %q", lines[2])
	}
	if lines[3] != "# a note" {
		t.Errorf("csv note = %q", lines[3])
	}
}

func TestQuickAndDefaultConfigs(t *testing.T) {
	d := Default()
	if d.Nx != 1156 || d.Nz != 82 || d.WarmupSteps != 720 || d.RestartSteps != 1500 {
		t.Errorf("Default() not paper-faithful: %+v", d)
	}
	q := Quick()
	if q.Nx >= d.Nx || q.WarmupSteps >= d.WarmupSteps {
		t.Errorf("Quick() not smaller than Default(): %+v", q)
	}
}
