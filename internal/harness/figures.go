package harness

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"lossyckpt/internal/climate"
	"lossyckpt/internal/core"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/iomodel"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
)

// DivisionSweep is the paper's set of division numbers n (Figs. 7–8).
var DivisionSweep = []int{1, 2, 4, 8, 16, 32, 64, 128}

// ParallelismSweep is the paper's process-count axis (Fig. 9).
var ParallelismSweep = []int{256, 512, 768, 1024, 1280, 1536, 1792, 2048}

// Table1 reports the experimental environment — the analogue of the
// paper's Table I (its in-house cluster + NFS), which here is this host
// plus the modeled parallel filesystem.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "tab1",
		Title:  "System specification (measured host + modeled parallel FS)",
		Header: []string{"component", "value"},
	}
	t.AddRow("CPU architecture", runtime.GOARCH)
	t.AddRow("OS", runtime.GOOS)
	t.AddRow("logical CPUs", runtime.NumCPU())
	t.AddRow("Go runtime", runtime.Version())
	t.AddRow("modeled shared FS bandwidth", fmt.Sprintf("%.0f GB/s", iomodel.PaperFS.BandwidthBytesPerSec/1e9))
	t.AddRow("workload grid", fmt.Sprintf("%dx%dx%d doubles (%.2f MB/array)", cfg.Nx, cfg.Nz, cfg.Nc, float64(cfg.Nx*cfg.Nz*cfg.Nc*8)/1e6))
	t.Notes = append(t.Notes, "paper Table I: Core i7-3930K, DDR3 16GB, NFS v3 over RAID6 — replaced per DESIGN.md §2")
	return t, nil
}

// optionsFor returns the pipeline options used throughout the figures.
func optionsFor(method quant.Method, divisions int, tmpDir string) core.Options {
	o := core.DefaultOptions()
	o.Method = method
	o.Divisions = divisions
	o.TmpDir = tmpDir
	return o
}

// Fig6 compares the compression rates of gzip against the lossy pipeline
// with simple and proposed quantization at n=128 (paper Fig. 6; its values
// are 86.78% for gzip and roughly 12% / 17% for the lossy methods on the
// temperature array).
func Fig6(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")

	t := &Table{
		ID:     "fig6",
		Title:  "Compression rate: gzip vs lossy (simple / proposed, n=128), temperature array",
		Header: []string{"method", "compression rate [%]", "compressed bytes", "original bytes"},
	}
	gz, err := core.CompressGzipOnly(temp, gzipio.Default, gzipio.InMemory, cfg.TmpDir)
	if err != nil {
		return nil, err
	}
	t.AddRow("gzip", gz.CompressionRatePct(), gz.CompressedBytes, gz.RawBytes)
	for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
		res, err := core.Compress(temp, optionsFor(method, 128, cfg.TmpDir))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("lossy/%s (n=128)", method), res.CompressionRatePct(), res.CompressedBytes, res.RawBytes)
	}
	t.Notes = append(t.Notes, "paper: gzip 86.78%, simple 12.10%, proposed 16.75%")
	return t, nil
}

// Fig7 sweeps the division number n for both quantization methods and
// reports compression rates on the temperature array (paper Fig. 7).
func Fig7(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "fig7",
		Title:  "Compression rate vs division number n, temperature array",
		Header: []string{"n", "simple cr [%]", "proposed cr [%]"},
	}
	for _, n := range DivisionSweep {
		rs, err := core.Compress(temp, optionsFor(quant.Simple, n, cfg.TmpDir))
		if err != nil {
			return nil, err
		}
		rp, err := core.Compress(temp, optionsFor(quant.Proposed, n, cfg.TmpDir))
		if err != nil {
			return nil, err
		}
		t.AddRow(n, rs.CompressionRatePct(), rp.CompressionRatePct())
	}
	t.Notes = append(t.Notes, "paper: simple 11.06%→12.10%, proposed 14.43%→16.75% over n=1→128")
	return t, nil
}

// Fig8 sweeps the division number n and reports average relative errors on
// the temperature array (paper Fig. 8).
func Fig8(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "fig8",
		Title:  "Average relative error [%] vs division number n, temperature array",
		Header: []string{"n", "simple avg err [%]", "proposed avg err [%]", "simple max err [%]", "proposed max err [%]"},
	}
	for _, n := range DivisionSweep {
		row := []any{n}
		var avgs, maxs []float64
		for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
			g, _, err := core.RoundTrip(temp, optionsFor(method, n, cfg.TmpDir))
			if err != nil {
				return nil, err
			}
			s, err := stats.Compare(temp.Data(), g.Data())
			if err != nil {
				return nil, err
			}
			avgs = append(avgs, s.AvgPct)
			maxs = append(maxs, s.MaxPct)
		}
		row = append(row, avgs[0], avgs[1], maxs[0], maxs[1])
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: simple 0.74%→0.025%, proposed 0.49%→0.0056% over n=1→128")
	return t, nil
}

// Fig8AllArrays reports per-array average and maximum relative errors for
// every physical quantity at n=128 (the paper's §IV-C in-text ranges:
// simple avg 0.0053–14.56%, max 0.048–56.84%; proposed avg 0.0004–1.19%,
// max 0.0022–5.94%).
func Fig8AllArrays(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8-all",
		Title:  "Per-array relative errors at n=128, all physical quantities",
		Header: []string{"array", "simple avg [%]", "simple max [%]", "proposed avg [%]", "proposed max [%]"},
	}
	for _, nf := range m.Fields() {
		row := []any{nf.Name}
		for _, method := range []quant.Method{quant.Simple, quant.Proposed} {
			g, _, err := core.RoundTrip(nf.Field, optionsFor(method, 128, cfg.TmpDir))
			if err != nil {
				return nil, err
			}
			s, err := stats.Compare(nf.Field.Data(), g.Data())
			if err != nil {
				return nil, err
			}
			row = append(row, s.AvgPct, s.MaxPct)
		}
		// Reorder: simple avg, simple max, proposed avg, proposed max.
		t.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	t.Notes = append(t.Notes,
		"paper ranges: simple avg 0.0053–14.56%, simple max 0.048–56.84%, proposed avg 0.0004–1.19%, proposed max 0.0022–5.94%")
	return t, nil
}

// MeasureBreakdown compresses the temperature array Repeats times in the
// paper prototype's temp-file mode and returns the median-total timing
// breakdown, the measured compression rate (as a fraction), and the raw
// array size.
func MeasureBreakdown(cfg Config) (core.Timings, float64, int, error) {
	m, err := cfg.model()
	if err != nil {
		return core.Timings{}, 0, 0, err
	}
	temp := m.Field("temperature")
	opts := optionsFor(quant.Proposed, 128, cfg.TmpDir)
	opts.GzipMode = gzipio.TempFile

	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	results := make([]*core.Result, 0, repeats)
	for i := 0; i < repeats; i++ {
		res, err := core.Compress(temp, opts)
		if err != nil {
			return core.Timings{}, 0, 0, err
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Timings.Total < results[j].Timings.Total
	})
	med := results[len(results)/2]
	return med.Timings, float64(med.CompressedBytes) / float64(med.RawBytes), med.RawBytes, nil
}

// Fig9 measures the per-process compression breakdown and projects overall
// checkpoint time across the paper's parallelism sweep using the I/O model
// (paper Fig. 9: crossover around P=768, 55% saving at P=2048, 81%
// asymptotically).
func Fig9(cfg Config) (*Table, error) {
	timings, rate, rawBytes, err := MeasureBreakdown(cfg)
	if err != nil {
		return nil, err
	}
	est := iomodel.Estimator{
		PerProcessBytes: int64(rawBytes),
		CompressionRate: rate,
		FS:              iomodel.PaperFS,
		Compression:     timings,
	}
	rows, err := est.Sweep(ParallelismSweep)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig9",
		Title: "Overall checkpoint time vs parallelism (measured compression + modeled 20 GB/s PFS)",
		Header: []string{"P", "wavelet [ms]", "quant+enc [ms]", "temp write [ms]", "gzip [ms]",
			"other [ms]", "I/O [ms]", "total w/ comp [ms]", "total w/o comp [ms]"},
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, b := range rows {
		t.AddRow(b.P, ms(b.Wavelet), ms(b.Quantize), ms(b.TempWrite), ms(b.Gzip),
			ms(b.Other), ms(b.IO), ms(b.TotalWith), ms(b.TotalWithout))
	}
	cross, err := est.Crossover(1 << 24)
	if err != nil {
		return nil, err
	}
	saving2048, err := est.SavingPctAt(2048)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured compression rate: %.1f%% of original (%d bytes/process)", 100*rate, rawBytes),
		fmt.Sprintf("crossover: compression wins from P=%d (paper: ≈768)", cross),
		fmt.Sprintf("saving at P=2048: %.0f%% (paper: 55%%)", saving2048),
		fmt.Sprintf("asymptotic saving: %.0f%% (paper: 81%%)", est.AsymptoticSavingPct()),
	)
	return t, nil
}

// Fig10 reproduces the restart study (paper Fig. 10): run the model to the
// checkpoint step, checkpoint the temperature array with both quantization
// methods, restart from the lossy state, and track the average relative
// error of the temperature array against the uninterrupted reference run.
func Fig10(cfg Config) (*Table, error) {
	ref, err := cfg.model() // runs to WarmupSteps
	if err != nil {
		return nil, err
	}

	// Build the two restarted models: copies of the reference whose state
	// passed through the lossy compressor.
	restart := func(method quant.Method) (*climate.Model, error) {
		m := ref.Clone()
		for _, nf := range m.Fields() {
			g, _, err := core.RoundTrip(nf.Field, optionsFor(method, 128, cfg.TmpDir))
			if err != nil {
				return nil, err
			}
			copy(nf.Field.Data(), g.Data())
		}
		return m, nil
	}
	simple, err := restart(quant.Simple)
	if err != nil {
		return nil, err
	}
	proposed, err := restart(quant.Proposed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig10",
		Title:  "Relative error of the temperature array after lossy restart vs time step",
		Header: []string{"step", "simple avg err [%]", "proposed avg err [%]"},
	}
	stride := cfg.SampleEvery
	if stride < 1 {
		stride = 1
	}
	var simpleSeries, proposedSeries []float64
	sample := func() error {
		ss, err := stats.Compare(ref.Field("temperature").Data(), simple.Field("temperature").Data())
		if err != nil {
			return err
		}
		sp, err := stats.Compare(ref.Field("temperature").Data(), proposed.Field("temperature").Data())
		if err != nil {
			return err
		}
		simpleSeries = append(simpleSeries, ss.AvgPct)
		proposedSeries = append(proposedSeries, sp.AvgPct)
		t.AddRow(ref.StepCount(), ss.AvgPct, sp.AvgPct)
		return nil
	}
	if err := sample(); err != nil { // immediate (restart-step) error
		return nil, err
	}
	for done := 0; done < cfg.RestartSteps; done += stride {
		n := stride
		if rem := cfg.RestartSteps - done; rem < n {
			n = rem
		}
		ref.StepN(n)
		simple.StepN(n)
		proposed.StepN(n)
		if err := sample(); err != nil {
			return nil, err
		}
	}

	for _, fit := range []struct {
		name   string
		series []float64
	}{{"simple", simpleSeries}, {"proposed", proposedSeries}} {
		if c, r2, err := stats.RandomWalkFit(fit.series); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: √t fit err≈%.3g·√t, R²=%.2f (paper: errors grow like a 1D random walk)", fit.name, c, r2))
		}
	}
	last := len(simpleSeries) - 1
	if proposedSeries[last] < simpleSeries[last] {
		t.Notes = append(t.Notes, "proposed quantization tracks the reference more closely than simple (matches paper)")
	} else {
		t.Notes = append(t.Notes, "WARNING: proposed quantization did NOT beat simple at the final step (paper expects it to)")
	}
	return t, nil
}
