package harness

import (
	"fmt"
	"time"

	"lossyckpt/internal/core"
	"lossyckpt/internal/fpc"
	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/nbody"
	"lossyckpt/internal/quant"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

// AblateGzip is experiment X1: the paper's §IV-D observes that most of the
// compression time goes to gzip through temporary files and proposes
// in-memory zlib compression; this runner measures both paths.
func AblateGzip(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "ablate-gzip",
		Title:  "DEFLATE stage: paper prototype (gzip via temp file) vs proposed improvement (zlib in memory)",
		Header: []string{"configuration", "temp write [ms]", "deflate [ms]", "total [ms]", "cr [%]"},
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	configs := []struct {
		name   string
		mode   gzipio.Mode
		format gzipio.Format
	}{
		{"gzip, temp file (paper prototype)", gzipio.TempFile, gzipio.FormatGzip},
		{"gzip, in memory", gzipio.InMemory, gzipio.FormatGzip},
		{"zlib, in memory (paper's proposal)", gzipio.InMemory, gzipio.FormatZlib},
	}
	for _, c := range configs {
		var best *core.Result
		for i := 0; i < repeats; i++ {
			opts := optionsFor(quant.Proposed, 128, cfg.TmpDir)
			opts.GzipMode = c.mode
			opts.GzipFormat = c.format
			res, err := core.Compress(temp, opts)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Timings.Total < best.Timings.Total {
				best = res
			}
		}
		t.AddRow(c.name, ms(best.Timings.TempWrite), ms(best.Timings.Gzip),
			ms(best.Timings.Total), best.CompressionRatePct())
	}
	t.Notes = append(t.Notes, "paper §IV-D: \"This cost will be mostly eliminated by compressing the temporary checkpoint data with zlib in memory.\"")
	return t, nil
}

// ErrBound is experiment X2: the paper's §IV-C future work — pick the
// division number automatically from a user-specified error bound.
func ErrBound(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature").Clone()
	plan, err := wavelet.NewPlan(temp.Shape(), 1, wavelet.Haar)
	if err != nil {
		return nil, err
	}
	if err := plan.Transform(temp); err != nil {
		return nil, err
	}
	high, err := plan.GatherHigh(temp, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "errbound",
		Title:  "Error-bound-driven division selection (paper §IV-C future work), temperature high band",
		Header: []string{"max-error bound", "chosen n", "achieved max err", "quantized values"},
	}
	for _, bound := range []float64{1.0, 0.1, 0.01, 0.001} {
		n, q, err := quant.ChooseDivisions(high, bound, quant.Proposed, quant.DefaultSpikeDivisions)
		status := ""
		if err == quant.ErrBoundUnreachable {
			status = " (unreachable, capped)"
		} else if err != nil {
			return nil, err
		}
		e, err := quant.MaxQuantizationError(high, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(bound, fmt.Sprintf("%d%s", n, status), e, q.NumQuantized)
	}
	return t, nil
}

// FPCBaseline is experiment X3: the predictive lossless compressor of
// reference [17] as an additional baseline over all arrays.
func FPCBaseline(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fpc",
		Title:  "Lossless baselines per array: gzip vs FPC vs lossy (proposed, n=128)",
		Header: []string{"array", "gzip cr [%]", "fpc cr [%]", "lossy cr [%]"},
	}
	for _, nf := range m.Fields() {
		gz, err := core.CompressGzipOnly(nf.Field, gzipio.Default, gzipio.InMemory, cfg.TmpDir)
		if err != nil {
			return nil, err
		}
		fp, err := fpc.Compress(nf.Field.Data(), fpc.DefaultTableBits)
		if err != nil {
			return nil, err
		}
		lossy, err := core.Compress(nf.Field, optionsFor(quant.Proposed, 128, cfg.TmpDir))
		if err != nil {
			return nil, err
		}
		t.AddRow(nf.Name,
			gz.CompressionRatePct(),
			stats.CompressionRate(len(fp), nf.Field.Bytes()),
			lossy.CompressionRatePct())
	}
	t.Notes = append(t.Notes, "paper §II-A: lossless floating-point compression rates are limited; lossy is essential")
	return t, nil
}

// NBody is experiment X4: the compressor applied to N-body particle arrays
// (related work [31]), where the smoothness premise fails.
func NBody(cfg Config) (*Table, error) {
	nc := nbody.DefaultConfig()
	nc.Seed = cfg.Seed
	sys, err := nbody.New(nc)
	if err != nil {
		return nil, err
	}
	sys.StepN(100)
	t := &Table{
		ID:     "nbody",
		Title:  "Lossy compression on N-body particle arrays (non-smooth data)",
		Header: []string{"array", "cr [%]", "avg err [%]", "max err [%]", "quantized [%]"},
	}
	for _, nf := range sys.Fields() {
		g, res, err := core.RoundTrip(nf.Field, optionsFor(quant.Proposed, 128, cfg.TmpDir))
		if err != nil {
			return nil, err
		}
		s, err := stats.Compare(nf.Field.Data(), g.Data())
		if err != nil {
			return nil, err
		}
		qpct := 0.0
		if res.NumHigh > 0 {
			qpct = 100 * float64(res.NumQuantized) / float64(res.NumHigh)
		}
		t.AddRow(nf.Name, res.CompressionRatePct(), s.AvgPct, s.MaxPct, qpct)
	}
	t.Notes = append(t.Notes,
		"particle-order arrays are not spatially smooth; compression rates degrade vs climate fields (paper future work / related work [31])")
	return t, nil
}

// Levels is experiment X5: a multi-level decomposition ablation beyond the
// paper's single level, including the CDF(5/3) kernel extension.
func Levels(cfg Config) (*Table, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	temp := m.Field("temperature")
	t := &Table{
		ID:     "levels",
		Title:  "Decomposition-depth and kernel ablation, temperature array (proposed, n=128)",
		Header: []string{"scheme", "levels", "cr [%]", "avg err [%]", "max err [%]"},
	}
	maxL := wavelet.MaxLevels(temp.Shape())
	if maxL > 4 {
		maxL = 4
	}
	for _, scheme := range []wavelet.Scheme{wavelet.Haar, wavelet.CDF53} {
		for levels := 1; levels <= maxL; levels++ {
			opts := optionsFor(quant.Proposed, 128, cfg.TmpDir)
			opts.Scheme = scheme
			opts.Levels = levels
			g, res, err := core.RoundTrip(temp, opts)
			if err != nil {
				return nil, err
			}
			s, err := stats.Compare(temp.Data(), g.Data())
			if err != nil {
				return nil, err
			}
			t.AddRow(scheme.String(), levels, res.CompressionRatePct(), s.AvgPct, s.MaxPct)
		}
	}
	t.Notes = append(t.Notes, "paper uses haar at a single level; deeper levels shrink the stored low band")
	return t, nil
}

// Runners maps experiment ids to their runner functions, for
// cmd/experiments and the benchmarks.
var Runners = map[string]func(Config) (*Table, error){
	"tab1":        Table1,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig8-all":    Fig8AllArrays,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"ablate-gzip": AblateGzip,
	"errbound":    ErrBound,
	"fpc":         FPCBaseline,
	"nbody":       NBody,
	"levels":      Levels,
	"cluster":     Cluster,
	"interval":    Interval,
	"perband":     PerBand,
	"threshold":   Threshold,
	"faults":      Faults,
	"incremental": Incremental,
	"datasets":    Datasets,
	"guard":       GuardOverhead,
	"entropy":     EntropyStage,
	"qa":          QualityAnalytics,
	"serve":       ServeChaos,
	"dedup":       Dedup,
}

// RunnerIDs lists the experiment ids in canonical order.
var RunnerIDs = []string{
	"tab1", "fig6", "fig7", "fig8", "fig8-all", "fig9", "fig10",
	"ablate-gzip", "errbound", "fpc", "nbody", "levels", "cluster", "interval",
	"perband", "threshold", "faults", "incremental", "datasets", "guard",
	"entropy", "qa", "serve", "dedup",
}
