// Package server is the hardened multi-tenant checkpoint daemon: an
// HTTP gateway over the crash-safe generation store and the streaming
// checkpoint pipeline. Each tenant owns an isolated store (or replica
// set) behind a bearer token; the daemon adds the robustness envelope a
// shared service needs — bounded in-flight admission with backpressure,
// request deadlines threaded as contexts through commit and retry
// paths, byte quotas, TTL retention via a background scrubber, and a
// graceful drain that finishes in-flight work before the process exits.
//
// Endpoints (all under /v1/{tenant}/, bearer-token authenticated):
//
//	POST /v1/{tenant}/save?step=N[&codec=name]   body: wire field stream
//	GET  /v1/{tenant}/restore                    body: wire field stream
//	GET  /v1/{tenant}/inspect                    JSON generation index
//	POST /v1/{tenant}/fsck                       verified scrub, JSON report
//	POST /v1/{tenant}/scrub                      fast scrub, JSON report
//
// Refusals are deliberate and typed: 401 unknown tenant or bad token,
// 404 nothing restorable, 409 step conflict, 413 body over the byte
// cap, 429 + Retry-After when the in-flight cap is reached, 503 while
// draining, 504 when the request deadline expires, 507 over quota.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/store"
)

// Server metric names.
const (
	// MetricInflight gauges requests currently holding an admission slot.
	MetricInflight = "lossyckpt_server_inflight_requests"
	// MetricRejected counts refused requests, labeled by
	// reason=<overload|draining|auth|quota|deadline|too_large|bad_request>.
	MetricRejected = "lossyckpt_server_rejected_total"
	// MetricTenantBytes counts bytes committed per tenant.
	MetricTenantBytes = "lossyckpt_tenant_bytes_total"
	// MetricRequests counts completed requests labeled op=<save|restore|...>
	// and code=<HTTP status>.
	MetricRequests = "lossyckpt_server_requests_total"
)

// Config describes a daemon instance.
type Config struct {
	// Tenants are the namespaces to serve. At least one is required.
	Tenants []TenantConfig
	// MaxInFlight bounds concurrently admitted requests across all
	// tenants (0 = 16). Excess requests are refused with 429, not
	// queued: under overload the daemon sheds load instead of
	// accumulating latency.
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the client sends
	// no X-Deadline-Ms header (0 = 30s, negative = none).
	DefaultTimeout time.Duration
	// MaxRequestBytes caps a save request body (0 = 1 GiB).
	MaxRequestBytes int64
	// ScrubEvery starts a background scrubber per tenant at this
	// interval (verifies payloads, prunes expired generations, heals
	// replicas). 0 disables.
	ScrubEvery time.Duration
	// Workers bounds decode/encode parallelism per request (0 =
	// GOMAXPROCS).
	Workers int
	// Observer receives daemon telemetry; nil falls back to the process
	// default registry.
	Observer *obs.Registry
	// Journal receives one wide event per request; nil falls back to
	// the process default journal.
	Journal *journal.Journal
	// StoreOptions is the base store configuration tenants inherit
	// (retries, backoff, FS); per-tenant fields (Keep, TTL, FS) override.
	StoreOptions store.Options
}

// Server is a running daemon instance (the HTTP listener is external —
// see obs.ServeHandler — so tests can drive the handler directly).
type Server struct {
	cfg     Config
	tenants map[string]*tenant

	sem      chan struct{} // admission slots
	inflight sync.WaitGroup

	// drainMu serializes request admission against Drain: requests take
	// the read side, check draining, and register with inflight before
	// releasing it; Drain takes the write side to flip draining, so no
	// request can slip in after the flip yet before the Wait.
	drainMu  sync.RWMutex
	draining atomic.Bool

	// hardCtx is cancelled when a drain deadline expires: every
	// in-flight request context is derived from it, so overstaying work
	// is cut off instead of wedging shutdown.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	stopScrubs []func()
	closeOnce  sync.Once
}

// New opens every tenant store (running the store's crash recovery —
// rescan, sweep, quarantine — as the daemon's startup path) and starts
// the background scrubbers. Tenant names and dirs must be unique.
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("server: MaxInFlight must be >= 1, got %d", cfg.MaxInFlight)
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = 1 << 30
	}
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	dirs := map[string]string{}
	for _, tc := range cfg.Tenants {
		if _, dup := s.tenants[tc.Name]; dup {
			s.closeTenants()
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		if owner, dup := dirs[tc.Dir]; dup {
			s.closeTenants()
			return nil, fmt.Errorf("server: tenants %q and %q share dir %s", owner, tc.Name, tc.Dir)
		}
		base := cfg.StoreOptions
		base.Observer = cfg.Observer
		base.Journal = cfg.Journal
		t, err := tc.open(base)
		if err != nil {
			s.closeTenants()
			return nil, err
		}
		s.tenants[tc.Name] = t
		dirs[tc.Dir] = tc.Name
		if cfg.ScrubEvery > 0 {
			stop := t.st.StartScrubberCtx(s.hardCtx, cfg.ScrubEvery, store.ScrubOptions{
				Verify: ckpt.StoreVerifier(false, cfg.Workers),
			})
			s.stopScrubs = append(s.stopScrubs, stop)
		}
	}
	return s, nil
}

func (s *Server) closeTenants() {
	for _, t := range s.tenants {
		t.close()
	}
}

func (s *Server) observer() *obs.Registry {
	if s.cfg.Observer != nil {
		return s.cfg.Observer
	}
	return obs.Default()
}

func (s *Server) journal() *journal.Journal {
	if s.cfg.Journal != nil {
		return s.cfg.Journal
	}
	return journal.Default()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of requests currently holding admission
// slots.
func (s *Server) InFlight() int { return len(s.sem) }

// Drain stops admitting work (new requests get 503) and waits for
// in-flight requests to finish. If ctx expires first, the remaining
// requests' contexts are cancelled — they unwind through the store's
// context-aware commit/retry paths, which abort without leaving temp
// litter — and Drain returns ctx's error after they exit.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardCancel() // cut off overstaying requests
		<-done
		return ctx.Err()
	}
}

// Close releases tenant stores and background scrubbers. Callers
// wanting a graceful exit run Drain first; Close alone is the abrupt
// path (in-flight request contexts are cancelled).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.hardCancel()
		for _, stop := range s.stopScrubs {
			stop()
		}
		s.closeTenants()
	})
	return nil
}

// Handler returns the daemon's API surface. Mount it with
// obs.ServeHandler to get /readyz, or next to a Registry handler for
// the full observability surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/save", s.wrap("save", true, s.handleSave))
	mux.HandleFunc("GET /v1/{tenant}/restore", s.wrap("restore", true, s.handleRestore))
	mux.HandleFunc("GET /v1/{tenant}/inspect", s.wrap("inspect", false, s.handleInspect))
	mux.HandleFunc("POST /v1/{tenant}/fsck", s.wrap("fsck", true, s.handleFsck))
	mux.HandleFunc("POST /v1/{tenant}/scrub", s.wrap("scrub", true, s.handleScrub))
	return mux
}

// httpError is a status-carrying error: handlers return it to pick the
// response code; anything else maps to 500 (or 504/499 for context
// errors).
type httpError struct {
	code   int
	reason string // rejection label for MetricRejected ("" = not a rejection)
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func reject(code int, reason string, format string, args ...any) *httpError {
	return &httpError{code: code, reason: reason, err: fmt.Errorf(format, args...)}
}

// wrap is the request envelope every endpoint runs in: authentication,
// drain refusal, admission control (for heavy endpoints), deadline
// propagation, the journal wide event, and error-to-status mapping.
func (s *Server) wrap(opName string, heavy bool, h func(ctx context.Context, t *tenant, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	o := s.observer()
	return func(w http.ResponseWriter, r *http.Request) {
		code, err := s.serve(opName, heavy, h, w, r)
		o.Counter(MetricRequests, "op", opName, "code", strconv.Itoa(code)).Inc()
		if err != nil && code >= http.StatusInternalServerError {
			o.Event("server.error", "op", opName, "code", code, "err", err.Error())
		}
	}
}

func (s *Server) serve(opName string, heavy bool, h func(ctx context.Context, t *tenant, w http.ResponseWriter, r *http.Request) error, w http.ResponseWriter, r *http.Request) (int, error) {
	o := s.observer()
	name := r.PathValue("tenant")

	op := s.journal().Begin("server."+opName, "tenant", name)
	var opErr error
	outcome := "ok"
	defer func() {
		if op != nil {
			op.Set("outcome", outcome)
			op.End(opErr)
		}
	}()

	fail := func(he *httpError) (int, error) {
		opErr = he
		outcome = he.reason
		if outcome == "" {
			outcome = "error"
		}
		if he.reason != "" {
			o.Counter(MetricRejected, "reason", he.reason).Inc()
		}
		http.Error(w, he.err.Error(), he.code)
		return he.code, he
	}

	// Authentication first: an unauthenticated caller learns nothing
	// about drain state, load, or whether the tenant exists.
	t := s.tenants[name]
	token := bearerToken(r)
	if t == nil || !t.authorize(token) {
		return fail(reject(http.StatusUnauthorized, "auth", "unauthorized"))
	}

	// Admission: refuse while draining; for heavy endpoints take an
	// admission slot or shed the request with 429 + Retry-After. The
	// read-lock bridges the draining check and the in-flight
	// registration so Drain cannot miss us.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		return fail(reject(http.StatusServiceUnavailable, "draining", "draining"))
	}
	if heavy {
		select {
		case s.sem <- struct{}{}:
		default:
			s.drainMu.RUnlock()
			w.Header().Set("Retry-After", "1")
			return fail(reject(http.StatusTooManyRequests, "overload", "over capacity: %d requests in flight", cap(s.sem)))
		}
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()
	if heavy {
		o.Gauge(MetricInflight).Set(float64(len(s.sem)))
		defer func() {
			<-s.sem
			o.Gauge(MetricInflight).Set(float64(len(s.sem)))
		}()
	}

	// Deadline: the client's X-Deadline-Ms, else the server default;
	// parented on hardCtx so an expired drain cuts us off.
	ctx, cancel, d, herr := s.requestContext(r)
	if herr != nil {
		return fail(herr)
	}
	defer cancel()
	if op != nil && d > 0 {
		op.Set("deadline_ms", strconv.FormatInt(d.Milliseconds(), 10))
	}

	if err := h(ctx, t, w, r); err != nil {
		var he *httpError
		switch {
		case errors.As(err, &he):
		case errors.Is(err, context.DeadlineExceeded):
			he = reject(http.StatusGatewayTimeout, "deadline", "deadline exceeded: %v", err)
		case errors.Is(err, context.Canceled):
			// The client went away or the drain hard-stop cut us off.
			// Write the nginx-style 499 anyway: a still-connected caller
			// (drain cut-off) must not read an implicit 200 for work
			// that was aborted.
			he = reject(499, "cancelled", "request cancelled: %v", err)
		default:
			he = &httpError{code: http.StatusInternalServerError, err: err}
		}
		return fail(he)
	}
	return http.StatusOK, nil
}

// requestContext derives the request's context: client deadline header
// or server default, parented so the drain hard-stop cancels it.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, time.Duration, *httpError) {
	d := s.cfg.DefaultTimeout
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, 0, reject(http.StatusBadRequest, "bad_request", "bad X-Deadline-Ms %q", h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if d > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), d)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	stop := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() { stop(); cancel() }, d, nil
}

func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(prefix) && auth[:len(prefix)] == prefix {
		return auth[len(prefix):]
	}
	return ""
}

// SaveResult is the JSON response of a save.
type SaveResult struct {
	Generation uint64 `json:"generation"`
	Step       int    `json:"step"`
	Size       uint64 `json:"size"`
	CRC        uint32 `json:"crc"`
	Codec      string `json:"codec"`
	Fields     int    `json:"fields"`
	ExpireAt   int64  `json:"expire_at,omitempty"`
}

func (s *Server) handleSave(ctx context.Context, t *tenant, w http.ResponseWriter, r *http.Request) error {
	step, err := strconv.Atoi(r.URL.Query().Get("step"))
	if err != nil || step < 0 {
		return reject(http.StatusBadRequest, "bad_request", "save: bad or missing step=%q", r.URL.Query().Get("step"))
	}
	codecName := r.URL.Query().Get("codec")
	if codecName == "" {
		codecName = "none"
	}
	codec, err := ckpt.CodecByName(codecName)
	if err != nil {
		return reject(http.StatusBadRequest, "bad_request", "save: %v", err)
	}
	if t.overQuota() {
		return reject(http.StatusInsufficientStorage, "quota",
			"tenant %q over quota: %d of %d bytes stored", t.cfg.Name, t.usedBytes(), t.cfg.QuotaBytes)
	}

	body := &capReader{r: r.Body, left: s.cfg.MaxRequestBytes}
	fields, err := ReadFields(body)
	if err != nil {
		if body.exceeded {
			return reject(http.StatusRequestEntityTooLarge, "too_large", "save: body over %d bytes", s.cfg.MaxRequestBytes)
		}
		return reject(http.StatusBadRequest, "bad_request", "save: %v", err)
	}
	if len(fields) == 0 {
		return reject(http.StatusBadRequest, "bad_request", "save: empty field stream")
	}

	mgr := ckpt.NewManager(codec, s.cfg.Workers)
	mgr.SetObserver(s.cfg.Observer)
	mgr.SetJournal(s.cfg.Journal)
	for _, nf := range fields {
		if err := mgr.Register(nf.Name, nf.Field); err != nil {
			return reject(http.StatusBadRequest, "bad_request", "save: %v", err)
		}
	}
	_, gen, err := mgr.CheckpointStreamToCtx(ctx, t.st, step)
	if err != nil {
		if errors.Is(err, store.ErrSeqConflict) {
			return reject(http.StatusConflict, "conflict", "save: %v", err)
		}
		return err
	}
	s.observer().Counter(MetricTenantBytes, "tenant", t.cfg.Name).Add(float64(gen.Size))
	return writeJSON(w, SaveResult{
		Generation: gen.Seq,
		Step:       step,
		Size:       gen.Size,
		CRC:        gen.CRC,
		Codec:      codecName,
		Fields:     len(fields),
		ExpireAt:   gen.ExpireAt,
	})
}

func (s *Server) handleRestore(ctx context.Context, t *tenant, w http.ResponseWriter, _ *http.Request) error {
	lc, err := ckpt.LoadLatestCtx(ctx, t.st, s.cfg.Workers)
	if err != nil {
		if errors.Is(err, ckpt.ErrStoreEmpty) {
			return reject(http.StatusNotFound, "empty", "restore: %v", err)
		}
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Generation", strconv.FormatUint(lc.Generation, 10))
	w.Header().Set("X-Step", strconv.Itoa(lc.Step))
	w.Header().Set("X-Codec", lc.Codec)
	if lc.Partial {
		w.Header().Set("X-Partial", strconv.Itoa(lc.SkippedFrames))
	}
	fields := make([]NamedField, len(lc.Fields))
	for i, lf := range lc.Fields {
		fields[i] = NamedField{Name: lf.Name, Field: lf.Field}
	}
	return WriteFields(w, fields)
}

// InspectResult is the JSON response of an inspect. UsedBytes is
// physical occupancy (what the quota meters); for a dedup tenant the
// Dedup block breaks it into recipes and shared chunks.
type InspectResult struct {
	Tenant      string             `json:"tenant"`
	Dir         string             `json:"dir"`
	UsedBytes   int64              `json:"used_bytes"`
	QuotaBytes  int64              `json:"quota_bytes,omitempty"`
	Dedup       *DedupInfo         `json:"dedup,omitempty"`
	Generations []store.Generation `json:"generations"`
}

// DedupInfo is the dedup slice of an inspect response.
type DedupInfo struct {
	Generations  int     `json:"generations"`
	LogicalBytes int64   `json:"logical_bytes"`
	RecipeBytes  int64   `json:"recipe_bytes"`
	Chunks       int     `json:"chunks"`
	ChunkBytes   int64   `json:"chunk_bytes"`
	Ratio        float64 `json:"ratio"`
}

// dedupStatser is the optional stats surface both store flavours offer.
type dedupStatser interface{ DedupStats() store.DedupStats }

func (s *Server) handleInspect(_ context.Context, t *tenant, w http.ResponseWriter, _ *http.Request) error {
	res := InspectResult{
		Tenant:      t.cfg.Name,
		Dir:         t.cfg.Dir,
		UsedBytes:   t.usedBytes(),
		QuotaBytes:  t.cfg.QuotaBytes,
		Generations: t.st.Generations(),
	}
	if ds, ok := t.st.(dedupStatser); ok {
		if st := ds.DedupStats(); st.Enabled {
			res.Dedup = &DedupInfo{
				Generations:  st.DedupGens,
				LogicalBytes: st.LogicalBytes,
				RecipeBytes:  st.RecipeBytes,
				Chunks:       st.Chunks,
				ChunkBytes:   st.ChunkBytes,
				Ratio:        st.Ratio(),
			}
		}
	}
	return writeJSON(w, res)
}

// ScrubResult is the JSON response of a fsck or scrub.
type ScrubResult struct {
	Checked     int      `json:"checked"`
	Quarantined []uint64 `json:"quarantined,omitempty"`
	Missing     []uint64 `json:"missing,omitempty"`
	Expired     []uint64 `json:"expired,omitempty"`
	Divergent   int      `json:"divergent,omitempty"`
	Clean       bool     `json:"clean"`
}

func (s *Server) handleFsck(ctx context.Context, t *tenant, w http.ResponseWriter, r *http.Request) error {
	return s.scrub(ctx, t, w, ckpt.StoreVerifier(r.URL.Query().Get("decode") == "true", s.cfg.Workers))
}

func (s *Server) handleScrub(ctx context.Context, t *tenant, w http.ResponseWriter, _ *http.Request) error {
	return s.scrub(ctx, t, w, nil)
}

func (s *Server) scrub(ctx context.Context, t *tenant, w http.ResponseWriter, verify func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rep, err := t.st.Scrub(store.ScrubOptions{Verify: verify})
	if err != nil {
		return err
	}
	res := ScrubResult{
		Checked:   rep.Checked,
		Missing:   rep.Missing,
		Expired:   rep.Expired,
		Divergent: rep.Divergent,
		Clean:     rep.Clean(),
	}
	for _, q := range rep.Quarantined {
		res.Quarantined = append(res.Quarantined, q.Seq)
	}
	return writeJSON(w, res)
}

// capReader bounds a request body, flagging overflow on the reader
// itself: the decoding layers wrap errors opaquely, so the 413 decision
// cannot ride the error chain.
type capReader struct {
	r        io.Reader
	left     int64
	exceeded bool
}

func (c *capReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		var probe [1]byte
		n, err := c.r.Read(probe[:])
		if n > 0 {
			c.exceeded = true
			return 0, fmt.Errorf("request body too large")
		}
		return 0, err
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}
