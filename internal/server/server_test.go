package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/store"
)

// makeFields builds a small deterministic field set; base separates
// tenants so cross-tenant leakage is detectable by value.
func makeFields(t *testing.T, base float64) []NamedField {
	t.Helper()
	names := []string{"temperature", "pressure"}
	fields := make([]NamedField, len(names))
	for i, name := range names {
		f, err := grid.New(8, 6)
		if err != nil {
			t.Fatal(err)
		}
		for j := range f.Data() {
			f.Data()[j] = base + float64(i*100+j)
		}
		fields[i] = NamedField{Name: name, Field: f}
	}
	return fields
}

func encodeFields(t *testing.T, fields []NamedField) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFields(&buf, fields); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// twoTenants is the standard test topology: tenants "alpha" and "beta",
// isolated dirs, distinct tokens.
func twoTenants(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Token: "tok-a", Dir: filepath.Join(t.TempDir(), "a"), Keep: 3},
			{Name: "beta", Token: "tok-b", Dir: filepath.Join(t.TempDir(), "b"), Keep: 3},
		},
		Observer: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doReq(t *testing.T, method, url, token string, hdr map[string]string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func save(t *testing.T, ts *httptest.Server, tenant, token string, step int, fields []NamedField) *http.Response {
	t.Helper()
	url := fmt.Sprintf("%s/v1/%s/save?step=%d", ts.URL, tenant, step)
	return doReq(t, "POST", url, token, nil, bytes.NewReader(encodeFields(t, fields)))
}

func restoreFields(t *testing.T, ts *httptest.Server, tenant, token string) ([]NamedField, *http.Response) {
	t.Helper()
	resp := doReq(t, "GET", ts.URL+"/v1/"+tenant+"/restore", token, nil, nil)
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, resp
	}
	defer resp.Body.Close()
	fields, err := ReadFields(resp.Body)
	if err != nil {
		t.Fatalf("restore stream: %v", err)
	}
	return fields, resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d (body: %s)", resp.StatusCode, want, bytes.TrimSpace(body))
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	_, ts := twoTenants(t, nil)
	in := makeFields(t, 1)

	resp := save(t, ts, "alpha", "tok-a", 7, in)
	if resp.StatusCode != http.StatusOK {
		wantStatus(t, resp, http.StatusOK)
	}
	var sr SaveResult
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Generation != 1 || sr.Step != 7 || sr.Fields != 2 || sr.Size == 0 {
		t.Fatalf("save result: %+v", sr)
	}

	out, rresp := restoreFields(t, ts, "alpha", "tok-a")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("restore = %d", rresp.StatusCode)
	}
	if got := rresp.Header.Get("X-Generation"); got != "1" {
		t.Fatalf("X-Generation = %q", got)
	}
	if got := rresp.Header.Get("X-Step"); got != "7" {
		t.Fatalf("X-Step = %q", got)
	}
	if len(out) != len(in) {
		t.Fatalf("restored %d fields, want %d", len(out), len(in))
	}
	for i, nf := range out {
		if nf.Name != in[i].Name || !nf.Field.Equal(in[i].Field) {
			t.Fatalf("field %d (%s) does not round-trip", i, nf.Name)
		}
	}
}

func TestAuthAndTenantIsolation(t *testing.T) {
	_, ts := twoTenants(t, nil)
	fields := makeFields(t, 1)

	wantStatus(t, save(t, ts, "alpha", "wrong", 1, fields), http.StatusUnauthorized)
	wantStatus(t, save(t, ts, "alpha", "", 1, fields), http.StatusUnauthorized)
	// Tenant B's valid token must not open tenant A's namespace.
	wantStatus(t, save(t, ts, "alpha", "tok-b", 1, fields), http.StatusUnauthorized)
	// Unknown tenants are indistinguishable from bad tokens.
	wantStatus(t, save(t, ts, "nobody", "tok-a", 1, fields), http.StatusUnauthorized)

	// Data written as alpha is invisible to beta: beta's store is empty.
	wantStatus(t, save(t, ts, "alpha", "tok-a", 1, fields), http.StatusOK)
	_, resp := restoreFields(t, ts, "beta", "tok-b")
	wantStatus(t, resp, http.StatusNotFound)
}

// TestBackpressureExactRejections: with K admission slots held by
// stalled uploads, exactly the next M requests shed with 429 and the
// stalled K complete once unblocked.
func TestBackpressureExactRejections(t *testing.T) {
	const K, M = 2, 3
	s, ts := twoTenants(t, func(c *Config) { c.MaxInFlight = K })

	// Occupy every slot with a save whose body stalls mid-stream.
	type held struct {
		pw   *io.PipeWriter
		done chan *http.Response
	}
	blob := encodeFields(t, makeFields(t, 1))
	holds := make([]held, K)
	for i := range holds {
		pr, pw := io.Pipe()
		done := make(chan *http.Response, 1)
		holds[i] = held{pw: pw, done: done}
		go func(step int) {
			url := fmt.Sprintf("%s/v1/alpha/save?step=%d", ts.URL, step)
			req, _ := http.NewRequest("POST", url, pr)
			req.Header.Set("Authorization", "Bearer tok-a")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				done <- nil
				return
			}
			done <- resp
		}(i + 1)
		// Feed the name length only, then stall: the handler is now
		// inside ReadFields holding its admission slot.
		if _, err := pw.Write(blob[:2]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return s.InFlight() == K })

	// Every further heavy request while saturated: exactly M rejections.
	rejected := 0
	for i := 0; i < M; i++ {
		resp := save(t, ts, "beta", "tok-b", 10+i, makeFields(t, 2))
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			rejected++
		}
		resp.Body.Close()
	}
	if rejected != M {
		t.Fatalf("rejected %d of %d overload requests, want all", rejected, M)
	}

	// Unblock the held uploads; all K must complete successfully.
	for _, h := range holds {
		if _, err := h.pw.Write(blob[2:]); err != nil {
			t.Fatal(err)
		}
		h.pw.Close()
	}
	for i, h := range holds {
		resp := <-h.done
		if resp == nil {
			t.Fatalf("held save %d failed at transport", i)
		}
		wantStatus(t, resp, http.StatusOK)
	}
}

func TestQuotaRefusesWhenFull(t *testing.T) {
	_, ts := twoTenants(t, func(c *Config) {
		c.Tenants[0].QuotaBytes = 64 // smaller than one checkpoint
	})
	fields := makeFields(t, 1)
	// First save admitted (usage 0 < quota), filling the store past quota.
	wantStatus(t, save(t, ts, "alpha", "tok-a", 1, fields), http.StatusOK)
	wantStatus(t, save(t, ts, "alpha", "tok-a", 2, fields), http.StatusInsufficientStorage)
	// The unquota'd tenant is unaffected.
	wantStatus(t, save(t, ts, "beta", "tok-b", 1, fields), http.StatusOK)
}

// TestDeadlineExpiresMidCommitNoLitter: a tiny client deadline against
// a slow store fails with 504 and leaves no temp litter; the previous
// generation survives.
func TestDeadlineExpiresMidCommitNoLitter(t *testing.T) {
	ffs := store.NewFaultFS(store.OsFS{})
	dirA := filepath.Join(t.TempDir(), "a")
	_, ts := twoTenants(t, func(c *Config) {
		c.Tenants[0].Dir = dirA
		c.Tenants[0].FS = ffs
	})
	fields := makeFields(t, 1)
	wantStatus(t, save(t, ts, "alpha", "tok-a", 1, fields), http.StatusOK)

	ffs.SetOpDelay(30 * time.Millisecond) // every FS write op now crawls
	resp := doReq(t, "POST", ts.URL+"/v1/alpha/save?step=2", "tok-a",
		map[string]string{"X-Deadline-Ms": "20"},
		bytes.NewReader(encodeFields(t, fields)))
	wantStatus(t, resp, http.StatusGatewayTimeout)
	ffs.SetOpDelay(0)

	assertNoTempLitter(t, dirA)
	out, rresp := restoreFields(t, ts, "alpha", "tok-a")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("restore after failed save = %d", rresp.StatusCode)
	}
	if rresp.Header.Get("X-Generation") != "1" {
		t.Fatalf("surviving generation = %s, want 1", rresp.Header.Get("X-Generation"))
	}
	if !out[0].Field.Equal(fields[0].Field) {
		t.Fatal("surviving generation corrupted")
	}
}

// TestDrainRefusesNewFinishesOld: during a drain new requests get 503
// while the in-flight save runs to completion and Drain returns clean.
func TestDrainRefusesNewFinishesOld(t *testing.T) {
	s, ts := twoTenants(t, nil)
	blob := encodeFields(t, makeFields(t, 1))

	pr, pw := io.Pipe()
	done := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/alpha/save?step=1", pr)
		req.Header.Set("Authorization", "Bearer tok-a")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- nil
			return
		}
		done <- resp
	}()
	if _, err := pw.Write(blob[:2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return s.InFlight() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, time.Second, func() bool { return s.Draining() })

	// New work refused while draining.
	wantStatus(t, save(t, ts, "beta", "tok-b", 1, makeFields(t, 2)), http.StatusServiceUnavailable)

	// The in-flight save completes and the drain resolves clean.
	if _, err := pw.Write(blob[2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	resp := <-done
	if resp == nil {
		t.Fatal("held save failed at transport")
	}
	wantStatus(t, resp, http.StatusOK)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
}

// TestDrainDeadlineCutsOffStragglers: when the drain budget expires,
// in-flight request contexts are cancelled — the commit aborts through
// the store's context-aware path with no litter — and Drain reports the
// deadline error.
func TestDrainDeadlineCutsOffStragglers(t *testing.T) {
	ffs := store.NewFaultFS(store.OsFS{})
	dirA := filepath.Join(t.TempDir(), "a")
	s, ts := twoTenants(t, func(c *Config) {
		c.Tenants[0].Dir = dirA
		c.Tenants[0].FS = ffs
		c.DefaultTimeout = -1 // only the drain hard-stop ends the request
		// A transient fault sends the straggler into a long retry
		// backoff; nothing but the drain hard-stop can wake it early.
		c.StoreOptions = store.Options{BackoffBase: 30 * time.Second, BackoffCap: 30 * time.Second}
	})
	wantStatus(t, save(t, ts, "alpha", "tok-a", 1, makeFields(t, 1)), http.StatusOK)

	ffs.FailAt(ffs.Ops()+1, store.Fault{Kind: store.ErrorOnce})
	done := make(chan *http.Response, 1)
	go func() {
		resp := save(t, ts, "alpha", "tok-a", 2, makeFields(t, 1))
		done <- resp
	}()
	waitFor(t, time.Second, func() bool { return s.InFlight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	resp := <-done
	if resp.StatusCode == http.StatusOK {
		t.Fatal("cut-off save reported success")
	}
	resp.Body.Close()
	assertNoTempLitter(t, dirA)
}

func TestInspectFsckScrub(t *testing.T) {
	_, ts := twoTenants(t, nil)
	wantStatus(t, save(t, ts, "alpha", "tok-a", 1, makeFields(t, 1)), http.StatusOK)
	wantStatus(t, save(t, ts, "alpha", "tok-a", 2, makeFields(t, 1)), http.StatusOK)

	resp := doReq(t, "GET", ts.URL+"/v1/alpha/inspect", "tok-a", nil, nil)
	var ir InspectResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Tenant != "alpha" || len(ir.Generations) != 2 || ir.UsedBytes <= 0 {
		t.Fatalf("inspect: %+v", ir)
	}

	for _, ep := range []string{"fsck", "scrub"} {
		resp := doReq(t, "POST", ts.URL+"/v1/alpha/"+ep, "tok-a", nil, nil)
		var sr ScrubResult
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if !sr.Clean || sr.Checked != 2 {
			t.Fatalf("%s: %+v", ep, sr)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := twoTenants(t, func(c *Config) { c.MaxRequestBytes = 256 })
	fields := makeFields(t, 1)

	// Missing step.
	resp := doReq(t, "POST", ts.URL+"/v1/alpha/save", "tok-a", nil,
		bytes.NewReader(encodeFields(t, fields)))
	wantStatus(t, resp, http.StatusBadRequest)

	// Unknown codec.
	resp = doReq(t, "POST", ts.URL+"/v1/alpha/save?step=1&codec=zpaq", "tok-a", nil,
		bytes.NewReader(encodeFields(t, fields)))
	wantStatus(t, resp, http.StatusBadRequest)

	// Body over the byte cap.
	resp = doReq(t, "POST", ts.URL+"/v1/alpha/save?step=1", "tok-a", nil,
		bytes.NewReader(encodeFields(t, fields)))
	wantStatus(t, resp, http.StatusRequestEntityTooLarge)

	// Torn field stream (kept under the byte cap so the 400 is about
	// framing, not size).
	blob := encodeFields(t, fields)
	resp = doReq(t, "POST", ts.URL+"/v1/alpha/save?step=1", "tok-a", nil,
		bytes.NewReader(blob[:100]))
	wantStatus(t, resp, http.StatusBadRequest)

	// Bad deadline header.
	resp = doReq(t, "POST", ts.URL+"/v1/alpha/save?step=1", "tok-a",
		map[string]string{"X-Deadline-Ms": "soon"}, bytes.NewReader(blob))
	wantStatus(t, resp, http.StatusBadRequest)
}

// TestLossyCodecOverDaemon exercises a non-trivial codec end to end:
// the daemon compresses on save and decompresses on restore.
func TestLossyCodecOverDaemon(t *testing.T) {
	_, ts := twoTenants(t, nil)
	fields := makeFields(t, 3)
	url := fmt.Sprintf("%s/v1/alpha/save?step=1&codec=gzip", ts.URL)
	resp := doReq(t, "POST", url, "tok-a", nil, bytes.NewReader(encodeFields(t, fields)))
	wantStatus(t, resp, http.StatusOK)
	out, rresp := restoreFields(t, ts, "alpha", "tok-a")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("restore = %d", rresp.StatusCode)
	}
	if rresp.Header.Get("X-Codec") != "gzip" {
		t.Fatalf("X-Codec = %q", rresp.Header.Get("X-Codec"))
	}
	for i, nf := range out {
		if !nf.Field.Equal(fields[i].Field) {
			t.Fatalf("field %s does not round-trip through gzip", nf.Name)
		}
	}
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	var litter []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			litter = append(litter, path)
		}
		return nil
	})
	if len(litter) > 0 {
		t.Fatalf("temp litter left behind: %v", litter)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestDedupTenantQuotaMetersPhysicalBytes: a dedup tenant saving the
// same state repeatedly is charged for recipes + shared chunks, not the
// logical sum of generation sizes — so it stays under a quota that
// refuses the identical workload on a plain tenant after two saves.
func TestDedupTenantQuotaMetersPhysicalBytes(t *testing.T) {
	mk := func() []NamedField {
		f, err := grid.New(32, 32)
		if err != nil {
			t.Fatal(err)
		}
		for j := range f.Data() {
			f.Data()[j] = float64(j % 251)
		}
		return []NamedField{{Name: "state", Field: f}}
	}
	fields := mk()
	quota := int64(2 * len(encodeFields(t, fields)))

	_, ts := twoTenants(t, func(c *Config) {
		c.StoreOptions.DedupChunk = cas.Config{Min: 1 << 10, Avg: 4 << 10, Max: 16 << 10}
		c.Tenants[0].Dedup = true
		c.Tenants[0].Keep = -1
		c.Tenants[0].QuotaBytes = quota
		c.Tenants[1].Keep = -1
		c.Tenants[1].QuotaBytes = quota
	})

	// Five identical saves: logical usage is ~5 payloads, far over
	// quota, but the dedup tenant's physical usage stays ~1 payload.
	for i := 0; i < 5; i++ {
		wantStatus(t, save(t, ts, "alpha", "tok-a", 1, fields), http.StatusOK)
	}
	// The plain tenant hits the same quota on logical == physical bytes.
	wantStatus(t, save(t, ts, "beta", "tok-b", 1, fields), http.StatusOK)
	wantStatus(t, save(t, ts, "beta", "tok-b", 1, fields), http.StatusOK)
	wantStatus(t, save(t, ts, "beta", "tok-b", 1, fields), http.StatusInsufficientStorage)

	// Inspect reports the dedup accounting and physical usage under quota.
	resp := doReq(t, "GET", ts.URL+"/v1/alpha/inspect", "tok-a", nil, nil)
	defer resp.Body.Close()
	var ir InspectResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.UsedBytes >= quota {
		t.Fatalf("dedup tenant used %d of %d after 5 identical saves", ir.UsedBytes, quota)
	}
	if ir.Dedup == nil {
		t.Fatal("inspect omitted dedup block for a dedup tenant")
	}
	if ir.Dedup.Generations != 5 || ir.Dedup.Ratio < 3 {
		t.Fatalf("dedup block %+v, want 5 generations and ratio >= 3", *ir.Dedup)
	}

	// The deduped state restores byte-correct.
	got, rresp := restoreFields(t, ts, "alpha", "tok-a")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d", rresp.StatusCode)
	}
	if len(got) != 1 || !got[0].Field.Equal(fields[0].Field) {
		t.Fatal("restored dedup state differs")
	}
}
