// tenant.go is the multi-tenant boundary of the checkpoint daemon: each
// tenant owns one store topology (a single root or an N-way replica
// set), one bearer token, and one resource envelope (retention ring,
// TTL, byte quota). Tenants never share a store object, so isolation is
// structural — there is no code path from one tenant's handler to
// another tenant's bytes.
package server

import (
	"crypto/subtle"
	"fmt"
	"time"

	"lossyckpt/internal/store"
)

// TenantConfig describes one tenant's namespace.
type TenantConfig struct {
	// Name is the tenant identifier used in request paths
	// (/v1/{tenant}/...). Required, unique.
	Name string `json:"name"`
	// Token is the bearer token requests must present. Required — the
	// daemon refuses to serve an unauthenticated namespace.
	Token string `json:"token"`
	// Dir is the tenant's store root. Required, unique.
	Dir string `json:"dir"`
	// Keep is the retention ring size (0 = store default of 3,
	// negative = keep everything).
	Keep int `json:"keep,omitempty"`
	// TTL, when positive, stamps every generation with an expiry; the
	// daemon's scrubber prunes expired generations (never the newest).
	TTL time.Duration `json:"ttl,omitempty"`
	// QuotaBytes caps the tenant's stored bytes (sum of retained
	// generation sizes). 0 means unlimited. A save is admitted only
	// while usage is under quota.
	QuotaBytes int64 `json:"quota_bytes,omitempty"`
	// Dedup switches the tenant's store to content-addressed chunk
	// storage: repeated slabs across generations are stored once and
	// committed generations become recipes of chunk references. The
	// quota then naturally meters physical bytes (recipes + shared
	// chunks), not the logical sum of generation sizes.
	Dedup bool `json:"dedup,omitempty"`
	// Replicas spreads the store over N replica subdirectories with
	// quorum commit (0 or 1 = single root).
	Replicas int `json:"replicas,omitempty"`
	// Quorum is the write quorum for Replicas > 1 (0 = majority).
	Quorum int `json:"quorum,omitempty"`
	// Backend names the storage backend ("posix" default, "object").
	Backend string `json:"backend,omitempty"`
	// FS overrides the tenant store's filesystem (tests inject a
	// FaultFS here; nil = the OS filesystem).
	FS store.FS `json:"-"`
}

// tenant is the runtime for one namespace: the opened store plus the
// static config.
type tenant struct {
	cfg TenantConfig
	st  store.Target
}

// open validates cfg and opens the tenant's store topology, recovering
// whatever state the directory holds (rescan and sweep run inside
// store.Open — this is the daemon's crash-safe startup path).
func (tc TenantConfig) open(base store.Options) (*tenant, error) {
	if tc.Name == "" {
		return nil, fmt.Errorf("server: tenant with empty name")
	}
	if tc.Token == "" {
		return nil, fmt.Errorf("server: tenant %q has no token", tc.Name)
	}
	if tc.Dir == "" {
		return nil, fmt.Errorf("server: tenant %q has no store dir", tc.Name)
	}
	opts := base
	opts.Keep = tc.Keep
	opts.TTL = tc.TTL
	opts.Dedup = tc.Dedup
	if tc.FS != nil {
		opts.FS = tc.FS
	}
	if tc.Backend != "" {
		bk, err := store.ParseBackend(tc.Backend)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
		}
		opts.Backend = bk
	}
	n := tc.Replicas
	if n < 0 {
		return nil, fmt.Errorf("server: tenant %q: replicas must be >= 0, got %d", tc.Name, n)
	}
	var (
		st  store.Target
		err error
	)
	if n <= 1 {
		st, err = store.Open(tc.Dir, opts)
	} else {
		if tc.Quorum < 0 || tc.Quorum > n {
			return nil, fmt.Errorf("server: tenant %q: quorum %d out of range for %d replicas", tc.Name, tc.Quorum, n)
		}
		st, err = store.OpenReplicated(tc.Dir, store.ReplicaDirs(tc.Dir, n), tc.Quorum, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
	}
	return &tenant{cfg: tc, st: st}, nil
}

// authorize checks a presented bearer token in constant time.
func (t *tenant) authorize(token string) bool {
	return subtle.ConstantTimeCompare([]byte(token), []byte(t.cfg.Token)) == 1
}

// usedBytes is the quantity the byte quota is enforced against: the
// store's physical occupancy. For a plain store that is the sum of the
// retained generations' sizes; for a dedup store it is recipes plus
// the shared chunk population, so a tenant is never charged for
// logical bytes dedup did not store. Recomputed per request from the
// store's own index so restarts, scrub pruning and retention all stay
// automatically accounted.
func (t *tenant) usedBytes() int64 {
	return t.st.PhysicalBytes()
}

// overQuota reports whether a new save must be refused.
func (t *tenant) overQuota() bool {
	return t.cfg.QuotaBytes > 0 && t.usedBytes() >= t.cfg.QuotaBytes
}

// close releases the tenant's store, draining replication stragglers
// first so a graceful daemon shutdown leaves replicas converged.
func (t *tenant) close() {
	if rs, ok := t.st.(*store.ReplicatedStore); ok {
		rs.Wait()
	}
}
