// wire.go is the daemon's field-stream framing: a save request body and
// a restore response body are the same format — a sequence of named
// fields, each a [u16 name length][name][grid field] triple, terminated
// by EOF. The grid serialization is self-delimiting ("GRDF" magic,
// sized payload, CRC), so the framing adds only the variable name; a
// torn stream is detected either by the length prefix hitting EOF
// mid-read or by the grid decoder's own checks.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lossyckpt/internal/grid"
)

// Wire-format limits. Names are operator-chosen identifiers, not data;
// the count cap bounds a malicious or looping client before the byte
// cap does on small fields.
const (
	maxWireNameLen = 1024
	maxWireFields  = 4096
)

// ErrWire indicates a malformed field stream.
var ErrWire = errors.New("server: malformed field stream")

// NamedField pairs a variable name with its array, the unit of the
// daemon's wire format.
type NamedField struct {
	Name  string
	Field *grid.Field
}

// WriteFields streams fields to w in wire order.
func WriteFields(w io.Writer, fields []NamedField) error {
	var lenBuf [2]byte
	for _, nf := range fields {
		if nf.Name == "" || len(nf.Name) > maxWireNameLen {
			return fmt.Errorf("%w: field name length %d (want 1..%d)", ErrWire, len(nf.Name), maxWireNameLen)
		}
		binary.BigEndian.PutUint16(lenBuf[:], uint16(len(nf.Name)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, nf.Name); err != nil {
			return err
		}
		if _, err := nf.Field.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadFields consumes a wire field stream until EOF. A clean EOF at a
// field boundary ends the stream; EOF anywhere else is a torn stream
// and an error. Duplicate names are rejected — the stream feeds a
// checkpoint manager where names are keys.
func ReadFields(r io.Reader) ([]NamedField, error) {
	var (
		fields []NamedField
		seen   = map[string]bool{}
		lenBuf [2]byte
	)
	for {
		if len(fields) >= maxWireFields {
			return nil, fmt.Errorf("%w: more than %d fields", ErrWire, maxWireFields)
		}
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return fields, nil // clean boundary
			}
			return nil, fmt.Errorf("%w: torn name length: %v", ErrWire, err)
		}
		n := int(binary.BigEndian.Uint16(lenBuf[:]))
		if n == 0 || n > maxWireNameLen {
			return nil, fmt.Errorf("%w: field name length %d (want 1..%d)", ErrWire, n, maxWireNameLen)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: torn name: %v", ErrWire, err)
		}
		if seen[string(name)] {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrWire, name)
		}
		f, err := grid.ReadField(r)
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %v", ErrWire, name, err)
		}
		seen[string(name)] = true
		fields = append(fields, NamedField{Name: string(name), Field: f})
	}
}
