package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lossyckpt/internal/store"
)

// chaos_test.go is the kill-mid-request matrix the daemon's robustness
// claim rests on: a simulated process kill at EVERY filesystem
// operation boundary of a save — while a second tenant commits
// concurrently — followed by a daemon restart on the same directories.
// After every single crash point the restarted daemon must report a
// clean store, restore byte-correct state for both tenants, show zero
// cross-tenant contamination and zero temp litter.

// chaosHarness runs one daemon over two tenant dirs, tenant A on an
// injectable FaultFS.
type chaosHarness struct {
	dirA, dirB string
	ffs        *store.FaultFS
	s          *Server
	ts         *httptest.Server
}

func startChaos(t *testing.T, dirA, dirB string, ffs *store.FaultFS) *chaosHarness {
	t.Helper()
	cfg := Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Token: "tok-a", Dir: dirA, Keep: 3, FS: ffs},
			{Name: "beta", Token: "tok-b", Dir: dirB, Keep: 3},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("daemon restart on crashed dirs failed: %v", err)
	}
	return &chaosHarness{dirA: dirA, dirB: dirB, ffs: ffs, s: s, ts: httptest.NewServer(s.Handler())}
}

func (h *chaosHarness) stop() {
	h.ts.Close()
	h.s.Close()
}

// verifyTenant asserts the tenant restores cleanly and every field
// carries that tenant's value signature (base), i.e. no cross-tenant
// bytes leaked in.
func (h *chaosHarness) verifyTenant(t *testing.T, tenant, token string, wantBases []float64) {
	t.Helper()
	fields, resp := restoreFields(t, h.ts, tenant, token)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant %s: restore = %d after recovery", tenant, resp.StatusCode)
	}
	if len(fields) == 0 {
		t.Fatalf("tenant %s: restore returned no fields", tenant)
	}
	base := fields[0].Field.Data()[0]
	ok := false
	for _, want := range wantBases {
		if base == want {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("tenant %s: restored base value %v not in %v — cross-tenant or torn data", tenant, base, wantBases)
	}
	// Every value of every field must carry the same base signature
	// (makeFields writes base + i*100 + j): one foreign or stale value
	// anywhere is leakage or a torn restore.
	for i, nf := range fields {
		for j, v := range nf.Field.Data() {
			if want := base + float64(i*100+j); v != want {
				t.Fatalf("tenant %s: field %s[%d] = %v, want %v", tenant, nf.Name, j, v, want)
			}
		}
	}

	// The store itself must audit clean.
	fresp := doReq(t, "POST", h.ts.URL+"/v1/"+tenant+"/fsck", token, nil, nil)
	body, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("tenant %s: fsck = %d (%s)", tenant, fresp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"clean":true`)) {
		t.Fatalf("tenant %s: fsck not clean after recovery: %s", tenant, body)
	}
}

// TestChaosKillMatrixMidSave: probe how many FS ops one save costs,
// then re-run the save with a simulated kill at each op boundary (torn
// write on odd points, clean crash on even — both leave the FS dead, as
// a SIGKILL would), restart the daemon on the same dirs each time, and
// hold the recovery invariants. Tenant B commits concurrently with
// every crashing save to prove isolation under fire.
func TestChaosKillMatrixMidSave(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := filepath.Join(root, "a"), filepath.Join(root, "b")

	// Probe: one clean save to count the op budget of a commit.
	probe := store.NewFaultFS(store.OsFS{})
	h := startChaos(t, dirA, dirB, probe)
	wantStatus(t, save(t, h.ts, "alpha", "tok-a", 1, makeFields(t, 1)), http.StatusOK)
	wantStatus(t, save(t, h.ts, "beta", "tok-b", 1, makeFields(t, 1001)), http.StatusOK)
	h.stop()
	opsPerSave := probe.Ops()
	if opsPerSave < 4 {
		t.Fatalf("implausible op count %d for one save", opsPerSave)
	}

	stepA, stepB := 1, 1
	for k := 1; k <= opsPerSave; k++ {
		k := k
		t.Run(fmt.Sprintf("kill_at_op_%d", k), func(t *testing.T) {
			ffs := store.NewFaultFS(store.OsFS{})
			kind := store.Fault{Kind: store.Crash}
			if k%2 == 1 {
				kind = store.Fault{Kind: store.TornWrite, TornBytes: 3}
			}
			ffs.FailAt(k, kind)
			h := startChaos(t, dirA, dirB, ffs)

			// Tenant B saves concurrently with the doomed tenant-A save.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := save(t, h.ts, "beta", "tok-b", stepB+1, makeFields(t, 1001+float64(stepB)))
				if resp.StatusCode == http.StatusOK {
					stepB++
				}
				resp.Body.Close()
			}()

			resp := save(t, h.ts, "alpha", "tok-a", stepA+1, makeFields(t, 1+float64(stepA)))
			saved := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			wg.Wait()
			h.stop()

			if !saved && !ffs.Crashed() {
				t.Fatalf("save failed without the injected kill firing (op %d)", k)
			}
			if saved {
				stepA++
			}

			// "Restart": a fresh daemon over the same directories with a
			// healthy FS — the startup path must absorb whatever the kill
			// left behind.
			h2 := startChaos(t, dirA, dirB, store.NewFaultFS(store.OsFS{}))
			defer h2.stop()
			// Tenant A restores either the pre-kill or the post-kill state,
			// never anything else; tenant B's concurrent commits are intact.
			h2.verifyTenant(t, "alpha", "tok-a", []float64{1 + float64(stepA-1), 1 + float64(stepA)})
			h2.verifyTenant(t, "beta", "tok-b", []float64{1001 + float64(stepB-1), 1001 + float64(stepB)})
			assertNoTempLitter(t, dirA)
			assertNoTempLitter(t, dirB)

			// And the recovered store accepts new commits.
			resp = save(t, h2.ts, "alpha", "tok-a", stepA+1, makeFields(t, 1+float64(stepA)))
			wantStatus(t, resp, http.StatusOK)
			stepA++
		})
	}
}

// TestChaosClientAbortMidUpload: a client that dies mid-upload must
// not commit a torn generation or leave litter.
func TestChaosClientAbortMidUpload(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := filepath.Join(root, "a"), filepath.Join(root, "b")
	h := startChaos(t, dirA, dirB, store.NewFaultFS(store.OsFS{}))
	defer h.stop()

	wantStatus(t, save(t, h.ts, "alpha", "tok-a", 1, makeFields(t, 1)), http.StatusOK)

	blob := encodeFields(t, makeFields(t, 2))
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest("POST", h.ts.URL+"/v1/alpha/save?step=2", pr)
		req.Header.Set("Authorization", "Bearer tok-a")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				t.Error("aborted upload reported success")
			}
			resp.Body.Close()
		}
	}()
	pw.Write(blob[:len(blob)/3])
	pw.CloseWithError(fmt.Errorf("client died"))
	<-done

	// The pre-abort generation is the surviving truth.
	fields, resp := restoreFields(t, h.ts, "alpha", "tok-a")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Generation") != "1" {
		t.Fatalf("restore after aborted upload: %d gen %s", resp.StatusCode, resp.Header.Get("X-Generation"))
	}
	if fields[0].Field.Data()[0] != 1 {
		t.Fatal("surviving generation has wrong content")
	}
	assertNoTempLitter(t, dirA)
}

// TestChaosKillDuringConcurrentLoadThenRestart: sustained two-tenant
// load, a process kill mid-flight (CrashNow — every subsequent FS op of
// tenant A fails as if the process died), restart, full verification.
func TestChaosKillDuringConcurrentLoadThenRestart(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := filepath.Join(root, "a"), filepath.Join(root, "b")
	ffs := store.NewFaultFS(store.OsFS{})
	h := startChaos(t, dirA, dirB, ffs)

	const rounds = 6
	var lastA, lastB int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			token, base := "tok-a", 1.0
			if tenant == "beta" {
				token, base = "tok-b", 1001.0
			}
			for step := 1; step <= rounds; step++ {
				resp := save(t, h.ts, tenant, token, step, makeFields(t, base+float64(step-1)))
				okSave := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if okSave {
					mu.Lock()
					if tenant == "alpha" {
						lastA = step
					} else {
						lastB = step
					}
					mu.Unlock()
				}
				if step == rounds/2 && tenant == "alpha" {
					ffs.CrashNow() // the process "dies" under tenant A
				}
			}
		}()
	}
	wg.Wait()
	h.stop()
	if lastA == 0 || lastB != rounds {
		t.Fatalf("load phase: lastA=%d lastB=%d (want A>0, B=%d)", lastA, lastB, rounds)
	}

	// Restart on a healthy FS: both tenants must recover.
	h2 := startChaos(t, dirA, dirB, store.NewFaultFS(store.OsFS{}))
	defer h2.stop()
	h2.verifyTenant(t, "alpha", "tok-a", []float64{1 + float64(lastA-1)})
	h2.verifyTenant(t, "beta", "tok-b", []float64{1001 + float64(lastB-1)})
	assertNoTempLitter(t, dirA)
	assertNoTempLitter(t, dirB)
}

// TestChaosDeadlineStormNoLitter: a burst of saves under an aggressive
// deadline against a slow store must not leave a single temp file or
// torn generation, whatever mix of 200s and 504s comes back.
func TestChaosDeadlineStormNoLitter(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := filepath.Join(root, "a"), filepath.Join(root, "b")
	ffs := store.NewFaultFS(store.OsFS{})
	h := startChaos(t, dirA, dirB, ffs)
	defer h.stop()

	wantStatus(t, save(t, h.ts, "alpha", "tok-a", 1, makeFields(t, 1)), http.StatusOK)
	ffs.SetOpDelay(3 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/alpha/save?step=%d", h.ts.URL, 2+i)
			req, _ := http.NewRequest("POST", url, bytes.NewReader(encodeFields(t, makeFields(t, 50))))
			req.Header.Set("Authorization", "Bearer tok-a")
			req.Header.Set("X-Deadline-Ms", fmt.Sprint(1+i*5))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	ffs.SetOpDelay(0)

	assertNoTempLitter(t, dirA)
	fresp := doReq(t, "POST", h.ts.URL+"/v1/alpha/fsck", "tok-a", nil, nil)
	body, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if !bytes.Contains(body, []byte(`"clean":true`)) {
		t.Fatalf("store not clean after deadline storm: %s", body)
	}
}
