package server

import (
	"bytes"
	"errors"
	"testing"

	"lossyckpt/internal/grid"
)

func TestWireRoundTrip(t *testing.T) {
	in := makeFields(t, 42)
	var buf bytes.Buffer
	if err := WriteFields(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFields(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d fields, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || !out[i].Field.Equal(in[i].Field) {
			t.Fatalf("field %d differs after round trip", i)
		}
	}
}

func TestWireEmptyStream(t *testing.T) {
	out, err := ReadFields(bytes.NewReader(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream: %v, %d fields", err, len(out))
	}
}

func TestWireTornStream(t *testing.T) {
	blob := encodeFields(t, makeFields(t, 1))
	for _, cut := range []int{1, 3, len(blob) / 2, len(blob) - 1} {
		if _, err := ReadFields(bytes.NewReader(blob[:cut])); !errors.Is(err, ErrWire) {
			t.Fatalf("cut at %d: err = %v, want ErrWire", cut, err)
		}
	}
}

func TestWireDuplicateName(t *testing.T) {
	f, err := grid.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	dup := []NamedField{{Name: "x", Field: f}, {Name: "x", Field: f}}
	if err := WriteFields(&buf, dup); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFields(&buf); !errors.Is(err, ErrWire) {
		t.Fatalf("duplicate name: err = %v, want ErrWire", err)
	}
}

func TestWireRejectsBadNames(t *testing.T) {
	f, err := grid.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFields(&buf, []NamedField{{Name: "", Field: f}}); !errors.Is(err, ErrWire) {
		t.Fatalf("empty name: err = %v, want ErrWire", err)
	}
	long := make([]byte, maxWireNameLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if err := WriteFields(&buf, []NamedField{{Name: string(long), Field: f}}); !errors.Is(err, ErrWire) {
		t.Fatalf("oversized name: err = %v, want ErrWire", err)
	}
}
