// Package grid provides the N-dimensional double-precision field abstraction
// that every other package in this repository builds on.
//
// A Field is a dense, row-major (C-order) array of float64 values together
// with its shape. Scientific checkpoint data in the reproduced paper
// (Sasaki et al., IPDPS 2015) consists of 1D/2D/3D arrays of physical
// quantities such as pressure, temperature and wind velocity; Field models
// exactly that: a flat backing slice plus shape/stride bookkeeping, with
// helpers for axis iteration that the wavelet transform needs and a compact
// binary serialization used by the checkpoint container.
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxDims is the largest number of dimensions a Field may have. The paper
// only exercises 1D–3D arrays; we allow a little headroom.
const MaxDims = 8

// Errors returned by this package.
var (
	// ErrShape indicates an invalid shape (empty, a non-positive extent, or
	// too many dimensions).
	ErrShape = errors.New("grid: invalid shape")
	// ErrSize indicates that a provided backing slice does not match the
	// number of elements implied by the shape.
	ErrSize = errors.New("grid: data length does not match shape")
	// ErrFormat indicates malformed serialized field data.
	ErrFormat = errors.New("grid: malformed serialized field")
)

// Field is a dense N-dimensional array of float64 in row-major order.
// The zero value is not usable; construct Fields with New or FromSlice.
type Field struct {
	shape  []int
	stride []int
	data   []float64
}

// New allocates a zero-filled Field with the given shape.
func New(shape ...int) (*Field, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	f := &Field{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	f.stride = strides(f.shape)
	return f, nil
}

// MustNew is New but panics on error. Intended for tests and for literals
// with compile-time-constant shapes.
func MustNew(shape ...int) *Field {
	f, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return f
}

// FromSlice wraps an existing backing slice in a Field without copying.
// The slice length must equal the product of the shape extents.
func FromSlice(data []float64, shape ...int) (*Field, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: have %d elements, shape %v needs %d", ErrSize, len(data), shape, n)
	}
	f := &Field{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	f.stride = strides(f.shape)
	return f, nil
}

func checkShape(shape []int) (int, error) {
	if len(shape) == 0 || len(shape) > MaxDims {
		return 0, fmt.Errorf("%w: %v", ErrShape, shape)
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			return 0, fmt.Errorf("%w: extent %d in %v", ErrShape, s, shape)
		}
		if n > math.MaxInt/s {
			return 0, fmt.Errorf("%w: %v overflows", ErrShape, shape)
		}
		n *= s
	}
	return n, nil
}

func strides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// Dims returns the number of dimensions.
func (f *Field) Dims() int { return len(f.shape) }

// Shape returns a copy of the field's shape.
func (f *Field) Shape() []int { return append([]int(nil), f.shape...) }

// Extent returns the size of dimension d.
func (f *Field) Extent(d int) int { return f.shape[d] }

// Stride returns the row-major stride (in elements) of dimension d.
func (f *Field) Stride(d int) int { return f.stride[d] }

// Len returns the total number of elements.
func (f *Field) Len() int { return len(f.data) }

// Data returns the backing slice (not a copy). Mutating it mutates the field.
func (f *Field) Data() []float64 { return f.data }

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := &Field{
		shape:  append([]int(nil), f.shape...),
		stride: append([]int(nil), f.stride...),
		data:   append([]float64(nil), f.data...),
	}
	return g
}

// SameShape reports whether f and g have identical shapes.
func (f *Field) SameShape(g *Field) bool {
	if len(f.shape) != len(g.shape) {
		return false
	}
	for i := range f.shape {
		if f.shape[i] != g.shape[i] {
			return false
		}
	}
	return true
}

// Offset converts a multi-dimensional index to a flat offset.
// It panics if the number of indexes differs from the number of dimensions
// or any index is out of range, matching built-in slice behaviour.
func (f *Field) Offset(idx ...int) int {
	if len(idx) != len(f.shape) {
		panic(fmt.Sprintf("grid: %d indexes for %d-D field", len(idx), len(f.shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= f.shape[d] {
			panic(fmt.Sprintf("grid: index %d out of range [0,%d) in dim %d", i, f.shape[d], d))
		}
		off += i * f.stride[d]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (f *Field) At(idx ...int) float64 { return f.data[f.Offset(idx...)] }

// Set assigns the element at the given multi-dimensional index.
func (f *Field) Set(v float64, idx ...int) { f.data[f.Offset(idx...)] = v }

// Fill sets every element to v.
func (f *Field) Fill(v float64) {
	for i := range f.data {
		f.data[i] = v
	}
}

// Apply replaces every element x with fn(x).
func (f *Field) Apply(fn func(float64) float64) {
	for i, v := range f.data {
		f.data[i] = fn(v)
	}
}

// MinMax returns the minimum and maximum element values. NaNs are ignored;
// if every element is NaN both results are NaN.
func (f *Field) MinMax() (min, max float64) {
	min, max = math.NaN(), math.NaN()
	for _, v := range f.data {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(min) || v < min {
			min = v
		}
		if math.IsNaN(max) || v > max {
			max = v
		}
	}
	return min, max
}

// Sum returns the sum of all elements using Neumaier compensated summation,
// which keeps conservation checks in the application substrates meaningful
// even when individual addends dwarf the running sum.
func (f *Field) Sum() float64 {
	var sum, c float64
	for _, v := range f.data {
		t := sum + v
		if math.Abs(sum) >= math.Abs(v) {
			c += (sum - t) + v
		} else {
			c += (v - t) + sum
		}
		sum = t
	}
	return sum + c
}

// Equal reports whether f and g have the same shape and bit-identical data
// (NaNs compare equal to NaNs of any payload).
func (f *Field) Equal(g *Field) bool {
	if !f.SameShape(g) {
		return false
	}
	for i, v := range f.data {
		w := g.data[i]
		if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact summary.
func (f *Field) String() string {
	min, max := f.MinMax()
	return fmt.Sprintf("Field%v[%d elems, min=%g max=%g]", f.shape, len(f.data), min, max)
}

// Bytes returns the number of bytes the raw (uncompressed) field data
// occupies: 8 bytes per element.
func (f *Field) Bytes() int { return 8 * len(f.data) }

// Lane describes one 1-D line through a field along a given axis: the flat
// offset of its first element and the stride between consecutive elements.
// The wavelet transform walks fields lane-by-lane.
type Lane struct {
	Start  int // flat offset of element 0
	Stride int // distance between consecutive elements
	Len    int // number of elements
}

// Lanes returns every 1-D lane along the given axis, in deterministic order.
// A D-dimensional field with N total elements has N/extent(axis) lanes.
func (f *Field) Lanes(axis int) []Lane {
	if axis < 0 || axis >= len(f.shape) {
		panic(fmt.Sprintf("grid: axis %d out of range for %d-D field", axis, len(f.shape)))
	}
	count := len(f.data) / f.shape[axis]
	lanes := make([]Lane, 0, count)
	// Iterate over all index tuples with the chosen axis fixed at 0.
	idx := make([]int, len(f.shape))
	for {
		off := 0
		for d, i := range idx {
			off += i * f.stride[d]
		}
		lanes = append(lanes, Lane{Start: off, Stride: f.stride[axis], Len: f.shape[axis]})
		// Advance idx, skipping the transform axis.
		d := len(f.shape) - 1
		for d >= 0 {
			if d == axis {
				d--
				continue
			}
			idx[d]++
			if idx[d] < f.shape[d] {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return lanes
}

// Gather copies the lane's elements out of data into dst, which must have
// length lane.Len.
func (l Lane) Gather(data, dst []float64) {
	for i := 0; i < l.Len; i++ {
		dst[i] = data[l.Start+i*l.Stride]
	}
}

// Scatter copies src (length lane.Len) back into data along the lane.
func (l Lane) Scatter(data, src []float64) {
	for i := 0; i < l.Len; i++ {
		data[l.Start+i*l.Stride] = src[i]
	}
}

// --- Serialization -----------------------------------------------------
//
// Layout (little-endian):
//   uint32 magic "GRDF"
//   uint16 version (1)
//   uint16 ndims
//   int64  extent × ndims
//   float64 data × prod(extents)

const (
	fieldMagic   = 0x46445247 // "GRDF"
	fieldVersion = 1
)

// WriteTo serializes the field. It implements io.WriterTo.
func (f *Field) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 8+8*len(f.shape))
	binary.LittleEndian.PutUint32(hdr[0:], fieldMagic)
	binary.LittleEndian.PutUint16(hdr[4:], fieldVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(f.shape)))
	for d, s := range f.shape {
		binary.LittleEndian.PutUint64(hdr[8+8*d:], uint64(s))
	}
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 8*4096)
	for i := 0; i < len(f.data); {
		m := len(f.data) - i
		if m > 4096 {
			m = 4096
		}
		for j := 0; j < m; j++ {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(f.data[i+j]))
		}
		k, err = w.Write(buf[:8*m])
		n += int64(k)
		if err != nil {
			return n, err
		}
		i += m
	}
	return n, nil
}

// ReadField deserializes a field written by WriteTo.
func ReadField(r io.Reader) (*Field, error) {
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if binary.LittleEndian.Uint32(fixed[0:]) != fieldMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(fixed[4:]); v != fieldVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	nd := int(binary.LittleEndian.Uint16(fixed[6:]))
	if nd == 0 || nd > MaxDims {
		return nil, fmt.Errorf("%w: ndims %d", ErrFormat, nd)
	}
	shape := make([]int, nd)
	ext := make([]byte, 8*nd)
	if _, err := io.ReadFull(r, ext); err != nil {
		return nil, fmt.Errorf("%w: extents: %v", ErrFormat, err)
	}
	for d := range shape {
		e := binary.LittleEndian.Uint64(ext[8*d:])
		if e == 0 || e > math.MaxInt32 {
			return nil, fmt.Errorf("%w: extent %d", ErrFormat, e)
		}
		shape[d] = int(e)
	}
	f, err := New(shape...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	buf := make([]byte, 8*4096)
	for i := 0; i < len(f.data); {
		m := len(f.data) - i
		if m > 4096 {
			m = 4096
		}
		if _, err := io.ReadFull(r, buf[:8*m]); err != nil {
			return nil, fmt.Errorf("%w: data: %v", ErrFormat, err)
		}
		for j := 0; j < m; j++ {
			f.data[i+j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		i += m
	}
	return f, nil
}
