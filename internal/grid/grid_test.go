package grid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	cases := []struct {
		shape []int
		ok    bool
	}{
		{[]int{4}, true},
		{[]int{3, 5}, true},
		{[]int{2, 3, 4}, true},
		{[]int{1}, true},
		{[]int{1, 1, 1, 1, 1, 1, 1, 1}, true},
		{[]int{}, false},
		{[]int{0}, false},
		{[]int{-1, 4}, false},
		{[]int{1, 1, 1, 1, 1, 1, 1, 1, 1}, false},
	}
	for _, c := range cases {
		f, err := New(c.shape...)
		if c.ok && err != nil {
			t.Errorf("New(%v): unexpected error %v", c.shape, err)
		}
		if !c.ok && err == nil {
			t.Errorf("New(%v): expected error, got %v", c.shape, f)
		}
	}
}

func TestNewZeroFilled(t *testing.T) {
	f := MustNew(3, 4)
	if f.Len() != 12 {
		t.Fatalf("Len = %d, want 12", f.Len())
	}
	for i, v := range f.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	f, err := FromSlice(d, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", f.At(1, 2))
	}
	// No copy: mutating the slice mutates the field.
	d[5] = 99
	if f.At(1, 2) != 99 {
		t.Errorf("FromSlice copied; At(1,2) = %g, want 99", f.At(1, 2))
	}
	if _, err := FromSlice(d, 7); err == nil {
		t.Error("FromSlice with wrong size: expected error")
	}
}

func TestOffsetRowMajor(t *testing.T) {
	f := MustNew(2, 3, 4)
	// Row-major: offset = i*12 + j*4 + k.
	want := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if got := f.Offset(i, j, k); got != want {
					t.Fatalf("Offset(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
				want++
			}
		}
	}
}

func TestOffsetPanics(t *testing.T) {
	f := MustNew(2, 3)
	for _, idx := range [][]int{{1}, {1, 2, 3}, {2, 0}, {0, 3}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) did not panic", idx)
				}
			}()
			f.Offset(idx...)
		}()
	}
}

func TestSetAt(t *testing.T) {
	f := MustNew(4, 5)
	f.Set(3.25, 2, 3)
	if got := f.At(2, 3); got != 3.25 {
		t.Errorf("At = %g, want 3.25", got)
	}
	if got := f.Data()[2*5+3]; got != 3.25 {
		t.Errorf("flat = %g, want 3.25", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustNew(3)
	f.Set(1, 0)
	g := f.Clone()
	g.Set(2, 0)
	if f.At(0) != 1 {
		t.Error("Clone shares backing storage")
	}
	if !f.SameShape(g) {
		t.Error("Clone changed shape")
	}
}

func TestMinMax(t *testing.T) {
	f, _ := FromSlice([]float64{3, -1, math.NaN(), 7, 2}, 5)
	min, max := f.MinMax()
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
	g, _ := FromSlice([]float64{math.NaN(), math.NaN()}, 2)
	min, max = g.MinMax()
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Errorf("all-NaN MinMax = (%g,%g), want NaNs", min, max)
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e16 + 1 + -1e16 naive summation loses one of the 1s.
	f, _ := FromSlice([]float64{1, 1e16, 1, -1e16}, 4)
	if got := f.Sum(); got != 2 {
		t.Errorf("Sum = %g, want 2 (compensated)", got)
	}
}

func TestEqual(t *testing.T) {
	a, _ := FromSlice([]float64{1, math.NaN()}, 2)
	b, _ := FromSlice([]float64{1, math.NaN()}, 2)
	c, _ := FromSlice([]float64{1, 2}, 2)
	d, _ := FromSlice([]float64{1, math.NaN()}, 1, 2)
	if !a.Equal(b) {
		t.Error("NaN-equal fields reported unequal")
	}
	if a.Equal(c) {
		t.Error("different fields reported equal")
	}
	if a.Equal(d) {
		t.Error("different shapes reported equal")
	}
}

func TestFillApply(t *testing.T) {
	f := MustNew(2, 2)
	f.Fill(2)
	f.Apply(func(x float64) float64 { return x * x })
	for _, v := range f.Data() {
		if v != 4 {
			t.Fatalf("got %g, want 4", v)
		}
	}
}

func TestLanes1D(t *testing.T) {
	f := MustNew(6)
	lanes := f.Lanes(0)
	if len(lanes) != 1 {
		t.Fatalf("1D field has %d lanes, want 1", len(lanes))
	}
	l := lanes[0]
	if l.Start != 0 || l.Stride != 1 || l.Len != 6 {
		t.Errorf("lane = %+v, want {0,1,6}", l)
	}
}

func TestLanes2D(t *testing.T) {
	f := MustNew(3, 4) // 3 rows of 4
	rows := f.Lanes(1) // along x: 3 lanes of length 4, stride 1
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, l := range rows {
		if l.Start != i*4 || l.Stride != 1 || l.Len != 4 {
			t.Errorf("row %d = %+v", i, l)
		}
	}
	cols := f.Lanes(0) // along y: 4 lanes of length 3, stride 4
	if len(cols) != 4 {
		t.Fatalf("cols = %d, want 4", len(cols))
	}
	for i, l := range cols {
		if l.Start != i || l.Stride != 4 || l.Len != 3 {
			t.Errorf("col %d = %+v", i, l)
		}
	}
}

func TestLanes3DCoverEveryElementOnce(t *testing.T) {
	f := MustNew(3, 4, 5)
	for axis := 0; axis < 3; axis++ {
		seen := make([]int, f.Len())
		for _, l := range f.Lanes(axis) {
			for i := 0; i < l.Len; i++ {
				seen[l.Start+i*l.Stride]++
			}
		}
		for off, c := range seen {
			if c != 1 {
				t.Fatalf("axis %d: offset %d visited %d times", axis, off, c)
			}
		}
	}
}

func TestLaneGatherScatterRoundTrip(t *testing.T) {
	f := MustNew(4, 6)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data() {
		f.Data()[i] = rng.NormFloat64()
	}
	orig := f.Clone()
	buf := make([]float64, 4)
	for _, l := range f.Lanes(0) {
		l.Gather(f.Data(), buf)
		l.Scatter(f.Data(), buf)
	}
	if !f.Equal(orig) {
		t.Error("gather/scatter round trip modified data")
	}
}

func TestLanesPanicsOnBadAxis(t *testing.T) {
	f := MustNew(2, 2)
	for _, axis := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lanes(%d) did not panic", axis)
				}
			}()
			f.Lanes(axis)
		}()
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	shapes := [][]int{{1}, {7}, {4, 9}, {3, 5, 7}, {2, 2, 2, 2}}
	rng := rand.New(rand.NewSource(42))
	for _, shape := range shapes {
		f := MustNew(shape...)
		for i := range f.Data() {
			f.Data()[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
		}
		f.Data()[0] = math.NaN()
		if f.Len() > 1 {
			f.Data()[1] = math.Inf(-1)
		}
		var buf bytes.Buffer
		n, err := f.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo(%v): %v", shape, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
		}
		g, err := ReadField(&buf)
		if err != nil {
			t.Fatalf("ReadField(%v): %v", shape, err)
		}
		if !f.Equal(g) {
			t.Errorf("round trip of %v changed data", shape)
		}
	}
}

func TestReadFieldErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadField(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header: expected error")
	}
	// Bad magic.
	bad := make([]byte, 16)
	if _, err := ReadField(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic: expected error")
	}
	// Truncated data.
	f := MustNew(10)
	var buf bytes.Buffer
	_, _ = f.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadField(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated data: expected error")
	}
}

func TestBytes(t *testing.T) {
	if got := MustNew(10, 10).Bytes(); got != 800 {
		t.Errorf("Bytes = %d, want 800", got)
	}
}

// Property: serialization round trip is the identity for arbitrary 1D data.
func TestQuickSerializeRoundTrip(t *testing.T) {
	fn := func(data []float64) bool {
		if len(data) == 0 {
			return true
		}
		f, err := FromSlice(data, len(data))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			return false
		}
		g, err := ReadField(&buf)
		if err != nil {
			return false
		}
		return f.Equal(g)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for any small 2D shape, every element is covered exactly once by
// the lanes of each axis.
func TestQuickLanesPartition(t *testing.T) {
	fn := func(a, b uint8) bool {
		h, w := int(a%16)+1, int(b%16)+1
		f := MustNew(h, w)
		for axis := 0; axis < 2; axis++ {
			seen := make([]bool, f.Len())
			for _, l := range f.Lanes(axis) {
				for i := 0; i < l.Len; i++ {
					off := l.Start + i*l.Stride
					if seen[off] {
						return false
					}
					seen[off] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
