// Package iomodel reproduces the analytic checkpoint-time estimator of
// Sasaki et al. (IPDPS 2015, §IV-D, Fig. 9).
//
// The paper projects overall checkpoint time at scale by combining (a) the
// measured per-process compression-phase breakdown — constant in the
// process count P, because per-process checkpoints compress in an
// embarrassingly parallel fashion — with (b) an analytic I/O term for a
// shared parallel filesystem of fixed aggregate bandwidth:
//
//	T_io(P)      = perProcessBytes × rate × P / bandwidth
//	T_with(P)    = T_compression + T_io(P)            (rate = cr)
//	T_without(P) = perProcessBytes × P / bandwidth    (rate = 1)
//
// The paper instantiates this with 1.5 MB/process, 20 GB/s aggregate
// bandwidth, and a measured compression rate; this package keeps all three
// as parameters so experiments can sweep them.
package iomodel

import (
	"errors"
	"fmt"
	"time"

	"lossyckpt/internal/core"
)

// ErrModel indicates invalid model parameters.
var ErrModel = errors.New("iomodel: invalid parameters")

// FileSystem models a shared parallel filesystem by its aggregate
// bandwidth; writes from all processes share it.
type FileSystem struct {
	// BandwidthBytesPerSec is the aggregate write bandwidth.
	BandwidthBytesPerSec float64
}

// PaperFS is the paper's assumed parallel filesystem: 20 GB/s aggregate.
var PaperFS = FileSystem{BandwidthBytesPerSec: 20e9}

// WriteTime returns the modeled time for all processes together to write
// totalBytes.
func (fs FileSystem) WriteTime(totalBytes int64) time.Duration {
	if fs.BandwidthBytesPerSec <= 0 || totalBytes < 0 {
		return 0
	}
	sec := float64(totalBytes) / fs.BandwidthBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// Estimator projects overall checkpoint time across process counts.
type Estimator struct {
	// PerProcessBytes is the uncompressed checkpoint size per process
	// (the paper uses 1.5 MB, one NICAM array).
	PerProcessBytes int64
	// CompressionRate is the paper's cr as a fraction (e.g. 0.19).
	CompressionRate float64
	// FS is the shared filesystem model.
	FS FileSystem
	// Compression is the measured per-process compression breakdown.
	Compression core.Timings
}

// Validate checks the estimator's parameters.
func (e Estimator) Validate() error {
	if e.PerProcessBytes <= 0 {
		return fmt.Errorf("%w: per-process bytes %d", ErrModel, e.PerProcessBytes)
	}
	if e.CompressionRate <= 0 || e.CompressionRate > 1 {
		return fmt.Errorf("%w: compression rate %g (want (0,1])", ErrModel, e.CompressionRate)
	}
	if e.FS.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("%w: bandwidth %g", ErrModel, e.FS.BandwidthBytesPerSec)
	}
	return nil
}

// Breakdown is one point of the Fig. 9 plot: the stacked cost components at
// process count P.
type Breakdown struct {
	P int
	// Compression phases (constant in P).
	Wavelet   time.Duration
	Quantize  time.Duration // quantization + encoding, as the paper stacks them
	TempWrite time.Duration
	Gzip      time.Duration
	Other     time.Duration
	// IO is the modeled parallel-filesystem write of the compressed data.
	IO time.Duration
	// TotalWith is the overall checkpoint time with compression.
	TotalWith time.Duration
	// TotalWithout is the overall checkpoint time without compression
	// (raw data straight to the filesystem).
	TotalWithout time.Duration
}

// At evaluates the model at process count P.
func (e Estimator) At(p int) (Breakdown, error) {
	if err := e.Validate(); err != nil {
		return Breakdown{}, err
	}
	if p < 1 {
		return Breakdown{}, fmt.Errorf("%w: P=%d", ErrModel, p)
	}
	t := e.Compression
	b := Breakdown{
		P:         p,
		Wavelet:   t.Wavelet,
		Quantize:  t.Quantize + t.Encode + t.Format,
		TempWrite: t.TempWrite,
		Gzip:      t.Gzip,
		Other:     t.Other(),
	}
	compressedTotal := int64(float64(e.PerProcessBytes) * e.CompressionRate * float64(p))
	rawTotal := e.PerProcessBytes * int64(p)
	b.IO = e.FS.WriteTime(compressedTotal)
	b.TotalWith = b.Wavelet + b.Quantize + b.TempWrite + b.Gzip + b.Other + b.IO
	b.TotalWithout = e.FS.WriteTime(rawTotal)
	return b, nil
}

// Sweep evaluates the model at every process count in ps (the paper plots
// 256, 512, …, 2048).
func (e Estimator) Sweep(ps []int) ([]Breakdown, error) {
	out := make([]Breakdown, 0, len(ps))
	for _, p := range ps {
		b, err := e.At(p)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Crossover returns the smallest P ≤ maxP at which compression wins
// (TotalWith < TotalWithout), or 0 if it never does within maxP. The paper
// finds the crosspoint "around 768 processes" for its measurements.
func (e Estimator) Crossover(maxP int) (int, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	// TotalWith(P) = C + a·cr·P, TotalWithout(P) = a·P with
	// a = perProcBytes/bandwidth: solve C < a·P·(1−cr) exactly rather than
	// scanning.
	if e.CompressionRate >= 1 {
		return 0, nil
	}
	b, err := e.At(1)
	if err != nil {
		return 0, err
	}
	c := b.TotalWith - b.IO // constant compression cost
	perProcIO := float64(e.PerProcessBytes) / e.FS.BandwidthBytesPerSec * float64(time.Second)
	for p := 1; p <= maxP; p++ {
		saving := perProcIO * float64(p) * (1 - e.CompressionRate)
		if float64(c) < saving {
			return p, nil
		}
	}
	return 0, nil
}

// AsymptoticSavingPct returns the paper's limit saving as P → ∞:
// (1 − cr) × 100 (the paper computes (1−0.19)×100 = 81%).
func (e Estimator) AsymptoticSavingPct() float64 {
	return (1 - e.CompressionRate) * 100
}

// SavingPctAt returns the modeled checkpoint-time reduction at P, in
// percent (the paper reports 55% at 2048 processes).
func (e Estimator) SavingPctAt(p int) (float64, error) {
	b, err := e.At(p)
	if err != nil {
		return 0, err
	}
	if b.TotalWithout <= 0 {
		return 0, fmt.Errorf("%w: degenerate baseline at P=%d", ErrModel, p)
	}
	return 100 * (1 - float64(b.TotalWith)/float64(b.TotalWithout)), nil
}
