package iomodel

import (
	"math"
	"testing"
	"time"

	"lossyckpt/internal/core"
)

// paperEstimator mimics the paper's setup: 1.5 MB/process, 20 GB/s, cr 19%,
// and a compression cost of a few ms/process.
func paperEstimator() Estimator {
	return Estimator{
		PerProcessBytes: 1_500_000,
		CompressionRate: 0.19,
		FS:              PaperFS,
		Compression: core.Timings{
			Wavelet:   2 * time.Millisecond,
			Quantize:  3 * time.Millisecond,
			Encode:    1 * time.Millisecond,
			Format:    500 * time.Microsecond,
			TempWrite: 10 * time.Millisecond,
			Gzip:      25 * time.Millisecond,
			Total:     45 * time.Millisecond,
		},
	}
}

func TestFileSystemWriteTime(t *testing.T) {
	fs := FileSystem{BandwidthBytesPerSec: 1e9}
	if got := fs.WriteTime(1e9); got != time.Second {
		t.Errorf("WriteTime(1GB @ 1GB/s) = %v, want 1s", got)
	}
	if got := fs.WriteTime(0); got != 0 {
		t.Errorf("WriteTime(0) = %v", got)
	}
	if got := (FileSystem{}).WriteTime(100); got != 0 {
		t.Errorf("zero-bandwidth WriteTime = %v", got)
	}
}

func TestAtComponents(t *testing.T) {
	e := paperEstimator()
	b, err := e.At(2048)
	if err != nil {
		t.Fatal(err)
	}
	if b.P != 2048 {
		t.Errorf("P = %d", b.P)
	}
	// IO must equal perProc × cr × P / BW.
	wantIO := time.Duration(1_500_000 * 0.19 * 2048 / 20e9 * float64(time.Second))
	if d := b.IO - wantIO; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("IO = %v, want ≈%v", b.IO, wantIO)
	}
	// TotalWithout is raw I/O only.
	wantRaw := time.Duration(1_500_000 * 2048 / 20e9 * float64(time.Second))
	if d := b.TotalWithout - wantRaw; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("TotalWithout = %v, want ≈%v", b.TotalWithout, wantRaw)
	}
	// Stacked components sum to TotalWith.
	sum := b.Wavelet + b.Quantize + b.TempWrite + b.Gzip + b.Other + b.IO
	if sum != b.TotalWith {
		t.Errorf("components sum %v != TotalWith %v", sum, b.TotalWith)
	}
}

func TestCompressionCostConstantInP(t *testing.T) {
	e := paperEstimator()
	b1, _ := e.At(256)
	b2, _ := e.At(2048)
	if b1.Wavelet != b2.Wavelet || b1.Gzip != b2.Gzip || b1.TempWrite != b2.TempWrite {
		t.Error("compression phases varied with P; they must be constant (weak scaling)")
	}
	if b2.IO <= b1.IO {
		t.Error("I/O time did not grow with P")
	}
}

func TestCrossoverExistsAndConsistent(t *testing.T) {
	e := paperEstimator()
	p, err := e.Crossover(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("no crossover found")
	}
	// Verify by direct evaluation on both sides.
	before, _ := e.At(p - 1)
	after, _ := e.At(p)
	if p > 1 && before.TotalWith < before.TotalWithout {
		t.Errorf("P=%d already wins but crossover says %d", p-1, p)
	}
	if after.TotalWith >= after.TotalWithout {
		t.Errorf("P=%d does not win but crossover says it does", p)
	}
}

func TestCrossoverNeverWithinBound(t *testing.T) {
	e := paperEstimator()
	e.Compression.Gzip = time.Hour // absurd compression cost
	p, err := e.Crossover(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("crossover = %d despite 1h compression cost", p)
	}
}

func TestAsymptoticSaving(t *testing.T) {
	e := paperEstimator()
	// The paper: (1 − 0.19) × 100 = 81%.
	if got := e.AsymptoticSavingPct(); math.Abs(got-81) > 1e-9 {
		t.Errorf("asymptotic saving = %g%%, want 81%%", got)
	}
}

func TestSavingGrowsTowardAsymptote(t *testing.T) {
	e := paperEstimator()
	s256, err := e.SavingPctAt(256)
	if err != nil {
		t.Fatal(err)
	}
	s2048, _ := e.SavingPctAt(2048)
	sHuge, _ := e.SavingPctAt(1 << 26)
	if !(s256 < s2048 && s2048 < sHuge) {
		t.Errorf("savings not monotone: %g %g %g", s256, s2048, sHuge)
	}
	if math.Abs(sHuge-e.AsymptoticSavingPct()) > 1 {
		t.Errorf("saving at huge P %g%% far from asymptote %g%%", sHuge, e.AsymptoticSavingPct())
	}
}

func TestSweep(t *testing.T) {
	e := paperEstimator()
	ps := []int{256, 512, 768, 1024, 1280, 1536, 1792, 2048}
	rows, err := e.Sweep(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ps) {
		t.Fatalf("sweep returned %d rows", len(rows))
	}
	for i, b := range rows {
		if b.P != ps[i] {
			t.Errorf("row %d: P=%d", i, b.P)
		}
	}
	// The with-compression slope must be flatter than without (the paper's
	// central scaling observation).
	dWith := rows[len(rows)-1].TotalWith - rows[0].TotalWith
	dWithout := rows[len(rows)-1].TotalWithout - rows[0].TotalWithout
	if dWith >= dWithout {
		t.Errorf("with-compression slope %v not flatter than without %v", dWith, dWithout)
	}
}

func TestValidation(t *testing.T) {
	bad := []Estimator{
		{PerProcessBytes: 0, CompressionRate: 0.2, FS: PaperFS},
		{PerProcessBytes: 100, CompressionRate: 0, FS: PaperFS},
		{PerProcessBytes: 100, CompressionRate: 1.5, FS: PaperFS},
		{PerProcessBytes: 100, CompressionRate: 0.2, FS: FileSystem{}},
	}
	for i, e := range bad {
		if _, err := e.At(10); err == nil {
			t.Errorf("bad estimator %d accepted", i)
		}
	}
	e := paperEstimator()
	if _, err := e.At(0); err == nil {
		t.Error("P=0 accepted")
	}
}
