package faultsim

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/climate"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/store"
)

func climateApp(t *testing.T) (App, App) {
	t.Helper()
	cfg := climate.DefaultConfig()
	cfg.Nx, cfg.Nz = 64, 16
	mk := func() App {
		m, err := climate.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return AppFuncs{
			StepFn:         m.Step,
			StepCountFn:    m.StepCount,
			SetStepCountFn: m.SetStepCount,
			FieldsFn: func() []NamedField {
				var out []NamedField
				for _, nf := range m.Fields() {
					out = append(out, NamedField{Name: nf.Name, Field: nf.Field})
				}
				return out
			},
		}
	}
	return mk(), mk()
}

func baseConfig(codec ckpt.Codec) Config {
	return Config{
		TotalSteps:      120,
		CheckpointEvery: 20,
		Codec:           codec,
		MTBF:            400 * time.Millisecond, // several failures expected
		StepCost:        10 * time.Millisecond,
		CheckpointCost:  5 * time.Millisecond,
		RestartCost:     8 * time.Millisecond,
		Seed:            7,
	}
}

func TestValidation(t *testing.T) {
	app, ref := climateApp(t)
	bad := []Config{
		{},
		func() Config { c := baseConfig(ckpt.None{}); c.TotalSteps = 0; return c }(),
		func() Config { c := baseConfig(ckpt.None{}); c.CheckpointEvery = 0; return c }(),
		func() Config { c := baseConfig(ckpt.None{}); c.Codec = nil; return c }(),
		func() Config { c := baseConfig(ckpt.None{}); c.MTBF = 0; return c }(),
		func() Config { c := baseConfig(ckpt.None{}); c.StepCost = 0; return c }(),
	}
	for i, c := range bad {
		if _, err := Run(app, ref, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLosslessRunMatchesReferenceExactly(t *testing.T) {
	app, ref := climateApp(t)
	res, err := Run(app, ref, baseConfig(ckpt.None{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected; MTBF too large for the test to be meaningful")
	}
	if res.FinalError.MaxPct != 0 {
		t.Errorf("lossless rollbacks changed the result: %v", res.FinalError)
	}
	if res.ReworkSteps == 0 {
		t.Error("failures without rework")
	}
	if res.VirtualTime <= res.IdealTime {
		t.Error("virtual time not above ideal despite failures and checkpoints")
	}
	if res.OverheadPct() <= 0 {
		t.Error("non-positive overhead")
	}
}

func TestLossyRunSmallBoundedError(t *testing.T) {
	app, ref := climateApp(t)
	res, err := Run(app, ref, baseConfig(ckpt.NewLossy()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	if res.FinalError.AvgPct == 0 {
		t.Error("lossy rollbacks introduced no error at all")
	}
	if res.FinalError.AvgPct > 1 {
		t.Errorf("final error %.4f%% too large", res.FinalError.AvgPct)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *Result {
		app, ref := climateApp(t)
		res, err := Run(app, ref, baseConfig(ckpt.NewLossy()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Failures != b.Failures || a.ReworkSteps != b.ReworkSteps || a.VirtualTime != b.VirtualTime {
		t.Errorf("seeded runs differ: %+v vs %+v", a, b)
	}
	if a.FinalError != b.FinalError {
		t.Errorf("seeded final errors differ: %v vs %v", a.FinalError, b.FinalError)
	}
}

func TestNoFailuresWithHugeMTBF(t *testing.T) {
	app, ref := climateApp(t)
	cfg := baseConfig(ckpt.NewLossy())
	cfg.MTBF = 1000 * time.Hour
	res, err := Run(app, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.ReworkSteps != 0 {
		t.Errorf("failures under huge MTBF: %+v", res)
	}
	// No rollback ever happened, so even the lossy run matches exactly:
	// checkpoints were written but never read back.
	if res.FinalError.MaxPct != 0 {
		t.Errorf("error without any restore: %v", res.FinalError)
	}
	wantCkpts := 1 + (cfg.TotalSteps-1)/cfg.CheckpointEvery
	if res.Checkpoints != wantCkpts {
		t.Errorf("checkpoints = %d, want %d", res.Checkpoints, wantCkpts)
	}
}

func TestMoreFailuresMoreRework(t *testing.T) {
	overhead := func(mtbf time.Duration) float64 {
		app, ref := climateApp(t)
		cfg := baseConfig(ckpt.NewLossy())
		cfg.MTBF = mtbf
		res, err := Run(app, ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.OverheadPct()
	}
	frequent := overhead(300 * time.Millisecond)
	rare := overhead(30 * time.Second)
	if frequent <= rare {
		t.Errorf("overhead with frequent failures (%.1f%%) not above rare (%.1f%%)", frequent, rare)
	}
}

func TestPathologicalMTBFAborts(t *testing.T) {
	app, ref := climateApp(t)
	cfg := baseConfig(ckpt.None{})
	cfg.MTBF = time.Nanosecond // failures faster than any step completes
	cfg.MaxFailures = 50
	if _, err := Run(app, ref, cfg); err == nil {
		t.Error("pathological MTBF did not abort")
	}
}

// TestRealIOStoreMatchesInMemory: routing rollbacks through the on-disk
// store must produce the same simulation outcome as the in-memory
// buffer — same failure process, same rework, bit-identical final state
// for a lossless codec.
func TestRealIOStoreMatchesInMemory(t *testing.T) {
	appMem, refMem := climateApp(t)
	resMem, err := Run(appMem, refMem, baseConfig(ckpt.None{}))
	if err != nil {
		t.Fatal(err)
	}

	appIO, refIO := climateApp(t)
	st, err := store.Open(t.TempDir(), store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ckpt.None{})
	cfg.Store = st
	resIO, err := Run(appIO, refIO, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if resIO.Failures != resMem.Failures || resIO.ReworkSteps != resMem.ReworkSteps ||
		resIO.Checkpoints != resMem.Checkpoints {
		t.Fatalf("real-I/O run diverged: mem %+v vs io %+v", resMem, resIO)
	}
	if resIO.FinalError.MaxPct != 0 {
		t.Errorf("lossless real-I/O rollbacks changed the result: %v", resIO.FinalError)
	}
	if resIO.StoreFallbacks != 0 || resIO.PartialRestores != 0 {
		t.Errorf("clean store should need no fallbacks: %+v", resIO)
	}
	// The store retains at most Keep generations.
	if n := len(st.Generations()); n == 0 || n > 3 {
		t.Errorf("store retains %d generations, want 1..3", n)
	}
}

// TestRealIOTransientFaultsRideThrough injects transient errors into
// the store's filesystem during the simulation: the retry layer must
// absorb them with no effect on the run.
func TestRealIOTransientFaultsRideThrough(t *testing.T) {
	app, ref := climateApp(t)
	ffs := store.NewFaultFS(store.OsFS{})
	st, err := store.Open(t.TempDir(), store.Options{
		Keep: 2, FS: ffs, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sprinkle transient failures over the first few hundred ops.
	for op := 5; op < 400; op += 13 {
		ffs.FailAt(op, store.Fault{Kind: store.ErrorOnce})
	}
	cfg := baseConfig(ckpt.None{})
	cfg.Store = st
	res, err := Run(app, ref, cfg)
	if err != nil {
		t.Fatalf("run with transient store faults: %v", err)
	}
	if res.FinalError.MaxPct != 0 {
		t.Errorf("transient faults corrupted the run: %v", res.FinalError)
	}
}

// TestRealIOFallbackOnCorruptLatest damages the newest generation on
// disk mid-run and lets the next rollback exercise the store's
// generation fallback inside the simulation.
func TestRealIOFallbackOnCorruptLatest(t *testing.T) {
	app, _ := climateApp(t)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	mgr := ckpt.NewManager(ckpt.None{}, 0)
	for _, nf := range app.Fields() {
		if err := mgr.Register(nf.Name, nf.Field); err != nil {
			t.Fatal(err)
		}
	}
	// Two generations; corrupt the newest on disk.
	if _, _, err := mgr.CheckpointTo(st, 0); err != nil {
		t.Fatal(err)
	}
	app.Step()
	if _, _, err := mgr.CheckpointTo(st, app.StepCount()); err != nil {
		t.Fatal(err)
	}
	latest, _ := st.Latest()
	path := filepath.Join(dir, fmt.Sprintf("gen-%08d.ckpt", latest.Seq))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen so no cached state hides the damage, and restore.
	st2, err := store.Open(dir, store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := mgr.RestoreLatest(st2)
	if err != nil {
		t.Fatalf("RestoreLatest with corrupt newest: %v", err)
	}
	if sr.Generation != latest.Seq-1 || sr.Step != 0 {
		t.Fatalf("restored %+v, want full fallback to generation %d", sr, latest.Seq-1)
	}
}

func TestGuardedRunWithScrubber(t *testing.T) {
	app, ref := climateApp(t)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ckpt.NewGuard(guard.Policy{MaxAbs: 1e-2, Verify: guard.VerifyDecode}))
	cfg.Store = st
	cfg.ScrubEvery = 2
	cfg.ScrubDecode = true
	res, err := Run(app, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	if res.ScrubRuns == 0 {
		t.Fatalf("ScrubEvery=2 over %d checkpoints ran no scrubs", res.Checkpoints)
	}
	// The store is healthy, so the scrubber must not quarantine anything.
	if res.QuarantinedGens != 0 {
		t.Fatalf("clean run quarantined %d generations", res.QuarantinedGens)
	}
	// Guarded rollbacks honor the bound: the final drift stays small
	// (loose sanity check; the guard property test is the precise one).
	if res.FinalError.MaxPct > 50 {
		t.Fatalf("guarded run drifted wildly: %+v", res.FinalError)
	}
}

func TestGuardLosslessFallbackCounted(t *testing.T) {
	app, ref := climateApp(t)
	// An unmeetably tight bound with a one-attempt budget forces every
	// entry of every checkpoint down to the gzip-only rung.
	pol := guard.Policy{MaxAbs: 1e-300, MaxAttempts: 1, Verify: guard.VerifyDecode}
	cfg := baseConfig(ckpt.NewGuard(pol))
	res, err := Run(app, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LosslessFallbacks == 0 {
		t.Fatal("unmeetable bound produced no lossless fallbacks")
	}
	// Lossless fallbacks mean rollbacks were bit-exact.
	if res.FinalError.MaxPct != 0 {
		t.Errorf("all-lossless run still drifted: %+v", res.FinalError)
	}
}

// TestReplicatedRunSurvivesReplicaLoss points the simulation at a 3-way
// replicated store and destroys a rotating replica's newest checkpoint
// copy with every injected failure. Rollbacks must be served by the
// surviving quorum (bit-exact for a lossless codec), periodic scrubs
// heal the losses, and the fleet converges to zero divergence.
func TestReplicatedRunSurvivesReplicaLoss(t *testing.T) {
	app, ref := climateApp(t)
	root := t.TempDir()
	rs, err := store.OpenReplicated(root, store.ReplicaDirs(root, 3), 2, store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ckpt.None{})
	cfg.Store = rs
	cfg.ReplicaLossEvery = 1 // every failure also loses one replica's copy
	cfg.ScrubEvery = 2
	res, err := Run(app, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs.Wait()
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	if res.ReplicaLosses == 0 {
		t.Fatal("no replica losses injected")
	}
	if res.FinalError.MaxPct != 0 {
		t.Errorf("lossless quorum rollbacks changed the result: %v", res.FinalError)
	}
	// A final scrub converges the fleet; every retained generation must
	// then be byte-identical on all three replicas.
	rep, err := rs.Scrub(store.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 {
		t.Fatalf("residual divergence %d after final scrub: %+v", rep.Divergent, rep)
	}
	for _, g := range rs.Generations() {
		var want []byte
		for i := 0; i < 3; i++ {
			data, err := os.ReadFile(filepath.Join(root, fmt.Sprintf("r%d", i), store.GenName(g.Seq)))
			if err != nil {
				t.Fatalf("replica %d gen %d: %v", i, g.Seq, err)
			}
			if want == nil {
				want = data
			} else if string(data) != string(want) {
				t.Fatalf("replica %d gen %d differs after scrub", i, g.Seq)
			}
		}
	}
}

// TestReplicaLossNeedsReplicatedStore rejects ReplicaLossEvery on a
// plain (or absent) store.
func TestReplicaLossNeedsReplicatedStore(t *testing.T) {
	app, ref := climateApp(t)
	cfg := baseConfig(ckpt.None{})
	cfg.ReplicaLossEvery = 1
	if _, err := Run(app, ref, cfg); err == nil {
		t.Fatal("ReplicaLossEvery without a replicated store accepted")
	}
	st, err := store.Open(t.TempDir(), store.Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if _, err := Run(app, ref, cfg); err == nil {
		t.Fatal("ReplicaLossEvery with a single-root store accepted")
	}
}
