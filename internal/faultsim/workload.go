// workload.go provides the sparse-update synthetic workload shared by
// experiment X11 (incremental-vs-lossy, harness.Incremental) and the
// dedup experiment (harness.Dedup): an application whose step touches
// only a configurable fraction of its footprint. The paper's §I argues
// incremental approaches are limited because real mesh codes update the
// whole footprint every step; this workload is the opposing regime —
// localized updates — where both incremental diffs and content-defined
// dedup are expected to win, giving the experiments a controlled axis
// (MutateFraction) to sweep.
package faultsim

import (
	"fmt"
	"math/rand"

	"lossyckpt/internal/grid"
)

// MutateSparse overwrites a contiguous region covering frac of f
// (clamped to [0,1]) with fresh Gaussian values. The region's position
// and content derive only from (seed, step), so a rolled-back
// application replaying the same steps reproduces bit-identical states
// — the determinism the failure simulator requires — and two processes
// (e.g. the harness and a daemon client) can generate the same
// generation series independently.
//
// The region is contiguous rather than scattered on purpose: localized
// updates model a moving front or active subdomain, and they are the
// regime where chunk-level dedup can actually skip work. A scattered
// 1% point-update dirties essentially every content-defined chunk and
// is indistinguishable from a full rewrite to a dedup store.
func MutateSparse(f *grid.Field, frac float64, seed int64, step int) {
	n := f.Len()
	if n == 0 || frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	count := int(frac * float64(n))
	if count < 1 {
		count = 1
	}
	rng := rand.New(rand.NewSource(seed ^ (int64(step)+1)*0x5851f42d4c957f2d))
	start := rng.Intn(n)
	d := f.Data()
	for k := 0; k < count; k++ {
		d[(start+k)%n] = rng.NormFloat64()
	}
}

// SparseConfig parameterizes the synthetic sparse-update application.
type SparseConfig struct {
	// Elems is the footprint size in float64 elements.
	Elems int
	// MutateFraction is the fraction of the footprint each step
	// overwrites (0 = steps only advance the counter; 1 = full rewrite).
	MutateFraction float64
	// Seed drives both the initial state and the per-step mutations.
	Seed int64
}

// SparseApp is a synthetic App whose Step overwrites MutateFraction of
// a single state array at a deterministic, step-dependent location. It
// exists to sweep checkpoint techniques across update density without
// the cost (or the dense-update behaviour) of the climate model.
type SparseApp struct {
	cfg   SparseConfig
	field *grid.Field
	steps int
}

// NewSparseApp builds the workload with a deterministic initial state.
func NewSparseApp(cfg SparseConfig) (*SparseApp, error) {
	if cfg.Elems < 1 {
		return nil, fmt.Errorf("%w: sparse workload needs >=1 element, got %d", ErrConfig, cfg.Elems)
	}
	if cfg.MutateFraction < 0 || cfg.MutateFraction > 1 {
		return nil, fmt.Errorf("%w: mutate fraction %v outside [0,1]", ErrConfig, cfg.MutateFraction)
	}
	f, err := grid.New(cfg.Elems)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := f.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return &SparseApp{cfg: cfg, field: f}, nil
}

// Step advances one step, mutating MutateFraction of the array.
func (a *SparseApp) Step() {
	a.steps++
	MutateSparse(a.field, a.cfg.MutateFraction, a.cfg.Seed, a.steps)
}

// StepCount implements App.
func (a *SparseApp) StepCount() int { return a.steps }

// SetStepCount implements App. The caller must also have restored the
// field contents for the counter to be meaningful (the checkpoint
// manager does both).
func (a *SparseApp) SetStepCount(n int) { a.steps = n }

// Fields implements App.
func (a *SparseApp) Fields() []NamedField {
	return []NamedField{{Name: "state", Field: a.field}}
}

// Field returns the workload's single state array.
func (a *SparseApp) Field() *grid.Field { return a.field }
