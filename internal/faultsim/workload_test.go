package faultsim

import (
	"testing"
	"time"

	"lossyckpt/internal/ckpt"
)

// TestMutateSparseDeterministic: same (seed, step) → identical result;
// different steps move the region.
func TestMutateSparseDeterministic(t *testing.T) {
	a, err := NewSparseApp(SparseConfig{Elems: 4096, MutateFraction: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSparseApp(SparseConfig{Elems: 4096, MutateFraction: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Field().Equal(b.Field()) {
		t.Fatal("identical seeds produced different initial states")
	}
	for i := 0; i < 5; i++ {
		a.Step()
		b.Step()
	}
	if !a.Field().Equal(b.Field()) {
		t.Fatal("identical sparse workloads diverged")
	}

	// The mutated fraction is honoured: a 1% step changes ~1% of values.
	before := append([]float64(nil), a.Field().Data()...)
	a2, _ := NewSparseApp(SparseConfig{Elems: 4096, MutateFraction: 0.05, Seed: 7})
	for i := 0; i < 5; i++ {
		a2.Step()
	}
	MutateSparse(a.Field(), 0.01, 7, 6)
	changed := 0
	for i, v := range a.Field().Data() {
		if v != before[i] {
			changed++
		}
	}
	if changed == 0 || changed > 4096/100+1 {
		t.Fatalf("1%% mutation changed %d of 4096 values", changed)
	}
}

// TestSparseAppUnderFaultsim: the workload replays deterministically
// through rollback — a lossless run matches its failure-free reference
// bit-exactly, which only holds if Step(k) depends on nothing but
// (seed, k).
func TestSparseAppUnderFaultsim(t *testing.T) {
	mk := func() App {
		a, err := NewSparseApp(SparseConfig{Elems: 2048, MutateFraction: 0.1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	res, err := Run(mk(), mk(), Config{
		TotalSteps:      40,
		CheckpointEvery: 5,
		Codec:           ckpt.NewGzip(),
		MTBF:            120 * time.Millisecond,
		StepCost:        10 * time.Millisecond,
		CheckpointCost:  time.Millisecond,
		RestartCost:     5 * time.Millisecond,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("expected at least one injected failure")
	}
	if res.FinalError.MaxPct != 0 {
		t.Fatalf("lossless sparse run diverged from reference: max |err| = %g", res.FinalError.MaxPct)
	}
}

// TestSparseConfigValidation rejects nonsense parameters.
func TestSparseConfigValidation(t *testing.T) {
	if _, err := NewSparseApp(SparseConfig{Elems: 0}); err == nil {
		t.Fatal("zero elements accepted")
	}
	if _, err := NewSparseApp(SparseConfig{Elems: 8, MutateFraction: 1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}
