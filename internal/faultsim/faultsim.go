// Package faultsim injects failures into a checkpointed application run —
// the methodology of Ni et al. (SC 2014), the lossy-checkpointing
// feasibility study the reproduced paper builds on (its reference [31],
// §V): run an application under a failure process, roll back to the last
// (lossy) checkpoint on every failure, and measure both the time cost and
// the damage the accumulated lossy restarts do to the solution.
//
// The simulation advances an application in virtual time: each model step
// costs StepCost, each checkpoint CheckpointCost, each restart
// RestartCost. Failures arrive by a seeded exponential process with the
// configured MTBF (in virtual time). On failure, the run rolls back to
// the last checkpoint — whose state passed through the configured codec,
// so every rollback of a lossy run re-injects compression error — and
// replays the lost steps. At the end the run's state is compared with a
// failure-free reference.
//
// Applications plug in via the App interface; Adapt wraps the climate
// model's step/fields surface.
package faultsim

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"lossyckpt/internal/ckpt"
	"lossyckpt/internal/grid"
	"lossyckpt/internal/guard"
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
	"lossyckpt/internal/stats"
	"lossyckpt/internal/store"
)

// Metric names recorded by a simulation run. Failures and rollbacks carry
// no labels; checkpoints and rollbacks also appear as ckpt-layer spans.
const (
	MetricFailures    = "lossyckpt_faultsim_failures_total"
	MetricRollbacks   = "lossyckpt_faultsim_rollbacks_total"
	MetricReworkSteps = "lossyckpt_faultsim_rework_steps_total"
	MetricVirtualSec  = "lossyckpt_faultsim_virtual_seconds"
	MetricOverheadPct = "lossyckpt_faultsim_overhead_pct"
)

// ErrConfig indicates invalid simulation parameters.
var ErrConfig = errors.New("faultsim: invalid configuration")

// App is the application surface the simulator drives. Implementations
// must step deterministically given their state and step counter.
type App interface {
	// Step advances the application one step.
	Step()
	// StepCount returns the number of completed steps.
	StepCount() int
	// SetStepCount overrides the step counter after a restore.
	SetStepCount(int)
	// Fields exposes the checkpointable state arrays by name, in a stable
	// order. The returned fields are live: mutating them mutates the app.
	Fields() []NamedField
}

// NamedField couples a state array with its variable name.
type NamedField struct {
	Name  string
	Field *grid.Field
}

// Config parameterizes a failure-injected run.
type Config struct {
	// TotalSteps is the amount of useful work to complete.
	TotalSteps int
	// CheckpointEvery is the checkpoint interval in steps.
	CheckpointEvery int
	// Codec compresses checkpoints.
	Codec ckpt.Codec
	// MTBF is the mean time between failures in virtual time.
	MTBF time.Duration
	// StepCost, CheckpointCost and RestartCost are the virtual-time costs
	// charged per step, per checkpoint, and per rollback.
	StepCost, CheckpointCost, RestartCost time.Duration
	// Seed drives the failure process.
	Seed int64
	// MaxFailures aborts pathological runs (0 = 10·expected).
	MaxFailures int
	// Store, when non-nil, switches the run to real-I/O mode: every
	// checkpoint commits atomically to this crash-safe on-disk store and
	// every rollback restores through its generation-by-generation
	// fallback (ckpt.RestoreLatest) instead of an in-memory buffer. The
	// store's fault-injecting FS can then exercise torn writes and
	// crashes inside the failure simulation itself. Any store.Target
	// works: point it at a *store.ReplicatedStore and every checkpoint
	// becomes a quorum commit, every rollback a quorum read.
	Store store.Target
	// ReplicaLossEvery, when positive (requires a replicated Store),
	// destroys the newest generation payload on one replica — rotating
	// the victim — after every ReplicaLossEvery-th failure, modelling a
	// node that loses its local checkpoint copy. Rollbacks must then
	// succeed through the surviving quorum, and read-repair (or an
	// in-run scrub) re-materializes the lost copy.
	ReplicaLossEvery int
	// Observer receives simulation telemetry (failure/rollback counters,
	// virtual-time gauges) and is handed to the checkpoint manager the run
	// creates, so checkpoint/restore spans and quality gauges land in the
	// same registry. nil falls back to the process default.
	Observer *obs.Registry
	// QualityTelemetry turns on the manager's per-variable reconstruction
	// quality gauges (lossy codecs only; costs a decode per checkpoint
	// entry).
	QualityTelemetry bool
	// ScrubEvery, when positive (real-I/O mode only), runs a store scrub
	// after every ScrubEvery-th checkpoint, modelling a background
	// integrity auditor sharing the run. Quarantined generations are the
	// retention ring doing its job: the next rollback falls back to an
	// older generation instead of consuming rot.
	ScrubEvery int
	// ScrubDecode makes those scrubs decode every entry (ckpt.StoreVerifier
	// paranoid mode) rather than stopping at framing and envelope CRCs.
	ScrubDecode bool
}

func (c Config) validate() error {
	if c.TotalSteps < 1 || c.CheckpointEvery < 1 {
		return fmt.Errorf("%w: steps %d, interval %d", ErrConfig, c.TotalSteps, c.CheckpointEvery)
	}
	if c.Codec == nil {
		return fmt.Errorf("%w: nil codec", ErrConfig)
	}
	if c.MTBF <= 0 || c.StepCost <= 0 || c.CheckpointCost < 0 || c.RestartCost < 0 {
		return fmt.Errorf("%w: mtbf %v, step %v, ckpt %v, restart %v",
			ErrConfig, c.MTBF, c.StepCost, c.CheckpointCost, c.RestartCost)
	}
	return nil
}

// Result reports one failure-injected run.
type Result struct {
	// Failures is the number of injected failures.
	Failures int
	// ReworkSteps counts steps that had to be re-executed after rollbacks.
	ReworkSteps int
	// Checkpoints is the number of checkpoints written.
	Checkpoints int
	// VirtualTime is the total simulated wall-clock time (work + rework +
	// checkpoints + restarts).
	VirtualTime time.Duration
	// IdealTime is TotalSteps × StepCost: the failure- and
	// checkpoint-free floor.
	IdealTime time.Duration
	// FinalError compares the run's first state array with the
	// failure-free reference at the same step (zero for lossless codecs).
	FinalError stats.Summary
	// StoreFallbacks counts rollbacks (real-I/O mode only) that could
	// not use the newest generation and fell back to an older one.
	StoreFallbacks int
	// PartialRestores counts rollbacks (real-I/O mode only) that
	// recovered only a subset of the arrays via frame-level recovery.
	PartialRestores int
	// LosslessFallbacks counts checkpoint entries the guard codec had to
	// degrade to bit-exact gzip to honor its bound (guard codec only).
	LosslessFallbacks int
	// ScrubRuns and QuarantinedGens report the in-run scrubber's activity
	// (real-I/O mode with ScrubEvery set).
	ScrubRuns       int
	QuarantinedGens int
	// ReplicaLosses counts replica payloads the run destroyed via
	// Config.ReplicaLossEvery; ReplicaRepairs counts generations in-run
	// scrubs re-materialized onto replicas (replicated mode only).
	ReplicaLosses  int
	ReplicaRepairs int
}

// OverheadPct returns the virtual-time overhead over the ideal run.
func (r *Result) OverheadPct() float64 {
	if r.IdealTime <= 0 {
		return math.NaN()
	}
	return 100 * (float64(r.VirtualTime)/float64(r.IdealTime) - 1)
}

// Run executes the failure-injected simulation on app and compares the
// final state against reference, an identical app instance that is
// stepped without failures or checkpoints.
func Run(app, reference App, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mgr := ckpt.NewManager(cfg.Codec, 0)
	obsr := cfg.Observer
	if obsr == nil {
		obsr = obs.Default()
	}
	mgr.SetObserver(obsr)
	mgr.EnableQualityTelemetry(cfg.QualityTelemetry)
	for _, nf := range app.Fields() {
		if err := mgr.Register(nf.Name, nf.Field); err != nil {
			return nil, err
		}
	}
	var repl *store.ReplicatedStore
	if cfg.ReplicaLossEvery > 0 {
		r, ok := cfg.Store.(*store.ReplicatedStore)
		if !ok || r.Replicas() < 2 {
			return nil, fmt.Errorf("%w: ReplicaLossEvery requires a replicated store with >=2 replicas", ErrConfig)
		}
		repl = r
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextFailure := exponential(rng, cfg.MTBF)
	maxFailures := cfg.MaxFailures
	if maxFailures == 0 {
		expected := int(float64(cfg.TotalSteps)*float64(cfg.StepCost)/float64(cfg.MTBF)) + 1
		maxFailures = 10 * expected
	}

	res := &Result{IdealTime: time.Duration(cfg.TotalSteps) * cfg.StepCost}
	var clock time.Duration
	var lastCkpt bytes.Buffer
	haveCkpt := false

	checkpoint := func() error {
		var rep *ckpt.Report
		if cfg.Store != nil {
			var err error
			if rep, _, err = mgr.CheckpointTo(cfg.Store, app.StepCount()); err != nil {
				return err
			}
		} else {
			lastCkpt.Reset()
			var err error
			if rep, err = mgr.Checkpoint(&lastCkpt, app.StepCount()); err != nil {
				return err
			}
		}
		for _, e := range rep.Entries {
			if e.Guarantee != nil && e.Guarantee.Mode == guard.Lossless {
				res.LosslessFallbacks++
			}
		}
		haveCkpt = true
		res.Checkpoints++
		clock += cfg.CheckpointCost
		if cfg.Store != nil && cfg.ScrubEvery > 0 && res.Checkpoints%cfg.ScrubEvery == 0 {
			srep, err := cfg.Store.Scrub(store.ScrubOptions{
				Verify: ckpt.StoreVerifier(cfg.ScrubDecode, 0)})
			if err != nil {
				return fmt.Errorf("faultsim: scrub after checkpoint %d: %w", res.Checkpoints, err)
			}
			res.ScrubRuns++
			res.QuarantinedGens += len(srep.Quarantined)
			for _, rs := range srep.Replicas {
				res.ReplicaRepairs += len(rs.Repaired)
			}
		}
		return nil
	}
	// rollback restores the last checkpoint and returns the step it
	// rewound to. In real-I/O mode the restore walks the store's
	// retention ring, so a damaged newest generation degrades to an
	// older one instead of failing the run.
	rollback := func() (int, error) {
		if cfg.Store != nil {
			sr, err := mgr.RestoreLatest(cfg.Store)
			if err != nil {
				return 0, err
			}
			if latest, ok := cfg.Store.Latest(); ok && sr.Generation != latest.Seq {
				res.StoreFallbacks++
			}
			if sr.Partial {
				res.PartialRestores++
			}
			return sr.Step, nil
		}
		rep, err := mgr.Restore(bytes.NewReader(lastCkpt.Bytes()))
		if err != nil {
			return 0, err
		}
		return rep.Step, nil
	}
	// Initial checkpoint so a failure before the first interval has a
	// rollback target.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	baseStep := app.StepCount()

	for app.StepCount() < baseStep+cfg.TotalSteps {
		// Fail any number of times before this step completes.
		for clock+cfg.StepCost > nextFailure {
			if res.Failures >= maxFailures {
				return nil, fmt.Errorf("faultsim: exceeded %d failures; MTBF too small for the workload", maxFailures)
			}
			res.Failures++
			clock = nextFailure
			nextFailure = clock + exponential(rng, cfg.MTBF)
			if !haveCkpt {
				return nil, errors.New("faultsim: failure before any checkpoint")
			}
			if repl != nil && res.Failures%cfg.ReplicaLossEvery == 0 {
				// A node loses its local checkpoint copy along with the
				// failure: destroy the newest payload on a rotating victim.
				// The manifest still lists it, so restore sees a missing
				// file there and must fall through to the quorum.
				victim := (res.Failures / cfg.ReplicaLossEvery) % repl.Replicas()
				if st, rerr := repl.Replica(victim); rerr == nil && st != nil {
					if g, ok := st.Latest(); ok {
						if os.Remove(filepath.Join(st.Dir(), store.GenName(g.Seq))) == nil {
							res.ReplicaLosses++
							if obsr != nil {
								obsr.Event("faultsim.replica_loss",
									"replica", victim, "gen", g.Seq)
							}
							journal.Default().Note("faultsim.replica_loss",
								"replica", strconv.Itoa(victim),
								"gen", strconv.FormatUint(g.Seq, 10))
						}
					}
				}
			}
			before := app.StepCount()
			step, err := rollback()
			if err != nil {
				return nil, err
			}
			app.SetStepCount(step)
			res.ReworkSteps += before - step
			clock += cfg.RestartCost
			if obsr != nil {
				obsr.Counter(MetricFailures).Inc()
				obsr.Counter(MetricRollbacks).Inc()
				obsr.Counter(MetricReworkSteps).Add(float64(before - step))
				obsr.Event("faultsim.failure",
					"at_step", before, "rolled_back_to", step, "virtual_clock", clock.String())
			}
			journal.Default().Note("faultsim.failure",
				"at_step", strconv.Itoa(before),
				"rolled_back_to", strconv.Itoa(step),
				"virtual_clock", clock.String())
		}
		app.Step()
		clock += cfg.StepCost
		done := app.StepCount() - baseStep
		if done%cfg.CheckpointEvery == 0 && done < cfg.TotalSteps {
			if err := checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	res.VirtualTime = clock

	// Advance the reference to the same step, failure-free.
	for reference.StepCount() < app.StepCount() {
		reference.Step()
	}
	af, rf := app.Fields(), reference.Fields()
	if len(af) == 0 || len(af) != len(rf) {
		return nil, fmt.Errorf("faultsim: app exposes %d fields, reference %d", len(af), len(rf))
	}
	s, err := stats.Compare(rf[0].Field.Data(), af[0].Field.Data())
	if err != nil {
		return nil, err
	}
	res.FinalError = s
	if obsr != nil {
		obsr.Gauge(MetricVirtualSec).Set(res.VirtualTime.Seconds())
		obsr.Gauge(MetricOverheadPct).Set(res.OverheadPct())
	}
	return res, nil
}

// exponential draws an exponentially distributed interarrival time.
func exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// AppFuncs adapts any application exposing step/counter/fields functions
// to the App interface, so substrates (climate, heat, nbody) plug in
// without depending on this package.
type AppFuncs struct {
	StepFn         func()
	StepCountFn    func() int
	SetStepCountFn func(int)
	FieldsFn       func() []NamedField
}

// Step implements App.
func (a AppFuncs) Step() { a.StepFn() }

// StepCount implements App.
func (a AppFuncs) StepCount() int { return a.StepCountFn() }

// SetStepCount implements App.
func (a AppFuncs) SetStepCount(n int) { a.SetStepCountFn(n) }

// Fields implements App.
func (a AppFuncs) Fields() []NamedField { return a.FieldsFn() }
