// lz4.go implements the cheap coder of the pluggable entropy stage: a
// pure-Go LZ4-class literal/match block codec. The wavelet+quantization
// stages leave a byte stream (the formatted container) whose redundancy
// is mostly short repeats — runs of identical exponent bytes in the low
// band, repeated codes in the quantized high band — exactly the pattern
// a hash-chain-free greedy matcher exploits at memory speed. The format
// follows the LZ4 block layout (token byte with 4-bit literal/match
// nibbles, 255-extension bytes, 16-bit match offsets, 4-byte minimum
// match) prefixed with the uncompressed length as a uvarint, but is this
// repository's own framing: the entropy envelope (see entropy.go)
// identifies it, not LZ4 frame magic.
//
// The decoder applies the same defensive posture as the PR 2 readers:
// every declared length is validated against the bytes that remain, the
// uncompressed size is capped at the format's true expansion limit
// relative to the input size, and corrupt input returns ErrCorrupt —
// never a panic or an unbounded allocation.
package entropy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// ErrCorrupt indicates malformed LZ4-class compressed data.
var ErrCorrupt = errors.New("entropy: corrupt lz4 block")

const (
	// lz4MinMatch is the shortest encodable match (as in LZ4).
	lz4MinMatch = 4
	// lz4HashLog sizes the match-finder table at 2^16 entries (256 KB),
	// pooled across calls.
	lz4HashLog = 16
	// lz4MFLimit: matches are not searched within the last 12 bytes; the
	// tail is always emitted as literals (simplifies both loops, as in
	// the reference implementation).
	lz4MFLimit = 12
	// lz4MaxOffset is the match window (16-bit offsets).
	lz4MaxOffset = 1 << 16
	// lz4MaxExpansion bounds the output-per-input-byte ratio of a valid
	// stream: one 255-extension byte adds at most 255 output bytes, so a
	// forged length beyond 256× the input cannot be genuine. The slack
	// constant covers the fixed header of tiny inputs.
	lz4MaxExpansion = 256
)

type lz4Table [1 << lz4HashLog]int32

// lz4Tables pools the 256 KB match-finder tables so the hot compression
// path does not allocate one per call.
var lz4Tables = sync.Pool{New: func() any { return new(lz4Table) }}

// lz4Hash maps 4 bytes to a table slot (Knuth multiplicative hash).
func lz4Hash(u uint32) uint32 { return (u * 2654435761) >> (32 - lz4HashLog) }

// lz4CompressBound is the worst-case compressed size for n input bytes:
// incompressible data costs one extension byte per 255 literals plus the
// token and the uvarint length header.
func lz4CompressBound(n int) int { return n + n/255 + 24 }

// lz4Compress encodes src. The output always begins with the uvarint
// uncompressed length; an empty input encodes to just that header.
func lz4Compress(src []byte) []byte {
	n := len(src)
	out := make([]byte, 0, lz4CompressBound(n))
	out = binary.AppendUvarint(out, uint64(n))
	if n == 0 {
		return out
	}
	if n < lz4MFLimit+lz4MinMatch {
		return lz4EmitLiteralTail(out, src)
	}

	table := lz4Tables.Get().(*lz4Table)
	defer lz4Tables.Put(table)
	clear(table[:])

	// Positions are stored +1 so the zeroed table reads as "empty".
	limit := n - lz4MFLimit
	anchor, si := 0, 0
	for si < limit {
		// Greedy match search with acceleration: every miss widens the
		// probe stride, so incompressible regions fall through at near
		// memcpy speed.
		tries := 0
		ref := -1
		for {
			h := lz4Hash(binary.LittleEndian.Uint32(src[si:]))
			cand := int(table[h]) - 1
			table[h] = int32(si + 1)
			if cand >= 0 && si-cand < lz4MaxOffset &&
				binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[si:]) {
				ref = cand
				break
			}
			tries++
			si += 1 + tries>>6
			if si >= limit {
				return lz4EmitLiteralTail(out, src[anchor:])
			}
		}

		// Extend the match backward over pending literals.
		for si > anchor && ref > 0 && src[si-1] == src[ref-1] {
			si--
			ref--
		}
		// Extend forward, 8 bytes at a time.
		ml := lz4MinMatch
		for si+ml+8 <= n {
			x := binary.LittleEndian.Uint64(src[si+ml:]) ^ binary.LittleEndian.Uint64(src[ref+ml:])
			if x != 0 {
				ml += bits.TrailingZeros64(x) >> 3
				goto emit
			}
			ml += 8
		}
		for si+ml < n && src[si+ml] == src[ref+ml] {
			ml++
		}
	emit:
		out = lz4EmitSequence(out, src[anchor:si], si-ref, ml)
		si += ml
		anchor = si
		// Seed the table at si-2 so overlapping repeats are found quickly
		// (the reference implementation's catch-up insert).
		if si < limit && si >= 2 {
			table[lz4Hash(binary.LittleEndian.Uint32(src[si-2:]))] = int32(si - 2 + 1)
		}
	}
	if anchor < n {
		out = lz4EmitLiteralTail(out, src[anchor:])
	}
	return out
}

// lz4EmitSequence appends one token: literals followed by a match of
// length ml at the given offset.
func lz4EmitSequence(out []byte, lits []byte, offset, ml int) []byte {
	litLen := len(lits)
	mlCode := ml - lz4MinMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlCode >= 15 {
		token |= 15
	} else {
		token |= byte(mlCode)
	}
	out = append(out, token)
	out = lz4AppendExt(out, litLen)
	out = append(out, lits...)
	out = append(out, byte(offset), byte(offset>>8))
	out = lz4AppendExt(out, mlCode)
	return out
}

// lz4EmitLiteralTail appends a final literals-only token (match nibble
// zero, no offset follows — the decoder stops when the declared length
// is reached).
func lz4EmitLiteralTail(out []byte, lits []byte) []byte {
	litLen := len(lits)
	if litLen == 0 {
		return out
	}
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	out = append(out, token)
	out = lz4AppendExt(out, litLen)
	return append(out, lits...)
}

// lz4AppendExt appends the 255-run extension bytes for a length whose
// nibble saturated at 15.
func lz4AppendExt(out []byte, v int) []byte {
	if v < 15 {
		return out
	}
	v -= 15
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// lz4Decompress decodes a stream produced by lz4Compress. Malformed
// input — truncated streams, forged lengths, out-of-window offsets —
// returns ErrCorrupt; the output allocation is bounded by the declared
// length, which itself is capped relative to the input size.
func lz4Decompress(data []byte) ([]byte, error) {
	un, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	data = data[k:]
	if un > uint64(len(data))*lz4MaxExpansion+16 {
		return nil, fmt.Errorf("%w: declared %d bytes for %d input bytes", ErrCorrupt, un, len(data))
	}
	n := int(un)
	if n == 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
		}
		return []byte{}, nil
	}
	out := make([]byte, 0, n)
	pos := 0
	readExt := func(base int) (int, error) {
		if base < 15 {
			return base, nil
		}
		v := base
		for {
			if pos >= len(data) {
				return 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
			}
			b := data[pos]
			pos++
			v += int(b)
			// The accumulated length can never validly exceed the
			// declared output size; bail before it overflows.
			if v > n+255 {
				return 0, fmt.Errorf("%w: runaway length", ErrCorrupt)
			}
			if b != 255 {
				return v, nil
			}
		}
	}
	for {
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: truncated at output byte %d", ErrCorrupt, len(out))
		}
		token := data[pos]
		pos++
		litLen, err := readExt(int(token >> 4))
		if err != nil {
			return nil, err
		}
		if pos+litLen > len(data) {
			return nil, fmt.Errorf("%w: %d literal bytes declared, %d remain", ErrCorrupt, litLen, len(data)-pos)
		}
		if len(out)+litLen > n {
			return nil, fmt.Errorf("%w: literals overflow declared size", ErrCorrupt)
		}
		out = append(out, data[pos:pos+litLen]...)
		pos += litLen
		if len(out) == n {
			if pos != len(data) {
				return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
			}
			return out, nil
		}
		if pos+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated match offset", ErrCorrupt)
		}
		offset := int(data[pos]) | int(data[pos+1])<<8
		pos += 2
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("%w: offset %d at output byte %d", ErrCorrupt, offset, len(out))
		}
		mlCode, err := readExt(int(token & 15))
		if err != nil {
			return nil, err
		}
		ml := mlCode + lz4MinMatch
		if len(out)+ml > n {
			return nil, fmt.Errorf("%w: match overflows declared size", ErrCorrupt)
		}
		start := len(out) - offset
		if offset >= ml {
			out = append(out, out[start:start+ml]...)
		} else {
			// Overlapping match: the copy source grows as the copy runs.
			for i := 0; i < ml; i++ {
				out = append(out, out[start+i])
			}
		}
		// A stream may legitimately end on a match (the encoder only
		// emits a literal tail when bytes remain past the last match).
		if len(out) == n {
			if pos != len(data) {
				return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
			}
			return out, nil
		}
	}
}
