package entropy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
)

// corpus builds inputs spanning the shapes the entropy stage sees:
// container streams (structured header + packed floats), repetitive
// code bytes, incompressible noise, and degenerate sizes.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	smooth := make([]byte, 0, 64*1024)
	for i := 0; i < 8*1024; i++ {
		v := 280 + 15*math.Sin(float64(i)/200)
		var b [8]byte
		u := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			b[k] = byte(u >> (8 * k))
		}
		smooth = append(smooth, b[:]...)
	}
	noise := make([]byte, 32*1024)
	rng.Read(noise)
	runs := bytes.Repeat([]byte{0, 0, 0, 7, 7, 1}, 6000)
	mixed := append(append([]byte("LCKP header-ish"), runs[:2048]...), noise[:2048]...)
	return map[string][]byte{
		"empty":  {},
		"one":    {0x5a},
		"tiny":   []byte("abcdefgh"),
		"runs":   runs,
		"smooth": smooth,
		"noise":  noise,
		"mixed":  mixed,
	}
}

func TestLZ4RoundTrip(t *testing.T) {
	for name, data := range corpus() {
		comp := lz4Compress(data)
		back, err := lz4Decompress(comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%s: round trip mismatch: got %d bytes want %d", name, len(back), len(data))
		}
	}
}

func TestLZ4CompressesRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("checkpoint"), 10000)
	comp := lz4Compress(data)
	if len(comp) >= len(data)/10 {
		t.Fatalf("repetitive input barely compressed: %d -> %d", len(data), len(comp))
	}
}

func TestLZ4IncompressibleBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 256*1024)
	rng.Read(data)
	comp := lz4Compress(data)
	if len(comp) > lz4CompressBound(len(data)) {
		t.Fatalf("output %d exceeds bound %d", len(comp), lz4CompressBound(len(data)))
	}
}

func TestLZ4DecompressRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"bad header":      {0xff},
		"huge declared":   {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"trailing":        append(lz4Compress(nil), 1, 2, 3),
		"truncated token": {4, 0x40, 'a'},
		"zero offset":     {8, 0x41, 'a', 0, 0},
		"far offset":      {8, 0x41, 'a', 0xff, 0xff},
	}
	for name, data := range cases {
		if _, err := lz4Decompress(data); err == nil {
			t.Errorf("%s: corrupt input decoded without error", name)
		}
	}
}

func TestLZ4TruncationAlwaysErrors(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh123"), 2000)
	comp := lz4Compress(data)
	for cut := 1; cut < len(comp); cut += 37 {
		if back, err := lz4Decompress(comp[:cut]); err == nil && bytes.Equal(back, data) {
			t.Fatalf("truncation at %d/%d still produced the full output", cut, len(comp))
		}
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, stride := range []int{1, 2, 4, 8, 16} {
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 8191, 8192} {
			data := make([]byte, n)
			rng.Read(data)
			back := UnshuffleBytes(ShuffleBytes(data, stride), stride)
			if !bytes.Equal(back, data) {
				t.Fatalf("stride %d len %d: shuffle not a bijection", stride, n)
			}
		}
	}
}

func TestShuffleLaneLayout(t *testing.T) {
	// 3 elements of stride 4 plus a 2-byte tail.
	src := []byte{
		0x00, 0x01, 0x02, 0x03,
		0x10, 0x11, 0x12, 0x13,
		0x20, 0x21, 0x22, 0x23,
		0xaa, 0xbb,
	}
	want := []byte{
		0x00, 0x10, 0x20, // lane 0
		0x01, 0x11, 0x21, // lane 1
		0x02, 0x12, 0x22, // lane 2
		0x03, 0x13, 0x23, // lane 3
		0xaa, 0xbb, // verbatim tail
	}
	got := ShuffleBytes(src, 4)
	if !bytes.Equal(got, want) {
		t.Fatalf("lane layout:\n got %x\nwant %x", got, want)
	}
}

func TestShuffleImprovesLZ4OnFloats(t *testing.T) {
	data := corpus()["smooth"]
	plain := lz4Compress(data)
	shuf := lz4Compress(ShuffleBytes(data, 8))
	if len(shuf) >= len(plain) {
		t.Fatalf("shuffle did not help smooth float64 data: plain %d, shuffled %d", len(plain), len(shuf))
	}
}

func TestCompressDecompressAllParams(t *testing.T) {
	for name, data := range corpus() {
		for _, p := range []Params{
			{Codec: Gzip, GzipLevel: gzipio.Default},
			{Codec: Gzip, Shuffle: true, GzipLevel: gzipio.Default},
			{Codec: Gzip, GzipLevel: gzipio.Default, GzipBlock: 8 * 1024},
			{Codec: LZ4},
			{Codec: LZ4, Shuffle: true},
			{Codec: LZ4, Shuffle: true, Stride: 4},
		} {
			res, err := Compress(data, p)
			if err != nil {
				t.Fatalf("%s %s: compress: %v", name, p.Label(), err)
			}
			if string(res.Compressed[:4]) != envelopeMagic {
				t.Fatalf("%s %s: missing envelope", name, p.Label())
			}
			for _, workers := range []int{0, 1, 4} {
				back, err := Decompress(res.Compressed, workers)
				if err != nil {
					t.Fatalf("%s %s workers=%d: decompress: %v", name, p.Label(), workers, err)
				}
				if !bytes.Equal(back, data) {
					t.Fatalf("%s %s workers=%d: round trip mismatch", name, p.Label(), workers)
				}
			}
		}
	}
}

func TestDecompressLegacyGzipAndZlib(t *testing.T) {
	data := bytes.Repeat([]byte("legacy payload "), 512)
	for _, format := range []gzipio.Format{gzipio.FormatGzip, gzipio.FormatZlib} {
		res, err := gzipio.CompressFormat(data, gzipio.Default, gzipio.InMemory, "", format)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decompress(res.Compressed, 2)
		if err != nil {
			t.Fatalf("%v: legacy decode: %v", format, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%v: legacy round trip mismatch", format)
		}
	}
}

func TestDecompressRejectsBadEnvelope(t *testing.T) {
	good, err := Compress([]byte("hello world hello world"), Params{Codec: LZ4})
	if err != nil {
		t.Fatal(err)
	}
	badVer := append([]byte{}, good.Compressed...)
	badVer[4] = 99
	badCodec := append([]byte{}, good.Compressed...)
	badCodec[5] = 200
	badStride := append([]byte{}, good.Compressed...)
	badStride[6] = flagShuffled
	badStride[7] = 0
	for name, data := range map[string][]byte{
		"version": badVer, "codec": badCodec, "stride": badStride,
	} {
		if _, err := Decompress(data, 1); err == nil {
			t.Errorf("bad %s accepted", name)
		}
	}
}

func TestIdentify(t *testing.T) {
	data := bytes.Repeat([]byte("identify me "), 256)
	gz, _ := gzipio.CompressFormat(data, gzipio.Default, gzipio.InMemory, "", gzipio.FormatGzip)
	zl, _ := gzipio.CompressFormat(data, gzipio.Default, gzipio.InMemory, "", gzipio.FormatZlib)
	lz, _ := Compress(data, Params{Codec: LZ4})
	lzs, _ := Compress(data, Params{Codec: LZ4, Shuffle: true})
	gzs, _ := Compress(data, Params{Codec: Gzip, Shuffle: true, GzipLevel: gzipio.Default})
	cases := map[string]string{
		string(gz.Compressed):  "gzip",
		string(zl.Compressed):  "zlib",
		string(lz.Compressed):  "lz4",
		string(lzs.Compressed): "lz4+shuffle",
		string(gzs.Compressed): "gzip+shuffle",
		"garbage":              "unknown",
	}
	for data, want := range cases {
		if got := Identify([]byte(data)); got != want {
			t.Errorf("Identify = %q, want %q", got, want)
		}
	}
}

func TestParseID(t *testing.T) {
	for name, want := range map[string]ID{"": Gzip, "gzip": Gzip, "lz4": LZ4} {
		got, err := ParseID(name)
		if err != nil || got != want {
			t.Errorf("ParseID(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseID("zstd"); err == nil {
		t.Error("ParseID accepted unknown codec")
	}
}

func TestRecordSelection(t *testing.T) {
	reg := obs.NewRegistry()
	RecordSelection(reg, "lz4+shuffle", "temperature")
	RecordSelection(reg, "lz4+shuffle", "temperature")
	RecordSelection(reg, "gzip", "")
	snap := reg.Snapshot()
	got := map[string]float64{}
	for _, m := range snap.Metrics {
		if m.Name == MetricCodecSelected {
			got[m.Labels["codec"]+"/"+m.Labels["var"]] = m.Value
		}
	}
	if got["lz4+shuffle/temperature"] != 2 || got["gzip/-"] != 1 {
		t.Fatalf("unexpected selection counters: %v", got)
	}
}
