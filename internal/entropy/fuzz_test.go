package entropy

import (
	"bytes"
	"testing"
)

// FuzzLZ4RoundTrip asserts the codec is lossless for arbitrary input.
func FuzzLZ4RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := lz4Compress(data)
		if len(comp) > lz4CompressBound(len(data)) {
			t.Fatalf("output %d exceeds bound %d", len(comp), lz4CompressBound(len(data)))
		}
		back, err := lz4Decompress(comp)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch: %d -> %d bytes", len(data), len(back))
		}
	})
}

// FuzzLZ4Decompress feeds the decoder arbitrary bytes: it must either
// decode or return ErrCorrupt — never panic, and never allocate beyond
// the expansion cap relative to the input size.
func FuzzLZ4Decompress(f *testing.F) {
	f.Add([]byte{})
	f.Add(lz4Compress([]byte("seed corpus entry with some repetition repetition")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{8, 0x41, 'a', 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := lz4Decompress(data)
		if err != nil {
			return
		}
		if uint64(len(out)) > uint64(len(data))*lz4MaxExpansion+16 {
			t.Fatalf("decoded %d bytes from %d input bytes: expansion cap breached", len(out), len(data))
		}
	})
}

// FuzzDecompressAny drives the envelope parser plus both codec decoders
// with arbitrary bytes, including bit-flipped valid streams: errors are
// fine, panics and over-allocation are not, and streams that do decode
// must round-trip under the matching params.
func FuzzDecompressAny(f *testing.F) {
	seed := []byte("the quick brown fox jumps over the lazy dog, twice over")
	for _, p := range []Params{{Codec: LZ4}, {Codec: LZ4, Shuffle: true}, {Codec: Gzip, GzipLevel: -1}} {
		if res, err := Compress(seed, p); err == nil {
			f.Add(res.Compressed)
		}
	}
	f.Add([]byte("LKE1garbage that is not a valid envelope payload"))
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	f.Add([]byte{0x78, 0x9c, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data, 2)
		if err != nil {
			return
		}
		// DEFLATE's own cap is 1032:1; the envelope adds a small header.
		if uint64(len(out)) > uint64(len(data))*1040+64 {
			t.Fatalf("decoded %d bytes from %d input bytes", len(out), len(data))
		}
	})
}

// FuzzShuffle asserts the pre-pass is a bijection for every stride and
// length combination the envelope can express.
func FuzzShuffle(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), 8)
	f.Add([]byte{}, 4)
	f.Fuzz(func(t *testing.T, data []byte, stride int) {
		if stride < 0 || stride > 255 {
			return
		}
		back := UnshuffleBytes(ShuffleBytes(data, stride), stride)
		if !bytes.Equal(back, data) {
			t.Fatalf("stride %d len %d: not a bijection", stride, len(data))
		}
	})
}
