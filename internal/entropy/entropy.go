// Package entropy makes the pipeline's final stage pluggable. The paper
// hard-wires gzip (§III-D) and measures it at ~85% of compress wall time
// (ROADMAP item 4); this package fronts that stage with a Codec
// interface — the existing gzipio DEFLATE engine and a pure-Go LZ4-class
// coder (lz4.go) — plus an optional byte-shuffle pre-pass (shuffle.go),
// so the autotuner (internal/tune) can trade ratio for throughput per
// variable.
//
// # Envelope
//
// A non-default selection is recorded in a self-describing envelope so
// every decode path stays format-blind:
//
//	offset 0: magic "LKE1" (4 bytes)
//	offset 4: version (1)
//	offset 5: codec ID byte
//	offset 6: flags byte (bit 0: byte-shuffle applied)
//	offset 7: shuffle stride byte
//	offset 8: codec payload
//
// Streams produced before this PR carry no envelope; Decompress sniffs
// the gzip (0x1f 0x8b) and zlib (0x78) magics and maps them to the gzip
// codec, so pre-PR-6 payloads decode bit-exactly. Conversely the default
// configuration (gzip, no shuffle) still writes raw DEFLATE streams with
// no envelope, so default-path output remains byte-identical too.
package entropy

import (
	"fmt"
	"time"

	"lossyckpt/internal/gzipio"
	"lossyckpt/internal/obs"
)

// ID identifies a codec in the envelope's codec-ID byte. The zero value
// is Gzip, the repository-wide default.
type ID byte

const (
	// Gzip is the DEFLATE engine (gzipio), the paper's stage.
	Gzip ID = 0
	// LZ4 is the pure-Go LZ4-class literal/match coder.
	LZ4 ID = 1
)

// String implements fmt.Stringer.
func (id ID) String() string {
	switch id {
	case Gzip:
		return "gzip"
	case LZ4:
		return "lz4"
	default:
		return fmt.Sprintf("codec(%d)", byte(id))
	}
}

// ParseID maps a CLI name to a codec ID.
func ParseID(name string) (ID, error) {
	switch name {
	case "", "gzip":
		return Gzip, nil
	case "lz4":
		return LZ4, nil
	default:
		return Gzip, fmt.Errorf("entropy: unknown codec %q (want gzip or lz4)", name)
	}
}

// Names lists the selectable codec names for CLI help strings.
func Names() []string { return []string{"gzip", "lz4"} }

// Envelope layout.
const (
	envelopeMagic = "LKE1"
	envelopeVer   = 1
	envelopeLen   = 8
	flagShuffled  = 1 << 0
)

// DefaultStride is the shuffle lane width when none is given: the
// container packs float64 values (container.PackedWidth pins this; core
// forwards it so the two cannot drift apart silently).
const DefaultStride = 8

// MetricCodecSelected counts entropy-stage encodes, labeled
// codec=gzip|gzip+shuffle|lz4|lz4+shuffle and var=<variable name or "-">.
const MetricCodecSelected = "lossyckpt_entropy_codec_selected_total"

// Params configures one entropy-stage encode.
type Params struct {
	// Codec selects the coder; the zero value is Gzip.
	Codec ID
	// Shuffle applies the byte-lane transpose before the coder.
	Shuffle bool
	// Stride is the shuffle lane width; 0 means DefaultStride.
	Stride int
	// GzipLevel, GzipFormat, GzipMode, GzipBlock, TmpDir configure the
	// gzip codec exactly as core.Options does (GzipBlock > 0 shards via
	// gzipio.CompressParallel).
	GzipLevel  int
	GzipFormat gzipio.Format
	GzipMode   gzipio.Mode
	GzipBlock  int
	TmpDir     string
	// Workers bounds parallel gzip workers; 0 means GOMAXPROCS.
	Workers int
	// Observer receives codec-selection counters; nil uses the process
	// default registry.
	Observer *obs.Registry
}

// Label is the metric/report label for the selection: the codec name,
// "+shuffle"-suffixed when the pre-pass is on.
func (p Params) Label() string {
	if p.Shuffle {
		return p.Codec.String() + "+shuffle"
	}
	return p.Codec.String()
}

func (p Params) stride() int {
	if p.Stride <= 0 {
		return DefaultStride
	}
	if p.Stride > 255 {
		return 255
	}
	return p.Stride
}

// Codec is the pluggable entropy-stage coder. Compress returns the raw
// codec payload (no envelope); Decompress inverts it.
type Codec interface {
	// ID is the envelope codec-ID byte value.
	ID() ID
	// Name is the stable CLI/report name.
	Name() string
	// Compress encodes data using the codec-relevant fields of p.
	Compress(data []byte, p Params) ([]byte, error)
	// Decompress decodes a payload produced by Compress. workers bounds
	// parallel decode where the format supports it.
	Decompress(data []byte, workers int) ([]byte, error)
}

// ByID returns the codec registered for id.
func ByID(id ID) (Codec, error) {
	switch id {
	case Gzip:
		return gzipCodec{}, nil
	case LZ4:
		return lz4Codec{}, nil
	default:
		return nil, fmt.Errorf("entropy: unknown codec ID %d", byte(id))
	}
}

// gzipCodec adapts the gzipio engine to the Codec interface.
type gzipCodec struct{}

func (gzipCodec) ID() ID       { return Gzip }
func (gzipCodec) Name() string { return "gzip" }

func (gzipCodec) Compress(data []byte, p Params) ([]byte, error) {
	if p.GzipBlock > 0 {
		res, err := gzipio.CompressParallel(data, p.GzipLevel, p.GzipFormat, gzipio.ParallelOptions{
			BlockSize: p.GzipBlock,
			Workers:   p.Workers,
			Observer:  p.Observer,
		})
		if err != nil {
			return nil, err
		}
		return res.Compressed, nil
	}
	res, err := gzipio.CompressFormat(data, p.GzipLevel, p.GzipMode, p.TmpDir, p.GzipFormat)
	if err != nil {
		return nil, err
	}
	return res.Compressed, nil
}

func (gzipCodec) Decompress(data []byte, workers int) ([]byte, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		return gzipio.DecompressMembersParallel(data, workers)
	}
	return gzipio.DecompressAuto(data)
}

// lz4Codec adapts the LZ4-class block coder to the Codec interface.
type lz4Codec struct{}

func (lz4Codec) ID() ID       { return LZ4 }
func (lz4Codec) Name() string { return "lz4" }

func (lz4Codec) Compress(data []byte, p Params) ([]byte, error) {
	return lz4Compress(data), nil
}

func (lz4Codec) Decompress(data []byte, workers int) ([]byte, error) {
	return lz4Decompress(data)
}

// Result carries the envelope-wrapped stream and the coding time, the
// figure core's Timings.Gzip (stage-4 seconds) accumulates.
type Result struct {
	Compressed []byte
	CodeTime   time.Duration
}

// Compress runs the entropy stage per p and wraps the payload in the
// self-describing envelope. Callers wanting legacy byte-identity for the
// default configuration (gzip, no shuffle) should call gzipio directly
// instead — core does.
func Compress(data []byte, p Params) (Result, error) {
	c, err := ByID(p.Codec)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	src := data
	stride := p.stride()
	if p.Shuffle {
		src = ShuffleBytes(data, stride)
	}
	payload, err := c.Compress(src, p)
	if err != nil {
		return Result{}, fmt.Errorf("entropy: %s: %w", c.Name(), err)
	}
	out := make([]byte, envelopeLen, envelopeLen+len(payload))
	copy(out, envelopeMagic)
	out[4] = envelopeVer
	out[5] = byte(p.Codec)
	if p.Shuffle {
		out[6] = flagShuffled
		out[7] = byte(stride)
	}
	out = append(out, payload...)
	return Result{Compressed: out, CodeTime: time.Since(start)}, nil
}

// parseEnvelope splits an enveloped stream; ok is false when data does
// not start with the magic (legacy payload).
func parseEnvelope(data []byte) (id ID, shuffled bool, stride int, payload []byte, ok bool, err error) {
	if len(data) < envelopeLen || string(data[:4]) != envelopeMagic {
		return 0, false, 0, nil, false, nil
	}
	if data[4] != envelopeVer {
		return 0, false, 0, nil, true, fmt.Errorf("entropy: unsupported envelope version %d", data[4])
	}
	id = ID(data[5])
	shuffled = data[6]&flagShuffled != 0
	stride = int(data[7])
	if shuffled && stride < 2 {
		return 0, false, 0, nil, true, fmt.Errorf("entropy: shuffled envelope with stride %d", stride)
	}
	return id, shuffled, stride, data[envelopeLen:], true, nil
}

// Decompress inverts Compress. Streams without the envelope are legacy
// pre-PR-6 payloads: raw gzip or zlib, decoded through the gzip codec
// bit-exactly as before. workers bounds parallel member decode.
func Decompress(data []byte, workers int) ([]byte, error) {
	id, shuffled, stride, payload, ok, err := parseEnvelope(data)
	if err != nil {
		return nil, err
	}
	if !ok {
		return gzipCodec{}.Decompress(data, workers)
	}
	c, err := ByID(id)
	if err != nil {
		return nil, err
	}
	out, err := c.Decompress(payload, workers)
	if err != nil {
		return nil, fmt.Errorf("entropy: %s: %w", c.Name(), err)
	}
	if shuffled {
		out = UnshuffleBytes(out, stride)
	}
	return out, nil
}

// Identify names the entropy coding of a stream without decoding it:
// "gzip"/"zlib" for legacy payloads, the envelope label ("lz4",
// "gzip+shuffle", …) for enveloped ones, "unknown" otherwise. Used by
// the inspect/fsck reporting paths.
func Identify(data []byte) string {
	if id, shuffled, _, _, ok, err := parseEnvelope(data); ok {
		if err != nil {
			return "unknown"
		}
		label := id.String()
		if shuffled {
			label += "+shuffle"
		}
		return label
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		return "gzip"
	}
	if len(data) >= 1 && data[0] == 0x78 {
		return "zlib"
	}
	return "unknown"
}

// RecordSelection bumps the codec-selection counter for one entropy
// encode. varName may be empty ("-" is recorded).
func RecordSelection(reg *obs.Registry, label, varName string) {
	if reg == nil {
		reg = obs.Default()
	}
	if varName == "" {
		varName = "-"
	}
	reg.Counter(MetricCodecSelected, "codec", label, "var", varName).Inc()
}
