// shuffle.go implements the byte-shuffle pre-pass of the entropy stage.
// The container's low band is a run of fixed-width little-endian values
// (float64s today; PackedWidth pins the stride). Nearby climate samples
// share sign, exponent, and high-mantissa bytes, so transposing the
// stream into byte lanes — all byte-0s, then all byte-1s, … — turns
// per-value similarity into long same-lane runs that the cheap LZ4-class
// coder can match, the standard trick of production scientific
// compressors (blosc, HDF5's shuffle filter; see PAPERS.md, Di et al.).
package entropy

// ShuffleBytes transposes src into stride byte lanes: output lane k
// holds byte k of each stride-sized element, in element order. The tail
// (len(src) % stride) is appended verbatim, so the transform is a
// bijection for every input length and alignment. stride < 2 returns
// src unchanged.
func ShuffleBytes(src []byte, stride int) []byte {
	if stride < 2 || len(src) < 2*stride {
		out := make([]byte, len(src))
		copy(out, src)
		return out
	}
	n := len(src) / stride * stride
	out := make([]byte, len(src))
	elems := n / stride
	for k := 0; k < stride; k++ {
		lane := out[k*elems : (k+1)*elems]
		for i := 0; i < elems; i++ {
			lane[i] = src[i*stride+k]
		}
	}
	copy(out[n:], src[n:])
	return out
}

// UnshuffleBytes inverts ShuffleBytes for the same stride.
func UnshuffleBytes(src []byte, stride int) []byte {
	if stride < 2 || len(src) < 2*stride {
		out := make([]byte, len(src))
		copy(out, src)
		return out
	}
	n := len(src) / stride * stride
	out := make([]byte, len(src))
	elems := n / stride
	for k := 0; k < stride; k++ {
		lane := src[k*elems : (k+1)*elems]
		for i := 0; i < elems; i++ {
			out[i*stride+k] = lane[i]
		}
	}
	copy(out[n:], src[n:])
	return out
}
