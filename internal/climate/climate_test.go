package climate

import (
	"math"
	"testing"

	"lossyckpt/internal/stats"
	"lossyckpt/internal/wavelet"
)

// testConfig returns a small, fast grid for unit tests.
func testConfig() Config {
	c := DefaultConfig()
	c.Nx, c.Nz, c.Nc = 64, 16, 2
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Nx: 2, Nz: 16, Nc: 2, Dt: 0.05},
		{Nx: 64, Nz: 2, Nc: 2, Dt: 0.05},
		{Nx: 64, Nz: 16, Nc: 0, Dt: 0.05},
		{Nx: 64, Nz: 16, Nc: 2, Dt: 0},
		{Nx: 64, Nz: 16, Nc: 2, Dt: 0.5},
		{Nx: 64, Nz: 16, Nc: 2, Dt: math.NaN()},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(testConfig()); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	for i, fa := range a.Fields() {
		fb := b.Fields()[i]
		if !fa.Field.Equal(fb.Field) {
			t.Errorf("field %s differs between identically seeded models", fa.Name)
		}
	}
	c3 := testConfig()
	c3.Seed = 999
	c, _ := New(c3)
	if a.Field("temperature").Equal(c.Field("temperature")) {
		t.Error("different seeds produced identical temperature")
	}
}

func TestDeterministicEvolution(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	a.StepN(50)
	b.StepN(50)
	for i, fa := range a.Fields() {
		if !fa.Field.Equal(b.Fields()[i].Field) {
			t.Errorf("field %s diverged between identical runs", fa.Name)
		}
	}
}

func TestStabilityLongRun(t *testing.T) {
	m, _ := New(testConfig())
	m.StepN(2000)
	if !m.Stable() {
		t.Fatal("model blew up within 2000 steps")
	}
	// Temperature must stay in a physically plausible band.
	min, max := m.Field("temperature").MinMax()
	if min < 100 || max > 500 {
		t.Errorf("temperature range [%g, %g] implausible", min, max)
	}
}

func TestFieldsEvolve(t *testing.T) {
	m, _ := New(testConfig())
	before := m.Field("temperature").Clone()
	m.StepN(10)
	if m.Field("temperature").Equal(before) {
		t.Error("temperature did not change over 10 steps")
	}
	if m.StepCount() != 10 {
		t.Errorf("StepCount = %d, want 10", m.StepCount())
	}
}

func TestFieldsAreSmooth(t *testing.T) {
	// The substitution argument (DESIGN.md §2) hinges on this: after the
	// wavelet transform, high-frequency energy must concentrate near zero
	// — the property the paper exploits in NICAM data.
	m, _ := New(testConfig())
	m.StepN(100)
	for _, nf := range m.Fields() {
		f := nf.Field.Clone()
		p, err := wavelet.NewPlan(f.Shape(), 1, wavelet.Haar)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Transform(f); err != nil {
			t.Fatal(err)
		}
		high, _ := p.GatherHigh(f, nil)
		h, _ := stats.NewHistogram(high, 64)
		// A uniform distribution over 64 bins would put ~0.016 in the
		// fullest bin; 0.3 indicates a strong near-zero spike.
		if frac := h.SpikeFraction(); frac < 0.3 {
			t.Errorf("%s: high-band spike fraction %.2f < 0.3; field not smooth enough", nf.Name, frac)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := New(testConfig())
	a.StepN(20)
	b := a.Clone()
	if b.StepCount() != 20 {
		t.Errorf("clone StepCount = %d, want 20", b.StepCount())
	}
	a.StepN(10)
	if a.Field("temperature").Equal(b.Field("temperature")) {
		t.Error("stepping the original changed the clone")
	}
	// Clone advanced by the same 10 steps must match the original exactly.
	b.StepN(10)
	for i, fa := range a.Fields() {
		if !fa.Field.Equal(b.Fields()[i].Field) {
			t.Errorf("field %s: clone evolution diverged from original", fa.Name)
		}
	}
}

func TestRestartFromExactStateIsSeamless(t *testing.T) {
	// Restoring the exact field values + step counter must reproduce the
	// uninterrupted run bit for bit (the lossless-checkpoint sanity case).
	ref, _ := New(testConfig())
	ref.StepN(100)
	snapshot := ref.Clone()
	ref.StepN(100)

	re, _ := New(testConfig())
	// Simulate restore: copy snapshot state into a fresh model.
	for i, nf := range re.Fields() {
		copy(nf.Field.Data(), snapshot.Fields()[i].Field.Data())
	}
	re.SetStepCount(snapshot.StepCount())
	re.StepN(100)
	for i, fr := range ref.Fields() {
		if !fr.Field.Equal(re.Fields()[i].Field) {
			t.Errorf("field %s: exact restart diverged", fr.Name)
		}
	}
}

func TestPerturbationGrowsSlowly(t *testing.T) {
	// A tiny state perturbation (as lossy restore introduces) must neither
	// vanish to zero influence nor explode — Fig. 10's regime.
	a, _ := New(testConfig())
	a.StepN(100)
	b := a.Clone()
	tf := b.Field("temperature")
	for i := range tf.Data() {
		tf.Data()[i] += 1e-3 * math.Sin(float64(i))
	}
	s0, _ := stats.Compare(a.Field("temperature").Data(), b.Field("temperature").Data())
	a.StepN(300)
	b.StepN(300)
	s1, _ := stats.Compare(a.Field("temperature").Data(), b.Field("temperature").Data())
	if s1.AvgPct <= 0 {
		t.Error("perturbation vanished entirely")
	}
	if s1.AvgPct > 100*s0.AvgPct {
		t.Errorf("perturbation exploded: %.6f%% -> %.6f%%", s0.AvgPct, s1.AvgPct)
	}
}

func TestFieldAccessors(t *testing.T) {
	m, _ := New(testConfig())
	if len(m.Fields()) != 5 {
		t.Errorf("Fields() returned %d arrays, want 5", len(m.Fields()))
	}
	names := []string{"pressure", "temperature", "wind_u", "wind_v", "wind_w"}
	for _, n := range names {
		if m.Field(n) == nil {
			t.Errorf("Field(%q) = nil", n)
		}
	}
	if m.Field("humidity") != nil {
		t.Error("unknown field name returned non-nil")
	}
	if got := m.Config().Nx; got != 64 {
		t.Errorf("Config().Nx = %d", got)
	}
}

func TestPaperShapeBytes(t *testing.T) {
	// Default config must produce the paper's ~1.5 MB arrays.
	cfg := DefaultConfig()
	if cfg.Nx != 1156 || cfg.Nz != 82 || cfg.Nc != 2 {
		t.Fatalf("default grid %dx%dx%d, want 1156x82x2", cfg.Nx, cfg.Nz, cfg.Nc)
	}
	bytes := cfg.Nx * cfg.Nz * cfg.Nc * 8
	if bytes < 1400000 || bytes > 1600000 {
		t.Errorf("array size %d bytes, want ~1.5 MB", bytes)
	}
}

func TestComponentsAreCoupledButDistinct(t *testing.T) {
	m, _ := New(testConfig())
	m.StepN(50)
	tf := m.Field("temperature")
	same := true
	for i := 0; i < 64 && same; i++ {
		for k := 0; k < 16 && same; k++ {
			if tf.At(i, k, 0) != tf.At(i, k, 1) {
				same = false
			}
		}
	}
	if same {
		t.Error("the two components are identical; nc axis is degenerate")
	}
}
