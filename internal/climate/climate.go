// Package climate is this repository's stand-in for NICAM, the global
// cloud-resolving climate model whose checkpoint arrays Sasaki et al.
// (IPDPS 2015) compress. NICAM itself is a large proprietary-scale Fortran
// code; what the compressor actually consumes is its checkpoint state —
// smooth, spatially correlated 3D double-precision arrays of pressure,
// temperature and wind velocity of shape 1156×82×2 (~1.5 MB each, §IV-A)
// that evolve over time steps.
//
// This package produces exactly that class of data: a deterministic,
// seeded 3D atmospheric solver on the paper's grid shape with five
// physical fields (pressure, temperature, and the u/v/w wind components),
// integrating a damped compressible advection–diffusion system with a
// zonal jet, Coriolis-like rotation, buoyancy coupling and periodic
// thermal forcing. The dynamics are mildly nonlinear, so two runs whose
// states differ slightly (e.g. after a lossy restart) drift apart slowly —
// the behaviour the paper's Fig. 10 studies — while explicit diffusion and
// upwind advection keep the integration stable for thousands of steps.
//
// The grid is periodic along x (index i, the 1156 direction), bounded
// along z (index k, the 82 vertical levels), and carries nc=2 weakly
// coupled components along the third axis, matching the paper's array
// shape. See DESIGN.md §2 for the substitution argument.
package climate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lossyckpt/internal/grid"
)

// Paper-shaped grid defaults (§IV-A: arrays of 1156×82×2 doubles).
const (
	DefaultNx = 1156
	DefaultNz = 82
	DefaultNc = 2
)

// ErrConfig indicates an invalid model configuration.
var ErrConfig = errors.New("climate: invalid configuration")

// Config parameterizes the model. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	Nx, Nz, Nc int     // grid extents (x, z, component)
	Seed       int64   // deterministic initial-condition seed
	Dt         float64 // time step (model units)
}

// DefaultConfig returns the paper-shaped configuration.
func DefaultConfig() Config {
	return Config{Nx: DefaultNx, Nz: DefaultNz, Nc: DefaultNc, Seed: 2015, Dt: 0.05}
}

func (c Config) validate() error {
	if c.Nx < 4 || c.Nz < 4 || c.Nc < 1 {
		return fmt.Errorf("%w: grid %dx%dx%d (need ≥4x4x1)", ErrConfig, c.Nx, c.Nz, c.Nc)
	}
	if !(c.Dt > 0) || c.Dt > 0.2 {
		return fmt.Errorf("%w: dt %g (need 0 < dt ≤ 0.2 for stability)", ErrConfig, c.Dt)
	}
	return nil
}

// Physical constants of the toy dynamics (model units).
const (
	t0        = 288.0 // surface base temperature
	lapse     = 0.65  // vertical temperature lapse per level fraction
	p0        = 1000.0
	scaleH    = 0.35 // pressure scale height as a fraction of Nz
	kappa     = 0.08 // thermal diffusivity
	nu        = 0.08 // viscosity
	coriolis  = 0.02
	buoyancy  = 0.004
	soundSq   = 0.3  // c² of the damped acoustic coupling
	pressDamp = 0.01 // pressure relaxation toward base state
	wDamp     = 0.05 // vertical-velocity damping
	heatAmp   = 0.8  // thermal forcing amplitude
	heatOmega = 0.01 // thermal forcing angular frequency per step
	couple    = 0.02 // inter-component relaxation
)

// Model is one climate-model instance. It is not safe for concurrent use.
type Model struct {
	cfg  Config
	step int

	// The five checkpointable physical fields (paper §IV-A: "3D arrays of
	// pressure, temperature and wind velocity").
	pres, temp, u, v, w *grid.Field

	// Scratch buffers reused across steps.
	scratch [5]*grid.Field

	// Precomputed base profiles.
	tBase, pBase []float64
}

// New constructs a model with smooth, seeded initial conditions.
func New(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg}
	shape := []int{cfg.Nx, cfg.Nz, cfg.Nc}
	var err error
	for _, fp := range []**grid.Field{&m.pres, &m.temp, &m.u, &m.v, &m.w} {
		if *fp, err = grid.New(shape...); err != nil {
			return nil, err
		}
	}
	for i := range m.scratch {
		if m.scratch[i], err = grid.New(shape...); err != nil {
			return nil, err
		}
	}
	m.tBase = make([]float64, cfg.Nz)
	m.pBase = make([]float64, cfg.Nz)
	for k := 0; k < cfg.Nz; k++ {
		zf := float64(k) / float64(cfg.Nz)
		m.tBase[k] = t0 - lapse*100*zf
		m.pBase[k] = p0 * math.Exp(-zf/scaleH)
	}
	m.initialize()
	return m, nil
}

// initialize fills the fields with a smooth seeded state: base profiles
// plus a superposition of low-wavenumber modes and a zonal jet.
func (m *Model) initialize() {
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	nm := 6 // number of random modes
	type mode struct{ ax, kx, kz, ph float64 }
	modes := make([]mode, nm)
	for i := range modes {
		modes[i] = mode{
			ax: rng.Float64()*2 + 0.5,
			kx: float64(rng.Intn(4) + 1),
			kz: float64(rng.Intn(3) + 1),
			ph: rng.Float64() * 2 * math.Pi,
		}
	}
	nx, nz, nc := m.cfg.Nx, m.cfg.Nz, m.cfg.Nc
	jetCenter := 0.6 * float64(nz)
	jetWidth := 0.15 * float64(nz)
	for i := 0; i < nx; i++ {
		xf := 2 * math.Pi * float64(i) / float64(nx)
		for k := 0; k < nz; k++ {
			zf := math.Pi * float64(k) / float64(nz)
			var pert float64
			for _, md := range modes {
				pert += md.ax * math.Sin(md.kx*xf+md.ph) * math.Cos(md.kz*zf)
			}
			jet := 8 * math.Exp(-sq((float64(k)-jetCenter)/jetWidth))
			for c := 0; c < nc; c++ {
				cph := float64(c) * 0.3 // slight per-component phase shift
				m.temp.Set(m.tBase[k]+pert*math.Cos(cph)+0.01*rng.NormFloat64(), i, k, c)
				m.pres.Set(m.pBase[k]+0.5*pert+0.005*rng.NormFloat64(), i, k, c)
				m.u.Set(jet+0.3*math.Sin(xf+cph)+0.005*rng.NormFloat64(), i, k, c)
				m.v.Set(0.3*math.Cos(2*xf-cph)+0.002*rng.NormFloat64(), i, k, c)
				m.w.Set(0.01*math.Sin(3*xf)+0.0001*rng.NormFloat64(), i, k, c)
			}
		}
	}
}

func sq(x float64) float64 { return x * x }

// Step advances the model by one time step.
func (m *Model) Step() {
	nx, nz, nc := m.cfg.Nx, m.cfg.Nz, m.cfg.Nc
	dt := m.cfg.Dt
	dp, dT, du, dv, dw := m.scratch[0], m.scratch[1], m.scratch[2], m.scratch[3], m.scratch[4]

	phase := heatOmega * float64(m.step)
	for c := 0; c < nc; c++ {
		cph := float64(c) * 0.3
		for i := 0; i < nx; i++ {
			xf := 2 * math.Pi * float64(i) / float64(nx)
			heatX := heatAmp * math.Sin(xf+phase+cph)
			for k := 0; k < nz; k++ {
				uu := m.u.At(i, k, c)
				ww := m.w.At(i, k, c)

				// Thermal forcing decays with height.
				q := heatX * math.Exp(-3*float64(k)/float64(nz))

				lapT := m.laplacian(m.temp, i, k, c)
				lapU := m.laplacian(m.u, i, k, c)
				lapV := m.laplacian(m.v, i, k, c)
				lapW := m.laplacian(m.w, i, k, c)

				advT := uu*m.ddxUpwind(m.temp, i, k, c, uu) + ww*m.ddzUpwind(m.temp, i, k, c, ww)
				advU := uu*m.ddxUpwind(m.u, i, k, c, uu) + ww*m.ddzUpwind(m.u, i, k, c, ww)
				advV := uu*m.ddxUpwind(m.v, i, k, c, uu) + ww*m.ddzUpwind(m.v, i, k, c, ww)
				advW := uu*m.ddxUpwind(m.w, i, k, c, uu) + ww*m.ddzUpwind(m.w, i, k, c, ww)

				dT.Set(-advT+kappa*lapT+q+m.coupleTerm(m.temp, i, k, c), i, k, c)
				dpdx := m.ddxCentral(m.pres, i, k, c)
				du.Set(-advU+nu*lapU-0.001*dpdx+coriolis*m.v.At(i, k, c), i, k, c)
				dv.Set(-advV+nu*lapV-coriolis*uu, i, k, c)
				dw.Set(-advW+nu*lapW+buoyancy*(m.temp.At(i, k, c)-m.tBase[k])-wDamp*ww, i, k, c)

				div := m.ddxCentral(m.u, i, k, c) + m.ddzCentral(m.w, i, k, c)
				dp.Set(-soundSq*div-pressDamp*(m.pres.At(i, k, c)-m.pBase[k]), i, k, c)
			}
		}
	}
	axpy(m.temp, dT, dt)
	axpy(m.u, du, dt)
	axpy(m.v, dv, dt)
	axpy(m.w, dw, dt)
	axpy(m.pres, dp, dt)
	m.step++
}

// axpy: f += a*g, elementwise.
func axpy(f, g *grid.Field, a float64) {
	fd, gd := f.Data(), g.Data()
	for i := range fd {
		fd[i] += a * gd[i]
	}
}

// StepN advances the model by n steps.
func (m *Model) StepN(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// --- finite-difference helpers (periodic x, clamped z) -------------------

func (m *Model) at(f *grid.Field, i, k, c int) float64 {
	nx, nz := m.cfg.Nx, m.cfg.Nz
	if i < 0 {
		i += nx
	} else if i >= nx {
		i -= nx
	}
	if k < 0 {
		k = 0
	} else if k >= nz {
		k = nz - 1
	}
	return f.At(i, k, c)
}

func (m *Model) ddxCentral(f *grid.Field, i, k, c int) float64 {
	return (m.at(f, i+1, k, c) - m.at(f, i-1, k, c)) / 2
}

func (m *Model) ddzCentral(f *grid.Field, i, k, c int) float64 {
	return (m.at(f, i, k+1, c) - m.at(f, i, k-1, c)) / 2
}

// ddxUpwind returns the upwind x-derivative for advection velocity vel.
func (m *Model) ddxUpwind(f *grid.Field, i, k, c int, vel float64) float64 {
	if vel >= 0 {
		return f.At(i, k, c) - m.at(f, i-1, k, c)
	}
	return m.at(f, i+1, k, c) - f.At(i, k, c)
}

func (m *Model) ddzUpwind(f *grid.Field, i, k, c int, vel float64) float64 {
	if vel >= 0 {
		return f.At(i, k, c) - m.at(f, i, k-1, c)
	}
	return m.at(f, i, k+1, c) - f.At(i, k, c)
}

func (m *Model) laplacian(f *grid.Field, i, k, c int) float64 {
	return m.at(f, i+1, k, c) + m.at(f, i-1, k, c) +
		m.at(f, i, k+1, c) + m.at(f, i, k-1, c) -
		4*f.At(i, k, c)
}

// coupleTerm relaxes a field toward the mean of the other components,
// giving the nc axis real (but weak) dynamics.
func (m *Model) coupleTerm(f *grid.Field, i, k, c int) float64 {
	nc := m.cfg.Nc
	if nc < 2 {
		return 0
	}
	var mean float64
	for cc := 0; cc < nc; cc++ {
		mean += f.At(i, k, cc)
	}
	mean /= float64(nc)
	return couple * (mean - f.At(i, k, c))
}

// --- state access ---------------------------------------------------------

// NamedField couples a checkpoint array with its variable name.
type NamedField struct {
	Name  string
	Field *grid.Field
}

// Fields returns the five checkpointable arrays. The fields are the live
// model state: mutating them mutates the model (which is exactly what a
// checkpoint restore does).
func (m *Model) Fields() []NamedField {
	return []NamedField{
		{"pressure", m.pres},
		{"temperature", m.temp},
		{"wind_u", m.u},
		{"wind_v", m.v},
		{"wind_w", m.w},
	}
}

// Field returns the named field, or nil if unknown.
func (m *Model) Field(name string) *grid.Field {
	for _, nf := range m.Fields() {
		if nf.Name == name {
			return nf.Field
		}
	}
	return nil
}

// StepCount returns the number of completed steps.
func (m *Model) StepCount() int { return m.step }

// SetStepCount overrides the step counter; checkpoint restore uses it so
// time-dependent forcing resumes at the right phase.
func (m *Model) SetStepCount(n int) { m.step = n }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Clone returns a deep copy of the model (state and step counter).
func (m *Model) Clone() *Model {
	cp := &Model{
		cfg:   m.cfg,
		step:  m.step,
		pres:  m.pres.Clone(),
		temp:  m.temp.Clone(),
		u:     m.u.Clone(),
		v:     m.v.Clone(),
		w:     m.w.Clone(),
		tBase: append([]float64(nil), m.tBase...),
		pBase: append([]float64(nil), m.pBase...),
	}
	for i := range cp.scratch {
		cp.scratch[i] = m.scratch[i].Clone()
	}
	return cp
}

// Stable reports whether every field value is finite — the integration's
// sanity check.
func (m *Model) Stable() bool {
	for _, nf := range m.Fields() {
		for _, v := range nf.Field.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}
