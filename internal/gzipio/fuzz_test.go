package gzipio

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecompressMembers hardens the multi-member decoder: arbitrary
// bytes through DecompressMembersParallel (and the serial DecompressAuto
// it falls back to) must error out cleanly — no panics, no unbounded
// allocations from lying length fields — and whenever both decoders
// accept an input they must agree on the output.
func FuzzDecompressMembers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x78, 0x9c})

	data := bytes.Repeat([]byte("wavelet coefficients "), 3000)
	res, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 16 << 10, Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	good := res.Compressed
	f.Add(good)

	// Truncated members: mid-header, mid-payload, mid-trailer.
	for _, cut := range []int{memberHeaderLen / 2, len(good) / 3, len(good) - 3} {
		f.Add(good[:cut])
	}
	// Garbage between members.
	if members, ok := splitMembers(good); ok && len(members) >= 2 {
		var mixed []byte
		mixed = append(mixed, members[0]...)
		mixed = append(mixed, 0x00, 0xff, 0x13, 0x37)
		mixed = append(mixed, members[1]...)
		f.Add(mixed)
	}
	// Declared-size lies: member length subfield and ISIZE trailer.
	lieLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(lieLen[memberLenOff:], 0xfffffff0)
	f.Add(lieLen)
	lieSize := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(lieSize[len(lieSize)-4:], 0xfffffff0)
	f.Add(lieSize)
	// Zlib parallel output too.
	zres, err := CompressParallel(data, Default, FormatZlib, ParallelOptions{BlockSize: 16 << 10})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(zres.Compressed)

	f.Fuzz(func(t *testing.T, in []byte) {
		par, perr := DecompressMembersParallel(in, 2)
		ser, serr := DecompressAuto(in)
		if perr == nil && serr == nil && !bytes.Equal(par, ser) {
			t.Fatalf("decoder disagreement: parallel %d bytes, serial %d bytes", len(par), len(ser))
		}
	})
}
