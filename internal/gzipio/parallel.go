// parallel.go is the pigz-style sharded DEFLATE engine. The paper's own
// timing breakdown (§III-D, Fig. 10) shows the gzip stage dominating
// compression cost, and the serial CompressFormat runs one DEFLATE over
// the whole buffer no matter how many cores are idle. CompressParallel
// shards the input into fixed-size blocks and compresses each block
// independently on a bounded worker pool:
//
//   - gzip framing: every block becomes its own RFC 1952 member (the RFC
//     explicitly allows concatenated members, and stock gzip/zcat accept
//     them). Each member carries an extra subfield ("LK") recording the
//     member's total byte length, so DecompressMembersParallel can jump
//     member to member without inflating — the same trick BGZF uses,
//     with a u32 so blocks are not capped at 64 KiB.
//   - zlib framing: blocks are raw DEFLATE streams terminated by a sync
//     flush (an empty stored block, which is byte-aligned and non-final),
//     concatenated behind a single zlib header and closed by one final
//     empty block plus the whole-input Adler-32 — one standard zlib
//     stream any stock inflater consumes.
//
// Both layouts are deterministic: the output depends only on (block
// size, level, format), never on the worker count or scheduling, so the
// parallel path is byte-stable and drop-in for the serial one.
package gzipio

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/adler32"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lossyckpt/internal/obs"
)

// DefaultBlockSize is the sharding granularity of CompressParallel when
// ParallelOptions.BlockSize is zero: 1 MiB balances per-member overhead
// (28 bytes of framing and a reset dictionary per block) against
// scheduling slack on many-core hosts.
const DefaultBlockSize = 1 << 20

// Metric names recorded by the parallel engine.
const (
	// MetricMembers counts emitted/decoded multi-member blocks, labeled
	// op=compress|decompress.
	MetricMembers = "lossyckpt_gzip_members_total"
	// MetricBlockSeconds accumulates per-block DEFLATE CPU seconds across
	// all workers, labeled op=compress|decompress.
	MetricBlockSeconds = "lossyckpt_gzip_block_seconds_total"
	// MetricParallelOps counts CompressParallel/DecompressMembersParallel
	// calls, labeled op=compress|decompress.
	MetricParallelOps = "lossyckpt_gzip_parallel_ops_total"
)

// ParallelOptions tunes CompressParallel.
type ParallelOptions struct {
	// BlockSize is the shard size in bytes; 0 means DefaultBlockSize.
	// The output is byte-stable for a fixed (BlockSize, level, format).
	BlockSize int
	// Workers bounds the compression pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Observer receives member counts and per-block DEFLATE seconds; nil
	// falls back to the process default registry (usually a no-op).
	Observer *obs.Registry
}

func (po ParallelOptions) withDefaults() ParallelOptions {
	if po.BlockSize <= 0 {
		po.BlockSize = DefaultBlockSize
	}
	if po.Workers <= 0 {
		po.Workers = runtime.GOMAXPROCS(0)
	}
	if po.Observer == nil {
		po.Observer = obs.Default()
	}
	return po
}

// Member framing constants for the gzip format. A crafted member is
//
//	10-byte gzip header (FLG=FEXTRA, MTIME=0, OS=255)
//	2-byte XLEN (=8) + subfield: 'L' 'K', len 4, u32 member length
//	raw DEFLATE payload
//	u32 CRC-32 + u32 ISIZE trailer
//
// so the fixed overhead is memberOverhead bytes per block and the u32 at
// memberLenOff holds the total member length, payload included.
const (
	memberHeaderLen = 20
	memberTrailer   = 8
	memberOverhead  = memberHeaderLen + memberTrailer
	memberLenOff    = 16
)

// maxDeflateRatio bounds DEFLATE expansion (1032:1, the format's hard
// limit) so declared-size lies in member trailers cannot force huge
// allocations before inflation runs dry.
const maxDeflateRatio = 1032

// CompressParallel is CompressFormat(mode=InMemory) with the DEFLATE
// stage sharded over a bounded worker pool. The output is byte-identical
// for every worker count at fixed (BlockSize, level, format); it differs
// from the serial single-member stream, but DecompressAuto consumes
// both. The gzip framing additionally round-trips through
// DecompressMembersParallel.
func CompressParallel(data []byte, level int, format Format, po ParallelOptions) (Result, error) {
	if format != FormatGzip && format != FormatZlib {
		return Result{}, fmt.Errorf("gzipio: unknown format %d", int(format))
	}
	po = po.withDefaults()
	start := time.Now()

	// ceil-divide; zero-length input still emits one (empty) block so the
	// output is a well-formed stream.
	nBlocks := (len(data) + po.BlockSize - 1) / po.BlockSize
	if nBlocks == 0 {
		nBlocks = 1
	}
	workers := po.Workers
	if workers > nBlocks {
		workers = nBlocks
	}

	blocks := make([][]byte, nBlocks)
	errs := make([]error, nBlocks)
	var blockSeconds atomic.Int64 // nanoseconds summed across workers
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * po.BlockSize
				hi := lo + po.BlockSize
				if hi > len(data) {
					hi = len(data)
				}
				t0 := time.Now()
				switch format {
				case FormatGzip:
					blocks[b], errs[b] = gzipMember(data[lo:hi], level)
				default:
					blocks[b], errs[b] = zlibBlock(data[lo:hi], level)
				}
				blockSeconds.Add(int64(time.Since(t0)))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// Deterministic reassembly in block order.
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	var out []byte
	if format == FormatZlib {
		tail, err := flateFinalTail(level)
		if err != nil {
			return Result{}, err
		}
		out = make([]byte, 0, 2+total+len(tail)+4)
		out = append(out, zlibHeader(level)...)
		for _, b := range blocks {
			out = append(out, b...)
		}
		out = append(out, tail...)
		out = binary.BigEndian.AppendUint32(out, adler32.Checksum(data))
	} else {
		out = make([]byte, 0, total)
		for _, b := range blocks {
			out = append(out, b...)
		}
	}

	if o := po.Observer; o != nil {
		o.Counter(MetricParallelOps, "op", "compress").Inc()
		o.Counter(MetricMembers, "op", "compress").Add(float64(nBlocks))
		o.Counter(MetricBlockSeconds, "op", "compress").Add(time.Duration(blockSeconds.Load()).Seconds())
	}
	return Result{Compressed: out, Gzip: time.Since(start)}, nil
}

// gzipMember compresses one block into a self-contained gzip member with
// the LK length subfield.
func gzipMember(block []byte, level int) ([]byte, error) {
	var payload bytes.Buffer
	fw, pool, err := getDeflateWriter(formatFlate, level, &payload)
	if err != nil {
		return nil, fmt.Errorf("gzipio: flate: %w", err)
	}
	if _, err := fw.Write(block); err != nil {
		return nil, fmt.Errorf("gzipio: block compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("gzipio: block close: %w", err)
	}
	pool.Put(fw)

	memberLen := memberOverhead + payload.Len()
	out := make([]byte, 0, memberLen)
	out = append(out,
		0x1f, 0x8b, // magic
		8,          // CM: DEFLATE
		0x04,       // FLG: FEXTRA only
		0, 0, 0, 0, // MTIME: zero for determinism
		xfl(level),
		0xff, // OS: unknown
		8, 0, // XLEN
		'L', 'K', 4, 0, // subfield id + length
	)
	out = binary.LittleEndian.AppendUint32(out, uint32(memberLen))
	out = append(out, payload.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(block))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(block)))
	return out, nil
}

// xfl mirrors the stdlib gzip XFL convention: 2 for maximum compression,
// 4 for fastest.
func xfl(level int) byte {
	switch level {
	case gzip.BestCompression:
		return 2
	case gzip.BestSpeed, gzip.HuffmanOnly:
		return 4
	default:
		return 0
	}
}

// zlibBlock compresses one block into a raw DEFLATE fragment terminated
// by a sync flush: byte-aligned, non-final, safe to concatenate.
func zlibBlock(block []byte, level int) ([]byte, error) {
	var payload bytes.Buffer
	fw, pool, err := getDeflateWriter(formatFlate, level, &payload)
	if err != nil {
		return nil, fmt.Errorf("gzipio: flate: %w", err)
	}
	if _, err := fw.Write(block); err != nil {
		return nil, fmt.Errorf("gzipio: block compress: %w", err)
	}
	if err := fw.(*flate.Writer).Flush(); err != nil {
		return nil, fmt.Errorf("gzipio: block flush: %w", err)
	}
	// The writer was flushed, not closed; Reset on reuse discards the
	// open stream state, so pooling it back is safe.
	pool.Put(fw)
	return payload.Bytes(), nil
}

// zlibHeader builds the RFC 1950 two-byte header exactly as compress/zlib
// writes it for the given level (CMF 0x78, FLEVEL by level band, FCHECK
// mod-31 correction).
func zlibHeader(level int) []byte {
	h := [2]byte{0x78, 0}
	switch level {
	case -2, 0, 1:
		h[1] = 0 << 6
	case 2, 3, 4, 5:
		h[1] = 1 << 6
	case 6, -1:
		h[1] = 2 << 6
	default:
		h[1] = 3 << 6
	}
	h[1] += uint8(31 - (uint16(h[0])<<8+uint16(h[1]))%31)
	return h[:]
}

// flateTails caches, per level, the bytes a flate.Writer emits when
// closing an empty stream: one final empty block, the terminator the
// assembled zlib stream needs after the flushed (non-final) blocks.
var flateTails sync.Map // int -> []byte

func flateFinalTail(level int) ([]byte, error) {
	if t, ok := flateTails.Load(level); ok {
		return t.([]byte), nil
	}
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("gzipio: flate: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("gzipio: flate close: %w", err)
	}
	tail := append([]byte(nil), buf.Bytes()...)
	flateTails.Store(level, tail)
	return tail, nil
}

// splitMembers scans a gzip stream for the crafted member layout and
// returns the per-member slices (aliasing data). ok is false when any
// member lacks the LK length subfield or the framing does not add up —
// the caller then falls back to serial decoding, which handles foreign
// gzip streams.
func splitMembers(data []byte) (members [][]byte, ok bool) {
	pos := 0
	for pos < len(data) {
		rest := data[pos:]
		if len(rest) < memberHeaderLen ||
			rest[0] != 0x1f || rest[1] != 0x8b || rest[2] != 8 || rest[3] != 0x04 ||
			rest[10] != 8 || rest[11] != 0 ||
			rest[12] != 'L' || rest[13] != 'K' || rest[14] != 4 || rest[15] != 0 {
			return nil, false
		}
		memberLen := int(binary.LittleEndian.Uint32(rest[memberLenOff:]))
		if memberLen < memberOverhead || memberLen > len(rest) {
			return nil, false
		}
		members = append(members, rest[:memberLen])
		pos += memberLen
	}
	return members, len(members) > 0
}

// DecompressMembersParallel inflates a multi-member gzip stream produced
// by CompressParallel on a bounded worker pool, decoding members
// concurrently and reassembling in order. Streams without the member
// length subfield (foreign gzip, zlib, serial output) fall back to the
// serial DecompressAuto — the function accepts everything DecompressAuto
// does. workers 0 means GOMAXPROCS.
func DecompressMembersParallel(data []byte, workers int) ([]byte, error) {
	members, ok := splitMembers(data)
	if !ok {
		return DecompressAuto(data)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(members) {
		workers = len(members)
	}
	start := time.Now()

	outs := make([][]byte, len(members))
	errs := make([]error, len(members))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= len(members) {
					return
				}
				outs[m], errs[m] = inflateMember(members[m])
			}
		}()
	}
	wg.Wait()
	for m, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("gzipio: member %d: %w", m, err)
		}
	}

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]byte, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	if o := obs.Default(); o != nil {
		o.Counter(MetricParallelOps, "op", "decompress").Inc()
		o.Counter(MetricMembers, "op", "decompress").Add(float64(len(members)))
		o.Counter(MetricBlockSeconds, "op", "decompress").Add(time.Since(start).Seconds())
	}
	return out, nil
}

// inflateMember decodes one gzip member, using its ISIZE trailer as a
// capacity hint capped by the DEFLATE expansion bound so a lying trailer
// cannot force a huge allocation.
func inflateMember(member []byte) ([]byte, error) {
	hint := uint64(binary.LittleEndian.Uint32(member[len(member)-4:]))
	if bound := uint64(len(member)) * maxDeflateRatio; hint > bound {
		hint = bound
	}
	zr, err := gzip.NewReader(bytes.NewReader(member))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	buf := bytes.NewBuffer(make([]byte, 0, hint))
	if _, err := buf.ReadFrom(zr); err != nil {
		return nil, err
	}
	// Close reports any CRC-32/ISIZE mismatch the trailer check found.
	if err := zr.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
