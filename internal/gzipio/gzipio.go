// Package gzipio implements the final gzip stage of the compressor of
// Sasaki et al. (IPDPS 2015, §III-D): after the wavelet/quantize/encode
// stages format their output, the whole stream is DEFLATE-compressed.
//
// Two modes reproduce the paper's implementation detail (§IV-D): the
// paper's prototype wrote the formatted output to a temporary file and ran
// gzip on it through the filesystem, which dominated the measured
// compression time; the paper proposes in-memory zlib compression as the
// fix. TempFile mode really performs the temporary write+read so that cost
// exists and is measurable; InMemory mode is the proposed improvement. The
// ablation experiment X1 (see DESIGN.md) compares them.
package gzipio

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Format selects the DEFLATE container format.
type Format int

const (
	// FormatGzip wraps DEFLATE in the gzip framing (what the paper's
	// prototype produced via the gzip command).
	FormatGzip Format = iota
	// FormatZlib wraps DEFLATE in the lighter zlib framing — the exact
	// library the paper's §IV-D improvement names ("compressing the
	// temporary checkpoint data with zlib in memory").
	FormatZlib
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatGzip:
		return "gzip"
	case FormatZlib:
		return "zlib"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// CompressFormat is Compress with an explicit container format.
func CompressFormat(data []byte, level int, mode Mode, tmpDir string, format Format) (Result, error) {
	if format != FormatGzip && format != FormatZlib {
		return Result{}, fmt.Errorf("gzipio: unknown format %d", int(format))
	}
	return compress(data, level, mode, tmpDir, format)
}

// DecompressAuto inflates either framing, sniffing the two-byte magic
// (gzip: 0x1f 0x8b; zlib: 0x78 …). Both framings may be multi-member:
// gzip streams concatenate RFC 1952 members (what CompressParallel and
// `cat a.gz b.gz` produce) and are consumed member by member; zlib
// streams likewise decode back-to-back concatenations. Trailing bytes
// that are not another member are an error.
func DecompressAuto(data []byte) ([]byte, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		return Decompress(data)
	}
	// bytes.Reader implements io.ByteReader, so the flate decoder reads
	// exactly the stream's bytes and r lands on the next member boundary.
	r := bytes.NewReader(data)
	var out bytes.Buffer
	for {
		zr, err := zlib.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("gzipio: open zlib: %w", err)
		}
		if _, err := out.ReadFrom(zr); err != nil {
			zr.Close()
			return nil, fmt.Errorf("gzipio: inflate zlib: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("gzipio: verify zlib: %w", err)
		}
		if r.Len() == 0 {
			return out.Bytes(), nil
		}
	}
}

// Mode selects how the DEFLATE stage is executed.
type Mode int

const (
	// InMemory compresses directly from the input buffer (the paper's
	// proposed improvement).
	InMemory Mode = iota
	// TempFile first writes the input to a temporary file, reads it back,
	// and then compresses — reproducing the paper's prototype and its
	// "temporal file write for gzip" cost component (Fig. 9).
	TempFile
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case InMemory:
		return "in-memory"
	case TempFile:
		return "temp-file"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Result carries the compressed bytes and the timing breakdown the paper's
// Fig. 9 reports.
type Result struct {
	// Compressed is the gzip stream.
	Compressed []byte
	// TempWrite is the time spent writing and reading the temporary file
	// (zero in InMemory mode).
	TempWrite time.Duration
	// Gzip is the time spent in DEFLATE itself.
	Gzip time.Duration
}

// Compress runs the DEFLATE stage over data in gzip framing. level is a
// compress/gzip level (gzip.DefaultCompression if 0 is passed is NOT
// implied; pass gzip.DefaultCompression explicitly or use Default). tmpDir
// is used only in TempFile mode; empty means os.TempDir().
func Compress(data []byte, level int, mode Mode, tmpDir string) (Result, error) {
	return compress(data, level, mode, tmpDir, FormatGzip)
}

func compress(data []byte, level int, mode Mode, tmpDir string, format Format) (Result, error) {
	var res Result
	src := data
	if mode == TempFile {
		start := time.Now()
		f, err := os.CreateTemp(tmpDir, "lossyckpt-*.tmp")
		if err != nil {
			return res, fmt.Errorf("gzipio: temp file: %w", err)
		}
		name := f.Name()
		defer os.Remove(name)
		if _, err := f.Write(data); err != nil {
			f.Close()
			return res, fmt.Errorf("gzipio: temp write: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return res, fmt.Errorf("gzipio: temp sync: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return res, fmt.Errorf("gzipio: temp seek: %w", err)
		}
		back, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return res, fmt.Errorf("gzipio: temp read: %w", err)
		}
		src = back
		res.TempWrite = time.Since(start)
	}

	start := time.Now()
	var buf bytes.Buffer
	zw, pool, err := getDeflateWriter(format, level, &buf)
	if err != nil {
		return res, fmt.Errorf("gzipio: %w", err)
	}
	if _, err := zw.Write(src); err != nil {
		return res, fmt.Errorf("gzipio: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return res, fmt.Errorf("gzipio: close: %w", err)
	}
	pool.Put(zw)
	res.Gzip = time.Since(start)
	res.Compressed = buf.Bytes()
	return res, nil
}

// resetWriter is the common surface of gzip.Writer and zlib.Writer that
// pooling needs: both carry large DEFLATE state (hundreds of KB) that Reset
// makes reusable across compressions.
type resetWriter interface {
	io.WriteCloser
	Reset(io.Writer)
}

// formatFlate is an internal pool key for raw (headerless) DEFLATE
// writers, the per-block compressor of the parallel engine. It is not a
// valid Format for CompressFormat.
const formatFlate Format = -1

// deflatePools caches per-(format, level) sync.Pools of DEFLATE writers so
// the hot compression path stops allocating a fresh ~800 KB flate state on
// every call. A writer Put back after Close is reusable after Reset.
// Keying by both format and level matters: a flate state carries the level
// it was constructed with (Reset preserves it), so mixed-level callers
// sharing one pool would either thrash (discarding mismatched writers) or
// silently compress at the wrong level.
var deflatePools sync.Map // struct{format Format; level int} -> *sync.Pool

func deflatePool(format Format, level int) *sync.Pool {
	key := struct {
		format Format
		level  int
	}{format, level}
	p, ok := deflatePools.Load(key)
	if !ok {
		p, _ = deflatePools.LoadOrStore(key, &sync.Pool{})
	}
	return p.(*sync.Pool)
}

func getDeflateWriter(format Format, level int, dst io.Writer) (resetWriter, *sync.Pool, error) {
	pool := deflatePool(format, level)
	if w, ok := pool.Get().(resetWriter); ok {
		w.Reset(dst)
		return w, pool, nil
	}
	var w resetWriter
	var err error
	switch format {
	case formatFlate:
		w, err = flate.NewWriter(dst, level)
	case FormatZlib:
		w, err = zlib.NewWriterLevel(dst, level)
	default:
		w, err = gzip.NewWriterLevel(dst, level)
	}
	if err != nil {
		return nil, nil, err
	}
	return w, pool, nil
}

// AcquireWriter returns a pooled DEFLATE writer for (format, level),
// reset to write into dst. After Close, hand it back with ReleaseWriter
// so the ~800 KB flate state is reused. Callers that abandon a writer
// mid-stream must not release it.
func AcquireWriter(format Format, level int, dst io.Writer) (io.WriteCloser, error) {
	if format != FormatGzip && format != FormatZlib {
		return nil, fmt.Errorf("gzipio: unknown format %d", int(format))
	}
	w, _, err := getDeflateWriter(format, level, dst)
	return w, err
}

// ReleaseWriter returns a closed writer obtained from AcquireWriter to
// its (format, level) pool.
func ReleaseWriter(format Format, level int, w io.WriteCloser) {
	if rw, ok := w.(resetWriter); ok {
		deflatePool(format, level).Put(rw)
	}
}

// Default is the gzip level used throughout this repository, matching the
// gzip command-line default (-6).
const Default = gzip.DefaultCompression

// Decompress inflates a gzip stream produced by Compress (or any gzip
// stream).
func Decompress(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzipio: open: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("gzipio: inflate: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("gzipio: verify: %w", err)
	}
	return out, nil
}
