package gzipio

import (
	"bytes"
	"compress/gzip"
	"compress/zlib"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// testPayload builds a compressible but non-trivial byte stream.
func testPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	return data
}

func TestCompressParallelByteStableAcrossWorkers(t *testing.T) {
	data := testPayload(3<<20+12345, 1) // 3 blocks + ragged tail at default size
	for _, format := range []Format{FormatGzip, FormatZlib} {
		var want []byte
		for _, workers := range []int{1, 2, 3, 8} {
			res, err := CompressParallel(data, Default, format, ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", format, workers, err)
			}
			if want == nil {
				want = res.Compressed
				continue
			}
			if !bytes.Equal(want, res.Compressed) {
				t.Errorf("%v: workers=%d output differs from workers=1", format, workers)
			}
		}
	}
}

func TestCompressParallelRoundTripsBothDecoders(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"zero_length", 0},
		{"single_block", 100},
		{"exact_block", DefaultBlockSize},
		{"multi_block", 2*DefaultBlockSize + 777},
	}
	for _, format := range []Format{FormatGzip, FormatZlib} {
		for _, tc := range cases {
			data := testPayload(tc.n, 2)
			res, err := CompressParallel(data, Default, format, ParallelOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%v %s: %v", format, tc.name, err)
			}
			serial, err := DecompressAuto(res.Compressed)
			if err != nil {
				t.Fatalf("%v %s: serial decode: %v", format, tc.name, err)
			}
			if !bytes.Equal(serial, data) {
				t.Errorf("%v %s: serial decode mismatch", format, tc.name)
			}
			par, err := DecompressMembersParallel(res.Compressed, 3)
			if err != nil {
				t.Fatalf("%v %s: parallel decode: %v", format, tc.name, err)
			}
			if !bytes.Equal(par, data) {
				t.Errorf("%v %s: parallel decode mismatch", format, tc.name)
			}
		}
	}
}

func TestCompressParallelBlockSizeTunable(t *testing.T) {
	data := testPayload(300_000, 3)
	small, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 64 << 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 1 << 20, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms, ok := splitMembers(small.Compressed)
	if !ok || len(ms) != 5 {
		t.Errorf("64 KiB blocks: got %d members, ok=%v, want 5", len(ms), ok)
	}
	mb, ok := splitMembers(big.Compressed)
	if !ok || len(mb) != 1 {
		t.Errorf("1 MiB blocks: got %d members, ok=%v, want 1", len(mb), ok)
	}
	for _, out := range [][]byte{small.Compressed, big.Compressed} {
		dec, err := DecompressMembersParallel(out, 0)
		if err != nil || !bytes.Equal(dec, data) {
			t.Errorf("block-size round trip failed: %v", err)
		}
	}
}

// TestParallelGzipReadableByStockReader checks the multi-member output
// against the plain stdlib reader (the "stock gzip" contract: RFC 1952
// concatenated members).
func TestParallelGzipReadableByStockReader(t *testing.T) {
	data := testPayload(2<<20+99, 4)
	res, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(res.Compressed))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("stdlib gzip.Reader mismatch on multi-member stream")
	}
}

// TestParallelZlibReadableByStockReader checks the flush-boundary zlib
// assembly against the plain stdlib zlib reader as one stream.
func TestParallelZlibReadableByStockReader(t *testing.T) {
	data := testPayload(2<<20+99, 5)
	res, err := CompressParallel(data, Default, FormatZlib, ParallelOptions{BlockSize: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zlib.NewReader(bytes.NewReader(res.Compressed))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("adler verification: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Error("stdlib zlib.Reader mismatch on parallel stream")
	}
}

// TestInteropGzipCLI exercises both directions against the stock gzip
// command when present: our multi-member output must gunzip, and
// concatenated gzip-CLI members must DecompressAuto.
func TestInteropGzipCLI(t *testing.T) {
	gzipBin, err := exec.LookPath("gzip")
	if err != nil {
		t.Skip("gzip binary not installed")
	}
	dir := t.TempDir()
	data := testPayload(600_000, 6)

	// Direction 1: CompressParallel output through `gzip -d`.
	res, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "ours.gz")
	if err := os.WriteFile(gzPath, res.Compressed, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(gzipBin, "-t", gzPath).CombinedOutput(); err != nil {
		t.Fatalf("gzip -t rejected our multi-member stream: %v: %s", err, out)
	}
	var dec bytes.Buffer
	cmd := exec.Command(gzipBin, "-dc", gzPath)
	cmd.Stdout = &dec
	if err := cmd.Run(); err != nil {
		t.Fatalf("gzip -dc: %v", err)
	}
	if !bytes.Equal(dec.Bytes(), data) {
		t.Error("gzip CLI decoded different bytes")
	}

	// Direction 2: two gzip-CLI outputs concatenated into one stream.
	half := len(data) / 2
	var concatenated []byte
	for i, part := range [][]byte{data[:half], data[half:]} {
		p := filepath.Join(dir, "part"+string(rune('a'+i)))
		if err := os.WriteFile(p, part, 0o644); err != nil {
			t.Fatal(err)
		}
		if out, err := exec.Command(gzipBin, "-f", p).CombinedOutput(); err != nil {
			t.Fatalf("gzip: %v: %s", err, out)
		}
		gz, err := os.ReadFile(p + ".gz")
		if err != nil {
			t.Fatal(err)
		}
		concatenated = append(concatenated, gz...)
	}
	got, err := DecompressAuto(concatenated)
	if err != nil {
		t.Fatalf("DecompressAuto on concatenated CLI members: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("concatenated CLI members decoded different bytes")
	}
	// The foreign members carry no LK subfield; the parallel decoder must
	// fall back, not fail.
	got, err = DecompressMembersParallel(concatenated, 2)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("parallel decoder fallback on CLI members: %v", err)
	}
}

// TestDecompressAutoConcatenatedStdlibMembers is the pure-Go interop
// check (always runs): members produced by stock gzip.Writer / zlib
// Writer concatenated back to back.
func TestDecompressAutoConcatenatedStdlibMembers(t *testing.T) {
	data := testPayload(200_000, 7)
	half := len(data) / 2

	var gzCat bytes.Buffer
	for _, part := range [][]byte{data[:half], data[half:]} {
		zw := gzip.NewWriter(&gzCat)
		zw.Write(part)
		zw.Close()
	}
	got, err := DecompressAuto(gzCat.Bytes())
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("concatenated gzip members: %v", err)
	}

	var zlCat bytes.Buffer
	for _, part := range [][]byte{data[:half], data[half:]} {
		zw := zlib.NewWriter(&zlCat)
		zw.Write(part)
		zw.Close()
	}
	got, err = DecompressAuto(zlCat.Bytes())
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("concatenated zlib members: %v", err)
	}
}

func TestDecompressAutoZeroLengthAndSingleBlock(t *testing.T) {
	for _, format := range []Format{FormatGzip, FormatZlib} {
		empty, err := CompressFormat(nil, Default, InMemory, "", format)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecompressAuto(empty.Compressed)
		if err != nil {
			t.Fatalf("%v empty: %v", format, err)
		}
		if len(out) != 0 {
			t.Errorf("%v empty: got %d bytes", format, len(out))
		}

		one, err := CompressFormat([]byte("x"), Default, InMemory, "", format)
		if err != nil {
			t.Fatal(err)
		}
		out, err = DecompressAuto(one.Compressed)
		if err != nil || string(out) != "x" {
			t.Errorf("%v single byte: %q, %v", format, out, err)
		}
	}
}

// TestWriterPoolKeyedByFormatAndLevel is the mixed-level regression
// test: interleaved compressions at different levels and formats must
// produce exactly the bytes a fresh writer at that (format, level)
// produces — a pool shared across keys would reuse a writer carrying
// the wrong flate parameters.
func TestWriterPoolKeyedByFormatAndLevel(t *testing.T) {
	data := testPayload(128<<10, 8)
	type key struct {
		format Format
		level  int
	}
	keys := []key{
		{FormatGzip, gzip.BestSpeed},
		{FormatGzip, gzip.BestCompression},
		{FormatZlib, gzip.BestSpeed},
		{FormatZlib, gzip.BestCompression},
	}
	// Reference bytes from writers that never saw the pool.
	fresh := make(map[key][]byte)
	for _, k := range keys {
		var buf bytes.Buffer
		var w io.WriteCloser
		var err error
		if k.format == FormatZlib {
			w, err = zlib.NewWriterLevel(&buf, k.level)
		} else {
			w, err = gzip.NewWriterLevel(&buf, k.level)
		}
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()
		fresh[k] = append([]byte(nil), buf.Bytes()...)
	}
	// Interleave all keys repeatedly so pooled writers are reused across
	// calls; every reuse must stay at its own level.
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			res, err := CompressFormat(data, k.level, InMemory, "", k.format)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Compressed, fresh[k]) {
				t.Fatalf("round %d %v level %d: pooled output differs from fresh writer", round, k.format, k.level)
			}
		}
	}
	// Differently-leveled outputs must actually differ, or the check
	// above proves nothing.
	if bytes.Equal(fresh[keys[0]], fresh[keys[1]]) {
		t.Fatal("test payload compresses identically at levels 1 and 9; pick a different payload")
	}
}

// TestAcquireReleaseWriter covers the exported pooled-writer surface.
func TestAcquireReleaseWriter(t *testing.T) {
	data := testPayload(64<<10, 9)
	for _, format := range []Format{FormatGzip, FormatZlib} {
		for i := 0; i < 2; i++ { // second round reuses the pooled state
			var buf bytes.Buffer
			w, err := AcquireWriter(format, Default, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			ReleaseWriter(format, Default, w)
			out, err := DecompressAuto(buf.Bytes())
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("%v round %d: %v", format, i, err)
			}
		}
	}
	if _, err := AcquireWriter(Format(9), Default, io.Discard); err == nil {
		t.Error("AcquireWriter accepted an unknown format")
	}
}

// TestDecompressMembersParallelRejectsDamage spot-checks the decoder's
// error paths (the fuzz target explores these adversarially).
func TestDecompressMembersParallelRejectsDamage(t *testing.T) {
	data := testPayload(300_000, 10)
	res, err := CompressParallel(data, Default, FormatGzip, ParallelOptions{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	good := res.Compressed

	// Truncated final member.
	if _, err := DecompressMembersParallel(good[:len(good)-5], 2); err == nil {
		t.Error("truncated stream decoded without error")
	}
	// Flipped payload byte: the member CRC must catch it.
	mut := append([]byte(nil), good...)
	mut[len(mut)/2] ^= 0x40
	if out, err := DecompressMembersParallel(mut, 2); err == nil && bytes.Equal(out, data) {
		t.Error("corrupted stream decoded to original bytes")
	}
	// Garbage between members: splitMembers bails, serial fallback errors.
	members, ok := splitMembers(good)
	if !ok || len(members) < 2 {
		t.Fatal("expected multiple members")
	}
	var withGarbage []byte
	withGarbage = append(withGarbage, members[0]...)
	withGarbage = append(withGarbage, 0xde, 0xad, 0xbe, 0xef)
	withGarbage = append(withGarbage, members[1]...)
	if _, err := DecompressMembersParallel(withGarbage, 2); err == nil {
		t.Error("garbage between members decoded without error")
	}
}
