package gzipio

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"testing"
)

func TestRoundTripInMemory(t *testing.T) {
	data := bytes.Repeat([]byte("checkpoint data "), 1000)
	res, err := Compress(data, Default, InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compressed) >= len(data) {
		t.Errorf("redundant data did not compress: %d -> %d", len(data), len(res.Compressed))
	}
	if res.TempWrite != 0 {
		t.Errorf("in-memory mode reported temp-write time %v", res.TempWrite)
	}
	out, err := Decompress(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("round trip mismatch")
	}
}

func TestRoundTripTempFile(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4096)
	res, err := Compress(data, Default, TempFile, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.TempWrite <= 0 {
		t.Error("temp-file mode reported zero temp-write time")
	}
	out, err := Decompress(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("round trip mismatch")
	}
}

func TestModesProduceSameDecompressedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(rng.Intn(8)) // compressible
	}
	a, err := Compress(data, gzip.BestSpeed, InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(data, gzip.BestSpeed, TempFile, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	da, _ := Decompress(a.Compressed)
	db, _ := Decompress(b.Compressed)
	if !bytes.Equal(da, db) || !bytes.Equal(da, data) {
		t.Error("modes disagree after decompression")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Compress(nil, Default, InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res.Compressed)
	if err != nil || len(out) != 0 {
		t.Errorf("empty round trip: %v, %v", out, err)
	}
}

func TestBadLevel(t *testing.T) {
	if _, err := Compress([]byte("x"), 42, InMemory, ""); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress([]byte("not gzip at all")); err == nil {
		t.Error("non-gzip input accepted")
	}
	res, _ := Compress([]byte("hello world hello world"), Default, InMemory, "")
	trunc := res.Compressed[:len(res.Compressed)-4]
	if _, err := Decompress(trunc); err == nil {
		t.Error("truncated gzip accepted")
	}
}

func TestIncompressibleDataSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 32*1024)
	rng.Read(data)
	res, err := Compress(data, gzip.BestCompression, InMemory, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("random data round trip mismatch")
	}
}

func TestZlibFormatRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("zlib in memory "), 2048)
	res, err := CompressFormat(data, Default, InMemory, "", FormatZlib)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compressed) >= len(data) {
		t.Error("zlib did not compress")
	}
	out, err := DecompressAuto(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("zlib round trip mismatch")
	}
	// Plain Decompress must reject zlib framing.
	if _, err := Decompress(res.Compressed); err == nil {
		t.Error("gzip reader accepted zlib stream")
	}
}

func TestDecompressAutoHandlesGzip(t *testing.T) {
	data := []byte("auto-sniffing test payload, repeated repeated repeated")
	res, err := CompressFormat(data, Default, InMemory, "", FormatGzip)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecompressAuto(res.Compressed)
	if err != nil || !bytes.Equal(out, data) {
		t.Errorf("auto-decompress of gzip failed: %v", err)
	}
}

func TestZlibSmallerFramingThanGzip(t *testing.T) {
	data := bytes.Repeat([]byte{9, 9, 9, 9}, 1000)
	gz, err := CompressFormat(data, Default, InMemory, "", FormatGzip)
	if err != nil {
		t.Fatal(err)
	}
	zl, err := CompressFormat(data, Default, InMemory, "", FormatZlib)
	if err != nil {
		t.Fatal(err)
	}
	// zlib framing is 2+4 bytes vs gzip's 10+8.
	if len(zl.Compressed) >= len(gz.Compressed) {
		t.Errorf("zlib (%d) not smaller than gzip (%d)", len(zl.Compressed), len(gz.Compressed))
	}
}

func TestCompressFormatValidation(t *testing.T) {
	if _, err := CompressFormat([]byte("x"), Default, InMemory, "", Format(9)); err == nil {
		t.Error("unknown format accepted")
	}
	if Format(0).String() != "gzip" || Format(1).String() != "zlib" {
		t.Error("format names wrong")
	}
}

func TestDecompressAutoRejectsGarbage(t *testing.T) {
	if _, err := DecompressAuto([]byte{0x00, 0x11, 0x22}); err == nil {
		t.Error("garbage accepted by auto-decompress")
	}
}
