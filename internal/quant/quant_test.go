package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// spikyData mimics wavelet high-frequency coefficients: most values pile up
// near zero with a few large outliers.
func spikyData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < 0.95 {
			out[i] = rng.NormFloat64() * 0.01 // the spike near zero
		} else {
			out[i] = rng.NormFloat64() * 10 // sparse outliers
		}
	}
	return out
}

func TestSimpleQuantizeDistinctValues(t *testing.T) {
	vals := spikyData(10000, 1)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		out, q, err := Apply(vals, Config{Method: Simple, Divisions: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		distinct := map[float64]bool{}
		for _, v := range out {
			distinct[v] = true
		}
		if len(distinct) > n {
			t.Errorf("n=%d: %d distinct values after simple quantization", n, len(distinct))
		}
		if q.NumQuantized != len(vals) {
			t.Errorf("n=%d: simple quantized %d of %d values", n, q.NumQuantized, len(vals))
		}
	}
}

func TestSimpleQuantizeAveragesAreMeans(t *testing.T) {
	// Hand-checkable: values 0..9, n=2 partitions over [0,9]:
	// partition 0 holds 0..4 (mean 2), partition 1 holds 5..9 (mean 7).
	// Indexing: i = floor(2*(v-0)/9): v=4 -> 0, v=5 -> 1.
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	q, err := Quantize(vals, Config{Method: Simple, Divisions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.Averages[0] != 2 || q.Averages[1] != 7 {
		t.Errorf("averages = %v, want [2 7]", q.Averages)
	}
	wantCodes := []uint8{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	for i, c := range q.Codes {
		if c != wantCodes[i] {
			t.Errorf("code %d = %d, want %d", i, c, wantCodes[i])
		}
	}
}

func TestProposedQuantizesOnlySpike(t *testing.T) {
	// 95% of values in a tight spike near 0, 5% outliers: the outliers must
	// pass through losslessly under Proposed.
	vals := spikyData(20000, 2)
	out, q, err := Apply(vals, Config{Method: Proposed, Divisions: 16, SpikeDivisions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumQuantized == 0 || q.NumQuantized == len(vals) {
		t.Fatalf("proposed quantized %d of %d values; expected a strict subset", q.NumQuantized, len(vals))
	}
	for i, v := range vals {
		if !q.Mask[i] && out[i] != v {
			t.Errorf("passthrough value %d changed: %g -> %g", i, v, out[i])
		}
	}
	if q.SpikePartitions < 1 || q.SpikePartitions >= 64 {
		t.Errorf("spike partitions = %d; expected a small positive count", q.SpikePartitions)
	}
}

func TestProposedErrorSmallerThanSimple(t *testing.T) {
	// The paper's headline claim (Fig. 8): at equal n, the proposed method's
	// max error is much smaller because outliers are not collapsed into
	// coarse partition means.
	vals := spikyData(20000, 3)
	for _, n := range []int{4, 16, 64} {
		simple, qs, err := Apply(vals, Config{Method: Simple, Divisions: n})
		if err != nil {
			t.Fatal(err)
		}
		proposed, qp, err := Apply(vals, Config{Method: Proposed, Divisions: n})
		if err != nil {
			t.Fatal(err)
		}
		_ = qs
		_ = qp
		maxErr := func(out []float64) float64 {
			m := 0.0
			for i := range vals {
				if e := math.Abs(vals[i] - out[i]); e > m {
					m = e
				}
			}
			return m
		}
		es, ep := maxErr(simple), maxErr(proposed)
		if ep >= es {
			t.Errorf("n=%d: proposed max error %g not below simple %g", n, ep, es)
		}
	}
}

func TestErrorDecreasesWithDivisions(t *testing.T) {
	vals := spikyData(20000, 4)
	avgErr := func(n int, m Method) float64 {
		out, _, err := Apply(vals, Config{Method: m, Divisions: n})
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for i := range vals {
			s += math.Abs(vals[i] - out[i])
		}
		return s / float64(len(vals))
	}
	for _, m := range []Method{Simple, Proposed} {
		e1, e128 := avgErr(1, m), avgErr(128, m)
		if e128 >= e1 {
			t.Errorf("%v: avg error did not decrease: n=1 %g, n=128 %g", m, e1, e128)
		}
	}
}

func TestDequantizeRoundTripStructure(t *testing.T) {
	vals := spikyData(5000, 5)
	for _, m := range []Method{Simple, Proposed} {
		q, err := Quantize(vals, Config{Method: m, Divisions: 32})
		if err != nil {
			t.Fatal(err)
		}
		pass, err := q.Passthrough(vals, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pass)+len(q.Codes) != len(vals) {
			t.Fatalf("%v: passthrough %d + codes %d != %d", m, len(pass), len(q.Codes), len(vals))
		}
		out, err := Dequantize(q.Mask, q.Codes, q.Averages, pass, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(vals) {
			t.Fatalf("%v: dequantized %d values, want %d", m, len(out), len(vals))
		}
		// Each reconstructed value is either the original (passthrough) or
		// a table average.
		avgs := map[float64]bool{}
		for _, a := range q.Averages {
			avgs[a] = true
		}
		for i, v := range out {
			if q.Mask[i] && !avgs[v] {
				t.Fatalf("%v: quantized value %d = %g is not a table average", m, i, v)
			}
			if !q.Mask[i] && v != vals[i] {
				t.Fatalf("%v: passthrough value %d changed", m, i)
			}
		}
	}
}

func TestNonFiniteValuesPassThrough(t *testing.T) {
	vals := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1), 4}
	for _, m := range []Method{Simple, Proposed} {
		out, q, err := Apply(vals, Config{Method: m, Divisions: 8})
		if err != nil {
			t.Fatal(err)
		}
		if q.Mask[1] || q.Mask[3] || q.Mask[5] {
			t.Errorf("%v: non-finite value was quantized", m)
		}
		if !math.IsNaN(out[1]) || !math.IsInf(out[3], 1) || !math.IsInf(out[5], -1) {
			t.Errorf("%v: non-finite values not reconstructed exactly: %v", m, out)
		}
	}
}

func TestConstantInput(t *testing.T) {
	vals := []float64{5, 5, 5, 5}
	for _, m := range []Method{Simple, Proposed} {
		out, _, err := Apply(vals, Config{Method: m, Divisions: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != 5 {
				t.Errorf("%v: constant input reconstructed to %g at %d", m, v, i)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, m := range []Method{Simple, Proposed} {
		q, err := Quantize(nil, Config{Method: m, Divisions: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(q.Codes) != 0 || q.NumQuantized != 0 {
			t.Errorf("%v: empty input produced codes", m)
		}
		out, err := Dequantize(q.Mask, q.Codes, q.Averages, nil, nil)
		if err != nil || len(out) != 0 {
			t.Errorf("%v: dequantize empty failed: %v %v", m, out, err)
		}
	}
}

func TestSingleValue(t *testing.T) {
	out, _, err := Apply([]float64{3.5}, Config{Method: Simple, Divisions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3.5 {
		t.Errorf("single value reconstructed to %g", out[0])
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Method: Simple, Divisions: 0},
		{Method: Simple, Divisions: 256},
		{Method: Simple, Divisions: -3},
		{Method: Method(7), Divisions: 4},
		{Method: Proposed, Divisions: 4, SpikeDivisions: -1},
	}
	for _, c := range bad {
		if _, err := Quantize([]float64{1, 2}, c); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
	// d defaults to 64.
	q, err := Quantize(spikyData(1000, 6), Config{Method: Proposed, Divisions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if q.SpikePartitions <= 0 {
		t.Error("default spike divisions produced no spike")
	}
}

func TestDequantizeErrors(t *testing.T) {
	// Mismatched code count.
	if _, err := Dequantize([]bool{true, true}, []uint8{0}, []float64{1}, nil, nil); err == nil {
		t.Error("mismatched codes: expected error")
	}
	// Mismatched passthrough count.
	if _, err := Dequantize([]bool{true, false}, []uint8{0}, []float64{1}, nil, nil); err == nil {
		t.Error("missing passthrough: expected error")
	}
	// Code out of range.
	if _, err := Dequantize([]bool{true}, []uint8{9}, []float64{1}, nil, nil); err == nil {
		t.Error("out-of-range code: expected error")
	}
}

func TestMaxQuantizationError(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	q, _ := Quantize(vals, Config{Method: Simple, Divisions: 2})
	e, err := MaxQuantizationError(vals, q)
	if err != nil {
		t.Fatal(err)
	}
	// Partition means are 2 and 7; farthest member is distance 2 (0 or 4
	// from 2; 5 or 9 from 7).
	if e != 2 {
		t.Errorf("max error = %g, want 2", e)
	}
}

func TestChooseDivisionsMeetsBound(t *testing.T) {
	vals := spikyData(5000, 7)
	// Simple quantization's best-case max error is ~range/255, so only
	// looser bounds are reachable; Proposed quantizes just the spike, whose
	// pooled range is tiny, so much tighter bounds are reachable.
	cases := []struct {
		method Method
		bound  float64
	}{
		{Simple, 5.0},
		{Simple, 1.0},
		{Proposed, 0.1},
		{Proposed, 0.01},
	}
	for _, c := range cases {
		n, q, err := ChooseDivisions(vals, c.bound, c.method, 0)
		if err != nil {
			t.Fatalf("%v bound %g: %v", c.method, c.bound, err)
		}
		e, _ := MaxQuantizationError(vals, q)
		if e > c.bound {
			t.Errorf("%v bound %g: chose n=%d with max error %g", c.method, c.bound, n, e)
		}
	}
}

func TestChooseDivisionsUnreachable(t *testing.T) {
	vals := spikyData(5000, 8)
	_, _, err := ChooseDivisions(vals, 0, Simple, 0) // zero bound: impossible for lossy
	if err != ErrBoundUnreachable {
		t.Errorf("expected ErrBoundUnreachable, got %v", err)
	}
}

func TestMethodStringParse(t *testing.T) {
	for _, m := range []Method{Simple, Proposed} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("vector"); err == nil {
		t.Error("ParseMethod(vector): expected error")
	}
}

// Property: quantization error never exceeds the width of one partition for
// the simple method (every value maps to the mean of its own partition).
func TestQuickSimpleErrorBounded(t *testing.T) {
	fn := func(raw []float64, nRaw uint8) bool {
		n := int(nRaw%MaxDivisions) + 1
		vals := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e9)
			vals = append(vals, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(vals) == 0 {
			return true
		}
		out, _, err := Apply(vals, Config{Method: Simple, Divisions: n})
		if err != nil {
			return false
		}
		width := (hi - lo) / float64(n)
		for i := range vals {
			if math.Abs(vals[i]-out[i]) > width+1e-9*(math.Abs(hi)+math.Abs(lo)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Dequantize(Quantize(v)) preserves length and passthrough
// identity for both methods.
func TestQuickRoundTripStructure(t *testing.T) {
	fn := func(raw []float64, m bool, nRaw uint8) bool {
		method := Simple
		if m {
			method = Proposed
		}
		n := int(nRaw%MaxDivisions) + 1
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e9)
		}
		out, q, err := Apply(vals, Config{Method: method, Divisions: n})
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if !q.Mask[i] && out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogScaleRoundTripStructure(t *testing.T) {
	vals := spikyData(10000, 20)
	for _, m := range []Method{Simple, Proposed} {
		out, q, err := Apply(vals, Config{Method: m, Divisions: 32, LogScale: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(out) != len(vals) {
			t.Fatalf("%v: wrong output length", m)
		}
		for i := range vals {
			if !q.Mask[i] && out[i] != vals[i] {
				t.Errorf("%v: passthrough changed under log scale", m)
			}
		}
	}
}

func TestLogScaleImprovesSmallValueResolution(t *testing.T) {
	// For spike-plus-outlier data, log partitioning gives the near-zero
	// mass finer partitions, cutting the error of the small values under
	// the simple method at equal n.
	vals := spikyData(50000, 21)
	errSmall := func(logScale bool) float64 {
		out, _, err := Apply(vals, Config{Method: Simple, Divisions: 32, LogScale: logScale})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for i, v := range vals {
			if math.Abs(v) < 0.05 { // the spike population
				sum += math.Abs(v - out[i])
				n++
			}
		}
		return sum / float64(n)
	}
	linear, logged := errSmall(false), errSmall(true)
	if logged >= linear {
		t.Errorf("log-scale small-value error %g not below linear %g", logged, linear)
	}
}

func TestLogScaleConstantAndEmpty(t *testing.T) {
	out, _, err := Apply([]float64{7, 7, 7}, Config{Method: Simple, Divisions: 4, LogScale: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 7 {
			t.Errorf("constant log-scale reconstructed to %g", v)
		}
	}
	if _, err := Quantize(nil, Config{Method: Simple, Divisions: 4, LogScale: true}); err != nil {
		t.Errorf("empty log-scale: %v", err)
	}
}

func TestLogScaleAllZeros(t *testing.T) {
	vals := make([]float64, 100)
	out, _, err := Apply(vals, Config{Method: Proposed, Divisions: 8, LogScale: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Errorf("zero input reconstructed to %g", v)
		}
	}
}
