// Package quant implements stage 2 of the lossy checkpoint compressor of
// Sasaki et al. (IPDPS 2015): quantization of the wavelet high-frequency
// coefficients.
//
// Two methods are provided, matching the paper's §III-B:
//
//   - Simple quantization: the value range [min, max] of the high-frequency
//     coefficients is split into n equal-width partitions; every value is
//     replaced by the mean of its partition, so at most n distinct values
//     remain.
//
//   - Proposed quantization: the range is first split into d partitions
//     (d=64 in the paper) and a histogram is taken. Partitions holding at
//     least the average share of values, Ndiv[i] ≥ Ntotal/d, are "spiked"
//     (high-frequency coefficients of smooth data pile up near zero).
//     Simple quantization with n partitions is then applied only to the
//     values inside spiked partitions; all other values pass through
//     losslessly and a bitmap records which values were quantized.
//
// The paper's Fig. 4 shows the n sub-partitions spanning the spiked region;
// we therefore pool the values of all selected partitions and quantize them
// over that pool's own [min, max] range (documented design choice — with a
// single spike, as in the paper's data, the two readings coincide).
//
// Non-finite values (NaN, ±Inf) are never quantized; they pass through via
// the bitmap in both methods so decompression is exact for them.
//
// All passes are O(len(values)), preserving the paper's O(n) overall
// complexity claim (§III).
package quant

import (
	"errors"
	"fmt"
	"math"
)

// Method selects the quantization algorithm.
type Method int

const (
	// Simple quantizes every finite high-frequency value (paper §III-B1).
	Simple Method = iota
	// Proposed quantizes only values inside spiked histogram partitions
	// (paper §III-B2).
	Proposed
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Simple:
		return "simple"
	case Proposed:
		return "proposed"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a string produced by String back into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "simple":
		return Simple, nil
	case "proposed":
		return Proposed, nil
	default:
		return 0, fmt.Errorf("quant: unknown method %q", s)
	}
}

// MaxDivisions is the largest allowed division number n. Codes are stored
// in one byte (paper §III-C), so n ≤ 255. The paper sweeps n from 1 to 128.
const MaxDivisions = 255

// DefaultSpikeDivisions is the paper's histogram resolution d for spike
// detection (§IV-A: "The parameter d is set to be 64").
const DefaultSpikeDivisions = 64

// Errors returned by this package.
var (
	ErrConfig = errors.New("quant: invalid configuration")
	ErrCodes  = errors.New("quant: corrupt code stream")
)

// Config parameterizes a quantization.
type Config struct {
	// Method selects Simple or Proposed.
	Method Method
	// Divisions is the paper's n: the number of equal-width partitions
	// whose means become the representative values. 1 ≤ n ≤ 255.
	Divisions int
	// SpikeDivisions is the paper's d, used only by Proposed. Zero means
	// DefaultSpikeDivisions.
	SpikeDivisions int
	// LogScale switches from the paper's equal-width partitions to
	// partitions equal in symmetric-log space (extension): partition edges
	// concentrate near zero, where wavelet high-band values pile up, so
	// small coefficients get finer resolution at the same n. This is an
	// encoder-side choice only — decoding reads the average table and is
	// unchanged.
	LogScale bool
}

func (c Config) validate() (Config, error) {
	if c.Method != Simple && c.Method != Proposed {
		return c, fmt.Errorf("%w: method %d", ErrConfig, int(c.Method))
	}
	if c.Divisions < 1 || c.Divisions > MaxDivisions {
		return c, fmt.Errorf("%w: divisions %d (want 1..%d)", ErrConfig, c.Divisions, MaxDivisions)
	}
	if c.SpikeDivisions == 0 {
		c.SpikeDivisions = DefaultSpikeDivisions
	}
	if c.SpikeDivisions < 1 {
		return c, fmt.Errorf("%w: spike divisions %d", ErrConfig, c.SpikeDivisions)
	}
	return c, nil
}

// Quantization is the output of Quantize: everything needed to encode the
// quantized stream and to reconstruct approximate values.
type Quantization struct {
	// Averages is the representative-value table; Codes index into it.
	// Its length is the configured number of divisions; entries for empty
	// partitions are zero and never referenced by Codes.
	Averages []float64
	// Codes holds one byte per quantized value, in input order (skipping
	// passthrough values).
	Codes []uint8
	// Mask has one entry per input value: true when the value was replaced
	// by a code, false when it passes through losslessly.
	Mask []bool
	// NumQuantized is the number of true entries in Mask (== len(Codes)).
	NumQuantized int
	// SpikePartitions is the number of histogram partitions selected as
	// spiked (Proposed only; equals SpikeDivisions' selected count).
	SpikePartitions int
}

// Passthrough appends the values that were not quantized (in input order)
// to dst and returns it. These must be stored verbatim by the encoder.
func (q *Quantization) Passthrough(values []float64, dst []float64) ([]float64, error) {
	if len(values) != len(q.Mask) {
		return nil, fmt.Errorf("quant: passthrough over %d values, mask has %d", len(values), len(q.Mask))
	}
	for i, v := range values {
		if !q.Mask[i] {
			dst = append(dst, v)
		}
	}
	return dst, nil
}

// Quantize analyzes values (the pooled high-frequency coefficients of one
// array) and returns the quantization mapping. The input slice is not
// modified.
func Quantize(values []float64, cfg Config) (*Quantization, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	q := &Quantization{
		Averages: make([]float64, cfg.Divisions),
		Mask:     make([]bool, len(values)),
	}
	if len(values) == 0 {
		q.Codes = []uint8{}
		return q, nil
	}

	// A selection decides which values are subject to quantization and
	// carries the pool's range, computed as a side effect of the selection
	// passes so the quantizer itself never re-scans for min/max.
	var sel selection
	if cfg.Method == Proposed {
		sel = spikeSelect(values, cfg.SpikeDivisions)
		q.SpikePartitions = sel.nSpiked
	} else {
		sel = selectAll(values)
	}
	if sel.nSel == 0 {
		q.Codes = []uint8{}
		return q, nil
	}

	part := makePartitioner(sel.lo, sel.hi, cfg.Divisions, cfg.LogScale)

	// Single fused pass over the pool: per-partition sums and counts, the
	// mask and the code stream together. The partition index of a value is
	// computed once; the averages only depend on the sums, so the codes can
	// be emitted before the table exists.
	sums := make([]float64, cfg.Divisions)
	counts := make([]int, cfg.Divisions)
	q.Codes = make([]uint8, 0, sel.nSel)
	for i, v := range values {
		if !isFinite(v) || !sel.selector(v) {
			continue
		}
		pi := part.index(v)
		sums[pi] += v
		counts[pi]++
		q.Mask[i] = true
		q.Codes = append(q.Codes, uint8(pi))
	}
	for i := range sums {
		if counts[i] > 0 {
			q.Averages[i] = sums[i] / float64(counts[i])
		}
	}
	q.NumQuantized = len(q.Codes)
	return q, nil
}

// selection is the outcome of the pool-selection stage: which values are
// quantized, how many there are, and their exact [lo, hi] range.
type selection struct {
	selector func(float64) bool
	lo, hi   float64
	nSel     int
	nSpiked  int
}

// selectAll selects every finite value (the Simple method), computing the
// range in the same pass.
func selectAll(values []float64) selection {
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, v := range values {
		if !isFinite(v) {
			continue
		}
		n++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return selection{selector: func(float64) bool { return true }, lo: lo, hi: hi, nSel: n}
}

// Dequantize reconstructs the value stream from a quantization: quantized
// positions are filled from Averages[Codes], passthrough positions from the
// passthrough slice, both consumed in order. The result has len(mask)
// elements and is appended to dst.
func Dequantize(mask []bool, codes []uint8, averages, passthrough []float64, dst []float64) ([]float64, error) {
	nq := 0
	for _, m := range mask {
		if m {
			nq++
		}
	}
	if nq != len(codes) {
		return nil, fmt.Errorf("%w: mask marks %d quantized values, have %d codes", ErrCodes, nq, len(codes))
	}
	if len(mask)-nq != len(passthrough) {
		return nil, fmt.Errorf("%w: mask leaves %d passthrough values, have %d", ErrCodes, len(mask)-nq, len(passthrough))
	}
	ci, pi := 0, 0
	for _, m := range mask {
		if m {
			c := codes[ci]
			ci++
			if int(c) >= len(averages) {
				return nil, fmt.Errorf("%w: code %d out of range (%d averages)", ErrCodes, c, len(averages))
			}
			dst = append(dst, averages[c])
		} else {
			dst = append(dst, passthrough[pi])
			pi++
		}
	}
	return dst, nil
}

// Apply is a convenience that quantizes and immediately reconstructs,
// returning the lossy version of values. It is what the compressor's error
// analysis uses.
func Apply(values []float64, cfg Config) ([]float64, *Quantization, error) {
	q, err := Quantize(values, cfg)
	if err != nil {
		return nil, nil, err
	}
	pass, err := q.Passthrough(values, nil)
	if err != nil {
		return nil, nil, err
	}
	out, err := Dequantize(q.Mask, q.Codes, q.Averages, pass, make([]float64, 0, len(values)))
	if err != nil {
		return nil, nil, err
	}
	return out, q, nil
}

// partitioner maps a value in [lo,hi] to one of n partitions — equal-width
// in linear space (the paper's scheme) or in symmetric-log (asinh) space.
type partitioner struct {
	lo, hi float64 // warped bounds
	n      int
	log    bool
	scale  float64
}

func makePartitioner(lo, hi float64, n int, logScale bool) partitioner {
	p := partitioner{n: n, log: logScale}
	if logScale {
		p.scale = math.Max(math.Abs(lo), math.Abs(hi)) / 1e4
		if p.scale == 0 || math.IsNaN(p.scale) || math.IsInf(p.scale, 0) {
			p.scale = 1
		}
	}
	p.lo, p.hi = p.warp(lo), p.warp(hi)
	return p
}

// warp maps a raw value into partitioning space.
func (p partitioner) warp(v float64) float64 {
	if !p.log {
		return v
	}
	return math.Asinh(v / p.scale)
}

func (p partitioner) index(v float64) int {
	if p.hi == p.lo {
		return 0
	}
	i := int(float64(p.n) * (p.warp(v) - p.lo) / (p.hi - p.lo))
	if i < 0 {
		i = 0
	}
	if i >= p.n {
		i = p.n - 1 // v == hi lands here
	}
	return i
}

// spikeSelect histograms the finite values into d partitions and selects
// the values that fall into spiked partitions (Ndiv[i] ≥ Ntotal/d, paper
// Eq. 4). The histogram pass also tracks each partition's min/max, so the
// selected pool's range comes out of the same scan instead of a third pass
// over the data.
func spikeSelect(values []float64, d int) selection {
	lo, hi := math.Inf(1), math.Inf(-1)
	total := 0
	for _, v := range values {
		if !isFinite(v) {
			continue
		}
		total++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if total == 0 {
		return selection{selector: func(float64) bool { return false }}
	}
	// Spike detection stays linear, matching the paper's Fig. 4. The
	// per-partition extrema ride along in the same pass.
	part := makePartitioner(lo, hi, d, false)
	counts := make([]int, d)
	pmin := make([]float64, d)
	pmax := make([]float64, d)
	for i := range pmin {
		pmin[i] = math.Inf(1)
		pmax[i] = math.Inf(-1)
	}
	for _, v := range values {
		if !isFinite(v) {
			continue
		}
		i := part.index(v)
		counts[i]++
		if v < pmin[i] {
			pmin[i] = v
		}
		if v > pmax[i] {
			pmax[i] = v
		}
	}
	spiked := make([]bool, d)
	sel := selection{lo: math.Inf(1), hi: math.Inf(-1)}
	// Ndiv[i] ≥ Ntotal/d, computed without integer truncation:
	// d*Ndiv[i] ≥ Ntotal.
	for i, c := range counts {
		if c > 0 && c*d >= total {
			spiked[i] = true
			sel.nSpiked++
			sel.nSel += c
			if pmin[i] < sel.lo {
				sel.lo = pmin[i]
			}
			if pmax[i] > sel.hi {
				sel.hi = pmax[i]
			}
		}
	}
	sel.selector = func(v float64) bool { return spiked[part.index(v)] }
	return sel
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// PassthroughAll returns the quantization that selects nothing: every one
// of the n values is carried verbatim by the passthrough stream and the
// code stream is empty, so the quantization error is exactly zero. It is
// what core.Options.LosslessBands feeds the encoder — the container
// framing is unchanged while the band carries no quantization loss.
func PassthroughAll(n int) *Quantization {
	return &Quantization{
		Averages: []float64{},
		Codes:    []uint8{},
		Mask:     make([]bool, n),
	}
}

// --- Error-bound extension (paper §IV-C future work) --------------------

// MaxQuantizationError returns the largest absolute error the quantization
// introduces over the given values: max |v − Averages[code(v)]| over
// quantized values. Passthrough values contribute zero.
func MaxQuantizationError(values []float64, q *Quantization) (float64, error) {
	if len(values) != len(q.Mask) {
		return 0, fmt.Errorf("quant: %d values, mask has %d", len(values), len(q.Mask))
	}
	maxErr := 0.0
	ci := 0
	for i, v := range values {
		if !q.Mask[i] {
			continue
		}
		e := math.Abs(v - q.Averages[q.Codes[ci]])
		ci++
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}

// ChooseDivisions implements the paper's proposed future capability of
// "controlling the errors by specifying a value": it returns a small
// (near-minimal) division number n in [1, MaxDivisions] whose quantization
// keeps the maximum absolute error ≤ bound, along with the resulting
// quantization. The error guarantee is strict; minimality is approximate
// because the max error is not exactly monotone in n (partition means
// shift as partitions split). If even n = MaxDivisions exceeds the bound,
// it returns MaxDivisions and the corresponding quantization together with
// ErrBoundUnreachable.
func ChooseDivisions(values []float64, bound float64, method Method, spikeDivisions int) (int, *Quantization, error) {
	if bound < 0 || math.IsNaN(bound) {
		return 0, nil, fmt.Errorf("%w: error bound %g", ErrConfig, bound)
	}
	// Max error is monotonically non-increasing in n only approximately
	// (partition means shift), so binary search could mis-step; n ≤ 255
	// makes a linear-doubling scan affordable and exact.
	try := func(n int) (*Quantization, float64, error) {
		q, err := Quantize(values, Config{Method: method, Divisions: n, SpikeDivisions: spikeDivisions})
		if err != nil {
			return nil, 0, err
		}
		e, err := MaxQuantizationError(values, q)
		return q, e, err
	}
	// Deterministic fast paths. A single partition is already exact for
	// empty, all-non-finite (everything passes through) and constant
	// pools — every quantized value equals the one partition mean — and
	// n = 1 is minimal, so return it without scanning.
	q1, e1, err := try(1)
	if err != nil {
		return 0, nil, err
	}
	if e1 <= bound {
		return 1, q1, nil
	}
	// A zero bound demands an exact quantization. The max error does not
	// creep toward zero as n grows, so the doubling scan would walk all
	// the way to the cap only to fail; test the cap directly instead:
	// either MaxDivisions partitions reproduce every pool value exactly
	// (at most MaxDivisions distinct finite values) or no n can.
	if bound == 0 {
		qc, ec, err := try(MaxDivisions)
		if err != nil {
			return 0, nil, err
		}
		if ec == 0 {
			return MaxDivisions, qc, nil
		}
		return MaxDivisions, qc, ErrBoundUnreachable
	}
	var best *Quantization
	for n := 2; n <= MaxDivisions; n *= 2 {
		q, e, err := try(n)
		if err != nil {
			return 0, nil, err
		}
		best = q
		if e <= bound {
			// Refine downward linearly between n/2 and n.
			for m := n / 2; m > 0; m-- {
				qm, em, err := try(m)
				if err != nil {
					return 0, nil, err
				}
				if em <= bound {
					best = qm
					continue
				}
				break
			}
			return len(best.Averages), best, nil
		}
		if n == 128 { // next doubling would overshoot 255; test the cap
			q, e, err := try(MaxDivisions)
			if err != nil {
				return 0, nil, err
			}
			if e <= bound {
				return MaxDivisions, q, nil
			}
			return MaxDivisions, q, ErrBoundUnreachable
		}
	}
	return len(best.Averages), best, nil
}

// ErrBoundUnreachable reports that no division number within MaxDivisions
// meets the requested error bound.
var ErrBoundUnreachable = errors.New("quant: error bound unreachable within division limit")
