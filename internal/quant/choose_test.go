package quant

import (
	"errors"
	"math"
	"testing"
)

// TestChooseDivisionsDegenerate locks the deterministic fast paths: inputs
// where no scan can help must resolve immediately (n = 1) instead of
// walking the doubling ladder to MaxDivisions.
func TestChooseDivisionsDegenerate(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name   string
		values []float64
		bound  float64
	}{
		{"empty", nil, 0},
		{"empty positive bound", []float64{}, 1e-3},
		{"all NaN", []float64{nan, nan, nan}, 0},
		{"all Inf", []float64{inf, -inf, inf}, 0},
		{"mixed non-finite", []float64{nan, inf, -inf, nan}, 1e-9},
		{"constant", []float64{3.25, 3.25, 3.25, 3.25}, 0},
		{"constant negative", []float64{-7, -7, -7}, 1e-12},
		{"single value", []float64{42}, 0},
		{"constant with non-finite", []float64{5, nan, 5, inf, 5}, 0},
	}
	for _, method := range []Method{Simple, Proposed} {
		for _, tc := range cases {
			n, q, err := ChooseDivisions(tc.values, tc.bound, method, 64)
			if err != nil {
				t.Fatalf("%v/%s: unexpected error: %v", method, tc.name, err)
			}
			if n != 1 {
				t.Errorf("%v/%s: n = %d, want 1", method, tc.name, n)
			}
			e, err := MaxQuantizationError(tc.values, q)
			if err != nil {
				t.Fatalf("%v/%s: MaxQuantizationError: %v", method, tc.name, err)
			}
			if e > tc.bound {
				t.Errorf("%v/%s: error %g exceeds bound %g", method, tc.name, e, tc.bound)
			}
		}
	}
}

// TestChooseDivisionsZeroBound: bound == 0 demands exactness. With at most
// MaxDivisions distinct finite values the quantization can be exact; with
// more it cannot, and the scan must fail fast with ErrBoundUnreachable
// rather than grinding through every division count.
func TestChooseDivisionsZeroBound(t *testing.T) {
	// Few distinct values, far apart so partitioning isolates each: exact.
	exact := []float64{0, 0, 1000, 1000, 2000, 2000, 3000}
	n, q, err := ChooseDivisions(exact, 0, Simple, 64)
	if err != nil {
		t.Fatalf("exact case: %v", err)
	}
	e, err := MaxQuantizationError(exact, q)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("exact case: residual error %g at n=%d", e, n)
	}

	// A dense ramp of 1000 distinct values cannot be reproduced by ≤255
	// partition means: the zero bound is unreachable.
	ramp := make([]float64, 1000)
	for i := range ramp {
		ramp[i] = float64(i) * 1.5
	}
	n, q, err = ChooseDivisions(ramp, 0, Simple, 64)
	if !errors.Is(err, ErrBoundUnreachable) {
		t.Fatalf("ramp: err = %v, want ErrBoundUnreachable", err)
	}
	if n != MaxDivisions || q == nil {
		t.Errorf("ramp: got n=%d q=%v, want best-effort MaxDivisions result", n, q != nil)
	}
}

// TestChooseDivisionsDeterministic: same input, same answer — the edge
// paths must not depend on map iteration or scan order.
func TestChooseDivisionsDeterministic(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, bound := range []float64{0, 1e-6, 0.3, 10} {
		nPrev := -1
		for rep := 0; rep < 3; rep++ {
			n, _, err := ChooseDivisions(values, bound, Proposed, 64)
			if err != nil && !errors.Is(err, ErrBoundUnreachable) {
				t.Fatalf("bound %g: %v", bound, err)
			}
			if nPrev >= 0 && n != nPrev {
				t.Errorf("bound %g: non-deterministic n: %d then %d", bound, nPrev, n)
			}
			nPrev = n
		}
	}
}

// TestChooseDivisionsInvalidBound: negative or NaN bounds stay rejected.
func TestChooseDivisionsInvalidBound(t *testing.T) {
	for _, bound := range []float64{-1, math.NaN()} {
		if _, _, err := ChooseDivisions([]float64{1, 2}, bound, Simple, 64); !errors.Is(err, ErrConfig) {
			t.Errorf("bound %g: err = %v, want ErrConfig", bound, err)
		}
	}
}

// TestPassthroughAll: the all-passthrough quantization is exact and
// structurally valid for the encoder (empty code/average streams).
func TestPassthroughAll(t *testing.T) {
	values := []float64{1.5, math.NaN(), -3, math.Inf(1)}
	q := PassthroughAll(len(values))
	if q.NumQuantized != 0 || len(q.Codes) != 0 || len(q.Averages) != 0 {
		t.Fatalf("PassthroughAll not empty: %+v", q)
	}
	if len(q.Mask) != len(values) {
		t.Fatalf("mask length %d, want %d", len(q.Mask), len(values))
	}
	e, err := MaxQuantizationError(values, q)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("passthrough error %g, want 0", e)
	}
	pt, err := q.Passthrough(values, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != len(values) {
		t.Errorf("passthrough carried %d values, want %d", len(pt), len(values))
	}
}
