package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The object backend has no rename, so its commit point cannot be a
// file swap. Instead every manifest image is written as a fresh,
// immutable, versioned object (manifest-%08d.mf) and a tiny fixed-size
// pointer record (CURRENT) is overwritten in place to name the live
// version. The pointer is the only mutable object in the layout; it is
// small enough to be a single device write and carries a CRC so a torn
// overwrite is detected and recovery falls back to scanning the
// versioned manifest objects themselves.

// ErrPointer indicates a structurally invalid or checksum-failing
// manifest pointer record.
var ErrPointer = errors.New("store: malformed manifest pointer")

const (
	// pointerName is the object key of the mutable pointer record.
	pointerName = "CURRENT"
	// pointerMagic spells "LKPT" little-endian.
	pointerMagic   = 0x54504B4C
	pointerVersion = 1
	// pointerSize is the exact encoded size: magic, format version,
	// manifest object version, CRC-32.
	pointerSize = 4 + 2 + 8 + 4
)

// EncodePointer serializes a pointer record naming manifest object
// version mv, with a trailing CRC-32 of everything before it.
func EncodePointer(mv uint64) []byte {
	out := make([]byte, pointerSize)
	binary.LittleEndian.PutUint32(out[0:4], pointerMagic)
	binary.LittleEndian.PutUint16(out[4:6], pointerVersion)
	binary.LittleEndian.PutUint64(out[6:14], mv)
	binary.LittleEndian.PutUint32(out[14:18], crc32.ChecksumIEEE(out[:14]))
	return out
}

// DecodePointer parses and verifies a pointer record, returning the
// manifest object version it names. Corrupt input returns ErrPointer,
// never panics: the record is fixed-size, so any length mismatch, bad
// magic, unsupported version or CRC failure is rejected.
func DecodePointer(raw []byte) (uint64, error) {
	if len(raw) != pointerSize {
		return 0, fmt.Errorf("%w: %d bytes, want %d", ErrPointer, len(raw), pointerSize)
	}
	if crc32.ChecksumIEEE(raw[:14]) != binary.LittleEndian.Uint32(raw[14:18]) {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrPointer)
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != pointerMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrPointer)
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != pointerVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrPointer, v)
	}
	return binary.LittleEndian.Uint64(raw[6:14]), nil
}
