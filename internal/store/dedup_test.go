package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/obs"
)

// testChunkCfg shrinks the chunker so modest test payloads split into
// many chunks.
var testChunkCfg = cas.Config{Min: 1 << 10, Avg: 4 << 10, Max: 16 << 10}

// dedupOpts is the standard dedup-on test configuration.
func dedupOpts() Options {
	return Options{Dedup: true, DedupChunk: testChunkCfg}
}

// genPayload fabricates a pseudo-random payload: incompressible-ish and
// deterministic per seed, so chunk hashes are stable across runs.
func genPayload(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// mutateRegion returns a copy of p with a contiguous frac-sized region
// starting at off overwritten — the sparse-update pattern dedup exists
// to exploit.
func mutateRegion(p []byte, off int, frac float64, seed int64) []byte {
	out := append([]byte(nil), p...)
	n := int(float64(len(p)) * frac)
	if n == 0 {
		n = 1
	}
	if off+n > len(out) {
		off = len(out) - n
	}
	copy(out[off:off+n], genPayload(seed, n))
	return out
}

// fsckClean fails the test when the dedup audit reports any issue.
func fsckClean(t *testing.T, s *Store, ctx string) {
	t.Helper()
	rep, err := s.FsckDedup()
	if err != nil {
		t.Fatalf("%s: FsckDedup: %v", ctx, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: fsck found %d issues: %+v", ctx, len(rep.Issues), rep.Issues)
	}
}

// TestDedupRoundTrip: commits through the dedup path restore byte-exact
// on both backends, across reopen, and the audit stays clean.
func TestDedupRoundTrip(t *testing.T) {
	for _, backend := range []BackendKind{BackendPosix, BackendObject} {
		t.Run(backend.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := dedupOpts()
			opts.Backend = backend
			opts.Keep = -1
			s := openTest(t, dir, opts)

			base := genPayload(1, 600<<10)
			payloads := [][]byte{
				base,
				mutateRegion(base, 100<<10, 0.01, 2),
				mutateRegion(base, 300<<10, 0.10, 3),
			}
			for i, p := range payloads {
				gen, err := s.Commit(i+1, p)
				if err != nil {
					t.Fatalf("commit %d: %v", i, err)
				}
				if !gen.Dedup() {
					t.Fatalf("commit %d: generation not flagged dedup", i)
				}
				if gen.Size != uint64(len(p)) {
					t.Fatalf("commit %d: logical size %d, want %d", i, gen.Size, len(p))
				}
			}
			for i, p := range payloads {
				got, err := s.ReadGeneration(uint64(i + 1))
				if err != nil {
					t.Fatalf("read gen %d: %v", i+1, err)
				}
				if !bytes.Equal(got, p) {
					t.Fatalf("gen %d not byte-exact after dedup round trip", i+1)
				}
			}
			fsckClean(t, s, "after commits")

			// Reopen: the ledger rebuilds from recipes and everything still
			// reads byte-exact.
			s2 := openTest(t, dir, opts)
			if s2.Rebuilt() {
				t.Fatal("clean reopen should not rebuild the manifest")
			}
			for i, p := range payloads {
				got, err := s2.ReadGeneration(uint64(i + 1))
				if err != nil || !bytes.Equal(got, p) {
					t.Fatalf("gen %d after reopen: %v", i+1, err)
				}
			}
			fsckClean(t, s2, "after reopen")
		})
	}
}

// TestDedupReuse: a 1%-mutated re-commit must write an order of
// magnitude fewer new chunk bytes than the first commit.
func TestDedupReuse(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opts := dedupOpts()
	opts.Observer = reg
	opts.Keep = -1
	s := openTest(t, dir, opts)

	base := genPayload(7, 1<<20)
	if _, err := s.Commit(1, base); err != nil {
		t.Fatal(err)
	}
	firstNew := reg.Counter(MetricDedupChunksNew).Value()
	firstPhys := reg.Counter(MetricDedupPhysicalBytes).Value()
	if firstNew == 0 {
		t.Fatal("first commit wrote no chunks")
	}

	mut := mutateRegion(base, 512<<10, 0.01, 8)
	if _, err := s.Commit(2, mut); err != nil {
		t.Fatal(err)
	}
	secondNew := reg.Counter(MetricDedupChunksNew).Value() - firstNew
	secondPhys := reg.Counter(MetricDedupPhysicalBytes).Value() - firstPhys
	reusedTotal := reg.Counter(MetricDedupChunksReused).Value()
	if reusedTotal == 0 {
		t.Fatal("1% mutation reused no chunks")
	}
	if secondPhys*10 > firstPhys {
		t.Fatalf("1%% mutation committed %v physical bytes vs %v for the full checkpoint — want >=10x reduction",
			secondPhys, firstPhys)
	}
	t.Logf("dedup reuse: first commit %v chunks / %v bytes, 1%%-mutated commit %v chunks / %v bytes, %v reused",
		firstNew, firstPhys, secondNew, secondPhys, reusedTotal)

	got, err := s.ReadGeneration(2)
	if err != nil || !bytes.Equal(got, mut) {
		t.Fatalf("mutated generation not byte-exact: %v", err)
	}
	if ratio := reg.Gauge(MetricDedupRatio).Value(); ratio <= 1 {
		t.Fatalf("dedup ratio gauge %v, want > 1 after a reusing commit", ratio)
	}
}

// TestDedupDisabledByteIdentical: with Dedup off the store writes the
// exact layout it always has — no cas directory, no flags, a pre-flags
// manifest version.
func TestDedupDisabledByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := payload(1, 4096)
	gen, err := s.Commit(1, want)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Flags != 0 {
		t.Fatalf("dedup-off commit carries flags %x", gen.Flags)
	}
	if _, err := os.Stat(filepath.Join(dir, CASDir)); !os.IsNotExist(err) {
		t.Fatalf("dedup-off store grew a %s directory (err=%v)", CASDir, err)
	}
	// The payload object holds the logical bytes themselves, not a recipe.
	data, err := os.ReadFile(filepath.Join(dir, genName(1)))
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("payload file is not the raw payload: %v", err)
	}
	// The manifest stays at the pre-flags version (byte-identical to a
	// build without the dedup layer).
	man, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if v := int(man[4]) | int(man[5])<<8; v >= manifestVersionFlags {
		t.Fatalf("dedup-off manifest encoded as version %d", v)
	}
}

// TestDedupMixedGenerations: Dedup can be toggled between opens; reads
// dispatch per generation, so plain and dedup generations coexist.
func TestDedupMixedGenerations(t *testing.T) {
	dir := t.TempDir()
	plain := payload(1, 50<<10)
	s := openTest(t, dir, Options{Keep: -1})
	if _, err := s.Commit(1, plain); err != nil {
		t.Fatal(err)
	}

	opts := dedupOpts()
	opts.Keep = -1
	s2 := openTest(t, dir, opts)
	deduped := genPayload(2, 300<<10)
	gen2, err := s2.Commit(2, deduped)
	if err != nil {
		t.Fatal(err)
	}
	if !gen2.Dedup() {
		t.Fatal("second commit should be dedup")
	}
	for seq, want := range map[uint64][]byte{1: plain, 2: deduped} {
		got, err := s2.ReadGeneration(seq)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("gen %d: %v", seq, err)
		}
	}

	// Reopen with dedup off again: both generations still read.
	s3 := openTest(t, dir, Options{Keep: -1})
	for seq, want := range map[uint64][]byte{1: plain, 2: deduped} {
		got, err := s3.ReadGeneration(seq)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("gen %d with dedup off: %v", seq, err)
		}
	}
}

// TestDedupPruneReleasesChunks: retention pruning decrefs the dropped
// recipe's chunks and deletes the ones nothing else references.
func TestDedupPruneReleasesChunks(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = 2
	s := openTest(t, dir, opts)

	// Three unrelated payloads: once gen 1 is pruned its chunks are dead.
	for i := 1; i <= 3; i++ {
		if _, err := s.Commit(i, genPayload(int64(100+i), 256<<10)); err != nil {
			t.Fatal(err)
		}
	}
	if gens := s.Generations(); len(gens) != 2 || gens[0].Seq != 2 {
		t.Fatalf("retention kept %+v", gens)
	}
	fsckClean(t, s, "after prune")

	st := s.DedupStats()
	// Live chunks must account only the two retained generations; with
	// unrelated payloads that is ~512 KiB, not ~768 KiB.
	if st.ChunkBytes > 600<<10 {
		t.Fatalf("pruned chunks not released: %d chunk bytes live", st.ChunkBytes)
	}
	if st.DedupGens != 2 {
		t.Fatalf("stats report %d dedup gens, want 2", st.DedupGens)
	}
}

// TestDedupDropReleasesChunks: explicit Drop behaves like prune.
func TestDedupDropReleasesChunks(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = -1
	s := openTest(t, dir, opts)
	if _, err := s.Commit(1, genPayload(11, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, genPayload(12, 256<<10)); err != nil {
		t.Fatal(err)
	}
	before := s.DedupStats().Chunks
	if err := s.Drop(1); err != nil {
		t.Fatal(err)
	}
	after := s.DedupStats().Chunks
	if after >= before {
		t.Fatalf("Drop released nothing: %d -> %d chunks", before, after)
	}
	fsckClean(t, s, "after drop")
	if got, err := s.ReadGeneration(2); err != nil || !bytes.Equal(got, genPayload(12, 256<<10)) {
		t.Fatalf("surviving generation damaged by Drop: %v", err)
	}
}

// TestDedupQuarantineKeepsSharedChunks: quarantining one dedup
// generation must not take down chunks a surviving generation shares
// with it, and GC afterwards must still keep the survivors readable.
func TestDedupQuarantineKeepsSharedChunks(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = -1
	s := openTest(t, dir, opts)

	base := genPayload(21, 400<<10)
	mut := mutateRegion(base, 0, 0.05, 22)
	if _, err := s.Commit(1, base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, mut); err != nil {
		t.Fatal(err)
	}

	// Corrupt gen 1's recipe object: scrub must quarantine it with the
	// recipe-level reason.
	if err := os.WriteFile(filepath.Join(dir, genName(1)), []byte("not a recipe, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "recipe" {
		t.Fatalf("scrub quarantined %+v, want one reason=recipe", rep.Quarantined)
	}
	if rep.GC == nil {
		t.Fatal("dedup scrub ran no GC pass")
	}

	// The shared chunks survive: gen 2 still byte-exact.
	got, err := s.ReadGeneration(2)
	if err != nil || !bytes.Equal(got, mut) {
		t.Fatalf("survivor damaged after quarantine+GC: %v", err)
	}
	fsckClean(t, s, "after quarantine")
}

// TestDedupChunkCorruptionQuarantines: a rotted chunk fails the scrub
// with the chunk-level reason and does not damage generations that do
// not reference it.
func TestDedupChunkCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = -1
	s := openTest(t, dir, opts)
	if _, err := s.Commit(1, genPayload(31, 300<<10)); err != nil {
		t.Fatal(err)
	}

	casDir := filepath.Join(dir, CASDir)
	ents, err := os.ReadDir(casDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no chunks on disk: %v", err)
	}
	victim := filepath.Join(casDir, ents[0].Name())
	if err := os.WriteFile(victim, []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "chunk" {
		t.Fatalf("scrub quarantined %+v, want one reason=chunk", rep.Quarantined)
	}
}

// TestDedupGCSweepsOrphans: chunks referenced by nothing (crash
// leftovers) are swept by GC and by the open-time sweep.
func TestDedupGCSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	s := openTest(t, dir, opts)
	if _, err := s.Commit(1, genPayload(41, 200<<10)); err != nil {
		t.Fatal(err)
	}

	orphan := cas.Sum([]byte("orphaned chunk"))
	orphanPath := filepath.Join(dir, CASDir, orphan.String()+".chk")
	if err := os.WriteFile(orphanPath, []byte("orphaned chunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SweptChunks != 1 {
		t.Fatalf("GC swept %d chunks, want 1", rep.SweptChunks)
	}
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Fatal("orphan chunk survived GC")
	}
	fsckClean(t, s, "after GC")

	// Same leftover, collected by the reopen sweep instead.
	if err := os.WriteFile(orphanPath, []byte("orphaned chunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, dir, opts)
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Fatal("orphan chunk survived the open sweep")
	}
}

// TestDedupRescanRecoversFlags: with the manifest gone, the directory
// rescan recognizes recipe payloads and restores the dedup flag plus
// the LOGICAL size/CRC, so restores keep working.
func TestDedupRescanRecoversFlags(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = -1
	s := openTest(t, dir, opts)
	want := genPayload(51, 300<<10)
	if _, err := s.Commit(3, want); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, opts)
	if !s2.Rebuilt() {
		t.Fatal("expected a manifest rebuild")
	}
	latest, ok := s2.Latest()
	if !ok || !latest.Dedup() {
		t.Fatalf("rescan lost the dedup flag: %+v ok=%v", latest, ok)
	}
	if latest.Size != uint64(len(want)) {
		t.Fatalf("rescan recorded physical size %d, want logical %d", latest.Size, len(want))
	}
	got, err := s2.ReadGeneration(latest.Seq)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after rescan: %v", err)
	}
	fsckClean(t, s2, "after rescan")
}

// TestDedupPhysicalBytes: the quota surface charges recipe+chunk bytes,
// far below logical bytes once generations dedup against each other.
func TestDedupPhysicalBytes(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = -1
	s := openTest(t, dir, opts)
	base := genPayload(61, 512<<10)
	for i := 1; i <= 4; i++ {
		if _, err := s.Commit(i, mutateRegion(base, i*1000, 0.01, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var logical int64
	for _, g := range s.Generations() {
		logical += int64(g.Size)
	}
	phys := s.PhysicalBytes()
	if phys <= 0 || phys >= logical {
		t.Fatalf("physical %d vs logical %d: dedup should store far less", phys, logical)
	}
	st := s.DedupStats()
	if st.Ratio() < 2 {
		t.Fatalf("dedup ratio %.2f, want >= 2 for 1%%-mutated series", st.Ratio())
	}
}

// TestDedupReplicated: a replicated store with dedup on commits
// identical recipes on every replica (deterministic chunking), reads
// through quorum, and scrub-heals a replica that lost a chunk.
func TestDedupReplicated(t *testing.T) {
	root := t.TempDir()
	opts := dedupOpts()
	opts.Sleep = noSleep
	r, err := OpenReplicated(root, ReplicaDirs(root, 3), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Wait()

	base := genPayload(71, 400<<10)
	mut := mutateRegion(base, 50<<10, 0.02, 72)
	if _, err := r.Commit(1, base); err != nil {
		t.Fatal(err)
	}
	gen, err := r.Commit(2, mut)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Dedup() {
		t.Fatal("replicated commit lost the dedup flag")
	}
	got, err := r.ReadGeneration(2)
	if err != nil || !bytes.Equal(got, mut) {
		t.Fatalf("replicated read: %v", err)
	}
	r.Wait()

	// Damage one replica: delete a chunk. Scrub must quarantine the
	// affected generation on that replica and read-repair it back.
	casDir := filepath.Join(root, "r0", CASDir)
	ents, err := os.ReadDir(casDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("replica 0 has no chunks: %v", err)
	}
	if err := os.Remove(filepath.Join(casDir, ents[0].Name())); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Scrub(ScrubOptions{}); err != nil {
		t.Fatal(err)
	}
	// After repair every replica serves both generations byte-exact.
	for i := 0; i < 3; i++ {
		sub, err := Open(filepath.Join(root, "r"+fmt.Sprint(i)), Options{Sleep: noSleep})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		for seq, want := range map[uint64][]byte{1: base, 2: mut} {
			got, err := sub.ReadGeneration(seq)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("replica %d gen %d after repair: %v", i, seq, err)
			}
		}
	}
	if phys := r.PhysicalBytes(); phys <= 0 {
		t.Fatalf("replicated PhysicalBytes = %d", phys)
	}
}

// TestDedupScrubGCRaceSoak: commits, scrubs (each running a GC pass)
// and reads hammer one store concurrently; under -race this proves the
// GC can never sweep a chunk a concurrent restore is resolving, and
// every read observes a byte-exact generation.
func TestDedupScrubGCRaceSoak(t *testing.T) {
	dir := t.TempDir()
	opts := dedupOpts()
	opts.Keep = 3
	s := openTest(t, dir, opts)

	base := genPayload(81, 256<<10)
	if _, err := s.Commit(0, base); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(800 * time.Millisecond)
	var wg sync.WaitGroup
	errc := make(chan error, 3)

	wg.Add(1)
	go func() { // committer
		defer wg.Done()
		for i := 1; time.Now().Before(deadline); i++ {
			p := mutateRegion(base, (i*7919)%(200<<10), 0.02, int64(i))
			if _, err := s.Commit(i, p); err != nil {
				errc <- fmt.Errorf("commit %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // scrubber (includes GC)
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := s.Scrub(ScrubOptions{}); err != nil {
				errc <- fmt.Errorf("scrub: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for time.Now().Before(deadline) {
			latest, ok := s.Latest()
			if !ok {
				continue
			}
			if _, verified, err := s.ReadGenerationRaw(latest.Seq); err == nil && !verified {
				// A generation pruned between Latest and the read can
				// legitimately vanish (err != nil); what must never happen
				// is an indexed generation resolving to corrupt bytes.
				if _, stillThere := s.Record(latest.Seq); stillThere {
					errc <- fmt.Errorf("gen %d read unverified while indexed", latest.Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	fsckClean(t, s, "after soak")
}
