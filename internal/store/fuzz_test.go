package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeManifest hardens the manifest decoder: arbitrary bytes must
// produce ErrManifest or a structurally valid result, never a panic or
// a huge allocation.
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LKSM"))

	valid := (&manifest{
		NextSeq: 4,
		Gens: []Generation{
			{Seq: 2, Step: 10, Size: 100, CRC: 0xDEADBEEF},
			{Seq: 3, Step: 20, Size: 200, CRC: 0xCAFEF00D},
		},
	}).encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	for _, pos := range []int{0, 5, 14, len(valid) / 2, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x11
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		gens, next, err := DecodeManifest(data)
		if err != nil {
			return
		}
		// A successful decode must satisfy the invariants Open relies on.
		for i, g := range gens {
			if g.Seq >= next {
				t.Fatalf("decoded generation %d has seq %d >= next %d", i, g.Seq, next)
			}
			if i > 0 && g.Seq <= gens[i-1].Seq {
				t.Fatal("decoded generations not strictly increasing")
			}
		}
		// Round trip: re-encoding an accepted manifest must decode again.
		re := (&manifest{NextSeq: next, Gens: gens}).encode()
		gens2, next2, err := DecodeManifest(re)
		if err != nil || next2 != next || len(gens2) != len(gens) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzDecodePointer hardens the object backend's manifest-pointer
// decoder: arbitrary bytes must produce ErrPointer or a valid version,
// never a panic, and every accepted record must round-trip.
func FuzzDecodePointer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LKPT"))
	valid := EncodePointer(7)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))
	for pos := 0; pos < len(valid); pos++ {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x11
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodePointer(data)
		if err != nil {
			if !errors.Is(err, ErrPointer) {
				t.Fatalf("decode error outside ErrPointer: %v", err)
			}
			return
		}
		// Round trip: an accepted record re-encodes to the exact input
		// (the format has no redundancy beyond the CRC).
		re := EncodePointer(v)
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip mismatch: %x vs %x", re, data)
		}
		v2, err := DecodePointer(re)
		if err != nil || v2 != v {
			t.Fatalf("re-decode failed: v=%d v2=%d err=%v", v, v2, err)
		}
	})
}

// FuzzOpenDir feeds fuzz-chosen bytes in as a manifest file on a real
// temp dir: Open must always succeed (rebuilding if needed), not panic.
func FuzzOpenDir(f *testing.F) {
	f.Add([]byte{})
	f.Add((&manifest{NextSeq: 2, Gens: []Generation{{Seq: 1, Size: 3, CRC: 0}}}).encode())

	f.Fuzz(func(t *testing.T, manifestBytes []byte) {
		dir := t.TempDir()
		s := openTest(t, dir, Options{})
		if _, err := s.Commit(1, []byte("abc")); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileAtomicOS(dir+"/"+manifestName, manifestBytes); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{Sleep: noSleep})
		if err != nil {
			t.Fatalf("Open with fuzzed manifest: %v", err)
		}
		// Whatever the manifest said, the committed generation file is on
		// disk; if the store rebuilt, it must have found it.
		if s2.Rebuilt() {
			if _, ok := s2.Latest(); !ok {
				t.Fatal("rebuild lost the committed generation")
			}
		}
	})
}
