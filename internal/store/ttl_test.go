package store

import (
	"testing"
	"time"
)

// fakeClock is an injectable wall clock for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock(sec int64) *fakeClock      { return &fakeClock{t: time.Unix(sec, 0)} }
func ttlOpts(c *fakeClock, ttl time.Duration) Options {
	return Options{Sleep: noSleep, Now: c.now, TTL: ttl, Keep: -1}
}

func TestTTLStampSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	s := openTest(t, dir, ttlOpts(clk, time.Hour))
	gen, err := s.Commit(1, payload(1, 256))
	if err != nil {
		t.Fatal(err)
	}
	want := clk.t.Add(time.Hour).Unix()
	if gen.ExpireAt != want {
		t.Fatalf("ExpireAt = %d, want %d", gen.ExpireAt, want)
	}
	// The stamp must round-trip through the versioned manifest.
	s2 := openTest(t, dir, Options{Sleep: noSleep})
	if s2.Rebuilt() {
		t.Fatal("TTL manifest did not decode on reopen")
	}
	g, ok := s2.Record(gen.Seq)
	if !ok || g.ExpireAt != want {
		t.Fatalf("reopened record = %+v (ok=%v), want ExpireAt %d", g, ok, want)
	}
}

// TestManifestStaysV1WithoutTTL pins the default manifest layout: with
// no expiry stamps anywhere, encode must produce the exact version-1
// image earlier releases wrote.
func TestManifestStaysV1WithoutTTL(t *testing.T) {
	m := manifest{NextSeq: 3, Gens: []Generation{{Seq: 1, Step: 10, Size: 64, CRC: 7}, {Seq: 2, Step: 20, Size: 128, CRC: 9}}}
	raw := m.encode()
	if got, want := len(raw), manifestHeader+2*manifestEntry+4; got != want {
		t.Fatalf("v1 manifest is %d bytes, want %d", got, want)
	}
	gens, next, err := DecodeManifest(raw)
	if err != nil || next != 3 || len(gens) != 2 || gens[1].ExpireAt != 0 {
		t.Fatalf("v1 round trip: gens=%v next=%d err=%v", gens, next, err)
	}

	m.Gens[0].ExpireAt = 12345
	raw2 := m.encode()
	if got, want := len(raw2), manifestHeader+2*manifestEntryV2+4; got != want {
		t.Fatalf("v2 manifest is %d bytes, want %d", got, want)
	}
	gens2, _, err := DecodeManifest(raw2)
	if err != nil || gens2[0].ExpireAt != 12345 || gens2[1].ExpireAt != 0 {
		t.Fatalf("v2 round trip: gens=%v err=%v", gens2, err)
	}
}

func TestScrubPrunesExpired(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	s := openTest(t, dir, ttlOpts(clk, time.Minute))
	for step := 1; step <= 3; step++ {
		if _, err := s.Commit(step, payload(step, 256)); err != nil {
			t.Fatal(err)
		}
		clk.advance(10 * time.Second)
	}
	// Nothing is expired yet: scrub is a no-op.
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil || len(rep.Expired) != 0 {
		t.Fatalf("premature expiry: %+v err=%v", rep.Expired, err)
	}
	// Jump past every TTL (plus the default 30s skew): gens 1 and 2 go,
	// gen 3 survives as the newest verified generation.
	clk.advance(2 * time.Hour)
	rep, err = s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 2 || rep.Expired[0] != 1 || rep.Expired[1] != 2 {
		t.Fatalf("Expired = %v, want [1 2]", rep.Expired)
	}
	gens := s.Generations()
	if len(gens) != 1 || gens[0].Seq != 3 {
		t.Fatalf("survivors = %+v, want only gen 3", gens)
	}
	if _, err := s.ReadGeneration(3); err != nil {
		t.Fatalf("newest generation must stay readable: %v", err)
	}
	// The pruned payloads are destroyed, and a reopen agrees.
	s2 := openTest(t, dir, Options{Sleep: noSleep})
	if g := s2.Generations(); len(g) != 1 || g[0].Seq != 3 {
		t.Fatalf("reopened survivors = %+v", g)
	}
}

// TestScrubSkewTolerance: a generation expired by less than the skew
// window must not be pruned — replicas with slightly disagreeing clocks
// would otherwise prune/repair ping-pong.
func TestScrubSkewTolerance(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	opts := ttlOpts(clk, time.Minute)
	opts.TTLSkew = 30 * time.Second
	s := openTest(t, dir, opts)
	if _, err := s.Commit(1, payload(1, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(2, payload(2, 128)); err != nil {
		t.Fatal(err)
	}
	// 10s past gen 1's expiry but inside the 30s skew window.
	clk.advance(time.Minute + 10*time.Second)
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil || len(rep.Expired) != 0 {
		t.Fatalf("pruned inside skew window: %+v err=%v", rep.Expired, err)
	}
	// 31s past expiry: outside the window, pruned.
	clk.advance(21 * time.Second)
	rep, err = s.Scrub(ScrubOptions{})
	if err != nil || len(rep.Expired) != 1 || rep.Expired[0] != 1 {
		t.Fatalf("Expired = %v err=%v, want [1]", rep.Expired, err)
	}
}

// TestTTLKeepInteraction: the keep ring still prunes at commit time;
// TTL prunes the rest at scrub time; together the retained set is the
// intersection of both policies (plus the newest-survivor guarantee).
func TestTTLKeepInteraction(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	opts := ttlOpts(clk, time.Minute)
	opts.Keep = 3
	s := openTest(t, dir, opts)
	for step := 1; step <= 5; step++ {
		if _, err := s.Commit(step, payload(step, 128)); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	if gens := s.Generations(); len(gens) != 3 {
		t.Fatalf("keep ring holds %d generations, want 3", len(gens))
	}
	clk.advance(time.Hour)
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expired) != 2 {
		t.Fatalf("Expired = %v, want the 2 non-newest ring members", rep.Expired)
	}
	gens := s.Generations()
	if len(gens) != 1 || gens[0].Seq != 5 {
		t.Fatalf("survivors = %+v, want only gen 5", gens)
	}
}

// TestScrubNeverPrunesNewestEvenIfExpired pins the fail-safe: a fully
// expired store still restores from its newest generation.
func TestScrubNeverPrunesNewestEvenIfExpired(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	s := openTest(t, dir, ttlOpts(clk, time.Second))
	if _, err := s.Commit(1, payload(1, 128)); err != nil {
		t.Fatal(err)
	}
	clk.advance(24 * time.Hour)
	for pass := 0; pass < 3; pass++ {
		rep, err := s.Scrub(ScrubOptions{})
		if err != nil || len(rep.Expired) != 0 {
			t.Fatalf("pass %d pruned the last generation: %+v err=%v", pass, rep.Expired, err)
		}
	}
	if _, err := s.ReadGeneration(1); err != nil {
		t.Fatalf("newest generation gone: %v", err)
	}
}

// TestReplicatedTTLStampIdentical: the coordinator assigns one expiry
// for the whole fan-out, so replica records stay byte-identical and
// quorum reads keep working under TTL.
func TestReplicatedTTLStampIdentical(t *testing.T) {
	root := t.TempDir()
	clk := newFakeClock(1_000_000)
	opts := ttlOpts(clk, time.Hour)
	r, err := OpenReplicated(root, ReplicaDirs(root, 3), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := r.Commit(1, payload(1, 256))
	if err != nil {
		t.Fatal(err)
	}
	r.Wait()
	want := clk.t.Add(time.Hour).Unix()
	if gen.ExpireAt != want {
		t.Fatalf("quorum record ExpireAt = %d, want %d", gen.ExpireAt, want)
	}
	for i := 0; i < r.Replicas(); i++ {
		st, _ := r.Replica(i)
		g, ok := st.Record(gen.Seq)
		if !ok || g != gen {
			t.Fatalf("replica %d record %+v diverges from quorum %+v", i, g, gen)
		}
	}
	if d := r.Divergence(); d != 0 {
		t.Fatalf("divergence = %d after TTL commit", d)
	}
}

// TestRescanPreservesExpireAt: losing the manifest must not turn the
// expiry stamps into prune orders or lose them silently — a rescan
// keeps the stamp when the payload still matches the old record.
func TestRescanPreservesExpireAt(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(1_000_000)
	s := openTest(t, dir, ttlOpts(clk, time.Hour))
	gen, err := s.Commit(1, payload(1, 256))
	if err != nil {
		t.Fatal(err)
	}
	// Force a rescan through the scrub path (manifest intact): the
	// rebuilt index must carry the stamp forward.
	s.mu.Lock()
	if err := s.rescan(0); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	g := s.man.Gens[0]
	s.mu.Unlock()
	if g.Seq != gen.Seq || g.ExpireAt != gen.ExpireAt {
		t.Fatalf("rescan record = %+v, want ExpireAt %d", g, gen.ExpireAt)
	}
}
