package store

import (
	"lossyckpt/internal/obs"
	"lossyckpt/internal/obs/journal"
)

// Metric names recorded by the store. Commit latency/count/errors come
// from a span named MetricCommitSpan (yielding _seconds, _total and
// _errors_total series); retries are labeled with the low-level op that
// needed them (create/write/sync/close/rename/syncdir/mkdir).
const (
	MetricCommitSpan       = "lossyckpt_store_commit"
	MetricCommitBytes      = "lossyckpt_store_commit_bytes_total"
	MetricRetries          = "lossyckpt_store_retries_total"
	MetricBackoffSeconds   = "lossyckpt_store_backoff_seconds_total"
	MetricManifestRebuilds = "lossyckpt_store_manifest_rebuilds_total"
	MetricSweptFiles       = "lossyckpt_store_swept_files_total"
	MetricReads            = "lossyckpt_store_reads_total"
	MetricPrunedGens       = "lossyckpt_store_pruned_generations_total"

	// Scrub metrics: runs, generations checked, generations quarantined
	// (labeled reason=<crc|size|missing|verify>), and scrub-triggered
	// manifest rebuilds fold into MetricManifestRebuilds above.
	MetricScrubRuns        = "lossyckpt_store_scrub_runs_total"
	MetricScrubChecked     = "lossyckpt_store_scrub_checked_total"
	MetricScrubQuarantined = "lossyckpt_store_scrub_quarantined_total"
	// MetricExpiredGens counts generations TTL retention pruned.
	MetricExpiredGens = "lossyckpt_store_expired_generations_total"

	// Replication metrics: per-replica commit outcomes (labeled
	// replica=<index>, ok=<true|false>), read-repair events (labeled
	// replica=<index>, reason=<missing|corrupt|divergent>), commits or
	// restores that could not assemble a quorum, and a gauge of
	// generations still differing across replicas after the last scrub
	// or repair pass.
	MetricReplicaCommits  = "lossyckpt_store_replica_commits_total"
	MetricReadRepairs     = "lossyckpt_store_read_repairs_total"
	MetricQuorumFailures  = "lossyckpt_store_quorum_failures_total"
	MetricReplicaDiverged = "lossyckpt_store_replica_divergence"

	// Dedup metrics: chunk outcomes per commit (new = written,
	// reused = already present), cumulative logical vs physical bytes
	// committed through the dedup path, the logical/physical ratio of
	// the last dedup commit, and GC activity (runs, chunks swept, live
	// chunk population after the last pass).
	MetricDedupChunksNew     = "lossyckpt_store_dedup_chunks_new_total"
	MetricDedupChunksReused  = "lossyckpt_store_dedup_chunks_reused_total"
	MetricDedupLogicalBytes  = "lossyckpt_store_dedup_logical_bytes_total"
	MetricDedupPhysicalBytes = "lossyckpt_store_dedup_physical_bytes_total"
	MetricDedupRatio         = "lossyckpt_store_dedup_ratio"
	MetricGCRuns             = "lossyckpt_store_gc_runs_total"
	MetricGCSweptChunks      = "lossyckpt_store_gc_swept_chunks_total"
	MetricGCLiveChunks       = "lossyckpt_store_gc_live_chunks"
)

// observer resolves the store's effective observer: the explicit one from
// Options, else the process default (usually nil — a no-op).
func (s *Store) observer() *obs.Registry {
	if s.opts.Observer != nil {
		return s.opts.Observer
	}
	return obs.Default()
}

// journal resolves the store's effective flight recorder: the
// configured one, else the process default (a no-op unless installed).
func (s *Store) journal() *journal.Journal {
	if s.opts.Journal != nil {
		return s.opts.Journal
	}
	return journal.Default()
}
