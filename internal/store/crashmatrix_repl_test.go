package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// copyReplicaDirs clones an N-way replica tree so every crash point
// starts from the same committed baseline.
func copyReplicaDirs(t *testing.T, src string, n int) string {
	t.Helper()
	dst := t.TempDir()
	for i := 0; i < n; i++ {
		sdir := filepath.Join(src, fmt.Sprintf("r%d", i))
		ddir := filepath.Join(dst, fmt.Sprintf("r%d", i))
		if err := os.MkdirAll(ddir, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(sdir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() {
				continue // quarantine/ never exists in the baseline
			}
			data, err := os.ReadFile(filepath.Join(sdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(ddir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// TestReplicatedCrashMatrix is the acceptance harness for N=3/W=2: a
// kill (clean crash or torn write) is injected at every write boundary
// of one victim replica's commit, PLUS at-rest bit-flip corruption of a
// second replica's newest payload — and every single crash point must
// still yield: a successful quorum commit, a successful verified
// restore of the new payload, and a scrub that converges all three
// replicas to byte-identical state with zero residual divergence.
func TestReplicatedCrashMatrix(t *testing.T) {
	const n, w = 3, 2
	old := payload(1, 3000)
	new_ := payload(2, 3500)

	// Baseline: every replica holds generation 1.
	baseline := t.TempDir()
	r0, err := OpenReplicated(baseline, ReplicaDirs(baseline, n), w, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Commit(10, old); err != nil {
		t.Fatal(err)
	}
	r0.Wait()

	// Dry run: count the write boundaries of one replica's commit (each
	// replica performs the identical op sequence for the same payload).
	probeRoot := copyReplicaDirs(t, baseline, n)
	probeFS := make([]FS, n)
	var probe *FaultFS
	for i := range probeFS {
		f := NewFaultFS(OsFS{})
		probeFS[i] = f
		if i == 0 {
			probe = f
		}
	}
	rp, err := OpenReplicated(probeRoot, ReplicaDirs(probeRoot, n), w, Options{Sleep: noSleep}, probeFS...)
	if err != nil {
		t.Fatal(err)
	}
	preOps := probe.Ops()
	if _, err := rp.Commit(20, new_); err != nil {
		t.Fatal(err)
	}
	rp.Wait()
	commitOps := probe.Ops() - preOps
	if commitOps < 10 {
		t.Fatalf("suspiciously few ops per replica commit: %d (journal %v)", commitOps, probe.Journal())
	}

	crashes, restores, repairsNeeded := 0, 0, 0
	for victim := 0; victim < n; victim++ {
		corrupter := (victim + 1) % n // a different replica decays at rest
		for k := 1; k <= commitOps; k++ {
			for _, tear := range []bool{false, true} {
				fault := Fault{Kind: Crash}
				name := "crash"
				if tear {
					fault = Fault{Kind: TornWrite, TornBytes: 97}
					name = "torn"
				}
				tag := fmt.Sprintf("victim=%d k=%d %s", victim, k, name)

				root := copyReplicaDirs(t, baseline, n)
				fss := make([]FS, n)
				ffss := make([]*FaultFS, n)
				for i := range fss {
					ffss[i] = NewFaultFS(OsFS{})
					fss[i] = ffss[i]
				}
				r, err := OpenReplicated(root, ReplicaDirs(root, n), w, Options{Sleep: noSleep}, fss...)
				if err != nil {
					t.Fatalf("%s: open: %v", tag, err)
				}
				ffss[victim].FailAt(ffss[victim].Ops()+k, fault)

				// The quorum commit must succeed despite the victim dying
				// at any boundary: the other two replicas are the quorum.
				gen, commitErr := r.Commit(20, new_)
				r.Wait()
				if commitErr != nil {
					t.Fatalf("%s: quorum commit failed: %v\nvictim journal: %v",
						tag, commitErr, ffss[victim].Journal())
				}
				if !ffss[victim].Crashed() {
					// Fault landed past this commit's ops on the victim
					// (op counts can shift with retries); nothing to verify.
					continue
				}
				crashes++

				// At-rest corruption of a second replica's newest payload:
				// the store now has one dead replica and one lying one.
				ffs := NewFaultFS(OsFS{})
				if err := ffs.CorruptAtRest(
					filepath.Join(root, fmt.Sprintf("r%d", corrupter), genName(gen.Seq)),
					Fault{Kind: BitFlip, FlipByte: 1234}); err != nil {
					t.Fatalf("%s: corrupt at rest: %v", tag, err)
				}

				// "Reboot" the fleet: reopen every replica on the real FS.
				r2, err := OpenReplicated(root, ReplicaDirs(root, n), w, Options{Sleep: noSleep})
				if err != nil {
					t.Fatalf("%s: reopen: %v", tag, err)
				}
				latest, ok := r2.Latest()
				if !ok {
					t.Fatalf("%s: fleet lost all generations", tag)
				}
				if latest.Seq != gen.Seq {
					t.Fatalf("%s: latest = %d, want %d", tag, latest.Seq, gen.Seq)
				}
				// Restore must return the new payload, verified — zero
				// torn states regardless of where the victim died or
				// which replica lies.
				got, err := r2.ReadGeneration(latest.Seq)
				if err != nil {
					t.Fatalf("%s: restore failed: %v\nvictim journal: %v",
						tag, err, ffss[victim].Journal())
				}
				if !bytes.Equal(got, new_) {
					t.Fatalf("%s: restored bytes differ (%d bytes)", tag, len(got))
				}
				restores++
				// The prior generation survives as fallback everywhere.
				if prior, err := r2.ReadGeneration(1); err != nil || !bytes.Equal(prior, old) {
					t.Fatalf("%s: prior generation lost: %v", tag, err)
				}

				// Scrub converges the fleet: zero divergence, all three
				// replicas byte-identical for every retained generation.
				rep, err := r2.Scrub(ScrubOptions{})
				if err != nil {
					t.Fatalf("%s: scrub: %v", tag, err)
				}
				if rep.Divergent != 0 {
					t.Fatalf("%s: residual divergence %d: %+v", tag, rep.Divergent, rep)
				}
				for _, rs := range rep.Replicas {
					repairsNeeded += len(rs.Repaired)
				}
				for _, g := range r2.Generations() {
					want := old
					if g.Seq == gen.Seq {
						want = new_
					}
					for i := 0; i < n; i++ {
						data, err := os.ReadFile(filepath.Join(root, fmt.Sprintf("r%d", i), genName(g.Seq)))
						if err != nil || !bytes.Equal(data, want) {
							t.Fatalf("%s: replica %d gen %d not byte-identical after scrub: %v",
								tag, i, g.Seq, err)
						}
					}
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatal("harness injected no crashes")
	}
	if restores != crashes {
		t.Fatalf("accounting mismatch: %d crashes, %d successful restores", crashes, restores)
	}
	t.Logf("replicated crash matrix: %d ops per commit, %d crash points across %d victims, %d/%d restores verified, %d read-repairs applied",
		commitOps, crashes, n, restores, crashes, repairsNeeded)
}
