// scrub.go audits generations already on disk. Commit-time durability
// (temp+fsync+rename, or pointer swap on the object backend) protects
// against crashes, not against media decay after the commit: a bit that
// rots in a retained generation is invisible until restore needs exactly
// that generation. Scrub re-reads every retained generation, re-verifies
// its size and CRC against the manifest (plus an optional content-level
// verifier, e.g. ckpt.StoreVerifier), and moves anything corrupt into
// quarantine — never deleting, so a human or a forensic tool can still
// salvage frames from it. When the newest generation is the casualty the
// manifest is rebuilt from the surviving files, keeping NextSeq monotonic
// so quarantined sequence numbers are never reissued.
package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync"
	"time"
)

// QuarantineDir is the subdirectory (under the store root) that the
// posix backend moves corrupt generation files into.
const QuarantineDir = "quarantine"

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// Verify, when non-nil, content-checks each generation payload after
	// the size/CRC check passes (e.g. ckpt.StoreVerifier re-parses stream
	// framing and guard envelopes, optionally with a full decode). A
	// returned error quarantines the generation with reason "verify".
	Verify func(data []byte) error
}

// Quarantined records one generation a scrub removed from the index.
type Quarantined struct {
	Seq uint64
	// Reason is why: "size", "crc" (manifest mismatch), "verify"
	// (ScrubOptions.Verify rejected the content), "recipe" / "chunk"
	// (dedup generation whose recipe fails to decode or references a
	// missing/corrupt chunk), or "divergent" (replicated scrub: record
	// disagrees with the quorum).
	Reason string
	// Path is where the file now lives, relative to the store root.
	Path string
}

// ReplicaScrub is one replica's slice of a replicated scrub pass.
type ReplicaScrub struct {
	// Replica is the replica index (position in the ReplicatedStore).
	Replica int
	// Report is the replica's local scrub result; nil when the replica
	// could not be scrubbed at all.
	Report *ScrubReport
	// Err is the replica-local infrastructure failure, if any.
	Err error
	// Repaired lists generations read-repair re-materialized onto this
	// replica during the convergence phase.
	Repaired []uint64
	// Dropped lists obsolete generations removed from this replica
	// because the quorum has pruned past them.
	Dropped []uint64
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Checked counts generations examined.
	Checked int
	// Quarantined lists generations moved to quarantine.
	Quarantined []Quarantined
	// Missing lists indexed generations whose file has vanished: nothing
	// to quarantine, they are just dropped from the index.
	Missing []uint64
	// Expired lists generations TTL retention pruned this pass. Unlike
	// quarantine this destroys the payload — expiry is policy, not
	// corruption — and the newest verified generation is never pruned,
	// so a store cannot scrub itself down to zero restorable state.
	Expired []uint64
	// ManifestRebuilt is true when the newest generation was dropped and
	// the manifest was rebuilt from the surviving files.
	ManifestRebuilt bool
	// GC, on a store with dedup state, reports the mark-and-sweep pass
	// over the chunk store that runs after the generation audit; nil
	// when the store holds no chunks and dedup is off.
	GC *GCReport
	// Replicas, on a replicated scrub, holds each replica's local pass
	// plus what the convergence phase did to it; nil on a plain Store.
	Replicas []ReplicaScrub
	// Divergent counts generations that still differ across replicas
	// after repair — the residual the divergence gauge reports.
	Divergent int
}

// Clean reports whether the pass found nothing wrong.
func (r *ScrubReport) Clean() bool {
	if len(r.Quarantined) != 0 || len(r.Missing) != 0 || r.Divergent != 0 {
		return false
	}
	for _, rs := range r.Replicas {
		if rs.Err != nil || len(rs.Repaired) != 0 || len(rs.Dropped) != 0 {
			return false
		}
		if rs.Report != nil && !rs.Report.Clean() {
			return false
		}
	}
	return true
}

// Scrub audits every retained generation and quarantines corrupt ones.
// It holds the store lock for the whole pass (including Verify calls),
// so commits block behind it; size the scrub interval accordingly. The
// error covers infrastructure failures (unreadable directory, a move
// into quarantine failing) — corrupt generations are not errors, they
// are the report.
func (s *Store) Scrub(opts ScrubOptions) (rep *ScrubReport, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	rep = &ScrubReport{}
	o := s.observer()
	start := time.Now()
	jop := s.journal().Begin("store.scrub", "dir", s.dir, "mode", "local")
	if jop != nil {
		defer func() {
			jop.Set("checked", strconv.Itoa(rep.Checked),
				"quarantined", strconv.Itoa(len(rep.Quarantined)),
				"missing", strconv.Itoa(len(rep.Missing)),
				"expired", strconv.Itoa(len(rep.Expired)),
				"rebuilt", strconv.FormatBool(rep.ManifestRebuilt))
			jop.End(err)
		}()
	}

	gens := s.generationsLocked()
	var survivors []Generation
	dropped := false
	for _, g := range gens {
		rep.Checked++
		data, reason, missing := s.scrubResolveLocked(g)
		if missing {
			// File vanished (or is unreadable): there is nothing on disk
			// to preserve, so just drop it from the index. Any chunk
			// references it held are released by the GC pass below.
			rep.Missing = append(rep.Missing, g.Seq)
			s.detachRecipeLocked(g.Seq)
			dropped = true
			if o != nil {
				o.Event("store.scrub_missing", "seq", g.Seq)
			}
			continue
		}
		if reason == "" {
			switch {
			case uint64(len(data)) != g.Size:
				reason = "size"
			case crc32.ChecksumIEEE(data) != g.CRC:
				reason = "crc"
			case opts.Verify != nil:
				if verr := opts.Verify(data); verr != nil {
					reason = "verify"
					if o != nil {
						o.Event("store.scrub_verify_failed", "seq", g.Seq, "err", verr.Error())
					}
				}
			}
		}
		if reason == "" {
			survivors = append(survivors, g)
			continue
		}
		qpath, err := s.b.Quarantine(g.Seq)
		if err != nil {
			return rep, fmt.Errorf("store: quarantining gen %d: %w", g.Seq, err)
		}
		// Quarantine parks the recipe; its chunks stay referenced until a
		// GC pass recomputes marks (the quarantined copy keeps them).
		s.detachRecipeLocked(g.Seq)
		dropped = true
		rep.Quarantined = append(rep.Quarantined, Quarantined{Seq: g.Seq, Reason: reason, Path: qpath})
		if o != nil {
			o.Counter(MetricScrubQuarantined, "reason", reason).Inc()
			o.Event("store.scrub_quarantined", "seq", g.Seq, "reason", reason, "path", qpath)
		}
	}

	// TTL retention: prune expired survivors, destroying the payload (it
	// is obsolete by policy, not corrupt). The stamp on the record is
	// authoritative, so expiry is honored even if the store was reopened
	// without Options.TTL. The newest verified generation always
	// survives, and the skew tolerance keeps replicas with disagreeing
	// clocks from prune/repair ping-pong.
	if n := len(survivors); n > 0 {
		nowU := s.now().Unix()
		skew := s.ttlSkewSeconds()
		kept := survivors[:0]
		for i, g := range survivors {
			if i < n-1 && g.Expired(nowU, skew) {
				rep.Expired = append(rep.Expired, g.Seq)
				dropped = true
				s.releaseGenLocked(g)
				if o != nil {
					o.Counter(MetricExpiredGens).Inc()
					o.Event("store.scrub_expired", "seq", g.Seq, "expire_at", g.ExpireAt)
				}
				continue
			}
			kept = append(kept, g)
		}
		survivors = kept
	}

	if dropped {
		newestDropped := len(gens) > 0 && (len(survivors) == 0 || survivors[len(survivors)-1].Seq != gens[len(gens)-1].Seq)
		if newestDropped {
			// The generation a restore would reach for first is gone:
			// rebuild the index from the files themselves, holding
			// NextSeq so quarantined sequence numbers are never reused.
			if err := s.rescan(s.man.NextSeq); err != nil {
				return rep, fmt.Errorf("store: manifest rebuild after scrub: %w", err)
			}
			rep.ManifestRebuilt = true
			if o != nil {
				o.Counter(MetricManifestRebuilds).Inc()
				o.Event("store.scrub_rebuild", "dir", s.dir, "survivors", len(s.man.Gens))
			}
		} else {
			next := manifest{NextSeq: s.man.NextSeq, Gens: survivors}
			if err := s.writeManifest(next); err != nil {
				return rep, fmt.Errorf("store: persisting scrubbed manifest: %w", err)
			}
			s.man = next
		}
	}

	// Mark-and-sweep the chunk store after the generation audit: the
	// audit above may have quarantined or expired dedup generations, and
	// GC is the crash backstop that collects orphan chunks and rebuilds
	// the refcount ledger from durable truth.
	if s.dedupActiveLocked() {
		gcRep, gcErr := s.gcLocked()
		rep.GC = gcRep
		if gcErr != nil && o != nil {
			o.Event("store.gc_error", "dir", s.dir, "err", gcErr.Error())
		}
	}

	if o != nil {
		o.Counter(MetricScrubRuns).Inc()
		o.Counter(MetricScrubChecked).Add(float64(rep.Checked))
		o.Event("store.scrub", "dir", s.dir,
			"checked", rep.Checked,
			"quarantined", len(rep.Quarantined),
			"missing", len(rep.Missing),
			"rebuilt", rep.ManifestRebuilt,
			"elapsed", time.Since(start).String())
	}
	return rep, nil
}

// Quarantine moves one generation's payload out of the visible namespace
// without destroying it and drops its manifest record — the exported
// surface the replicated scrubber uses to park divergent copies.
func (s *Store) Quarantine(seq uint64) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := s.generationsLocked()
	kept := gens[:0]
	found := false
	for _, g := range gens {
		if g.Seq == seq {
			found = true
			continue
		}
		kept = append(kept, g)
	}
	if !found {
		return "", fmt.Errorf("%w: generation %d", ErrNoGeneration, seq)
	}
	qpath, err := s.b.Quarantine(seq)
	if err != nil {
		return "", fmt.Errorf("store: quarantining gen %d: %w", seq, err)
	}
	// A dedup recipe keeps its chunk references alive from quarantine;
	// only the per-seq bookkeeping is dropped (see detachRecipeLocked).
	s.detachRecipeLocked(seq)
	// NextSeq is already past the quarantined number, so dropping the
	// record cannot reissue it.
	m := manifest{NextSeq: s.man.NextSeq, Gens: append([]Generation(nil), kept...)}
	if err := s.writeManifest(m); err != nil {
		return qpath, fmt.Errorf("store: quarantine gen %d: manifest: %w", seq, err)
	}
	s.man = m
	return qpath, nil
}

// StartScrubber runs Scrub every interval until the returned stop
// function is called. Scrub failures are recorded through the store's
// observer and do not stop the loop. stop is idempotent and waits for an
// in-flight pass to finish.
func (s *Store) StartScrubber(interval time.Duration, opts ScrubOptions) (stop func()) {
	return startScrubLoop(context.Background(), interval, func() {
		if _, err := s.Scrub(opts); err != nil {
			if o := s.observer(); o != nil {
				o.Event("store.scrub_error", "dir", s.dir, "err", err.Error())
			}
		}
	})
}

// StartScrubberCtx is StartScrubber for daemon-style callers: the loop
// also exits when ctx is cancelled, draining an in-flight pass first.
// The returned stop remains usable (idempotent, waits for drain) and is
// equivalent to cancelling ctx.
func (s *Store) StartScrubberCtx(ctx context.Context, interval time.Duration, opts ScrubOptions) (stop func()) {
	return startScrubLoop(ctx, interval, func() {
		if _, err := s.Scrub(opts); err != nil {
			if o := s.observer(); o != nil {
				o.Event("store.scrub_error", "dir", s.dir, "err", err.Error())
			}
		}
	})
}

// startScrubLoop is the shared scrubber engine: tick until stopped or
// ctx cancelled, never overlapping passes, drain the in-flight pass
// before stop/cancel returns control.
func startScrubLoop(ctx context.Context, interval time.Duration, pass func()) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				// A tick and a cancellation can be ready together; never
				// start a fresh pass after cancellation.
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				default:
				}
				pass()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
