package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrManifest indicates a structurally invalid or checksum-failing
// manifest. Open treats it as a lost manifest and rebuilds from a
// directory scan; the error surfaces only from DecodeManifest itself.
var ErrManifest = errors.New("store: malformed manifest")

const (
	manifestMagic   = 0x4D534B4C // "LKSM"
	manifestVersion = 1
	// manifestVersionTTL extends each entry with an expire_at timestamp.
	// encode only emits it when some generation actually carries one, so
	// TTL-free stores stay byte-identical to version 1.
	manifestVersionTTL = 2
	// manifestVersionFlags extends each entry with a flags word (dedup
	// bit). Again emitted only when some generation carries a flag, so
	// stores that never dedup stay byte-identical to earlier releases.
	manifestVersionFlags = 3
	// maxManifestGens bounds the generation count a manifest header may
	// declare, so a corrupt count cannot force a huge allocation.
	maxManifestGens = 1 << 16
	manifestHeader  = 4 + 2 + 8 + 4       // magic, version, nextSeq, count
	manifestEntry   = 8 + 8 + 8 + 4       // seq, step, size, crc
	manifestEntryV2 = manifestEntry + 8   // + expire_at
	manifestEntryV3 = manifestEntryV2 + 4 // + flags
)

// Generation flags.
const (
	// GenFlagDedup marks a generation whose payload object is a cas
	// recipe: the manifest Size/CRC still describe the LOGICAL payload
	// (what ReadGeneration returns), and the physical bytes live in
	// refcounted chunks the recipe references.
	GenFlagDedup uint32 = 1 << 0
)

// Generation is one retained checkpoint: its monotonically increasing
// sequence number, the application step stored in it, and the size and
// CRC-32 (IEEE) of its payload file.
type Generation struct {
	Seq  uint64
	Step uint64
	Size uint64
	CRC  uint32
	// ExpireAt is the unix second after which TTL retention may prune
	// this generation (0 = never expires). It is assigned once by the
	// commit coordinator, so every replica records the identical value
	// and quorum voting stays byte-exact.
	ExpireAt int64
	// Flags carries per-generation format bits (GenFlagDedup). Content-
	// defined chunking is deterministic, so replicas of one commit derive
	// the identical flag word and quorum voting stays byte-exact.
	Flags uint32
}

// Dedup reports whether this generation's payload object is a recipe of
// content-addressed chunks rather than the logical bytes themselves.
func (g Generation) Dedup() bool { return g.Flags&GenFlagDedup != 0 }

// Expired reports whether the generation's TTL has elapsed at time
// nowUnix, tolerating skew seconds of clock disagreement.
func (g Generation) Expired(nowUnix int64, skew int64) bool {
	return g.ExpireAt != 0 && nowUnix > g.ExpireAt+skew
}

// manifest is the store's CRC-protected index: the next sequence number
// to allocate and the retained generations, oldest first.
type manifest struct {
	NextSeq uint64
	Gens    []Generation
}

// latest returns the newest generation, if any.
func (m *manifest) latest() (Generation, bool) {
	if len(m.Gens) == 0 {
		return Generation{}, false
	}
	return m.Gens[len(m.Gens)-1], true
}

// encode serializes the manifest with a trailing CRC-32 of everything
// before it. The version is 1 unless some generation carries an
// expire_at stamp, so stores that never use TTL retention produce
// byte-identical manifests to every earlier release.
func (m *manifest) encode() []byte {
	version, entry := uint16(manifestVersion), manifestEntry
	for _, g := range m.Gens {
		if g.Flags != 0 {
			version, entry = manifestVersionFlags, manifestEntryV3
			break
		}
		if g.ExpireAt != 0 {
			version, entry = manifestVersionTTL, manifestEntryV2
		}
	}
	out := make([]byte, 0, manifestHeader+entry*len(m.Gens)+4)
	var b8 [8]byte
	var b4 [4]byte
	var b2 [2]byte

	binary.LittleEndian.PutUint32(b4[:], manifestMagic)
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint16(b2[:], version)
	out = append(out, b2[:]...)
	binary.LittleEndian.PutUint64(b8[:], m.NextSeq)
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(m.Gens)))
	out = append(out, b4[:]...)
	for _, g := range m.Gens {
		binary.LittleEndian.PutUint64(b8[:], g.Seq)
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], g.Step)
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], g.Size)
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint32(b4[:], g.CRC)
		out = append(out, b4[:]...)
		if version >= manifestVersionTTL {
			binary.LittleEndian.PutUint64(b8[:], uint64(g.ExpireAt))
			out = append(out, b8[:]...)
		}
		if version >= manifestVersionFlags {
			binary.LittleEndian.PutUint32(b4[:], g.Flags)
			out = append(out, b4[:]...)
		}
	}
	binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(out))
	return append(out, b4[:]...)
}

// DecodeManifest parses and verifies a manifest image. Every
// header-declared size is validated against the remaining input before
// any allocation, and generations must be strictly increasing and below
// NextSeq — corrupt input returns ErrManifest, never panics.
func DecodeManifest(raw []byte) ([]Generation, uint64, error) {
	if len(raw) < manifestHeader+4 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrManifest, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrManifest)
	}
	if binary.LittleEndian.Uint32(body[0:4]) != manifestMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrManifest)
	}
	v := binary.LittleEndian.Uint16(body[4:6])
	entry := manifestEntry
	switch v {
	case manifestVersion:
	case manifestVersionTTL:
		entry = manifestEntryV2
	case manifestVersionFlags:
		entry = manifestEntryV3
	default:
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrManifest, v)
	}
	nextSeq := binary.LittleEndian.Uint64(body[6:14])
	count := binary.LittleEndian.Uint32(body[14:18])
	if count > maxManifestGens {
		return nil, 0, fmt.Errorf("%w: generation count %d exceeds cap", ErrManifest, count)
	}
	if len(body) != manifestHeader+entry*int(count) {
		return nil, 0, fmt.Errorf("%w: %d bytes for %d generations", ErrManifest, len(raw), count)
	}
	gens := make([]Generation, count)
	off := manifestHeader
	for i := range gens {
		gens[i] = Generation{
			Seq:  binary.LittleEndian.Uint64(body[off:]),
			Step: binary.LittleEndian.Uint64(body[off+8:]),
			Size: binary.LittleEndian.Uint64(body[off+16:]),
			CRC:  binary.LittleEndian.Uint32(body[off+24:]),
		}
		if v >= manifestVersionTTL {
			gens[i].ExpireAt = int64(binary.LittleEndian.Uint64(body[off+28:]))
		}
		if v >= manifestVersionFlags {
			gens[i].Flags = binary.LittleEndian.Uint32(body[off+36:])
		}
		if gens[i].Seq >= nextSeq {
			return nil, 0, fmt.Errorf("%w: generation %d not below next sequence %d", ErrManifest, gens[i].Seq, nextSeq)
		}
		if i > 0 && gens[i].Seq <= gens[i-1].Seq {
			return nil, 0, fmt.Errorf("%w: generations not strictly increasing", ErrManifest)
		}
		off += entry
	}
	return gens, nextSeq, nil
}
