// dedup.go is the store half of the content-addressed dedup layer.
// With Options.Dedup on, a commit no longer stores the logical payload:
// the byte stream is cut into content-defined chunks (internal/cas),
// each chunk is written at most once under its SHA-256 name through the
// backend's durable-write protocol, and the generation's payload object
// becomes a small recipe listing the chunk references. The manifest
// record keeps describing the LOGICAL bytes (size and CRC of what
// ReadGeneration returns), so replication quorum voting, read-repair
// and restore fallback are dedup-agnostic; a GenFlagDedup bit tells the
// read path to resolve the recipe.
//
// Crash consistency is inherited, not re-invented: every chunk is
// durable before the recipe commits, the recipe is durable before the
// manifest commits, and the manifest update remains the single commit
// point. A crash anywhere leaves at worst unreferenced chunks and an
// unindexed recipe — garbage, never corruption — collected by the next
// Open (orphan-chunk sweep) or GC pass.
//
// Reference counts live in an in-memory ledger (cas.Index) rebuilt at
// Open from the recipes of indexed and quarantined generations, kept
// current across commits and prunes, and reconstructed from scratch by
// the mark-and-sweep GC that runs with every Scrub — so a counter can
// never drift from the durable truth for longer than one GC cycle.
package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"

	"lossyckpt/internal/cas"
	"lossyckpt/internal/obs/journal"
)

// dedupState is the in-memory side of the chunk store: the refcount
// ledger plus the per-generation recipe bookkeeping that lets prune and
// Drop release references without re-reading recipes from disk.
type dedupState struct {
	cfg cas.Config
	idx *cas.Index
	// recipes maps indexed generation seq → its chunk references.
	// Quarantined recipes leave this map but keep their index references
	// until a GC pass recomputes marks (their chunks must stay
	// salvageable).
	recipes map[uint64][]cas.Ref
	// recipeBytes tracks the physical size of each indexed recipe object
	// for PhysicalBytes accounting.
	recipeBytes map[uint64]int64
}

func newDedupState(cfg cas.Config) *dedupState {
	return &dedupState{
		cfg:         cfg,
		idx:         cas.NewIndex(),
		recipes:     make(map[uint64][]cas.Ref),
		recipeBytes: make(map[uint64]int64),
	}
}

// loadDedupLocked rebuilds the refcount ledger from the recipes of
// every indexed dedup generation plus whatever sits in quarantine, then
// sweeps orphan chunks (crash leftovers) — the open half of the "no
// chunk leaks beyond one GC cycle" guarantee. Unreadable indexed
// recipes disable the orphan sweep for this open (fail-safe: never
// sweep a chunk whose liveness is unknown); the scrubber will
// quarantine the recipe and the next GC converges.
func (s *Store) loadDedupLocked() {
	anyDedup := s.opts.Dedup
	for _, g := range s.man.Gens {
		if g.Dedup() {
			anyDedup = true
			break
		}
	}
	chunkNames, _ := s.b.ListChunks()
	if !anyDedup && len(chunkNames) == 0 {
		return
	}
	safeToSweep := true
	for _, g := range s.man.Gens {
		if !g.Dedup() {
			continue
		}
		raw, err := s.b.ReadPayload(g.Seq)
		if err != nil {
			safeToSweep = false
			continue
		}
		rec, derr := cas.DecodeRecipe(raw)
		if derr != nil {
			safeToSweep = false
			continue
		}
		s.dd.idx.Add(rec.Chunks)
		s.dd.recipes[g.Seq] = rec.Chunks
		s.dd.recipeBytes[g.Seq] = int64(len(raw))
	}
	if qs, err := s.b.QuarantinedPayloads(); err == nil {
		for _, raw := range qs {
			if rec, derr := cas.DecodeRecipe(raw); derr == nil {
				s.dd.idx.Add(rec.Chunks)
			}
		}
	}
	if !safeToSweep {
		return
	}
	swept := 0
	for _, name := range chunkNames {
		h, perr := cas.ParseHash(name)
		if perr == nil && s.dd.idx.Has(h) {
			continue
		}
		s.b.RemoveChunk(name)
		swept++
	}
	if o := s.observer(); o != nil && swept > 0 {
		o.Counter(MetricGCSweptChunks).Add(float64(swept))
		o.Event("store.dedup_open_sweep", "dir", s.dir, "swept", swept)
	}
}

// commitDedupLocked is the dedup commit core, the counterpart of the
// plain path in commitAtLocked: chunk the logical stream, write only
// the chunks the ledger does not hold, commit the recipe as the
// generation payload, then make the manifest update — still the single
// commit point. The caller holds s.mu.
func (s *Store) commitDedupLocked(seq uint64, step int, expireAt int64, feed func(io.Writer) error, jop *journal.Op) (gen Generation, err error) {
	ctx := s.retryCtx()
	var (
		refs      []cas.Ref
		newChunks []cas.Hash
		staged    = make(map[cas.Hash]bool)
		reused    int
		newBytes  int64
	)
	chunker, err := cas.NewChunker(s.dd.cfg, func(chunk []byte) error {
		h := cas.Sum(chunk)
		refs = append(refs, cas.Ref{Hash: h, Len: uint32(len(chunk))})
		if s.dd.idx.Has(h) || staged[h] {
			reused++
			return nil
		}
		if werr := s.b.WriteChunk(h.String(), chunk); werr != nil {
			return werr
		}
		staged[h] = true
		newChunks = append(newChunks, h)
		newBytes += int64(len(chunk))
		return nil
	})
	if err != nil {
		return Generation{}, fmt.Errorf("store: commit gen %d: %w", seq, err)
	}
	// A failed or cancelled commit removes the chunks it wrote: they are
	// referenced by nothing durable, and eager cleanup keeps the error
	// path litter-free (a crash instead leaves them for the open sweep).
	abort := func() {
		for _, h := range newChunks {
			s.b.RemoveChunk(h.String())
		}
	}
	cw := &countingWriter{w: chunker}
	var sink io.Writer = cw
	if ctx.Done() != nil {
		sink = ctxFailWriter{ctx: ctx, w: cw}
	}
	if err := feed(sink); err != nil {
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: stream: %w", seq, err)
	}
	if err := chunker.Flush(); err != nil {
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: stream: %w", seq, err)
	}
	if cerr := ctx.Err(); cerr != nil {
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: %w", seq, cerr)
	}
	jop.Progress("chunks_durable", newBytes)

	rec := &cas.Recipe{Size: cw.n, CRC: cw.crc, Chunks: refs}
	raw := rec.Encode()
	pw, err := s.b.BeginPayload(seq)
	if err != nil {
		abort()
		return Generation{}, err
	}
	if _, werr := pw.Write(raw); werr != nil {
		pw.Abort()
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: recipe: %w", seq, werr)
	}
	if cerr := pw.Commit(); cerr != nil {
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: recipe: %w", seq, cerr)
	}
	jop.Progress("recipe_durable", int64(len(raw)))

	gen = Generation{
		Seq:      seq,
		Step:     uint64(step),
		Size:     cw.n,
		CRC:      cw.crc,
		ExpireAt: expireAt,
		Flags:    GenFlagDedup,
	}
	next := manifest{NextSeq: seq + 1, Gens: append(s.generationsLocked(), gen)}
	var dropped []Generation
	if s.opts.Keep > 0 && len(next.Gens) > s.opts.Keep {
		cut := len(next.Gens) - s.opts.Keep
		dropped = append(dropped, next.Gens[:cut]...)
		next.Gens = append([]Generation(nil), next.Gens[cut:]...)
	}
	if err := s.writeManifest(next); err != nil {
		// The recipe object is durable but unindexed: garbage the next
		// sweep collects. The chunks are removed now — nothing indexed
		// references them.
		abort()
		return Generation{}, fmt.Errorf("store: commit gen %d: manifest: %w", seq, err)
	}
	s.man = next
	s.dd.idx.Add(refs)
	s.dd.recipes[seq] = refs
	s.dd.recipeBytes[seq] = int64(len(raw))
	for _, g := range dropped {
		s.releaseGenLocked(g)
	}
	if o := s.observer(); o != nil {
		if len(dropped) > 0 {
			o.Counter(MetricPrunedGens).Add(float64(len(dropped)))
		}
		o.Counter(MetricDedupChunksNew).Add(float64(len(newChunks)))
		o.Counter(MetricDedupChunksReused).Add(float64(reused))
		o.Counter(MetricDedupLogicalBytes).Add(float64(cw.n))
		o.Counter(MetricDedupPhysicalBytes).Add(float64(newBytes + int64(len(raw))))
		if cw.n > 0 {
			o.Gauge(MetricDedupRatio).Set(float64(cw.n) / float64(newBytes+int64(len(raw))))
		}
	}
	jop.Set("dedup", "true",
		"chunks_new", strconv.Itoa(len(newChunks)),
		"chunks_reused", strconv.Itoa(reused))
	jop.SetBytes(int64(cw.n), newBytes+int64(len(raw)))
	return gen, nil
}

// readDedupLocked resolves a dedup generation: read the recipe, fetch
// and hash-verify each chunk, reassemble. Mirroring the plain read
// contract, corruption is reported through verified=false — with the
// verifying prefix of the payload, so frame-level partial recovery can
// still mine it — and err is reserved for a missing payload object.
func (s *Store) readDedupLocked(gen Generation) (data []byte, verified bool, err error) {
	raw, err := s.b.ReadPayload(gen.Seq)
	if err != nil {
		return nil, false, fmt.Errorf("store: read gen %d: %w", gen.Seq, err)
	}
	rec, derr := cas.DecodeRecipe(raw)
	if derr != nil {
		return nil, false, nil
	}
	out := make([]byte, 0, rec.Size)
	complete := true
	for _, ref := range rec.Chunks {
		cdata, cerr := s.b.ReadChunk(ref.Hash.String())
		if cerr != nil || uint32(len(cdata)) != ref.Len || cas.Sum(cdata) != ref.Hash {
			complete = false
			break
		}
		out = append(out, cdata...)
	}
	verified = complete &&
		uint64(len(out)) == gen.Size &&
		crc32.ChecksumIEEE(out) == gen.CRC
	return out, verified, nil
}

// releaseGenLocked removes a generation's payload and, for dedup
// generations, drops its chunk references — deleting chunks that
// reached zero. The destructive prune path (retention, Drop, TTL
// expiry); quarantine goes through detachRecipeLocked instead.
func (s *Store) releaseGenLocked(g Generation) {
	if g.Dedup() {
		if refs, ok := s.dd.recipes[g.Seq]; ok {
			for _, h := range s.dd.idx.Release(refs) {
				s.b.RemoveChunk(h.String())
			}
			delete(s.dd.recipes, g.Seq)
			delete(s.dd.recipeBytes, g.Seq)
		}
	}
	s.b.RemovePayload(g.Seq)
}

// detachRecipeLocked forgets a generation's recipe bookkeeping WITHOUT
// releasing its index references — the quarantine path: the recipe
// object still exists (in quarantine) and its chunks must survive until
// a GC pass recomputes marks from the quarantine listing.
func (s *Store) detachRecipeLocked(seq uint64) {
	delete(s.dd.recipes, seq)
	delete(s.dd.recipeBytes, seq)
}

// GCReport summarizes one mark-and-sweep pass over the chunk store.
type GCReport struct {
	// LiveChunks / LiveBytes describe the chunk population referenced by
	// indexed or quarantined recipes after the pass.
	LiveChunks int
	LiveBytes  int64
	// SweptChunks counts unreferenced chunk objects removed.
	SweptChunks int
	// QuarantinedRecipes counts quarantined payloads that parsed as
	// recipes and contributed marks.
	QuarantinedRecipes int
}

// GC runs a full mark-and-sweep over the chunk store: marks are the
// chunk references of every indexed dedup generation plus every
// quarantined payload that parses as a recipe; everything else is
// swept. The refcount ledger is rebuilt from the marks, so GC is also
// the self-healing backstop for any in-memory drift. It holds the store
// lock for the whole pass — a restore can never observe a half-swept
// chunk set.
func (s *Store) GC() (*GCReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

func (s *Store) gcLocked() (rep *GCReport, err error) {
	rep = &GCReport{}
	jop := s.journal().Begin("store.gc", "dir", s.dir, "backend", s.b.Kind().String())
	if jop != nil {
		defer func() {
			jop.Set("live_chunks", strconv.Itoa(rep.LiveChunks),
				"swept_chunks", strconv.Itoa(rep.SweptChunks),
				"quarantined_recipes", strconv.Itoa(rep.QuarantinedRecipes))
			jop.End(err)
		}()
	}
	idx := cas.NewIndex()
	recipes := make(map[uint64][]cas.Ref)
	recipeBytes := make(map[uint64]int64)
	for _, g := range s.man.Gens {
		if !g.Dedup() {
			continue
		}
		raw, rerr := s.b.ReadPayload(g.Seq)
		if rerr != nil {
			// An indexed recipe we cannot read means chunk liveness is
			// unknown; sweeping now could destroy live data. Fail the
			// pass — the scrubber quarantines the recipe and the next GC
			// converges.
			return rep, fmt.Errorf("store: gc: recipe for gen %d unreadable: %w", g.Seq, rerr)
		}
		rec, derr := cas.DecodeRecipe(raw)
		if derr != nil {
			return rep, fmt.Errorf("store: gc: recipe for gen %d: %w", g.Seq, derr)
		}
		idx.Add(rec.Chunks)
		recipes[g.Seq] = rec.Chunks
		recipeBytes[g.Seq] = int64(len(raw))
	}
	if qs, qerr := s.b.QuarantinedPayloads(); qerr == nil {
		for _, raw := range qs {
			if rec, derr := cas.DecodeRecipe(raw); derr == nil {
				idx.Add(rec.Chunks)
				rep.QuarantinedRecipes++
			}
		}
	}
	names, lerr := s.b.ListChunks()
	if lerr != nil {
		return rep, fmt.Errorf("store: gc: listing chunks: %w", lerr)
	}
	for _, name := range names {
		h, perr := cas.ParseHash(name)
		if perr == nil && idx.Has(h) {
			continue
		}
		s.b.RemoveChunk(name)
		rep.SweptChunks++
	}
	s.dd.idx = idx
	s.dd.recipes = recipes
	s.dd.recipeBytes = recipeBytes
	rep.LiveChunks = idx.Chunks()
	rep.LiveBytes = idx.Bytes()
	if o := s.observer(); o != nil {
		o.Counter(MetricGCRuns).Inc()
		o.Counter(MetricGCSweptChunks).Add(float64(rep.SweptChunks))
		o.Gauge(MetricGCLiveChunks).Set(float64(rep.LiveChunks))
		o.Event("store.gc", "dir", s.dir,
			"live", rep.LiveChunks, "swept", rep.SweptChunks)
	}
	return rep, nil
}

// dedupActiveLocked reports whether this store has any dedup state
// worth scrubbing/collecting.
func (s *Store) dedupActiveLocked() bool {
	if s.opts.Dedup || s.dd.idx.Chunks() > 0 {
		return true
	}
	for _, g := range s.man.Gens {
		if g.Dedup() {
			return true
		}
	}
	return false
}

// scrubResolveLocked materializes a generation's logical bytes for the
// scrubber. For plain generations it is a payload read; for dedup
// generations it resolves the recipe, reporting recipe/chunk-level
// damage through its own reasons ("recipe", "chunk") so the quarantine
// record names the failing layer.
func (s *Store) scrubResolveLocked(g Generation) (data []byte, reason string, missing bool) {
	raw, err := s.b.ReadPayload(g.Seq)
	if err != nil {
		return nil, "", true
	}
	if !g.Dedup() {
		return raw, "", false
	}
	rec, derr := cas.DecodeRecipe(raw)
	if derr != nil {
		return nil, "recipe", false
	}
	out := make([]byte, 0, rec.Size)
	for _, ref := range rec.Chunks {
		cdata, cerr := s.b.ReadChunk(ref.Hash.String())
		if cerr != nil || uint32(len(cdata)) != ref.Len || cas.Sum(cdata) != ref.Hash {
			return nil, "chunk", false
		}
		out = append(out, cdata...)
	}
	return out, "", false
}

// DedupStats is the store's dedup accounting surface (CLI inspect,
// server quotas, the X17 experiment).
type DedupStats struct {
	// Enabled reports whether new commits dedup.
	Enabled bool
	// DedupGens counts indexed generations stored as recipes.
	DedupGens int
	// LogicalBytes sums the logical payload sizes of dedup generations.
	LogicalBytes int64
	// RecipeBytes sums the physical size of their recipe objects.
	RecipeBytes int64
	// Chunks / ChunkBytes describe the live chunk population (including
	// chunks held alive by quarantined recipes).
	Chunks     int
	ChunkBytes int64
}

// Ratio returns logical bytes per physical byte for the dedup subset —
// the dedup-ratio gauge (1.0 means no savings; 0 when nothing dedups).
func (d DedupStats) Ratio() float64 {
	phys := d.RecipeBytes + d.ChunkBytes
	if phys <= 0 {
		return 0
	}
	return float64(d.LogicalBytes) / float64(phys)
}

// DedupStats snapshots the dedup accounting.
func (s *Store) DedupStats() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := DedupStats{Enabled: s.opts.Dedup}
	for _, g := range s.man.Gens {
		if !g.Dedup() {
			continue
		}
		st.DedupGens++
		st.LogicalBytes += int64(g.Size)
		st.RecipeBytes += s.dd.recipeBytes[g.Seq]
	}
	st.Chunks = s.dd.idx.Chunks()
	st.ChunkBytes = s.dd.idx.Bytes()
	return st
}

// PhysicalBytes returns the bytes this store actually occupies for its
// indexed generations: raw payloads at face value, dedup generations as
// recipe bytes plus the (shared) live chunk population. This is what
// quota enforcement should meter — charging logical bytes would tax the
// tenant for data dedup never stored.
func (s *Store) PhysicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, g := range s.man.Gens {
		if g.Dedup() {
			n += s.dd.recipeBytes[g.Seq]
		} else {
			n += int64(g.Size)
		}
	}
	return n + s.dd.idx.Bytes()
}

// DedupFsckIssue is one inconsistency found by FsckDedup.
type DedupFsckIssue struct {
	// Kind is "recipe" (indexed recipe unreadable/undecodable), "refcount"
	// (ledger count differs from recomputed truth), "missing" (referenced
	// chunk absent), "corrupt" (chunk content does not match its name) or
	// "orphan" (chunk referenced by nothing — pending GC).
	Kind   string
	Seq    uint64
	Hash   string
	Detail string
}

// DedupFsckReport is the chunk-level audit fsck runs.
type DedupFsckReport struct {
	DedupGens     int
	ChunksChecked int
	Issues        []DedupFsckIssue
}

// Clean reports whether the audit found no inconsistencies (orphans
// included — run GC first if orphans should be tolerated).
func (r *DedupFsckReport) Clean() bool { return len(r.Issues) == 0 }

// FsckDedup audits the chunk layer: every indexed recipe must decode,
// every referenced chunk must exist and hash to its name, and the
// in-memory refcount ledger must match counts recomputed from the
// recipes. Orphan chunks are reported (kind "orphan") but are expected
// transiently between a crash and the next GC.
func (s *Store) FsckDedup() (*DedupFsckReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &DedupFsckReport{}
	truth := cas.NewIndex()
	checked := make(map[cas.Hash]bool)
	for _, g := range s.man.Gens {
		if !g.Dedup() {
			continue
		}
		rep.DedupGens++
		raw, err := s.b.ReadPayload(g.Seq)
		if err != nil {
			rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "recipe", Seq: g.Seq, Detail: err.Error()})
			continue
		}
		rec, derr := cas.DecodeRecipe(raw)
		if derr != nil {
			rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "recipe", Seq: g.Seq, Detail: derr.Error()})
			continue
		}
		truth.Add(rec.Chunks)
		for _, ref := range rec.Chunks {
			if checked[ref.Hash] {
				continue
			}
			checked[ref.Hash] = true
			rep.ChunksChecked++
			cdata, cerr := s.b.ReadChunk(ref.Hash.String())
			switch {
			case cerr != nil:
				rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "missing", Seq: g.Seq, Hash: ref.Hash.String(), Detail: cerr.Error()})
			case cas.Sum(cdata) != ref.Hash || uint32(len(cdata)) != ref.Len:
				rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "corrupt", Seq: g.Seq, Hash: ref.Hash.String(),
					Detail: fmt.Sprintf("%d bytes, content does not match address", len(cdata))})
			}
		}
	}
	// Quarantined recipes hold marks too — count them into truth so
	// their chunks are not misreported as orphans or refcount drift.
	if qs, err := s.b.QuarantinedPayloads(); err == nil {
		for _, raw := range qs {
			if rec, derr := cas.DecodeRecipe(raw); derr == nil {
				truth.Add(rec.Chunks)
			}
		}
	}
	// Ledger vs recomputed truth, both directions.
	hashes := truth.Hashes()
	sort.Slice(hashes, func(i, j int) bool {
		return hashes[i].String() < hashes[j].String()
	})
	for _, h := range hashes {
		if got, want := s.dd.idx.Refs(h), truth.Refs(h); got != want {
			rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "refcount", Hash: h.String(),
				Detail: fmt.Sprintf("ledger %d, recipes imply %d", got, want)})
		}
	}
	for _, h := range s.dd.idx.Hashes() {
		if truth.Refs(h) == 0 {
			rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "refcount", Hash: h.String(),
				Detail: fmt.Sprintf("ledger %d, recipes imply 0", s.dd.idx.Refs(h))})
		}
	}
	if names, err := s.b.ListChunks(); err == nil {
		for _, name := range names {
			h, perr := cas.ParseHash(name)
			if perr != nil || truth.Refs(h) == 0 {
				rep.Issues = append(rep.Issues, DedupFsckIssue{Kind: "orphan", Hash: name})
			}
		}
	}
	return rep, nil
}
