// backend.go promotes the store's storage layer into a first-class
// Backend interface. A Backend owns the physical layout and the commit
// protocol of one store root; the Store above it owns the manifest
// codec, the retention ring, verification and scrubbing policy. Two
// implementations ship:
//
//   - posixBackend: the original directory layout. Payloads are staged
//     in temp files and published by rename (rename-as-commit), the
//     manifest follows the same temp+fsync+rename protocol, and corrupt
//     generations are renamed into a quarantine/ subdirectory. With the
//     default Options this backend reproduces the pre-Backend store
//     byte-for-byte, operation-for-operation.
//
//   - objectBackend: an object-store-style layout with flat keys and no
//     rename. Payload objects are written directly under their final
//     key; the commit point is a manifest-pointer swap: a versioned
//     manifest object is written, then a small CRC-protected pointer
//     record (CURRENT) is overwritten to name it. A torn pointer write
//     is caught by the pointer CRC and recovery falls back to the
//     newest decodable manifest object.
//
// Both backends route every mutating operation through the store's
// retry policy (capped, jittered exponential backoff for transient
// errors) and through the injectable FS, so FaultFS fault plans and the
// kill-at-every-write-boundary crash matrices apply to each.
package store

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// BackendKind selects a storage backend implementation.
type BackendKind int

const (
	// BackendPosix is the directory backend: rename-as-commit, manifest
	// via temp+fsync+rename, quarantine/ subdirectory.
	BackendPosix BackendKind = iota
	// BackendObject is the object-store-style backend: flat keys, no
	// rename, commit via write-objects-then-manifest-pointer-swap.
	BackendObject
)

// String names the backend kind.
func (k BackendKind) String() string {
	switch k {
	case BackendPosix:
		return "posix"
	case BackendObject:
		return "object"
	}
	return fmt.Sprintf("backend_%d", int(k))
}

// ParseBackend inverts BackendKind.String.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "posix", "":
		return BackendPosix, nil
	case "object":
		return BackendObject, nil
	}
	return 0, fmt.Errorf("store: unknown backend %q (want posix or object)", s)
}

// PayloadWriter streams one generation payload into a backend. Write
// batches into bounded chunks with per-operation retry; Commit makes
// the payload durable and visible under its sequence number (rename for
// posix, durable PUT for object); Abort discards a partial payload.
// After Commit or Abort the writer is dead.
type PayloadWriter interface {
	io.Writer
	Commit() error
	Abort()
}

// Backend is the storage layer under a Store: physical layout plus the
// backend-appropriate atomic-commit protocol. Implementations are
// driven under the Store's mutex and need not be concurrency-safe
// themselves; they must route faults and retries through the FS and
// retrier they were built with.
type Backend interface {
	// Kind identifies the implementation.
	Kind() BackendKind
	// Init prepares the root (created if needed).
	Init() error
	// BeginPayload starts writing generation seq's payload.
	BeginPayload(seq uint64) (PayloadWriter, error)
	// ReadPayload returns generation seq's bytes.
	ReadPayload(seq uint64) ([]byte, error)
	// RemovePayload deletes generation seq's payload (best effort).
	RemovePayload(seq uint64) error
	// ListPayloads returns the committed-visible payload sequence
	// numbers, ascending.
	ListPayloads() ([]uint64, error)
	// ReadManifest returns the current manifest image, already resolved
	// through whatever indirection the backend uses (pointer records).
	ReadManifest() ([]byte, error)
	// WriteManifest atomically replaces the manifest image; this is the
	// commit point of every store mutation.
	WriteManifest(data []byte) error
	// Sweep removes commit litter (temp files, orphaned manifest
	// versions) and payloads not in indexed, returning how many entries
	// it removed.
	Sweep(indexed map[uint64]bool) int
	// Quarantine moves seq's payload out of the visible namespace
	// without destroying it, returning the destination relative to the
	// store root.
	Quarantine(seq uint64) (string, error)

	// Chunk operations back the content-addressed dedup layer. A chunk
	// is an immutable blob named by the lowercase hex of its content
	// hash; WriteChunk must be durable (the dedup commit protocol relies
	// on every referenced chunk being on stable storage before the
	// recipe commits) and idempotent (rewriting a name with identical
	// content is a no-op by construction, and rewriting a torn leftover
	// replaces it). Unreferenced chunks are garbage, not corruption: GC
	// collects them.
	WriteChunk(name string, data []byte) error
	// ReadChunk returns a chunk's bytes.
	ReadChunk(name string) ([]byte, error)
	// RemoveChunk deletes a chunk (best effort).
	RemoveChunk(name string) error
	// ListChunks returns the chunk names present, sorted.
	ListChunks() ([]string, error)
	// QuarantinedPayloads returns the raw payload images sitting in
	// quarantine, so GC can keep their chunks marked (a quarantined
	// recipe must stay salvageable).
	QuarantinedPayloads() ([][]byte, error)
}

// retrier is the store's retry policy, injected into backends so every
// mutating operation shares one backoff/jitter/fault model.
type retrier func(op string, fn func() error) error

// --- chunkedWriter ----------------------------------------------------------

// chunkedWriter is the shared low-level payload writer: it batches
// writes into commitChunk-sized retried operations against one open
// file and seals with the sync-before-close protocol. Both backends
// build their PayloadWriters on it.
type chunkedWriter struct {
	fs   FS
	rt   retrier
	f    File
	path string
	buf  []byte
	err  error
}

// newChunkedWriter opens path for writing through the retry policy.
func newChunkedWriter(fs FS, rt retrier, path string) (*chunkedWriter, error) {
	var f File
	if err := rt("create", func() (err error) {
		f, err = fs.Create(path)
		return err
	}); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	return &chunkedWriter{fs: fs, rt: rt, f: f, path: path, buf: make([]byte, 0, commitChunk)}, nil
}

// Write implements io.Writer with commitChunk batching.
func (w *chunkedWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	for rest := p; len(rest) > 0; {
		take := commitChunk - len(w.buf)
		if take > len(rest) {
			take = len(rest)
		}
		w.buf = append(w.buf, rest[:take]...)
		rest = rest[take:]
		if len(w.buf) == commitChunk {
			if err := w.flush(); err != nil {
				return 0, err
			}
		}
	}
	return len(p), nil
}

// flush writes the buffered chunk through the retry policy.
func (w *chunkedWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	chunk := w.buf
	if err := w.rt("write", func() error {
		_, werr := w.f.Write(chunk)
		return werr
	}); err != nil {
		w.discard()
		w.err = fmt.Errorf("store: write %s: %w", w.path, err)
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

// seal flushes the tail, fsyncs and closes the file — the
// sync-before-close protocol every durable payload follows.
func (w *chunkedWriter) seal() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.rt("sync", func() error { return w.f.Sync() }); err != nil {
		w.discard()
		w.err = fmt.Errorf("store: sync %s: %w", w.path, err)
		return w.err
	}
	if err := w.rt("close", func() error { return w.f.Close() }); err != nil {
		w.fs.Remove(w.path)
		w.err = fmt.Errorf("store: close %s: %w", w.path, err)
		return w.err
	}
	w.err = fmt.Errorf("store: writer for %s already sealed", w.path)
	return nil
}

// abort discards the file after a producer error; idempotent.
func (w *chunkedWriter) abort() {
	if w.err != nil {
		return // already failed and cleaned up
	}
	w.discard()
	w.err = fmt.Errorf("store: writer for %s aborted", w.path)
}

func (w *chunkedWriter) discard() {
	w.f.Close()
	w.fs.Remove(w.path)
}

// --- posixBackend -----------------------------------------------------------

// posixBackend is the original directory layout: gen-%08d.ckpt payload
// files published by rename, MANIFEST via temp+fsync+rename, corrupt
// generations renamed into quarantine/.
type posixBackend struct {
	dir string
	fs  FS
	rt  retrier
}

func newPosixBackend(dir string, fs FS, rt retrier) *posixBackend {
	return &posixBackend{dir: dir, fs: fs, rt: rt}
}

func (b *posixBackend) Kind() BackendKind { return BackendPosix }

func (b *posixBackend) Init() error {
	return b.rt("mkdir", func() error { return b.fs.MkdirAll(b.dir) })
}

func (b *posixBackend) genPath(seq uint64) string {
	return filepath.Join(b.dir, genName(seq))
}

// posixWriter stages the payload in a temp file and publishes it by
// rename + directory fsync on Commit.
type posixWriter struct {
	b          *posixBackend
	cw         *chunkedWriter
	tmp, final string
}

func (b *posixBackend) BeginPayload(seq uint64) (PayloadWriter, error) {
	final := b.genPath(seq)
	cw, err := newChunkedWriter(b.fs, b.rt, final+tmpSuffix)
	if err != nil {
		return nil, err
	}
	return &posixWriter{b: b, cw: cw, tmp: final + tmpSuffix, final: final}, nil
}

func (w *posixWriter) Write(p []byte) (int, error) { return w.cw.Write(p) }

func (w *posixWriter) Commit() error {
	if err := w.cw.seal(); err != nil {
		return err
	}
	if err := w.b.rt("rename", func() error { return w.b.fs.Rename(w.tmp, w.final) }); err != nil {
		w.b.fs.Remove(w.tmp)
		return fmt.Errorf("rename: %w", err)
	}
	if err := w.b.rt("syncdir", func() error { return w.b.fs.SyncDir(w.b.dir) }); err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	return nil
}

func (w *posixWriter) Abort() { w.cw.abort() }

func (b *posixBackend) ReadPayload(seq uint64) ([]byte, error) {
	return readFileFS(b.fs, b.genPath(seq))
}

func (b *posixBackend) RemovePayload(seq uint64) error {
	return b.fs.Remove(b.genPath(seq))
}

func (b *posixBackend) ListPayloads() ([]uint64, error) {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseGenName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (b *posixBackend) ReadManifest() ([]byte, error) {
	return readFileFS(b.fs, filepath.Join(b.dir, manifestName))
}

// WriteManifest persists the manifest image via temp+fsync+rename — the
// rename is the commit point of every posix store mutation.
func (b *posixBackend) WriteManifest(data []byte) error {
	path := filepath.Join(b.dir, manifestName)
	cw, err := newChunkedWriter(b.fs, b.rt, path+tmpSuffix)
	if err != nil {
		return err
	}
	if _, err := cw.Write(data); err != nil {
		return err
	}
	if err := cw.seal(); err != nil {
		return err
	}
	if err := b.rt("rename", func() error { return b.fs.Rename(path+tmpSuffix, path) }); err != nil {
		b.fs.Remove(path + tmpSuffix)
		return err
	}
	return b.rt("syncdir", func() error { return b.fs.SyncDir(b.dir) })
}

// Sweep removes leftover temp files from interrupted commits and
// generation files no longer in the manifest (pruned but not removed,
// or renamed but never indexed because the crash hit before the
// manifest update).
func (b *posixBackend) Sweep(indexed map[uint64]bool) int {
	names, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return 0
	}
	swept := 0
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			b.fs.Remove(filepath.Join(b.dir, name))
			swept++
			continue
		}
		if seq, ok := parseGenName(name); ok && !indexed[seq] {
			b.fs.Remove(filepath.Join(b.dir, name))
			swept++
		}
	}
	return swept
}

// Quarantine moves one generation file into quarantine/, never
// overwriting an earlier resident: collisions get a .1, .2, ... suffix.
// Returns the destination path relative to the store root.
func (b *posixBackend) Quarantine(seq uint64) (string, error) {
	qdir := filepath.Join(b.dir, QuarantineDir)
	if err := b.fs.MkdirAll(qdir); err != nil {
		return "", err
	}
	taken := make(map[string]bool)
	if names, err := b.fs.ReadDir(qdir); err == nil {
		for _, n := range names {
			taken[n] = true
		}
	}
	base := genName(seq)
	name := base
	for i := 1; taken[name]; i++ {
		name = fmt.Sprintf("%s.%d", base, i)
	}
	if err := b.fs.Rename(filepath.Join(b.dir, base), filepath.Join(qdir, name)); err != nil {
		return "", err
	}
	// Make the move durable: the file left one directory and entered
	// another.
	b.fs.SyncDir(qdir)
	b.fs.SyncDir(b.dir)
	return filepath.Join(QuarantineDir, name), nil
}

// CASDir is the subdirectory (under a posix store root) holding the
// content-addressed chunk files of the dedup layer. It is invisible to
// the root-directory sweep (ReadDir lists files only), so chunk
// lifetime is governed exclusively by the refcount ledger and GC.
const CASDir = "cas"

// chunkSuffix names posix chunk files: <hex-sha256>.chk under cas/.
const chunkSuffix = ".chk"

func (b *posixBackend) chunkPath(name string) string {
	return filepath.Join(b.dir, CASDir, name+chunkSuffix)
}

// WriteChunk stages the chunk in a temp file and publishes it by rename
// — the same rename-as-commit protocol payloads use, so a crash mid-
// write leaves a .tmp the next sweep collects, never a torn chunk under
// a valid name.
func (b *posixBackend) WriteChunk(name string, data []byte) error {
	cdir := filepath.Join(b.dir, CASDir)
	if err := b.rt("mkdir", func() error { return b.fs.MkdirAll(cdir) }); err != nil {
		return err
	}
	final := b.chunkPath(name)
	cw, err := newChunkedWriter(b.fs, b.rt, final+tmpSuffix)
	if err != nil {
		return err
	}
	if _, err := cw.Write(data); err != nil {
		return err
	}
	if err := cw.seal(); err != nil {
		return err
	}
	if err := b.rt("rename", func() error { return b.fs.Rename(final+tmpSuffix, final) }); err != nil {
		b.fs.Remove(final + tmpSuffix)
		return fmt.Errorf("rename: %w", err)
	}
	return b.rt("syncdir", func() error { return b.fs.SyncDir(cdir) })
}

func (b *posixBackend) ReadChunk(name string) ([]byte, error) {
	return readFileFS(b.fs, b.chunkPath(name))
}

func (b *posixBackend) RemoveChunk(name string) error {
	return b.fs.Remove(b.chunkPath(name))
}

func (b *posixBackend) ListChunks() ([]string, error) {
	names, err := b.fs.ReadDir(filepath.Join(b.dir, CASDir))
	if err != nil {
		return nil, nil // no cas/ directory: no chunks
	}
	var out []string
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			// Torn chunk write: litter, collect it here (the root sweep
			// never descends into cas/).
			b.fs.Remove(filepath.Join(b.dir, CASDir, name))
			continue
		}
		if strings.HasSuffix(name, chunkSuffix) {
			out = append(out, strings.TrimSuffix(name, chunkSuffix))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *posixBackend) QuarantinedPayloads() ([][]byte, error) {
	qdir := filepath.Join(b.dir, QuarantineDir)
	names, err := b.fs.ReadDir(qdir)
	if err != nil {
		return nil, nil // no quarantine directory yet
	}
	var out [][]byte
	for _, name := range names {
		if data, rerr := readFileFS(b.fs, filepath.Join(qdir, name)); rerr == nil {
			out = append(out, data)
		}
	}
	return out, nil
}

// readFileFS slurps one file through an FS.
func readFileFS(fsys FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
