package store

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommitCtxAlreadyCancelled is the satellite regression: a request
// whose context is already cancelled must not start a commit at all.
func TestCommitCtxAlreadyCancelled(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Sleep: noSleep})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.CommitCtx(ctx, 1, payload(1, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("CommitCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.CommitStreamCtx(ctx, 1, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("CommitStreamCtx on cancelled ctx succeeded")
	}
	if gens := s.Generations(); len(gens) != 0 {
		t.Fatalf("cancelled commit left %d generations", len(gens))
	}
}

// TestRetryAbortsBetweenAttempts cancels the context from inside the
// first backoff sleep: the ladder must stop instead of burning through
// the remaining retry budget.
func TestRetryAbortsBetweenAttempts(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	s, oerr := Open(dir, Options{Retries: 8, Sleep: func(time.Duration) { cancel() }})
	if oerr != nil {
		t.Fatal(oerr)
	}

	s.mu.Lock()
	s.opCtx = ctx
	err := s.retry("op", func() error {
		attempts++
		return transientErr{errors.New("flaky")}
	})
	s.opCtx = nil
	s.mu.Unlock()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retry under cancelled ctx = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("retry kept going after cancellation: %d attempts", attempts)
	}
	if !strings.Contains(err.Error(), "flaky") {
		t.Fatalf("cancellation error should carry the last attempt error: %v", err)
	}
}

// TestRetryDeadlineWakesDefaultSleep exercises the context-aware
// default sleep (no injected Options.Sleep): a deadline expiring during
// a long backoff must wake the ladder early.
func TestRetryDeadlineWakesDefaultSleep(t *testing.T) {
	dir := t.TempDir()
	s, oerr := Open(dir, Options{
		Retries:     4,
		BackoffBase: 10 * time.Second, // one full sleep would blow the test timeout
		BackoffCap:  10 * time.Second,
	})
	if oerr != nil {
		t.Fatal(oerr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	s.mu.Lock()
	s.opCtx = ctx
	err := s.retry("op", func() error { return transientErr{errors.New("always")} })
	s.opCtx = nil
	s.mu.Unlock()

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry past deadline = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not interrupt the backoff sleep: took %v", elapsed)
	}
}

// TestCommitCtxCancelledMidStreamNoLitter aborts a streaming commit via
// context cancellation mid-payload and verifies the store holds no temp
// litter and the previous generation stays indexed and readable.
func TestCommitCtxCancelledMidStreamNoLitter(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sleep: noSleep})
	if _, err := s.Commit(1, payload(1, 512)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, err := s.CommitStreamCtx(ctx, 2, func(w io.Writer) error {
		if _, werr := w.Write(payload(2, 256)); werr != nil {
			return werr
		}
		cancel() // producer observes the deadline mid-stream
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted stream commit = %v, want context.Canceled", err)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("aborted commit left temp litter: %s", filepath.Join(dir, e.Name()))
		}
	}
	gens := s.Generations()
	if len(gens) != 1 || gens[0].Seq != 1 {
		t.Fatalf("previous generation lost after aborted commit: %+v", gens)
	}
	if _, err := s.ReadGeneration(1); err != nil {
		t.Fatalf("generation 1 unreadable after aborted commit: %v", err)
	}
}

// TestReplicatedCommitCtxCancelled verifies cancellation propagates
// through the replicated fan-out.
func TestReplicatedCommitCtxCancelled(t *testing.T) {
	root := t.TempDir()
	r, err := OpenReplicated(root, ReplicaDirs(root, 2), 2, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.CommitCtx(ctx, 1, payload(1, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("replicated CommitCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	r.Wait()
	if gens := r.Generations(); len(gens) != 0 {
		t.Fatalf("cancelled replicated commit left %d generations", len(gens))
	}
}
