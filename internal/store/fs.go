// Package store is the crash-safe, multi-generation on-disk checkpoint
// store. A checkpoint commit is atomic — payload written to a temp file,
// fsynced, renamed into a generation slot, directory fsynced, and only
// then recorded in a CRC-protected manifest whose own update follows the
// same temp+fsync+rename protocol — so a crash at any write boundary
// leaves the store openable with the previous latest-good generation
// intact. A bounded retention ring keeps the last K generations as
// fallback targets: Open verifies the manifest, ReadGeneration verifies
// per-file CRCs, and callers (ckpt.RestoreLatest) walk generations
// newest-to-oldest on corruption, including frame-level partial recovery
// from a torn tail.
//
// All filesystem access goes through the FS interface so tests can
// inject faults (torn writes, crashes between operations, transient
// errors, silent bit flips) while production uses OsFS. Transient
// errors are retried with capped exponential backoff.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the store writes and reads through.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the store performs, so faults
// can be injected at every boundary. Implementations must be safe for
// concurrent use.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory, making completed renames durable.
	SyncDir(dir string) error
}

// OsFS is the production FS backed by package os. Its zero value is
// ready to use.
type OsFS struct{}

// Create implements FS.
func (OsFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OsFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OsFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS. On platforms where directories cannot be
// fsynced the error is ignored; the rename itself is still atomic.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// WriteFileAtomic writes data to path via the temp+fsync+rename protocol
// on fsys: a crash at any point leaves either the old file or the new
// one, never a truncated mix. The temp file lives in path's directory so
// the rename cannot cross filesystems.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: close: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: rename: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}

// WriteFileAtomicOS is WriteFileAtomic on the real filesystem — the
// drop-in durable replacement for os.WriteFile in command-line tools.
func WriteFileAtomicOS(path string, data []byte) error {
	return WriteFileAtomic(OsFS{}, path, data)
}
