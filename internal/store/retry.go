// retry.go is the store's transient-error ladder: capped exponential
// backoff with jitter, bound to the context of the operation in flight.
// Backend primitives (create/write/sync/rename/...) run through retry;
// a request whose context is cancelled mid-ladder aborts before the
// next attempt instead of sleeping out the full backoff budget — the
// property the daemon's request deadlines depend on.
package store

import (
	"context"
	"fmt"
	"time"
)

// retryCtx resolves the context governing the operation currently
// holding s.mu (Background outside ctx-aware entry points). retry runs
// either under s.mu (commits, reads, scrubs) or from Open before the
// store is shared, so the unsynchronized read is safe.
func (s *Store) retryCtx() context.Context {
	if s.opCtx != nil {
		return s.opCtx
	}
	return context.Background()
}

// retry runs fn, retrying transient errors with capped exponential
// backoff; permanent errors, exhausted budgets and a cancelled
// operation context return immediately. Each sleep is jittered into
// [backoff/2, backoff) so replicas retrying a shared fault
// de-synchronize instead of thundering.
func (s *Store) retry(op string, fn func() error) error {
	ctx := s.retryCtx()
	backoff := s.opts.BackoffBase
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempt >= s.opts.Retries {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("store: %s retry abandoned: %w (last attempt: %v)", op, cerr, err)
		}
		half := backoff / 2
		sleep := half + time.Duration(s.opts.Jitter()*float64(half))
		if sleep <= 0 {
			sleep = backoff
		}
		if o := s.observer(); o != nil {
			o.Counter(MetricRetries, "op", op).Inc()
			o.Counter(MetricBackoffSeconds).Add(sleep.Seconds())
		}
		if cerr := s.sleepBackoff(ctx, sleep); cerr != nil {
			return fmt.Errorf("store: %s retry abandoned: %w (last attempt: %v)", op, cerr, err)
		}
		backoff *= 2
		if backoff > s.opts.BackoffCap {
			backoff = s.opts.BackoffCap
		}
	}
}

// sleepBackoff waits out one backoff interval, waking early (and
// returning the context error) when ctx is cancelled. An injected
// Options.Sleep is honored as-is so tests keep deterministic clocks;
// cancellation is then still observed at the next attempt boundary.
func (s *Store) sleepBackoff(ctx context.Context, d time.Duration) error {
	if s.opts.Sleep != nil {
		s.opts.Sleep(d)
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
