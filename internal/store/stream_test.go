package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

// writeInPieces streams data to w in uneven pieces that straddle
// commitChunk boundaries.
func writeInPieces(data []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		sizes := []int{1, 7, 100, 64 << 10, commitChunk, commitChunk + 13}
		for i := 0; len(data) > 0; i++ {
			n := sizes[i%len(sizes)]
			if n > len(data) {
				n = len(data)
			}
			if _, err := w.Write(data[:n]); err != nil {
				return err
			}
			data = data[n:]
		}
		return nil
	}
}

// TestCommitStreamMatchesCommit pins the equivalence contract: the same
// bytes through CommitStream produce a generation with the same size and
// CRC record as Commit, reading back verified and identical.
func TestCommitStreamMatchesCommit(t *testing.T) {
	want := payload(3, 3*commitChunk+777)

	dirA := t.TempDir()
	a := openTest(t, dirA, Options{})
	genA, err := a.Commit(11, want)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}

	dirB := t.TempDir()
	b := openTest(t, dirB, Options{})
	genB, err := b.CommitStream(11, writeInPieces(want))
	if err != nil {
		t.Fatalf("CommitStream: %v", err)
	}
	if genB.Seq != genA.Seq || genB.Step != genA.Step || genB.Size != genA.Size || genB.CRC != genA.CRC {
		t.Fatalf("streamed generation %+v, buffered %+v", genB, genA)
	}
	got, err := b.ReadGeneration(genB.Seq)
	if err != nil {
		t.Fatalf("ReadGeneration: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed payload mismatch after round trip")
	}
}

func TestCommitStreamEmptyAndTiny(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	gen, err := s.CommitStream(0, func(io.Writer) error { return nil })
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if gen.Size != 0 {
		t.Fatalf("empty stream size %d", gen.Size)
	}
	gen, err = s.CommitStream(1, func(w io.Writer) error {
		_, err := w.Write([]byte{0xab})
		return err
	})
	if err != nil {
		t.Fatalf("tiny stream: %v", err)
	}
	if got, err := s.ReadGeneration(gen.Seq); err != nil || !bytes.Equal(got, []byte{0xab}) {
		t.Fatalf("tiny read: %v %v", got, err)
	}
}

// TestCommitStreamProducerError checks that a failing producer aborts the
// commit cleanly: no temp litter, previous latest intact, next commit
// reuses the slot.
func TestCommitStreamProducerError(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, err := s.Commit(1, payload(1, 1024)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer exploded")
	_, err := s.CommitStream(2, func(w io.Writer) error {
		if _, werr := w.Write(payload(2, commitChunk+5)); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want producer failure", err)
	}
	latest, ok := s.Latest()
	if !ok || latest.Seq != 1 {
		t.Fatalf("latest %+v ok=%v, want untouched gen 1", latest, ok)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("temp litter %s after aborted stream", e.Name())
		}
	}
	want := payload(3, 2048)
	gen, err := s.CommitStream(3, writeInPieces(want))
	if err != nil {
		t.Fatalf("commit after abort: %v", err)
	}
	if gen.Seq != 2 {
		t.Fatalf("post-abort seq %d, want 2", gen.Seq)
	}
	if got, _ := s.ReadGeneration(2); !bytes.Equal(got, want) {
		t.Fatal("post-abort payload mismatch")
	}
}

// TestCommitStreamWriteFault injects a hard crash at a write boundary
// mid-stream: the producer sees the error through the writer, the commit
// fails, and nothing is indexed.
func TestCommitStreamWriteFault(t *testing.T) {
	inner := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	s := openTest(t, inner, Options{FS: ffs, Retries: 1})
	if _, err := s.Commit(1, payload(1, 512)); err != nil {
		t.Fatal(err)
	}
	// Fail the third write op from here on (create + writes of the new
	// temp file); Crash kills every subsequent op too.
	ffs.FailAt(ffs.Ops()+3, Fault{Kind: Crash})
	_, err := s.CommitStream(2, func(w io.Writer) error {
		big := payload(2, 4*commitChunk)
		for off := 0; off < len(big); off += commitChunk {
			if _, werr := w.Write(big[off : off+commitChunk]); werr != nil {
				return werr
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("stream commit over crashed FS succeeded")
	}
	if !ffs.Crashed() {
		t.Fatal("fault never fired")
	}
}

// TestCommitStreamTransientWriteRetries checks a transient write error is
// absorbed by the store's retry policy without surfacing to the producer.
func TestCommitStreamTransientWriteRetries(t *testing.T) {
	inner := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	s := openTest(t, inner, Options{FS: ffs})
	ffs.FailAt(ffs.Ops()+2, Fault{Kind: ErrorOnce})
	want := payload(5, 2*commitChunk)
	gen, err := s.CommitStream(5, writeInPieces(want))
	if err != nil {
		t.Fatalf("CommitStream with transient fault: %v", err)
	}
	if got, err := s.ReadGeneration(gen.Seq); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after transient fault: %v", err)
	}
}

// TestCommitWriterUsableOnceOnly guards against a producer retaining the
// writer: writes after finish/abort must fail, not reach the store.
func TestCommitWriterUsableOnceOnly(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	var leaked io.Writer
	if _, err := s.CommitStream(1, func(w io.Writer) error {
		leaked = w
		_, werr := w.Write([]byte("ok"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := leaked.Write([]byte("late")); err == nil {
		t.Fatal("write after commit finished succeeded")
	}
	if got, err := s.ReadGeneration(1); err != nil || !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("late write leaked into generation: %v %v", got, err)
	}
}
