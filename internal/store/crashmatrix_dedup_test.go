package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lossyckpt/internal/cas"
)

// copyTree clones a store directory including subdirectories (the posix
// cas/ chunk directory), so each dedup crash point starts from the same
// committed baseline.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// countChunks counts chunk objects on disk under a posix store root.
func countChunks(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, CASDir))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestCrashMatrixDedup is the dedup variant of the kill-at-every-write-
// boundary harness: a dedup store with one committed generation attempts
// a second (partially overlapping) commit and a crash is injected at
// every counted filesystem operation, plus a torn-write variant. After
// each crash the reopened store must serve a bit-exact generation — the
// interrupted one if the manifest commit point was passed, the prior one
// otherwise — and after a GC pass the chunk population must hold exactly
// the live set: zero torn states, zero leaked chunks.
func TestCrashMatrixDedup(t *testing.T) {
	base := genPayload(91, 300<<10)
	next := mutateRegion(base, 60<<10, 0.10, 92)
	opts := dedupOpts()
	opts.Keep = -1

	baseline := t.TempDir()
	s0 := openTest(t, baseline, opts)
	if _, err := s0.Commit(10, base); err != nil {
		t.Fatal(err)
	}

	// Dry run to count the write boundaries of one dedup commit.
	probeDir := copyTree(t, baseline)
	probe := NewFaultFS(OsFS{})
	popts := opts
	popts.FS = probe
	sp := openTest(t, probeDir, popts)
	preOps := probe.Ops()
	if _, err := sp.Commit(20, next); err != nil {
		t.Fatal(err)
	}
	commitOps := probe.Ops() - preOps
	if commitOps < 10 {
		t.Fatalf("suspiciously few ops per dedup commit: %d (journal %v)", commitOps, probe.Journal())
	}

	stats := crashMatrixStats{Ops: commitOps}
	leaked := 0
	for k := 1; k <= commitOps; k++ {
		for _, tear := range []bool{false, true} {
			fault := Fault{Kind: Crash}
			name := "crash"
			if tear {
				fault = Fault{Kind: TornWrite, TornBytes: 97}
				name = "torn"
			}
			dir := copyTree(t, baseline)
			ffs := NewFaultFS(OsFS{})
			copts := opts
			copts.FS = ffs
			copts.Sleep = noSleep
			s, err := Open(dir, copts)
			if err != nil {
				t.Fatalf("open at k=%d: %v", k, err)
			}
			ffs.FailAt(ffs.Ops()+k, fault)
			_, commitErr := s.Commit(20, next)
			if !ffs.Crashed() {
				if commitErr != nil {
					t.Fatalf("k=%d %s: no crash but commit failed: %v", k, name, commitErr)
				}
				continue
			}
			stats.Crashes++

			// "Reboot": reopen with the real FS (dedup still on).
			ropts := opts
			ropts.Sleep = noSleep
			s2, err := Open(dir, ropts)
			if err != nil {
				t.Fatalf("k=%d %s: reopen after crash: %v\njournal: %v", k, name, err, ffs.Journal())
			}
			if s2.Rebuilt() {
				stats.ManifestScans++
			}
			latest, ok := s2.Latest()
			if !ok {
				t.Fatalf("k=%d %s: store lost all generations\njournal: %v", k, name, ffs.Journal())
			}
			got, err := s2.ReadGeneration(latest.Seq)
			if err != nil {
				t.Fatalf("k=%d %s: latest generation %d unreadable: %v\njournal: %v",
					k, name, latest.Seq, err, ffs.Journal())
			}
			switch {
			case bytes.Equal(got, base):
				stats.RecoveredOld++
			case bytes.Equal(got, next):
				stats.RecoveredNew++
			default:
				t.Fatalf("k=%d %s: recovered payload matches neither generation (%d bytes)\njournal: %v",
					k, name, len(got), ffs.Journal())
			}
			// The prior generation must always survive, bit-exact.
			if prior, err := s2.ReadGeneration(1); err != nil || !bytes.Equal(prior, base) {
				t.Fatalf("k=%d %s: prior generation lost: %v", k, name, err)
			}

			// Zero leaked chunks: after a GC pass the on-disk chunk count
			// must equal the live set the recipes reference, and the audit
			// must be clean.
			gcRep, err := s2.GC()
			if err != nil {
				t.Fatalf("k=%d %s: gc: %v", k, name, err)
			}
			leaked += gcRep.SweptChunks
			if n := countChunks(t, dir); n != gcRep.LiveChunks {
				t.Fatalf("k=%d %s: %d chunks on disk, %d live after GC", k, name, n, gcRep.LiveChunks)
			}
			fsck, err := s2.FsckDedup()
			if err != nil {
				t.Fatalf("k=%d %s: fsck: %v", k, name, err)
			}
			if !fsck.Clean() {
				t.Fatalf("k=%d %s: fsck issues after recovery: %+v", k, name, fsck.Issues)
			}
		}
	}
	if stats.Crashes == 0 {
		t.Fatal("harness injected no crashes")
	}
	if stats.RecoveredOld+stats.RecoveredNew != stats.Crashes {
		t.Fatalf("accounting mismatch: %+v", stats)
	}
	t.Logf("dedup crash matrix: %d ops per commit, %d crash points, %d recovered prior, %d recovered new, %d rebuilds, %d orphan chunks collected",
		stats.Ops, stats.Crashes, stats.RecoveredOld, stats.RecoveredNew, stats.ManifestScans, leaked)
}

// TestCrashMatrixDedupGC injects a crash at every write boundary of a
// GC pass (chunk removals) and verifies the store recovers with every
// generation byte-exact — GC deletes garbage only, so a crash mid-sweep
// can never lose live data.
func TestCrashMatrixDedupGC(t *testing.T) {
	opts := dedupOpts()
	opts.Keep = -1
	baseline := t.TempDir()
	s0 := openTest(t, baseline, opts)
	base := genPayload(95, 200<<10)
	mut := mutateRegion(base, 30<<10, 0.05, 96)
	if _, err := s0.Commit(1, base); err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Commit(2, mut); err != nil {
		t.Fatal(err)
	}
	// Seed garbage for the sweep: orphan chunks referenced by nothing.
	for i := 0; i < 4; i++ {
		junk := genPayload(int64(200+i), 2000)
		name := cas.Sum(junk).String() + ".chk"
		if err := os.WriteFile(filepath.Join(baseline, CASDir, name), junk, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for k := 1; k <= 12; k++ {
		dir := copyTree(t, baseline)
		ffs := NewFaultFS(OsFS{})
		copts := opts
		copts.FS = ffs
		copts.Sleep = noSleep
		// Open itself sweeps orphans, so arm the fault before Open: the
		// crash lands either in the open-time sweep or the explicit GC.
		ffs.FailAt(k, Fault{Kind: Crash})
		s, err := Open(dir, copts)
		if err == nil && !ffs.Crashed() {
			_, _ = s.GC()
		}
		if !ffs.Crashed() {
			continue
		}
		ropts := opts
		ropts.Sleep = noSleep
		s2, err := Open(dir, ropts)
		if err != nil {
			t.Fatalf("k=%d: reopen after GC crash: %v", k, err)
		}
		for seq, want := range map[uint64][]byte{1: base, 2: mut} {
			got, err := s2.ReadGeneration(seq)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("k=%d: gen %d damaged by interrupted GC: %v", k, seq, err)
			}
		}
	}
}
